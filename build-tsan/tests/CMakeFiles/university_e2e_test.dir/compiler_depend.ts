# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for university_e2e_test.
