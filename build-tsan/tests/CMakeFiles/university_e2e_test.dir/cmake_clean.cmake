file(REMOVE_RECURSE
  "CMakeFiles/university_e2e_test.dir/university_e2e_test.cc.o"
  "CMakeFiles/university_e2e_test.dir/university_e2e_test.cc.o.d"
  "university_e2e_test"
  "university_e2e_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/university_e2e_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
