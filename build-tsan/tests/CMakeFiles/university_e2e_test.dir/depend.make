# Empty dependencies file for university_e2e_test.
# This may be replaced when dependencies are built.
