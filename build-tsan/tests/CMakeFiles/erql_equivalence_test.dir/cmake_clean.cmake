file(REMOVE_RECURSE
  "CMakeFiles/erql_equivalence_test.dir/erql_equivalence_test.cc.o"
  "CMakeFiles/erql_equivalence_test.dir/erql_equivalence_test.cc.o.d"
  "erql_equivalence_test"
  "erql_equivalence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erql_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
