# Empty dependencies file for erql_equivalence_test.
# This may be replaced when dependencies are built.
