# Empty compiler generated dependencies file for database_edge_test.
# This may be replaced when dependencies are built.
