file(REMOVE_RECURSE
  "CMakeFiles/database_edge_test.dir/database_edge_test.cc.o"
  "CMakeFiles/database_edge_test.dir/database_edge_test.cc.o.d"
  "database_edge_test"
  "database_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/database_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
