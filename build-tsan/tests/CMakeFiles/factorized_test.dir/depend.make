# Empty dependencies file for factorized_test.
# This may be replaced when dependencies are built.
