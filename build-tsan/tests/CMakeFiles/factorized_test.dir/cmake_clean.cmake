file(REMOVE_RECURSE
  "CMakeFiles/factorized_test.dir/factorized_test.cc.o"
  "CMakeFiles/factorized_test.dir/factorized_test.cc.o.d"
  "factorized_test"
  "factorized_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/factorized_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
