file(REMOVE_RECURSE
  "CMakeFiles/erql_translator_test.dir/erql_translator_test.cc.o"
  "CMakeFiles/erql_translator_test.dir/erql_translator_test.cc.o.d"
  "erql_translator_test"
  "erql_translator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erql_translator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
