# Empty dependencies file for erql_translator_test.
# This may be replaced when dependencies are built.
