# Empty dependencies file for candidate_equivalence_test.
# This may be replaced when dependencies are built.
