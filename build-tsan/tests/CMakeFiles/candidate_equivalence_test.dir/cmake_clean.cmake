file(REMOVE_RECURSE
  "CMakeFiles/candidate_equivalence_test.dir/candidate_equivalence_test.cc.o"
  "CMakeFiles/candidate_equivalence_test.dir/candidate_equivalence_test.cc.o.d"
  "candidate_equivalence_test"
  "candidate_equivalence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/candidate_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
