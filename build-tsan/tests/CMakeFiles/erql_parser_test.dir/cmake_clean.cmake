file(REMOVE_RECURSE
  "CMakeFiles/erql_parser_test.dir/erql_parser_test.cc.o"
  "CMakeFiles/erql_parser_test.dir/erql_parser_test.cc.o.d"
  "erql_parser_test"
  "erql_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erql_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
