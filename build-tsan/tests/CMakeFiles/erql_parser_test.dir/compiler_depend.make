# Empty compiler generated dependencies file for erql_parser_test.
# This may be replaced when dependencies are built.
