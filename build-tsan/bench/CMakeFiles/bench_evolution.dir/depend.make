# Empty dependencies file for bench_evolution.
# This may be replaced when dependencies are built.
