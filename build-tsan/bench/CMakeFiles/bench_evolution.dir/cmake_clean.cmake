file(REMOVE_RECURSE
  "CMakeFiles/bench_evolution.dir/bench_evolution.cc.o"
  "CMakeFiles/bench_evolution.dir/bench_evolution.cc.o.d"
  "bench_evolution"
  "bench_evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
