# Empty dependencies file for bench_multivalued.
# This may be replaced when dependencies are built.
