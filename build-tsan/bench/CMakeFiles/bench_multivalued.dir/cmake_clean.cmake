file(REMOVE_RECURSE
  "CMakeFiles/bench_multivalued.dir/bench_multivalued.cc.o"
  "CMakeFiles/bench_multivalued.dir/bench_multivalued.cc.o.d"
  "bench_multivalued"
  "bench_multivalued.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multivalued.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
