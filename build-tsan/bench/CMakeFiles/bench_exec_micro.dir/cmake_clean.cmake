file(REMOVE_RECURSE
  "CMakeFiles/bench_exec_micro.dir/bench_exec_micro.cc.o"
  "CMakeFiles/bench_exec_micro.dir/bench_exec_micro.cc.o.d"
  "bench_exec_micro"
  "bench_exec_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exec_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
