# Empty compiler generated dependencies file for bench_weak_entities.
# This may be replaced when dependencies are built.
