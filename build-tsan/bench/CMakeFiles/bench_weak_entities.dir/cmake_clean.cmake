file(REMOVE_RECURSE
  "CMakeFiles/bench_weak_entities.dir/bench_weak_entities.cc.o"
  "CMakeFiles/bench_weak_entities.dir/bench_weak_entities.cc.o.d"
  "bench_weak_entities"
  "bench_weak_entities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_weak_entities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
