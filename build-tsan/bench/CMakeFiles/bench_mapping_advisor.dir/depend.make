# Empty dependencies file for bench_mapping_advisor.
# This may be replaced when dependencies are built.
