file(REMOVE_RECURSE
  "CMakeFiles/bench_mapping_advisor.dir/bench_mapping_advisor.cc.o"
  "CMakeFiles/bench_mapping_advisor.dir/bench_mapping_advisor.cc.o.d"
  "bench_mapping_advisor"
  "bench_mapping_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mapping_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
