
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_mapping_advisor.cc" "bench/CMakeFiles/bench_mapping_advisor.dir/bench_mapping_advisor.cc.o" "gcc" "bench/CMakeFiles/bench_mapping_advisor.dir/bench_mapping_advisor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/workload/CMakeFiles/erbium_workload.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/mapping/CMakeFiles/erbium_advisor.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/erql/CMakeFiles/erbium_erql.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/mapping/CMakeFiles/erbium_mapping.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/er/CMakeFiles/erbium_er.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/factorized/CMakeFiles/erbium_factorized.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/exec/CMakeFiles/erbium_exec.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/storage/CMakeFiles/erbium_storage.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/erbium_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
