# Empty compiler generated dependencies file for bench_factorized.
# This may be replaced when dependencies are built.
