file(REMOVE_RECURSE
  "CMakeFiles/bench_factorized.dir/bench_factorized.cc.o"
  "CMakeFiles/bench_factorized.dir/bench_factorized.cc.o.d"
  "bench_factorized"
  "bench_factorized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_factorized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
