# Empty compiler generated dependencies file for governance.
# This may be replaced when dependencies are built.
