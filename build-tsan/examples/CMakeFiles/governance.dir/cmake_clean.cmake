file(REMOVE_RECURSE
  "CMakeFiles/governance.dir/governance.cpp.o"
  "CMakeFiles/governance.dir/governance.cpp.o.d"
  "governance"
  "governance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/governance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
