# Empty dependencies file for erbium_shell.
# This may be replaced when dependencies are built.
