file(REMOVE_RECURSE
  "CMakeFiles/erbium_shell.dir/erbium_shell.cpp.o"
  "CMakeFiles/erbium_shell.dir/erbium_shell.cpp.o.d"
  "erbium_shell"
  "erbium_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erbium_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
