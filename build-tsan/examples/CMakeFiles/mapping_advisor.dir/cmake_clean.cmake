file(REMOVE_RECURSE
  "CMakeFiles/mapping_advisor.dir/mapping_advisor.cpp.o"
  "CMakeFiles/mapping_advisor.dir/mapping_advisor.cpp.o.d"
  "mapping_advisor"
  "mapping_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapping_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
