# Empty compiler generated dependencies file for mapping_advisor.
# This may be replaced when dependencies are built.
