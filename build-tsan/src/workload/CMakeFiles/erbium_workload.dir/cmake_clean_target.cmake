file(REMOVE_RECURSE
  "liberbium_workload.a"
)
