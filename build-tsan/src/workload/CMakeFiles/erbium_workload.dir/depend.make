# Empty dependencies file for erbium_workload.
# This may be replaced when dependencies are built.
