file(REMOVE_RECURSE
  "CMakeFiles/erbium_workload.dir/figure4.cc.o"
  "CMakeFiles/erbium_workload.dir/figure4.cc.o.d"
  "liberbium_workload.a"
  "liberbium_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erbium_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
