file(REMOVE_RECURSE
  "liberbium_erql.a"
)
