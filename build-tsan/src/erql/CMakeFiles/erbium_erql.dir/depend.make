# Empty dependencies file for erbium_erql.
# This may be replaced when dependencies are built.
