file(REMOVE_RECURSE
  "CMakeFiles/erbium_erql.dir/parser.cc.o"
  "CMakeFiles/erbium_erql.dir/parser.cc.o.d"
  "CMakeFiles/erbium_erql.dir/query_engine.cc.o"
  "CMakeFiles/erbium_erql.dir/query_engine.cc.o.d"
  "CMakeFiles/erbium_erql.dir/translator.cc.o"
  "CMakeFiles/erbium_erql.dir/translator.cc.o.d"
  "liberbium_erql.a"
  "liberbium_erql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erbium_erql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
