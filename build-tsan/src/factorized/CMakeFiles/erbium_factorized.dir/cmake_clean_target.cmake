file(REMOVE_RECURSE
  "liberbium_factorized.a"
)
