file(REMOVE_RECURSE
  "CMakeFiles/erbium_factorized.dir/factorized.cc.o"
  "CMakeFiles/erbium_factorized.dir/factorized.cc.o.d"
  "liberbium_factorized.a"
  "liberbium_factorized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erbium_factorized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
