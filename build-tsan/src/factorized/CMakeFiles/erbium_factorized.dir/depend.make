# Empty dependencies file for erbium_factorized.
# This may be replaced when dependencies are built.
