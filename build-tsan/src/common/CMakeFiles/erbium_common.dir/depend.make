# Empty dependencies file for erbium_common.
# This may be replaced when dependencies are built.
