file(REMOVE_RECURSE
  "liberbium_common.a"
)
