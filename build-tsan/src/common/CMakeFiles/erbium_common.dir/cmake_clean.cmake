file(REMOVE_RECURSE
  "CMakeFiles/erbium_common.dir/lexer.cc.o"
  "CMakeFiles/erbium_common.dir/lexer.cc.o.d"
  "CMakeFiles/erbium_common.dir/status.cc.o"
  "CMakeFiles/erbium_common.dir/status.cc.o.d"
  "CMakeFiles/erbium_common.dir/string_util.cc.o"
  "CMakeFiles/erbium_common.dir/string_util.cc.o.d"
  "CMakeFiles/erbium_common.dir/thread_pool.cc.o"
  "CMakeFiles/erbium_common.dir/thread_pool.cc.o.d"
  "CMakeFiles/erbium_common.dir/type.cc.o"
  "CMakeFiles/erbium_common.dir/type.cc.o.d"
  "CMakeFiles/erbium_common.dir/value.cc.o"
  "CMakeFiles/erbium_common.dir/value.cc.o.d"
  "liberbium_common.a"
  "liberbium_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erbium_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
