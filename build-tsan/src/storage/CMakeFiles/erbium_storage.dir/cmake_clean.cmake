file(REMOVE_RECURSE
  "CMakeFiles/erbium_storage.dir/catalog.cc.o"
  "CMakeFiles/erbium_storage.dir/catalog.cc.o.d"
  "CMakeFiles/erbium_storage.dir/index.cc.o"
  "CMakeFiles/erbium_storage.dir/index.cc.o.d"
  "CMakeFiles/erbium_storage.dir/schema.cc.o"
  "CMakeFiles/erbium_storage.dir/schema.cc.o.d"
  "CMakeFiles/erbium_storage.dir/table.cc.o"
  "CMakeFiles/erbium_storage.dir/table.cc.o.d"
  "liberbium_storage.a"
  "liberbium_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erbium_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
