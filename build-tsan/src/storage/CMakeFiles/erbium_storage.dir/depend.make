# Empty dependencies file for erbium_storage.
# This may be replaced when dependencies are built.
