file(REMOVE_RECURSE
  "liberbium_storage.a"
)
