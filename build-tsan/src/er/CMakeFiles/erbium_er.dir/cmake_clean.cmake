file(REMOVE_RECURSE
  "CMakeFiles/erbium_er.dir/ddl_parser.cc.o"
  "CMakeFiles/erbium_er.dir/ddl_parser.cc.o.d"
  "CMakeFiles/erbium_er.dir/er_graph.cc.o"
  "CMakeFiles/erbium_er.dir/er_graph.cc.o.d"
  "CMakeFiles/erbium_er.dir/er_schema.cc.o"
  "CMakeFiles/erbium_er.dir/er_schema.cc.o.d"
  "liberbium_er.a"
  "liberbium_er.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erbium_er.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
