# Empty dependencies file for erbium_er.
# This may be replaced when dependencies are built.
