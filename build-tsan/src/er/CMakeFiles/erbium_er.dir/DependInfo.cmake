
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/er/ddl_parser.cc" "src/er/CMakeFiles/erbium_er.dir/ddl_parser.cc.o" "gcc" "src/er/CMakeFiles/erbium_er.dir/ddl_parser.cc.o.d"
  "/root/repo/src/er/er_graph.cc" "src/er/CMakeFiles/erbium_er.dir/er_graph.cc.o" "gcc" "src/er/CMakeFiles/erbium_er.dir/er_graph.cc.o.d"
  "/root/repo/src/er/er_schema.cc" "src/er/CMakeFiles/erbium_er.dir/er_schema.cc.o" "gcc" "src/er/CMakeFiles/erbium_er.dir/er_schema.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/erbium_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
