file(REMOVE_RECURSE
  "liberbium_er.a"
)
