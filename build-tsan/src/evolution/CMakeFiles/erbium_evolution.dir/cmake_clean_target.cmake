file(REMOVE_RECURSE
  "liberbium_evolution.a"
)
