# Empty compiler generated dependencies file for erbium_evolution.
# This may be replaced when dependencies are built.
