file(REMOVE_RECURSE
  "CMakeFiles/erbium_evolution.dir/evolution.cc.o"
  "CMakeFiles/erbium_evolution.dir/evolution.cc.o.d"
  "liberbium_evolution.a"
  "liberbium_evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erbium_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
