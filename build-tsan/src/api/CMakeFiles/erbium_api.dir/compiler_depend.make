# Empty compiler generated dependencies file for erbium_api.
# This may be replaced when dependencies are built.
