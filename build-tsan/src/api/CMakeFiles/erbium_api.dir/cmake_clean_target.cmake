file(REMOVE_RECURSE
  "liberbium_api.a"
)
