file(REMOVE_RECURSE
  "CMakeFiles/erbium_api.dir/entity_store.cc.o"
  "CMakeFiles/erbium_api.dir/entity_store.cc.o.d"
  "liberbium_api.a"
  "liberbium_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erbium_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
