file(REMOVE_RECURSE
  "CMakeFiles/erbium_mapping.dir/database.cc.o"
  "CMakeFiles/erbium_mapping.dir/database.cc.o.d"
  "CMakeFiles/erbium_mapping.dir/database_rel.cc.o"
  "CMakeFiles/erbium_mapping.dir/database_rel.cc.o.d"
  "CMakeFiles/erbium_mapping.dir/database_scan.cc.o"
  "CMakeFiles/erbium_mapping.dir/database_scan.cc.o.d"
  "CMakeFiles/erbium_mapping.dir/mapping_spec.cc.o"
  "CMakeFiles/erbium_mapping.dir/mapping_spec.cc.o.d"
  "CMakeFiles/erbium_mapping.dir/physical_mapping.cc.o"
  "CMakeFiles/erbium_mapping.dir/physical_mapping.cc.o.d"
  "liberbium_mapping.a"
  "liberbium_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erbium_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
