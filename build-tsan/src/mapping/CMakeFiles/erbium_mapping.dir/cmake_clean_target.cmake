file(REMOVE_RECURSE
  "liberbium_mapping.a"
)
