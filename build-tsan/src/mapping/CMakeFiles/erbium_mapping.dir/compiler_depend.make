# Empty compiler generated dependencies file for erbium_mapping.
# This may be replaced when dependencies are built.
