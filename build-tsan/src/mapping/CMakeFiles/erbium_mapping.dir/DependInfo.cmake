
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mapping/database.cc" "src/mapping/CMakeFiles/erbium_mapping.dir/database.cc.o" "gcc" "src/mapping/CMakeFiles/erbium_mapping.dir/database.cc.o.d"
  "/root/repo/src/mapping/database_rel.cc" "src/mapping/CMakeFiles/erbium_mapping.dir/database_rel.cc.o" "gcc" "src/mapping/CMakeFiles/erbium_mapping.dir/database_rel.cc.o.d"
  "/root/repo/src/mapping/database_scan.cc" "src/mapping/CMakeFiles/erbium_mapping.dir/database_scan.cc.o" "gcc" "src/mapping/CMakeFiles/erbium_mapping.dir/database_scan.cc.o.d"
  "/root/repo/src/mapping/mapping_spec.cc" "src/mapping/CMakeFiles/erbium_mapping.dir/mapping_spec.cc.o" "gcc" "src/mapping/CMakeFiles/erbium_mapping.dir/mapping_spec.cc.o.d"
  "/root/repo/src/mapping/physical_mapping.cc" "src/mapping/CMakeFiles/erbium_mapping.dir/physical_mapping.cc.o" "gcc" "src/mapping/CMakeFiles/erbium_mapping.dir/physical_mapping.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/er/CMakeFiles/erbium_er.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/factorized/CMakeFiles/erbium_factorized.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/exec/CMakeFiles/erbium_exec.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/storage/CMakeFiles/erbium_storage.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/erbium_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
