file(REMOVE_RECURSE
  "liberbium_advisor.a"
)
