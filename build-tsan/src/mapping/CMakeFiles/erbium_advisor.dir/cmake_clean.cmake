file(REMOVE_RECURSE
  "CMakeFiles/erbium_advisor.dir/advisor.cc.o"
  "CMakeFiles/erbium_advisor.dir/advisor.cc.o.d"
  "liberbium_advisor.a"
  "liberbium_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erbium_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
