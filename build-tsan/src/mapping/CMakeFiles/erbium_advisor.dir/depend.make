# Empty dependencies file for erbium_advisor.
# This may be replaced when dependencies are built.
