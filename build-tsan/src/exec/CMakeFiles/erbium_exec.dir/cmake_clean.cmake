file(REMOVE_RECURSE
  "CMakeFiles/erbium_exec.dir/aggregate.cc.o"
  "CMakeFiles/erbium_exec.dir/aggregate.cc.o.d"
  "CMakeFiles/erbium_exec.dir/expr.cc.o"
  "CMakeFiles/erbium_exec.dir/expr.cc.o.d"
  "CMakeFiles/erbium_exec.dir/join.cc.o"
  "CMakeFiles/erbium_exec.dir/join.cc.o.d"
  "CMakeFiles/erbium_exec.dir/operator.cc.o"
  "CMakeFiles/erbium_exec.dir/operator.cc.o.d"
  "CMakeFiles/erbium_exec.dir/parallel.cc.o"
  "CMakeFiles/erbium_exec.dir/parallel.cc.o.d"
  "CMakeFiles/erbium_exec.dir/sort.cc.o"
  "CMakeFiles/erbium_exec.dir/sort.cc.o.d"
  "liberbium_exec.a"
  "liberbium_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erbium_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
