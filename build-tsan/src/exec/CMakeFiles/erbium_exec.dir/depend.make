# Empty dependencies file for erbium_exec.
# This may be replaced when dependencies are built.
