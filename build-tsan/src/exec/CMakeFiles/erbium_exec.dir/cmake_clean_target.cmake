file(REMOVE_RECURSE
  "liberbium_exec.a"
)
