
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/aggregate.cc" "src/exec/CMakeFiles/erbium_exec.dir/aggregate.cc.o" "gcc" "src/exec/CMakeFiles/erbium_exec.dir/aggregate.cc.o.d"
  "/root/repo/src/exec/expr.cc" "src/exec/CMakeFiles/erbium_exec.dir/expr.cc.o" "gcc" "src/exec/CMakeFiles/erbium_exec.dir/expr.cc.o.d"
  "/root/repo/src/exec/join.cc" "src/exec/CMakeFiles/erbium_exec.dir/join.cc.o" "gcc" "src/exec/CMakeFiles/erbium_exec.dir/join.cc.o.d"
  "/root/repo/src/exec/operator.cc" "src/exec/CMakeFiles/erbium_exec.dir/operator.cc.o" "gcc" "src/exec/CMakeFiles/erbium_exec.dir/operator.cc.o.d"
  "/root/repo/src/exec/parallel.cc" "src/exec/CMakeFiles/erbium_exec.dir/parallel.cc.o" "gcc" "src/exec/CMakeFiles/erbium_exec.dir/parallel.cc.o.d"
  "/root/repo/src/exec/sort.cc" "src/exec/CMakeFiles/erbium_exec.dir/sort.cc.o" "gcc" "src/exec/CMakeFiles/erbium_exec.dir/sort.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/storage/CMakeFiles/erbium_storage.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/erbium_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
