// Schema evolution walkthrough (paper Section 3): the changes that are
// painful on a raw relational schema but small at the E/R level —
//   1. a single-valued attribute becomes multi-valued,
//   2. a many-to-one relationship becomes many-to-many,
//   3. the physical mapping changes with NO schema/query change,
//   4. rollback to a previous version.
//
// Build & run:  cmake --build build && ./build/examples/schema_evolution

#include <cstdio>

#include "erql/query_engine.h"
#include "evolution/evolution.h"
#include "workload/figure4.h"

using erbium::Cardinality;
using erbium::ERSchema;
using erbium::Figure4Config;
using erbium::VersionedDatabase;

namespace {

void Show(const char* label, erbium::MappedDatabase* db, const char* query) {
  auto result = erbium::erql::QueryEngine::Execute(db, query);
  if (!result.ok()) {
    std::printf("%s\n  %s\n  -> %s\n\n", label, query,
                result.status().ToString().c_str());
    return;
  }
  std::printf("%s\n  erql> %s\n%s\n", label, query,
              result->ToTable(5).c_str());
}

}  // namespace

int main() {
  auto schema = erbium::MakeFigure4Schema();
  if (!schema.ok()) return 1;
  auto db = VersionedDatabase::Create(std::move(schema).value(),
                                      erbium::Figure4M1());
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  Figure4Config config;
  config.num_r = 400;
  config.num_s = 120;
  erbium::Status st = erbium::PopulateFigure4((*db)->current(), config);
  if (!st.ok()) return 1;

  std::printf("== v0: initial schema under mapping M1 ==\n\n");
  Show("Scalar attribute access:", (*db)->current(),
       "SELECT r_id, r_a3 FROM R WHERE r_id = 7");

  // ---- 1. single-valued -> multi-valued ------------------------------------
  // On a normalized relational schema this forces a new table and a
  // rewrite of every query touching r_a3. Here: one evolution call; data
  // migrates (scalars become 1-element arrays); queries change locally
  // (unnest where element access is wanted) — the paper's example.
  st = (*db)->Evolve(
      [](ERSchema* s) {
        return erbium::evolution::MakeAttributeMultiValued(s, "R", "r_a3");
      },
      "r_a3: one city -> many cities");
  if (!st.ok()) {
    std::fprintf(stderr, "evolve: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("== v1: r_a3 is now multi-valued ==\n\n");
  Show("Array form:", (*db)->current(),
       "SELECT r_id, r_a3 FROM R WHERE r_id = 7");
  Show("Localized query change (unnest):", (*db)->current(),
       "SELECT r_id, unnest(r_a3) AS city FROM R WHERE r_id = 7");

  // ---- 2. cardinality relaxation -------------------------------------------
  // R1R3 was 1:N (each child has one parent). Making it M:N is a minor
  // E/R change; the paper's aggregate query keeps working unmodified.
  const char* advisee_query =
      "SELECT p.r_id, count(*) AS children FROM R1 p JOIN R3 c ON R1R3";
  Show("Before (1:N):", (*db)->current(), advisee_query);
  st = (*db)->Evolve(
      [](ERSchema* s) {
        return erbium::evolution::ChangeRelationshipCardinality(
            s, "R1R3", Cardinality::kMany, Cardinality::kMany);
      },
      "R1R3: 1:N -> M:N");
  if (!st.ok()) return 1;
  std::printf("== v2: R1R3 is now many-to-many ==\n\n");
  Show("Same query, unmodified:", (*db)->current(), advisee_query);

  // ---- 3. remap: physical change only ----------------------------------------
  st = (*db)->Remap(erbium::Figure4M2(), "store MV attrs as arrays");
  if (!st.ok()) return 1;
  std::printf("== v3: physical mapping switched to arrays (M2-style) ==\n\n");
  Show("Same query on the new physical layout:", (*db)->current(),
       "SELECT r_id, unnest(r_a3) AS city FROM R WHERE r_id = 7");

  // ---- 4. version history + rollback ------------------------------------------
  std::printf("Version history:\n");
  for (const auto& version : (*db)->History()) {
    std::printf("  v%d [%s] %s\n", version.version,
                version.mapping_name.c_str(), version.description.c_str());
  }
  st = (*db)->Rollback();
  if (!st.ok()) return 1;
  std::printf("\nRolled back to v%d (%s).\n", (*db)->version(),
              (*db)->current()->mapping().spec().name.c_str());
  Show("Queries see the pre-remap version again:", (*db)->current(),
       "SELECT r_id, unnest(r_a3) AS city FROM R WHERE r_id = 7");
  return 0;
}
