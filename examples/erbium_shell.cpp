// Interactive ErbiumDB shell: type DDL to build an E/R schema, ERQL to
// query, and backslash commands to inspect the system. A tiny REPL over
// the full stack (DDL layer -> mapping -> translation -> execution),
// handy for exploring how mappings change plans.
//
// Statement dispatch lives in api::StatementRunner — the same path the
// network server (src/server) drives — so the shell and the server
// cannot drift apart; only the backslash inspection commands and the
// REPL loop are shell-specific.
//
//   ./build/examples/erbium_shell            # empty schema, M1 mapping
//   ./build/examples/erbium_shell --figure4  # preloaded paper schema+data
//
// Commands:
//   CREATE ENTITY ... ;            extend the schema (rebuilds the DB)
//   SELECT ... ;                   run an ERQL query
//   EXPLAIN [ANALYZE] SELECT ...;  show the annotated physical plan
//   SHOW METRICS [LIKE '<glob>'];  dump the process metrics registry
//   SHOW QUERIES [SLOW] [LIMIT n]; the query log / slow-query ring
//   SHOW SESSIONS ;                live sessions (shell + server clients)
//   SHOW WORKLOAD [LIMIT n];       captured E/R access profile + hot shapes
//   ADVISE [LIMIT n];              rank candidate mappings by live traffic
//   EXPORT WORKLOAD INTO '<file>'; snapshot the workload profile as JSON
//   LOAD WORKLOAD FROM '<file>';   replace the profile from a snapshot
//   TRACE [INTO '<file>'] SELECT ...;  run + emit a Chrome trace JSON
//   ATTACH DATABASE '<dir>' ;      bind to an on-disk directory (runs
//                                  recovery; subsequent writes are WAL'd)
//   CHECKPOINT ;                   snapshot + truncate the WAL
//   INSERT <Entity> (a = 1, ...);  insert one entity instance
//   REMAP <preset> ;               switch mapping preset + migrate
//   \metrics           Prometheus text exposition of the registry
//   \tables            list physical tables of the current mapping
//   \mapping           show the active mapping spec (JSON)
//   \mappings          list selectable mapping presets
//   \remap <name>      switch mapping preset (m1..m6, m6pg) + migrate
//   \plan SELECT ...   show the physical plan without running it
//   \schema            dump the E/R schema
//   \graph             dump the E/R graph as graphviz
//   \cover             show the current mapping as a cover of the graph
//   \quit

#include <cstdio>
#include <iostream>
#include <string>

#include "api/statement_runner.h"
#include "er/er_graph.h"
#include "erql/query_engine.h"
#include "obs/export.h"
#include "obs/session.h"

namespace {

using erbium::ERGraph;
using erbium::MappingSpec;
using erbium::Status;
using erbium::api::OutputShape;
using erbium::api::StatementOutcome;
using erbium::api::StatementRunner;

struct Shell {
  std::unique_ptr<StatementRunner> runner;

  void HandleCommand(const std::string& line) {
    auto starts = [&](const char* prefix) {
      return line.rfind(prefix, 0) == 0;
    };
    if (starts("\\tables")) {
      for (const auto& table : runner->db()->mapping().tables()) {
        std::printf("  %s\n", table.ToString().c_str());
      }
      for (const auto& pair : runner->db()->mapping().pairs()) {
        std::printf("  [pair] %s (left of %s)\n", pair.name.c_str(),
                    pair.relationship.c_str());
      }
      return;
    }
    if (starts("\\metrics")) {
      std::printf("%s", erbium::obs::ExportPrometheusText().c_str());
      return;
    }
    if (starts("\\mappings")) {
      std::printf("  m1 m2 m3 m4 m5 m6 m6pg   (\\remap <name>)\n");
      return;
    }
    if (starts("\\mapping")) {
      std::printf("%s\n", runner->db()->mapping().spec().ToJson().c_str());
      return;
    }
    if (starts("\\remap ")) {
      HandleStatement("REMAP " + line.substr(7));
      return;
    }
    if (starts("\\plan ")) {
      auto compiled =
          erbium::erql::QueryEngine::Compile(runner->db(), line.substr(6));
      if (!compiled.ok()) {
        std::printf("%s\n", compiled.status().ToString().c_str());
        return;
      }
      std::printf("%s", erbium::PrintPlan(*compiled->plan).c_str());
      return;
    }
    if (starts("\\schema")) {
      std::printf("%s", runner->SchemaView()->ToString().c_str());
      return;
    }
    if (starts("\\graph")) {
      auto graph = ERGraph::Build(*runner->SchemaView());
      if (graph.ok()) std::printf("%s", graph->ToDot().c_str());
      return;
    }
    if (starts("\\cover")) {
      auto graph = ERGraph::Build(*runner->SchemaView());
      if (!graph.ok()) return;
      auto cover = runner->db()->mapping().Cover(*graph);
      if (!cover.ok()) {
        std::printf("%s\n", cover.status().ToString().c_str());
        return;
      }
      for (size_t i = 0; i < cover->size(); ++i) {
        std::printf("  structure %2zu: {", i);
        bool first = true;
        for (int node : (*cover)[i]) {
          std::printf("%s%s", first ? "" : ", ",
                      graph->nodes()[node].name.c_str());
          first = false;
        }
        std::printf("}\n");
      }
      return;
    }
    std::printf("unknown command: %s\n", line.c_str());
  }

  void HandleStatement(const std::string& statement) {
    auto outcome = runner->Execute(statement);
    if (!outcome.ok()) {
      std::printf("%s\n", outcome.status().ToString().c_str());
      return;
    }
    switch (outcome->shape) {
      case OutputShape::kMessage:
        std::printf("%s\n", outcome->message.c_str());
        break;
      case OutputShape::kLines:
        for (const erbium::Row& row : outcome->result.rows) {
          std::printf("%s\n", row[0].as_string().c_str());
        }
        break;
      case OutputShape::kTable:
        std::printf("%s", outcome->result.ToTable(25).c_str());
        std::printf("(%zu rows)\n", outcome->result.rows.size());
        break;
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  Shell shell;
  StatementRunner::Options options;
  options.figure4 = argc > 1 && std::string(argv[1]) == "--figure4";
  options.figure4_num_r = 1000;
  options.figure4_num_s = 300;
  auto runner = StatementRunner::Create(options);
  if (!runner.ok()) {
    std::fprintf(stderr, "%s\n", runner.status().ToString().c_str());
    return 1;
  }
  shell.runner = std::move(runner).value();
  if (options.figure4) {
    std::printf("Loaded the paper's Figure 4 schema with sample data.\n");
  }

  // Register the shell itself as a session so SHOW SESSIONS and the
  // query-log session column work locally exactly as they do against a
  // server.
  erbium::obs::SessionInfo info;
  info.name = "shell";
  info.peer = "local";
  info.state = "idle";
  uint64_t session_id = erbium::obs::SessionRegistry::Global().Register(info);
  erbium::obs::ScopedSessionTag tag("shell");

  std::printf("ErbiumDB shell — \\tables \\mapping \\remap \\plan \\metrics "
              "\\schema \\graph \\cover \\quit; SHOW METRICS / SHOW QUERIES "
              "[SLOW] / SHOW SESSIONS / SHOW WORKLOAD / ADVISE / TRACE "
              "SELECT ...; EXPORT|LOAD WORKLOAD / ATTACH DATABASE '<dir>' / "
              "CHECKPOINT / INSERT / REMAP ...; end statements "
              "with ';'\n");
  std::string buffer;
  std::string line;
  std::printf("erbium> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    if (!line.empty() && line[0] == '\\') {
      if (line.rfind("\\quit", 0) == 0 || line.rfind("\\q", 0) == 0) break;
      shell.HandleCommand(line);
      std::printf("erbium> ");
      std::fflush(stdout);
      continue;
    }
    buffer += line;
    buffer += "\n";
    size_t semi = buffer.find(';');
    while (semi != std::string::npos) {
      std::string statement = buffer.substr(0, semi);
      buffer.erase(0, semi + 1);
      // Trim.
      size_t begin = statement.find_first_not_of(" \t\r\n");
      if (begin != std::string::npos) {
        statement = statement.substr(begin);
        erbium::obs::SessionRegistry::Global().Update(
            session_id, [&statement](erbium::obs::SessionInfo* s) {
              s->state = "executing";
              s->last_statement = statement;
            });
        shell.HandleStatement(statement);
        erbium::obs::SessionRegistry::Global().Update(
            session_id, [](erbium::obs::SessionInfo* s) {
              s->state = "idle";
              ++s->statements;
            });
      }
      semi = buffer.find(';');
    }
    std::printf("erbium> ");
    std::fflush(stdout);
  }
  erbium::obs::SessionRegistry::Global().Deregister(session_id);
  std::printf("\n");
  return 0;
}
