// Interactive ErbiumDB shell: type DDL to build an E/R schema, ERQL to
// query, and backslash commands to inspect the system. A tiny REPL over
// the full stack (DDL layer -> mapping -> translation -> execution),
// handy for exploring how mappings change plans.
//
//   ./build/examples/erbium_shell            # empty schema, M1 mapping
//   ./build/examples/erbium_shell --figure4  # preloaded paper schema+data
//
// Commands:
//   CREATE ENTITY ... ;            extend the schema (rebuilds the DB)
//   SELECT ... ;                   run an ERQL query
//   EXPLAIN [ANALYZE] SELECT ...;  show the annotated physical plan
//   SHOW METRICS [LIKE '<glob>'];  dump the process metrics registry
//   SHOW QUERIES [SLOW] [LIMIT n]; the query log / slow-query ring
//   TRACE [INTO '<file>'] SELECT ...;  run + emit a Chrome trace JSON
//   INSERT <Entity> {json-ish} ;   not supported — use the C++ API
//   \metrics           Prometheus text exposition of the registry
//   \tables            list physical tables of the current mapping
//   \mapping           show the active mapping spec (JSON)
//   \mappings          list selectable mapping presets
//   \remap <name>      switch mapping preset (m1..m6, m6pg) + migrate
//   \plan SELECT ...   show the physical plan without running it
//   \schema            dump the E/R schema
//   \graph             dump the E/R graph as graphviz
//   \cover             show the current mapping as a cover of the graph
//   \quit

#include <cstdio>
#include <iostream>
#include <string>

#include "er/ddl_parser.h"
#include "er/er_graph.h"
#include "erql/query_engine.h"
#include "evolution/evolution.h"
#include "obs/export.h"
#include "workload/figure4.h"

namespace {

using erbium::ERGraph;
using erbium::ERSchema;
using erbium::MappedDatabase;
using erbium::MappingSpec;
using erbium::Status;

struct Shell {
  std::shared_ptr<ERSchema> schema = std::make_shared<ERSchema>();
  std::unique_ptr<MappedDatabase> db;
  MappingSpec spec = MappingSpec::Normalized("m1");

  Status Rebuild() {
    // Re-create the database under the current schema+spec and migrate
    // whatever data the old instance held.
    auto fresh = MappedDatabase::Create(schema.get(), spec);
    if (!fresh.ok()) return fresh.status();
    if (db != nullptr) {
      Status migrated =
          erbium::evolution::MigrateData(db.get(), fresh->get());
      if (!migrated.ok()) return migrated;
    }
    db = std::move(fresh).value();
    return Status::OK();
  }

  MappingSpec PresetByName(const std::string& name) {
    if (name == "m2") return erbium::Figure4M2();
    if (name == "m3") return erbium::Figure4M3();
    if (name == "m4") return erbium::Figure4M4();
    if (name == "m5") return erbium::Figure4M5();
    if (name == "m6") return erbium::Figure4M6();
    if (name == "m6pg") return erbium::Figure4M6Pg();
    return MappingSpec::Normalized("m1");
  }

  void HandleCommand(const std::string& line) {
    auto starts = [&](const char* prefix) {
      return line.rfind(prefix, 0) == 0;
    };
    if (starts("\\tables")) {
      for (const auto& table : db->mapping().tables()) {
        std::printf("  %s\n", table.ToString().c_str());
      }
      for (const auto& pair : db->mapping().pairs()) {
        std::printf("  [pair] %s (left of %s)\n", pair.name.c_str(),
                    pair.relationship.c_str());
      }
      return;
    }
    if (starts("\\metrics")) {
      std::printf("%s", erbium::obs::ExportPrometheusText().c_str());
      return;
    }
    if (starts("\\mappings")) {
      std::printf("  m1 m2 m3 m4 m5 m6 m6pg   (\\remap <name>)\n");
      return;
    }
    if (starts("\\mapping")) {
      std::printf("%s\n", db->mapping().spec().ToJson().c_str());
      return;
    }
    if (starts("\\remap ")) {
      MappingSpec next = PresetByName(line.substr(7));
      MappingSpec old = spec;
      spec = next;
      Status st = Rebuild();
      if (!st.ok()) {
        std::printf("remap failed: %s\n", st.ToString().c_str());
        spec = old;
        return;
      }
      std::printf("remapped to %s (data migrated)\n",
                  spec.ToString().c_str());
      return;
    }
    if (starts("\\plan ")) {
      auto compiled =
          erbium::erql::QueryEngine::Compile(db.get(), line.substr(6));
      if (!compiled.ok()) {
        std::printf("%s\n", compiled.status().ToString().c_str());
        return;
      }
      std::printf("%s", erbium::PrintPlan(*compiled->plan).c_str());
      return;
    }
    if (starts("\\schema")) {
      std::printf("%s", schema->ToString().c_str());
      return;
    }
    if (starts("\\graph")) {
      auto graph = ERGraph::Build(*schema);
      if (graph.ok()) std::printf("%s", graph->ToDot().c_str());
      return;
    }
    if (starts("\\cover")) {
      auto graph = ERGraph::Build(*schema);
      if (!graph.ok()) return;
      auto cover = db->mapping().Cover(*graph);
      if (!cover.ok()) {
        std::printf("%s\n", cover.status().ToString().c_str());
        return;
      }
      for (size_t i = 0; i < cover->size(); ++i) {
        std::printf("  structure %2zu: {", i);
        bool first = true;
        for (int node : (*cover)[i]) {
          std::printf("%s%s", first ? "" : ", ",
                      graph->nodes()[node].name.c_str());
          first = false;
        }
        std::printf("}\n");
      }
      return;
    }
    std::printf("unknown command: %s\n", line.c_str());
  }

  void HandleStatement(const std::string& statement) {
    std::string lowered;
    for (char c : statement) {
      lowered.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    }
    if (lowered.rfind("create", 0) == 0) {
      ERSchema next = *schema;
      Status st = erbium::DdlParser::Execute(statement + ";", &next);
      if (!st.ok()) {
        std::printf("%s\n", st.ToString().c_str());
        return;
      }
      *schema = std::move(next);
      st = Rebuild();
      if (!st.ok()) {
        std::printf("rebuild failed: %s\n", st.ToString().c_str());
        return;
      }
      std::printf("ok (%zu physical tables)\n",
                  db->mapping().tables().size());
      return;
    }
    if (lowered.rfind("select", 0) == 0 || lowered.rfind("explain", 0) == 0 ||
        lowered.rfind("show", 0) == 0 || lowered.rfind("trace", 0) == 0) {
      auto result = erbium::erql::QueryEngine::Execute(db.get(), statement);
      if (!result.ok()) {
        std::printf("%s\n", result.status().ToString().c_str());
        return;
      }
      if (lowered.rfind("explain", 0) == 0 || lowered.rfind("trace", 0) == 0) {
        // Plan / trace output is plain lines; skip the table frame.
        for (const erbium::Row& row : result->rows) {
          std::printf("%s\n", row[0].as_string().c_str());
        }
        return;
      }
      std::printf("%s", result->ToTable(25).c_str());
      std::printf("(%zu rows)\n", result->rows.size());
      return;
    }
    std::printf(
        "only CREATE / SELECT / EXPLAIN [ANALYZE] / SHOW / TRACE "
        "statements and \\commands are supported\n");
  }
};

}  // namespace

int main(int argc, char** argv) {
  Shell shell;
  bool figure4 = argc > 1 && std::string(argv[1]) == "--figure4";
  if (figure4) {
    auto schema = erbium::MakeFigure4Schema();
    if (!schema.ok()) return 1;
    *shell.schema = std::move(schema).value();
  }
  Status st = shell.Rebuild();
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (figure4) {
    erbium::Figure4Config config;
    config.num_r = 1000;
    config.num_s = 300;
    st = erbium::PopulateFigure4(shell.db.get(), config);
    if (!st.ok()) return 1;
    std::printf("Loaded the paper's Figure 4 schema with sample data.\n");
  }
  std::printf("ErbiumDB shell — \\tables \\mapping \\remap \\plan \\metrics "
              "\\schema \\graph \\cover \\quit; SHOW METRICS / SHOW QUERIES "
              "[SLOW] / TRACE SELECT ...; end statements with ';'\n");
  std::string buffer;
  std::string line;
  std::printf("erbium> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    if (!line.empty() && line[0] == '\\') {
      if (line.rfind("\\quit", 0) == 0 || line.rfind("\\q", 0) == 0) break;
      shell.HandleCommand(line);
      std::printf("erbium> ");
      std::fflush(stdout);
      continue;
    }
    buffer += line;
    buffer += "\n";
    size_t semi = buffer.find(';');
    while (semi != std::string::npos) {
      std::string statement = buffer.substr(0, semi);
      buffer.erase(0, semi + 1);
      // Trim.
      size_t begin = statement.find_first_not_of(" \t\r\n");
      if (begin != std::string::npos) {
        statement = statement.substr(begin);
        shell.HandleStatement(statement);
      }
      semi = buffer.find(';');
    }
    std::printf("erbium> ");
    std::fflush(stdout);
  }
  std::printf("\n");
  return 0;
}
