// Interactive ErbiumDB shell: type DDL to build an E/R schema, ERQL to
// query, and backslash commands to inspect the system. A tiny REPL over
// the full stack (DDL layer -> mapping -> translation -> execution),
// handy for exploring how mappings change plans.
//
//   ./build/examples/erbium_shell            # empty schema, M1 mapping
//   ./build/examples/erbium_shell --figure4  # preloaded paper schema+data
//
// Commands:
//   CREATE ENTITY ... ;            extend the schema (rebuilds the DB)
//   SELECT ... ;                   run an ERQL query
//   EXPLAIN [ANALYZE] SELECT ...;  show the annotated physical plan
//   SHOW METRICS [LIKE '<glob>'];  dump the process metrics registry
//   SHOW QUERIES [SLOW] [LIMIT n]; the query log / slow-query ring
//   TRACE [INTO '<file>'] SELECT ...;  run + emit a Chrome trace JSON
//   ATTACH DATABASE '<dir>' ;      bind to an on-disk directory (runs
//                                  recovery; subsequent writes are WAL'd)
//   CHECKPOINT ;                   snapshot + truncate the WAL
//   INSERT <Entity> (a = 1, ...);  insert one entity instance
//   \metrics           Prometheus text exposition of the registry
//   \tables            list physical tables of the current mapping
//   \mapping           show the active mapping spec (JSON)
//   \mappings          list selectable mapping presets
//   \remap <name>      switch mapping preset (m1..m6, m6pg) + migrate
//   \plan SELECT ...   show the physical plan without running it
//   \schema            dump the E/R schema
//   \graph             dump the E/R graph as graphviz
//   \cover             show the current mapping as a cover of the graph
//   \quit

#include <cstdio>
#include <iostream>
#include <string>

#include "common/lexer.h"
#include "durability/durable_db.h"
#include "er/ddl_parser.h"
#include "er/er_graph.h"
#include "erql/parser.h"
#include "erql/query_engine.h"
#include "evolution/evolution.h"
#include "obs/export.h"
#include "workload/figure4.h"

namespace {

using erbium::ERGraph;
using erbium::ERSchema;
using erbium::MappedDatabase;
using erbium::MappingSpec;
using erbium::Status;
using erbium::Value;
using erbium::durability::DurableDatabase;

struct Shell {
  std::shared_ptr<ERSchema> schema = std::make_shared<ERSchema>();
  std::unique_ptr<MappedDatabase> db;
  std::unique_ptr<DurableDatabase> durable;
  MappingSpec spec = MappingSpec::Normalized("m1");
  // Every DDL statement executed so far; an ATTACH seeds the durable
  // database's schema with it.
  std::string ddl_history;

  MappedDatabase* DB() { return durable ? durable->db() : db.get(); }
  const ERSchema* Schema() {
    return durable ? &durable->schema() : schema.get();
  }

  /// Re-creates the database under `next_schema` (a separate object —
  /// the old instance keeps reading the old schema while data migrates)
  /// and the current spec, then swaps the schema in. Pass the existing
  /// `schema` for a pure remap.
  Status Rebuild(std::shared_ptr<ERSchema> next_schema) {
    auto fresh = MappedDatabase::Create(next_schema.get(), spec);
    if (!fresh.ok()) return fresh.status();
    if (db != nullptr) {
      Status migrated =
          erbium::evolution::MigrateData(db.get(), fresh->get());
      if (!migrated.ok()) return migrated;
    }
    db = std::move(fresh).value();
    schema = std::move(next_schema);
    return Status::OK();
  }

  MappingSpec PresetByName(const std::string& name) {
    if (name == "m2") return erbium::Figure4M2();
    if (name == "m3") return erbium::Figure4M3();
    if (name == "m4") return erbium::Figure4M4();
    if (name == "m5") return erbium::Figure4M5();
    if (name == "m6") return erbium::Figure4M6();
    if (name == "m6pg") return erbium::Figure4M6Pg();
    return MappingSpec::Normalized("m1");
  }

  Status Attach(const std::string& dir) {
    DurableDatabase::Options options;
    options.spec = spec;
    options.initial_ddl = ddl_history;
    auto opened = DurableDatabase::Open(dir, std::move(options));
    if (!opened.ok()) return opened.status();
    durable = std::move(opened).value();
    db.reset();
    const auto& info = durable->recovery_info();
    std::printf("attached %s (snapshot gen %llu, %zu records replayed%s)\n",
                dir.c_str(),
                static_cast<unsigned long long>(info.snapshot_gen),
                info.records_replayed,
                info.wal_clean ? "" : ", torn WAL tail discarded");
    return Status::OK();
  }

  /// INSERT <Entity> (attr = literal, ...): builds a struct value and
  /// goes through the logical insert (which also WAL-logs it when a
  /// database is attached).
  Status Insert(const std::string& statement) {
    auto tokens = erbium::Lexer::Tokenize(statement);
    if (!tokens.ok()) return tokens.status();
    erbium::TokenStream ts(std::move(tokens).value());
    if (!ts.ConsumeKeyword("insert")) {
      return Status::ParseError("expected INSERT");
    }
    auto entity = ts.ExpectIdentifier("entity set name");
    if (!entity.ok()) return entity.status();
    Status open = ts.ExpectSymbol("(");
    if (!open.ok()) return open;
    Value::StructData fields;
    while (true) {
      auto attr = ts.ExpectIdentifier("attribute name");
      if (!attr.ok()) return attr.status();
      Status eq = ts.ExpectSymbol("=");
      if (!eq.ok()) return eq;
      bool negative = ts.ConsumeSymbol("-");
      const erbium::Token& tok = ts.Advance();
      Value value;
      switch (tok.kind) {
        case erbium::TokenKind::kInteger:
          value = Value::Int64(negative ? -tok.int_value : tok.int_value);
          break;
        case erbium::TokenKind::kFloat:
          value =
              Value::Float64(negative ? -tok.float_value : tok.float_value);
          break;
        case erbium::TokenKind::kString:
          value = Value::String(tok.text);
          break;
        case erbium::TokenKind::kIdentifier:
          if (tok.IsKeyword("true")) {
            value = Value::Bool(true);
          } else if (tok.IsKeyword("false")) {
            value = Value::Bool(false);
          } else if (tok.IsKeyword("null")) {
            value = Value::Null();
          } else {
            return Status::ParseError("unexpected value '" + tok.text + "'");
          }
          break;
        default:
          return Status::ParseError("expected a literal value");
      }
      if (negative && tok.kind != erbium::TokenKind::kInteger &&
          tok.kind != erbium::TokenKind::kFloat) {
        return Status::ParseError("'-' must precede a numeric literal");
      }
      fields.emplace_back(std::move(attr).value(), std::move(value));
      if (ts.ConsumeSymbol(",")) continue;
      Status close = ts.ExpectSymbol(")");
      if (!close.ok()) return close;
      break;
    }
    if (!ts.AtEnd() && !ts.ConsumeSymbol(";")) {
      return Status::ParseError("unexpected trailing input after INSERT");
    }
    return DB()->InsertEntity(std::move(entity).value(),
                              Value::Struct(std::move(fields)));
  }

  void HandleCommand(const std::string& line) {
    auto starts = [&](const char* prefix) {
      return line.rfind(prefix, 0) == 0;
    };
    if (starts("\\tables")) {
      for (const auto& table : DB()->mapping().tables()) {
        std::printf("  %s\n", table.ToString().c_str());
      }
      for (const auto& pair : DB()->mapping().pairs()) {
        std::printf("  [pair] %s (left of %s)\n", pair.name.c_str(),
                    pair.relationship.c_str());
      }
      return;
    }
    if (starts("\\metrics")) {
      std::printf("%s", erbium::obs::ExportPrometheusText().c_str());
      return;
    }
    if (starts("\\mappings")) {
      std::printf("  m1 m2 m3 m4 m5 m6 m6pg   (\\remap <name>)\n");
      return;
    }
    if (starts("\\mapping")) {
      std::printf("%s\n", DB()->mapping().spec().ToJson().c_str());
      return;
    }
    if (starts("\\remap ")) {
      MappingSpec next = PresetByName(line.substr(7));
      if (durable != nullptr) {
        Status st = durable->Remap(next);
        if (!st.ok()) {
          std::printf("remap failed: %s\n", st.ToString().c_str());
          return;
        }
      } else {
        MappingSpec old = spec;
        spec = next;
        Status st = Rebuild(schema);
        if (!st.ok()) {
          std::printf("remap failed: %s\n", st.ToString().c_str());
          spec = old;
          return;
        }
      }
      std::printf("remapped to %s (data migrated)\n", next.ToString().c_str());
      return;
    }
    if (starts("\\plan ")) {
      auto compiled =
          erbium::erql::QueryEngine::Compile(DB(), line.substr(6));
      if (!compiled.ok()) {
        std::printf("%s\n", compiled.status().ToString().c_str());
        return;
      }
      std::printf("%s", erbium::PrintPlan(*compiled->plan).c_str());
      return;
    }
    if (starts("\\schema")) {
      std::printf("%s", Schema()->ToString().c_str());
      return;
    }
    if (starts("\\graph")) {
      auto graph = ERGraph::Build(*Schema());
      if (graph.ok()) std::printf("%s", graph->ToDot().c_str());
      return;
    }
    if (starts("\\cover")) {
      auto graph = ERGraph::Build(*Schema());
      if (!graph.ok()) return;
      auto cover = DB()->mapping().Cover(*graph);
      if (!cover.ok()) {
        std::printf("%s\n", cover.status().ToString().c_str());
        return;
      }
      for (size_t i = 0; i < cover->size(); ++i) {
        std::printf("  structure %2zu: {", i);
        bool first = true;
        for (int node : (*cover)[i]) {
          std::printf("%s%s", first ? "" : ", ",
                      graph->nodes()[node].name.c_str());
          first = false;
        }
        std::printf("}\n");
      }
      return;
    }
    std::printf("unknown command: %s\n", line.c_str());
  }

  void HandleStatement(const std::string& statement) {
    std::string lowered;
    for (char c : statement) {
      lowered.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    }
    if (lowered.rfind("create", 0) == 0) {
      if (durable != nullptr) {
        Status st = durable->ExecuteDdl(statement + ";");
        if (!st.ok()) {
          std::printf("%s\n", st.ToString().c_str());
          return;
        }
      } else {
        auto next = std::make_shared<ERSchema>(*schema);
        Status st = erbium::DdlParser::Execute(statement + ";", next.get());
        if (!st.ok()) {
          std::printf("%s\n", st.ToString().c_str());
          return;
        }
        st = Rebuild(std::move(next));
        if (!st.ok()) {
          std::printf("rebuild failed: %s\n", st.ToString().c_str());
          return;
        }
        ddl_history += statement + ";\n";
      }
      std::printf("ok (%zu physical tables)\n",
                  DB()->mapping().tables().size());
      return;
    }
    if (lowered.rfind("attach", 0) == 0) {
      auto parsed = erbium::erql::Parser::Parse(statement);
      if (!parsed.ok()) {
        std::printf("%s\n", parsed.status().ToString().c_str());
        return;
      }
      if (durable != nullptr) {
        std::printf("already attached to %s\n", durable->dir().c_str());
        return;
      }
      Status st = Attach(parsed->attach_path);
      if (!st.ok()) std::printf("%s\n", st.ToString().c_str());
      return;
    }
    if (lowered.rfind("insert", 0) == 0) {
      Status st = Insert(statement);
      if (!st.ok()) {
        std::printf("%s\n", st.ToString().c_str());
        return;
      }
      std::printf("ok\n");
      return;
    }
    if (lowered.rfind("select", 0) == 0 || lowered.rfind("explain", 0) == 0 ||
        lowered.rfind("show", 0) == 0 || lowered.rfind("trace", 0) == 0 ||
        lowered.rfind("checkpoint", 0) == 0) {
      auto result = erbium::erql::QueryEngine::Execute(DB(), statement);
      if (!result.ok()) {
        std::printf("%s\n", result.status().ToString().c_str());
        return;
      }
      if (lowered.rfind("explain", 0) == 0 || lowered.rfind("trace", 0) == 0 ||
          lowered.rfind("checkpoint", 0) == 0) {
        // Plan / trace / checkpoint output is plain lines; skip the frame.
        for (const erbium::Row& row : result->rows) {
          std::printf("%s\n", row[0].as_string().c_str());
        }
        return;
      }
      std::printf("%s", result->ToTable(25).c_str());
      std::printf("(%zu rows)\n", result->rows.size());
      return;
    }
    std::printf(
        "only CREATE / SELECT / EXPLAIN [ANALYZE] / SHOW / TRACE / INSERT / "
        "ATTACH DATABASE / CHECKPOINT statements and \\commands are "
        "supported\n");
  }
};

}  // namespace

int main(int argc, char** argv) {
  Shell shell;
  bool figure4 = argc > 1 && std::string(argv[1]) == "--figure4";
  if (figure4) {
    auto schema = erbium::MakeFigure4Schema();
    if (!schema.ok()) return 1;
    *shell.schema = std::move(schema).value();
    shell.ddl_history = erbium::Figure4Ddl();
  }
  Status st = shell.Rebuild(shell.schema);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (figure4) {
    erbium::Figure4Config config;
    config.num_r = 1000;
    config.num_s = 300;
    st = erbium::PopulateFigure4(shell.db.get(), config);
    if (!st.ok()) return 1;
    std::printf("Loaded the paper's Figure 4 schema with sample data.\n");
  }
  std::printf("ErbiumDB shell — \\tables \\mapping \\remap \\plan \\metrics "
              "\\schema \\graph \\cover \\quit; SHOW METRICS / SHOW QUERIES "
              "[SLOW] / TRACE SELECT ...; ATTACH DATABASE '<dir>' / "
              "CHECKPOINT / INSERT ...; end statements with ';'\n");
  std::string buffer;
  std::string line;
  std::printf("erbium> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    if (!line.empty() && line[0] == '\\') {
      if (line.rfind("\\quit", 0) == 0 || line.rfind("\\q", 0) == 0) break;
      shell.HandleCommand(line);
      std::printf("erbium> ");
      std::fflush(stdout);
      continue;
    }
    buffer += line;
    buffer += "\n";
    size_t semi = buffer.find(';');
    while (semi != std::string::npos) {
      std::string statement = buffer.substr(0, semi);
      buffer.erase(0, semi + 1);
      // Trim.
      size_t begin = statement.find_first_not_of(" \t\r\n");
      if (begin != std::string::npos) {
        statement = statement.substr(begin);
        shell.HandleStatement(statement);
      }
      semi = buffer.find(';');
    }
    std::printf("erbium> ");
    std::fflush(stdout);
  }
  std::printf("\n");
  return 0;
}
