// The ErbiumDB network server: listens on a TCP port, speaks the frame
// protocol of src/server/protocol.h, and serves concurrent sessions
// against one shared database (readers overlap; writers serialize).
//
//   ./build/examples/erbium_server --port 7177 --figure4
//   ./build/examples/erbium_server --port 7177 --attach /tmp/erbium-data
//
// SIGINT / SIGTERM shut down gracefully: the listener closes, in-flight
// statements drain, and — when a database directory is attached — a
// final CHECKPOINT collapses the WAL before exit.
//
// Flags:
//   --port <n>             listen port (default 7177; 0 = ephemeral)
//   --host <ip>            listen address (default 127.0.0.1)
//   --figure4              preload the paper's Figure 4 schema + data
//   --attach <dir>         attach a durable database directory
//   --max-connections <n>  admission limit (default 64)
//   --idle-timeout-ms <n>  drop connections idle this long (default 60000)
//   --deadline-ms <n>      per-statement budget (default 30000; 0 = off)
//   --metrics-port <n>     serve HTTP GET /metrics (Prometheus text) and
//                          GET /healthz on this port (0 = ephemeral;
//                          omit the flag to disable the endpoint)
//   --shards <n>           partition entity sets across n intra-process
//                          shards (default: ERBIUM_SHARDS env var, else 1)

#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "server/server.h"
#include "shard/co_partition.h"

int main(int argc, char** argv) {
  erbium::server::ServerOptions options;
  options.port = 7177;
  options.runner.shards = erbium::shard::ShardCountFromEnv();
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next_int = [&](int fallback) {
      return i + 1 < argc ? std::atoi(argv[++i]) : fallback;
    };
    if (arg == "--port") {
      options.port = next_int(options.port);
    } else if (arg == "--host" && i + 1 < argc) {
      options.host = argv[++i];
    } else if (arg == "--figure4") {
      options.runner.figure4 = true;
    } else if (arg == "--attach" && i + 1 < argc) {
      options.runner.attach_dir = argv[++i];
    } else if (arg == "--max-connections") {
      options.max_connections = next_int(options.max_connections);
    } else if (arg == "--idle-timeout-ms") {
      options.idle_timeout_ms = next_int(options.idle_timeout_ms);
    } else if (arg == "--deadline-ms") {
      options.request_deadline_ms = next_int(options.request_deadline_ms);
    } else if (arg == "--metrics-port") {
      options.metrics_port = next_int(options.metrics_port);
    } else if (arg == "--shards") {
      options.runner.shards = next_int(options.runner.shards);
      if (options.runner.shards < 1) {
        std::fprintf(stderr, "--shards must be a positive integer\n");
        return 2;
      }
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  // Route SIGINT/SIGTERM to sigwait below: block them before the server
  // spawns any thread, so every thread inherits the mask and the signal
  // is delivered to the waiting main thread, never to a session thread.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  auto server = erbium::server::Server::Start(options);
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.status().ToString().c_str());
    return 1;
  }
  std::printf("erbium_server listening on %s:%d%s%s%s\n", options.host.c_str(),
              (*server)->port(), options.runner.figure4 ? " (figure4)" : "",
              options.runner.attach_dir.empty()
                  ? ""
                  : (" (attached " + options.runner.attach_dir + ")").c_str(),
              options.runner.shards > 1
                  ? (" (" + std::to_string(options.runner.shards) + " shards)")
                        .c_str()
                  : "");
  if ((*server)->metrics_port() >= 0) {
    std::printf("metrics on http://%s:%d/metrics (healthz on /healthz)\n",
                options.host.c_str(), (*server)->metrics_port());
  }
  std::fflush(stdout);

  int sig = 0;
  sigwait(&signals, &sig);
  std::printf("received %s, draining sessions...\n", strsignal(sig));
  std::fflush(stdout);
  erbium::Status st = (*server)->Stop();
  if (!st.ok()) {
    std::fprintf(stderr, "shutdown checkpoint failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  std::printf("server stopped cleanly\n");
  return 0;
}
