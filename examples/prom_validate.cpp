// Prometheus text-exposition validator: reads an exposition from stdin
// (or from a file argument) and applies the same conformance rules the
// test suite enforces on ExportPrometheusText output. Exits 0 when the
// text conforms, 1 with a diagnostic on stderr otherwise — the CI smoke
// job pipes a live `curl /metrics` scrape through it.
//
//   curl -fsS localhost:7178/metrics | ./build/examples/prom_validate
//   ./build/examples/prom_validate BENCH_server.prom

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/export.h"

int main(int argc, char** argv) {
  std::ostringstream text;
  if (argc > 2) {
    std::fprintf(stderr, "usage: prom_validate [file]  (default: stdin)\n");
    return 2;
  }
  if (argc == 2) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "prom_validate: cannot open %s\n", argv[1]);
      return 2;
    }
    text << in.rdbuf();
  } else {
    text << std::cin.rdbuf();
  }
  std::string error = erbium::obs::PrometheusFormatError(text.str());
  if (!error.empty()) {
    std::fprintf(stderr, "prom_validate: %s\n", error.c_str());
    return 1;
  }
  return 0;
}
