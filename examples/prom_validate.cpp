// Prometheus text-exposition validator: reads an exposition from stdin
// (or from a file argument) and applies the same conformance rules the
// test suite enforces on ExportPrometheusText output. Exits 0 when the
// text conforms, 1 with a diagnostic on stderr otherwise — the CI smoke
// job pipes a live `curl /metrics` scrape through it, and
// scripts/run_benches.sh validates every committed BENCH_*.prom.
//
// Empty input is an error: a scrape that returns zero bytes means the
// exporter (or the pipe feeding it) is broken, and silently passing it
// would defeat the CI check.
//
//   curl -fsS localhost:7178/metrics | ./build/examples/prom_validate
//   ./build/examples/prom_validate BENCH_server.prom

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/export.h"

int main(int argc, char** argv) {
  std::ostringstream text;
  const char* source = "stdin";
  if (argc > 2) {
    std::fprintf(stderr, "usage: prom_validate [file]  (default: stdin)\n");
    return 2;
  }
  if (argc == 2 && argv[1][0] == '-') {
    // No flags exist; anything dash-prefixed is a typo, not a file, and
    // treating it as one would silently validate nothing.
    std::fprintf(stderr, "prom_validate: unknown flag '%s'\n", argv[1]);
    std::fprintf(stderr, "usage: prom_validate [file]  (default: stdin)\n");
    return 2;
  }
  if (argc == 2) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "prom_validate: cannot open %s\n", argv[1]);
      return 2;
    }
    text << in.rdbuf();
    source = argv[1];
  } else {
    text << std::cin.rdbuf();
  }
  std::string exposition = text.str();
  if (exposition.empty()) {
    std::fprintf(stderr, "prom_validate: %s is empty — nothing to validate\n",
                 source);
    return 1;
  }
  std::string error = erbium::obs::PrometheusFormatError(exposition);
  if (!error.empty()) {
    std::fprintf(stderr, "prom_validate: %s\n", error.c_str());
    return 1;
  }
  return 0;
}
