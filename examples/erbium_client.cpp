// The ErbiumDB command-line client: connects to a running erbium_server
// and executes statements remotely over the frame protocol.
//
//   ./build/examples/erbium_client --port 7177 -e "SELECT r_id FROM R;"
//   ./build/examples/erbium_client --port 7177          # interactive REPL
//
// Flags:
//   --port <n>       server port (default 7177)
//   --host <ip>      server address (default 127.0.0.1)
//   --name <s>       session name shown by SHOW SESSIONS (default the
//                    process id as "cli-<pid>")
//   --retries <n>    connect retries, for racing a server still binding
//   --pipeline       send all -e statements as one pipelined batch (one
//                    network round-trip) instead of one at a time
//   --timing         print the server-timing footer after each result
//                    (queue wait + execute, as measured server-side).
//                    Statements are routed through the pipelined path,
//                    whose responses carry the footer.
//   -e <statement>   execute one statement and continue (repeatable);
//                    with no -e an interactive prompt reads from stdin
//
// Exit status: 0 when the connection and every statement succeeded,
// 1 otherwise — scriptable, as the CI smoke test relies on.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "server/client.h"

namespace {

void Render(const erbium::api::StatementOutcome& outcome) {
  using erbium::api::OutputShape;
  switch (outcome.shape) {
    case OutputShape::kMessage:
      std::printf("%s\n", outcome.message.c_str());
      break;
    case OutputShape::kLines:
      for (const erbium::Row& row : outcome.result.rows) {
        std::printf("%s\n", row[0].as_string().c_str());
      }
      break;
    case OutputShape::kTable:
      std::printf("%s", outcome.result.ToTable(25).c_str());
      std::printf("(%zu rows)\n", outcome.result.rows.size());
      break;
  }
}

void RenderTiming(const erbium::server::ServerTiming& timing) {
  if (!timing.present) return;
  std::printf("-- server timing: queue_wait=%lluus execute=%lluus\n",
              static_cast<unsigned long long>(timing.queue_wait_us),
              static_cast<unsigned long long>(timing.execute_us));
}

}  // namespace

int main(int argc, char** argv) {
  erbium::server::Client::Options options;
  options.port = 7177;
  options.name = "cli-" + std::to_string(getpid());
  std::vector<std::string> statements;
  bool pipeline = false;
  bool timing = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--port" && i + 1 < argc) {
      options.port = std::atoi(argv[++i]);
    } else if (arg == "--host" && i + 1 < argc) {
      options.host = argv[++i];
    } else if (arg == "--name" && i + 1 < argc) {
      options.name = argv[++i];
    } else if (arg == "--retries" && i + 1 < argc) {
      options.connect_retries = std::atoi(argv[++i]);
    } else if (arg == "--pipeline") {
      pipeline = true;
    } else if (arg == "--timing") {
      timing = true;
    } else if (arg == "-e" && i + 1 < argc) {
      statements.push_back(argv[++i]);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 1;
    }
  }

  auto client = erbium::server::Client::Connect(options);
  if (!client.ok()) {
    std::fprintf(stderr, "%s\n", client.status().ToString().c_str());
    return 1;
  }

  bool all_ok = true;
  auto run = [&](const std::string& statement) {
    if (timing) {
      // Only seq-tagged responses carry the server-timing footer, so a
      // timed statement travels as a batch of one.
      auto batch = (*client)->ExecuteBatch({statement});
      if (!batch.ok()) {
        std::printf("%s\n", batch.status().ToString().c_str());
        all_ok = false;
        return;
      }
      const auto& item = (*batch)[0];
      if (!item.status.ok()) {
        std::printf("%s\n", item.status.ToString().c_str());
        all_ok = false;
        return;
      }
      Render(item.outcome);
      RenderTiming(item.timing);
      return;
    }
    auto outcome = (*client)->Execute(statement);
    if (!outcome.ok()) {
      std::printf("%s\n", outcome.status().ToString().c_str());
      all_ok = false;
      return;
    }
    Render(*outcome);
  };

  if (!statements.empty()) {
    if (pipeline) {
      // All statements ship in one burst; responses come back tagged and
      // in order. A failed statement reports in place without stopping
      // the rest of the batch.
      auto batch = (*client)->ExecuteBatch(statements);
      if (!batch.ok()) {
        std::fprintf(stderr, "%s\n", batch.status().ToString().c_str());
        return 1;
      }
      for (const auto& item : *batch) {
        if (!item.status.ok()) {
          std::printf("%s\n", item.status.ToString().c_str());
          all_ok = false;
          continue;
        }
        Render(item.outcome);
        if (timing) RenderTiming(item.timing);
      }
      return all_ok ? 0 : 1;
    }
    for (const std::string& statement : statements) run(statement);
    return all_ok ? 0 : 1;
  }

  // Interactive: statements end with ';', like the local shell.
  std::printf("connected to %s:%d as '%s' (session %llu) — %s\n",
              options.host.c_str(), options.port, options.name.c_str(),
              static_cast<unsigned long long>((*client)->session_id()),
              (*client)->server_banner().c_str());
  std::string buffer;
  std::string line;
  std::printf("erbium> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    if (line == "\\quit" || line == "\\q") break;
    buffer += line;
    buffer += "\n";
    size_t semi = buffer.find(';');
    while (semi != std::string::npos) {
      std::string statement = buffer.substr(0, semi);
      buffer.erase(0, semi + 1);
      size_t begin = statement.find_first_not_of(" \t\r\n");
      if (begin != std::string::npos) run(statement.substr(begin));
      semi = buffer.find(';');
    }
    std::printf("erbium> ");
    std::fflush(stdout);
  }
  return all_ok ? 0 : 1;
}
