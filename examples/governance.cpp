// Data-governance walkthrough (paper Section 1.1(2)): PII tagging in
// the DDL, GDPR-style subject access (export everything about a person)
// and subject erasure (delete everything about a person) as single
// entity-centric operations — regardless of how many physical tables
// the mapping scattered the data over.
//
// Build & run:  cmake --build build && ./build/examples/governance

#include <cstdio>

#include "api/entity_store.h"
#include "er/ddl_parser.h"
#include "erql/query_engine.h"
#include "mapping/database.h"

namespace {

const char* kDdl = R"(
CREATE ENTITY Customer (
  customer_id INT KEY,
  name STRING NOT NULL PII DESCRIPTION 'legal name',
  email STRING PII,
  phone STRING MULTIVALUED PII,
  segment STRING DESCRIPTION 'marketing segment, not personal data'
);
CREATE WEAK ENTITY Address OWNED BY Customer (
  addr_no INT PARTIAL KEY,
  street STRING PII,
  city STRING PII,
  country STRING
);
CREATE ENTITY Product ( sku STRING KEY, title STRING );
CREATE RELATIONSHIP purchased
  BETWEEN Customer (MANY) AND Product (MANY) WITH ( quantity INT );
)";

using erbium::EntityStore;
using erbium::MappedDatabase;
using erbium::MappingSpec;
using erbium::Value;

Value I(int64_t v) { return Value::Int64(v); }
Value S(const char* s) { return Value::String(s); }

}  // namespace

int main() {
  erbium::ERSchema schema;
  erbium::Status st = erbium::DdlParser::Execute(kDdl, &schema);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  auto db = MappedDatabase::Create(&schema, MappingSpec::Normalized());
  if (!db.ok()) return 1;
  EntityStore store(db->get());

  // ---- Load a little data ------------------------------------------------
  st = store.Put("Customer",
                 Value::Struct({{"customer_id", I(1)},
                                {"name", S("Ada Lovelace")},
                                {"email", S("ada@example.org")},
                                {"phone", Value::Array({S("555-0100"),
                                                        S("555-0101")})},
                                {"segment", S("premium")}}));
  if (!st.ok()) return 1;
  st = store.Put("Customer",
                 Value::Struct({{"customer_id", I(2)},
                                {"name", S("Charles Babbage")},
                                {"email", S("cb@example.org")},
                                {"segment", S("standard")}}));
  if (!st.ok()) return 1;
  for (int addr = 1; addr <= 2; ++addr) {
    st = store.Put("Address",
                   Value::Struct({{"customer_id", I(1)},
                                  {"addr_no", I(addr)},
                                  {"street", S(addr == 1 ? "12 Analytical Way"
                                                         : "1 Engine Court")},
                                  {"city", S("London")},
                                  {"country", S("UK")}}));
    if (!st.ok()) return 1;
  }
  for (const char* sku : {"B-0001", "B-0002"}) {
    st = store.Put("Product", Value::Struct({{"sku", S(sku)},
                                             {"title", S("Brass Gear")}}));
    if (!st.ok()) return 1;
  }
  st = db->get()->InsertRelationship("purchased", {I(1)}, {S("B-0001")},
                                     Value::Struct({{"quantity", I(3)}}));
  if (!st.ok()) return 1;
  st = db->get()->InsertRelationship("purchased", {I(1)}, {S("B-0002")},
                                     Value::Struct({{"quantity", I(1)}}));
  if (!st.ok()) return 1;

  // ---- PII inventory -------------------------------------------------------
  auto pii = store.PiiAttributes("Customer");
  std::printf("PII attributes of Customer:");
  for (const std::string& name : *pii) std::printf(" %s", name.c_str());
  std::printf("\n\n");

  // ---- Subject access request (GDPR Art. 15) -------------------------------
  auto exported = store.ExportSubject("Customer", {I(1)});
  if (!exported.ok()) return 1;
  std::printf("Subject export for customer 1 (JSON):\n%s\n\n",
              erbium::ToJson(*exported).c_str());

  // ---- Redacted view for non-privileged consumers ---------------------------
  auto entity = store.Get("Customer", {I(1)});
  auto redacted = store.Redact("Customer", *entity);
  std::printf("Redacted view:\n%s\n\n", erbium::ToJson(*redacted).c_str());

  // ---- Subject erasure (GDPR Art. 17) ---------------------------------------
  // One call removes the customer row(s), the multi-valued phone rows,
  // both addresses (weak entities), and all purchase edges.
  st = store.EraseSubject("Customer", {I(1)});
  if (!st.ok()) return 1;
  std::printf("Erased customer 1. Verifying...\n");
  auto gone = store.Get("Customer", {I(1)});
  std::printf("  Get(Customer, 1): %s\n", gone.status().ToString().c_str());
  auto remaining = erbium::erql::QueryEngine::Execute(
      db->get(), "SELECT customer_id, addr_no FROM Address");
  std::printf("  remaining addresses: %zu\n", remaining->rows.size());
  auto purchases = db->get()->CountRelationships("purchased");
  std::printf("  remaining purchase edges: %zu\n", *purchases);
  auto others = erbium::erql::QueryEngine::Execute(
      db->get(), "SELECT customer_id, name FROM Customer");
  std::printf("  other customers untouched:\n%s\n",
              others->ToTable().c_str());
  return 0;
}
