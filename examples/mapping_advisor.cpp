// The mapping advisor (paper Section 4's "natural optimization
// problem"): view the E/R diagram as a graph, enumerate valid covers
// (physical mappings), and pick the best one for a workload by actually
// measuring candidates on sampled data. Also prints the cover of the
// chosen mapping, i.e. the Figure 2 view.
//
// Build & run:  cmake --build build && ./build/examples/mapping_advisor

#include <cstdio>

#include "er/er_graph.h"
#include "mapping/advisor.h"
#include "workload/figure4.h"

using erbium::ERGraph;
using erbium::Figure4Config;
using erbium::MappingAdvisor;
using erbium::Workload;

namespace {

void Advise(const erbium::ERSchema* schema, const Workload& workload,
            const char* label) {
  Figure4Config sample;
  sample.num_r = 1200;
  sample.num_s = 300;
  auto candidates = MappingAdvisor::EnumerateCandidates(*schema, 24);
  auto advice = MappingAdvisor::Advise(
      schema, candidates,
      [&sample](erbium::MappedDatabase* db) {
        return erbium::PopulateFigure4(db, sample);
      },
      workload, 3);
  if (!advice.ok()) {
    std::fprintf(stderr, "advise: %s\n", advice.status().ToString().c_str());
    return;
  }
  std::printf("== workload: %s (%zu candidate mappings) ==\n", label,
              advice->candidates.size());
  std::printf("%-8s %-60s %12s %10s\n", "", "mapping", "cost(ms)", "KB");
  for (size_t i = 0; i < advice->candidates.size(); ++i) {
    const auto& candidate = advice->candidates[i];
    if (!candidate.valid) continue;
    std::printf("%-8s %-60s %12.3f %10zu\n",
                i == advice->best_index ? "BEST ->" : "",
                candidate.spec.ToString().c_str(), candidate.total_cost_ms,
                candidate.storage_bytes / 1024);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  auto schema_result = erbium::MakeFigure4Schema();
  if (!schema_result.ok()) return 1;
  auto schema =
      std::make_shared<erbium::ERSchema>(std::move(schema_result).value());

  // The E/R diagram as a graph (Figure 2's starting point).
  auto graph = ERGraph::Build(*schema);
  if (!graph.ok()) return 1;
  std::printf("E/R graph: %zu nodes, %zu edges\n\n", graph->nodes().size(),
              graph->edges().size());

  // Two opposing workloads demonstrate that "best mapping" is a
  // workload property, not a schema property.
  Workload point_heavy;
  for (int id : {10, 77, 140, 250, 333, 512}) {
    point_heavy.queries.push_back(
        {"SELECT r_id, r_mv1, r_mv2, r_mv3 FROM R WHERE r_id = " +
             std::to_string(id),
         1.0, "point"});
  }
  Advise(schema.get(), point_heavy, "entity point lookups with MV attrs");

  Workload analytics;
  analytics.queries.push_back(
      {"SELECT r_id, r_a1, r1_a1, r3_a1 FROM R3", 1.0, "leaf scan"});
  analytics.queries.push_back(
      {"SELECT r_a4, count(*) AS n FROM R", 0.5, "rollup"});
  Advise(schema.get(), analytics, "hierarchy analytics");

  // Show the chosen mapping's cover of the E/R graph (Figure 2).
  auto mapping = erbium::PhysicalMapping::Compile(schema.get(),
                                                  erbium::Figure4M2());
  if (!mapping.ok()) return 1;
  auto cover = mapping->Cover(*graph);
  if (!cover.ok()) return 1;
  std::printf("Cover of the E/R graph under M2 (%zu connected subgraphs):\n",
              cover->size());
  for (size_t i = 0; i < cover->size(); ++i) {
    std::printf("  structure %2zu: {", i);
    bool first = true;
    for (int node : (*cover)[i]) {
      std::printf("%s%s", first ? "" : ", ",
                  graph->nodes()[node].name.c_str());
      first = false;
    }
    std::printf("}\n");
  }
  erbium::Status valid =
      erbium::PhysicalMapping::ValidateCover(*graph, *cover);
  std::printf("cover validation: %s\n", valid.ToString().c_str());
  return 0;
}
