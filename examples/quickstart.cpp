// Quickstart: the paper's Figure 1 end to end.
//
//   1. Define the university E/R schema (entities, a specialization,
//      a weak entity set, relationships) with the DDL of Figure 1(ii).
//   2. Create a database under the fully-normalized mapping, load data.
//   3. Run ERQL queries, including the Figure 1(iii)-style query with a
//      relationship join, an aggregate with inferred GROUP BY, and a
//      hierarchical (nested) output.
//   4. Switch the physical mapping and re-run the SAME queries — the
//      logical-data-independence demonstration.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "er/ddl_parser.h"
#include "erql/query_engine.h"
#include "mapping/database.h"

namespace {

const char* kDdl = R"(
CREATE ENTITY Person (
  id INT KEY,
  name STRING NOT NULL PII,
  address STRUCT(street STRING, city STRING, zip STRING) PII,
  phone STRING MULTIVALUED PII
);
CREATE ENTITY Instructor EXTENDS Person ( rank STRING, salary FLOAT )
  SPECIALIZATION (PARTIAL, DISJOINT);
CREATE ENTITY Student EXTENDS Person ( tot_credits INT );
CREATE ENTITY Course ( course_id STRING KEY, title STRING, credits INT );
CREATE WEAK ENTITY Section OWNED BY Course (
  sec_id STRING PARTIAL KEY, semester STRING PARTIAL KEY, year INT
);
CREATE RELATIONSHIP advisor
  BETWEEN Instructor (ONE) AND Student (MANY) WITH ( since INT );
CREATE RELATIONSHIP takes BETWEEN Student (MANY) AND Section (MANY)
  WITH ( grade STRING );
)";

using erbium::Cardinality;
using erbium::ERSchema;
using erbium::IndexKey;
using erbium::MappedDatabase;
using erbium::MappingSpec;
using erbium::Status;
using erbium::Value;

#define CHECK_OK(expr)                                             \
  do {                                                             \
    ::erbium::Status _st = (expr);                                 \
    if (!_st.ok()) {                                               \
      std::fprintf(stderr, "FAILED: %s\n", _st.ToString().c_str()); \
      return 1;                                                    \
    }                                                              \
  } while (0)

Value Str(const char* s) { return Value::String(s); }
Value I(int64_t v) { return Value::Int64(v); }

int Populate(MappedDatabase* db) {
  // People: two instructors, three students.
  struct PersonRow {
    int64_t id;
    const char* cls;
    const char* name;
    const char* city;
    std::vector<const char*> phones;
    const char* rank;        // instructors
    double salary;
    int64_t credits;         // students
  };
  const PersonRow people[] = {
      {1, "Instructor", "Katz", "Storrs", {"555-0101"}, "Professor",
       125000, 0},
      {2, "Instructor", "Srinivasan", "Hartford", {"555-0102", "555-0103"},
       "Associate", 95000, 0},
      {3, "Student", "Shankar", "Storrs", {"555-0201"}, nullptr, 0, 32},
      {4, "Student", "Zhang", "Mansfield", {}, nullptr, 0, 102},
      {5, "Student", "Brown", "Storrs", {"555-0203"}, nullptr, 0, 80},
  };
  for (const PersonRow& p : people) {
    Value::StructData fields;
    fields.emplace_back("id", I(p.id));
    fields.emplace_back("name", Str(p.name));
    fields.emplace_back(
        "address", Value::Struct({{"street", Str("1 Main St")},
                                  {"city", Str(p.city)},
                                  {"zip", Str("06269")}}));
    Value::ArrayData phones;
    for (const char* phone : p.phones) phones.push_back(Str(phone));
    fields.emplace_back("phone", Value::Array(std::move(phones)));
    if (p.rank != nullptr) {
      fields.emplace_back("rank", Str(p.rank));
      fields.emplace_back("salary", Value::Float64(p.salary));
    } else {
      fields.emplace_back("tot_credits", I(p.credits));
    }
    Status st = db->InsertEntity(p.cls, Value::Struct(std::move(fields)));
    if (!st.ok()) {
      std::fprintf(stderr, "insert: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  // Courses and sections.
  Status st = db->InsertEntity(
      "Course", Value::Struct({{"course_id", Str("CS-101")},
                               {"title", Str("Intro to Databases")},
                               {"credits", I(4)}}));
  if (!st.ok()) return 1;
  st = db->InsertEntity(
      "Course", Value::Struct({{"course_id", Str("CS-347")},
                               {"title", Str("Transaction Processing")},
                               {"credits", I(3)}}));
  if (!st.ok()) return 1;
  for (const char* course : {"CS-101", "CS-347"}) {
    st = db->InsertEntity(
        "Section", Value::Struct({{"course_id", Str(course)},
                                  {"sec_id", Str("1")},
                                  {"semester", Str("Fall")},
                                  {"year", I(2025)}}));
    if (!st.ok()) return 1;
  }
  // Advising (1:N) and enrollment (M:N with a grade).
  if (!db->InsertRelationship("advisor", {I(1)}, {I(3)},
                              Value::Struct({{"since", I(2023)}}))
           .ok() ||
      !db->InsertRelationship("advisor", {I(1)}, {I(4)},
                              Value::Struct({{"since", I(2024)}}))
           .ok() ||
      !db->InsertRelationship("advisor", {I(2)}, {I(5)},
                              Value::Struct({{"since", I(2022)}}))
           .ok()) {
    return 1;
  }
  const struct {
    int64_t student;
    const char* course;
    const char* grade;
  } enrollments[] = {{3, "CS-101", "A"},  {3, "CS-347", "B+"},
                     {4, "CS-101", "A-"}, {5, "CS-347", "B"}};
  for (const auto& e : enrollments) {
    st = db->InsertRelationship(
        "takes", {I(e.student)},
        {Str(e.course), Str("1"), Str("Fall")},
        Value::Struct({{"grade", Str(e.grade)}}));
    if (!st.ok()) {
      std::fprintf(stderr, "takes: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  return 0;
}

int RunQueries(MappedDatabase* db, const char* label) {
  std::printf("==== queries under mapping: %s ====\n\n", label);
  const char* queries[] = {
      // Figure 1(iii) flavour: relationship join + aggregate with the
      // GROUP BY inferred from the select list.
      "SELECT i.name, count(*) AS advisees, avg(s.tot_credits) AS "
      "avg_credits FROM Instructor i JOIN Student s ON advisor",
      // Multi-valued attribute access.
      "SELECT name, phone FROM Person WHERE id = 2",
      // Hierarchical output: each student's enrollments nested as an
      // array of (course, grade) structs.
      "SELECT s.name, array_agg(struct(course: sec.course_id, grade: "
      "grade)) AS enrollment FROM Student s JOIN Section sec ON takes",
      // Weak entity access through the identifying relationship.
      "SELECT c.title, sec.sec_id, sec.semester FROM Course c "
      "JOIN Section sec ON Course_Section",
  };
  for (const char* query : queries) {
    std::printf("erql> %s\n", query);
    auto result = erbium::erql::QueryEngine::Execute(db, query);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", result->ToTable().c_str());
  }
  return 0;
}

}  // namespace

int main() {
  ERSchema schema;
  CHECK_OK(erbium::DdlParser::Execute(kDdl, &schema));
  std::printf("Parsed schema:\n%s\n", schema.ToString().c_str());

  // 1) Fully normalized mapping (the classic relational design).
  auto normalized =
      MappedDatabase::Create(&schema, MappingSpec::Normalized("normalized"));
  if (!normalized.ok()) {
    std::fprintf(stderr, "%s\n", normalized.status().ToString().c_str());
    return 1;
  }
  std::printf("Physical tables under the normalized mapping:\n");
  for (const auto& table : (*normalized)->mapping().tables()) {
    std::printf("  %s\n", table.ToString().c_str());
  }
  std::printf("\n");
  if (Populate(normalized->get()) != 0) return 1;
  if (RunQueries(normalized->get(), "normalized") != 0) return 1;

  // Show a physical plan to make the translation tangible.
  auto compiled = erbium::erql::QueryEngine::Compile(
      normalized->get(),
      "SELECT i.name, count(*) AS advisees FROM Instructor i JOIN Student "
      "s ON advisor");
  if (compiled.ok()) {
    std::printf("physical plan under 'normalized':\n%s\n",
                erbium::PrintPlan(*compiled->plan).c_str());
  }

  // 2) A document-flavoured mapping: arrays for multi-valued attributes,
  //    the hierarchy in one table, sections folded into courses. The
  //    SAME DDL and the SAME queries keep working.
  MappingSpec document;
  document.name = "document_style";
  document.default_multi_valued = erbium::MultiValuedStorage::kArray;
  document.hierarchy_overrides["Person"] =
      erbium::HierarchyStorage::kSingleTable;
  document.weak_overrides["Section"] =
      erbium::WeakEntityStorage::kFoldedArray;
  auto doc_db = MappedDatabase::Create(&schema, document);
  if (!doc_db.ok()) {
    std::fprintf(stderr, "%s\n", doc_db.status().ToString().c_str());
    return 1;
  }
  std::printf("Physical tables under the document-style mapping:\n");
  for (const auto& table : (*doc_db)->mapping().tables()) {
    std::printf("  %s\n", table.ToString().c_str());
  }
  std::printf("\n");
  if (Populate(doc_db->get()) != 0) return 1;
  if (RunQueries(doc_db->get(), "document_style") != 0) return 1;

  compiled = erbium::erql::QueryEngine::Compile(
      doc_db->get(),
      "SELECT i.name, count(*) AS advisees FROM Instructor i JOIN Student "
      "s ON advisor");
  if (compiled.ok()) {
    std::printf("physical plan under 'document_style':\n%s\n",
                erbium::PrintPlan(*compiled->plan).c_str());
  }
  std::printf(
      "Same schema, same queries, two very different physical layouts.\n");
  return 0;
}
