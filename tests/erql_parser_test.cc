// Unit tests for the ERQL parser (grammar acceptance, AST shapes, and
// rejection of malformed queries).

#include <gtest/gtest.h>

#include "erql/parser.h"

namespace erbium {
namespace erql {
namespace {

Result<Query> P(const std::string& text) { return Parser::Parse(text); }

TEST(ErqlParserTest, MinimalSelect) {
  auto q = P("SELECT a FROM E");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->select.size(), 1u);
  EXPECT_EQ(q->select[0].expr->kind, ExprAst::Kind::kIdent);
  EXPECT_EQ(q->from.entity, "E");
  EXPECT_EQ(q->from.alias, "E");
}

TEST(ErqlParserTest, AliasesAndQualifiedNames) {
  auto q = P("SELECT e.a AS x, b FROM E e");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->select[0].alias, "x");
  EXPECT_EQ(q->select[0].expr->qualifier, "e");
  EXPECT_EQ(q->select[0].expr->name, "a");
  EXPECT_EQ(q->from.alias, "e");
}

TEST(ErqlParserTest, RelationshipJoinVsThetaJoin) {
  auto q = P("SELECT 1 FROM A a JOIN B b ON rel JOIN C c ON a.x = c.y");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->joins.size(), 2u);
  EXPECT_EQ(q->joins[0].relationship, "rel");
  EXPECT_EQ(q->joins[0].on_expr, nullptr);
  EXPECT_TRUE(q->joins[1].relationship.empty());
  ASSERT_NE(q->joins[1].on_expr, nullptr);
  EXPECT_EQ(q->joins[1].on_expr->op, "=");
}

TEST(ErqlParserTest, ExpressionPrecedence) {
  auto q = P("SELECT a FROM E WHERE a + b * 2 < 10 AND NOT c = 3 OR d = 4");
  ASSERT_TRUE(q.ok());
  // ((a + (b*2) < 10) AND (NOT (c=3))) OR (d=4)
  const ExprAst& where = *q->where;
  EXPECT_EQ(where.op, "or");
  EXPECT_EQ(where.children[0]->op, "and");
  const ExprAst& cmp = *where.children[0]->children[0];
  EXPECT_EQ(cmp.op, "<");
  EXPECT_EQ(cmp.children[0]->op, "+");
  EXPECT_EQ(cmp.children[0]->children[1]->op, "*");
  EXPECT_EQ(where.children[0]->children[1]->kind, ExprAst::Kind::kNot);
}

TEST(ErqlParserTest, LiteralsAndInList) {
  auto q = P("SELECT a FROM E WHERE a IN (1, 2.5, 'x', true, null) "
             "AND b NOT IN (-3) AND c IS NOT NULL");
  ASSERT_TRUE(q.ok());
  std::vector<ExprAstPtr> conjuncts;
  // Flatten manually.
  const ExprAst* node = q->where.get();
  EXPECT_EQ(node->op, "and");
}

TEST(ErqlParserTest, FunctionsAggregatesStar) {
  auto q = P("SELECT count(*) AS n, sum(x) AS s, count(DISTINCT y) AS d, "
             "array_agg(struct(a: x, y)) AS items FROM E");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->select[0].expr->children[0]->kind, ExprAst::Kind::kStar);
  EXPECT_FALSE(q->select[1].expr->distinct);
  EXPECT_TRUE(q->select[2].expr->distinct);
  const ExprAst& agg = *q->select[3].expr;
  ASSERT_EQ(agg.children.size(), 1u);
  EXPECT_EQ(agg.children[0]->kind, ExprAst::Kind::kStruct);
  EXPECT_EQ(agg.children[0]->field_names,
            (std::vector<std::string>{"a", "y"}));
}

TEST(ErqlParserTest, GroupOrderLimitDistinct) {
  auto q = P("SELECT DISTINCT a, count(*) AS n FROM E GROUP BY a "
             "ORDER BY n DESC, a LIMIT 10");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->distinct);
  EXPECT_TRUE(q->explicit_group_by);
  ASSERT_EQ(q->group_by.size(), 1u);
  ASSERT_EQ(q->order_by.size(), 2u);
  EXPECT_FALSE(q->order_by[0].ascending);
  EXPECT_TRUE(q->order_by[1].ascending);
  EXPECT_EQ(q->limit, 10);
}

TEST(ErqlParserTest, ArrayLiteralsAndUnnest) {
  auto q = P("SELECT unnest(mv) AS v, array_contains(mv, 3) FROM E "
             "WHERE tags = [1, 2, 3]");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->select[0].expr->name, "unnest");
  const ExprAst& where = *q->where;
  EXPECT_EQ(where.children[1]->kind, ExprAst::Kind::kLiteral);
  EXPECT_EQ(where.children[1]->literal.array().size(), 3u);
}

TEST(ErqlParserTest, RejectsMalformedQueries) {
  EXPECT_FALSE(P("").ok());
  EXPECT_FALSE(P("SELECT").ok());
  EXPECT_FALSE(P("SELECT a").ok());                 // missing FROM
  EXPECT_FALSE(P("SELECT a FROM").ok());
  EXPECT_FALSE(P("SELECT a FROM E WHERE").ok());
  EXPECT_FALSE(P("SELECT a FROM E LIMIT x").ok());
  EXPECT_FALSE(P("SELECT a FROM E JOIN F ON").ok());
  EXPECT_FALSE(P("SELECT a FROM E trailing junk here").ok());
  EXPECT_FALSE(P("SELECT f( FROM E").ok());
}

TEST(ErqlParserTest, ShowMetricsStatement) {
  auto q = P("SHOW METRICS");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->statement, StatementKind::kShowMetrics);
  EXPECT_TRUE(q->show_like.empty());

  q = P("show metrics like 'erql.*';");  // case-insensitive, trailing ';'
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->statement, StatementKind::kShowMetrics);
  EXPECT_EQ(q->show_like, "erql.*");
}

TEST(ErqlParserTest, ShowQueriesStatement) {
  auto q = P("SHOW QUERIES");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->statement, StatementKind::kShowQueries);
  EXPECT_FALSE(q->show_slow);
  EXPECT_EQ(q->show_limit, -1);

  q = P("SHOW QUERIES SLOW LIMIT 10");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(q->show_slow);
  EXPECT_EQ(q->show_limit, 10);

  q = P("SHOW QUERIES LIMIT 3");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(q->show_slow);
  EXPECT_EQ(q->show_limit, 3);
}

TEST(ErqlParserTest, TraceStatement) {
  auto q = P("TRACE SELECT a FROM E");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->statement, StatementKind::kTrace);
  EXPECT_TRUE(q->trace_into.empty());
  EXPECT_EQ(q->from.entity, "E");  // the inner SELECT parses as usual

  q = P("TRACE INTO '/tmp/t.json' SELECT a FROM E WHERE a = 1");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->statement, StatementKind::kTrace);
  EXPECT_EQ(q->trace_into, "/tmp/t.json");
  ASSERT_NE(q->where, nullptr);
}

TEST(ErqlParserTest, RejectsMalformedShowAndTrace) {
  EXPECT_FALSE(P("SHOW").ok());
  EXPECT_FALSE(P("SHOW TABLES").ok());
  EXPECT_FALSE(P("SHOW METRICS LIKE").ok());      // LIKE needs a string
  EXPECT_FALSE(P("SHOW METRICS LIKE 42").ok());
  EXPECT_FALSE(P("SHOW QUERIES LIMIT").ok());
  EXPECT_FALSE(P("SHOW QUERIES FAST").ok());      // trailing junk
  EXPECT_FALSE(P("TRACE").ok());
  EXPECT_FALSE(P("TRACE INTO SELECT a FROM E").ok());  // INTO needs a string
  EXPECT_FALSE(P("TRACE EXPLAIN SELECT a FROM E").ok());
}

TEST(ErqlParserTest, CheckpointStatement) {
  auto q = P("CHECKPOINT");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->statement, StatementKind::kCheckpoint);

  q = P("checkpoint;");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->statement, StatementKind::kCheckpoint);

  EXPECT_FALSE(P("CHECKPOINT NOW").ok());  // trailing junk
}

TEST(ErqlParserTest, AttachStatement) {
  auto q = P("ATTACH DATABASE '/var/lib/erbium/db'");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->statement, StatementKind::kAttach);
  EXPECT_EQ(q->attach_path, "/var/lib/erbium/db");

  EXPECT_FALSE(P("ATTACH").ok());
  EXPECT_FALSE(P("ATTACH DATABASE").ok());           // path required
  EXPECT_FALSE(P("ATTACH DATABASE dbdir").ok());     // must be a string
  EXPECT_FALSE(P("ATTACH DATABASE 'a' 'b'").ok());   // trailing junk
}

TEST(ErqlParserTest, ExprToStringRoundTripsShape) {
  auto q = P("SELECT struct(a: x + 1, b: lower(y)) FROM E "
             "WHERE x IN (1, 2) AND y IS NULL");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->select[0].expr->ToString(),
            "struct(a: (x + 1), b: lower(y))");
  EXPECT_EQ(q->where->ToString(), "(x IN (1, 2) and y IS NULL)");
}

}  // namespace
}  // namespace erql
}  // namespace erbium
