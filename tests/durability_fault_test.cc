// Fault-injection recovery tests (mapping M1–M6): crash the durable
// database at every WAL-append and checkpoint crash point, at every
// torn-tail truncation offset, and at every flipped byte, then reopen
// the directory and assert the recovered logical state equals a serial
// in-memory oracle that applied exactly the acknowledged operations.
//
// Invariants exercised (see DurableDatabase):
//   - no acknowledged write is ever lost,
//   - no operation is half-applied after recovery,
//   - a crash anywhere in the checkpoint protocol loses nothing.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "api/statement_runner.h"
#include "durability/durable_db.h"
#include "durability/fault.h"
#include "durability/wal.h"
#include "durability_testlib.h"
#include "obs/metrics.h"
#include "workload/figure4.h"

namespace erbium {
namespace {

using durability::DurableDatabase;
using durability::FaultInjector;
using durability_test::FaultScript;
using durability_test::LogicalDigest;
using durability_test::Op;

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/erbium_fault_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

DurableDatabase::Options MakeOptions(const MappingSpec& spec,
                                     FaultInjector* faults = nullptr) {
  DurableDatabase::Options options;
  options.spec = spec;
  options.initial_ddl = Figure4Ddl();
  options.faults = faults;
  return options;
}

/// Serial oracle: a fresh in-memory database under `spec` with exactly the
/// first `n_ops` operations of the script applied. Digests are cached per
/// (mapping, prefix length) — the sweeps compare thousands of recoveries
/// against the same seventeen oracle states.
class OracleCache {
 public:
  const std::string& Digest(const MappingSpec& spec, size_t n_ops) {
    auto key = std::make_pair(spec.name, n_ops);
    auto it = digests_.find(key);
    if (it != digests_.end()) return it->second;
    auto schema = std::make_shared<ERSchema>();
    auto made = MakeFigure4Schema();
    EXPECT_TRUE(made.ok()) << made.status().ToString();
    *schema = std::move(made).value();
    auto db = MappedDatabase::Create(schema.get(), spec);
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    const std::vector<Op>& ops = FaultScript();
    for (size_t i = 0; i < n_ops; ++i) {
      Status s = ops[i].apply(db->get());
      EXPECT_TRUE(s.ok()) << ops[i].description << ": " << s.ToString();
    }
    auto digest = LogicalDigest(db->get());
    EXPECT_TRUE(digest.ok()) << digest.status().ToString();
    return digests_.emplace(key, std::move(digest).value()).first->second;
  }

 private:
  std::map<std::pair<std::string, size_t>, std::string> digests_;
};

OracleCache& Oracles() {
  static OracleCache* cache = new OracleCache();
  return *cache;
}

std::string RecoverDigest(const std::string& dir, const MappingSpec& spec,
                          DurableDatabase::RecoveryInfo* info = nullptr) {
  auto reopened = DurableDatabase::Open(dir, MakeOptions(spec));
  EXPECT_TRUE(reopened.ok()) << reopened.status().ToString();
  if (!reopened.ok()) return "<open failed>";
  if (info != nullptr) *info = (*reopened)->recovery_info();
  auto digest = LogicalDigest((*reopened)->db());
  EXPECT_TRUE(digest.ok()) << digest.status().ToString();
  return digest.ok() ? std::move(digest).value() : "<digest failed>";
}

/// Runs the script against a durable database with `faults` armed,
/// stopping at the first failed (unacknowledged) operation — the
/// simulated process death. Returns how many operations were acked.
size_t RunUntilCrash(DurableDatabase* db) {
  const std::vector<Op>& ops = FaultScript();
  size_t acked = 0;
  for (const Op& op : ops) {
    if (!op.apply(db->db()).ok()) break;
    ++acked;
  }
  return acked;
}

/// Crash at the given WAL-append point while executing op `crash_index`,
/// then recover and compare against the oracle.
void CheckAppendCrash(const MappingSpec& spec, const char* point,
                      size_t crash_index, uint64_t partial_bytes,
                      const std::string& dir) {
  SCOPED_TRACE(spec.name + " " + point + " op=" +
               std::to_string(crash_index) + " partial=" +
               std::to_string(partial_bytes));
  FaultInjector faults;
  {
    auto db = DurableDatabase::Open(dir, MakeOptions(spec, &faults));
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    faults.Arm(point, static_cast<int>(crash_index) + 1, partial_bytes);
    size_t acked = RunUntilCrash(db->get());
    ASSERT_TRUE(faults.crashed());
    ASSERT_EQ(acked, crash_index);
  }
  // A record is durable iff it was fully written: `before` and `torn`
  // crashes lose the in-flight (unacknowledged) op; an `after` crash
  // keeps it — the op persisted but the caller never heard back, the
  // classic commit-timeout ambiguity resolved in favor of durability.
  size_t expected_ops =
      crash_index + (std::string(point) == "wal.append.after" ? 1 : 0);
  DurableDatabase::RecoveryInfo info;
  std::string digest = RecoverDigest(dir, spec, &info);
  EXPECT_EQ(digest, Oracles().Digest(spec, expected_ops));
  EXPECT_EQ(info.records_replayed, expected_ops);
  if (std::string(point) == "wal.append.torn" && partial_bytes > 0) {
    EXPECT_FALSE(info.wal_clean);
  } else {
    EXPECT_TRUE(info.wal_clean) << info.wal_stop_reason;
  }
}

TEST(WalAppendCrashMatrix, EveryOpEveryMappingBeforeAndAfter) {
  for (const MappingSpec& spec : Figure4AllMappings()) {
    std::string dir = FreshDir("append_" + spec.name);
    for (size_t i = 0; i < FaultScript().size(); ++i) {
      for (const char* point : {"wal.append.before", "wal.append.after"}) {
        std::filesystem::remove_all(dir);
        CheckAppendCrash(spec, point, i, 0, dir);
      }
    }
  }
}

TEST(WalAppendCrashMatrix, TornWritesAtEveryOp) {
  // Partial lengths: inside the length field, inside the CRC field, just
  // into the payload, and "almost everything" (clamped to len-1).
  const uint64_t kPartials[] = {1, 5, 9, 1000000};
  for (const MappingSpec& spec : Figure4AllMappings()) {
    std::string dir = FreshDir("torn_" + spec.name);
    for (size_t i = 0; i < FaultScript().size(); ++i) {
      for (uint64_t partial : kPartials) {
        std::filesystem::remove_all(dir);
        CheckAppendCrash(spec, "wal.append.torn", i, partial, dir);
      }
    }
  }
}

TEST(CheckpointCrashMatrix, EveryPointEveryMapping) {
  // Crash the checkpoint protocol at each step, with 8 acked ops before
  // it. Whatever step dies, the 8 ops must survive: either the WAL still
  // has them (begin/tmp_written), or the snapshot has them and leftover
  // WAL records are skipped by LSN (renamed), or both checkpoint and WAL
  // truncation completed (done).
  const char* kPoints[] = {"checkpoint.begin", "checkpoint.tmp_written",
                           "checkpoint.renamed", "checkpoint.done"};
  const size_t kOpsBefore = 8;
  for (const MappingSpec& spec : Figure4AllMappings()) {
    for (const char* point : kPoints) {
      SCOPED_TRACE(spec.name + std::string(" ") + point);
      std::string dir = FreshDir("ckpt_" + spec.name);
      FaultInjector faults;
      {
        auto db = DurableDatabase::Open(dir, MakeOptions(spec, &faults));
        ASSERT_TRUE(db.ok()) << db.status().ToString();
        const std::vector<Op>& ops = FaultScript();
        for (size_t i = 0; i < kOpsBefore; ++i) {
          ASSERT_TRUE(ops[i].apply((*db)->db()).ok()) << ops[i].description;
        }
        faults.Arm(point);
        auto summary = (*db)->Checkpoint();
        ASSERT_FALSE(summary.ok()) << *summary;
        ASSERT_TRUE(faults.crashed());
        // The process is dead: nothing after the crash is acknowledged.
        EXPECT_FALSE(ops[kOpsBefore].apply((*db)->db()).ok());
      }
      DurableDatabase::RecoveryInfo info;
      std::string digest = RecoverDigest(dir, spec, &info);
      EXPECT_EQ(digest, Oracles().Digest(spec, kOpsBefore));
      bool snapshot_expected = std::string(point) == "checkpoint.renamed" ||
                               std::string(point) == "checkpoint.done";
      EXPECT_EQ(info.had_snapshot, snapshot_expected);
      if (std::string(point) == "checkpoint.renamed") {
        // Snapshot in place but WAL not truncated: every leftover record
        // is subsumed and must be skipped, not replayed twice.
        EXPECT_EQ(info.records_skipped, kOpsBefore);
        EXPECT_EQ(info.records_replayed, 0u);
      }
      if (std::string(point) == "checkpoint.done") {
        EXPECT_EQ(info.records_replayed, 0u);
        EXPECT_EQ(info.records_skipped, 0u);
      }
    }
  }
}

TEST(CheckpointCrashMatrix, CrashAfterSecondCheckpointRename) {
  // A successful checkpoint followed by one that dies between rename and
  // truncate: recovery must pick the *newer* snapshot and skip the WAL
  // records it subsumes.
  for (const MappingSpec& spec : Figure4AllMappings()) {
    SCOPED_TRACE(spec.name);
    std::string dir = FreshDir("ckpt2_" + spec.name);
    FaultInjector faults;
    const std::vector<Op>& ops = FaultScript();
    {
      auto db = DurableDatabase::Open(dir, MakeOptions(spec, &faults));
      ASSERT_TRUE(db.ok()) << db.status().ToString();
      for (size_t i = 0; i < 4; ++i) {
        ASSERT_TRUE(ops[i].apply((*db)->db()).ok());
      }
      ASSERT_TRUE((*db)->Checkpoint().ok());
      for (size_t i = 4; i < 8; ++i) {
        ASSERT_TRUE(ops[i].apply((*db)->db()).ok());
      }
      faults.Arm("checkpoint.renamed");
      ASSERT_FALSE((*db)->Checkpoint().ok());
    }
    DurableDatabase::RecoveryInfo info;
    std::string digest = RecoverDigest(dir, spec, &info);
    EXPECT_EQ(digest, Oracles().Digest(spec, 8));
    EXPECT_TRUE(info.had_snapshot);
    EXPECT_EQ(info.snapshot_gen, 2u);
    EXPECT_EQ(info.records_skipped, 4u);  // lsn 5..8, subsumed by gen 2
    EXPECT_EQ(info.records_replayed, 0u);
  }
}

/// Runs the full script cleanly and returns the WAL bytes plus the file
/// offset at which each operation's record ends.
struct RecordedWal {
  std::string bytes;
  std::vector<uint64_t> end_offsets;  // end_offsets[i] = end of op i's record
};

RecordedWal RecordWal(const MappingSpec& spec, const std::string& dir) {
  RecordedWal out;
  auto db = DurableDatabase::Open(dir, MakeOptions(spec));
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  for (const Op& op : FaultScript()) {
    Status s = op.apply((*db)->db());
    EXPECT_TRUE(s.ok()) << op.description << ": " << s.ToString();
    out.end_offsets.push_back((*db)->wal_bytes());
  }
  std::ifstream in(dir + "/wal.erblog", std::ios::binary);
  out.bytes.assign(std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(out.bytes.size(), out.end_offsets.back());
  return out;
}

size_t OpsFullyBefore(const RecordedWal& wal, uint64_t offset) {
  size_t n = 0;
  while (n < wal.end_offsets.size() && wal.end_offsets[n] <= offset) ++n;
  return n;
}

void WriteWalFile(const std::string& dir, const std::string& bytes) {
  std::filesystem::create_directories(dir);
  std::ofstream out(dir + "/wal.erblog",
                    std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(TornTailSweep, EveryTruncationOffsetEveryMapping) {
  // The strongest torn-write model: the log ends mid-write at an
  // arbitrary byte. For EVERY prefix length of the WAL, recovery must
  // reconstruct exactly the operations whose records fit the prefix.
  for (const MappingSpec& spec : Figure4AllMappings()) {
    std::string record_dir = FreshDir("sweep_record_" + spec.name);
    RecordedWal wal = RecordWal(spec, record_dir);
    ASSERT_FALSE(wal.bytes.empty());
    std::string dir = FreshDir("sweep_" + spec.name);
    for (uint64_t offset = 0; offset <= wal.bytes.size(); ++offset) {
      WriteWalFile(dir, wal.bytes.substr(0, offset));
      size_t expected_ops = OpsFullyBefore(wal, offset);
      DurableDatabase::RecoveryInfo info;
      std::string digest = RecoverDigest(dir, spec, &info);
      ASSERT_EQ(digest, Oracles().Digest(spec, expected_ops))
          << spec.name << " truncated at " << offset << " of "
          << wal.bytes.size();
      ASSERT_EQ(info.records_replayed, expected_ops);
      // A cut exactly on a record boundary looks like a clean shutdown;
      // anywhere else recovery must notice (and discard) the torn tail.
      bool at_boundary =
          offset == 0 ||
          (expected_ops > 0 && wal.end_offsets[expected_ops - 1] == offset);
      ASSERT_EQ(info.wal_clean, at_boundary)
          << spec.name << " truncated at " << offset << ": "
          << info.wal_stop_reason;
    }
  }
}

TEST(BitFlipSweep, EveryByteM1) {
  // Flip one bit at every byte of the log: recovery must stop at the
  // corrupted record (checksum or framing failure) and keep everything
  // before it. No corrupted record may ever half-apply.
  MappingSpec spec = Figure4M1();
  std::string record_dir = FreshDir("flip_record");
  RecordedWal wal = RecordWal(spec, record_dir);
  ASSERT_FALSE(wal.bytes.empty());
  std::string dir = FreshDir("flip");
  for (uint64_t offset = 0; offset < wal.bytes.size(); ++offset) {
    std::string corrupt = wal.bytes;
    corrupt[offset] = static_cast<char>(corrupt[offset] ^ 0x01);
    WriteWalFile(dir, corrupt);
    // The flipped byte invalidates the record containing it; all records
    // strictly before that one replay.
    size_t expected_ops = OpsFullyBefore(wal, offset);
    DurableDatabase::RecoveryInfo info;
    std::string digest = RecoverDigest(dir, spec, &info);
    ASSERT_EQ(digest, Oracles().Digest(spec, expected_ops))
        << "bit flip at " << offset << " of " << wal.bytes.size();
    ASSERT_EQ(info.records_replayed, expected_ops);
    ASSERT_FALSE(info.wal_clean) << "bit flip at " << offset;
  }
}

TEST(BitFlipSweep, RecordBoundariesAllMappings) {
  // Cheaper cross-mapping variant: flip bytes around every record
  // boundary (first/last bytes of each record) under every mapping.
  for (const MappingSpec& spec : Figure4AllMappings()) {
    if (spec.name == "M1") continue;  // covered exhaustively above
    std::string record_dir = FreshDir("flipb_record_" + spec.name);
    RecordedWal wal = RecordWal(spec, record_dir);
    std::vector<uint64_t> offsets;
    uint64_t start = 0;
    for (uint64_t end : wal.end_offsets) {
      offsets.push_back(start);              // first byte of record (length)
      offsets.push_back(start + 4);          // first byte of CRC
      offsets.push_back(start + 8);          // first byte of payload (type)
      offsets.push_back(end - 1);            // last byte of record
      start = end;
    }
    std::string dir = FreshDir("flipb_" + spec.name);
    for (uint64_t offset : offsets) {
      std::string corrupt = wal.bytes;
      corrupt[offset] = static_cast<char>(corrupt[offset] ^ 0x80);
      WriteWalFile(dir, corrupt);
      size_t expected_ops = OpsFullyBefore(wal, offset);
      std::string digest = RecoverDigest(dir, spec);
      ASSERT_EQ(digest, Oracles().Digest(spec, expected_ops))
          << spec.name << " bit flip at " << offset;
    }
  }
}

// ---- Sharded per-shard crash recovery --------------------------------------
//
// The sharded engine keeps one WAL per shard (<dir>/shard-<k>/wal.erblog),
// so a crash tears at most the tail of each shard's log *independently*.
// On reattach every shard must recover exactly its own acked prefix while
// its siblings lose nothing — and a shard whose log lost the fan-out DDL
// itself must fail-stop the whole attach (schema divergence), never serve
// a partial schema.

using api::StatementRunner;

constexpr int kShards = 4;
constexpr int64_t kShardedInserts = 32;

std::unique_ptr<StatementRunner> OpenSharded(const std::string& dir,
                                             Status* status = nullptr) {
  StatementRunner::Options options;
  options.attach_dir = dir;
  options.shards = kShards;
  auto runner = StatementRunner::Create(std::move(options));
  if (status != nullptr) *status = runner.status();
  return runner.ok() ? std::move(runner).value() : nullptr;
}

/// Per-shard WAL sizes via SHOW SHARDS (columns shard | inserts |
/// wal_bytes | next_lsn | snapshot_gen).
std::vector<uint64_t> ShardWalBytes(StatementRunner* runner) {
  std::vector<uint64_t> out;
  auto show = runner->Execute("SHOW SHARDS");
  EXPECT_TRUE(show.ok()) << show.status().ToString();
  if (!show.ok()) return out;
  for (const Row& row : show->result.rows) {
    out.push_back(static_cast<uint64_t>(row[2].as_int64()));
  }
  return out;
}

/// One clean sharded run: which shard every insert routed to, and each
/// shard's WAL end offset after the DDL and after every routed insert —
/// the per-shard record boundaries the truncation sweep cuts at.
struct ShardedRun {
  std::vector<uint64_t> ddl_baseline;
  std::vector<std::vector<int64_t>> ids;
  std::vector<std::vector<uint64_t>> end_offsets;
};

ShardedRun BuildShardedDatabase(const std::string& dir) {
  ShardedRun run;
  run.ids.resize(kShards);
  run.end_offsets.resize(kShards);
  std::unique_ptr<StatementRunner> runner = OpenSharded(dir);
  EXPECT_NE(runner, nullptr);
  if (runner == nullptr) return run;
  EXPECT_TRUE(runner->Execute("CREATE ENTITY H ( id INT KEY, v INT )").ok());
  run.ddl_baseline = ShardWalBytes(runner.get());
  for (int64_t id = 0; id < kShardedInserts; ++id) {
    auto outcome = runner->Execute("INSERT H (id = " + std::to_string(id) +
                                   ", v = " + std::to_string(7 * id) + ")");
    EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
    if (!outcome.ok()) return run;
    int shard = outcome->shard;
    EXPECT_GE(shard, 0);
    EXPECT_LT(shard, kShards);
    run.ids[shard].push_back(id);
    run.end_offsets[shard].push_back(ShardWalBytes(runner.get())[shard]);
  }
  // The runner closes cleanly here without a checkpoint: every shard's
  // WAL stays on disk exactly as written.
  return run;
}

void RestoreDir(const std::string& pristine, const std::string& scratch) {
  std::filesystem::remove_all(scratch);
  std::filesystem::copy(pristine, scratch,
                        std::filesystem::copy_options::recursive);
}

/// Reopens `dir` sharded and checks the surviving rows are exactly
/// `expected_ids` with the v = 7*id invariant intact.
void CheckShardedRecovery(const std::string& dir,
                          const std::vector<int64_t>& expected_ids) {
  std::unique_ptr<StatementRunner> runner = OpenSharded(dir);
  ASSERT_NE(runner, nullptr);
  auto rows = runner->Execute("SELECT id, v FROM H");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  std::vector<int64_t> got;
  for (const Row& row : rows->result.rows) {
    ASSERT_EQ(row[1].as_int64(), 7 * row[0].as_int64());
    got.push_back(row[0].as_int64());
  }
  std::sort(got.begin(), got.end());
  std::vector<int64_t> want = expected_ids;
  std::sort(want.begin(), want.end());
  ASSERT_EQ(got, want);
}

TEST(ShardedRecovery, VictimShardTornTailSweepOthersIntact) {
  // Crash one shard's WAL at every record boundary and mid-record, while
  // its three siblings shut down cleanly. Recovery must keep every
  // sibling insert plus exactly the victim's fully-written prefix.
  std::string pristine = FreshDir("sharded_pristine");
  ShardedRun run = BuildShardedDatabase(pristine);
  ASSERT_EQ(run.ddl_baseline.size(), static_cast<size_t>(kShards));
  std::string dir = FreshDir("sharded_sweep");
  for (int victim = 0; victim < kShards; ++victim) {
    ASSERT_FALSE(run.ids[victim].empty()) << "shard " << victim
                                          << " received no inserts";
    // Cut offsets: the post-DDL baseline (all victim inserts lost), every
    // insert-record boundary (clean prefixes), and every midpoint (torn
    // records that recovery must discard).
    std::vector<uint64_t> cuts = {run.ddl_baseline[victim]};
    uint64_t prev = run.ddl_baseline[victim];
    for (uint64_t end : run.end_offsets[victim]) {
      cuts.push_back(prev + (end - prev) / 2);
      cuts.push_back(end);
      prev = end;
    }
    for (uint64_t cut : cuts) {
      SCOPED_TRACE("victim shard " + std::to_string(victim) + " cut at " +
                   std::to_string(cut));
      RestoreDir(pristine, dir);
      std::filesystem::resize_file(
          dir + "/shard-" + std::to_string(victim) + "/wal.erblog", cut);
      std::vector<int64_t> expected;
      for (int k = 0; k < kShards; ++k) {
        if (k == victim) continue;
        expected.insert(expected.end(), run.ids[k].begin(), run.ids[k].end());
      }
      for (size_t i = 0; i < run.ids[victim].size(); ++i) {
        if (run.end_offsets[victim][i] <= cut) {
          expected.push_back(run.ids[victim][i]);
        }
      }
      CheckShardedRecovery(dir, expected);
    }
  }
}

TEST(ShardedRecovery, LosingTheFanOutDdlFailsStopTheAttach) {
  // A cut below the DDL baseline loses the CREATE that every sibling
  // logged: the victim recovers a different (empty) schema, and the
  // attach must refuse to serve rather than route into a shard that
  // lacks the entity set.
  std::string pristine = FreshDir("sharded_ddl_pristine");
  ShardedRun run = BuildShardedDatabase(pristine);
  ASSERT_EQ(run.ddl_baseline.size(), static_cast<size_t>(kShards));
  std::string dir = FreshDir("sharded_ddl");
  const int victim = 1;
  for (uint64_t cut : {uint64_t{0}, run.ddl_baseline[victim] / 2}) {
    SCOPED_TRACE("cut at " + std::to_string(cut));
    RestoreDir(pristine, dir);
    std::filesystem::resize_file(
        dir + "/shard-" + std::to_string(victim) + "/wal.erblog", cut);
    Status status = Status::OK();
    std::unique_ptr<StatementRunner> runner = OpenSharded(dir, &status);
    ASSERT_EQ(runner, nullptr);
    EXPECT_NE(status.ToString().find("refusing to serve"), std::string::npos)
        << status.ToString();
  }
}

TEST(ShardedRecovery, SnapshotGenerationSkewIsAbsorbed) {
  // kill -9 between the per-shard phases of a fan-out CHECKPOINT leaves
  // the shards at different snapshot generations. Simulate it by
  // checkpointing ONE shard's database directly; reattach must take the
  // skew in stride (each shard's own WAL covers its gap), keep every
  // row, and count the event on shard.recovery.gen_skew.
  std::string dir = FreshDir("sharded_genskew");
  ShardedRun run = BuildShardedDatabase(dir);
  ASSERT_EQ(run.ddl_baseline.size(), static_cast<size_t>(kShards));
  {
    std::unique_ptr<StatementRunner> runner = OpenSharded(dir);
    ASSERT_NE(runner, nullptr);
    ASSERT_TRUE(runner->Execute("CHECKPOINT").ok());
  }
  {
    durability::DurableDatabase::Options options;
    options.spec = MappingSpec::Normalized("m1");
    auto one = DurableDatabase::Open(dir + "/shard-2", std::move(options));
    ASSERT_TRUE(one.ok()) << one.status().ToString();
    ASSERT_TRUE((*one)->Checkpoint().ok());
  }
  uint64_t skew_before = obs::MetricsRegistry::Global().CounterValue(
      "shard.recovery.gen_skew");
  std::vector<int64_t> expected;
  for (int k = 0; k < kShards; ++k) {
    expected.insert(expected.end(), run.ids[k].begin(), run.ids[k].end());
  }
  CheckShardedRecovery(dir, expected);
  EXPECT_GT(obs::MetricsRegistry::Global().CounterValue(
                "shard.recovery.gen_skew"),
            skew_before);
}

}  // namespace
}  // namespace erbium
