// Tests for the entity-centric API / governance layer: JSON rendering,
// expanded entity retrieval, PII tagging, subject export and erasure.

#include <gtest/gtest.h>

#include "api/entity_store.h"
#include "api/statement_runner.h"
#include "er/ddl_parser.h"
#include "workload/figure4.h"

namespace erbium {
namespace {

TEST(JsonTest, RendersAllKinds) {
  Value v = Value::Struct(
      {{"i", Value::Int64(-5)},
       {"f", Value::Float64(1.5)},
       {"b", Value::Bool(true)},
       {"n", Value::Null()},
       {"s", Value::String("a\"b\\c\nd")},
       {"arr", Value::Array({Value::Int64(1), Value::String("x")})}});
  EXPECT_EQ(ToJson(v),
            "{\"i\":-5,\"f\":1.5,\"b\":true,\"n\":null,"
            "\"s\":\"a\\\"b\\\\c\\nd\",\"arr\":[1,\"x\"]}");
}

class EntityStoreTest : public ::testing::TestWithParam<MappingSpec> {
 protected:
  void SetUp() override {
    Figure4Config config;
    config.num_r = 120;
    config.num_s = 40;
    auto db = MakeFigure4Database(GetParam(), config, &schema_);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(db).value();
    store_ = std::make_unique<EntityStore>(db_.get());
  }

  std::shared_ptr<ERSchema> schema_;
  std::unique_ptr<MappedDatabase> db_;
  std::unique_ptr<EntityStore> store_;
};

INSTANTIATE_TEST_SUITE_P(
    Figure4, EntityStoreTest,
    ::testing::Values(Figure4M1(), Figure4M5(), Figure4M6()),
    [](const ::testing::TestParamInfo<MappingSpec>& info) {
      return info.param.name;
    });

TEST_P(EntityStoreTest, GetExpandedIncludesWeakAndRelationships) {
  // Find an S that owns at least one S1.
  auto s1_scan = db_->ScanEntity("S1", {});
  ASSERT_TRUE(s1_scan.ok());
  auto s1_rows = CollectRows(s1_scan->get());
  ASSERT_TRUE(s1_rows.ok());
  ASSERT_FALSE(s1_rows->empty());
  Value s_id = s1_rows->front()[0];

  auto expanded = store_->GetExpanded("S", {s_id});
  ASSERT_TRUE(expanded.ok()) << expanded.status().ToString();
  const Value* nested_s1 = expanded->FindField("S1");
  ASSERT_NE(nested_s1, nullptr);
  ASSERT_EQ(nested_s1->kind(), TypeKind::kArray);
  EXPECT_FALSE(nested_s1->array().empty());
  // Relationship partners listed under "RS.<role>".
  const Value* rs = expanded->FindField("RS.R");
  ASSERT_NE(rs, nullptr);
  EXPECT_EQ(rs->kind(), TypeKind::kArray);
  // JSON rendering is well-formed-ish.
  auto json = store_->GetJson("S", {s_id});
  ASSERT_TRUE(json.ok());
  EXPECT_EQ(json->front(), '{');
  EXPECT_NE(json->find("\"S1\":["), std::string::npos);
}

TEST_P(EntityStoreTest, SubjectEraseRemovesAllTraces) {
  Value s_id = Value::Int64(3);
  ASSERT_TRUE(db_->EntityExists("S", {s_id}).value());
  ASSERT_TRUE(store_->EraseSubject("S", {s_id}).ok());
  EXPECT_FALSE(db_->EntityExists("S", {s_id}).value());
  // No relationship edge survives.
  auto rs = db_->ScanRelationship("RS");
  ASSERT_TRUE(rs.ok());
  auto rows = CollectRows(rs->get());
  ASSERT_TRUE(rows.ok());
  for (const Row& row : *rows) {
    EXPECT_NE(row[1], s_id);
  }
}

TEST(EntityStorePiiTest, TaggingExportAndRedaction) {
  // A small schema with PII tags.
  ERSchema schema;
  ASSERT_TRUE(DdlParser::Execute(R"(
    CREATE ENTITY Person (
      id INT KEY,
      name STRING PII,
      email STRING PII,
      favorite_color STRING
    );)",
                                 &schema)
                  .ok());
  auto db = MappedDatabase::Create(&schema, MappingSpec::Normalized());
  ASSERT_TRUE(db.ok());
  EntityStore store(db->get());
  ASSERT_TRUE(store
                  .Put("Person",
                       Value::Struct({{"id", Value::Int64(1)},
                                      {"name", Value::String("Ada")},
                                      {"email", Value::String("a@b.c")},
                                      {"favorite_color",
                                       Value::String("teal")}}))
                  .ok());
  auto pii = store.PiiAttributes("Person");
  ASSERT_TRUE(pii.ok());
  EXPECT_EQ(*pii, (std::vector<std::string>{"name", "email"}));

  auto exported = store.ExportSubject("Person", {Value::Int64(1)});
  ASSERT_TRUE(exported.ok());
  ASSERT_NE(exported->FindField("subject"), nullptr);
  ASSERT_NE(exported->FindField("pii_attributes"), nullptr);
  EXPECT_EQ(exported->FindField("pii_attributes")->array().size(), 2u);

  auto entity = store.Get("Person", {Value::Int64(1)});
  ASSERT_TRUE(entity.ok());
  auto redacted = store.Redact("Person", *entity);
  ASSERT_TRUE(redacted.ok());
  EXPECT_TRUE(redacted->FindField("name")->is_null());
  EXPECT_TRUE(redacted->FindField("email")->is_null());
  EXPECT_EQ(*redacted->FindField("favorite_color"), Value::String("teal"));
}

// Classification must depend only on the statement's leading keyword,
// never on its spelling: leading whitespace (spaces, tabs, newlines) and
// letter case classify identically to the canonical form. A
// misclassified read would take the wrong lock mode — too strong costs
// concurrency, too weak races structural statements.
TEST(StatementClassifyTest, WhitespaceAndCaseInsensitive) {
  using Runner = api::StatementRunner;
  using Class = Runner::StatementClass;
  struct Case {
    const char* statement;
    Class expected;
  };
  const Case kCases[] = {
      {"SELECT r_id FROM R", Class::kRead},
      {"select r_id from R", Class::kRead},
      {"  \t SELECT r_id FROM R", Class::kRead},
      {"\n\nselect r_id from R", Class::kRead},
      {"\r\n  SeLeCt 1", Class::kRead},
      {"EXPLAIN SELECT 1", Class::kRead},
      {"\texplain analyze select 1", Class::kRead},
      {"SHOW TABLES", Class::kRead},
      {" show sessions", Class::kRead},
      {"TRACE SELECT 1", Class::kRead},
      {"ADVISE LIMIT 3", Class::kRead},
      {"\n advise", Class::kRead},
      {"EXPORT WORKLOAD INTO 'w.json'", Class::kRead},
      {"INSERT R (r_id = 1)", Class::kCrud},
      {"\n\tinsert R (r_id = 1)", Class::kCrud},
      {"LOAD WORKLOAD FROM 'w.json'", Class::kCrud},
      {"CHECKPOINT", Class::kCrud},
      {"  checkpoint", Class::kCrud},
      {"CREATE ENTITY Person (id INT KEY)", Class::kExclusive},
      {"\ncreate entity P (id INT KEY)", Class::kExclusive},
      {"REMAP m3", Class::kExclusive},
      {"ATTACH DATABASE '/tmp/x'", Class::kExclusive},
      {"  attach database '/tmp/x'", Class::kExclusive},
      {"DROP TABLE R", Class::kExclusive},  // unknown: exclusive is safe
      {"", Class::kExclusive},
      {"   \n\t ", Class::kExclusive},
  };
  for (const Case& c : kCases) {
    EXPECT_EQ(Runner::Classify(c.statement), c.expected)
        << "statement: \"" << c.statement << "\"";
  }
}

}  // namespace
}  // namespace erbium
