// Network server integration tests: remote statement execution, session
// observability (SHOW SESSIONS / SHOW QUERIES attribution), admission
// backpressure, idle and request deadlines, graceful shutdown with a
// final checkpoint, and a 32-client mixed-workload hammer across the
// paper's mappings M1-M6 checked against a serial oracle. Runs under
// TSan in CI (the `server` label).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "api/statement_runner.h"
#include "gtest/gtest.h"
#include "server/client.h"
#include "server/server.h"

namespace erbium {
namespace server {
namespace {

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/erbium_server_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

ServerOptions Figure4ServerOptions() {
  ServerOptions options;
  options.port = 0;
  options.runner.figure4 = true;
  options.runner.figure4_num_r = 200;
  options.runner.figure4_num_s = 80;
  return options;
}

Client::Options ClientFor(const Server& server, const std::string& name) {
  Client::Options options;
  options.port = server.port();
  options.name = name;
  return options;
}

/// Index of `column` in the result, or -1.
int ColumnIndex(const erql::QueryResult& result, const std::string& column) {
  auto it = std::find(result.columns.begin(), result.columns.end(), column);
  return it == result.columns.end()
             ? -1
             : static_cast<int>(it - result.columns.begin());
}

TEST(ServerTest, StartsOnEphemeralPortAndStops) {
  auto server = Server::Start(ServerOptions{});
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  EXPECT_GT((*server)->port(), 0);
  EXPECT_TRUE((*server)->Stop().ok());
  // Idempotent.
  EXPECT_TRUE((*server)->Stop().ok());
}

TEST(ServerTest, RemoteStatementsExecute) {
  auto server = Server::Start(Figure4ServerOptions());
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  auto client = Client::Connect(ClientFor(**server, "exec"));
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_GT((*client)->session_id(), 0u);

  auto rows = (*client)->Execute("SELECT r_id, r_a1 FROM R WHERE r_id < 4");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->shape, api::OutputShape::kTable);
  EXPECT_EQ(rows->result.rows.size(), 3u);

  auto insert = (*client)->Execute(
      "INSERT R (r_id = 90001, r_a1 = 41, r_a2 = 0.5, r_a3 = 'wire', "
      "r_a4 = 2)");
  ASSERT_TRUE(insert.ok()) << insert.status().ToString();
  EXPECT_EQ(insert->shape, api::OutputShape::kMessage);

  auto read_back =
      (*client)->Execute("SELECT r_a1 FROM R WHERE r_id = 90001");
  ASSERT_TRUE(read_back.ok());
  ASSERT_EQ(read_back->result.rows.size(), 1u);
  EXPECT_EQ(read_back->result.rows[0][0].as_int64(), 41);

  auto explain = (*client)->Execute("EXPLAIN SELECT r_id FROM R");
  ASSERT_TRUE(explain.ok());
  EXPECT_EQ(explain->shape, api::OutputShape::kLines);
  EXPECT_FALSE(explain->result.rows.empty());

  // A remap travels the same path; queries keep answering afterwards.
  auto remap = (*client)->Execute("REMAP m3");
  ASSERT_TRUE(remap.ok()) << remap.status().ToString();
  auto after = (*client)->Execute("SELECT r_a1 FROM R WHERE r_id = 90001");
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after->result.rows.size(), 1u);
  EXPECT_EQ(after->result.rows[0][0].as_int64(), 41);
}

TEST(ServerTest, RemoteErrorsKeepTheirStatusCode) {
  auto server = Server::Start(Figure4ServerOptions());
  ASSERT_TRUE(server.ok());
  auto client = Client::Connect(ClientFor(**server, "errs"));
  ASSERT_TRUE(client.ok());

  auto parse = (*client)->Execute("SELECT FROM WHERE");
  ASSERT_FALSE(parse.ok());
  EXPECT_EQ(parse.status().code(), StatusCode::kParseError);

  auto unknown = (*client)->Execute("FROBNICATE EVERYTHING");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kInvalidArgument);

  auto missing = (*client)->Execute("SELECT nope FROM R");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kAnalysisError);

  // The connection survives statement errors.
  EXPECT_TRUE((*client)->Ping().ok());
}

TEST(ServerTest, PipelinedBatchExecutesInOrder) {
  auto server = Server::Start(Figure4ServerOptions());
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  auto client = Client::Connect(ClientFor(**server, "pipeline"));
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  // Write-then-read within one batch: in-order execution makes the
  // read observe the write that preceded it in the pipeline.
  auto batch = (*client)->ExecuteBatch({
      "INSERT R (r_id = 80001, r_a1 = 5, r_a2 = 0.5, r_a3 = 'p', r_a4 = 1)",
      "SELECT r_a1 FROM R WHERE r_id = 80001",
      "SELECT FROM WHERE",  // mid-batch failure must not kill the batch
      "SELECT r_id FROM R WHERE r_id = 80001",
  });
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->size(), 4u);
  EXPECT_TRUE((*batch)[0].status.ok()) << (*batch)[0].status.ToString();
  ASSERT_TRUE((*batch)[1].status.ok());
  ASSERT_EQ((*batch)[1].outcome.result.rows.size(), 1u);
  EXPECT_EQ((*batch)[1].outcome.result.rows[0][0].as_int64(), 5);
  EXPECT_EQ((*batch)[2].status.code(), StatusCode::kParseError);
  ASSERT_TRUE((*batch)[3].status.ok());
  EXPECT_EQ((*batch)[3].outcome.result.rows.size(), 1u);

  // The connection survives per-statement failures and stays usable for
  // both pipelined and classic one-at-a-time requests.
  EXPECT_TRUE((*client)->Ping().ok());
  EXPECT_TRUE((*client)->Execute("SELECT r_id FROM R WHERE r_id < 4").ok());
}

TEST(ServerTest, LargePipelinedBatchKeepsSequence) {
  auto server = Server::Start(Figure4ServerOptions());
  ASSERT_TRUE(server.ok());
  auto client = Client::Connect(ClientFor(**server, "pipeline-large"));
  ASSERT_TRUE(client.ok());

  // Well past max_pipeline_depth would stall without backpressure
  // handling; 100+ statements also cross several socket buffers.
  std::vector<std::string> statements;
  for (int i = 0; i < 120; ++i) {
    statements.push_back("SELECT r_id FROM R WHERE r_id = " +
                         std::to_string(i % 50));
  }
  auto batch = (*client)->ExecuteBatch(statements);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->size(), statements.size());
  for (size_t i = 0; i < batch->size(); ++i) {
    ASSERT_TRUE((*batch)[i].status.ok()) << "statement " << i;
    // r_id 0 does not exist (ids start at 1); everything else does.
    EXPECT_EQ((*batch)[i].outcome.result.rows.size(),
              (i % 50) == 0 ? 0u : 1u)
        << "statement " << i;
  }
}

TEST(ServerTest, ConcurrentPipelinedClientsReadTheirOwnWrites) {
  auto server = Server::Start(Figure4ServerOptions());
  ASSERT_TRUE(server.ok());
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      auto client = Client::Connect(
          ClientFor(**server, "pipe-" + std::to_string(t)));
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      int base = 81000 + t * 100;
      std::vector<std::string> statements;
      for (int i = 0; i < 8; ++i) {
        int id = base + i;
        statements.push_back(
            "INSERT R (r_id = " + std::to_string(id) + ", r_a1 = " +
            std::to_string(id) + ", r_a2 = 0.5, r_a3 = 'c', r_a4 = 1)");
        statements.push_back("SELECT r_a1 FROM R WHERE r_id = " +
                             std::to_string(id));
      }
      auto batch = (*client)->ExecuteBatch(statements);
      if (!batch.ok() || batch->size() != statements.size()) {
        failures.fetch_add(1);
        return;
      }
      for (size_t i = 1; i < batch->size(); i += 2) {
        const auto& item = (*batch)[i];
        int id = base + static_cast<int>(i / 2);
        if (!item.status.ok() || item.outcome.result.rows.size() != 1 ||
            item.outcome.result.rows[0][0].as_int64() != id) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ServerTest, ShowSessionsListsRemoteClients) {
  auto server = Server::Start(Figure4ServerOptions());
  ASSERT_TRUE(server.ok());
  auto alice = Client::Connect(ClientFor(**server, "alice"));
  auto bob = Client::Connect(ClientFor(**server, "bob"));
  ASSERT_TRUE(alice.ok());
  ASSERT_TRUE(bob.ok());

  ASSERT_TRUE((*alice)->Execute("SELECT r_id FROM R WHERE r_id = 1").ok());

  auto sessions = (*bob)->Execute("SHOW SESSIONS");
  ASSERT_TRUE(sessions.ok()) << sessions.status().ToString();
  int name_col = ColumnIndex(sessions->result, "session");
  int peer_col = ColumnIndex(sessions->result, "peer");
  int stmts_col = ColumnIndex(sessions->result, "statements");
  ASSERT_GE(name_col, 0);
  ASSERT_GE(peer_col, 0);
  ASSERT_GE(stmts_col, 0);

  bool saw_alice = false, saw_bob = false;
  for (const Row& row : sessions->result.rows) {
    const std::string& name = row[name_col].as_string();
    if (name == "alice") {
      saw_alice = true;
      EXPECT_EQ(row[stmts_col].as_int64(), 1);
      EXPECT_NE(row[peer_col].as_string().find("127.0.0.1"),
                std::string::npos);
    }
    if (name == "bob") saw_bob = true;
  }
  EXPECT_TRUE(saw_alice);
  EXPECT_TRUE(saw_bob);

  // A departed session disappears.
  (*alice)->Close();
  // The server processes the goodbye asynchronously; poll briefly.
  bool gone = false;
  for (int i = 0; i < 50 && !gone; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    auto again = (*bob)->Execute("SHOW SESSIONS");
    ASSERT_TRUE(again.ok());
    gone = true;
    for (const Row& row : again->result.rows) {
      if (row[name_col].as_string() == "alice") gone = false;
    }
  }
  EXPECT_TRUE(gone);
}

TEST(ServerTest, ShowQueriesAttributesStatementsToSessions) {
  auto server = Server::Start(Figure4ServerOptions());
  ASSERT_TRUE(server.ok());
  auto alice = Client::Connect(ClientFor(**server, "alice"));
  auto bob = Client::Connect(ClientFor(**server, "bob"));
  ASSERT_TRUE(alice.ok());
  ASSERT_TRUE(bob.ok());

  ASSERT_TRUE((*alice)->Execute("SELECT r_a1 FROM R WHERE r_id = 7").ok());

  auto queries = (*bob)->Execute("SHOW QUERIES LIMIT 10");
  ASSERT_TRUE(queries.ok()) << queries.status().ToString();
  int session_col = ColumnIndex(queries->result, "session");
  int query_col = ColumnIndex(queries->result, "query");
  ASSERT_GE(session_col, 0);
  ASSERT_GE(query_col, 0);
  bool attributed = false;
  for (const Row& row : queries->result.rows) {
    if (row[session_col].as_string() == "alice" &&
        row[query_col].as_string().find("r_id = 7") != std::string::npos) {
      attributed = true;
    }
  }
  EXPECT_TRUE(attributed);
}

TEST(ServerTest, PingPong) {
  auto server = Server::Start(ServerOptions{});
  ASSERT_TRUE(server.ok());
  auto client = Client::Connect(ClientFor(**server, "pinger"));
  ASSERT_TRUE(client.ok());
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE((*client)->Ping().ok());
  }
}

TEST(ServerTest, MaxConnectionsGetTypedBackpressure) {
  ServerOptions options;
  options.port = 0;
  options.max_connections = 2;
  auto server = Server::Start(std::move(options));
  ASSERT_TRUE(server.ok());

  auto first = Client::Connect(ClientFor(**server, "c1"));
  auto second = Client::Connect(ClientFor(**server, "c2"));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());

  auto third = Client::Connect(ClientFor(**server, "c3"));
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kUnavailable)
      << third.status().ToString();
  EXPECT_NE(third.status().message().find("limit"), std::string::npos);

  // Releasing a slot lets the next connection in (retry covers the
  // server's asynchronous goodbye processing).
  (*first)->Close();
  Client::Options retry = ClientFor(**server, "c4");
  retry.connect_retries = 25;
  retry.connect_retry_pause_ms = 100;
  auto fourth = [&] {
    for (int i = 0; i < 25; ++i) {
      auto attempt = Client::Connect(retry);
      if (attempt.ok()) return attempt;
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    return Client::Connect(retry);
  }();
  EXPECT_TRUE(fourth.ok()) << fourth.status().ToString();
}

TEST(ServerTest, IdleConnectionsAreClosed) {
  ServerOptions options;
  options.port = 0;
  options.idle_timeout_ms = 150;
  auto server = Server::Start(std::move(options));
  ASSERT_TRUE(server.ok());
  auto client = Client::Connect(ClientFor(**server, "sleepy"));
  ASSERT_TRUE(client.ok());

  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  auto late = (*client)->Execute("SHOW METRICS LIKE 'server.*'");
  ASSERT_FALSE(late.ok());
  // Either the typed idle-timeout error frame arrived, or the close beat
  // our request; both are clean outcomes, a hang or crash is not.
  EXPECT_TRUE(late.status().code() == StatusCode::kDeadlineExceeded ||
              late.status().code() == StatusCode::kUnavailable ||
              late.status().code() == StatusCode::kIOError)
      << late.status().ToString();
}

TEST(ServerTest, RequestDeadlineReturnsTypedError) {
  ServerOptions options = Figure4ServerOptions();
  options.runner.figure4_num_r = 1500;
  options.runner.figure4_num_s = 400;
  options.request_deadline_ms = 1;
  auto server = Server::Start(std::move(options));
  ASSERT_TRUE(server.ok());
  auto client = Client::Connect(ClientFor(**server, "deadline"));
  ASSERT_TRUE(client.ok());

  // A three-way join over the preloaded data takes well over 1 ms.
  auto heavy = (*client)->Execute(
      "SELECT r.r_id, s.s_id, rs_a1 FROM R r JOIN S s ON RS");
  ASSERT_FALSE(heavy.ok());
  EXPECT_EQ(heavy.status().code(), StatusCode::kDeadlineExceeded)
      << heavy.status().ToString();
  EXPECT_NE(heavy.status().message().find("deadline"), std::string::npos);

  // The connection survives a deadline miss.
  EXPECT_TRUE((*client)->Ping().ok());
}

TEST(ServerTest, GracefulShutdownDrainsAndCheckpoints) {
  std::string dir = FreshDir("shutdown");
  ServerOptions options = Figure4ServerOptions();
  options.runner.attach_dir = dir;
  auto server = Server::Start(std::move(options));
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  auto client = Client::Connect(ClientFor(**server, "writer"));
  ASSERT_TRUE(client.ok());
  for (int i = 0; i < 20; ++i) {
    auto insert = (*client)->Execute(
        "INSERT R (r_id = " + std::to_string(70000 + i) + ", r_a1 = " +
        std::to_string(i) + ", r_a2 = 1.0, r_a3 = 'd', r_a4 = 0)");
    ASSERT_TRUE(insert.ok()) << insert.status().ToString();
  }

  // Fire one more statement from a thread while Stop() runs, to exercise
  // the drain path. Depending on timing it completes or sees the close;
  // either way nothing may crash or hang.
  std::thread racer([&] {
    (void)(*client)->Execute("SELECT r_id FROM R WHERE r_id >= 70000");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_TRUE((*server)->Stop().ok());
  racer.join();
  server->reset();

  // Reopen the directory: every acknowledged insert is there, and the
  // shutdown checkpoint collapsed the WAL (nothing to replay).
  api::StatementRunner::Options reopen;
  reopen.attach_dir = dir;
  auto runner = api::StatementRunner::Create(std::move(reopen));
  ASSERT_TRUE(runner.ok()) << runner.status().ToString();
  const auto& info = (*runner)->durable()->recovery_info();
  EXPECT_TRUE(info.had_snapshot);
  EXPECT_EQ(info.records_replayed, 0u);
  auto rows = (*runner)->Execute("SELECT r_id FROM R WHERE r_id >= 70000");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->result.rows.size(), 20u);
}

// ---- The hammer -----------------------------------------------------------

/// 32 concurrent clients firing mixed INSERT / point-SELECT /
/// SHOW SESSIONS / CHECKPOINT traffic at one server, for each mapping
/// preset M1-M6. Every client checks read-your-writes on its own keys
/// (disjoint key ranges make the serial oracle per key exact), and at
/// the end a fresh client verifies the full set of acknowledged inserts
/// is visible — the engine-level statement lock must have serialized
/// writers correctly under every physical mapping.
TEST(ServerHammerTest, MixedWorkloadAcrossMappingsM1ToM6) {
  const std::vector<std::string> presets = {"m1", "m2", "m3",
                                            "m4", "m5", "m6"};
  constexpr int kClients = 32;
  constexpr int kInsertsPerClient = 3;
  for (const std::string& preset : presets) {
    SCOPED_TRACE("mapping " + preset);
    ServerOptions options;
    options.port = 0;
    options.max_connections = kClients + 4;
    options.runner.figure4 = true;
    options.runner.figure4_num_r = 60;
    options.runner.figure4_num_s = 30;
    options.runner.spec = api::StatementRunner::PresetByName(preset);
    options.runner.attach_dir = FreshDir("hammer_" + preset);
    auto server = Server::Start(std::move(options));
    ASSERT_TRUE(server.ok()) << server.status().ToString();

    std::atomic<int> failures{0};
    std::vector<std::set<int64_t>> acked(kClients);
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int i = 0; i < kClients; ++i) {
      clients.emplace_back([&, i] {
        Client::Options copt = ClientFor(**server, "h" + std::to_string(i));
        copt.connect_retries = 20;
        auto client = Client::Connect(copt);
        if (!client.ok()) {
          ++failures;
          return;
        }
        for (int k = 0; k < kInsertsPerClient; ++k) {
          int64_t id = 100000 + i * 100 + k;
          auto insert = (*client)->Execute(
              "INSERT R (r_id = " + std::to_string(id) + ", r_a1 = " +
              std::to_string(i) + ", r_a2 = 0.5, r_a3 = 'h', r_a4 = 1)");
          if (!insert.ok()) {
            ++failures;
            continue;
          }
          acked[i].insert(id);
          // Read-your-writes: this key is ours alone, so the point read
          // must see exactly the acknowledged value.
          auto read = (*client)->Execute("SELECT r_a1 FROM R WHERE r_id = " +
                                         std::to_string(id));
          if (!read.ok() || read->result.rows.size() != 1 ||
              read->result.rows[0][0].as_int64() != i) {
            ++failures;
          }
        }
        if (i % 5 == 0) {
          if (!(*client)->Execute("SHOW SESSIONS").ok()) ++failures;
        }
        if (i % 8 == 0) {
          if (!(*client)->Execute("CHECKPOINT").ok()) ++failures;
        }
      });
    }
    for (std::thread& t : clients) t.join();
    EXPECT_EQ(failures.load(), 0);

    // Serial oracle: a fresh session must see the union of everything
    // acknowledged, exactly once each.
    std::set<int64_t> expected;
    for (const auto& per_client : acked) {
      expected.insert(per_client.begin(), per_client.end());
    }
    auto oracle = Client::Connect(ClientFor(**server, "oracle"));
    ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
    auto rows =
        (*oracle)->Execute("SELECT r_id FROM R WHERE r_id >= 100000");
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    std::set<int64_t> got;
    for (const Row& row : rows->result.rows) {
      got.insert(row[0].as_int64());
    }
    EXPECT_EQ(got, expected);
    EXPECT_EQ(rows->result.rows.size(), expected.size()) << "duplicate rows";

    ASSERT_TRUE((*server)->Stop().ok());
  }
}

}  // namespace
}  // namespace server
}  // namespace erbium
