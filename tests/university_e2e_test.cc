// End-to-end test on the paper's Figure 1 university schema — a second,
// structurally different schema from Figure 4: string keys, a three-part
// weak-entity partial key, an overlapping-capable specialization, and
// relationship attributes. Guards against Figure-4-specific assumptions
// in the mapping and translation layers.

#include <gtest/gtest.h>

#include "api/entity_store.h"
#include "er/ddl_parser.h"
#include "erql/query_engine.h"
#include "mapping/database.h"

namespace erbium {
namespace {

const char* kDdl = R"(
CREATE ENTITY Person (
  id INT KEY, name STRING NOT NULL PII,
  phone STRING MULTIVALUED PII );
CREATE ENTITY Instructor EXTENDS Person ( rank STRING, salary FLOAT )
  SPECIALIZATION (PARTIAL, DISJOINT);
CREATE ENTITY Student EXTENDS Person ( tot_credits INT );
CREATE ENTITY Course ( course_id STRING KEY, title STRING, credits INT );
CREATE WEAK ENTITY Section OWNED BY Course (
  sec_id STRING PARTIAL KEY, semester STRING PARTIAL KEY, year INT );
CREATE RELATIONSHIP advisor
  BETWEEN Instructor (ONE) AND Student (MANY) WITH ( since INT );
CREATE RELATIONSHIP takes BETWEEN Student (MANY) AND Section (MANY)
  WITH ( grade STRING );
)";

Value I(int64_t v) { return Value::Int64(v); }
Value S(const char* s) { return Value::String(s); }

class UniversityTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    ASSERT_TRUE(DdlParser::Execute(kDdl, &schema_).ok());
    MappingSpec spec = MappingSpec::Normalized("normalized");
    if (GetParam() == 1) {
      spec.name = "document";
      spec.default_multi_valued = MultiValuedStorage::kArray;
      spec.hierarchy_overrides["Person"] = HierarchyStorage::kSingleTable;
      spec.weak_overrides["Section"] = WeakEntityStorage::kFoldedArray;
    }
    if (GetParam() == 2) {
      spec.name = "disjoint";
      spec.hierarchy_overrides["Person"] =
          HierarchyStorage::kDisjointTables;
    }
    auto db = MappedDatabase::Create(&schema_, spec);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(db).value();
    Populate();
  }

  void Populate() {
    ASSERT_TRUE(db_->InsertEntity(
                       "Instructor",
                       Value::Struct({{"id", I(1)},
                                      {"name", S("Katz")},
                                      {"phone", Value::Array({S("x")})},
                                      {"rank", S("Professor")},
                                      {"salary", Value::Float64(1.0)}}))
                    .ok());
    for (int64_t id : {2, 3}) {
      ASSERT_TRUE(db_->InsertEntity(
                         "Student",
                         Value::Struct({{"id", I(id)},
                                        {"name", S("Stud")},
                                        {"tot_credits", I(id * 10)}}))
                      .ok());
    }
    ASSERT_TRUE(db_->InsertEntity(
                       "Course", Value::Struct({{"course_id", S("CS-101")},
                                                {"title", S("DB")},
                                                {"credits", I(4)}}))
                    .ok());
    for (const char* semester : {"Fall", "Spring"}) {
      ASSERT_TRUE(db_->InsertEntity(
                         "Section",
                         Value::Struct({{"course_id", S("CS-101")},
                                        {"sec_id", S("1")},
                                        {"semester", S(semester)},
                                        {"year", I(2025)}}))
                      .ok());
    }
    for (int64_t id : {2, 3}) {
      ASSERT_TRUE(db_->InsertRelationship(
                         "advisor", {I(1)}, {I(id)},
                         Value::Struct({{"since", I(2020 + id)}}))
                      .ok());
      ASSERT_TRUE(db_->InsertRelationship(
                         "takes", {I(id)}, {S("CS-101"), S("1"), S("Fall")},
                         Value::Struct({{"grade", S("A")}}))
                      .ok());
    }
  }

  ERSchema schema_;
  std::unique_ptr<MappedDatabase> db_;
};

INSTANTIATE_TEST_SUITE_P(Mappings, UniversityTest, ::testing::Values(0, 1, 2),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return info.param == 0
                                      ? std::string("normalized")
                                      : (info.param == 1
                                             ? std::string("document")
                                             : std::string("disjoint"));
                         });

TEST_P(UniversityTest, AdvisorAggregate) {
  auto result = erql::QueryEngine::Execute(
      db_.get(),
      "SELECT i.name, count(*) AS advisees, min(since) AS first_year "
      "FROM Instructor i JOIN Student s ON advisor");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][1], I(2));
  EXPECT_EQ(result->rows[0][2], I(2022));
}

TEST_P(UniversityTest, CompositeWeakKeyJoin) {
  // Three-part weak key (course_id, sec_id, semester) through both the
  // identifying relationship and the M:N takes relationship.
  auto sections = erql::QueryEngine::Execute(
      db_.get(),
      "SELECT c.title, sec.semester FROM Course c JOIN Section sec ON "
      "Course_Section WHERE sec.year = 2025");
  ASSERT_TRUE(sections.ok()) << sections.status().ToString();
  EXPECT_EQ(sections->rows.size(), 2u);
  auto takers = erql::QueryEngine::Execute(
      db_.get(),
      "SELECT s.id, sec.semester, grade FROM Student s JOIN Section sec "
      "ON takes");
  ASSERT_TRUE(takers.ok()) << takers.status().ToString();
  EXPECT_EQ(takers->rows.size(), 2u);
  for (const Row& row : takers->rows) {
    EXPECT_EQ(row[1], S("Fall"));
    EXPECT_EQ(row[2], S("A"));
  }
}

TEST_P(UniversityTest, StringKeyedPointLookup) {
  auto result = erql::QueryEngine::Execute(
      db_.get(),
      "SELECT title, credits FROM Course WHERE course_id = 'CS-101'");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0], S("DB"));
}

TEST_P(UniversityTest, GovernanceAcrossMappings) {
  EntityStore store(db_.get());
  auto pii = store.PiiAttributes("Instructor");
  ASSERT_TRUE(pii.ok());
  EXPECT_EQ(*pii, (std::vector<std::string>{"name", "phone"}));
  ASSERT_TRUE(store.EraseSubject("Person", {I(2)}).ok());
  EXPECT_FALSE(db_->EntityExists("Student", {I(2)}).value());
  auto advisees = erql::QueryEngine::Execute(
      db_.get(), "SELECT s.id FROM Instructor i JOIN Student s ON advisor");
  ASSERT_TRUE(advisees.ok());
  EXPECT_EQ(advisees->rows.size(), 1u);
}

TEST_P(UniversityTest, OneSideCardinalityEnforced) {
  // A second advisor for student 3 must be rejected (advisor is 1:N).
  ASSERT_TRUE(db_->InsertEntity(
                     "Instructor",
                     Value::Struct({{"id", I(9)},
                                    {"name", S("Second")},
                                    {"rank", S("Assistant")},
                                    {"salary", Value::Float64(2.0)}}))
                  .ok());
  Status st = db_->InsertRelationship("advisor", {I(9)}, {I(3)},
                                      Value::Struct({{"since", I(2026)}}));
  EXPECT_EQ(st.code(), StatusCode::kConstraintViolation) << st.ToString();
}

}  // namespace
}  // namespace erbium
