// Shared Prometheus text-exposition validation for tests: used by the
// exporter conformance tests (telemetry_test.cc) and against live
// scrapes of the server's /metrics endpoint (server_metrics_test.cc).
// The format rules themselves live in obs::PrometheusFormatError so
// the prom_validate CLI (CI smoke job) applies the identical check.
#ifndef ERBIUM_TESTS_PROM_TESTLIB_H_
#define ERBIUM_TESTS_PROM_TESTLIB_H_

#include <gtest/gtest.h>

#include <string>

#include "obs/export.h"

namespace erbium {
namespace obs {

inline void ValidatePrometheusText(const std::string& text) {
  EXPECT_EQ(PrometheusFormatError(text), "");
}

}  // namespace obs
}  // namespace erbium

#endif  // ERBIUM_TESTS_PROM_TESTLIB_H_
