// Unit tests for the multi-relational compressed (factorized)
// representation: storage semantics, join enumeration, side scans, and
// aggregate push-down through the join.

#include <gtest/gtest.h>

#include "factorized/factorized.h"

namespace erbium {
namespace {

FactorizedPair MakePair() {
  return FactorizedPair(
      "test_pair",
      {Column{"l_id", Type::Int64(), false},
       Column{"l_v", Type::Int64(), true}},
      {0},
      {Column{"r_id", Type::Int64(), false},
       Column{"r_v", Type::Int64(), true}},
      {0});
}

Row IntRow(std::initializer_list<int64_t> values) {
  Row row;
  for (int64_t v : values) row.push_back(Value::Int64(v));
  return row;
}

TEST(FactorizedPairTest, InsertConnectLookup) {
  FactorizedPair pair = MakePair();
  ASSERT_TRUE(pair.InsertLeft(IntRow({1, 10})).ok());
  ASSERT_TRUE(pair.InsertLeft(IntRow({2, 20})).ok());
  ASSERT_TRUE(pair.InsertRight(IntRow({7, 70})).ok());
  EXPECT_EQ(pair.left_size(), 2u);
  EXPECT_EQ(pair.right_size(), 1u);
  // Duplicate keys rejected.
  EXPECT_EQ(pair.InsertLeft(IntRow({1, 99})).status().code(),
            StatusCode::kConstraintViolation);
  ASSERT_TRUE(pair.Connect({Value::Int64(1)}, {Value::Int64(7)}).ok());
  EXPECT_EQ(pair.edge_count(), 1u);
  EXPECT_EQ(pair.Connect({Value::Int64(1)}, {Value::Int64(7)}).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(pair.Connect({Value::Int64(9)}, {Value::Int64(7)}).code(),
            StatusCode::kNotFound);
  EXPECT_GE(pair.FindLeft({Value::Int64(2)}), 0);
  EXPECT_LT(pair.FindRight({Value::Int64(2)}), 0);
}

TEST(FactorizedPairTest, JoinScanEnumeratesEdges) {
  FactorizedPair pair = MakePair();
  ASSERT_TRUE(pair.InsertLeft(IntRow({1, 10})).ok());
  ASSERT_TRUE(pair.InsertLeft(IntRow({2, 20})).ok());
  ASSERT_TRUE(pair.InsertRight(IntRow({7, 70})).ok());
  ASSERT_TRUE(pair.InsertRight(IntRow({8, 80})).ok());
  ASSERT_TRUE(pair.Connect({Value::Int64(1)}, {Value::Int64(7)}).ok());
  ASSERT_TRUE(pair.Connect({Value::Int64(1)}, {Value::Int64(8)}).ok());

  FactorizedJoinScan inner(&pair);
  auto rows = CollectRows(&inner);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);  // left 2 has no partner
  for (const Row& row : *rows) {
    ASSERT_EQ(row.size(), 4u);
    EXPECT_EQ(row[0], Value::Int64(1));
  }

  FactorizedJoinScan outer(&pair, /*left_outer=*/true);
  rows = CollectRows(&outer);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 3u);  // lone left emitted with nulls
}

TEST(FactorizedPairTest, SideScansAreDeduplicated) {
  FactorizedPair pair = MakePair();
  ASSERT_TRUE(pair.InsertLeft(IntRow({1, 10})).ok());
  ASSERT_TRUE(pair.InsertRight(IntRow({7, 70})).ok());
  ASSERT_TRUE(pair.InsertRight(IntRow({8, 80})).ok());
  ASSERT_TRUE(pair.Connect({Value::Int64(1)}, {Value::Int64(7)}).ok());
  ASSERT_TRUE(pair.Connect({Value::Int64(1)}, {Value::Int64(8)}).ok());
  // Left row joined twice still stored (and scanned) once.
  FactorizedSideScan left(&pair, /*left_side=*/true);
  auto rows = CollectRows(&left);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
  FactorizedSideScan right(&pair, /*left_side=*/false);
  rows = CollectRows(&right);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);
}

TEST(FactorizedPairTest, EraseCleansEdges) {
  FactorizedPair pair = MakePair();
  ASSERT_TRUE(pair.InsertLeft(IntRow({1, 10})).ok());
  ASSERT_TRUE(pair.InsertRight(IntRow({7, 70})).ok());
  ASSERT_TRUE(pair.Connect({Value::Int64(1)}, {Value::Int64(7)}).ok());
  ASSERT_TRUE(pair.EraseRight({Value::Int64(7)}).ok());
  EXPECT_EQ(pair.edge_count(), 0u);
  EXPECT_LT(pair.FindRight({Value::Int64(7)}), 0);
  FactorizedJoinScan outer(&pair, true);
  auto rows = CollectRows(&outer);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_TRUE((*rows)[0][2].is_null());
}

TEST(FactorizedPairTest, DisconnectAndUpdate) {
  FactorizedPair pair = MakePair();
  ASSERT_TRUE(pair.InsertLeft(IntRow({1, 10})).ok());
  ASSERT_TRUE(pair.InsertRight(IntRow({7, 70})).ok());
  ASSERT_TRUE(pair.Connect({Value::Int64(1)}, {Value::Int64(7)}).ok());
  ASSERT_TRUE(pair.Disconnect({Value::Int64(1)}, {Value::Int64(7)}).ok());
  EXPECT_EQ(pair.Disconnect({Value::Int64(1)}, {Value::Int64(7)}).code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(pair.UpdateLeft({Value::Int64(1)}, IntRow({1, 99})).ok());
  EXPECT_EQ(pair.left_row(0)[1], Value::Int64(99));
  // Key changes through update are rejected.
  EXPECT_FALSE(pair.UpdateLeft({Value::Int64(1)}, IntRow({5, 99})).ok());
}

TEST(FactorizedPairTest, GroupAggregatePushdown) {
  // Three right rows attached to left 1, none to left 2: sum/count per
  // left row without materializing the join.
  FactorizedPair pair = MakePair();
  ASSERT_TRUE(pair.InsertLeft(IntRow({1, 10})).ok());
  ASSERT_TRUE(pair.InsertLeft(IntRow({2, 20})).ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(pair.InsertRight(IntRow({i + 100, (i + 1) * 5})).ok());
    ASSERT_TRUE(
        pair.Connect({Value::Int64(1)}, {Value::Int64(i + 100)}).ok());
  }
  std::vector<AggregateSpec> aggs;
  aggs.push_back({AggKind::kCountStar, nullptr, "n", false});
  aggs.push_back({AggKind::kSum, MakeColumnRef(1, "r_v"), "total", false});
  FactorizedGroupAggregate agg(&pair, std::move(aggs));
  auto rows = CollectRows(&agg);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  for (const Row& row : *rows) {
    if (row[0] == Value::Int64(1)) {
      EXPECT_EQ(row[2], Value::Int64(3));
      EXPECT_EQ(row[3], Value::Int64(30));
    } else {
      EXPECT_EQ(row[2], Value::Int64(0));
      EXPECT_TRUE(row[3].is_null());
    }
  }
}

TEST(FactorizedPairTest, CompactnessVsMaterializedJoin) {
  // A left row with many partners stores its payload once; a
  // materialized join would duplicate it per edge. The byte accounting
  // should reflect that (the paper's argument for this format).
  FactorizedPair pair(
      "wide",
      {Column{"l_id", Type::Int64(), false},
       Column{"payload", Type::String(), true}},
      {0},
      {Column{"r_id", Type::Int64(), false}},
      {0});
  std::string big(1000, 'x');
  ASSERT_TRUE(
      pair.InsertLeft({Value::Int64(1), Value::String(big)}).ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(pair.InsertRight({Value::Int64(i)}).ok());
    ASSERT_TRUE(pair.Connect({Value::Int64(1)}, {Value::Int64(i)}).ok());
  }
  // Factorized: ~1KB payload + 50 edges. Materialized: ~50KB.
  EXPECT_LT(pair.ApproximateDataBytes(), 5000u);
}

}  // namespace
}  // namespace erbium
