// Unit tests for the E/R model core: schema construction/validation,
// DDL parsing (Figure 1(ii)), hierarchy helpers, and the E/R graph
// (Figure 2 node/edge view).

#include <gtest/gtest.h>

#include "er/ddl_parser.h"
#include "er/er_graph.h"
#include "er/er_schema.h"

namespace erbium {
namespace {

/// The paper's Figure 1 university schema (adapted from Silberschatz et
/// al.): Person with Instructor/Student subclasses, weak entity Section
/// of Course, and advisor/takes/teaches relationships.
const char* kUniversityDdl = R"(
CREATE ENTITY Person (
  id INT KEY,
  name STRING NOT NULL PII,
  address STRUCT(street STRING, city STRING, zip STRING) PII,
  phone STRING MULTIVALUED PII DESCRIPTION 'contact phone numbers'
) DESCRIPTION 'anyone affiliated with the university';
CREATE ENTITY Instructor EXTENDS Person ( rank STRING, salary FLOAT PII )
  SPECIALIZATION (PARTIAL, OVERLAPPING);
CREATE ENTITY Student EXTENDS Person ( tot_credits INT );
CREATE ENTITY Course ( course_id STRING KEY, title STRING, credits INT );
CREATE WEAK ENTITY Section OWNED BY Course (
  sec_id STRING PARTIAL KEY, semester STRING PARTIAL KEY, year INT PARTIAL KEY
);
CREATE RELATIONSHIP advisor
  BETWEEN Instructor (ONE) AND Student (MANY) WITH ( since INT );
CREATE RELATIONSHIP takes BETWEEN Student (MANY) AND Section (MANY)
  WITH ( grade STRING );
CREATE RELATIONSHIP teaches BETWEEN Instructor (MANY) AND Section (MANY);
)";

ERSchema University() {
  ERSchema schema;
  Status st = DdlParser::Execute(kUniversityDdl, &schema);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return schema;
}

TEST(DdlParserTest, ParsesFigure1Schema) {
  ERSchema schema = University();
  EXPECT_EQ(schema.EntitySetNames().size(), 5u);
  EXPECT_EQ(schema.RelationshipSetNames().size(), 3u);

  const EntitySetDef* person = schema.FindEntitySet("Person");
  ASSERT_NE(person, nullptr);
  EXPECT_EQ(person->key, std::vector<std::string>{"id"});
  EXPECT_EQ(person->description, "anyone affiliated with the university");
  const AttributeDef* phone = FindAttribute(person->attributes, "phone");
  ASSERT_NE(phone, nullptr);
  EXPECT_TRUE(phone->multi_valued);
  EXPECT_TRUE(phone->pii);
  EXPECT_EQ(phone->description, "contact phone numbers");
  const AttributeDef* address = FindAttribute(person->attributes, "address");
  ASSERT_NE(address, nullptr);
  EXPECT_TRUE(address->composite());
  EXPECT_EQ(address->type->fields().size(), 3u);

  // Specialization annotation lands on the parent.
  EXPECT_FALSE(person->specialization.disjoint);
  EXPECT_FALSE(person->specialization.total);

  const EntitySetDef* section = schema.FindEntitySet("Section");
  ASSERT_NE(section, nullptr);
  EXPECT_TRUE(section->weak);
  EXPECT_EQ(section->owner, "Course");
  EXPECT_EQ(section->partial_key.size(), 3u);
  EXPECT_EQ(section->identifying_relationship, "Course_Section");

  const RelationshipSetDef* advisor = schema.FindRelationshipSet("advisor");
  ASSERT_NE(advisor, nullptr);
  EXPECT_EQ(advisor->left.cardinality, Cardinality::kOne);
  EXPECT_EQ(advisor->right.cardinality, Cardinality::kMany);
  EXPECT_EQ(advisor->many_side().entity, "Student");
  EXPECT_EQ(advisor->attributes.size(), 1u);
}

TEST(DdlParserTest, RejectsMalformedDdl) {
  ERSchema schema;
  EXPECT_FALSE(DdlParser::Execute("CREATE TABLE x (a int);", &schema).ok());
  EXPECT_FALSE(
      DdlParser::Execute("CREATE ENTITY E ( a int", &schema).ok());
  // Missing key on a strong entity fails validation.
  ERSchema no_key;
  Status st = DdlParser::Execute("CREATE ENTITY E ( a INT );", &no_key);
  EXPECT_EQ(st.code(), StatusCode::kAnalysisError);
  // SPECIALIZATION without EXTENDS is rejected.
  ERSchema bad_spec;
  EXPECT_FALSE(DdlParser::Execute(
                   "CREATE ENTITY E ( a INT KEY ) "
                   "SPECIALIZATION (TOTAL, DISJOINT);",
                   &bad_spec)
                   .ok());
}

TEST(ERSchemaTest, HierarchyHelpers) {
  ERSchema schema = University();
  EXPECT_EQ(*schema.HierarchyRoot("Student"), "Person");
  EXPECT_EQ(*schema.HierarchyRoot("Person"), "Person");
  auto subclasses = schema.DirectSubclasses("Person");
  EXPECT_EQ(subclasses.size(), 2u);
  EXPECT_TRUE(schema.IsSelfOrDescendant("Student", "Person"));
  EXPECT_FALSE(schema.IsSelfOrDescendant("Person", "Student"));
  auto chain = schema.AncestryChain("Instructor");
  ASSERT_TRUE(chain.ok());
  EXPECT_EQ(*chain, (std::vector<std::string>{"Person", "Instructor"}));
  auto attrs = schema.AllAttributes("Student");
  ASSERT_TRUE(attrs.ok());
  EXPECT_NE(FindAttribute(*attrs, "name"), nullptr);       // inherited
  EXPECT_NE(FindAttribute(*attrs, "tot_credits"), nullptr);  // own
  EXPECT_EQ(FindAttribute(*attrs, "rank"), nullptr);  // sibling's attr
}

TEST(ERSchemaTest, FullKeys) {
  ERSchema schema = University();
  EXPECT_EQ(*schema.FullKey("Person"), std::vector<std::string>{"id"});
  EXPECT_EQ(*schema.FullKey("Student"), std::vector<std::string>{"id"});
  EXPECT_EQ(*schema.FullKey("Section"),
            (std::vector<std::string>{"course_id", "sec_id", "semester",
                                      "year"}));
}

TEST(ERSchemaTest, ValidationCatchesStructuralErrors) {
  // Subclass declaring a key.
  {
    ERSchema schema = University();
    EntitySetDef bad;
    bad.name = "Grad";
    bad.parent = "Student";
    bad.key = {"gid"};
    bad.attributes = {AttributeDef{"gid", Type::Int64(), false, false, false,
                                   ""}};
    ASSERT_TRUE(schema.AddEntitySet(bad).ok());
    EXPECT_FALSE(schema.Validate().ok());
  }
  // Attribute shadowing along the hierarchy.
  {
    ERSchema schema = University();
    EntitySetDef bad;
    bad.name = "Grad";
    bad.parent = "Student";
    bad.attributes = {AttributeDef{"name", Type::String(), false, true,
                                   false, ""}};
    ASSERT_TRUE(schema.AddEntitySet(bad).ok());
    EXPECT_FALSE(schema.Validate().ok());
  }
  // Relationship referencing an unknown entity set.
  {
    ERSchema schema = University();
    RelationshipSetDef bad;
    bad.name = "broken";
    bad.left = {"Person", "Person", Cardinality::kMany, false};
    bad.right = {"Nowhere", "Nowhere", Cardinality::kMany, false};
    ASSERT_TRUE(schema.AddRelationshipSet(bad).ok());
    EXPECT_FALSE(schema.Validate().ok());
  }
}

TEST(ERSchemaTest, DropRefusesDanglingReferences) {
  ERSchema schema = University();
  EXPECT_FALSE(schema.DropEntitySet("Person").ok());   // has subclasses
  EXPECT_FALSE(schema.DropEntitySet("Course").ok());   // owns Section
  EXPECT_FALSE(schema.DropEntitySet("Student").ok());  // in relationships
  ASSERT_TRUE(schema.DropRelationshipSet("advisor").ok());
  ASSERT_TRUE(schema.DropRelationshipSet("takes").ok());
  EXPECT_TRUE(schema.DropEntitySet("Student").ok());
}

TEST(ERGraphTest, NodesAndEdgesMatchFigure2Shape) {
  ERSchema schema = University();
  auto graph = ERGraph::Build(schema);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  // 5 entities + 3 relationships + attribute nodes.
  size_t attr_count = 0;
  for (const ERNode& node : graph->nodes()) {
    if (node.kind == ERNodeKind::kAttribute) ++attr_count;
  }
  // Person(4) + Instructor(2) + Student(1) + Course(3) + Section(3) +
  // advisor(1) + takes(1) = 15.
  EXPECT_EQ(attr_count, 15u);
  EXPECT_EQ(graph->nodes().size(), 5 + 3 + attr_count);

  int person = graph->FindNode("Person");
  int student = graph->FindNode("Student");
  int advisor = graph->FindNode("advisor");
  ASSERT_GE(person, 0);
  ASSERT_GE(student, 0);
  ASSERT_GE(advisor, 0);
  EXPECT_GE(graph->FindNode("Person.name"), 0);
  EXPECT_EQ(graph->FindNode("Person.nope"), -1);

  // Connectivity probes.
  EXPECT_TRUE(graph->IsConnected({person, student}));  // isa edge
  EXPECT_TRUE(graph->IsConnected({student, advisor}));  // participates
  EXPECT_FALSE(graph->IsConnected(
      {graph->FindNode("Person.name"), graph->FindNode("Course.title")}));
  EXPECT_FALSE(graph->IsConnected({}));
  EXPECT_TRUE(graph->IsConnected({person}));

  // Weak entity connects to its owner.
  EXPECT_TRUE(graph->IsConnected(
      {graph->FindNode("Section"), graph->FindNode("Course")}));

  std::string dot = graph->ToDot();
  EXPECT_NE(dot.find("shape=diamond"), std::string::npos);
}

}  // namespace
}  // namespace erbium
