// Tests for the always-on query telemetry (obs/telemetry.h) and the
// exporters (obs/export.h): ring-buffer capacity and ordering, slow-query
// capture, concurrent recording under load, Prometheus text-format
// conformance, Chrome trace structure, and the SHOW METRICS / SHOW
// QUERIES / TRACE statements end-to-end through the query engine.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <regex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "erql/query_engine.h"
#include "mini_json.h"
#include "obs/export.h"
#include "prom_testlib.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "workload/figure4.h"

namespace erbium {
namespace obs {
namespace {

QueryRecord MakeRecord(const std::string& text, uint64_t wall_ns = 1000) {
  QueryRecord record;
  record.text = text;
  record.kind = "select";
  record.mapping = "m1";
  record.wall_ns = wall_ns;
  record.cpu_ns = wall_ns;
  record.rows_out = 1;
  return record;
}

TEST(TelemetryTest, RecordsComeBackNewestFirst) {
  MetricsRegistry registry;
  QueryTelemetry telemetry(/*capacity=*/64, /*slow_capacity=*/8, &registry);
  for (int i = 0; i < 10; ++i) {
    telemetry.Record(MakeRecord("q" + std::to_string(i)));
  }
  std::vector<QueryRecord> recent = telemetry.Recent();
  ASSERT_EQ(recent.size(), 10u);
  EXPECT_EQ(recent.front().text, "q9");
  EXPECT_EQ(recent.back().text, "q0");
  for (size_t i = 1; i < recent.size(); ++i) {
    EXPECT_LT(recent[i].seq, recent[i - 1].seq);
  }
  EXPECT_EQ(telemetry.Recent(3).size(), 3u);
  EXPECT_EQ(telemetry.Recent(3).front().text, "q9");
}

TEST(TelemetryTest, RingEvictsOldestOnceFull) {
  MetricsRegistry registry;
  QueryTelemetry telemetry(/*capacity=*/16, /*slow_capacity=*/4, &registry);
  ASSERT_EQ(telemetry.capacity(), 16u);
  for (int i = 0; i < 100; ++i) {
    telemetry.Record(MakeRecord("q" + std::to_string(i)));
  }
  std::vector<QueryRecord> recent = telemetry.Recent();
  ASSERT_EQ(recent.size(), 16u);  // capped at capacity
  EXPECT_EQ(telemetry.total_recorded(), 100u);  // but everything counted
  // The survivors are exactly the 16 newest.
  EXPECT_EQ(recent.front().text, "q99");
  EXPECT_EQ(recent.back().text, "q84");
}

TEST(TelemetryTest, RecordNormalizesAndTruncates) {
  MetricsRegistry registry;
  QueryTelemetry telemetry(16, 4, &registry);
  QueryRecord record;
  record.text = std::string(QueryTelemetry::kMaxTextBytes + 500, 'x');
  telemetry.Record(std::move(record));
  QueryRecord stored = telemetry.Recent(1).front();
  EXPECT_EQ(stored.text.size(), QueryTelemetry::kMaxTextBytes + 3);  // "..."
  EXPECT_EQ(stored.mapping, "none");
  EXPECT_EQ(stored.kind, "unknown");
}

TEST(TelemetryTest, SlowQueriesCaptureSpanTrees) {
  MetricsRegistry registry;
  QueryTelemetry telemetry(64, /*slow_capacity=*/2, &registry);
  telemetry.set_slow_threshold_ns(1'000'000);  // 1 ms

  telemetry.Record(MakeRecord("fast", /*wall_ns=*/500));
  EXPECT_TRUE(telemetry.RecentSlow().empty());

  QueryStats stats;
  SpanRecord span;
  span.name = "Scan";
  span.stats.rows_out = 42;
  stats.spans.push_back(span);
  telemetry.Record(MakeRecord("slow1", 2'000'000), &stats);
  telemetry.Record(MakeRecord("slow2", 3'000'000), nullptr);
  telemetry.Record(MakeRecord("slow3", 4'000'000), &stats);

  std::vector<SlowQueryRecord> slow = telemetry.RecentSlow();
  ASSERT_EQ(slow.size(), 2u);  // slow ring capacity evicted slow1
  EXPECT_EQ(slow[0].record.text, "slow3");
  EXPECT_EQ(slow[1].record.text, "slow2");
  EXPECT_EQ(slow[0].stats.spans.size(), 1u);
  EXPECT_EQ(slow[0].stats.spans[0].stats.rows_out, 42u);
  EXPECT_TRUE(slow[1].stats.spans.empty());  // recorded without stats
  EXPECT_EQ(registry.CounterValue("erql.slow_queries"), 3u);
}

TEST(TelemetryTest, RecordFeedsRegistryMetrics) {
  MetricsRegistry registry;
  QueryTelemetry telemetry(64, 8, &registry);
  telemetry.set_slow_threshold_ns(UINT64_MAX);
  telemetry.Record(MakeRecord("ok"));
  QueryRecord failed = MakeRecord("bad");
  failed.ok = false;
  failed.error = "parse error";
  failed.kind = "invalid";
  telemetry.Record(std::move(failed));

  EXPECT_EQ(registry.CounterValue("erql.queries"), 2u);
  EXPECT_EQ(registry.CounterValue("erql.query_errors"), 1u);
  RegistrySnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.histograms.at("erql.query.latency_ms.mapping.m1").count, 2u);
  EXPECT_EQ(snap.histograms.at("erql.query.latency_ms.kind.select").count, 1u);
  EXPECT_EQ(snap.histograms.at("erql.query.latency_ms.kind.invalid").count,
            1u);
}

TEST(TelemetryTest, LifecycleScopeStampsQueueWaitAndReportsSeq) {
  MetricsRegistry registry;
  QueryTelemetry telemetry(16, 4, &registry);
  telemetry.set_slow_threshold_ns(UINT64_MAX);

  // Without a scope the record carries no transport lifecycle.
  telemetry.Record(MakeRecord("local"));
  EXPECT_EQ(telemetry.Recent(1).front().queue_wait_ns, 0u);

  uint64_t seq = 0;
  {
    ScopedStatementLifecycle lifecycle(/*queue_wait_ns=*/12'345);
    telemetry.Record(MakeRecord("remote"));
    seq = lifecycle.recorded_seq();
  }
  ASSERT_NE(seq, 0u);
  QueryRecord stored = telemetry.Recent(1).front();
  EXPECT_EQ(stored.seq, seq);
  EXPECT_EQ(stored.queue_wait_ns, 12'345u);
  EXPECT_EQ(stored.write_stall_ns, 0u);  // not annotated yet

  telemetry.AnnotateWriteStall(seq, /*write_stall_ns=*/777,
                               /*server_total_ns=*/99'999);
  stored = telemetry.Recent(1).front();
  EXPECT_EQ(stored.write_stall_ns, 777u);
  EXPECT_EQ(stored.server_total_ns, 99'999u);
  // Unknown (evicted) seqs are ignored, not invented.
  telemetry.AnnotateWriteStall(seq + 1000, 1, 1);
}

TEST(TelemetryTest, SlowCaptureGrowsServerSpans) {
  MetricsRegistry registry;
  QueryTelemetry telemetry(16, 4, &registry);
  telemetry.set_slow_threshold_ns(0);  // everything is slow

  uint64_t seq = 0;
  QueryStats stats;
  SpanRecord scan;
  scan.name = "Scan";
  stats.spans.push_back(scan);
  {
    ScopedStatementLifecycle lifecycle(5'000);
    telemetry.Record(MakeRecord("remote slow"), &stats);
    seq = lifecycle.recorded_seq();
  }
  telemetry.AnnotateWriteStall(seq, 2'000, 50'000);

  std::vector<SlowQueryRecord> slow = telemetry.RecentSlow(1);
  ASSERT_EQ(slow.size(), 1u);
  // queue-wait span prepended at capture, write-stall appended by the
  // annotation — the capture renders as a transport-to-engine timeline.
  ASSERT_EQ(slow[0].stats.spans.size(), 3u);
  EXPECT_EQ(slow[0].stats.spans.front().name, "server.queue_wait");
  EXPECT_EQ(slow[0].stats.spans.front().stats.wall_ns, 5'000u);
  EXPECT_EQ(slow[0].stats.spans[1].name, "Scan");
  EXPECT_EQ(slow[0].stats.spans.back().name, "server.write_stall");
  EXPECT_EQ(slow[0].stats.spans.back().stats.wall_ns, 2'000u);
}

TEST(TelemetryTest, ClearEmptiesRingsButKeepsNumbering) {
  MetricsRegistry registry;
  QueryTelemetry telemetry(16, 4, &registry);
  telemetry.set_slow_threshold_ns(0);  // everything is slow
  telemetry.Record(MakeRecord("a"));
  uint64_t seq_before = telemetry.Record(MakeRecord("b"));
  telemetry.Clear();
  EXPECT_TRUE(telemetry.Recent().empty());
  EXPECT_TRUE(telemetry.RecentSlow().empty());
  EXPECT_GT(telemetry.Record(MakeRecord("c")), seq_before);
}

// The concurrency contract, exercised hard enough for TSan to have
// something to chew on: 8 writers hammering Record() while a reader
// polls Recent(). Sequence ids must stay unique, the ring must never
// exceed capacity, and the histograms must account for every record.
TEST(TelemetryTest, ConcurrentRecordingKeepsInvariants) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  MetricsRegistry registry;
  QueryTelemetry telemetry(/*capacity=*/128, /*slow_capacity=*/16, &registry);
  telemetry.set_slow_threshold_ns(UINT64_MAX);

  std::vector<std::set<uint64_t>> seqs(kThreads);
  std::atomic<bool> done{false};
  std::thread reader([&telemetry, &done] {
    while (!done.load(std::memory_order_relaxed)) {
      std::vector<QueryRecord> recent = telemetry.Recent();
      EXPECT_LE(recent.size(), telemetry.capacity());
      for (size_t i = 1; i < recent.size(); ++i) {
        EXPECT_LT(recent[i].seq, recent[i - 1].seq);
      }
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&telemetry, &seqs, t] {
      for (int i = 0; i < kPerThread; ++i) {
        QueryRecord record = MakeRecord("t" + std::to_string(t));
        record.mapping = "m" + std::to_string(t % 3);
        seqs[t].insert(telemetry.Record(std::move(record)));
      }
    });
  }
  for (std::thread& w : writers) w.join();
  done.store(true, std::memory_order_relaxed);
  reader.join();

  constexpr uint64_t kTotal = uint64_t{kThreads} * kPerThread;
  std::set<uint64_t> all;
  for (const std::set<uint64_t>& s : seqs) all.insert(s.begin(), s.end());
  EXPECT_EQ(all.size(), kTotal);  // no seq handed out twice
  EXPECT_EQ(telemetry.total_recorded(), kTotal);
  EXPECT_EQ(telemetry.Recent().size(), telemetry.capacity());
  EXPECT_EQ(registry.CounterValue("erql.queries"), kTotal);
  // Histogram counts across the three mappings account for every record.
  RegistrySnapshot snap = registry.Snapshot();
  uint64_t histogram_total = 0;
  for (int m = 0; m < 3; ++m) {
    histogram_total +=
        snap.histograms.at("erql.query.latency_ms.mapping.m" + std::to_string(m))
            .count;
  }
  EXPECT_EQ(histogram_total, kTotal);
}

// ---------------------------------------------------------------------
// Prometheus exporter.

// ValidatePrometheusText lives in prom_testlib.h so the live-scrape
// tests (server_metrics_test.cc) run the exact same validator.

TEST(PrometheusExportTest, NameSanitization) {
  EXPECT_EQ(PrometheusName("erql.queries"), "erbium_erql_queries");
  EXPECT_EQ(PrometheusName("weird-name with spaces"),
            "erbium_weird_name_with_spaces");
  EXPECT_EQ(PrometheusName("a:b_c9"), "erbium_a:b_c9");
}

TEST(PrometheusExportTest, FormatConformance) {
  MetricsRegistry registry;
  registry.counter("erql.queries").Increment(7);
  registry.gauge("pool.threads").Set(4);
  Histogram hist =
      registry.histogram("erql.query.latency_ms.mapping.m1", {1.0, 10.0});
  hist.Observe(0.5);
  hist.Observe(5.0);
  hist.Observe(500.0);
  std::string text = ExportPrometheusText(registry);
  ValidatePrometheusText(text);

  EXPECT_NE(text.find("# TYPE erbium_erql_queries counter"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("erbium_erql_queries 7"), std::string::npos) << text;
  EXPECT_NE(text.find("# TYPE erbium_pool_threads gauge"), std::string::npos);
  EXPECT_NE(text.find("erbium_pool_threads 4"), std::string::npos);

  const std::string h = "erbium_erql_query_latency_ms_mapping_m1";
  EXPECT_NE(text.find("# TYPE " + h + " histogram"), std::string::npos);
  // Buckets are cumulative; +Inf equals the count.
  EXPECT_NE(text.find(h + "_bucket{le=\"1\"} 1"), std::string::npos) << text;
  EXPECT_NE(text.find(h + "_bucket{le=\"10\"} 2"), std::string::npos) << text;
  EXPECT_NE(text.find(h + "_bucket{le=\"+Inf\"} 3"), std::string::npos)
      << text;
  EXPECT_NE(text.find(h + "_count 3"), std::string::npos) << text;
  EXPECT_NE(text.find(h + "_sum 505.5"), std::string::npos) << text;
}

TEST(PrometheusExportTest, GlobalOverloadCoversLiveRegistry) {
  MetricsRegistry::Global().counter("telemetry_test.prom").Increment();
  ValidatePrometheusText(ExportPrometheusText());
}

// ---------------------------------------------------------------------
// Chrome trace exporter.

TEST(ChromeTraceTest, StructurallyValidAndNested) {
  QueryStats stats;
  auto add = [&stats](const char* name, int depth, uint64_t wall_us) {
    SpanRecord span;
    span.name = name;
    span.depth = depth;
    span.stats.wall_ns = wall_us * 1000;
    span.stats.rows_out = wall_us;
    stats.spans.push_back(std::move(span));
  };
  add("Root", 0, 100);
  add("ChildA", 1, 60);
  add("Grandchild", 2, 50);
  add("ChildB", 1, 30);
  stats.total_wall_ns = 100 * 1000;

  std::string json = ExportChromeTrace(stats, "SELECT \"quoted\" query");
  testjson::Node root;
  std::string error;
  ASSERT_TRUE(testjson::ParseJson(json, &root, &error)) << error << "\n"
                                                        << json;
  const testjson::Node* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->elements.size(), stats.spans.size());

  struct Placed {
    double ts, dur;
    int tid;
  };
  std::vector<Placed> placed;
  for (size_t i = 0; i < events->elements.size(); ++i) {
    const testjson::Node& e = events->elements[i];
    EXPECT_EQ(e.Find("ph")->str, "X");
    EXPECT_EQ(e.Find("name")->str, stats.spans[i].name);
    EXPECT_EQ(e.Find("tid")->number, stats.spans[i].depth);
    placed.push_back(Placed{e.Find("ts")->number, e.Find("dur")->number,
                            static_cast<int>(e.Find("tid")->number)});
  }
  // Children nest inside their parent; the sibling follows its sibling.
  EXPECT_EQ(placed[0].ts, 0.0);
  EXPECT_EQ(placed[0].dur, 100.0);
  EXPECT_EQ(placed[1].ts, 0.0);   // ChildA starts with Root
  EXPECT_EQ(placed[2].ts, 0.0);   // Grandchild starts with ChildA
  EXPECT_EQ(placed[3].ts, 60.0);  // ChildB after ChildA
  EXPECT_LE(placed[3].ts + placed[3].dur, placed[0].ts + placed[0].dur);

  const testjson::Node* other = root.Find("otherData");
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->Find("query")->str, "SELECT \"quoted\" query");
}

TEST(ChromeTraceTest, ServerLifecycleSpansRenderAsSiblings) {
  // A slow capture carries server.queue_wait (prepended at Record) and
  // server.write_stall (appended by AnnotateWriteStall) as depth-0
  // siblings around the plan spans. The Chrome-trace export must keep
  // all three on the same track, laid out sequentially — the capture
  // reads as a transport-to-engine-to-transport timeline.
  MetricsRegistry registry;
  QueryTelemetry telemetry(16, 4, &registry);
  telemetry.set_slow_threshold_ns(0);  // everything is slow

  QueryStats stats;
  SpanRecord scan;
  scan.name = "Scan";
  scan.stats.wall_ns = 40'000;
  stats.spans.push_back(scan);
  stats.total_wall_ns = 40'000;
  uint64_t seq = 0;
  {
    ScopedStatementLifecycle lifecycle(5'000);
    telemetry.Record(MakeRecord("lifecycle trace"), &stats);
    seq = lifecycle.recorded_seq();
  }
  telemetry.AnnotateWriteStall(seq, /*write_stall_ns=*/2'000,
                               /*server_total_ns=*/50'000);

  std::vector<SlowQueryRecord> slow = telemetry.RecentSlow(1);
  ASSERT_EQ(slow.size(), 1u);
  std::string json = ExportChromeTrace(slow[0].stats, slow[0].record.text);

  testjson::Node root;
  std::string error;
  ASSERT_TRUE(testjson::ParseJson(json, &root, &error)) << error << "\n"
                                                        << json;
  const testjson::Node* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->elements.size(), 3u);

  const testjson::Node& wait = events->elements[0];
  const testjson::Node& scan_event = events->elements[1];
  const testjson::Node& stall = events->elements[2];
  EXPECT_EQ(wait.Find("name")->str, "server.queue_wait");
  EXPECT_EQ(scan_event.Find("name")->str, "Scan");
  EXPECT_EQ(stall.Find("name")->str, "server.write_stall");
  // Siblings: all three render on the depth-0 track.
  EXPECT_EQ(wait.Find("tid")->number, 0.0);
  EXPECT_EQ(scan_event.Find("tid")->number, 0.0);
  EXPECT_EQ(stall.Find("tid")->number, 0.0);
  // Sequential layout in microseconds: wait [0,5), scan [5,45),
  // stall starting where the scan ends.
  EXPECT_EQ(wait.Find("ts")->number, 0.0);
  EXPECT_EQ(wait.Find("dur")->number, 5.0);
  EXPECT_EQ(scan_event.Find("ts")->number,
            wait.Find("ts")->number + wait.Find("dur")->number);
  EXPECT_EQ(stall.Find("ts")->number,
            scan_event.Find("ts")->number + scan_event.Find("dur")->number);
  EXPECT_EQ(stall.Find("dur")->number, 2.0);
  EXPECT_EQ(root.Find("otherData")->Find("query")->str, "lifecycle trace");
}

TEST(ChromeTraceTest, ZeroDurationSpansStillValid) {
  // Outside an analyze window all wall times are zero; the trace must
  // still parse and keep one event per span.
  QueryStats stats;
  for (int depth : {0, 1, 1}) {
    SpanRecord span;
    span.name = "Op";
    span.depth = depth;
    stats.spans.push_back(std::move(span));
  }
  std::string json = ExportChromeTrace(stats);
  testjson::Node root;
  std::string error;
  ASSERT_TRUE(testjson::ParseJson(json, &root, &error)) << error;
  EXPECT_EQ(root.Find("traceEvents")->elements.size(), 3u);
}

// ---------------------------------------------------------------------
// End-to-end: the SHOW / TRACE statements through the query engine on a
// small figure-4 database. These share the process-wide telemetry ring,
// so assertions are phrased against records this test inserted.

class TelemetryE2ETest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Figure4Config config;
    config.num_r = 200;
    config.num_s = 60;
    auto db = MakeFigure4Database(erbium::Figure4M2(), config, &schema_);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = db->release();
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
    schema_.reset();
  }

  erql::QueryResult Run(const std::string& text) {
    auto result = erql::QueryEngine::Execute(db_, text);
    EXPECT_TRUE(result.ok()) << text << ": " << result.status().ToString();
    return result.ok() ? std::move(result).value() : erql::QueryResult{};
  }

  static std::shared_ptr<ERSchema> schema_;
  static MappedDatabase* db_;
};

std::shared_ptr<ERSchema> TelemetryE2ETest::schema_;
MappedDatabase* TelemetryE2ETest::db_ = nullptr;

TEST_F(TelemetryE2ETest, StatementKindsLandInQueryLog) {
  Run("SELECT r_id, r_a1 FROM R");
  Run("EXPLAIN ANALYZE SELECT r_id FROM R");
  auto bad = erql::QueryEngine::Execute(db_, "SELECT FROM WHERE");
  EXPECT_FALSE(bad.ok());

  std::vector<QueryRecord> recent = QueryTelemetry::Global().Recent(10);
  auto find = [&recent](const std::string& text) -> const QueryRecord* {
    for (const QueryRecord& r : recent) {
      if (r.text == text) return &r;
    }
    return nullptr;
  };
  const QueryRecord* select = find("SELECT r_id, r_a1 FROM R");
  ASSERT_NE(select, nullptr);
  EXPECT_EQ(select->kind, "select");
  EXPECT_EQ(select->mapping, "M2");
  EXPECT_TRUE(select->ok);
  EXPECT_EQ(select->rows_out, 200u);
  EXPECT_GT(select->wall_ns, 0u);

  const QueryRecord* analyze = find("EXPLAIN ANALYZE SELECT r_id FROM R");
  ASSERT_NE(analyze, nullptr);
  EXPECT_EQ(analyze->kind, "explain_analyze");

  const QueryRecord* invalid = find("SELECT FROM WHERE");
  ASSERT_NE(invalid, nullptr);
  EXPECT_EQ(invalid->kind, "invalid");
  EXPECT_FALSE(invalid->ok);
  EXPECT_FALSE(invalid->error.empty());
}

TEST_F(TelemetryE2ETest, ShowQueriesListsTheLog) {
  Run("SELECT r_id FROM R WHERE r_id = 7");
  erql::QueryResult log = Run("SHOW QUERIES LIMIT 5");
  ASSERT_EQ(log.columns.size(), 12u);
  EXPECT_EQ(log.columns[0], "seq");
  EXPECT_EQ(log.columns[5], "queue_wait");
  EXPECT_EQ(log.columns[6], "write_stall");
  EXPECT_EQ(log.columns[10], "session");
  EXPECT_EQ(log.columns[11], "query");
  ASSERT_FALSE(log.rows.empty());
  EXPECT_LE(log.rows.size(), 5u);
  // Newest first: row 0 is the SHOW QUERIES statement itself? No — the
  // SHOW statement is recorded after it materializes its result, so row
  // 0 is the SELECT above.
  EXPECT_EQ(log.rows[0][11].as_string(), "SELECT r_id FROM R WHERE r_id = 7");
  EXPECT_EQ(log.rows[0][1].as_string(), "select");
  EXPECT_EQ(log.rows[0][9].as_string(), "ok");
  // A local statement never crossed the wire, so the transport columns
  // show the placeholder.
  EXPECT_EQ(log.rows[0][5].as_string(), "-");
  EXPECT_EQ(log.rows[0][6].as_string(), "-");
  // No session tag was installed, so attribution shows the placeholder.
  EXPECT_EQ(log.rows[0][10].as_string(), "-");
  // And the SHOW statement itself lands in the log for the next reader.
  erql::QueryResult next = Run("SHOW QUERIES LIMIT 1");
  EXPECT_EQ(next.rows[0][11].as_string(), "SHOW QUERIES LIMIT 5");
  EXPECT_EQ(next.rows[0][1].as_string(), "show");
}

TEST_F(TelemetryE2ETest, ShowQueriesSlowCapturesSpans) {
  QueryTelemetry& telemetry = QueryTelemetry::Global();
  uint64_t saved = telemetry.slow_threshold_ns();
  telemetry.set_slow_threshold_ns(0);  // everything is slow
  Run("SELECT r_id FROM R");
  telemetry.set_slow_threshold_ns(saved);

  erql::QueryResult slow = Run("SHOW QUERIES SLOW LIMIT 3");
  ASSERT_EQ(slow.columns.size(), 13u);
  EXPECT_EQ(slow.columns[7], "spans");
  ASSERT_FALSE(slow.rows.empty());
  bool found = false;
  for (const Row& row : slow.rows) {
    if (row[12].as_string() != "SELECT r_id FROM R") continue;
    found = true;
    EXPECT_GT(row[7].as_int64(), 0) << "slow select kept no span tree";
  }
  EXPECT_TRUE(found);
}

TEST_F(TelemetryE2ETest, ShowMetricsFiltersWithGlob) {
  Run("SELECT r_id FROM R");  // ensures erql.* metrics exist
  erql::QueryResult all = Run("SHOW METRICS");
  ASSERT_EQ(all.columns,
            (std::vector<std::string>{"metric", "kind", "value"}));
  EXPECT_GT(all.rows.size(), 3u);

  erql::QueryResult filtered = Run("SHOW METRICS LIKE 'erql.queries'");
  ASSERT_EQ(filtered.rows.size(), 1u);
  EXPECT_EQ(filtered.rows[0][0].as_string(), "erql.queries");
  EXPECT_EQ(filtered.rows[0][1].as_string(), "counter");
  EXPECT_GT(filtered.rows[0][2].as_int64(), 0);

  erql::QueryResult globbed = Run("SHOW METRICS LIKE 'erql.query.latency*'");
  ASSERT_FALSE(globbed.rows.empty());
  for (const Row& row : globbed.rows) {
    EXPECT_EQ(row[0].as_string().rfind("erql.query.latency", 0), 0u);
    EXPECT_EQ(row[1].as_string(), "histogram");
    EXPECT_NE(row[2].as_string().find("count="), std::string::npos);
  }
}

TEST_F(TelemetryE2ETest, TraceReturnsLoadableJson) {
  erql::QueryResult traced =
      Run("TRACE SELECT r.r_id, s.s_id FROM R r JOIN S s ON RS WHERE s.s_a1 < 100");
  ASSERT_EQ(traced.columns, (std::vector<std::string>{"trace"}));
  ASSERT_EQ(traced.rows.size(), 1u);
  testjson::Node root;
  std::string error;
  ASSERT_TRUE(testjson::ParseJson(traced.rows[0][0].as_string(), &root,
                                  &error))
      << error;
  const testjson::Node* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_GT(events->elements.size(), 1u);  // a join plan has several spans
  // The analyze window was open, so spans carry real durations.
  double total_dur = 0;
  for (const testjson::Node& e : events->elements) {
    total_dur += e.Find("dur")->number;
  }
  EXPECT_GT(total_dur, 0.0);

  // The traced statement's record reports the inner query's cardinality,
  // not the 1-row trace result.
  QueryRecord record = QueryTelemetry::Global().Recent(1).front();
  EXPECT_EQ(record.kind, "trace");
  EXPECT_GT(record.rows_out, 0u);
}

TEST_F(TelemetryE2ETest, TraceIntoWritesFile) {
  std::string path = ::testing::TempDir() + "/erbium_trace_test.json";
  erql::QueryResult result =
      Run("TRACE INTO '" + path + "' SELECT r_id FROM R");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_NE(result.rows[0][0].as_string().find("wrote " + path),
            std::string::npos);

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) contents.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());

  testjson::Node root;
  std::string error;
  ASSERT_TRUE(testjson::ParseJson(contents, &root, &error)) << error;
  EXPECT_NE(root.Find("traceEvents"), nullptr);
}

TEST_F(TelemetryE2ETest, CompileRejectsShowAndTrace) {
  for (const char* text : {"SHOW METRICS", "SHOW QUERIES",
                           "TRACE SELECT r_id FROM R"}) {
    auto compiled = erql::QueryEngine::Compile(db_, text);
    EXPECT_FALSE(compiled.ok()) << text;
  }
}

TEST_F(TelemetryE2ETest, TraceCannotWrapExplain) {
  auto result =
      erql::QueryEngine::Execute(db_, "TRACE EXPLAIN SELECT r_id FROM R");
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace obs
}  // namespace erbium
