// Tests for schema evolution (paper Section 3): the single-to-multi-
// valued change, cardinality relaxation, subclass addition, generic data
// migration between schema versions AND between physical mappings, and
// versioning with rollback.

#include <gtest/gtest.h>

#include "erql/query_engine.h"
#include "evolution/evolution.h"
#include "workload/figure4.h"

namespace erbium {
namespace {

Figure4Config TinyConfig() {
  Figure4Config config;
  config.num_r = 120;
  config.num_s = 40;
  return config;
}

TEST(EvolutionOpsTest, MakeAttributeMultiValued) {
  auto schema = MakeFigure4Schema();
  ASSERT_TRUE(schema.ok());
  ASSERT_TRUE(
      evolution::MakeAttributeMultiValued(&schema.value(), "R", "r_a3").ok());
  const AttributeDef* attr =
      FindAttribute(schema->FindEntitySet("R")->attributes, "r_a3");
  ASSERT_NE(attr, nullptr);
  EXPECT_TRUE(attr->multi_valued);
  // Key attributes cannot become multi-valued; double change rejected.
  EXPECT_FALSE(
      evolution::MakeAttributeMultiValued(&schema.value(), "R", "r_id").ok());
  EXPECT_FALSE(
      evolution::MakeAttributeMultiValued(&schema.value(), "R", "r_a3").ok());
}

TEST(EvolutionOpsTest, AddDropAttribute) {
  auto schema = MakeFigure4Schema();
  ASSERT_TRUE(schema.ok());
  ASSERT_TRUE(evolution::AddAttribute(
                  &schema.value(), "S",
                  AttributeDef{"s_new", Type::String(), false, true, false,
                               ""})
                  .ok());
  EXPECT_NE(FindAttribute(schema->FindEntitySet("S")->attributes, "s_new"),
            nullptr);
  ASSERT_TRUE(evolution::DropAttribute(&schema.value(), "S", "s_new").ok());
  EXPECT_EQ(FindAttribute(schema->FindEntitySet("S")->attributes, "s_new"),
            nullptr);
  EXPECT_FALSE(evolution::DropAttribute(&schema.value(), "S", "s_id").ok());
}

TEST(EvolutionOpsTest, CardinalityRelaxOnly) {
  auto schema = MakeFigure4Schema();
  ASSERT_TRUE(schema.ok());
  // R1R3 is 1:N; relaxing to M:N is fine.
  ASSERT_TRUE(evolution::ChangeRelationshipCardinality(
                  &schema.value(), "R1R3", Cardinality::kMany,
                  Cardinality::kMany)
                  .ok());
  // Tightening back is rejected.
  EXPECT_FALSE(evolution::ChangeRelationshipCardinality(
                   &schema.value(), "R1R3", Cardinality::kOne,
                   Cardinality::kMany)
                   .ok());
}

TEST(EvolutionOpsTest, AddSubclass) {
  auto schema = MakeFigure4Schema();
  ASSERT_TRUE(schema.ok());
  EntitySetDef sub;
  sub.name = "R5";
  sub.attributes = {AttributeDef{"r5_a1", Type::Int64(), false, true, false,
                                 ""}};
  ASSERT_TRUE(evolution::AddSubclass(&schema.value(), "R2", sub).ok());
  EXPECT_EQ(*schema->HierarchyRoot("R5"), "R");
}

class VersionedDatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = MakeFigure4Schema();
    ASSERT_TRUE(schema.ok());
    auto db = VersionedDatabase::Create(std::move(schema).value(),
                                        Figure4M1());
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(db).value();
    ASSERT_TRUE(PopulateFigure4(db_->current(), TinyConfig()).ok());
  }

  std::unique_ptr<VersionedDatabase> db_;
};

TEST_F(VersionedDatabaseTest, RemapPreservesQueries) {
  // The paper's headline: switching the physical mapping requires NO
  // query change. Run a query, remap M1 -> M2 -> M4, re-run, compare.
  const char* query = "SELECT r_id, r_mv1, r_a1 FROM R WHERE r_a4 < 50";
  auto before = erql::QueryEngine::Execute(db_->current(), query);
  ASSERT_TRUE(before.ok()) << before.status().ToString();

  ASSERT_TRUE(db_->Remap(Figure4M2(), "arrays for MV attrs").ok());
  auto after_m2 = erql::QueryEngine::Execute(db_->current(), query);
  ASSERT_TRUE(after_m2.ok());
  EXPECT_EQ(before->ToCanonicalString(), after_m2->ToCanonicalString());

  ASSERT_TRUE(db_->Remap(Figure4M4(), "disjoint hierarchy tables").ok());
  auto after_m4 = erql::QueryEngine::Execute(db_->current(), query);
  ASSERT_TRUE(after_m4.ok());
  EXPECT_EQ(before->ToCanonicalString(), after_m4->ToCanonicalString());

  EXPECT_EQ(db_->version(), 2);
  auto history = db_->History();
  ASSERT_EQ(history.size(), 3u);
  EXPECT_EQ(history[1].mapping_name, "M2");
}

TEST_F(VersionedDatabaseTest, SingleToMultiValuedMigration) {
  // The paper's Section 3 example: a single-valued attribute becomes
  // multi-valued. Existing scalars must migrate to 1-element arrays.
  auto before = erql::QueryEngine::Execute(
      db_->current(), "SELECT r_id, r_a3 FROM R WHERE r_id = 5");
  ASSERT_TRUE(before.ok());
  Value old_scalar = before->rows.front()[1];
  ASSERT_EQ(old_scalar.kind(), TypeKind::kString);

  ASSERT_TRUE(db_->Evolve(
                     [](ERSchema* schema) {
                       return evolution::MakeAttributeMultiValued(schema, "R",
                                                                  "r_a3");
                     },
                     "r_a3 becomes multi-valued")
                  .ok());
  auto after = erql::QueryEngine::Execute(
      db_->current(), "SELECT r_id, r_a3 FROM R WHERE r_id = 5");
  ASSERT_TRUE(after.ok());
  const Value& migrated = after->rows.front()[1];
  ASSERT_EQ(migrated.kind(), TypeKind::kArray);
  ASSERT_EQ(migrated.array().size(), 1u);
  EXPECT_EQ(migrated.array()[0], old_scalar);
  // The localized query change the paper describes: unnest now applies.
  auto unnested = erql::QueryEngine::Execute(
      db_->current(), "SELECT r_id, unnest(r_a3) AS city FROM R WHERE "
                      "r_id = 5");
  ASSERT_TRUE(unnested.ok());
  EXPECT_EQ(unnested->rows.front()[1], old_scalar);
}

TEST_F(VersionedDatabaseTest, CardinalityChangeKeepsAggregateQueryWorking) {
  // Section 3's instructor/advisee example: the aggregate query needs no
  // modification when 1:N becomes M:N.
  const char* query =
      "SELECT p.r_id, count(*) AS advisees FROM R1 p JOIN R3 c ON R1R3";
  auto before = erql::QueryEngine::Execute(db_->current(), query);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(db_->Evolve(
                     [](ERSchema* schema) {
                       return evolution::ChangeRelationshipCardinality(
                           schema, "R1R3", Cardinality::kMany,
                           Cardinality::kMany);
                     },
                     "R1R3 becomes many-to-many")
                  .ok());
  auto after = erql::QueryEngine::Execute(db_->current(), query);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(before->ToCanonicalString(), after->ToCanonicalString());
  // And the relaxed schema now admits a second parent (it was 1:N).
  auto rel = db_->current()->ScanRelationship("R1R3");
  ASSERT_TRUE(rel.ok());
  auto rows = CollectRows(rel->get());
  ASSERT_TRUE(rows.ok());
  ASSERT_FALSE(rows->empty());
  Value child = rows->front()[1];
  Value existing_parent = rows->front()[0];
  // Find a different parent id.
  auto parents = erql::QueryEngine::Execute(db_->current(),
                                            "SELECT r_id FROM R1");
  ASSERT_TRUE(parents.ok());
  for (const Row& parent : parents->rows) {
    if (parent[0] != existing_parent) {
      EXPECT_TRUE(db_->current()
                      ->InsertRelationship("R1R3", {parent[0]}, {child})
                      .ok());
      break;
    }
  }
}

TEST_F(VersionedDatabaseTest, RollbackRestoresPreviousVersion) {
  size_t before_count = db_->current()->CountEntities("R").value();
  ASSERT_TRUE(db_->Remap(Figure4M3(), "single-table hierarchy").ok());
  ASSERT_TRUE(db_->current()->DeleteEntity("R", {Value::Int64(1)}).ok());
  EXPECT_EQ(db_->current()->CountEntities("R").value(), before_count - 1);
  ASSERT_TRUE(db_->Rollback().ok());
  EXPECT_EQ(db_->version(), 0);
  // The pre-remap version still has the entity.
  EXPECT_EQ(db_->current()->CountEntities("R").value(), before_count);
  EXPECT_FALSE(db_->Rollback().ok());  // nothing earlier
}

TEST_F(VersionedDatabaseTest, AddSubclassThenInsert) {
  ASSERT_TRUE(db_->Evolve(
                     [](ERSchema* schema) {
                       EntitySetDef sub;
                       sub.name = "R5";
                       sub.attributes = {AttributeDef{
                           "r5_a1", Type::Int64(), false, true, false, ""}};
                       return evolution::AddSubclass(schema, "R2", sub);
                     },
                     "new subclass R5 under R2")
                  .ok());
  Value::StructData fields;
  fields.emplace_back("r_id", Value::Int64(100001));
  fields.emplace_back("r2_a1", Value::Int64(1));
  fields.emplace_back("r5_a1", Value::Int64(2));
  ASSERT_TRUE(db_->current()
                  ->InsertEntity("R5", Value::Struct(std::move(fields)))
                  .ok());
  EXPECT_TRUE(
      db_->current()->EntityExists("R2", {Value::Int64(100001)}).value());
  EXPECT_EQ(db_->current()
                ->SpecificClassOf("R", {Value::Int64(100001)})
                .value(),
            "R5");
}

}  // namespace
}  // namespace erbium
