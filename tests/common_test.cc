// Unit tests for the common layer: Status/Result, Type, Value, lexer,
// string utilities.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <thread>

#include "common/lexer.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/type.h"
#include "common/value.h"

namespace erbium {
namespace {

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::OK().ok());
  Status err = Status::NotFound("missing thing");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kNotFound);
  EXPECT_EQ(err.ToString(), "NotFound: missing thing");
}

TEST(ResultTest, ValueAndStatusAlternatives) {
  Result<int> ok_result(7);
  ASSERT_TRUE(ok_result.ok());
  EXPECT_EQ(*ok_result, 7);
  Result<int> err_result(Status::InvalidArgument("bad"));
  ASSERT_FALSE(err_result.ok());
  EXPECT_EQ(err_result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::Internal("boom");
    return 5;
  };
  auto outer = [&](bool fail) -> Result<int> {
    ERBIUM_ASSIGN_OR_RETURN(int v, inner(fail));
    return v + 1;
  };
  EXPECT_EQ(*outer(false), 6);
  EXPECT_EQ(outer(true).status().code(), StatusCode::kInternal);
}

TEST(TypeTest, ScalarInterningAndEquality) {
  EXPECT_EQ(Type::Int64().get(), Type::Int64().get());
  EXPECT_TRUE(TypeEquals(Type::Int64(), Type::Int64()));
  EXPECT_FALSE(TypeEquals(Type::Int64(), Type::Float64()));
}

TEST(TypeTest, NestedStructure) {
  TypePtr t = Type::Array(Type::Struct(
      {{"a", Type::Int64()}, {"b", Type::Array(Type::String())}}));
  EXPECT_EQ(t->ToString(), "array<struct<a: int64, b: array<string>>>");
  TypePtr same = Type::Array(Type::Struct(
      {{"a", Type::Int64()}, {"b", Type::Array(Type::String())}}));
  EXPECT_TRUE(TypeEquals(t, same));
  TypePtr different = Type::Array(Type::Struct(
      {{"a", Type::Int64()}, {"c", Type::Array(Type::String())}}));
  EXPECT_FALSE(TypeEquals(t, different));
}

TEST(TypeTest, FieldIndex) {
  TypePtr t = Type::Struct({{"x", Type::Int64()}, {"y", Type::String()}});
  EXPECT_EQ(t->FieldIndex("x"), 0);
  EXPECT_EQ(t->FieldIndex("y"), 1);
  EXPECT_EQ(t->FieldIndex("z"), -1);
}

TEST(TypeTest, ParseTypeNames) {
  EXPECT_EQ((*ParseTypeName("INT"))->kind(), TypeKind::kInt64);
  EXPECT_EQ((*ParseTypeName("double"))->kind(), TypeKind::kFloat64);
  EXPECT_EQ((*ParseTypeName("text"))->kind(), TypeKind::kString);
  EXPECT_EQ((*ParseTypeName("BOOLEAN"))->kind(), TypeKind::kBool);
  TypePtr nested = *ParseTypeName("array<array<int>>");
  EXPECT_EQ(nested->ToString(), "array<array<int64>>");
  EXPECT_FALSE(ParseTypeName("quux").ok());
}

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Bool(true).kind(), TypeKind::kBool);
  EXPECT_EQ(Value::Int64(3).as_int64(), 3);
  EXPECT_DOUBLE_EQ(Value::Float64(2.5).as_float64(), 2.5);
  EXPECT_EQ(Value::String("x").as_string(), "x");
  Value arr = Value::Array({Value::Int64(1), Value::Int64(2)});
  EXPECT_EQ(arr.array().size(), 2u);
  Value s = Value::Struct({{"a", Value::Int64(1)}});
  ASSERT_NE(s.FindField("a"), nullptr);
  EXPECT_EQ(s.FindField("b"), nullptr);
}

TEST(ValueTest, NumericCrossKindComparison) {
  EXPECT_EQ(Value::Int64(2), Value::Float64(2.0));
  EXPECT_LT(Value::Int64(2), Value::Float64(2.5));
  EXPECT_EQ(Value::Int64(2).Hash(), Value::Float64(2.0).Hash());
}

TEST(ValueTest, TotalOrderAcrossKinds) {
  // null < bool < numeric < string < array < struct.
  std::vector<Value> ordered = {
      Value::Null(),      Value::Bool(false),      Value::Int64(0),
      Value::String(""),  Value::Array({}),        Value::Struct({})};
  for (size_t i = 0; i + 1 < ordered.size(); ++i) {
    EXPECT_LT(ordered[i], ordered[i + 1]) << i;
  }
}

TEST(ValueTest, ArrayLexicographicComparison) {
  Value a = Value::Array({Value::Int64(1), Value::Int64(2)});
  Value b = Value::Array({Value::Int64(1), Value::Int64(3)});
  Value c = Value::Array({Value::Int64(1)});
  EXPECT_LT(a, b);
  EXPECT_LT(c, a);
  EXPECT_EQ(a, Value::Array({Value::Int64(1), Value::Int64(2)}));
}

TEST(ValueTest, ToStringRendering) {
  Value v = Value::Struct(
      {{"name", Value::String("bob")},
       {"tags", Value::Array({Value::Int64(1), Value::Null()})}});
  EXPECT_EQ(v.ToString(), "{name: 'bob', tags: [1, null]}");
}

TEST(ValueTest, VectorHashAndEq) {
  std::vector<Value> a{Value::Int64(1), Value::String("x")};
  std::vector<Value> b{Value::Int64(1), Value::String("x")};
  std::vector<Value> c{Value::Int64(1), Value::String("y")};
  EXPECT_TRUE(ValueVectorEq()(a, b));
  EXPECT_FALSE(ValueVectorEq()(a, c));
  EXPECT_EQ(ValueVectorHash()(a), ValueVectorHash()(b));
}

TEST(LexerTest, TokenKinds) {
  auto tokens = Lexer::Tokenize("SELECT a.b, 'it''s' 12 3.5 >= <> -- c\nx");
  ASSERT_TRUE(tokens.ok());
  const std::vector<Token>& t = *tokens;
  EXPECT_TRUE(t[0].IsKeyword("select"));
  EXPECT_EQ(t[1].text, "a");
  EXPECT_TRUE(t[2].IsSymbol("."));
  EXPECT_EQ(t[3].text, "b");
  EXPECT_TRUE(t[4].IsSymbol(","));
  EXPECT_EQ(t[5].kind, TokenKind::kString);
  EXPECT_EQ(t[5].text, "it's");
  EXPECT_EQ(t[6].int_value, 12);
  EXPECT_DOUBLE_EQ(t[7].float_value, 3.5);
  EXPECT_TRUE(t[8].IsSymbol(">="));
  EXPECT_TRUE(t[9].IsSymbol("<>"));
  EXPECT_EQ(t[10].text, "x");  // comment skipped
  EXPECT_EQ(t[11].kind, TokenKind::kEnd);
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Lexer::Tokenize("'unterminated").ok());
  EXPECT_FALSE(Lexer::Tokenize("@").ok());
}

TEST(TokenStreamTest, ExpectHelpers) {
  auto tokens = Lexer::Tokenize("create entity Foo");
  ASSERT_TRUE(tokens.ok());
  TokenStream ts(std::move(tokens).value());
  EXPECT_TRUE(ts.ExpectKeyword("CREATE").ok());
  EXPECT_TRUE(ts.ConsumeKeyword("entity"));
  auto ident = ts.ExpectIdentifier("entity name");
  ASSERT_TRUE(ident.ok());
  EXPECT_EQ(*ident, "Foo");
  EXPECT_TRUE(ts.AtEnd());
  EXPECT_FALSE(ts.ExpectSymbol("(").ok());
}

TEST(LexerTest, IntegerLiteralOverflow) {
  // Within range: int64 max parses fine.
  auto ok = Lexer::Tokenize("9223372036854775807");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ((*ok)[0].int_value, INT64_MAX);
  // One past int64 max, and absurdly long digit strings, must be a clean
  // parse error — not an uncaught exception or a silently wrapped value.
  auto over = Lexer::Tokenize("9223372036854775808");
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(over.status().code(), StatusCode::kParseError);
  EXPECT_FALSE(Lexer::Tokenize("99999999999999999999999999999999").ok());
}

TEST(LexerTest, FloatLiteralOverflow) {
  auto ok = Lexer::Tokenize("1.5e308");
  ASSERT_TRUE(ok.ok());
  EXPECT_DOUBLE_EQ((*ok)[0].float_value, 1.5e308);
  auto over = Lexer::Tokenize("1.5e400");
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(over.status().code(), StatusCode::kParseError);
  EXPECT_FALSE(Lexer::Tokenize("1e999999").ok());
}

TEST(LexerTest, ExponentWithoutDigitsStaysInteger) {
  // "2e" is integer 2 followed by identifier e, not a malformed float.
  auto tokens = Lexer::Tokenize("2e + 3E- 4e5");
  ASSERT_TRUE(tokens.ok());
  const std::vector<Token>& t = *tokens;
  EXPECT_EQ(t[0].kind, TokenKind::kInteger);
  EXPECT_EQ(t[0].int_value, 2);
  EXPECT_EQ(t[1].text, "e");
  EXPECT_EQ(t[3].kind, TokenKind::kInteger);
  EXPECT_EQ(t[4].text, "E");
  EXPECT_EQ(t[6].kind, TokenKind::kFloat);
  EXPECT_DOUBLE_EQ(t[6].float_value, 4e5);
}

TEST(GlobMatchTest, EdgeCases) {
  // Empty pattern matches only empty text; "*" matches everything.
  EXPECT_TRUE(GlobMatch("", ""));
  EXPECT_FALSE(GlobMatch("", "x"));
  EXPECT_TRUE(GlobMatch("*", ""));
  EXPECT_TRUE(GlobMatch("*", "anything"));
  EXPECT_TRUE(GlobMatch("**", "anything"));
  EXPECT_FALSE(GlobMatch("x", ""));
  // '?' matches exactly one character.
  EXPECT_TRUE(GlobMatch("?", "a"));
  EXPECT_FALSE(GlobMatch("?", ""));
  EXPECT_FALSE(GlobMatch("?", "ab"));
  // Backtracking to the last star: "a*ab" requires re-trying the star.
  EXPECT_TRUE(GlobMatch("a*ab", "aab"));
  EXPECT_TRUE(GlobMatch("a*ab", "axab"));
  EXPECT_TRUE(GlobMatch("a*ab", "aabab"));
  EXPECT_FALSE(GlobMatch("a*ab", "aba"));
  // Mixed wildcards, and stars that must absorb nothing.
  EXPECT_TRUE(GlobMatch("wal.*", "wal.appends"));
  EXPECT_FALSE(GlobMatch("wal.*", "recovery.opens"));
  EXPECT_TRUE(GlobMatch("*.?", "a.b"));
  EXPECT_TRUE(GlobMatch("a*", "a"));
  EXPECT_TRUE(GlobMatch("*a", "a"));
}

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(pool.Submit([&count] { ++count; }));
  }
  for (auto& f : futures) f.wait();
  EXPECT_EQ(count.load(), 16);
  EXPECT_GE(pool.num_workers(), 2);
}

TEST(ThreadPoolTest, SubmitDuringShutdownStillCompletesFuture) {
  // Regression: a task submitted while the pool is stopping must still
  // run (inline on the submitter) and its future must become ready — a
  // queued-but-never-drained task would leave the caller waiting forever.
  auto* pool = new ThreadPool(1);
  std::promise<void> gate;
  std::shared_future<void> gate_future = gate.get_future().share();
  // Occupy the lone worker so the destructor blocks joining it, keeping
  // the pool alive in the "stopping" state while we submit into it.
  pool->Submit([gate_future] { gate_future.wait(); });
  std::thread destroyer([pool] { delete pool; });
  // Until the destructor flips stopping_, probes are queued behind the
  // blocked worker and stay pending; once it flips, Submit must run the
  // task inline, so the future is ready the moment Submit returns.
  std::atomic<int> ran{0};
  bool saw_inline = false;
  for (int i = 0; i < 5000 && !saw_inline; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    std::future<void> probe = pool->Submit([&ran] { ++ran; });
    saw_inline = probe.wait_for(std::chrono::seconds(0)) ==
                 std::future_status::ready;
  }
  EXPECT_TRUE(saw_inline);
  EXPECT_GE(ran.load(), 1);
  gate.set_value();  // release the worker; destruction drains the queue
  destroyer.join();
}

TEST(StringUtilTest, Basics) {
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_EQ(Trim("  x \t"), "x");
  EXPECT_EQ(Split("a, b ,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Join({"a", "b"}, "-"), "a-b");
  EXPECT_TRUE(EqualsIgnoreCase("Select", "SELECT"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
}

}  // namespace
}  // namespace erbium
