// Unit tests for the common layer: Status/Result, Type, Value, lexer,
// string utilities.

#include <gtest/gtest.h>

#include "common/lexer.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/type.h"
#include "common/value.h"

namespace erbium {
namespace {

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::OK().ok());
  Status err = Status::NotFound("missing thing");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kNotFound);
  EXPECT_EQ(err.ToString(), "NotFound: missing thing");
}

TEST(ResultTest, ValueAndStatusAlternatives) {
  Result<int> ok_result(7);
  ASSERT_TRUE(ok_result.ok());
  EXPECT_EQ(*ok_result, 7);
  Result<int> err_result(Status::InvalidArgument("bad"));
  ASSERT_FALSE(err_result.ok());
  EXPECT_EQ(err_result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::Internal("boom");
    return 5;
  };
  auto outer = [&](bool fail) -> Result<int> {
    ERBIUM_ASSIGN_OR_RETURN(int v, inner(fail));
    return v + 1;
  };
  EXPECT_EQ(*outer(false), 6);
  EXPECT_EQ(outer(true).status().code(), StatusCode::kInternal);
}

TEST(TypeTest, ScalarInterningAndEquality) {
  EXPECT_EQ(Type::Int64().get(), Type::Int64().get());
  EXPECT_TRUE(TypeEquals(Type::Int64(), Type::Int64()));
  EXPECT_FALSE(TypeEquals(Type::Int64(), Type::Float64()));
}

TEST(TypeTest, NestedStructure) {
  TypePtr t = Type::Array(Type::Struct(
      {{"a", Type::Int64()}, {"b", Type::Array(Type::String())}}));
  EXPECT_EQ(t->ToString(), "array<struct<a: int64, b: array<string>>>");
  TypePtr same = Type::Array(Type::Struct(
      {{"a", Type::Int64()}, {"b", Type::Array(Type::String())}}));
  EXPECT_TRUE(TypeEquals(t, same));
  TypePtr different = Type::Array(Type::Struct(
      {{"a", Type::Int64()}, {"c", Type::Array(Type::String())}}));
  EXPECT_FALSE(TypeEquals(t, different));
}

TEST(TypeTest, FieldIndex) {
  TypePtr t = Type::Struct({{"x", Type::Int64()}, {"y", Type::String()}});
  EXPECT_EQ(t->FieldIndex("x"), 0);
  EXPECT_EQ(t->FieldIndex("y"), 1);
  EXPECT_EQ(t->FieldIndex("z"), -1);
}

TEST(TypeTest, ParseTypeNames) {
  EXPECT_EQ((*ParseTypeName("INT"))->kind(), TypeKind::kInt64);
  EXPECT_EQ((*ParseTypeName("double"))->kind(), TypeKind::kFloat64);
  EXPECT_EQ((*ParseTypeName("text"))->kind(), TypeKind::kString);
  EXPECT_EQ((*ParseTypeName("BOOLEAN"))->kind(), TypeKind::kBool);
  TypePtr nested = *ParseTypeName("array<array<int>>");
  EXPECT_EQ(nested->ToString(), "array<array<int64>>");
  EXPECT_FALSE(ParseTypeName("quux").ok());
}

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Bool(true).kind(), TypeKind::kBool);
  EXPECT_EQ(Value::Int64(3).as_int64(), 3);
  EXPECT_DOUBLE_EQ(Value::Float64(2.5).as_float64(), 2.5);
  EXPECT_EQ(Value::String("x").as_string(), "x");
  Value arr = Value::Array({Value::Int64(1), Value::Int64(2)});
  EXPECT_EQ(arr.array().size(), 2u);
  Value s = Value::Struct({{"a", Value::Int64(1)}});
  ASSERT_NE(s.FindField("a"), nullptr);
  EXPECT_EQ(s.FindField("b"), nullptr);
}

TEST(ValueTest, NumericCrossKindComparison) {
  EXPECT_EQ(Value::Int64(2), Value::Float64(2.0));
  EXPECT_LT(Value::Int64(2), Value::Float64(2.5));
  EXPECT_EQ(Value::Int64(2).Hash(), Value::Float64(2.0).Hash());
}

TEST(ValueTest, TotalOrderAcrossKinds) {
  // null < bool < numeric < string < array < struct.
  std::vector<Value> ordered = {
      Value::Null(),      Value::Bool(false),      Value::Int64(0),
      Value::String(""),  Value::Array({}),        Value::Struct({})};
  for (size_t i = 0; i + 1 < ordered.size(); ++i) {
    EXPECT_LT(ordered[i], ordered[i + 1]) << i;
  }
}

TEST(ValueTest, ArrayLexicographicComparison) {
  Value a = Value::Array({Value::Int64(1), Value::Int64(2)});
  Value b = Value::Array({Value::Int64(1), Value::Int64(3)});
  Value c = Value::Array({Value::Int64(1)});
  EXPECT_LT(a, b);
  EXPECT_LT(c, a);
  EXPECT_EQ(a, Value::Array({Value::Int64(1), Value::Int64(2)}));
}

TEST(ValueTest, ToStringRendering) {
  Value v = Value::Struct(
      {{"name", Value::String("bob")},
       {"tags", Value::Array({Value::Int64(1), Value::Null()})}});
  EXPECT_EQ(v.ToString(), "{name: 'bob', tags: [1, null]}");
}

TEST(ValueTest, VectorHashAndEq) {
  std::vector<Value> a{Value::Int64(1), Value::String("x")};
  std::vector<Value> b{Value::Int64(1), Value::String("x")};
  std::vector<Value> c{Value::Int64(1), Value::String("y")};
  EXPECT_TRUE(ValueVectorEq()(a, b));
  EXPECT_FALSE(ValueVectorEq()(a, c));
  EXPECT_EQ(ValueVectorHash()(a), ValueVectorHash()(b));
}

TEST(LexerTest, TokenKinds) {
  auto tokens = Lexer::Tokenize("SELECT a.b, 'it''s' 12 3.5 >= <> -- c\nx");
  ASSERT_TRUE(tokens.ok());
  const std::vector<Token>& t = *tokens;
  EXPECT_TRUE(t[0].IsKeyword("select"));
  EXPECT_EQ(t[1].text, "a");
  EXPECT_TRUE(t[2].IsSymbol("."));
  EXPECT_EQ(t[3].text, "b");
  EXPECT_TRUE(t[4].IsSymbol(","));
  EXPECT_EQ(t[5].kind, TokenKind::kString);
  EXPECT_EQ(t[5].text, "it's");
  EXPECT_EQ(t[6].int_value, 12);
  EXPECT_DOUBLE_EQ(t[7].float_value, 3.5);
  EXPECT_TRUE(t[8].IsSymbol(">="));
  EXPECT_TRUE(t[9].IsSymbol("<>"));
  EXPECT_EQ(t[10].text, "x");  // comment skipped
  EXPECT_EQ(t[11].kind, TokenKind::kEnd);
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Lexer::Tokenize("'unterminated").ok());
  EXPECT_FALSE(Lexer::Tokenize("@").ok());
}

TEST(TokenStreamTest, ExpectHelpers) {
  auto tokens = Lexer::Tokenize("create entity Foo");
  ASSERT_TRUE(tokens.ok());
  TokenStream ts(std::move(tokens).value());
  EXPECT_TRUE(ts.ExpectKeyword("CREATE").ok());
  EXPECT_TRUE(ts.ConsumeKeyword("entity"));
  auto ident = ts.ExpectIdentifier("entity name");
  ASSERT_TRUE(ident.ok());
  EXPECT_EQ(*ident, "Foo");
  EXPECT_TRUE(ts.AtEnd());
  EXPECT_FALSE(ts.ExpectSymbol("(").ok());
}

TEST(StringUtilTest, Basics) {
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_EQ(Trim("  x \t"), "x");
  EXPECT_EQ(Split("a, b ,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Join({"a", "b"}, "-"), "a-b");
  EXPECT_TRUE(EqualsIgnoreCase("Select", "SELECT"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
}

}  // namespace
}  // namespace erbium
