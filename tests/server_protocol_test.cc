// Wire-protocol tests: status-code wire round-trips, body encoders and
// decoders, FrameSocket framing over a socketpair, and a fuzz suite that
// throws malformed bytes (bad CRC, oversized lengths, truncated frames,
// garbage) at a live server and asserts it answers with a typed error
// frame or a clean close — and never crashes.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <random>
#include <string>
#include <thread>

#include "durability/serde.h"
#include "gtest/gtest.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"

namespace erbium {
namespace server {
namespace {

// ---- Status codes over the wire -------------------------------------------

TEST(StatusWireTest, EveryCodeRoundTrips) {
  const StatusCode codes[] = {
      StatusCode::kOk,           StatusCode::kInvalidArgument,
      StatusCode::kNotFound,     StatusCode::kAlreadyExists,
      StatusCode::kConstraintViolation, StatusCode::kParseError,
      StatusCode::kAnalysisError, StatusCode::kNotImplemented,
      StatusCode::kInternal,     StatusCode::kIOError,
      StatusCode::kDeadlineExceeded, StatusCode::kUnavailable,
  };
  for (StatusCode code : codes) {
    EXPECT_EQ(StatusCodeFromWire(StatusCodeToWire(code)), code)
        << StatusCodeToString(code);
  }
}

TEST(StatusWireTest, NumbersAreStable) {
  // These values are on the wire and on disk; a renumbering is a
  // protocol break. Pin them.
  EXPECT_EQ(StatusCodeToWire(StatusCode::kOk), 0);
  EXPECT_EQ(StatusCodeToWire(StatusCode::kInvalidArgument), 1);
  EXPECT_EQ(StatusCodeToWire(StatusCode::kNotFound), 2);
  EXPECT_EQ(StatusCodeToWire(StatusCode::kAlreadyExists), 3);
  EXPECT_EQ(StatusCodeToWire(StatusCode::kConstraintViolation), 4);
  EXPECT_EQ(StatusCodeToWire(StatusCode::kParseError), 5);
  EXPECT_EQ(StatusCodeToWire(StatusCode::kAnalysisError), 6);
  EXPECT_EQ(StatusCodeToWire(StatusCode::kNotImplemented), 7);
  EXPECT_EQ(StatusCodeToWire(StatusCode::kInternal), 8);
  EXPECT_EQ(StatusCodeToWire(StatusCode::kIOError), 9);
  EXPECT_EQ(StatusCodeToWire(StatusCode::kDeadlineExceeded), 10);
  EXPECT_EQ(StatusCodeToWire(StatusCode::kUnavailable), 11);
}

TEST(StatusWireTest, UnknownNumbersDecodeAsInternal) {
  EXPECT_EQ(StatusCodeFromWire(99), StatusCode::kInternal);
  EXPECT_EQ(StatusCodeFromWire(-5), StatusCode::kInternal);
}

TEST(StatusWireTest, ErrorBodyRoundTripsEveryCodeAndMessage) {
  for (int32_t wire = 0; wire <= 11; ++wire) {
    Status original(StatusCodeFromWire(wire),
                    "message for code " + std::to_string(wire));
    Status decoded;
    ASSERT_TRUE(DecodeErrorBody(EncodeErrorBody(original), &decoded).ok());
    EXPECT_EQ(decoded.code(), original.code());
    EXPECT_EQ(decoded.message(), original.message());
  }
}

// ---- Body round-trips -----------------------------------------------------

TEST(ProtocolBodyTest, HelloRoundTrips) {
  auto hello = DecodeHelloBody(EncodeHelloBody("tester"));
  ASSERT_TRUE(hello.ok());
  EXPECT_EQ(hello->version, kProtocolVersion);
  EXPECT_EQ(hello->client_name, "tester");
}

TEST(ProtocolBodyTest, HelloOkRoundTrips) {
  auto hello = DecodeHelloOkBody(EncodeHelloOkBody(42, "ErbiumDB"));
  ASSERT_TRUE(hello.ok());
  EXPECT_EQ(hello->session_id, 42u);
  EXPECT_EQ(hello->banner, "ErbiumDB");
}

TEST(ProtocolBodyTest, StatementRoundTrips) {
  auto statement =
      DecodeStatementBody(EncodeStatementBody("SELECT r_id FROM R"));
  ASSERT_TRUE(statement.ok());
  EXPECT_EQ(*statement, "SELECT r_id FROM R");
}

TEST(ProtocolBodyTest, ResultRoundTripsAllValueKinds) {
  api::StatementOutcome outcome;
  outcome.shape = api::OutputShape::kTable;
  outcome.message = "unused for tables";
  outcome.result.columns = {"i", "f", "s", "b", "n", "arr"};
  outcome.result.rows.push_back(
      {Value::Int64(-7), Value::Float64(2.5), Value::String("hi"),
       Value::Bool(true), Value::Null(),
       Value::Array({Value::Int64(1), Value::Int64(2)})});
  outcome.result.rows.push_back(
      {Value::Int64(8), Value::Float64(-0.25), Value::String(""),
       Value::Bool(false), Value::Null(), Value::Array({})});

  auto decoded = DecodeResultBody(EncodeResultBody(outcome));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->shape, api::OutputShape::kTable);
  ASSERT_EQ(decoded->result.columns, outcome.result.columns);
  ASSERT_EQ(decoded->result.rows.size(), 2u);
  EXPECT_EQ(decoded->result.rows[0][0].as_int64(), -7);
  EXPECT_EQ(decoded->result.rows[0][2].as_string(), "hi");
  EXPECT_EQ(decoded->result.rows[0][5].array().size(), 2u);
  EXPECT_EQ(decoded->result.rows[1][3].as_bool(), false);
}

TEST(ProtocolBodyTest, StatementSeqRoundTrips) {
  auto decoded = DecodeStatementSeqBody(
      EncodeStatementSeqBody(7, "SELECT r_id FROM R"));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->seq, 7u);
  EXPECT_EQ(decoded->statement, "SELECT r_id FROM R");
}

TEST(ProtocolBodyTest, ResultSeqRoundTrips) {
  api::StatementOutcome outcome;
  outcome.shape = api::OutputShape::kTable;
  outcome.result.columns = {"a"};
  outcome.result.rows.push_back({Value::Int64(3)});
  std::string body = EncodeResultSeqBody(99, outcome);
  std::string rest;
  auto seq = DecodeSeqPrefix(body, &rest);
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(*seq, 99u);
  auto decoded = DecodeResultBody(rest);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->result.rows.size(), 1u);
  EXPECT_EQ(decoded->result.rows[0][0].as_int64(), 3);
}

TEST(ProtocolBodyTest, ServerTimingFooterRoundTrips) {
  api::StatementOutcome outcome;
  outcome.shape = api::OutputShape::kTable;
  outcome.result.columns = {"a"};
  outcome.result.rows.push_back({Value::Int64(3)});

  ServerTiming timing;
  timing.present = true;
  timing.queue_wait_us = 1'234;
  timing.execute_us = 98'765;
  std::string body = EncodeResultBody(outcome) + EncodeServerTimingFooter(timing);

  ServerTiming decoded_timing;
  auto decoded = DecodeResultBody(body, &decoded_timing);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->result.rows.size(), 1u);
  EXPECT_EQ(decoded->result.rows[0][0].as_int64(), 3);
  EXPECT_TRUE(decoded_timing.present);
  EXPECT_EQ(decoded_timing.queue_wait_us, 1'234u);
  EXPECT_EQ(decoded_timing.execute_us, 98'765u);
}

TEST(ProtocolBodyTest, FooterIsAbsentOnPlainBodies) {
  // A body without a footer decodes with timing untouched — that is how
  // the client stays compatible with footer-less (older) servers.
  api::StatementOutcome outcome;
  outcome.shape = api::OutputShape::kMessage;
  outcome.message = "ok";
  ServerTiming timing;
  auto decoded = DecodeResultBody(EncodeResultBody(outcome), &timing);
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(timing.present);
}

TEST(ProtocolBodyTest, StrictDecodeRejectsFooteredBody) {
  // The footer rides only on seq-tagged responses; the plain kResult
  // path keeps its trailing-bytes strictness.
  api::StatementOutcome outcome;
  outcome.shape = api::OutputShape::kMessage;
  outcome.message = "ok";
  ServerTiming timing;
  timing.present = true;
  timing.queue_wait_us = 1;
  timing.execute_us = 2;
  std::string body = EncodeResultBody(outcome) + EncodeServerTimingFooter(timing);
  auto decoded = DecodeResultBody(body);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kIOError);
}

TEST(ProtocolBodyTest, TruncatedFooterFailsCleanly) {
  api::StatementOutcome outcome;
  outcome.shape = api::OutputShape::kMessage;
  outcome.message = "ok";
  ServerTiming timing;
  timing.present = true;
  timing.queue_wait_us = 7;
  timing.execute_us = 8;
  std::string plain = EncodeResultBody(outcome);
  std::string footer = EncodeServerTimingFooter(timing);
  for (size_t cut = 1; cut < footer.size(); ++cut) {
    ServerTiming out;
    auto decoded = DecodeResultBody(plain + footer.substr(0, cut), &out);
    EXPECT_FALSE(decoded.ok()) << "cut at " << cut;
  }
}

TEST(ProtocolBodyTest, ErrorSeqRoundTrips) {
  std::string body =
      EncodeErrorSeqBody(12, Status::NotFound("no such attribute"));
  std::string rest;
  auto seq = DecodeSeqPrefix(body, &rest);
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(*seq, 12u);
  Status transported;
  ASSERT_TRUE(DecodeErrorBody(rest, &transported).ok());
  EXPECT_EQ(transported.code(), StatusCode::kNotFound);
  EXPECT_EQ(transported.message(), "no such attribute");
}

TEST(ProtocolBodyTest, SeqPrefixOnShortBodyFails) {
  std::string rest;
  EXPECT_FALSE(DecodeSeqPrefix("1234567", &rest).ok());
}

TEST(ProtocolBodyTest, TruncatedBodiesFailCleanly) {
  api::StatementOutcome outcome;
  outcome.shape = api::OutputShape::kTable;
  outcome.result.columns = {"a"};
  outcome.result.rows.push_back({Value::Int64(1)});
  std::string body = EncodeResultBody(outcome);
  for (size_t cut = 0; cut < body.size(); ++cut) {
    auto decoded = DecodeResultBody(body.substr(0, cut));
    EXPECT_FALSE(decoded.ok()) << "cut at " << cut;
  }
  EXPECT_FALSE(DecodeHelloBody("xy").ok());
  Status out;
  EXPECT_FALSE(DecodeErrorBody("z", &out).ok());
}

TEST(ProtocolBodyTest, ResultWithLyingCountsFailsCleanly) {
  // A count field larger than the remaining bytes must be rejected, not
  // trusted into a huge allocation.
  std::string body;
  body.push_back(static_cast<char>(api::OutputShape::kTable));
  body += std::string(4, '\0');                  // empty message
  body += std::string("\xff\xff\xff\x7f", 4);    // 2^31-ish column count
  auto decoded = DecodeResultBody(body);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kIOError);
}

// ---- FrameDecoder: incremental decoding for the reactor -------------------

TEST(FrameDecoderTest, DecodesAFrameFedByteByByte) {
  std::string wire = EncodeFrame(FrameType::kStatement,
                                 EncodeStatementBody("SELECT 1"));
  FrameDecoder decoder;
  Frame frame;
  for (size_t i = 0; i + 1 < wire.size(); ++i) {
    decoder.Feed(wire.data() + i, 1);
    auto has = decoder.Next(&frame);
    ASSERT_TRUE(has.ok());
    EXPECT_FALSE(*has) << "frame complete after only " << i + 1 << " bytes";
  }
  decoder.Feed(wire.data() + wire.size() - 1, 1);
  auto has = decoder.Next(&frame);
  ASSERT_TRUE(has.ok());
  ASSERT_TRUE(*has);
  EXPECT_EQ(frame.type, FrameType::kStatement);
  EXPECT_EQ(*DecodeStatementBody(frame.body), "SELECT 1");
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(FrameDecoderTest, PullsMultipleFramesFromOneFeed) {
  std::string wire;
  for (int i = 0; i < 5; ++i) {
    wire += EncodeFrame(FrameType::kStatementSeq,
                        EncodeStatementSeqBody(static_cast<uint64_t>(i),
                                               "SELECT " + std::to_string(i)));
  }
  wire += EncodeFrame(FrameType::kPing, "");
  FrameDecoder decoder;
  decoder.Feed(wire.data(), wire.size());
  for (int i = 0; i < 5; ++i) {
    Frame frame;
    auto has = decoder.Next(&frame);
    ASSERT_TRUE(has.ok());
    ASSERT_TRUE(*has);
    ASSERT_EQ(frame.type, FrameType::kStatementSeq);
    auto body = DecodeStatementSeqBody(frame.body);
    ASSERT_TRUE(body.ok());
    EXPECT_EQ(body->seq, static_cast<uint64_t>(i));
  }
  Frame frame;
  ASSERT_TRUE(*decoder.Next(&frame));
  EXPECT_EQ(frame.type, FrameType::kPing);
  EXPECT_FALSE(*decoder.Next(&frame));
}

TEST(FrameDecoderTest, TornThenCompletedAcrossFeeds) {
  std::string wire = EncodeFrame(FrameType::kGoodbye, "") +
                     EncodeFrame(FrameType::kPing, "");
  FrameDecoder decoder;
  size_t cut = wire.size() / 2 + 3;
  decoder.Feed(wire.data(), cut);
  Frame frame;
  ASSERT_TRUE(*decoder.Next(&frame));  // first frame fits in the cut
  EXPECT_EQ(frame.type, FrameType::kGoodbye);
  EXPECT_FALSE(*decoder.Next(&frame));
  decoder.Feed(wire.data() + cut, wire.size() - cut);
  ASSERT_TRUE(*decoder.Next(&frame));
  EXPECT_EQ(frame.type, FrameType::kPing);
}

TEST(FrameDecoderTest, BadCrcIsUnrecoverable) {
  std::string wire = EncodeFrame(FrameType::kPing, "");
  wire[wire.size() - 1] ^= 0x01;
  FrameDecoder decoder;
  decoder.Feed(wire.data(), wire.size());
  Frame frame;
  auto has = decoder.Next(&frame);
  ASSERT_FALSE(has.ok());
  EXPECT_EQ(has.status().code(), StatusCode::kIOError);
  EXPECT_NE(has.status().message().find("CRC"), std::string::npos);
}

TEST(FrameDecoderTest, OversizedAndEmptyPayloadsAreRejected) {
  {
    std::string header;
    durability::PutU32(kMaxFramePayloadBytes + 1, &header);
    durability::PutU32(0, &header);
    FrameDecoder decoder;
    decoder.Feed(header.data(), header.size());
    Frame frame;
    auto has = decoder.Next(&frame);
    ASSERT_FALSE(has.ok());
    EXPECT_EQ(has.status().code(), StatusCode::kIOError);
  }
  {
    std::string header(8, '\0');  // zero length, zero CRC
    FrameDecoder decoder;
    decoder.Feed(header.data(), header.size());
    Frame frame;
    auto has = decoder.Next(&frame);
    ASSERT_FALSE(has.ok());
    EXPECT_EQ(has.status().code(), StatusCode::kIOError);
  }
}

// ---- FrameSocket over a socketpair ----------------------------------------

class FramePairTest : public ::testing::Test {
 protected:
  void SetUp() override {
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a_ = std::make_unique<FrameSocket>(fds[0]);
    b_ = std::make_unique<FrameSocket>(fds[1]);
  }
  std::unique_ptr<FrameSocket> a_, b_;
};

TEST_F(FramePairTest, SendRecvRoundTrips) {
  ASSERT_TRUE(a_->Send(FrameType::kStatement,
                       EncodeStatementBody("SELECT 1")).ok());
  auto frame = b_->Recv(1000);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->type, FrameType::kStatement);
  auto statement = DecodeStatementBody(frame->body);
  ASSERT_TRUE(statement.ok());
  EXPECT_EQ(*statement, "SELECT 1");
}

TEST_F(FramePairTest, RecvTimesOutWhenIdle) {
  auto frame = b_->Recv(50);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(FramePairTest, OrderlyCloseIsUnavailable) {
  a_.reset();  // closes the peer fd
  auto frame = b_->Recv(1000);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kUnavailable);
}

TEST_F(FramePairTest, TornFrameIsIOError) {
  std::string wire = EncodeFrame(FrameType::kPing, "");
  ASSERT_GT(wire.size(), 4u);
  // Send only part of the frame, then close.
  ASSERT_EQ(::send(a_->fd(), wire.data(), 5, MSG_NOSIGNAL), 5);
  a_.reset();
  auto frame = b_->Recv(1000);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kIOError);
}

TEST_F(FramePairTest, CorruptCrcIsIOError) {
  std::string wire = EncodeFrame(FrameType::kPing, "");
  wire[wire.size() - 1] ^= 0x01;  // flip a payload bit; CRC now lies
  ASSERT_EQ(::send(a_->fd(), wire.data(), wire.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(wire.size()));
  auto frame = b_->Recv(1000);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kIOError);
  EXPECT_NE(frame.status().message().find("CRC"), std::string::npos);
}

TEST_F(FramePairTest, OversizedLengthIsRejectedBeforeBuffering) {
  std::string header;
  durability::PutU32(kMaxFramePayloadBytes + 1, &header);
  durability::PutU32(0xdeadbeef, &header);
  ASSERT_EQ(::send(a_->fd(), header.data(), header.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(header.size()));
  auto frame = b_->Recv(1000);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kIOError);
  EXPECT_NE(frame.status().message().find("exceeds"), std::string::npos);
}

TEST_F(FramePairTest, EmptyPayloadIsRejected) {
  std::string header;
  durability::PutU32(0, &header);
  durability::PutU32(0, &header);
  ASSERT_EQ(::send(a_->fd(), header.data(), header.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(header.size()));
  auto frame = b_->Recv(1000);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kIOError);
}

// ---- Fuzzing a live server ------------------------------------------------

class ServerFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServerOptions options;
    options.port = 0;
    options.idle_timeout_ms = 500;
    auto server = Server::Start(std::move(options));
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(server).value();
  }

  /// Opens a raw TCP connection to the server under test.
  int RawConnect() {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(server_->port()));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    return fd;
  }

  /// Writes `bytes`, then asserts the server either answers a valid
  /// kError frame or closes cleanly — never hangs past the timeout,
  /// never crashes (the post-fuzz sanity check proves liveness).
  void ExpectErrorFrameOrClose(const std::string& bytes) {
    FrameSocket sock(RawConnect());
    if (!bytes.empty()) {
      ASSERT_EQ(::send(sock.fd(), bytes.data(), bytes.size(), MSG_NOSIGNAL),
                static_cast<ssize_t>(bytes.size()));
    }
    ::shutdown(sock.fd(), SHUT_WR);
    // Drain until close; every decodable frame on the way out must be a
    // well-formed kError.
    for (int i = 0; i < 8; ++i) {
      auto frame = sock.Recv(5000);
      if (!frame.ok()) {
        EXPECT_NE(frame.status().code(), StatusCode::kDeadlineExceeded)
            << "server went silent instead of answering or closing";
        return;  // closed — fine
      }
      EXPECT_EQ(frame->type, FrameType::kError);
      Status transported;
      EXPECT_TRUE(DecodeErrorBody(frame->body, &transported).ok());
      EXPECT_FALSE(transported.ok());
    }
    FAIL() << "server kept streaming frames at a fuzzer";
  }

  /// The server must still serve a well-behaved client.
  void ExpectServerAlive() {
    Client::Options options;
    options.port = server_->port();
    options.name = "liveness";
    auto client = Client::Connect(options);
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    EXPECT_TRUE((*client)->Ping().ok());
  }

  std::unique_ptr<Server> server_;
};

TEST_F(ServerFuzzTest, GarbageBytesGetErrorFrameOrClose) {
  std::mt19937 rng(20260806);
  for (int round = 0; round < 8; ++round) {
    std::string garbage(64 + round * 37, '\0');
    for (char& c : garbage) {
      c = static_cast<char>(rng() & 0xff);
    }
    ExpectErrorFrameOrClose(garbage);
  }
  ExpectServerAlive();
}

TEST_F(ServerFuzzTest, OversizedLengthPrefix) {
  std::string bytes;
  durability::PutU32(0xffffffffu, &bytes);
  durability::PutU32(0, &bytes);
  bytes += "trailing";
  ExpectErrorFrameOrClose(bytes);
  ExpectServerAlive();
}

TEST_F(ServerFuzzTest, TruncatedFrame) {
  std::string wire = EncodeFrame(FrameType::kHello, EncodeHelloBody("x"));
  ExpectErrorFrameOrClose(wire.substr(0, wire.size() / 2));
  ExpectServerAlive();
}

TEST_F(ServerFuzzTest, BadCrcFrame) {
  std::string wire = EncodeFrame(FrameType::kHello, EncodeHelloBody("x"));
  wire[wire.size() - 1] ^= 0x40;
  ExpectErrorFrameOrClose(wire);
  ExpectServerAlive();
}

TEST_F(ServerFuzzTest, ValidFrameOfWrongTypeBeforeHandshake) {
  ExpectErrorFrameOrClose(
      EncodeFrame(FrameType::kStatement, EncodeStatementBody("SELECT 1")));
  ExpectServerAlive();
}

TEST_F(ServerFuzzTest, EmptyPayloadFrame) {
  std::string bytes;
  durability::PutU32(0, &bytes);
  durability::PutU32(0, &bytes);
  ExpectErrorFrameOrClose(bytes);
  ExpectServerAlive();
}

TEST_F(ServerFuzzTest, ImmediateClose) {
  ExpectErrorFrameOrClose("");
  ExpectServerAlive();
}

TEST_F(ServerFuzzTest, TruncatedFramesAtEveryPrefixLength) {
  std::string wire = EncodeFrame(FrameType::kHello, EncodeHelloBody("fz"));
  for (size_t cut = 1; cut < wire.size(); cut += 3) {
    ExpectErrorFrameOrClose(wire.substr(0, cut));
  }
  ExpectServerAlive();
}

}  // namespace
}  // namespace server
}  // namespace erbium
