#ifndef ERBIUM_TESTS_MINI_JSON_H_
#define ERBIUM_TESTS_MINI_JSON_H_

// Minimal strict JSON parser for test assertions: validates that exporter
// output (MetricsRegistry::ToJson, ExportChromeTrace) is well-formed and
// lets tests pick values back out. Object member order is preserved so
// key-ordering guarantees can be asserted. Not for production use.

#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace erbium {
namespace testjson {

struct Node {
  enum class Kind { kObject, kArray, kString, kNumber, kBool, kNull };
  Kind kind = Kind::kNull;
  std::vector<std::pair<std::string, Node>> members;  // kObject, input order
  std::vector<Node> elements;                         // kArray
  std::string str;                                    // kString
  double number = 0;                                  // kNumber
  bool boolean = false;                               // kBool

  const Node* Find(const std::string& key) const {
    for (const auto& [k, v] : members) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  bool Parse(Node* out) {
    SkipWs();
    if (!ParseValue(out)) return false;
    SkipWs();
    return pos_ == s_.size() || Fail("trailing input");
  }

  std::string error() const {
    return error_ + " at offset " + std::to_string(pos_);
  }

 private:
  bool Fail(const char* msg) {
    if (error_.empty()) error_ = msg;
    return false;
  }

  void SkipWs() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseValue(Node* out) {
    SkipWs();
    if (pos_ >= s_.size()) return Fail("unexpected end");
    char c = s_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->kind = Node::Kind::kString;
      return ParseString(&out->str);
    }
    if (s_.compare(pos_, 4, "true") == 0) {
      out->kind = Node::Kind::kBool;
      out->boolean = true;
      pos_ += 4;
      return true;
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      out->kind = Node::Kind::kBool;
      out->boolean = false;
      pos_ += 5;
      return true;
    }
    if (s_.compare(pos_, 4, "null") == 0) {
      out->kind = Node::Kind::kNull;
      pos_ += 4;
      return true;
    }
    return ParseNumber(out);
  }

  bool ParseObject(Node* out) {
    out->kind = Node::Kind::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (Consume('}')) return true;
    while (true) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (!Consume(':')) return Fail("expected ':'");
      Node value;
      if (!ParseValue(&value)) return false;
      out->members.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) return true;
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(Node* out) {
    out->kind = Node::Kind::kArray;
    ++pos_;  // '['
    SkipWs();
    if (Consume(']')) return true;
    while (true) {
      Node value;
      if (!ParseValue(&value)) return false;
      out->elements.push_back(std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) return true;
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return Fail("expected '\"'");
    out->clear();
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control character in string");
      }
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= s_.size()) return Fail("dangling escape");
      char e = s_[pos_++];
      switch (e) {
        case '"':
          *out += '"';
          break;
        case '\\':
          *out += '\\';
          break;
        case '/':
          *out += '/';
          break;
        case 'n':
          *out += '\n';
          break;
        case 't':
          *out += '\t';
          break;
        case 'r':
          *out += '\r';
          break;
        case 'b':
          *out += '\b';
          break;
        case 'f':
          *out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return Fail("short \\u escape");
          unsigned value = 0;
          for (int i = 0; i < 4; ++i) {
            char h = s_[pos_++];
            value <<= 4;
            if (h >= '0' && h <= '9') {
              value += h - '0';
            } else if (h >= 'a' && h <= 'f') {
              value += h - 'a' + 10;
            } else if (h >= 'A' && h <= 'F') {
              value += h - 'A' + 10;
            } else {
              return Fail("bad \\u escape");
            }
          }
          // Tests only exercise ASCII escapes; anything else keeps a
          // placeholder.
          *out += value < 0x80 ? static_cast<char>(value) : '?';
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(Node* out) {
    size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           ((s_[pos_] >= '0' && s_[pos_] <= '9') || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' ||
            s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected value");
    std::string text = s_.substr(start, pos_ - start);
    char* end = nullptr;
    out->kind = Node::Kind::kNumber;
    out->number = std::strtod(text.c_str(), &end);
    if (end == nullptr || *end != '\0') return Fail("malformed number");
    return true;
  }

  const std::string& s_;
  size_t pos_ = 0;
  std::string error_;
};

inline bool ParseJson(const std::string& text, Node* out,
                      std::string* error = nullptr) {
  Parser parser(text);
  bool ok = parser.Parse(out);
  if (!ok && error != nullptr) *error = parser.error();
  return ok;
}

}  // namespace testjson
}  // namespace erbium

#endif  // ERBIUM_TESTS_MINI_JSON_H_
