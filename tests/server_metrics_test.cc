// Server observability integration tests: the live /metrics + /healthz
// HTTP endpoint served off the reactor's epoll loop, the statement
// lifecycle histograms (queue wait / execute / write stall / total),
// the server-timing footer round-tripping through Client::ExecuteBatch,
// and the per-statement invariant queue_wait + wall + write_stall <=
// server_total on QueryTelemetry records. The hammer test scrapes
// /metrics concurrently with eight pipelining clients and validates
// every exposition against the Prometheus text format. Runs under TSan
// in CI (the `server` label).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/telemetry.h"
#include "prom_testlib.h"
#include "server/client.h"
#include "server/server.h"

namespace erbium {
namespace server {
namespace {

ServerOptions Figure4ServerOptions() {
  ServerOptions options;
  options.port = 0;
  options.runner.figure4 = true;
  options.runner.figure4_num_r = 200;
  options.runner.figure4_num_s = 80;
  options.metrics_port = 0;  // ephemeral scrape endpoint
  return options;
}

Client::Options ClientFor(const Server& server, const std::string& name) {
  Client::Options options;
  options.port = server.port();
  options.name = name;
  return options;
}

/// One-shot HTTP exchange over a raw TCP socket: sends `request`
/// verbatim and reads until the server closes (the endpoint answers
/// every request with Connection: close). Returns the full response
/// text, empty on connect failure.
std::string MiniHttpExchange(int port, const std::string& request) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string MiniHttpGet(int port, const std::string& target) {
  return MiniHttpExchange(port,
                          "GET " + target + " HTTP/1.1\r\nHost: test\r\n\r\n");
}

/// "HTTP/1.1 200 OK\r\n..." -> 200; 0 when unparsable.
int StatusCodeOf(const std::string& response) {
  size_t space = response.find(' ');
  if (space == std::string::npos) return 0;
  return std::atoi(response.c_str() + space + 1);
}

std::string BodyOf(const std::string& response) {
  size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? "" : response.substr(split + 4);
}

TEST(ServerMetricsTest, EndpointDisabledByDefault) {
  auto server = Server::Start(ServerOptions{});
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  EXPECT_EQ((*server)->metrics_port(), -1);
  EXPECT_TRUE((*server)->Stop().ok());
}

TEST(ServerMetricsTest, ScrapeServesMetricsAndHealth) {
  auto server = Server::Start(Figure4ServerOptions());
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  int port = (*server)->metrics_port();
  ASSERT_GT(port, 0);

  // Run a pipelined batch first so every lifecycle histogram has
  // observations: queue_wait/execute stamp on the worker, write_stall/
  // total stamp when the response frame drains to the socket — all
  // before ExecuteBatch returns.
  auto client = Client::Connect(ClientFor(**server, "scrape"));
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto batch = (*client)->ExecuteBatch({
      "SELECT r_id FROM R WHERE r_id < 10",
      "SELECT s_id FROM S WHERE s_id < 30",
      "SHOW SESSIONS",
  });
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();

  std::string health = MiniHttpGet(port, "/healthz");
  EXPECT_EQ(StatusCodeOf(health), 200) << health;
  EXPECT_EQ(BodyOf(health), "ok\n");

  std::string scrape = MiniHttpGet(port, "/metrics");
  ASSERT_EQ(StatusCodeOf(scrape), 200) << scrape;
  EXPECT_NE(scrape.find("Content-Type: text/plain"), std::string::npos);
  EXPECT_NE(scrape.find("Connection: close"), std::string::npos);
  std::string body = BodyOf(scrape);
  obs::ValidatePrometheusText(body);

  // The three lifecycle histograms plus total, reactor health, and the
  // build/uptime/plan-cache gauges all appear in one scrape.
  for (const char* family : {
           "# TYPE erbium_server_queue_wait_us histogram",
           "# TYPE erbium_server_execute_us histogram",
           "# TYPE erbium_server_write_stall_us histogram",
           "# TYPE erbium_server_statement_total_us histogram",
           "# TYPE erbium_server_loop_lag_us histogram",
           "# TYPE erbium_server_loop_iteration_us histogram",
           "# TYPE erbium_server_pipeline_depth histogram",
           "# TYPE erbium_build_info gauge",
           "# TYPE erbium_server_uptime_seconds gauge",
           "# TYPE erbium_plan_cache_entries gauge",
           "# TYPE erbium_server_bytes_in counter",
           "# TYPE erbium_server_bytes_out counter",
           "# TYPE erbium_server_metrics_scrapes counter",
       }) {
    EXPECT_NE(body.find(family), std::string::npos) << family;
  }
  // Every pipelined statement flowed through the full lifecycle.
  EXPECT_NE(body.find("erbium_server_queue_wait_us_count"), std::string::npos);
  EXPECT_NE(body.find("erbium_build_info 1"), std::string::npos);

  // Unknown path, wrong method, and garbage each get an HTTP error
  // without disturbing the endpoint.
  EXPECT_EQ(StatusCodeOf(MiniHttpGet(port, "/nope")), 404);
  EXPECT_EQ(StatusCodeOf(MiniHttpExchange(
                port, "POST /metrics HTTP/1.1\r\nHost: test\r\n\r\n")),
            405);
  EXPECT_EQ(StatusCodeOf(MiniHttpExchange(port, "how is this http\r\n\r\n")),
            400);
  EXPECT_EQ(StatusCodeOf(MiniHttpGet(port, "/metrics")), 200);

  EXPECT_TRUE((*server)->Stop().ok());
}

TEST(ServerMetricsTest, ServerTimingFooterRoundTripsThroughBatch) {
  auto server = Server::Start(Figure4ServerOptions());
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  auto client = Client::Connect(ClientFor(**server, "timing"));
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  auto batch = (*client)->ExecuteBatch({
      "SELECT r_id FROM R WHERE r_id < 5",
      "SELECT nope FROM R",  // error: no footer on kErrorSeq frames
      "SELECT s_id FROM S WHERE s_id < 40",
  });
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->size(), 3u);

  EXPECT_TRUE((*batch)[0].status.ok());
  EXPECT_TRUE((*batch)[0].timing.present);
  EXPECT_FALSE((*batch)[1].status.ok());
  EXPECT_FALSE((*batch)[1].timing.present);
  EXPECT_TRUE((*batch)[2].status.ok());
  EXPECT_TRUE((*batch)[2].timing.present);

  // Sanity bounds: the server measured real time, not garbage. A
  // statement that takes a minute of queue wait in this test means the
  // footer decoded the wrong field.
  for (size_t i : {size_t{0}, size_t{2}}) {
    const auto& timing = (*batch)[i].timing;
    EXPECT_LT(timing.queue_wait_us, 60'000'000u) << i;
    EXPECT_LT(timing.execute_us, 60'000'000u) << i;
  }
  EXPECT_TRUE((*server)->Stop().ok());
}

TEST(ServerMetricsTest, LifecycleBreakdownBoundedByServerTotal) {
  auto server = Server::Start(Figure4ServerOptions());
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  auto client = Client::Connect(ClientFor(**server, "lifecycle-inv"));
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  constexpr int kStatements = 12;
  std::vector<std::string> statements;
  for (int i = 0; i < kStatements; ++i) {
    statements.push_back("SELECT r_id FROM R WHERE r_id < " +
                         std::to_string(20 + i));
  }
  auto batch = (*client)->ExecuteBatch(statements);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();

  // AnnotateWriteStall runs on the loop thread when the response frame
  // finishes draining to the socket — concurrently with the client
  // reading it — so poll briefly for the annotations to land.
  std::vector<obs::QueryRecord> mine;
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    mine.clear();
    for (const obs::QueryRecord& r : obs::QueryTelemetry::Global().Recent()) {
      if (r.session == "lifecycle-inv" && r.server_total_ns > 0) {
        mine.push_back(r);
      }
    }
    if (static_cast<int>(mine.size()) >= kStatements) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_GE(static_cast<int>(mine.size()), kStatements);

  // The breakdown is measured on one clock at four points (decode t0,
  // execute start t1, execute end t2, flush t3), and the engine's wall
  // window nests inside [t1, t2] — so the sum of the parts can never
  // exceed the server total.
  uint64_t max_queue_wait = 0;
  for (const obs::QueryRecord& r : mine) {
    max_queue_wait = std::max(max_queue_wait, r.queue_wait_ns);
    EXPECT_LE(r.queue_wait_ns + r.wall_ns + r.write_stall_ns,
              r.server_total_ns)
        << r.text;
  }
  EXPECT_GT(max_queue_wait, 0u);
  EXPECT_TRUE((*server)->Stop().ok());
}

TEST(ServerMetricsTest, ConcurrentScrapeUnderEightClientHammer) {
  auto server = Server::Start(Figure4ServerOptions());
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  int metrics_port = (*server)->metrics_port();
  ASSERT_GT(metrics_port, 0);

  constexpr int kClients = 8;
  constexpr int kBatchesPerClient = 12;
  constexpr int kScrapers = 2;
  constexpr int kScrapesEach = 10;

  std::atomic<int> statement_errors{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients + kScrapers);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto client =
          Client::Connect(ClientFor(**server, "hammer-" + std::to_string(c)));
      if (!client.ok()) {
        statement_errors.fetch_add(1);
        return;
      }
      for (int b = 0; b < kBatchesPerClient; ++b) {
        auto batch = (*client)->ExecuteBatch({
            "SELECT r_id FROM R WHERE r_id < " + std::to_string(10 + b),
            "SELECT s_id, s_a1 FROM S WHERE s_id < 25",
            "SELECT r_a1 FROM R WHERE r_id = " + std::to_string(1 + c),
            "SHOW METRICS LIKE 'server.*'",
        });
        if (!batch.ok()) {
          statement_errors.fetch_add(1);
          return;
        }
        for (const auto& item : *batch) {
          if (!item.status.ok() || !item.timing.present) {
            statement_errors.fetch_add(1);
          }
        }
      }
    });
  }

  // Scrapers collect raw responses; validation happens on the main
  // thread after join (gtest assertions are not thread-safe).
  std::vector<std::vector<std::string>> scrapes(kScrapers);
  for (int s = 0; s < kScrapers; ++s) {
    threads.emplace_back([&, s] {
      for (int i = 0; i < kScrapesEach; ++i) {
        scrapes[s].push_back(MiniHttpGet(metrics_port, "/metrics"));
        scrapes[s].push_back(MiniHttpGet(metrics_port, "/healthz"));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(statement_errors.load(), 0);
  for (const auto& per_thread : scrapes) {
    ASSERT_EQ(per_thread.size(), 2u * kScrapesEach);
    for (size_t i = 0; i < per_thread.size(); i += 2) {
      const std::string& metrics = per_thread[i];
      ASSERT_EQ(StatusCodeOf(metrics), 200);
      obs::ValidatePrometheusText(BodyOf(metrics));
      EXPECT_EQ(StatusCodeOf(per_thread[i + 1]), 200);
      EXPECT_EQ(BodyOf(per_thread[i + 1]), "ok\n");
    }
  }
  EXPECT_TRUE((*server)->Stop().ok());
}

}  // namespace
}  // namespace server
}  // namespace erbium
