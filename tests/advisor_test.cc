// Tests for the workload-aware mapping advisor: candidate enumeration
// over valid covers and empirical per-workload selection.

#include <gtest/gtest.h>

#include "mapping/advisor.h"
#include "workload/figure4.h"

namespace erbium {
namespace {

class AdvisorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = MakeFigure4Schema();
    ASSERT_TRUE(schema.ok());
    schema_ = std::make_shared<ERSchema>(std::move(schema).value());
  }

  std::shared_ptr<ERSchema> schema_;
};

TEST_F(AdvisorTest, EnumeratesOnlyValidCandidates) {
  std::vector<MappingSpec> candidates =
      MappingAdvisor::EnumerateCandidates(*schema_, 64);
  // mv(2) x hierarchy(3) x weak(2) = 12 base combos, plus factorized
  // variants for the eligible many-to-many relationships.
  EXPECT_GE(candidates.size(), 12u);
  for (const MappingSpec& spec : candidates) {
    EXPECT_TRUE(PhysicalMapping::Compile(schema_.get(), spec).ok())
        << spec.ToString();
  }
  // Cap respected.
  EXPECT_LE(MappingAdvisor::EnumerateCandidates(*schema_, 5).size(), 5u);
}

TEST_F(AdvisorTest, PicksWorkloadAppropriateMapping) {
  Figure4Config config;
  config.num_r = 400;
  config.num_s = 100;
  auto populate = [&config](MappedDatabase* db) {
    return PopulateFigure4(db, config);
  };

  // Workload A: dominated by point lookups of all three MV attrs — the
  // array mapping (M2-like) should win over separate side tables.
  Workload mv_heavy;
  for (int id : {10, 77, 140, 250, 333}) {
    mv_heavy.queries.push_back(
        {"SELECT r_id, r_mv1, r_mv2, r_mv3 FROM R WHERE r_id = " +
             std::to_string(id),
         1.0, "mv-point"});
  }
  std::vector<MappingSpec> candidates;
  {
    MappingSpec side = MappingSpec::Normalized("side_tables");
    MappingSpec arrays = MappingSpec::Normalized("arrays");
    arrays.default_multi_valued = MultiValuedStorage::kArray;
    candidates = {side, arrays};
  }
  auto advice = MappingAdvisor::Advise(schema_.get(), candidates, populate,
                                       mv_heavy, 3);
  ASSERT_TRUE(advice.ok()) << advice.status().ToString();
  EXPECT_EQ(advice->best().name, "arrays");
  ASSERT_EQ(advice->candidates.size(), 2u);
  EXPECT_TRUE(advice->candidates[0].valid);
  EXPECT_GT(advice->candidates[0].storage_bytes, 0u);
  EXPECT_EQ(advice->candidates[0].per_query_ms.size(),
            mv_heavy.queries.size());

  // Workload B: full scans of the leaf class with inherited attributes —
  // disjoint full-width tables (M4-like) should beat the 3-way join of
  // class tables.
  Workload hierarchy_heavy;
  hierarchy_heavy.queries.push_back(
      {"SELECT r_id, r_a1, r1_a1, r3_a1 FROM R3", 1.0, "leaf-scan"});
  {
    MappingSpec class_tables = MappingSpec::Normalized("class_tables");
    MappingSpec disjoint = MappingSpec::Normalized("disjoint");
    disjoint.hierarchy_overrides["R"] = HierarchyStorage::kDisjointTables;
    candidates = {class_tables, disjoint};
  }
  advice = MappingAdvisor::Advise(schema_.get(), candidates, populate,
                                  hierarchy_heavy, 3);
  ASSERT_TRUE(advice.ok());
  EXPECT_EQ(advice->best().name, "disjoint");
}

TEST_F(AdvisorTest, ReportsInvalidCandidates) {
  Figure4Config config;
  config.num_r = 50;
  config.num_s = 20;
  auto populate = [&config](MappedDatabase* db) {
    return PopulateFigure4(db, config);
  };
  MappingSpec ok_spec = MappingSpec::Normalized("ok");
  MappingSpec bad = MappingSpec::Normalized("bad");
  bad.relationship_overrides["RS"] = RelationshipStorage::kFactorized;
  Workload workload;
  workload.queries.push_back({"SELECT r_id FROM R", 1.0, "scan"});
  auto advice = MappingAdvisor::Advise(schema_.get(), {ok_spec, bad},
                                       populate, workload, 1);
  ASSERT_TRUE(advice.ok());
  EXPECT_EQ(advice->best().name, "ok");
  EXPECT_TRUE(advice->candidates[0].valid);
  EXPECT_FALSE(advice->candidates[1].valid);
  EXPECT_FALSE(advice->candidates[1].invalid_reason.empty());
}

}  // namespace
}  // namespace erbium
