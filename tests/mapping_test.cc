// Unit tests for PhysicalMapping: spec validation rules (the paper's
// constraints on valid covers), generated physical schemas, and graph
// covers for the six paper mappings.

#include <gtest/gtest.h>

#include "er/er_graph.h"
#include "mapping/database.h"
#include "mapping/physical_mapping.h"
#include "workload/figure4.h"

namespace erbium {
namespace {

class MappingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = MakeFigure4Schema();
    ASSERT_TRUE(schema.ok()) << schema.status().ToString();
    schema_ = std::make_shared<ERSchema>(std::move(schema).value());
  }

  std::shared_ptr<ERSchema> schema_;
};

TEST_F(MappingTest, M1GeneratesNormalizedTables) {
  auto mapping = PhysicalMapping::Compile(schema_.get(), Figure4M1());
  ASSERT_TRUE(mapping.ok()) << mapping.status().ToString();
  std::set<std::string> names;
  for (const TableSchema& t : mapping->tables()) names.insert(t.name());
  // Delta tables per class, side tables per MV attr, join tables, weak
  // tables.
  for (const char* expected :
       {"R", "R1", "R2", "R3", "R4", "S", "S1", "S2", "R_r_mv1", "R_r_mv2",
        "R_r_mv3", "RS", "R2S1"}) {
    EXPECT_TRUE(names.count(expected)) << expected;
  }
  // R1R3 is 1:N -> foreign key on R3, not a table.
  EXPECT_FALSE(names.count("R1R3"));
  const TableSchema* r3 = nullptr;
  for (const TableSchema& t : mapping->tables()) {
    if (t.name() == "R3") r3 = &t;
  }
  ASSERT_NE(r3, nullptr);
  EXPECT_GE(r3->ColumnIndex("R1R3_r_id"), 0);
}

TEST_F(MappingTest, M2InlinesArrays) {
  auto mapping = PhysicalMapping::Compile(schema_.get(), Figure4M2());
  ASSERT_TRUE(mapping.ok());
  const TableSchema* r = nullptr;
  for (const TableSchema& t : mapping->tables()) {
    if (t.name() == "R") r = &t;
  }
  ASSERT_NE(r, nullptr);
  int mv1 = r->ColumnIndex("r_mv1");
  ASSERT_GE(mv1, 0);
  EXPECT_EQ(r->column(mv1).type->kind(), TypeKind::kArray);
  for (const TableSchema& t : mapping->tables()) {
    EXPECT_NE(t.name(), "R_r_mv1");
  }
}

TEST_F(MappingTest, M3SingleTableWithDiscriminator) {
  auto mapping = PhysicalMapping::Compile(schema_.get(), Figure4M3());
  ASSERT_TRUE(mapping.ok());
  const TableSchema* r = nullptr;
  int class_tables = 0;
  for (const TableSchema& t : mapping->tables()) {
    if (t.name() == "R") r = &t;
    if (t.name() == "R1" || t.name() == "R2" || t.name() == "R3" ||
        t.name() == "R4") {
      ++class_tables;
    }
  }
  EXPECT_EQ(class_tables, 0);
  ASSERT_NE(r, nullptr);
  EXPECT_GE(r->ColumnIndex(PhysicalMapping::kTypeColumn), 0);
  EXPECT_GE(r->ColumnIndex("r3_a1"), 0);  // subclass attrs inlined nullable
  EXPECT_EQ(mapping->segment_location("R3"),
            SegmentLocation::kHierarchySingle);
  EXPECT_EQ(mapping->SegmentTableName("R3"), "R");
}

TEST_F(MappingTest, M4DisjointFullWidthTables) {
  auto mapping = PhysicalMapping::Compile(schema_.get(), Figure4M4());
  ASSERT_TRUE(mapping.ok());
  const TableSchema* r3 = nullptr;
  for (const TableSchema& t : mapping->tables()) {
    if (t.name() == "R3") r3 = &t;
  }
  ASSERT_NE(r3, nullptr);
  // Inherited attributes are materialized in the leaf table.
  EXPECT_GE(r3->ColumnIndex("r_a1"), 0);
  EXPECT_GE(r3->ColumnIndex("r1_a1"), 0);
  EXPECT_GE(r3->ColumnIndex("r3_a1"), 0);
  EXPECT_EQ(mapping->segment_location("R3"),
            SegmentLocation::kHierarchyDisjoint);
}

TEST_F(MappingTest, M5FoldsWeakEntities) {
  auto mapping = PhysicalMapping::Compile(schema_.get(), Figure4M5());
  ASSERT_TRUE(mapping.ok());
  const TableSchema* s = nullptr;
  for (const TableSchema& t : mapping->tables()) {
    EXPECT_NE(t.name(), "S1");
    EXPECT_NE(t.name(), "S2");
    if (t.name() == "S") s = &t;
  }
  ASSERT_NE(s, nullptr);
  int s1 = s->ColumnIndex("S1");
  ASSERT_GE(s1, 0);
  ASSERT_EQ(s->column(s1).type->kind(), TypeKind::kArray);
  EXPECT_EQ(s->column(s1).type->element_type()->kind(), TypeKind::kStruct);
  EXPECT_EQ(mapping->segment_location("S1"),
            SegmentLocation::kFoldedInOwner);
}

TEST_F(MappingTest, M6BuildsFactorizedPair) {
  auto mapping = PhysicalMapping::Compile(schema_.get(), Figure4M6());
  ASSERT_TRUE(mapping.ok());
  ASSERT_EQ(mapping->pairs().size(), 1u);
  const PhysicalMapping::PairDef& pair = mapping->pairs()[0];
  EXPECT_EQ(pair.name, "R2S1_pair");
  EXPECT_EQ(pair.relationship, "R2S1");
  // R2 and S1 own-segment tables disappear.
  for (const TableSchema& t : mapping->tables()) {
    EXPECT_NE(t.name(), "R2");
    EXPECT_NE(t.name(), "S1");
  }
  EXPECT_EQ(mapping->segment_location("R2"), SegmentLocation::kPairLeft);
  EXPECT_EQ(mapping->segment_location("S1"), SegmentLocation::kPairRight);
  EXPECT_EQ(mapping->SwallowingRelationship("R2"), "R2S1");
}

TEST_F(MappingTest, M6PgBuildsMaterializedJoinTable) {
  auto mapping = PhysicalMapping::Compile(schema_.get(), Figure4M6Pg());
  ASSERT_TRUE(mapping.ok());
  const TableSchema* joined = nullptr;
  for (const TableSchema& t : mapping->tables()) {
    if (t.name() == "R2S1_joined") joined = &t;
  }
  ASSERT_NE(joined, nullptr);
  EXPECT_GE(joined->ColumnIndex("R2_r_id"), 0);
  EXPECT_GE(joined->ColumnIndex("S1_s_id"), 0);
  EXPECT_GE(joined->ColumnIndex("R2_r2_a1"), 0);
  EXPECT_GE(joined->ColumnIndex("S1_s1_a1"), 0);
}

TEST_F(MappingTest, InvalidSpecsAreRejected) {
  // Single-table hierarchy requires disjoint specializations.
  {
    ERSchema overlapping = *schema_;
    overlapping.MutableEntitySet("R")->specialization.disjoint = false;
    MappingSpec spec = Figure4M3();
    EXPECT_FALSE(PhysicalMapping::Compile(&overlapping, spec).ok());
    // Class-table storage still works for overlapping hierarchies.
    EXPECT_TRUE(PhysicalMapping::Compile(&overlapping, Figure4M1()).ok());
  }
  // FK storage for a many-to-many relationship.
  {
    MappingSpec spec = MappingSpec::Normalized("bad");
    spec.relationship_overrides["RS"] = RelationshipStorage::kForeignKey;
    EXPECT_FALSE(PhysicalMapping::Compile(schema_.get(), spec).ok());
  }
  // Factorizing a relationship whose side has subclasses.
  {
    MappingSpec spec = MappingSpec::Normalized("bad");
    spec.relationship_overrides["RS"] = RelationshipStorage::kFactorized;
    EXPECT_FALSE(PhysicalMapping::Compile(schema_.get(), spec).ok());
  }
  // Folding a weak entity while also factorizing it.
  {
    MappingSpec spec = Figure4M6();
    spec.weak_overrides["S1"] = WeakEntityStorage::kFoldedArray;
    EXPECT_FALSE(PhysicalMapping::Compile(schema_.get(), spec).ok());
  }
  // Factorized relationships cannot carry attributes.
  {
    MappingSpec spec = MappingSpec::Normalized("bad");
    spec.relationship_overrides["RS"] = RelationshipStorage::kFactorized;
    ERSchema no_hierarchy;  // build a schema where RS sides are plain
    EXPECT_FALSE(PhysicalMapping::Compile(schema_.get(), spec).ok());
  }
}

TEST_F(MappingTest, CoversAreValidForAllMappings) {
  auto graph = ERGraph::Build(*schema_);
  ASSERT_TRUE(graph.ok());
  std::vector<MappingSpec> specs = Figure4AllMappings();
  specs.push_back(Figure4M6Pg());
  std::set<size_t> distinct_cover_sizes;
  for (const MappingSpec& spec : specs) {
    auto mapping = PhysicalMapping::Compile(schema_.get(), spec);
    ASSERT_TRUE(mapping.ok()) << spec.name;
    auto cover = mapping->Cover(*graph);
    ASSERT_TRUE(cover.ok()) << spec.name << ": " << cover.status().ToString();
    Status st = PhysicalMapping::ValidateCover(*graph, *cover);
    EXPECT_TRUE(st.ok()) << spec.name << ": " << st.ToString();
    distinct_cover_sizes.insert(cover->size());
  }
  // Different mappings genuinely produce different covers.
  EXPECT_GT(distinct_cover_sizes.size(), 2u);
}

TEST_F(MappingTest, CoverValidationDetectsViolations) {
  auto graph = ERGraph::Build(*schema_);
  ASSERT_TRUE(graph.ok());
  // A disconnected subgraph is rejected.
  std::vector<std::set<int>> bad_cover = {
      {graph->FindNode("R.r_a1"), graph->FindNode("S.s_a1")}};
  EXPECT_FALSE(
      PhysicalMapping::ValidateCover(*graph, bad_cover).ok());
  // Missing coverage is rejected.
  std::vector<std::set<int>> partial = {{graph->FindNode("R")}};
  EXPECT_FALSE(PhysicalMapping::ValidateCover(*graph, partial).ok());
}

TEST_F(MappingTest, SpecSerialization) {
  MappingSpec spec = Figure4M6();
  std::string json = spec.ToJson();
  EXPECT_NE(json.find("\"name\": \"M6\""), std::string::npos);
  EXPECT_NE(json.find("factorized"), std::string::npos);
  EXPECT_NE(spec.ToString().find("M6"), std::string::npos);
}

TEST_F(MappingTest, SpecJsonRoundTrips) {
  for (MappingSpec spec : {Figure4M1(), Figure4M2(), Figure4M3(),
                           Figure4M4(), Figure4M5(), Figure4M6(),
                           Figure4M6Pg()}) {
    spec.multi_valued_overrides["R.r_mv3"] = MultiValuedStorage::kArray;
    auto parsed = MappingSpec::FromJson(spec.ToJson());
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(parsed->ToJson(), spec.ToJson()) << spec.name;
  }
  EXPECT_FALSE(MappingSpec::FromJson("not json").ok());
  EXPECT_FALSE(MappingSpec::FromJson("{}").ok());
}

TEST_F(MappingTest, MappingPersistedInsideDatabase) {
  // Figure 3: the chosen mapping lives in a catalog table as JSON and
  // can be read back at initialization.
  auto db = MappedDatabase::Create(schema_.get(), Figure4M6());
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(
      (*db)->catalog().HasTable(MappedDatabase::kMappingCatalogTable));
  auto persisted = (*db)->LoadPersistedSpec();
  ASSERT_TRUE(persisted.ok()) << persisted.status().ToString();
  EXPECT_EQ(persisted->name, "M6");
  EXPECT_EQ(persisted->ToJson(), Figure4M6().ToJson());
}

}  // namespace
}  // namespace erbium
