#ifndef ERBIUM_TESTS_DURABILITY_TESTLIB_H_
#define ERBIUM_TESTS_DURABILITY_TESTLIB_H_

// Shared helpers for the durability tests: a mapping-independent logical
// state digest (to compare a recovered database against a serial oracle)
// and the deterministic operation script the fault-injection matrix
// replays.

#include <algorithm>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "exec/operator.h"
#include "mapping/database.h"

namespace erbium {
namespace durability_test {

/// Renders the full logical content of the database — every entity set
/// with all visible attributes, every relationship set — as a sorted,
/// mapping-independent string. Two databases hold the same logical state
/// iff their digests are equal, regardless of mapping or physical row
/// order.
inline Result<std::string> LogicalDigest(MappedDatabase* db) {
  std::string digest;
  const ERSchema& schema = db->schema();
  for (const std::string& entity : schema.EntitySetNames()) {
    ERBIUM_ASSIGN_OR_RETURN(std::vector<AttributeDef> attrs,
                            schema.AllAttributes(entity));
    ERBIUM_ASSIGN_OR_RETURN(std::vector<std::string> full_key,
                            schema.FullKey(entity));
    std::vector<std::string> names;
    for (const AttributeDef& attr : attrs) {
      if (std::find(full_key.begin(), full_key.end(), attr.name) ==
          full_key.end()) {
        names.push_back(attr.name);
      }
    }
    ERBIUM_ASSIGN_OR_RETURN(OperatorPtr scan, db->ScanEntity(entity, names));
    ERBIUM_ASSIGN_OR_RETURN(std::vector<Row> rows, CollectRows(scan.get()));
    std::vector<std::string> rendered;
    for (const Row& row : rows) {
      std::string line;
      for (const Value& v : row) {
        line += v.ToString();
        line += "|";
      }
      rendered.push_back(std::move(line));
    }
    std::sort(rendered.begin(), rendered.end());
    digest += "entity " + entity + "\n";
    for (const std::string& line : rendered) digest += "  " + line + "\n";
  }
  for (const std::string& rel : schema.RelationshipSetNames()) {
    ERBIUM_ASSIGN_OR_RETURN(OperatorPtr scan, db->ScanRelationship(rel));
    ERBIUM_ASSIGN_OR_RETURN(std::vector<Row> rows, CollectRows(scan.get()));
    std::vector<std::string> rendered;
    for (const Row& row : rows) {
      std::string line;
      for (const Value& v : row) {
        line += v.ToString();
        line += "|";
      }
      rendered.push_back(std::move(line));
    }
    std::sort(rendered.begin(), rendered.end());
    digest += "relationship " + rel + "\n";
    for (const std::string& line : rendered) digest += "  " + line + "\n";
  }
  return digest;
}

/// One logical write against a database. The fault tests apply the same
/// script to a durable database (crashing it mid-way) and to an in-memory
/// oracle (applying exactly the acknowledged prefix).
struct Op {
  std::string description;
  std::function<Status(MappedDatabase*)> apply;
};

inline Value MakeStruct(
    std::vector<std::pair<std::string, Value>> fields) {
  Value::StructData data;
  for (auto& [name, value] : fields) {
    data.emplace_back(name, std::move(value));
  }
  return Value::Struct(std::move(data));
}

/// A deterministic script touching every WAL record type the CRUD choke
/// points emit, and every storage variety of the Figure 4 schema: the R
/// hierarchy (plain R and subclasses), multi-valued attributes, weak
/// entities, a many-to-many relationship with attributes, the factorized
/// target R2S1, a 1:N foreign-key relationship, an attribute update, and
/// entity/relationship deletes (tombstones for checkpoint compaction).
inline std::vector<Op> FaultScript() {
  auto I = [](int64_t v) { return Value::Int64(v); };
  auto Str = [](const char* s) { return Value::String(s); };
  auto ints = [I](std::vector<int64_t> vs) {
    Value::ArrayData elements;
    for (int64_t v : vs) elements.push_back(I(v));
    return Value::Array(std::move(elements));
  };
  std::vector<Op> ops;
  auto r_entity = [&](int64_t id, int64_t a1) {
    return MakeStruct({{"r_id", I(id)},
                       {"r_a1", I(a1)},
                       {"r_a2", Value::Float64(1.5 * a1)},
                       {"r_a3", Str("r")},
                       {"r_a4", I(a1 % 7)},
                       {"r_mv1", ints({1, 2, 3})},
                       {"r_mv2", ints({})},
                       {"r_mv3", Value::Array({Str("x"), Str("y")})}});
  };
  ops.push_back({"insert S 1", [I, Str](MappedDatabase* db) {
                   return db->InsertEntity(
                       "S", MakeStruct({{"s_id", I(1)},
                                        {"s_a1", I(10)},
                                        {"s_a2", Str("s-one")}}));
                 }});
  ops.push_back({"insert S 2", [I, Str](MappedDatabase* db) {
                   return db->InsertEntity(
                       "S", MakeStruct({{"s_id", I(2)},
                                        {"s_a1", I(20)},
                                        {"s_a2", Str("s-two")}}));
                 }});
  ops.push_back({"insert R 1", [r_entity](MappedDatabase* db) {
                   return db->InsertEntity("R", r_entity(1, 100));
                 }});
  ops.push_back({"insert R2 2", [r_entity, I, Str](MappedDatabase* db) {
                   Value v = r_entity(2, 200);
                   Value::StructData fields = v.struct_fields();
                   fields.emplace_back("r2_a1", I(21));
                   fields.emplace_back("r2_a2", Str("two"));
                   return db->InsertEntity("R2",
                                           Value::Struct(std::move(fields)));
                 }});
  ops.push_back({"insert R1 5", [r_entity, I, Str](MappedDatabase* db) {
                   Value v = r_entity(5, 500);
                   Value::StructData fields = v.struct_fields();
                   fields.emplace_back("r1_a1", I(51));
                   fields.emplace_back("r1_a2", Str("five"));
                   return db->InsertEntity("R1",
                                           Value::Struct(std::move(fields)));
                 }});
  ops.push_back({"insert R3 4", [r_entity, I, Str](MappedDatabase* db) {
                   Value v = r_entity(4, 400);
                   Value::StructData fields = v.struct_fields();
                   fields.emplace_back("r1_a1", I(41));
                   fields.emplace_back("r1_a2", Str("four"));
                   fields.emplace_back("r3_a1", I(43));
                   fields.emplace_back("r3_a2", Value::Float64(4.25));
                   return db->InsertEntity("R3",
                                           Value::Struct(std::move(fields)));
                 }});
  ops.push_back({"insert S1 (1,1)", [I, Str](MappedDatabase* db) {
                   return db->InsertEntity(
                       "S1", MakeStruct({{"s_id", I(1)},
                                         {"s1_no", I(1)},
                                         {"s1_a1", I(11)},
                                         {"s1_a2", Str("weak")}}));
                 }});
  ops.push_back({"insert S2 (2,1)", [I](MappedDatabase* db) {
                   return db->InsertEntity(
                       "S2", MakeStruct({{"s_id", I(2)},
                                         {"s2_no", I(1)},
                                         {"s2_a1", Value::Float64(2.5)}}));
                 }});
  ops.push_back({"connect RS 1-1", [I](MappedDatabase* db) {
                   return db->InsertRelationship(
                       "RS", {I(1)}, {I(1)},
                       MakeStruct({{"rs_a1", I(7)}}));
                 }});
  ops.push_back({"connect RS 2-2", [I](MappedDatabase* db) {
                   return db->InsertRelationship(
                       "RS", {I(2)}, {I(2)},
                       MakeStruct({{"rs_a1", I(8)}}));
                 }});
  ops.push_back({"connect R2S1", [I](MappedDatabase* db) {
                   return db->InsertRelationship("R2S1", {I(2)}, {I(1), I(1)},
                                                 Value::Null());
                 }});
  ops.push_back({"connect R1R3", [I](MappedDatabase* db) {
                   return db->InsertRelationship("R1R3", {I(5)}, {I(4)},
                                                 Value::Null());
                 }});
  ops.push_back({"update R 1 r_a1", [I](MappedDatabase* db) {
                   return db->UpdateAttribute("R", {I(1)}, "r_a1", I(999));
                 }});
  ops.push_back({"insert R 9", [r_entity](MappedDatabase* db) {
                   return db->InsertEntity("R", r_entity(9, 900));
                 }});
  ops.push_back({"disconnect RS 2-2", [I](MappedDatabase* db) {
                   return db->DeleteRelationship("RS", {I(2)}, {I(2)});
                 }});
  ops.push_back({"delete R 9", [I](MappedDatabase* db) {
                   return db->DeleteEntity("R", {I(9)});
                 }});
  return ops;
}

}  // namespace durability_test
}  // namespace erbium

#endif  // ERBIUM_TESTS_DURABILITY_TESTLIB_H_
