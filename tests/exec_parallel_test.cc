// Property tests for morsel-driven parallel execution: every parallel
// plan must produce exactly the serial plan's multiset of rows, across
// thread counts and morsel sizes, and ORDER BY output must stay
// byte-deterministic. Run these under -DERBIUM_SANITIZE=thread as well.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <functional>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "erql/query_engine.h"
#include "exec/aggregate.h"
#include "exec/join.h"
#include "exec/parallel.h"
#include "exec/sort.h"
#include "storage/table.h"
#include "workload/figure4.h"

namespace erbium {
namespace {

// The serial-vs-parallel matrix required by the issue.
const int kThreadCounts[] = {1, 2, 8};
const size_t kMorselSizes[] = {1, 7, 2048};

ExecOptions Opts(int threads, size_t morsel) {
  ExecOptions opts;
  opts.num_threads = threads;
  opts.morsel_size = morsel;
  opts.parallel_row_threshold = 0;  // parallelize even tiny test tables
  return opts;
}

// Renders rows to sorted strings: equal multisets <=> equal vectors.
std::vector<std::string> Canonical(const std::vector<Row>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const Row& row : rows) {
    std::string s;
    for (const Value& v : row) {
      s += v.ToString();
      s += '|';
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Row> Drain(Operator* op) {
  auto rows = CollectRows(op);
  EXPECT_TRUE(rows.ok()) << rows.status().ToString();
  return rows.ok() ? std::move(*rows) : std::vector<Row>{};
}

// A table of (a, b, c) with every 13th row tombstoned, so morsels see
// dead slots. `b` repeats (join/group key), `c` is null every 7th row.
std::unique_ptr<Table> MakeTable(const std::string& name, int64_t n,
                                 int64_t key_mod) {
  auto table = std::make_unique<Table>(
      TableSchema(name,
                  {Column{"a", Type::Int64(), false},
                   Column{"b", Type::Int64(), true},
                   Column{"c", Type::Int64(), true}},
                  {}));
  std::vector<RowId> ids;
  for (int64_t i = 0; i < n; ++i) {
    Row row{Value::Int64(i), Value::Int64(i % key_mod),
            i % 7 == 0 ? Value::Null() : Value::Int64(i * 3 % 101)};
    auto id = table->Insert(std::move(row));
    EXPECT_TRUE(id.ok());
    ids.push_back(*id);
  }
  for (size_t i = 0; i < ids.size(); i += 13) {
    EXPECT_TRUE(table->Delete(ids[i]).ok());
  }
  return table;
}

// Builds serial + parallel variants of the same plan and checks multiset
// equality at every (threads, morsel) point, including a re-Open.
void CheckEquivalence(
    const std::function<OperatorPtr()>& make_serial_plan) {
  OperatorPtr reference = make_serial_plan();
  std::vector<std::string> expected = Canonical(Drain(reference.get()));
  for (int threads : kThreadCounts) {
    for (size_t morsel : kMorselSizes) {
      OperatorPtr plan =
          MaybeParallelGather(make_serial_plan(), Opts(threads, morsel));
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " morsel=" + std::to_string(morsel) + " plan:\n" +
                   PrintPlan(*plan));
      if (threads > 1) {
        EXPECT_NE(plan->name().find("Gather"), std::string::npos);
      }
      EXPECT_EQ(Canonical(Drain(plan.get())), expected);
      // Plans are re-runnable (benchmarks re-Open them).
      EXPECT_EQ(Canonical(Drain(plan.get())), expected);
    }
  }
}

// ---- ThreadPool -------------------------------------------------------------

TEST(ThreadPoolTest, RunsAllTasksAndGrows) {
  ThreadPool pool(2);
  pool.EnsureWorkers(8);
  EXPECT_GE(pool.num_workers(), 8);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.wait();
  EXPECT_EQ(counter.load(), 100);
}

// ---- Scans ------------------------------------------------------------------

TEST(ParallelExecTest, ScanEquivalence) {
  auto table = MakeTable("t", 500, 10);
  CheckEquivalence([&] { return std::make_unique<SeqScan>(table.get()); });
}

TEST(ParallelExecTest, FilteredProjectedScanEquivalence) {
  auto table = MakeTable("t", 611, 10);
  CheckEquivalence([&]() -> OperatorPtr {
    OperatorPtr plan = std::make_unique<SeqScan>(table.get());
    // a % 3 = 0
    ExprPtr pred = MakeCompare(
        CompareOp::kEq,
        MakeArithmetic(ArithmeticOp::kMod, MakeColumnRef(0, "a"),
                       MakeLiteral(Value::Int64(3))),
        MakeLiteral(Value::Int64(0)));
    plan = std::make_unique<FilterOp>(std::move(plan), std::move(pred));
    std::vector<Column> cols{Column{"a2", Type::Int64(), true},
                             Column{"b", Type::Int64(), true}};
    std::vector<ExprPtr> exprs{
        MakeArithmetic(ArithmeticOp::kMul, MakeColumnRef(0, "a"),
                       MakeLiteral(Value::Int64(2))),
        MakeColumnRef(1, "b")};
    return std::make_unique<ProjectOp>(std::move(plan), std::move(cols),
                                       std::move(exprs));
  });
}

TEST(ParallelExecTest, UnionAllEquivalence) {
  auto t1 = MakeTable("t1", 300, 10);
  auto t2 = MakeTable("t2", 177, 5);
  CheckEquivalence([&]() -> OperatorPtr {
    std::vector<OperatorPtr> children;
    children.push_back(std::make_unique<SeqScan>(t1.get()));
    children.push_back(std::make_unique<SeqScan>(t2.get()));
    return std::make_unique<UnionAllOp>(std::move(children));
  });
}

// ---- Hash joins -------------------------------------------------------------

void CheckJoinEquivalence(JoinType join_type) {
  // Partial key overlap: probe keys in [0, 20), build keys in [0, 12).
  auto probe = MakeTable("probe", 613, 20);
  auto build = MakeTable("build", 331, 12);
  CheckEquivalence([&]() -> OperatorPtr {
    std::vector<ExprPtr> left_keys{MakeColumnRef(1, "b")};
    std::vector<ExprPtr> right_keys{MakeColumnRef(1, "b")};
    return std::make_unique<HashJoinOp>(
        std::make_unique<SeqScan>(probe.get()),
        std::make_unique<SeqScan>(build.get()), std::move(left_keys),
        std::move(right_keys), join_type);
  });
}

TEST(ParallelExecTest, InnerHashJoinEquivalence) {
  CheckJoinEquivalence(JoinType::kInner);
}

TEST(ParallelExecTest, LeftOuterHashJoinEquivalence) {
  CheckJoinEquivalence(JoinType::kLeftOuter);
}

// Null join keys never match but left-outer must still emit them.
TEST(ParallelExecTest, JoinWithNullKeysEquivalence) {
  auto probe = MakeTable("probe", 401, 20);
  auto build = MakeTable("build", 223, 12);
  CheckEquivalence([&]() -> OperatorPtr {
    // Key column c is null every 7th row on both sides.
    std::vector<ExprPtr> left_keys{MakeColumnRef(2, "c")};
    std::vector<ExprPtr> right_keys{MakeColumnRef(2, "c")};
    return std::make_unique<HashJoinOp>(
        std::make_unique<SeqScan>(probe.get()),
        std::make_unique<SeqScan>(build.get()), std::move(left_keys),
        std::move(right_keys), JoinType::kLeftOuter);
  });
}

// ---- Aggregates -------------------------------------------------------------

TEST(ParallelExecTest, GroupedAggregateEquivalence) {
  auto table = MakeTable("t", 907, 10);
  std::vector<AggregateSpec> specs{
      {AggKind::kCountStar, nullptr, "n", false},
      {AggKind::kCount, MakeColumnRef(2, "c"), "nc", false},
      {AggKind::kSum, MakeColumnRef(0, "a"), "total", false},
      {AggKind::kAvg, MakeColumnRef(0, "a"), "mean", false},
      {AggKind::kMin, MakeColumnRef(2, "c"), "lo", false},
      {AggKind::kMax, MakeColumnRef(2, "c"), "hi", false},
      {AggKind::kCount, MakeColumnRef(2, "c"), "ndistinct", true},
  };
  auto make_aggregate = [&](const ExecOptions& opts) {
    std::vector<ExprPtr> group_exprs{MakeColumnRef(1, "b")};
    return MakeAggregatePlan(std::make_unique<SeqScan>(table.get()),
                             std::move(group_exprs), {"b"}, specs, opts);
  };
  OperatorPtr reference = make_aggregate(ExecOptions::Serial());
  std::vector<std::string> expected = Canonical(Drain(reference.get()));
  for (int threads : kThreadCounts) {
    for (size_t morsel : kMorselSizes) {
      OperatorPtr plan = make_aggregate(Opts(threads, morsel));
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " morsel=" + std::to_string(morsel));
      if (threads > 1) {
        EXPECT_NE(plan->name().find("ParallelHashAggregate"),
                  std::string::npos);
      }
      EXPECT_EQ(Canonical(Drain(plan.get())), expected);
      EXPECT_EQ(Canonical(Drain(plan.get())), expected);
    }
  }
}

TEST(ParallelExecTest, GlobalAggregateOverEmptyInputEmitsOneRow) {
  Table empty(TableSchema("e", {Column{"a", Type::Int64(), true}}, {}));
  std::vector<AggregateSpec> specs{
      {AggKind::kCountStar, nullptr, "n", false},
      {AggKind::kSum, MakeColumnRef(0, "a"), "total", false}};
  OperatorPtr plan = MakeAggregatePlan(std::make_unique<SeqScan>(&empty), {},
                                       {}, specs, Opts(8, 7));
  std::vector<Row> rows = Drain(plan.get());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::Int64(0));
  EXPECT_TRUE(rows[0][1].is_null());
}

// array_agg must refuse parallel aggregation (element order would depend
// on worker scheduling).
TEST(ParallelExecTest, ArrayAggStaysSerial) {
  auto table = MakeTable("t", 100, 10);
  std::vector<AggregateSpec> specs{
      {AggKind::kArrayAgg, MakeColumnRef(0, "a"), "vals", false}};
  std::vector<ExprPtr> group_exprs{MakeColumnRef(1, "b")};
  OperatorPtr plan =
      MakeAggregatePlan(std::make_unique<SeqScan>(table.get()),
                        std::move(group_exprs), {"b"}, specs, Opts(8, 7));
  EXPECT_EQ(plan->name().find("Parallel"), std::string::npos);
}

// ---- Determinism and lifecycle ---------------------------------------------

TEST(ParallelExecTest, OrderByIsByteDeterministicAcrossRuns) {
  auto table = MakeTable("t", 1000, 10);
  OperatorPtr plan = MaybeParallelGather(
      std::make_unique<SeqScan>(table.get()), Opts(8, 7));
  // Unique sort key (column a) => one total order.
  std::vector<SortKey> keys;
  keys.push_back(SortKey{MakeColumnRef(0, "a"), false});
  plan = std::make_unique<SortOp>(std::move(plan), std::move(keys));
  std::string first;
  for (int run = 0; run < 5; ++run) {
    std::vector<Row> rows = Drain(plan.get());
    std::string rendered;
    for (const Row& row : rows) {
      for (const Value& v : row) rendered += v.ToString() + "|";
      rendered += "\n";
    }
    if (run == 0) {
      first = std::move(rendered);
      EXPECT_FALSE(first.empty());
    } else {
      EXPECT_EQ(rendered, first) << "run " << run << " differed";
    }
  }
}

// A consumer may abandon a parallel plan mid-stream (LIMIT) and re-Open
// it; workers must be cancelled cleanly and the rerun must be complete.
TEST(ParallelExecTest, PartialDrainThenReopen) {
  auto table = MakeTable("t", 800, 10);
  auto make_scan = [&] { return std::make_unique<SeqScan>(table.get()); };
  OperatorPtr reference = make_scan();
  std::vector<std::string> expected = Canonical(Drain(reference.get()));
  OperatorPtr plan = MaybeParallelGather(make_scan(), Opts(8, 7));
  ASSERT_TRUE(plan->Open().ok());
  Row row;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(plan->Next(&row));
  }
  // Abandon and rerun.
  EXPECT_EQ(Canonical(Drain(plan.get())), expected);
}

// Destroying a partially-drained plan must not hang or leak workers.
TEST(ParallelExecTest, DestroyWhileWorkersActive) {
  auto table = MakeTable("t", 2000, 10);
  for (int i = 0; i < 10; ++i) {
    OperatorPtr plan = MaybeParallelGather(
        std::make_unique<SeqScan>(table.get()), Opts(8, 1));
    ASSERT_TRUE(plan->Open().ok());
    Row row;
    ASSERT_TRUE(plan->Next(&row));
  }
}

TEST(ParallelExecTest, SerialOptionsLeavePlanUntouched) {
  auto table = MakeTable("t", 500, 10);
  OperatorPtr plan = MaybeParallelGather(
      std::make_unique<SeqScan>(table.get()), ExecOptions::Serial());
  EXPECT_EQ(plan->name(), "SeqScan(t)");
  // Below the row threshold the plan also stays serial.
  ExecOptions opts = Opts(8, 2048);
  opts.parallel_row_threshold = 1000000;
  plan = MaybeParallelGather(std::make_unique<SeqScan>(table.get()), opts);
  EXPECT_EQ(plan->name(), "SeqScan(t)");
}

// ---- End-to-end through ERQL on the Figure 4 workload -----------------------

class ParallelErqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Figure4Config config;
    config.num_r = 400;
    config.num_s = 120;
    for (const MappingSpec& spec : {Figure4M1(), Figure4M2()}) {
      schemas_.emplace_back();
      auto db = MakeFigure4Database(spec, config, &schemas_.back());
      ASSERT_TRUE(db.ok()) << db.status().ToString();
      dbs_.push_back(std::move(*db));
    }
  }

  std::vector<std::shared_ptr<ERSchema>> schemas_;
  std::vector<std::unique_ptr<MappedDatabase>> dbs_;
};

TEST_F(ParallelErqlTest, SerialAndParallelResultsMatch) {
  const char* queries[] = {
      "SELECT r_id, r_a1 FROM R WHERE r_a1 < 500",
      "SELECT r_id, r_a1, r1_a1, r3_a1 FROM R3",
      "SELECT r_id, unnest(r_mv1) AS v FROM R",
      "SELECT r.r_id, s.s_id, rs_a1 FROM R r JOIN S s ON RS",
      "SELECT r_a4, count(*) AS n, sum(r_a1) AS total, min(r_a1) AS lo "
      "FROM R",
      "SELECT count(DISTINCT r_a4) AS n FROM R",
      "SELECT r_id, r_a1 FROM R WHERE r_a1 < 300 ORDER BY r_a1 DESC, r_id "
      "ASC",
      "SELECT DISTINCT r_a4 FROM R WHERE r_a4 < 5",
  };
  ExecOptions parallel = Opts(8, 64);
  for (auto& db : dbs_) {
    for (const char* query : queries) {
      SCOPED_TRACE(db->mapping().spec().name + ": " + query);
      auto serial =
          erql::QueryEngine::Execute(db.get(), query, ExecOptions::Serial());
      ASSERT_TRUE(serial.ok()) << serial.status().ToString();
      auto par = erql::QueryEngine::Execute(db.get(), query, parallel);
      ASSERT_TRUE(par.ok()) << par.status().ToString();
      EXPECT_EQ(serial->ToCanonicalString(), par->ToCanonicalString());
    }
  }
}

}  // namespace
}  // namespace erbium
