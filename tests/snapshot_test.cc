// MVCC snapshot-read tests: readers pin published immutable versions and
// never block behind writers, writers to unrelated entity sets run in
// parallel, and CHECKPOINT writes its snapshot without stalling reads or
// writes. These run under TSan in CI — the assertions matter, but so
// does the absence of reported races.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "api/statement_runner.h"
#include "durability/fault.h"

namespace erbium {
namespace {

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/erbium_snapshot_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// A runner attached to a fresh directory, with two *unrelated* entity
/// sets: A and B share no hierarchy, ownership, or relationship, so they
/// land in distinct writer lock domains and their insert streams may
/// interleave freely.
std::unique_ptr<api::StatementRunner> TwoSetRunner(
    const std::string& dir, durability::FaultInjector* faults) {
  api::StatementRunner::Options options;
  options.attach_dir = dir;
  options.faults = faults;
  auto runner = api::StatementRunner::Create(std::move(options));
  EXPECT_TRUE(runner.ok()) << runner.status().ToString();
  if (!runner.ok()) return nullptr;
  auto a = (*runner)->Execute("CREATE ENTITY A ( id INT KEY, a1 INT )");
  EXPECT_TRUE(a.ok()) << a.status().ToString();
  auto b = (*runner)->Execute("CREATE ENTITY B ( id INT KEY, b1 INT )");
  EXPECT_TRUE(b.ok()) << b.status().ToString();
  return std::move(runner).value();
}

/// N reader threads scanning while two writer streams insert and a
/// checkpointer snapshots every few milliseconds. Readers verify (a) the
/// row-level invariant a1 == 7 * id on every row of every scan — a torn
/// read of a half-applied insert would break it; (b) prefix consistency:
/// a scan sees at least every insert acknowledged before the scan began,
/// and per-thread scan sizes never shrink (insert-only workload). At the
/// end a serial oracle checks the exact final state.
TEST(SnapshotHammerTest, ReadersNeverBlockBehindWriters) {
  std::unique_ptr<api::StatementRunner> runner =
      TwoSetRunner(FreshDir("hammer"), nullptr);
  ASSERT_NE(runner, nullptr);

  constexpr int kInserts = 2000;
  constexpr int kReaders = 4;
  std::atomic<int> acked_a{0};
  std::atomic<int> acked_b{0};
  std::atomic<int> failures{0};
  std::atomic<bool> writers_done{false};

  std::thread writer_a([&] {
    for (int k = 0; k < kInserts; ++k) {
      auto r = runner->Execute("INSERT A (id = " + std::to_string(k) +
                               ", a1 = " + std::to_string(7 * k) + ")");
      if (!r.ok()) {
        ++failures;
        continue;
      }
      acked_a.store(k + 1, std::memory_order_release);
    }
  });
  std::thread writer_b([&] {
    for (int k = 0; k < kInserts; ++k) {
      auto r = runner->Execute("INSERT B (id = " + std::to_string(k) +
                               ", b1 = " + std::to_string(3 * k + 1) + ")");
      if (!r.ok()) {
        ++failures;
        continue;
      }
      acked_b.store(k + 1, std::memory_order_release);
    }
  });
  std::thread checkpointer([&] {
    while (!writers_done.load(std::memory_order_acquire)) {
      auto r = runner->Execute("CHECKPOINT");
      if (!r.ok()) ++failures;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      size_t last_a = 0;
      while (!writers_done.load(std::memory_order_acquire)) {
        int floor_a = acked_a.load(std::memory_order_acquire);
        auto rows = runner->Execute("SELECT id, a1 FROM A");
        if (!rows.ok()) {
          ++failures;
          continue;
        }
        if (rows->result.rows.size() < static_cast<size_t>(floor_a) ||
            rows->result.rows.size() < last_a) {
          ++failures;  // lost an acknowledged insert, or went backwards
        }
        last_a = rows->result.rows.size();
        for (const Row& row : rows->result.rows) {
          if (row[1].as_int64() != 7 * row[0].as_int64()) {
            ++failures;  // torn read: a1 inconsistent with id
          }
        }
      }
    });
  }

  writer_a.join();
  writer_b.join();
  writers_done.store(true, std::memory_order_release);
  checkpointer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Serial oracle: exactly the acknowledged rows, once each, on both
  // sets, with the invariant intact.
  for (const char* table : {"A", "B"}) {
    auto rows = runner->Execute(std::string("SELECT id FROM ") + table);
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    std::set<int64_t> got;
    for (const Row& row : rows->result.rows) got.insert(row[0].as_int64());
    EXPECT_EQ(got.size(), static_cast<size_t>(kInserts)) << table;
    EXPECT_EQ(rows->result.rows.size(), got.size())
        << "duplicate rows in " << table;
  }
}

/// Regression: a SELECT issued while CHECKPOINT is writing its snapshot
/// must complete without waiting for the write to finish. The fault
/// gate parks CHECKPOINT mid-write-phase (version pins taken, nothing on
/// disk yet); reads AND writes proceed, and the insert that happened
/// during the write phase survives reopen via the compacted WAL.
TEST(SnapshotCheckpointTest, SelectCompletesMidCheckpoint) {
  const std::string dir = FreshDir("mid_checkpoint");
  durability::FaultInjector faults;
  std::unique_ptr<api::StatementRunner> runner = TwoSetRunner(dir, &faults);
  ASSERT_NE(runner, nullptr);
  for (int k = 0; k < 50; ++k) {
    ASSERT_TRUE(runner
                    ->Execute("INSERT A (id = " + std::to_string(k) +
                              ", a1 = " + std::to_string(7 * k) + ")")
                    .ok());
  }

  faults.ArmGate("checkpoint.writing");
  std::thread checkpointer([&] {
    auto r = runner->Execute("CHECKPOINT");
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  });
  faults.WaitUntilBlocked();

  // The checkpoint thread is parked inside its write phase. Reads
  // complete now — before this change they queued behind CHECKPOINT's
  // exclusive lock for the whole snapshot write.
  auto start = std::chrono::steady_clock::now();
  auto rows = runner->Execute("SELECT id FROM A");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->result.rows.size(), 50u);
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::seconds(5));

  // Writes proceed too, and are read-your-writes visible.
  ASSERT_TRUE(runner->Execute("INSERT A (id = 1000, a1 = 7000)").ok());
  auto own = runner->Execute("SELECT a1 FROM A WHERE id = 1000");
  ASSERT_TRUE(own.ok());
  ASSERT_EQ(own->result.rows.size(), 1u);
  EXPECT_EQ(own->result.rows[0][0].as_int64(), 7000);

  faults.ReleaseGate();
  checkpointer.join();

  // The snapshot froze the pre-insert image; the concurrent insert lives
  // on in the compacted WAL and must survive reopen.
  runner.reset();
  api::StatementRunner::Options reopen;
  reopen.attach_dir = dir;
  auto reopened = api::StatementRunner::Create(std::move(reopen));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const auto& info = (*reopened)->durable()->recovery_info();
  EXPECT_TRUE(info.had_snapshot);
  EXPECT_EQ(info.records_replayed, 1u);  // exactly the mid-write INSERT
  auto all = (*reopened)->Execute("SELECT id FROM A");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->result.rows.size(), 51u);
}

}  // namespace
}  // namespace erbium
