// Generalization of the flagship equivalence property: not just the six
// paper mappings but EVERY candidate the advisor can enumerate for the
// Figure 4 schema must produce identical logical content and identical
// query results. This is the closest executable statement of the
// paper's Section 4 requirements (reversibility + well-defined CRUD)
// over the whole mapping search space.

#include <gtest/gtest.h>

#include "erql/query_engine.h"
#include "mapping/advisor.h"
#include "workload/figure4.h"

namespace erbium {
namespace {

const char* kProbes[] = {
    "SELECT r_id, r_a1, r_mv1 FROM R WHERE r_a4 < 40",
    "SELECT r_id, r1_a1, r3_a1 FROM R3",
    "SELECT s.s_id, s1.s1_no, s1.s1_a1 FROM S s JOIN S1 s1 ON S_S1",
    "SELECT r.r_id, s1.s_id, s1.s1_no FROM R2 r JOIN S1 s1 ON R2S1",
    "SELECT r_a4, count(*) AS n FROM R",
    "SELECT count(*) AS n FROM R2",
};

TEST(CandidateEquivalenceTest, AllEnumeratedMappingsAgree) {
  auto schema_result = MakeFigure4Schema();
  ASSERT_TRUE(schema_result.ok());
  auto schema =
      std::make_shared<ERSchema>(std::move(schema_result).value());
  std::vector<MappingSpec> candidates =
      MappingAdvisor::EnumerateCandidates(*schema, 64);
  ASSERT_GE(candidates.size(), 12u);

  Figure4Config config;
  config.num_r = 120;
  config.num_s = 40;

  std::map<std::string, std::string> baseline;
  size_t baseline_entities = 0;
  for (size_t i = 0; i < candidates.size(); ++i) {
    auto db = MappedDatabase::Create(schema.get(), candidates[i]);
    ASSERT_TRUE(db.ok()) << candidates[i].ToString() << ": "
                         << db.status().ToString();
    Status st = PopulateFigure4(db->get(), config);
    ASSERT_TRUE(st.ok()) << candidates[i].ToString() << ": "
                         << st.ToString();
    auto count = (*db)->CountEntities("R");
    ASSERT_TRUE(count.ok());
    if (i == 0) {
      baseline_entities = count.value();
    } else {
      EXPECT_EQ(count.value(), baseline_entities)
          << candidates[i].ToString();
    }
    for (const char* probe : kProbes) {
      auto result = erql::QueryEngine::Execute(db->get(), probe);
      ASSERT_TRUE(result.ok()) << candidates[i].ToString() << "\n"
                               << probe << "\n"
                               << result.status().ToString();
      std::string canonical = result->ToCanonicalString();
      if (i == 0) {
        baseline[probe] = std::move(canonical);
      } else {
        EXPECT_EQ(baseline[probe], canonical)
            << "mapping " << candidates[i].ToString()
            << " diverges on: " << probe;
      }
    }
  }
}

}  // namespace
}  // namespace erbium
