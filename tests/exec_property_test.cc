// Property-style sweeps over the execution engine with randomized (but
// seeded) inputs: algebraic invariants that must hold for any data —
// join strategy equivalence, filter/project commutation, sort
// idempotence, union cardinality, distinct idempotence, and
// hash/ordering consistency of Value.

#include <gtest/gtest.h>

#include <random>

#include "exec/aggregate.h"
#include "exec/join.h"
#include "exec/sort.h"

namespace erbium {
namespace {

std::vector<Column> Cols(std::initializer_list<const char*> names) {
  std::vector<Column> cols;
  for (const char* name : names) {
    cols.push_back(Column{name, Type::Null(), true});
  }
  return cols;
}

std::vector<Row> RandomRows(uint64_t seed, size_t n, int64_t key_domain) {
  std::mt19937_64 rng(seed);
  std::vector<Row> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Row row;
    // A key with collisions, a nullable value, and a string.
    row.push_back(Value::Int64(static_cast<int64_t>(rng() % key_domain)));
    row.push_back(rng() % 5 == 0
                      ? Value::Null()
                      : Value::Int64(static_cast<int64_t>(rng() % 100)));
    row.push_back(Value::String("s" + std::to_string(rng() % 7)));
    rows.push_back(std::move(row));
  }
  return rows;
}

std::multiset<std::string> Render(const std::vector<Row>& rows) {
  std::multiset<std::string> out;
  for (const Row& row : rows) {
    std::string line;
    for (const Value& v : row) line += v.ToString() + "|";
    out.insert(std::move(line));
  }
  return out;
}

class SeededProperty : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u));

TEST_P(SeededProperty, HashJoinEqualsNestedLoopJoin) {
  std::vector<Row> left = RandomRows(GetParam(), 60, 12);
  std::vector<Row> right = RandomRows(GetParam() + 1000, 40, 12);
  auto make_left = [&] {
    return std::make_unique<ValuesOp>(Cols({"a", "b", "c"}), left);
  };
  auto make_right = [&] {
    return std::make_unique<ValuesOp>(Cols({"x", "y", "z"}), right);
  };
  HashJoinOp hash_join(make_left(), make_right(),
                       {MakeColumnRef(0, "a")}, {MakeColumnRef(0, "x")});
  NestedLoopJoinOp nl_join(
      make_left(), make_right(),
      MakeCompare(CompareOp::kEq, MakeColumnRef(0, "a"),
                  MakeColumnRef(3, "x")));
  auto hash_rows = CollectRows(&hash_join);
  auto nl_rows = CollectRows(&nl_join);
  ASSERT_TRUE(hash_rows.ok());
  ASSERT_TRUE(nl_rows.ok());
  EXPECT_EQ(Render(*hash_rows), Render(*nl_rows));
}

TEST_P(SeededProperty, IndexJoinEqualsHashJoinAgainstTable) {
  std::vector<Row> probes = RandomRows(GetParam(), 50, 30);
  Table table(TableSchema("t", {Column{"k", Type::Int64(), false},
                                Column{"v", Type::Int64(), true}},
                          {0}));
  ASSERT_TRUE(table.CreateIndex("pk", {"k"}, true).ok());
  for (int64_t k = 0; k < 30; k += 2) {  // only even keys exist
    ASSERT_TRUE(table.Insert({Value::Int64(k), Value::Int64(k * 7)}).ok());
  }
  auto make_probe = [&] {
    return std::make_unique<ValuesOp>(Cols({"a", "b", "c"}), probes);
  };
  for (JoinType type : {JoinType::kInner, JoinType::kLeftOuter}) {
    IndexJoinOp index_join(make_probe(), &table, {MakeColumnRef(0, "a")},
                           {0}, type);
    HashJoinOp hash_join(make_probe(), std::make_unique<SeqScan>(&table),
                         {MakeColumnRef(0, "a")}, {MakeColumnRef(0, "k")},
                         type);
    auto via_index = CollectRows(&index_join);
    auto via_hash = CollectRows(&hash_join);
    ASSERT_TRUE(via_index.ok());
    ASSERT_TRUE(via_hash.ok());
    EXPECT_EQ(Render(*via_index), Render(*via_hash));
  }
}

TEST_P(SeededProperty, FilterProjectCommute) {
  std::vector<Row> rows = RandomRows(GetParam(), 80, 20);
  ExprPtr predicate = MakeCompare(CompareOp::kLt, MakeColumnRef(0, "a"),
                                  MakeLiteral(Value::Int64(10)));
  // filter -> project
  OperatorPtr fp = std::make_unique<ProjectOp>(
      std::make_unique<FilterOp>(
          std::make_unique<ValuesOp>(Cols({"a", "b", "c"}), rows),
          predicate),
      Cols({"a", "c"}),
      std::vector<ExprPtr>{MakeColumnRef(0, "a"), MakeColumnRef(2, "c")});
  // project (keeping the filter column) -> filter
  OperatorPtr pf = std::make_unique<FilterOp>(
      std::make_unique<ProjectOp>(
          std::make_unique<ValuesOp>(Cols({"a", "b", "c"}), rows),
          Cols({"a", "c"}),
          std::vector<ExprPtr>{MakeColumnRef(0, "a"),
                               MakeColumnRef(2, "c")}),
      MakeCompare(CompareOp::kLt, MakeColumnRef(0, "a"),
                  MakeLiteral(Value::Int64(10))));
  auto a = CollectRows(fp.get());
  auto b = CollectRows(pf.get());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(Render(*a), Render(*b));
}

TEST_P(SeededProperty, SortIsIdempotentAndTotal) {
  std::vector<Row> rows = RandomRows(GetParam(), 70, 15);
  auto sort_once = [&](std::vector<Row> input) {
    SortOp sort(std::make_unique<ValuesOp>(Cols({"a", "b", "c"}), input),
                {{MakeColumnRef(0, "a"), true},
                 {MakeColumnRef(1, "b"), false},
                 {MakeColumnRef(2, "c"), true}});
    return CollectRows(&sort).value();
  };
  std::vector<Row> once = sort_once(rows);
  std::vector<Row> twice = sort_once(once);
  ASSERT_EQ(once.size(), twice.size());
  for (size_t i = 0; i < once.size(); ++i) {
    EXPECT_EQ(once[i], twice[i]) << i;
  }
  // Verify the order is actually non-decreasing on the first key.
  for (size_t i = 0; i + 1 < once.size(); ++i) {
    EXPECT_LE(once[i][0].Compare(once[i + 1][0]), 0);
  }
}

TEST_P(SeededProperty, UnionAllCardinalityAndDistinctIdempotence) {
  std::vector<Row> a = RandomRows(GetParam(), 33, 6);
  std::vector<Row> b = RandomRows(GetParam() + 5, 21, 6);
  std::vector<OperatorPtr> children;
  children.push_back(
      std::make_unique<ValuesOp>(Cols({"a", "b", "c"}), a));
  children.push_back(
      std::make_unique<ValuesOp>(Cols({"a", "b", "c"}), b));
  UnionAllOp union_all(std::move(children));
  auto rows = CollectRows(&union_all);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), a.size() + b.size());

  DistinctOp distinct1(
      std::make_unique<ValuesOp>(Cols({"a", "b", "c"}), *rows));
  auto once = CollectRows(&distinct1);
  ASSERT_TRUE(once.ok());
  DistinctOp distinct2(
      std::make_unique<ValuesOp>(Cols({"a", "b", "c"}), *once));
  auto twice = CollectRows(&distinct2);
  ASSERT_TRUE(twice.ok());
  EXPECT_EQ(Render(*once), Render(*twice));
  EXPECT_LE(once->size(), rows->size());
}

TEST_P(SeededProperty, GroupedCountsSumToTotal) {
  std::vector<Row> rows = RandomRows(GetParam(), 90, 9);
  std::vector<AggregateSpec> aggs;
  aggs.push_back({AggKind::kCountStar, nullptr, "n", false});
  HashAggregateOp agg(
      std::make_unique<ValuesOp>(Cols({"a", "b", "c"}), rows),
      {MakeColumnRef(0, "a")}, {"a"}, std::move(aggs));
  auto groups = CollectRows(&agg);
  ASSERT_TRUE(groups.ok());
  int64_t total = 0;
  for (const Row& group : *groups) total += group[1].as_int64();
  EXPECT_EQ(total, static_cast<int64_t>(rows.size()));
}

TEST_P(SeededProperty, ValueHashConsistentWithEquality) {
  std::mt19937_64 rng(GetParam());
  std::vector<Value> values;
  for (int i = 0; i < 200; ++i) {
    switch (rng() % 5) {
      case 0:
        values.push_back(Value::Int64(static_cast<int64_t>(rng() % 20)));
        break;
      case 1:
        values.push_back(Value::Float64(static_cast<double>(rng() % 20)));
        break;
      case 2:
        values.push_back(Value::String("v" + std::to_string(rng() % 10)));
        break;
      case 3:
        values.push_back(Value::Array(
            {Value::Int64(static_cast<int64_t>(rng() % 3)),
             Value::Int64(static_cast<int64_t>(rng() % 3))}));
        break;
      default:
        values.push_back(Value::Null());
    }
  }
  for (const Value& a : values) {
    for (const Value& b : values) {
      if (a == b) {
        EXPECT_EQ(a.Hash(), b.Hash())
            << a.ToString() << " vs " << b.ToString();
        EXPECT_EQ(b, a);
      }
      // Compare is antisymmetric (a consistent total order).
      auto sign = [](int c) { return c < 0 ? -1 : (c > 0 ? 1 : 0); };
      EXPECT_EQ(sign(a.Compare(b)), -sign(b.Compare(a)))
          << a.ToString() << " vs " << b.ToString();
    }
  }
}

}  // namespace
}  // namespace erbium
