// Plan-cache tests: normalization, LRU + checkout/check-in mechanics,
// and — the part that matters — invalidation. A cached SELECT must stay
// correct across every event that rebuilds the physical tables under it
// (REMAP m1→m6, DDL, ATTACH recovery), including while readers hammer
// the cache concurrently with remaps.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/statement_runner.h"
#include "erql/plan_cache.h"
#include "obs/metrics.h"

namespace erbium {
namespace erql {
namespace {

uint64_t Hits() {
  return obs::MetricsRegistry::Global().counter("plan_cache.hits").Value();
}
uint64_t Misses() {
  return obs::MetricsRegistry::Global().counter("plan_cache.misses").Value();
}

// ---- Normalization --------------------------------------------------------

TEST(PlanCacheNormalizeTest, CollapsesWhitespaceAndTrailingSemicolon) {
  EXPECT_EQ(PlanCache::NormalizeStatement("SELECT r_id FROM R"),
            PlanCache::NormalizeStatement("  SELECT\t r_id \n FROM  R ; "));
}

TEST(PlanCacheNormalizeTest, QuotedStringsKeepTheirWhitespace) {
  std::string a = PlanCache::NormalizeStatement("SELECT 'a  b' FROM R");
  std::string b = PlanCache::NormalizeStatement("SELECT 'a b' FROM R");
  EXPECT_NE(a, b);
  EXPECT_NE(a.find("'a  b'"), std::string::npos);
}

TEST(PlanCacheNormalizeTest, LiteralsStaySignificant) {
  EXPECT_NE(PlanCache::NormalizeStatement("SELECT r_id FROM R WHERE r_id = 1"),
            PlanCache::NormalizeStatement("SELECT r_id FROM R WHERE r_id = 2"));
}

// ---- Checkout / check-in mechanics ----------------------------------------

TEST(PlanCacheTest, CheckoutIsExclusive) {
  PlanCache cache(4);
  cache.CheckIn("k", 1, std::make_unique<CompiledQuery>());
  EXPECT_EQ(cache.size(), 1u);
  auto plan = cache.Checkout("k", 1);
  ASSERT_NE(plan, nullptr);
  // The instance left the cache: a concurrent reader of the same
  // statement misses instead of sharing an operator tree.
  EXPECT_EQ(cache.Checkout("k", 1), nullptr);
  cache.CheckIn("k", 1, std::move(plan));
  EXPECT_NE(cache.Checkout("k", 1), nullptr);
}

TEST(PlanCacheTest, PerKeyPoolDeepensUpToLimit) {
  PlanCache cache(4);
  for (size_t i = 0; i < PlanCache::kPlansPerKey + 3; ++i) {
    cache.CheckIn("k", 1, std::make_unique<CompiledQuery>());
  }
  size_t got = 0;
  while (cache.Checkout("k", 1) != nullptr) ++got;
  EXPECT_EQ(got, PlanCache::kPlansPerKey);
}

TEST(PlanCacheTest, LruEvictsTheColdestKey) {
  PlanCache cache(2);
  cache.CheckIn("a", 1, std::make_unique<CompiledQuery>());
  cache.CheckIn("b", 1, std::make_unique<CompiledQuery>());
  // Touch "a" so "b" is the coldest, then insert "c".
  auto a = cache.Checkout("a", 1);
  ASSERT_NE(a, nullptr);
  cache.CheckIn("a", 1, std::move(a));
  cache.CheckIn("c", 1, std::make_unique<CompiledQuery>());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.Checkout("b", 1), nullptr);
  EXPECT_NE(cache.Checkout("a", 1), nullptr);
  EXPECT_NE(cache.Checkout("c", 1), nullptr);
}

TEST(PlanCacheTest, StaleGenerationNeverServes) {
  PlanCache cache(4);
  cache.CheckIn("k", 1, std::make_unique<CompiledQuery>());
  EXPECT_EQ(cache.Checkout("k", 2), nullptr);  // purged on sight
  EXPECT_EQ(cache.size(), 0u);
  // A check-in from a reader that raced a generation bump is dropped.
  cache.CheckIn("k", 1, std::make_unique<CompiledQuery>());
  cache.InvalidateBelow(2);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Checkout("k", 1), nullptr);
}

TEST(PlanCacheTest, ZeroIsHandledByOwnerNotCache) {
  // StatementRunner with plan_cache_capacity = 0 simply has no cache.
  api::StatementRunner::Options options;
  options.figure4 = true;
  options.figure4_num_r = 10;
  options.figure4_num_s = 5;
  options.plan_cache_capacity = 0;
  auto runner = api::StatementRunner::Create(std::move(options));
  ASSERT_TRUE(runner.ok()) << runner.status().ToString();
  EXPECT_EQ((*runner)->plan_cache(), nullptr);
  EXPECT_TRUE((*runner)->Execute("SELECT r_id FROM R WHERE r_id = 1").ok());
}

// ---- Runner integration: correctness across invalidation events -----------

class PlanCacheRunnerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    api::StatementRunner::Options options;
    options.figure4 = true;
    options.figure4_num_r = 60;
    options.figure4_num_s = 30;
    auto runner = api::StatementRunner::Create(std::move(options));
    ASSERT_TRUE(runner.ok()) << runner.status().ToString();
    runner_ = std::move(runner).value();
  }

  size_t RowCount(const std::string& statement) {
    auto outcome = runner_->Execute(statement);
    EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
    return outcome.ok() ? outcome->result.rows.size() : static_cast<size_t>(-1);
  }

  std::unique_ptr<api::StatementRunner> runner_;
};

TEST_F(PlanCacheRunnerTest, RepeatedSelectHitsTheCache) {
  const std::string q = "SELECT r_id, r_a1 FROM R WHERE r_id < 10";
  uint64_t hits_before = Hits();
  size_t first = RowCount(q);
  // Formatting variants share the entry through normalization.
  size_t second = RowCount("  SELECT r_id,  r_a1 FROM R  WHERE r_id < 10 ;");
  size_t third = RowCount(q);
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, third);
  EXPECT_GE(Hits(), hits_before + 2);
}

TEST_F(PlanCacheRunnerTest, CachedSelectSurvivesRemapM1ToM6) {
  const std::string q = "SELECT r_id, r_a1 FROM R WHERE r_id < 25";
  const size_t expected = RowCount(q);
  uint64_t gen = runner_->mapping_generation();
  for (const char* preset : {"m2", "m3", "m4", "m5", "m6", "m1"}) {
    RowCount(q);  // make sure a plan for the *old* mapping is cached
    ASSERT_TRUE(runner_->Execute(std::string("REMAP ") + preset).ok());
    EXPECT_GT(runner_->mapping_generation(), gen);
    gen = runner_->mapping_generation();
    // The remap dangled every cached plan; this must recompile, not
    // execute a plan bound to freed tables.
    EXPECT_EQ(RowCount(q), expected) << "after REMAP " << preset;
    EXPECT_EQ(RowCount(q), expected) << "cached re-read after " << preset;
  }
}

TEST_F(PlanCacheRunnerTest, DdlInvalidatesCachedPlans) {
  const std::string q = "SELECT r_id FROM R WHERE r_id < 25";
  size_t expected = RowCount(q);
  RowCount(q);  // cached now
  uint64_t gen = runner_->mapping_generation();
  ASSERT_TRUE(
      runner_->Execute("CREATE ENTITY Widget (w_id INT KEY, w_name STRING)")
          .ok());
  EXPECT_GT(runner_->mapping_generation(), gen);
  EXPECT_EQ(RowCount(q), expected);
  ASSERT_TRUE(runner_->Execute("INSERT Widget (w_id = 1, w_name = 'x')").ok());
  EXPECT_EQ(RowCount("SELECT w_id FROM Widget"), 1u);
}

TEST_F(PlanCacheRunnerTest, AttachInvalidatesCachedPlans) {
  const std::string q = "SELECT r_id FROM R WHERE r_id < 25";
  size_t expected = RowCount(q);
  RowCount(q);  // cached against the in-memory database
  uint64_t gen = runner_->mapping_generation();
  std::string dir = ::testing::TempDir() + "/erbium_plan_cache_attach";
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(runner_->Execute("ATTACH DATABASE '" + dir + "'").ok());
  EXPECT_GT(runner_->mapping_generation(), gen);
  // The database object was replaced wholesale; a cached plan would
  // read freed memory. (The attach starts empty of figure4 data only
  // if DDL didn't replay — either way the count must be consistent
  // with a fresh compile.)
  EXPECT_EQ(RowCount(q), RowCount(q));
  (void)expected;
}

TEST_F(PlanCacheRunnerTest, InsertIsVisibleThroughACachedPlan) {
  const std::string q = "SELECT r_id FROM R WHERE r_id >= 90000";
  EXPECT_EQ(RowCount(q), 0u);
  ASSERT_TRUE(
      runner_
          ->Execute(
              "INSERT R (r_id = 90001, r_a1 = 7, r_a2 = 0.5, r_a3 = 'n', "
              "r_a4 = 2)")
          .ok());
  // Same generation — the cached plan is reused, and re-opening it must
  // observe the new row (plans bind tables, not snapshots).
  EXPECT_EQ(RowCount(q), 1u);
}

// ---- Concurrency: readers hammer the cache while remaps invalidate --------

TEST(PlanCacheHammerTest, ConcurrentReadersSurviveRemapStorm) {
  api::StatementRunner::Options options;
  options.figure4 = true;
  options.figure4_num_r = 40;
  options.figure4_num_s = 20;
  auto created = api::StatementRunner::Create(std::move(options));
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  api::StatementRunner* runner = created->get();

  const std::string queries[] = {
      "SELECT r_id, r_a1 FROM R WHERE r_id < 15",
      "SELECT r_id FROM R WHERE r_id < 15",
      "SELECT s_id FROM S WHERE s_id < 9",
  };
  const size_t expected[] = {14, 14, 8};

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      // The periodic sleep matters: glibc's rwlock is reader-preferring,
      // so readers spinning without a gap would starve the REMAP writer
      // forever on a single core. The cap bounds the test regardless.
      for (int i = 0; i < 200'000 && !stop.load(std::memory_order_relaxed);
           ++i) {
        if (i % 16 == 15) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        size_t pick = static_cast<size_t>(t + i) % 3;
        auto outcome = runner->Execute(queries[pick]);
        if (!outcome.ok() ||
            outcome->result.rows.size() != expected[pick]) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (int round = 0; round < 6; ++round) {
    for (const char* preset : {"m2", "m5", "m6", "m3", "m1"}) {
      ASSERT_TRUE(runner->RemapPreset(preset).ok());
    }
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace erql
}  // namespace erbium
