// Unit tests for expressions and the volcano operators.

#include <gtest/gtest.h>

#include "exec/aggregate.h"
#include "exec/join.h"
#include "exec/sort.h"
#include "storage/table.h"

namespace erbium {
namespace {

OperatorPtr MakeValues(std::vector<Column> cols, std::vector<Row> rows) {
  return std::make_unique<ValuesOp>(std::move(cols), std::move(rows));
}

std::vector<Column> IntCols(std::initializer_list<const char*> names) {
  std::vector<Column> cols;
  for (const char* name : names) {
    cols.push_back(Column{name, Type::Int64(), true});
  }
  return cols;
}

Row IntRow(std::initializer_list<int64_t> values) {
  Row row;
  for (int64_t v : values) row.push_back(Value::Int64(v));
  return row;
}

// ---- Expressions ------------------------------------------------------------

TEST(ExprTest, CompareThreeValuedLogic) {
  Row row{Value::Int64(5), Value::Null()};
  ExprPtr col0 = MakeColumnRef(0, "a");
  ExprPtr col1 = MakeColumnRef(1, "b");
  EXPECT_EQ(MakeCompare(CompareOp::kLt, col0, MakeLiteral(Value::Int64(9)))
                ->Eval(row),
            Value::Bool(true));
  // Comparison with null -> null.
  EXPECT_TRUE(MakeCompare(CompareOp::kEq, col0, col1)->Eval(row).is_null());
  // Cross-kind numeric comparison.
  EXPECT_EQ(MakeCompare(CompareOp::kEq, col0,
                        MakeLiteral(Value::Float64(5.0)))
                ->Eval(row),
            Value::Bool(true));
  // Incomparable kinds -> null.
  EXPECT_TRUE(MakeCompare(CompareOp::kEq, col0,
                          MakeLiteral(Value::String("x")))
                  ->Eval(row)
                  .is_null());
}

TEST(ExprTest, LogicalShortCircuitWithNulls) {
  Row row;
  ExprPtr t = MakeLiteral(Value::Bool(true));
  ExprPtr f = MakeLiteral(Value::Bool(false));
  ExprPtr n = MakeLiteral(Value::Null());
  EXPECT_EQ(MakeAnd(f, n)->Eval(row), Value::Bool(false));
  EXPECT_TRUE(MakeAnd(t, n)->Eval(row).is_null());
  EXPECT_EQ(MakeOr(t, n)->Eval(row), Value::Bool(true));
  EXPECT_TRUE(MakeOr(f, n)->Eval(row).is_null());
  EXPECT_EQ(MakeNot(f)->Eval(row), Value::Bool(true));
  EXPECT_TRUE(MakeNot(n)->Eval(row).is_null());
}

TEST(ExprTest, Arithmetic) {
  Row row;
  auto lit = [](int64_t v) { return MakeLiteral(Value::Int64(v)); };
  EXPECT_EQ(MakeArithmetic(ArithmeticOp::kAdd, lit(2), lit(3))->Eval(row),
            Value::Int64(5));
  EXPECT_EQ(MakeArithmetic(ArithmeticOp::kDiv, lit(7), lit(2))->Eval(row),
            Value::Int64(3));
  EXPECT_TRUE(
      MakeArithmetic(ArithmeticOp::kDiv, lit(7), lit(0))->Eval(row).is_null());
  EXPECT_EQ(MakeArithmetic(ArithmeticOp::kMod, lit(7), lit(4))->Eval(row),
            Value::Int64(3));
  // Mixed int/float promotes.
  EXPECT_EQ(MakeArithmetic(ArithmeticOp::kMul, lit(2),
                           MakeLiteral(Value::Float64(1.5)))
                ->Eval(row),
            Value::Float64(3.0));
  // String concatenation through +.
  EXPECT_EQ(MakeArithmetic(ArithmeticOp::kAdd,
                           MakeLiteral(Value::String("a")),
                           MakeLiteral(Value::String("b")))
                ->Eval(row),
            Value::String("ab"));
}

TEST(ExprTest, ArrayFunctions) {
  Row row{Value::Array({Value::Int64(1), Value::Int64(2), Value::Int64(2)}),
          Value::Array({Value::Int64(2), Value::Int64(3)})};
  ExprPtr a = MakeColumnRef(0, "a");
  ExprPtr b = MakeColumnRef(1, "b");
  EXPECT_EQ(MakeFunction(BuiltinFn::kCardinality, {a})->Eval(row),
            Value::Int64(3));
  EXPECT_EQ(MakeFunction(BuiltinFn::kArrayContains,
                         {a, MakeLiteral(Value::Int64(2))})
                ->Eval(row),
            Value::Bool(true));
  EXPECT_EQ(MakeFunction(BuiltinFn::kArrayContains,
                         {a, MakeLiteral(Value::Int64(9))})
                ->Eval(row),
            Value::Bool(false));
  Value inter = MakeFunction(BuiltinFn::kArrayIntersect, {a, b})->Eval(row);
  ASSERT_EQ(inter.kind(), TypeKind::kArray);
  EXPECT_EQ(inter.array().size(), 1u);  // deduplicated
  EXPECT_EQ(inter.array()[0], Value::Int64(2));
  EXPECT_EQ(MakeFunction(BuiltinFn::kArrayPosition,
                         {b, MakeLiteral(Value::Int64(3))})
                ->Eval(row),
            Value::Int64(2));
}

TEST(ExprTest, StructBuildAndAccess) {
  Row row{Value::Int64(1)};
  ExprPtr make = std::make_shared<MakeStructExpr>(
      std::vector<std::string>{"x", "y"},
      std::vector<ExprPtr>{MakeColumnRef(0, "a"),
                           MakeLiteral(Value::String("s"))});
  Value v = make->Eval(row);
  ASSERT_EQ(v.kind(), TypeKind::kStruct);
  ExprPtr access = std::make_shared<FieldAccessExpr>(make, "y");
  EXPECT_EQ(access->Eval(row), Value::String("s"));
  ExprPtr missing = std::make_shared<FieldAccessExpr>(make, "zzz");
  EXPECT_TRUE(missing->Eval(row).is_null());
}

TEST(ExprTest, InListAndCoalesce) {
  Row row{Value::Int64(2), Value::Null()};
  ExprPtr in = MakeInList(MakeColumnRef(0, "a"),
                          {Value::Int64(1), Value::Int64(2)});
  EXPECT_EQ(in->Eval(row), Value::Bool(true));
  ExprPtr coalesce = MakeFunction(
      BuiltinFn::kCoalesce,
      {MakeColumnRef(1, "b"), MakeLiteral(Value::Int64(42))});
  EXPECT_EQ(coalesce->Eval(row), Value::Int64(42));
}

// ---- Operators ----------------------------------------------------------------

TEST(OperatorTest, FilterProjectLimit) {
  auto values = MakeValues(IntCols({"a"}), {IntRow({1}), IntRow({2}),
                                            IntRow({3}), IntRow({4})});
  OperatorPtr plan = std::make_unique<FilterOp>(
      std::move(values),
      MakeCompare(CompareOp::kGt, MakeColumnRef(0, "a"),
                  MakeLiteral(Value::Int64(1))));
  plan = std::make_unique<ProjectOp>(
      std::move(plan), IntCols({"b"}),
      std::vector<ExprPtr>{MakeArithmetic(ArithmeticOp::kMul,
                                          MakeColumnRef(0, "a"),
                                          MakeLiteral(Value::Int64(10)))});
  plan = std::make_unique<LimitOp>(std::move(plan), 2);
  auto rows = CollectRows(plan.get());
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0][0], Value::Int64(20));
  EXPECT_EQ((*rows)[1][0], Value::Int64(30));
}

TEST(OperatorTest, ReopenReexecutes) {
  auto values = MakeValues(IntCols({"a"}), {IntRow({1}), IntRow({2})});
  ASSERT_TRUE(values->Open().ok());
  Row row;
  int count = 0;
  while (values->Next(&row)) ++count;
  EXPECT_EQ(count, 2);
  ASSERT_TRUE(values->Open().ok());
  count = 0;
  while (values->Next(&row)) ++count;
  EXPECT_EQ(count, 2);
}

TEST(OperatorTest, HashJoinInnerAndLeftOuter) {
  auto left = MakeValues(IntCols({"a"}), {IntRow({1}), IntRow({2}),
                                          IntRow({3})});
  auto right = MakeValues(IntCols({"b", "c"}),
                          {IntRow({1, 10}), IntRow({1, 11}), IntRow({3, 30})});
  OperatorPtr join = std::make_unique<HashJoinOp>(
      std::move(left), std::move(right),
      std::vector<ExprPtr>{MakeColumnRef(0, "a")},
      std::vector<ExprPtr>{MakeColumnRef(0, "b")});
  auto rows = CollectRows(join.get());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 3u);  // 1 matches twice, 3 once

  left = MakeValues(IntCols({"a"}), {IntRow({1}), IntRow({2})});
  right = MakeValues(IntCols({"b", "c"}), {IntRow({1, 10})});
  join = std::make_unique<HashJoinOp>(
      std::move(left), std::move(right),
      std::vector<ExprPtr>{MakeColumnRef(0, "a")},
      std::vector<ExprPtr>{MakeColumnRef(0, "b")}, JoinType::kLeftOuter);
  rows = CollectRows(join.get());
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  // Unmatched left row padded with nulls.
  bool found_padded = false;
  for (const Row& r : *rows) {
    if (r[0] == Value::Int64(2)) {
      EXPECT_TRUE(r[1].is_null());
      EXPECT_TRUE(r[2].is_null());
      found_padded = true;
    }
  }
  EXPECT_TRUE(found_padded);
}

TEST(OperatorTest, HashJoinNullKeysNeverMatch) {
  std::vector<Row> left_rows{{Value::Null()}, {Value::Int64(1)}};
  std::vector<Row> right_rows{{Value::Null()}, {Value::Int64(1)}};
  OperatorPtr join = std::make_unique<HashJoinOp>(
      MakeValues(IntCols({"a"}), left_rows),
      MakeValues(IntCols({"b"}), right_rows),
      std::vector<ExprPtr>{MakeColumnRef(0, "a")},
      std::vector<ExprPtr>{MakeColumnRef(0, "b")});
  auto rows = CollectRows(join.get());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
}

TEST(OperatorTest, NestedLoopJoinPredicate) {
  OperatorPtr join = std::make_unique<NestedLoopJoinOp>(
      MakeValues(IntCols({"a"}), {IntRow({1}), IntRow({5})}),
      MakeValues(IntCols({"b"}), {IntRow({2}), IntRow({4})}),
      MakeCompare(CompareOp::kLt, MakeColumnRef(0, "a"),
                  MakeColumnRef(1, "b")));
  auto rows = CollectRows(join.get());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);  // (1,2), (1,4)
}

TEST(OperatorTest, IndexJoinUsesTableIndex) {
  Table table(TableSchema("t", {Column{"k", Type::Int64(), false},
                                Column{"v", Type::Int64(), true}},
                          {0}));
  ASSERT_TRUE(table.CreateIndex("pk", {"k"}, true).ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(table.Insert(IntRow({i, i * 2})).ok());
  }
  OperatorPtr join = std::make_unique<IndexJoinOp>(
      MakeValues(IntCols({"a"}), {IntRow({7}), IntRow({999})}), &table,
      std::vector<ExprPtr>{MakeColumnRef(0, "a")}, std::vector<int>{0},
      JoinType::kLeftOuter);
  auto rows = CollectRows(join.get());
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0][2], Value::Int64(14));
  EXPECT_TRUE((*rows)[1][1].is_null());
}

TEST(OperatorTest, UnnestInnerAndOuter) {
  std::vector<Column> cols{Column{"k", Type::Int64(), false},
                           Column{"arr", Type::Array(Type::Int64()), true}};
  std::vector<Row> rows{
      {Value::Int64(1), Value::Array({Value::Int64(10), Value::Int64(11)})},
      {Value::Int64(2), Value::Array({})},
      {Value::Int64(3), Value::Null()}};
  OperatorPtr inner = std::make_unique<UnnestOp>(MakeValues(cols, rows), 1,
                                                 "element");
  auto inner_rows = CollectRows(inner.get());
  ASSERT_TRUE(inner_rows.ok());
  EXPECT_EQ(inner_rows->size(), 2u);
  EXPECT_EQ(inner->output_columns()[1].name, "element");
  EXPECT_EQ(inner->output_columns()[1].type->kind(), TypeKind::kInt64);

  OperatorPtr outer = std::make_unique<UnnestOp>(MakeValues(cols, rows), 1,
                                                 "element", /*outer=*/true);
  auto outer_rows = CollectRows(outer.get());
  ASSERT_TRUE(outer_rows.ok());
  EXPECT_EQ(outer_rows->size(), 4u);  // empty/null arrays emit one null row
}

TEST(OperatorTest, DistinctAndUnion) {
  OperatorPtr plan = std::make_unique<UnionAllOp>([] {
    std::vector<OperatorPtr> children;
    children.push_back(
        MakeValues(IntCols({"a"}), {IntRow({1}), IntRow({2})}));
    children.push_back(
        MakeValues(IntCols({"a"}), {IntRow({2}), IntRow({3})}));
    return children;
  }());
  plan = std::make_unique<DistinctOp>(std::move(plan));
  auto rows = CollectRows(plan.get());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 3u);
}

TEST(OperatorTest, HashAggregate) {
  auto values = MakeValues(
      IntCols({"g", "v"}),
      {IntRow({1, 10}), IntRow({1, 20}), IntRow({2, 5}), IntRow({2, 5})});
  std::vector<AggregateSpec> aggs;
  aggs.push_back({AggKind::kCountStar, nullptr, "n", false});
  aggs.push_back({AggKind::kSum, MakeColumnRef(1, "v"), "total", false});
  aggs.push_back({AggKind::kAvg, MakeColumnRef(1, "v"), "mean", false});
  aggs.push_back({AggKind::kMin, MakeColumnRef(1, "v"), "lo", false});
  aggs.push_back({AggKind::kMax, MakeColumnRef(1, "v"), "hi", false});
  aggs.push_back({AggKind::kCount, MakeColumnRef(1, "v"), "nd", true});
  aggs.push_back({AggKind::kArrayAgg, MakeColumnRef(1, "v"), "all", false});
  OperatorPtr agg = std::make_unique<HashAggregateOp>(
      std::move(values), std::vector<ExprPtr>{MakeColumnRef(0, "g")},
      std::vector<std::string>{"g"}, std::move(aggs));
  auto rows = CollectRows(agg.get());
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  for (const Row& row : *rows) {
    if (row[0] == Value::Int64(1)) {
      EXPECT_EQ(row[1], Value::Int64(2));
      EXPECT_EQ(row[2], Value::Int64(30));
      EXPECT_EQ(row[3], Value::Float64(15.0));
      EXPECT_EQ(row[4], Value::Int64(10));
      EXPECT_EQ(row[5], Value::Int64(20));
      EXPECT_EQ(row[6], Value::Int64(2));  // distinct values
      EXPECT_EQ(row[7].array().size(), 2u);
    } else {
      EXPECT_EQ(row[6], Value::Int64(1));  // 5 appears twice, distinct = 1
    }
  }
}

TEST(OperatorTest, GlobalAggregateOverEmptyInput) {
  std::vector<AggregateSpec> aggs;
  aggs.push_back({AggKind::kCountStar, nullptr, "n", false});
  aggs.push_back({AggKind::kSum, MakeColumnRef(0, "a"), "s", false});
  OperatorPtr agg = std::make_unique<HashAggregateOp>(
      MakeValues(IntCols({"a"}), {}), std::vector<ExprPtr>{},
      std::vector<std::string>{}, std::move(aggs));
  auto rows = CollectRows(agg.get());
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0], Value::Int64(0));
  EXPECT_TRUE((*rows)[0][1].is_null());
}

TEST(OperatorTest, SortStableMultiKey) {
  auto values = MakeValues(
      IntCols({"a", "b"}),
      {IntRow({2, 1}), IntRow({1, 2}), IntRow({2, 0}), IntRow({1, 1})});
  std::vector<SortKey> keys{{MakeColumnRef(0, "a"), true},
                            {MakeColumnRef(1, "b"), false}};
  OperatorPtr sort = std::make_unique<SortOp>(std::move(values),
                                              std::move(keys));
  auto rows = CollectRows(sort.get());
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 4u);
  EXPECT_EQ((*rows)[0], IntRow({1, 2}));
  EXPECT_EQ((*rows)[1], IntRow({1, 1}));
  EXPECT_EQ((*rows)[2], IntRow({2, 1}));
  EXPECT_EQ((*rows)[3], IntRow({2, 0}));
}

TEST(OperatorTest, PlanPrinting) {
  OperatorPtr plan = std::make_unique<FilterOp>(
      MakeValues(IntCols({"a"}), {}),
      MakeCompare(CompareOp::kEq, MakeColumnRef(0, "a"),
                  MakeLiteral(Value::Int64(1))));
  std::string printed = PrintPlan(*plan);
  EXPECT_NE(printed.find("Filter"), std::string::npos);
  EXPECT_NE(printed.find("Values"), std::string::npos);
}

}  // namespace
}  // namespace erbium
