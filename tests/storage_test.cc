// Unit tests for the storage substrate: schemas, tables, indexes,
// constraints, catalog.

#include <gtest/gtest.h>

#include "storage/catalog.h"

namespace erbium {
namespace {

TableSchema PersonSchema() {
  return TableSchema("person",
                     {Column{"id", Type::Int64(), false},
                      Column{"name", Type::String(), true},
                      Column{"tags", Type::Array(Type::Int64()), true}},
                     {0});
}

TEST(TableSchemaTest, ColumnLookupAndValidation) {
  TableSchema schema = PersonSchema();
  EXPECT_EQ(schema.ColumnIndex("name"), 1);
  EXPECT_EQ(schema.ColumnIndex("nope"), -1);
  EXPECT_TRUE(schema
                  .ValidateRow({Value::Int64(1), Value::String("a"),
                                Value::Array({Value::Int64(2)})})
                  .ok());
  // Arity mismatch.
  EXPECT_FALSE(schema.ValidateRow({Value::Int64(1)}).ok());
  // Null in non-null column.
  EXPECT_EQ(schema
                .ValidateRow({Value::Null(), Value::Null(), Value::Null()})
                .code(),
            StatusCode::kConstraintViolation);
  // Type mismatch.
  EXPECT_FALSE(schema
                   .ValidateRow({Value::String("x"), Value::Null(),
                                 Value::Null()})
                   .ok());
  // Array element type mismatch.
  EXPECT_FALSE(schema
                   .ValidateRow({Value::Int64(1), Value::Null(),
                                 Value::Array({Value::String("x")})})
                   .ok());
}

TEST(ValidateValueTest, StructShape) {
  TypePtr t = Type::Struct({{"a", Type::Int64()}, {"b", Type::String()}});
  EXPECT_TRUE(ValidateValue(Value::Struct({{"a", Value::Int64(1)},
                                           {"b", Value::String("x")}}),
                            t, false)
                  .ok());
  // Wrong field order/name.
  EXPECT_FALSE(ValidateValue(Value::Struct({{"b", Value::String("x")},
                                            {"a", Value::Int64(1)}}),
                             t, false)
                   .ok());
  // Missing field.
  EXPECT_FALSE(
      ValidateValue(Value::Struct({{"a", Value::Int64(1)}}), t, false).ok());
}

TEST(TableTest, InsertUpdateDelete) {
  Table table(PersonSchema());
  ASSERT_TRUE(table.CreateIndex("pk", {"id"}, /*unique=*/true).ok());
  auto id1 = table.Insert({Value::Int64(1), Value::String("ann"),
                           Value::Array({})});
  ASSERT_TRUE(id1.ok());
  auto id2 = table.Insert({Value::Int64(2), Value::String("bob"),
                           Value::Array({})});
  ASSERT_TRUE(id2.ok());
  EXPECT_EQ(table.size(), 2u);

  // Duplicate key rejected.
  auto dup = table.Insert({Value::Int64(1), Value::Null(), Value::Null()});
  EXPECT_EQ(dup.status().code(), StatusCode::kConstraintViolation);

  // Update changes data and index entries.
  ASSERT_TRUE(table
                  .Update(*id1, {Value::Int64(10), Value::String("ann"),
                                 Value::Array({})})
                  .ok());
  std::vector<RowId> hits;
  table.LookupEqual({0}, {Value::Int64(10)}, &hits);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], *id1);
  hits.clear();
  table.LookupEqual({0}, {Value::Int64(1)}, &hits);
  EXPECT_TRUE(hits.empty());

  // Update to an existing key is rejected.
  Status st = table.Update(*id1, {Value::Int64(2), Value::Null(),
                                  Value::Null()});
  EXPECT_EQ(st.code(), StatusCode::kConstraintViolation);

  // Delete tombstones and cleans the index.
  ASSERT_TRUE(table.Delete(*id2).ok());
  EXPECT_EQ(table.size(), 1u);
  EXPECT_FALSE(table.IsLive(*id2));
  hits.clear();
  table.LookupEqual({0}, {Value::Int64(2)}, &hits);
  EXPECT_TRUE(hits.empty());
  EXPECT_EQ(table.Delete(*id2).code(), StatusCode::kNotFound);
}

TEST(TableTest, NullsNotIndexedAndNotUnique) {
  Table table(TableSchema("t", {Column{"a", Type::Int64(), true}}, {}));
  ASSERT_TRUE(table.CreateIndex("a_idx", {"a"}, /*unique=*/true).ok());
  // Two null keys do not violate uniqueness (SQL semantics).
  ASSERT_TRUE(table.Insert({Value::Null()}).ok());
  ASSERT_TRUE(table.Insert({Value::Null()}).ok());
  // Lookup via index misses nulls; fallback scan path finds them.
  std::vector<RowId> hits;
  table.LookupEqual({0}, {Value::Null()}, &hits);
  EXPECT_TRUE(hits.empty());  // null != null through the index
}

TEST(TableTest, BackfillingIndexCreation) {
  Table table(PersonSchema());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(table
                    .Insert({Value::Int64(i), Value::String("p"),
                             Value::Array({})})
                    .ok());
  }
  ASSERT_TRUE(table.CreateIndex("pk", {"id"}, true).ok());
  std::vector<RowId> hits;
  table.LookupEqual({0}, {Value::Int64(7)}, &hits);
  EXPECT_EQ(hits.size(), 1u);
  // Backfilling a unique index over duplicate data fails.
  Table dup_table(TableSchema("d", {Column{"a", Type::Int64(), true}}, {}));
  ASSERT_TRUE(dup_table.Insert({Value::Int64(1)}).ok());
  ASSERT_TRUE(dup_table.Insert({Value::Int64(1)}).ok());
  EXPECT_FALSE(dup_table.CreateIndex("u", {"a"}, true).ok());
}

TEST(OrderedIndexTest, RangeLookups) {
  OrderedIndex index("ord", {0}, /*unique=*/false);
  for (int i = 0; i < 10; ++i) {
    index.Add({Value::Int64(i)}, i);
  }
  std::vector<RowId> hits;
  index.LookupRange({Value::Int64(3)}, true, {Value::Int64(6)}, true, &hits);
  EXPECT_EQ(hits.size(), 4u);
  hits.clear();
  index.LookupRange({Value::Int64(3)}, false, {Value::Int64(6)}, false,
                    &hits);
  EXPECT_EQ(hits.size(), 2u);
  hits.clear();
  index.LookupRange({}, true, {Value::Int64(2)}, true, &hits);
  EXPECT_EQ(hits.size(), 3u);
  hits.clear();
  index.LookupRange({Value::Int64(8)}, true, {}, true, &hits);
  EXPECT_EQ(hits.size(), 2u);
}

TEST(CatalogTest, CreateDropLookup) {
  Catalog catalog;
  auto t1 = catalog.CreateTable(PersonSchema());
  ASSERT_TRUE(t1.ok());
  EXPECT_EQ((*t1)->name(), "person");
  EXPECT_TRUE(catalog.HasTable("person"));
  EXPECT_EQ(catalog.GetTable("person"), *t1);
  EXPECT_EQ(catalog.CreateTable(PersonSchema()).status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(catalog.DropTable("person").ok());
  EXPECT_FALSE(catalog.HasTable("person"));
  EXPECT_EQ(catalog.DropTable("person").code(), StatusCode::kNotFound);
}

TEST(TableTest, ApproximateBytesGrowWithData) {
  Table table(PersonSchema());
  size_t empty = table.ApproximateDataBytes();
  ASSERT_TRUE(table
                  .Insert({Value::Int64(1), Value::String("somebody"),
                           Value::Array({Value::Int64(1), Value::Int64(2)})})
                  .ok());
  EXPECT_GT(table.ApproximateDataBytes(), empty);
}

}  // namespace
}  // namespace erbium
