// Property test for mapping reversibility (paper Section 4, requirement
// 1): because every mapping is uniquely reversible, data can be migrated
// M1 -> Mx -> M1 for any x and the logical content must round-trip
// exactly. The "logical dump" compares every entity (via GetEntity,
// arrays canonicalized) and every relationship instance.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "evolution/evolution.h"
#include "workload/figure4.h"

namespace erbium {
namespace {

Figure4Config TinyConfig() {
  Figure4Config config;
  config.num_r = 150;
  config.num_s = 50;
  return config;
}

Value Canonicalize(const Value& v) {
  if (v.kind() == TypeKind::kArray) {
    Value::ArrayData elements;
    for (const Value& e : v.array()) elements.push_back(Canonicalize(e));
    std::sort(elements.begin(), elements.end());
    return Value::Array(std::move(elements));
  }
  if (v.kind() == TypeKind::kStruct) {
    Value::StructData fields;
    for (const auto& [name, value] : v.struct_fields()) {
      fields.emplace_back(name, Canonicalize(value));
    }
    // Field order is schema-defined and stable; keep it.
    return Value::Struct(std::move(fields));
  }
  return v;
}

/// Full logical dump: every entity of every root/weak set rendered, plus
/// every relationship instance, sorted.
std::string LogicalDump(MappedDatabase* db) {
  std::vector<std::string> lines;
  for (const std::string& name : db->schema().EntitySetNames()) {
    const EntitySetDef* def = db->schema().FindEntitySet(name);
    if (def->is_subclass()) continue;  // covered by the root scan
    auto scan = db->ScanEntity(name, {});
    EXPECT_TRUE(scan.ok()) << scan.status().ToString();
    auto keys = CollectRows(scan->get());
    EXPECT_TRUE(keys.ok());
    for (const Row& key_row : *keys) {
      IndexKey key(key_row.begin(), key_row.end());
      auto entity = db->GetEntity(name, key);
      EXPECT_TRUE(entity.ok()) << entity.status().ToString();
      lines.push_back(name + ": " + Canonicalize(*entity).ToString());
    }
  }
  for (const std::string& rel : db->schema().RelationshipSetNames()) {
    auto scan = db->ScanRelationship(rel);
    EXPECT_TRUE(scan.ok());
    auto rows = CollectRows(scan->get());
    EXPECT_TRUE(rows.ok());
    for (const Row& row : *rows) {
      std::string line = rel + ":";
      for (const Value& v : row) line += " " + v.ToString();
      lines.push_back(std::move(line));
    }
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += "\n";
  }
  return out;
}

class MigrationRoundTripTest : public ::testing::TestWithParam<MappingSpec> {
};

INSTANTIATE_TEST_SUITE_P(
    Figure4, MigrationRoundTripTest,
    ::testing::ValuesIn([] {
      std::vector<MappingSpec> specs = Figure4AllMappings();
      specs.push_back(Figure4M6Pg());
      return specs;
    }()),
    [](const ::testing::TestParamInfo<MappingSpec>& info) {
      return info.param.name;
    });

TEST_P(MigrationRoundTripTest, M1ToMappingAndBackIsIdentity) {
  auto schema_result = MakeFigure4Schema();
  ASSERT_TRUE(schema_result.ok());
  auto schema =
      std::make_shared<ERSchema>(std::move(schema_result).value());

  auto source = MappedDatabase::Create(schema.get(), Figure4M1());
  ASSERT_TRUE(source.ok());
  ASSERT_TRUE(PopulateFigure4(source->get(), TinyConfig()).ok());
  std::string original = LogicalDump(source->get());
  ASSERT_FALSE(original.empty());

  // M1 -> Mx.
  auto intermediate = MappedDatabase::Create(schema.get(), GetParam());
  ASSERT_TRUE(intermediate.ok()) << intermediate.status().ToString();
  Status st = evolution::MigrateData(source->get(), intermediate->get());
  ASSERT_TRUE(st.ok()) << GetParam().name << ": " << st.ToString();
  EXPECT_EQ(LogicalDump(intermediate->get()), original)
      << "dump diverged after M1 -> " << GetParam().name;

  // Mx -> M1.
  auto round_trip = MappedDatabase::Create(schema.get(), Figure4M1());
  ASSERT_TRUE(round_trip.ok());
  st = evolution::MigrateData(intermediate->get(), round_trip->get());
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(LogicalDump(round_trip->get()), original)
      << "round trip through " << GetParam().name << " not identity";
}

TEST(MigrationMutationTest, MigrationSurvivesPriorMutations) {
  // Deletes/updates before migration must be reflected afterwards, not
  // resurrected by stale physical state.
  auto schema_result = MakeFigure4Schema();
  ASSERT_TRUE(schema_result.ok());
  auto schema =
      std::make_shared<ERSchema>(std::move(schema_result).value());
  auto source = MappedDatabase::Create(schema.get(), Figure4M1());
  ASSERT_TRUE(source.ok());
  ASSERT_TRUE(PopulateFigure4(source->get(), TinyConfig()).ok());

  ASSERT_TRUE(source->get()->DeleteEntity("R", {Value::Int64(5)}).ok());
  ASSERT_TRUE(source->get()
                  ->UpdateAttribute("R", {Value::Int64(6)}, "r_a1",
                                    Value::Int64(-1))
                  .ok());
  std::string mutated = LogicalDump(source->get());

  auto target = MappedDatabase::Create(schema.get(), Figure4M5());
  ASSERT_TRUE(target.ok());
  ASSERT_TRUE(evolution::MigrateData(source->get(), target->get()).ok());
  EXPECT_EQ(LogicalDump(target->get()), mutated);
  EXPECT_FALSE(target->get()->EntityExists("R", {Value::Int64(5)}).value());
  auto entity = target->get()->GetEntity("R", {Value::Int64(6)});
  ASSERT_TRUE(entity.ok());
  EXPECT_EQ(*entity->FindField("r_a1"), Value::Int64(-1));
}

}  // namespace
}  // namespace erbium
