// Integration tests of MappedDatabase across all six paper mappings: the
// logical content (counts, entity values, scans, relationship instances)
// must be identical under every physical mapping — the logical data
// independence the paper argues for.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "workload/figure4.h"

namespace erbium {
namespace {

Figure4Config SmallConfig() {
  Figure4Config config;
  config.num_r = 300;
  config.num_s = 80;
  return config;
}

struct MappingCase {
  MappingSpec spec;
};

class AllMappingsTest : public ::testing::TestWithParam<MappingSpec> {
 protected:
  void SetUp() override {
    auto db = MakeFigure4Database(GetParam(), SmallConfig(), &schema_);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(db).value();
  }

  std::shared_ptr<ERSchema> schema_;
  std::unique_ptr<MappedDatabase> db_;
};

INSTANTIATE_TEST_SUITE_P(
    Figure4, AllMappingsTest,
    ::testing::ValuesIn(Figure4AllMappings()),
    [](const ::testing::TestParamInfo<MappingSpec>& info) {
      return info.param.name;
    });

TEST_P(AllMappingsTest, EntityCountsMatchBaseline) {
  // Baseline counts computed once from the generator parameters under M1.
  static std::map<std::string, size_t>* baseline = nullptr;
  std::map<std::string, size_t> counts;
  for (const char* cls :
       {"R", "R1", "R2", "R3", "R4", "S", "S1", "S2"}) {
    auto count = db_->CountEntities(cls);
    ASSERT_TRUE(count.ok()) << cls << ": " << count.status().ToString();
    counts[cls] = count.value();
  }
  // Structural sanity: hierarchy containment.
  EXPECT_EQ(counts["R"], static_cast<size_t>(SmallConfig().num_r));
  EXPECT_GE(counts["R1"], counts["R3"] + counts["R4"]);
  EXPECT_GT(counts["R2"], 0u);
  EXPECT_EQ(counts["S"], static_cast<size_t>(SmallConfig().num_s));
  if (baseline == nullptr) {
    baseline = new std::map<std::string, size_t>(counts);
  } else {
    EXPECT_EQ(*baseline, counts) << "under mapping " << GetParam().name;
  }
}

TEST_P(AllMappingsTest, RelationshipCountsMatchBaseline) {
  static std::map<std::string, size_t>* baseline = nullptr;
  std::map<std::string, size_t> counts;
  for (const char* rel : {"RS", "R2S1", "R1R3"}) {
    auto count = db_->CountRelationships(rel);
    ASSERT_TRUE(count.ok()) << rel << ": " << count.status().ToString();
    counts[rel] = count.value();
    EXPECT_GT(counts[rel], 0u) << rel;
  }
  if (baseline == nullptr) {
    baseline = new std::map<std::string, size_t>(counts);
  } else {
    EXPECT_EQ(*baseline, counts) << "under mapping " << GetParam().name;
  }
}

TEST_P(AllMappingsTest, GetEntityIsMappingIndependent) {
  // Spot-check a handful of entities: the nested value assembled under
  // any mapping must be identical (same attributes, same arrays up to
  // order — arrays are sorted before comparison since side tables do not
  // define an order).
  static std::map<int64_t, std::string>* baseline = nullptr;
  std::map<int64_t, std::string> rendered;
  for (int64_t id : {1, 7, 42, 137, 263}) {
    auto entity = db_->GetEntity("R", {Value::Int64(id)});
    ASSERT_TRUE(entity.ok()) << entity.status().ToString();
    // Normalize: sort array fields.
    Value::StructData fields = entity->struct_fields();
    for (auto& [name, value] : fields) {
      if (value.kind() == TypeKind::kArray) {
        Value::ArrayData elements = value.array();
        std::sort(elements.begin(), elements.end());
        value = Value::Array(std::move(elements));
      }
    }
    rendered[id] = Value::Struct(std::move(fields)).ToString();
  }
  if (baseline == nullptr) {
    baseline = new std::map<int64_t, std::string>(rendered);
  } else {
    EXPECT_EQ(*baseline, rendered) << "under mapping " << GetParam().name;
  }
}

TEST_P(AllMappingsTest, ScanEntityProducesAllInstances) {
  auto scan = db_->ScanEntity("R3", {"r_a1", "r1_a1", "r3_a1"});
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  auto rows = CollectRows(scan->get());
  ASSERT_TRUE(rows.ok());
  auto count = db_->CountEntities("R3");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(rows->size(), count.value());
  for (const Row& row : rows.value()) {
    ASSERT_EQ(row.size(), 4u);  // key + three attrs
    EXPECT_EQ(row[0].kind(), TypeKind::kInt64);
    EXPECT_FALSE(row[1].is_null());
    EXPECT_FALSE(row[2].is_null());
    EXPECT_FALSE(row[3].is_null());
  }
}

TEST_P(AllMappingsTest, ScanMultiValuedMatchesArrays) {
  // Sum of array sizes must equal the number of unnested rows.
  auto scan = db_->ScanEntity("R", {"r_mv1"});
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  auto rows = CollectRows(scan->get());
  ASSERT_TRUE(rows.ok());
  size_t total = 0;
  for (const Row& row : rows.value()) {
    ASSERT_EQ(row[1].kind(), TypeKind::kArray);
    total += row[1].array().size();
  }
  auto unnested = db_->ScanMultiValued("R", "r_mv1");
  ASSERT_TRUE(unnested.ok()) << unnested.status().ToString();
  auto unnested_rows = CollectRows(unnested->get());
  ASSERT_TRUE(unnested_rows.ok());
  EXPECT_EQ(unnested_rows->size(), total);
}

TEST_P(AllMappingsTest, LookupEntityFindsPointRow) {
  auto plan = db_->LookupEntity("R", {Value::Int64(42)}, {"r_a1", "r_mv1"});
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto rows = CollectRows(plan->get());
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ(rows->front()[0], Value::Int64(42));
}

TEST_P(AllMappingsTest, WeakEntityScanIncludesOwnerKey) {
  auto scan = db_->ScanEntity("S1", {"s1_a1"});
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  auto rows = CollectRows(scan->get());
  ASSERT_TRUE(rows.ok());
  auto count = db_->CountEntities("S1");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(rows->size(), count.value());
  for (const Row& row : rows.value()) {
    ASSERT_EQ(row.size(), 3u);  // s_id, s1_no, s1_a1
    EXPECT_FALSE(row[0].is_null());
    EXPECT_FALSE(row[1].is_null());
  }
}

TEST_P(AllMappingsTest, DeleteEntityCascades) {
  // Delete one S that owns weak entities and participates in RS; all
  // traces must disappear.
  auto before_s1 = db_->CountEntities("S1");
  ASSERT_TRUE(before_s1.ok());
  auto before_rs = db_->CountRelationships("RS");
  ASSERT_TRUE(before_rs.ok());

  IndexKey s_key{Value::Int64(1)};
  ASSERT_TRUE(db_->EntityExists("S", s_key).value());
  Status st = db_->DeleteEntity("S", s_key);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_FALSE(db_->EntityExists("S", s_key).value());

  // No RS edge may reference s_id = 1 anymore.
  auto rs = db_->ScanRelationship("RS");
  ASSERT_TRUE(rs.ok());
  auto rs_rows = CollectRows(rs->get());
  ASSERT_TRUE(rs_rows.ok());
  for (const Row& row : rs_rows.value()) {
    EXPECT_NE(row[1], Value::Int64(1));
  }
  // Owned weak entities are gone.
  auto s1_scan = db_->ScanEntity("S1", {});
  ASSERT_TRUE(s1_scan.ok());
  auto s1_rows = CollectRows(s1_scan->get());
  ASSERT_TRUE(s1_rows.ok());
  for (const Row& row : s1_rows.value()) {
    EXPECT_NE(row[0], Value::Int64(1));
  }
}

TEST_P(AllMappingsTest, DeleteSubclassInstanceRemovesWholeEntity) {
  // Find an R2 instance, delete via R2 handle, confirm gone from R.
  auto scan = db_->ScanEntity("R2", {});
  ASSERT_TRUE(scan.ok());
  auto rows = CollectRows(scan->get());
  ASSERT_TRUE(rows.ok());
  ASSERT_FALSE(rows->empty());
  IndexKey key{rows->front()[0]};
  Status st = db_->DeleteEntity("R2", key);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_FALSE(db_->EntityExists("R", key).value());
  EXPECT_FALSE(db_->EntityExists("R2", key).value());
}

TEST_P(AllMappingsTest, UpdateAttributeRoundTrips) {
  IndexKey key{Value::Int64(42)};
  Status st = db_->UpdateAttribute("R", key, "r_a1", Value::Int64(-7));
  ASSERT_TRUE(st.ok()) << st.ToString();
  auto entity = db_->GetEntity("R", key);
  ASSERT_TRUE(entity.ok());
  const Value* v = entity->FindField("r_a1");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, Value::Int64(-7));

  // Multi-valued update.
  st = db_->UpdateAttribute(
      "R", key, "r_mv1",
      Value::Array({Value::Int64(1), Value::Int64(2), Value::Int64(3)}));
  ASSERT_TRUE(st.ok()) << st.ToString();
  entity = db_->GetEntity("R", key);
  ASSERT_TRUE(entity.ok());
  v = entity->FindField("r_mv1");
  ASSERT_NE(v, nullptr);
  ASSERT_EQ(v->kind(), TypeKind::kArray);
  EXPECT_EQ(v->array().size(), 3u);
}

TEST_P(AllMappingsTest, InsertRejectsDuplicateKeys) {
  Value::StructData fields;
  fields.emplace_back("r_id", Value::Int64(42));  // exists
  Status st = db_->InsertEntity("R", Value::Struct(std::move(fields)));
  EXPECT_EQ(st.code(), StatusCode::kAlreadyExists) << st.ToString();
}

TEST_P(AllMappingsTest, RelationshipEnforcesReferentialIntegrity) {
  Status st = db_->InsertRelationship("RS", {Value::Int64(999999)},
                                      {Value::Int64(1)});
  EXPECT_EQ(st.code(), StatusCode::kConstraintViolation) << st.ToString();
  // R2S1 requires the left side to actually be an R2: pick an id that is
  // plain R.
  auto specific = db_->SpecificClassOf("R", {Value::Int64(1)});
  ASSERT_TRUE(specific.ok());
  if (specific.value() == "R") {
    auto s1_scan = db_->ScanEntity("S1", {});
    ASSERT_TRUE(s1_scan.ok());
    auto s1_rows = CollectRows(s1_scan->get());
    ASSERT_TRUE(s1_rows.ok());
    ASSERT_FALSE(s1_rows->empty());
    st = db_->InsertRelationship(
        "R2S1", {Value::Int64(1)},
        {s1_rows->front()[0], s1_rows->front()[1]});
    EXPECT_EQ(st.code(), StatusCode::kConstraintViolation)
        << "plain R accepted as R2: " << st.ToString();
  }
}

TEST_P(AllMappingsTest, SpecificClassIsConsistent) {
  // Every R3 is also an R1 and an R.
  auto scan = db_->ScanEntity("R3", {});
  ASSERT_TRUE(scan.ok());
  auto rows = CollectRows(scan->get());
  ASSERT_TRUE(rows.ok());
  ASSERT_FALSE(rows->empty());
  IndexKey key{rows->front()[0]};
  EXPECT_TRUE(db_->EntityExists("R1", key).value());
  EXPECT_TRUE(db_->EntityExists("R", key).value());
  EXPECT_FALSE(db_->EntityExists("R2", key).value());
  auto specific = db_->SpecificClassOf("R", key);
  ASSERT_TRUE(specific.ok());
  EXPECT_EQ(specific.value(), "R3");
}

TEST_P(AllMappingsTest, CardinalityConstraintEnforced) {
  // R1R3 has a ONE parent side: linking a second parent to the same
  // child must fail.
  auto rel_scan = db_->ScanRelationship("R1R3");
  ASSERT_TRUE(rel_scan.ok());
  auto rel_rows = CollectRows(rel_scan->get());
  ASSERT_TRUE(rel_rows.ok());
  ASSERT_FALSE(rel_rows->empty());
  Value child_id = rel_rows->front()[1];
  // Any other R1-family instance as a second parent.
  auto r1_scan = db_->ScanEntity("R1", {});
  ASSERT_TRUE(r1_scan.ok());
  auto r1_rows = CollectRows(r1_scan->get());
  ASSERT_TRUE(r1_rows.ok());
  for (const Row& row : r1_rows.value()) {
    if (row[0] != rel_rows->front()[0]) {
      Status st = db_->InsertRelationship("R1R3", {row[0]}, {child_id});
      EXPECT_EQ(st.code(), StatusCode::kConstraintViolation)
          << st.ToString();
      break;
    }
  }
}

TEST_P(AllMappingsTest, RelationshipDeleteIsSymmetric) {
  auto rs = db_->ScanRelationship("RS");
  ASSERT_TRUE(rs.ok());
  auto rows = CollectRows(rs->get());
  ASSERT_TRUE(rows.ok());
  ASSERT_FALSE(rows->empty());
  size_t before = rows->size();
  IndexKey left{rows->front()[0]};
  IndexKey right{rows->front()[1]};
  Status st = db_->DeleteRelationship("RS", left, right);
  ASSERT_TRUE(st.ok()) << st.ToString();
  auto count = db_->CountRelationships("RS");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.value(), before - 1);
  // Both entities survive the edge deletion.
  EXPECT_TRUE(db_->EntityExists("R", left).value());
  EXPECT_TRUE(db_->EntityExists("S", right).value());
  // Deleting again fails cleanly.
  st = db_->DeleteRelationship("RS", left, right);
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
}

TEST_P(AllMappingsTest, CoverIsValid) {
  auto graph = ERGraph::Build(db_->schema());
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  auto cover = db_->mapping().Cover(graph.value());
  ASSERT_TRUE(cover.ok()) << cover.status().ToString();
  Status st = PhysicalMapping::ValidateCover(graph.value(), cover.value());
  EXPECT_TRUE(st.ok()) << st.ToString();
}

}  // namespace
}  // namespace erbium
