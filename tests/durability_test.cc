// Durability subsystem tests: WAL record round-trips, CRC behavior,
// snapshot encode/decode, recovery-on-open, checkpoint compaction, DDL
// and remap replay, the CHECKPOINT/ATTACH statement wiring, and the
// durability metrics.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include "durability/durable_db.h"
#include "durability/serde.h"
#include "durability/snapshot.h"
#include "durability/wal.h"
#include "durability_testlib.h"
#include "erql/query_engine.h"
#include "obs/metrics.h"
#include "workload/figure4.h"

namespace erbium {
namespace {

using durability::DurableDatabase;
using durability::SnapshotData;
using durability::WalRecord;
using durability_test::FaultScript;
using durability_test::LogicalDigest;
using durability_test::MakeStruct;
using durability_test::Op;

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/erbium_durability_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

DurableDatabase::Options Figure4Options(
    MappingSpec spec = Figure4M1(),
    durability::FaultInjector* faults = nullptr) {
  DurableDatabase::Options options;
  options.spec = std::move(spec);
  options.initial_ddl = Figure4Ddl();
  options.faults = faults;
  return options;
}

std::string MustDigest(MappedDatabase* db) {
  auto digest = LogicalDigest(db);
  EXPECT_TRUE(digest.ok()) << digest.status().ToString();
  return digest.ok() ? *digest : "";
}

TEST(Crc32Test, KnownVector) {
  // The classic CRC-32 check value.
  EXPECT_EQ(durability::Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(durability::Crc32("", 0), 0u);
}

TEST(SerdeTest, ValueRoundTrip) {
  Value nested = MakeStruct(
      {{"i", Value::Int64(-42)},
       {"f", Value::Float64(2.5)},
       {"s", Value::String("hello")},
       {"b", Value::Bool(true)},
       {"n", Value::Null()},
       {"a", Value::Array({Value::Int64(1), Value::String("two")})},
       {"nested", MakeStruct({{"x", Value::Int64(7)}})}});
  std::string bytes;
  durability::PutValue(nested, &bytes);
  durability::ByteReader reader(bytes.data(), bytes.size());
  auto back = reader.ReadValue();
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->ToString(), nested.ToString());
  EXPECT_TRUE(reader.AtEnd());
}

TEST(SerdeTest, TruncatedInputFailsCleanly) {
  std::string bytes;
  durability::PutValue(Value::String("some longer string"), &bytes);
  for (size_t len = 0; len < bytes.size(); ++len) {
    durability::ByteReader reader(bytes.data(), len);
    auto result = reader.ReadValue();
    EXPECT_FALSE(result.ok()) << "prefix of " << len << " bytes decoded";
    EXPECT_EQ(result.status().code(), StatusCode::kIOError);
  }
}

TEST(SerdeTest, CorruptCountDoesNotOverallocate) {
  // An array claiming 2^32-1 elements but holding no bytes must fail
  // instead of reserving gigabytes.
  std::string bytes;
  durability::PutU8(5, &bytes);           // kTagArray
  durability::PutU32(0xFFFFFFFFu, &bytes);  // absurd element count
  durability::ByteReader reader(bytes.data(), bytes.size());
  auto result = reader.ReadValue();
  ASSERT_FALSE(result.ok());
}

TEST(SerdeTest, DeepNestingFailsCleanly) {
  // [kTagArray][count=1] repeated L times around a null: L levels of
  // nesting. One level under the cap decodes; at the cap it must fail
  // with IOError instead of recursing off the stack.
  auto nested_array_bytes = [](int levels) {
    std::string bytes;
    for (int i = 0; i < levels; ++i) {
      durability::PutU8(5, &bytes);  // kTagArray
      durability::PutU32(1, &bytes);
    }
    durability::PutU8(0, &bytes);  // kTagNull
    return bytes;
  };
  {
    std::string ok_bytes = nested_array_bytes(durability::kMaxValueDepth - 1);
    durability::ByteReader reader(ok_bytes.data(), ok_bytes.size());
    EXPECT_TRUE(reader.ReadValue().ok());
  }
  {
    std::string bad_bytes = nested_array_bytes(durability::kMaxValueDepth);
    durability::ByteReader reader(bad_bytes.data(), bad_bytes.size());
    auto result = reader.ReadValue();
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kIOError);
  }
}

TEST(WalTest, AppendReadRoundTrip) {
  std::string dir = FreshDir("wal_roundtrip");
  std::filesystem::create_directories(dir);
  std::string path = dir + "/wal.erblog";
  {
    auto writer = durability::WalWriter::Open(
        path, 0, 1, durability::WalWriter::SyncMode::kNone, nullptr);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    WalRecord insert;
    insert.type = WalRecord::Type::kInsertEntity;
    insert.name = "R";
    insert.value = MakeStruct({{"r_id", Value::Int64(1)}});
    ASSERT_TRUE((*writer)->Append(insert).ok());
    WalRecord update;
    update.type = WalRecord::Type::kUpdateAttribute;
    update.name = "R";
    update.key = {Value::Int64(1)};
    update.attr = "r_a1";
    update.value = Value::Int64(9);
    ASSERT_TRUE((*writer)->Append(update).ok());
    WalRecord ddl;
    ddl.type = WalRecord::Type::kDdl;
    ddl.name = "CREATE ENTITY T ( t_id INT KEY );";
    ASSERT_TRUE((*writer)->Append(ddl).ok());
    EXPECT_EQ((*writer)->next_lsn(), 4u);
  }
  auto read = durability::ReadWal(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_TRUE(read->clean);
  ASSERT_EQ(read->records.size(), 3u);
  EXPECT_EQ(read->records[0].type, WalRecord::Type::kInsertEntity);
  EXPECT_EQ(read->records[0].lsn, 1u);
  EXPECT_EQ(read->records[1].type, WalRecord::Type::kUpdateAttribute);
  EXPECT_EQ(read->records[1].attr, "r_a1");
  EXPECT_EQ(read->records[1].key.size(), 1u);
  EXPECT_EQ(read->records[2].name, "CREATE ENTITY T ( t_id INT KEY );");
}

TEST(WalTest, MissingFileIsEmptyCleanLog) {
  auto read = durability::ReadWal(FreshDir("wal_missing") + "/nope.erblog");
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->clean);
  EXPECT_TRUE(read->records.empty());
  EXPECT_EQ(read->valid_bytes, 0u);
}

TEST(WalTest, GarbageTailStopsCleanly) {
  std::string dir = FreshDir("wal_garbage");
  std::filesystem::create_directories(dir);
  std::string path = dir + "/wal.erblog";
  WalRecord record;
  record.type = WalRecord::Type::kDeleteEntity;
  record.lsn = 1;
  record.name = "R";
  record.key = {Value::Int64(5)};
  std::string bytes = durability::EncodeWalRecord(record);
  {
    std::ofstream out(path, std::ios::binary);
    out << bytes << "garbage-not-a-record";
  }
  auto read = durability::ReadWal(path);
  ASSERT_TRUE(read.ok());
  EXPECT_FALSE(read->clean);
  ASSERT_EQ(read->records.size(), 1u);
  EXPECT_EQ(read->valid_bytes, bytes.size());
  EXPECT_FALSE(read->stop_reason.empty());
}

TEST(WalTest, OversizedRecordRejectedBeforeAnythingIsWritten) {
  std::string dir = FreshDir("wal_oversized");
  std::filesystem::create_directories(dir);
  std::string path = dir + "/wal.erblog";
  {
    auto writer = durability::WalWriter::Open(
        path, 0, 1, durability::WalWriter::SyncMode::kNone, nullptr);
    ASSERT_TRUE(writer.ok());
    WalRecord small;
    small.type = WalRecord::Type::kDdl;
    small.name = "CREATE ENTITY T ( t_id INT KEY );";
    ASSERT_TRUE((*writer)->Append(small).ok());
    // A payload past the reader's cap must be rejected up front: if it
    // were acknowledged, recovery would treat it as a torn tail and drop
    // it plus everything after it.
    WalRecord huge;
    huge.type = WalRecord::Type::kUpdateAttribute;
    huge.name = "R";
    huge.key = {Value::Int64(1)};
    huge.attr = "r_a1";
    huge.value = Value::String(std::string(durability::kMaxWalRecordBytes, 'x'));
    uint64_t bytes_before = (*writer)->bytes();
    auto status = (*writer)->Append(huge);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ((*writer)->bytes(), bytes_before);
    // The writer is still healthy and LSNs stay consecutive.
    ASSERT_TRUE((*writer)->Append(small).ok());
    EXPECT_EQ((*writer)->next_lsn(), 3u);
  }
  auto read = durability::ReadWal(path);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->clean);
  ASSERT_EQ(read->records.size(), 2u);
  EXPECT_EQ(read->records[0].lsn, 1u);
  EXPECT_EQ(read->records[1].lsn, 2u);
}

TEST(WalTest, FailedAppendLeavesNoTornBytes) {
  std::string dir = FreshDir("wal_ioerror");
  std::filesystem::create_directories(dir);
  std::string path = dir + "/wal.erblog";
  durability::FaultInjector faults;
  {
    auto writer = durability::WalWriter::Open(
        path, 0, 1, durability::WalWriter::SyncMode::kNone, &faults);
    ASSERT_TRUE(writer.ok());
    WalRecord record;
    record.type = WalRecord::Type::kDeleteEntity;
    record.name = "R";
    record.key = {Value::Int64(5)};
    ASSERT_TRUE((*writer)->Append(record).ok());
    // Mid-write IO error: 5 torn bytes reach the file, then the write
    // fails. Append must roll the file back so the next acknowledged
    // record does not land behind garbage the reader stops at.
    faults.ArmError("wal.append.error", 1, 5);
    uint64_t bytes_before = (*writer)->bytes();
    auto status = (*writer)->Append(record);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ((*writer)->bytes(), bytes_before);
    ASSERT_TRUE((*writer)->Append(record).ok());
    EXPECT_EQ((*writer)->next_lsn(), 3u);
  }
  auto read = durability::ReadWal(path);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->clean) << read->stop_reason;
  ASSERT_EQ(read->records.size(), 2u);
  EXPECT_EQ(read->records[0].lsn, 1u);
  EXPECT_EQ(read->records[1].lsn, 2u);
}

TEST(SnapshotTest, OverflowGenerationFilenameSkipped) {
  std::string dir = FreshDir("snapshot_overflow_gen");
  std::filesystem::create_directories(dir);
  // All digits but far past uint64_t: must be skipped, not abort Open
  // with an uncaught std::out_of_range.
  std::ofstream(dir + "/snapshot-99999999999999999999999.erbsnap") << "x";
  std::ofstream(dir + "/snapshot-7.erbsnap") << "x";
  EXPECT_EQ(durability::ListSnapshotGens(dir), (std::vector<uint64_t>{7}));
}

TEST(SnapshotTest, EncodeDecodeRoundTrip) {
  SnapshotData data;
  data.last_lsn = 17;
  data.ddl = "CREATE ENTITY R ( r_id INT KEY );";
  data.spec_json = Figure4M1().ToJson();
  SnapshotData::TableImage table;
  table.name = "R";
  table.rows = {{Value::Int64(1), Value::String("a")},
                {Value::Int64(2), Value::Null()}};
  data.tables.push_back(table);
  SnapshotData::PairImage pair;
  pair.name = "R2S1_pair";
  pair.left_rows = {{Value::Int64(1)}};
  pair.right_rows = {{Value::Int64(9)}, {Value::Int64(10)}};
  pair.edges = {{0, 1}};
  data.pairs.push_back(pair);
  std::string bytes = durability::EncodeSnapshot(data);
  auto back = durability::DecodeSnapshot(bytes);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->last_lsn, 17u);
  EXPECT_EQ(back->ddl, data.ddl);
  EXPECT_EQ(back->spec_json, data.spec_json);
  ASSERT_EQ(back->tables.size(), 1u);
  EXPECT_EQ(back->tables[0].rows.size(), 2u);
  ASSERT_EQ(back->pairs.size(), 1u);
  EXPECT_EQ(back->pairs[0].edges.size(), 1u);

  // Any single bit flip must be rejected whole.
  std::string corrupt = bytes;
  corrupt[bytes.size() / 2] ^= 0x01;
  EXPECT_FALSE(durability::DecodeSnapshot(corrupt).ok());
}

TEST(DurableDatabaseTest, InsertSurvivesReopen) {
  std::string dir = FreshDir("reopen");
  std::string digest;
  {
    auto db = DurableDatabase::Open(dir, Figure4Options());
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    EXPECT_FALSE((*db)->recovery_info().had_snapshot);
    for (const Op& op : FaultScript()) {
      ASSERT_TRUE(op.apply((*db)->db()).ok()) << op.description;
    }
    EXPECT_GT((*db)->wal_bytes(), 0u);
    digest = MustDigest((*db)->db());
  }
  auto reopened = DurableDatabase::Open(dir, Figure4Options());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->recovery_info().records_replayed,
            FaultScript().size());
  EXPECT_TRUE((*reopened)->recovery_info().wal_clean);
  EXPECT_EQ(MustDigest((*reopened)->db()), digest);
}

TEST(DurableDatabaseTest, CheckpointTruncatesAndCompacts) {
  std::string dir = FreshDir("checkpoint");
  std::string digest;
  {
    auto db = DurableDatabase::Open(dir, Figure4Options());
    ASSERT_TRUE(db.ok());
    for (const Op& op : FaultScript()) {
      ASSERT_TRUE(op.apply((*db)->db()).ok()) << op.description;
    }
    digest = MustDigest((*db)->db());
    auto summary = (*db)->Checkpoint();
    ASSERT_TRUE(summary.ok()) << summary.status().ToString();
    EXPECT_NE(summary->find("gen=1"), std::string::npos) << *summary;
    EXPECT_EQ((*db)->wal_bytes(), 0u);
    // State unchanged by checkpointing.
    EXPECT_EQ(MustDigest((*db)->db()), digest);
    // Still writable afterwards.
    ASSERT_TRUE((*db)
                    ->db()
                    ->InsertEntity("S", MakeStruct({{"s_id", Value::Int64(50)},
                                                    {"s_a1", Value::Int64(5)},
                                                    {"s_a2", Value::String(
                                                                 "post")}}))
                    .ok());
    digest = MustDigest((*db)->db());
  }
  auto reopened = DurableDatabase::Open(dir, Figure4Options());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const auto& info = (*reopened)->recovery_info();
  EXPECT_TRUE(info.had_snapshot);
  EXPECT_EQ(info.snapshot_gen, 1u);
  // Only the post-checkpoint insert replays from the log.
  EXPECT_EQ(info.records_replayed, 1u);
  EXPECT_EQ(MustDigest((*reopened)->db()), digest);

  // The deleted entity/relationship tombstones were compacted away: the
  // snapshot stores live rows only.
  auto snapshot = durability::LoadSnapshotFile(
      durability::SnapshotPath(dir, 1));
  ASSERT_TRUE(snapshot.ok());
  for (const auto& table : snapshot->tables) {
    if (table.name == "R") {
      // R 1 (updated), R2 2, R1 5, R3 4 segments — R 9 was deleted.
      EXPECT_EQ(table.rows.size(), 4u);
    }
  }
}

TEST(DurableDatabaseTest, SecondCheckpointSupersedesFirst) {
  std::string dir = FreshDir("checkpoint_gens");
  auto db = DurableDatabase::Open(dir, Figure4Options());
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)
                  ->db()
                  ->InsertEntity("S", MakeStruct({{"s_id", Value::Int64(1)},
                                                  {"s_a1", Value::Int64(1)},
                                                  {"s_a2", Value::String("a")}}))
                  .ok());
  ASSERT_TRUE((*db)->Checkpoint().ok());
  ASSERT_TRUE((*db)
                  ->db()
                  ->InsertEntity("S", MakeStruct({{"s_id", Value::Int64(2)},
                                                  {"s_a1", Value::Int64(2)},
                                                  {"s_a2", Value::String("b")}}))
                  .ok());
  auto summary = (*db)->Checkpoint();
  ASSERT_TRUE(summary.ok());
  EXPECT_NE(summary->find("gen=2"), std::string::npos);
  // Older generations are garbage-collected.
  EXPECT_EQ(durability::ListSnapshotGens(dir),
            (std::vector<uint64_t>{2}));
}

TEST(DurableDatabaseTest, DdlReplaysOnReopen) {
  std::string dir = FreshDir("ddl_replay");
  std::string digest;
  {
    auto db = DurableDatabase::Open(dir, Figure4Options());
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)
                    ->db()
                    ->InsertEntity("S", MakeStruct({{"s_id", Value::Int64(1)},
                                                    {"s_a1", Value::Int64(1)},
                                                    {"s_a2", Value::String(
                                                                 "pre")}}))
                    .ok());
    ASSERT_TRUE(
        (*db)->ExecuteDdl("CREATE ENTITY T ( t_id INT KEY, t_a1 STRING );")
            .ok());
    ASSERT_TRUE((*db)
                    ->db()
                    ->InsertEntity("T", MakeStruct({{"t_id", Value::Int64(7)},
                                                    {"t_a1", Value::String(
                                                                 "new")}}))
                    .ok());
    digest = MustDigest((*db)->db());
  }
  auto reopened = DurableDatabase::Open(dir, Figure4Options());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_NE((*reopened)->schema().FindEntitySet("T"), nullptr);
  EXPECT_EQ(MustDigest((*reopened)->db()), digest);
}

TEST(DurableDatabaseTest, DdlSurvivesCheckpoint) {
  std::string dir = FreshDir("ddl_checkpoint");
  std::string digest;
  {
    auto db = DurableDatabase::Open(dir, Figure4Options());
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(
        (*db)->ExecuteDdl("CREATE ENTITY T ( t_id INT KEY, t_a1 STRING );")
            .ok());
    ASSERT_TRUE((*db)
                    ->db()
                    ->InsertEntity("T", MakeStruct({{"t_id", Value::Int64(7)},
                                                    {"t_a1", Value::String(
                                                                 "x")}}))
                    .ok());
    ASSERT_TRUE((*db)->Checkpoint().ok());
    digest = MustDigest((*db)->db());
  }
  // After the checkpoint the WAL is empty; the schema must come back
  // from the snapshot's accumulated DDL.
  auto reopened = DurableDatabase::Open(dir, Figure4Options());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->recovery_info().records_replayed, 0u);
  EXPECT_NE((*reopened)->schema().FindEntitySet("T"), nullptr);
  EXPECT_EQ(MustDigest((*reopened)->db()), digest);
}

TEST(DurableDatabaseTest, RemapReplaysOnReopen) {
  std::string dir = FreshDir("remap_replay");
  std::string digest;
  {
    auto db = DurableDatabase::Open(dir, Figure4Options());
    ASSERT_TRUE(db.ok());
    for (const Op& op : FaultScript()) {
      ASSERT_TRUE(op.apply((*db)->db()).ok()) << op.description;
    }
    ASSERT_TRUE((*db)->Remap(Figure4M5()).ok());
    EXPECT_EQ((*db)->spec().name, "M5");
    digest = MustDigest((*db)->db());
  }
  // Reopen still passes the M1 options; the logged remap must win.
  auto reopened = DurableDatabase::Open(dir, Figure4Options());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->spec().name, "M5");
  EXPECT_EQ(MustDigest((*reopened)->db()), digest);
}

TEST(DurableDatabaseTest, WalMetricsAdvance) {
  uint64_t appends_before =
      obs::MetricsRegistry::Global().CounterValue("wal.appends");
  uint64_t bytes_before =
      obs::MetricsRegistry::Global().CounterValue("wal.bytes");
  std::string dir = FreshDir("metrics");
  auto db = DurableDatabase::Open(dir, Figure4Options());
  ASSERT_TRUE(db.ok());
  for (const Op& op : FaultScript()) {
    ASSERT_TRUE(op.apply((*db)->db()).ok());
  }
  EXPECT_EQ(obs::MetricsRegistry::Global().CounterValue("wal.appends"),
            appends_before + FaultScript().size());
  EXPECT_GT(obs::MetricsRegistry::Global().CounterValue("wal.bytes"),
            bytes_before);
  ASSERT_TRUE((*db)->Checkpoint().ok());
  EXPECT_GE(obs::MetricsRegistry::Global().CounterValue("checkpoint.count"),
            1u);
}

TEST(StatementTest, CheckpointStatementRunsThroughEngine) {
  std::string dir = FreshDir("stmt_checkpoint");
  auto db = DurableDatabase::Open(dir, Figure4Options());
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)
                  ->db()
                  ->InsertEntity("S", MakeStruct({{"s_id", Value::Int64(1)},
                                                  {"s_a1", Value::Int64(1)},
                                                  {"s_a2", Value::String("a")}}))
                  .ok());
  auto result = erql::QueryEngine::Execute((*db)->db(), "CHECKPOINT");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_NE(result->rows[0][0].as_string().find("gen=1"), std::string::npos);
  EXPECT_EQ((*db)->wal_bytes(), 0u);
}

TEST(StatementTest, CheckpointWithoutDurableDatabaseFails) {
  auto schema = std::make_shared<ERSchema>();
  auto made = MakeFigure4Schema();
  ASSERT_TRUE(made.ok());
  *schema = std::move(made).value();
  auto db = MappedDatabase::Create(schema.get(), Figure4M1());
  ASSERT_TRUE(db.ok());
  auto result = erql::QueryEngine::Execute(db->get(), "CHECKPOINT");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatementTest, AttachIsRejectedByEngine) {
  auto schema = std::make_shared<ERSchema>();
  auto made = MakeFigure4Schema();
  ASSERT_TRUE(made.ok());
  *schema = std::move(made).value();
  auto db = MappedDatabase::Create(schema.get(), Figure4M1());
  ASSERT_TRUE(db.ok());
  auto result =
      erql::QueryEngine::Execute(db->get(), "ATTACH DATABASE '/tmp/x'");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(DurableDatabaseTest, TornTailDiscardedOnReopen) {
  std::string dir = FreshDir("torn_tail");
  std::string digest;
  {
    auto db = DurableDatabase::Open(dir, Figure4Options());
    ASSERT_TRUE(db.ok());
    for (const Op& op : FaultScript()) {
      ASSERT_TRUE(op.apply((*db)->db()).ok());
    }
    digest = MustDigest((*db)->db());
  }
  // Simulate a crash mid-append: garbage after the valid prefix.
  {
    std::ofstream out(dir + "/wal.erblog",
                      std::ios::binary | std::ios::app);
    out << "\x13\x00\x00\x00partial";
  }
  auto reopened = DurableDatabase::Open(dir, Figure4Options());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_FALSE((*reopened)->recovery_info().wal_clean);
  EXPECT_EQ((*reopened)->recovery_info().records_replayed,
            FaultScript().size());
  EXPECT_EQ(MustDigest((*reopened)->db()), digest);
  // The torn tail was chopped: appending and reopening again is clean.
  ASSERT_TRUE((*reopened)
                  ->db()
                  ->InsertEntity("S", MakeStruct({{"s_id", Value::Int64(60)},
                                                  {"s_a1", Value::Int64(6)},
                                                  {"s_a2", Value::String("t")}}))
                  .ok());
}

}  // namespace
}  // namespace erbium
