// Translator-focused tests: semantic errors, plan-shape assertions
// (pushdown, point lookups, fused joined scans, the unnest fast path),
// and smaller behaviours not covered by the cross-mapping equivalence
// suite.

#include <gtest/gtest.h>

#include "erql/query_engine.h"
#include "workload/figure4.h"

namespace erbium {
namespace {

class TranslatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Figure4Config config;
    config.num_r = 150;
    config.num_s = 50;
    auto db = MakeFigure4Database(Figure4M1(), config, &schema_);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(db).value();
  }

  Status CompileError(const std::string& query) {
    auto compiled = erql::QueryEngine::Compile(db_.get(), query);
    EXPECT_FALSE(compiled.ok()) << "expected failure: " << query;
    return compiled.ok() ? Status::OK() : compiled.status();
  }

  std::string Plan(const std::string& query) {
    auto compiled = erql::QueryEngine::Compile(db_.get(), query);
    EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
    return compiled.ok() ? PrintPlan(*compiled->plan) : "";
  }

  std::shared_ptr<ERSchema> schema_;
  std::unique_ptr<MappedDatabase> db_;
};

TEST_F(TranslatorTest, SemanticErrors) {
  EXPECT_EQ(CompileError("SELECT x FROM Nowhere").code(),
            StatusCode::kAnalysisError);
  EXPECT_EQ(CompileError("SELECT no_such_attr FROM R").code(),
            StatusCode::kAnalysisError);
  // r1_a1 is not visible on the sibling subclass R2.
  EXPECT_EQ(CompileError("SELECT r1_a1 FROM R2").code(),
            StatusCode::kAnalysisError);
  // Ambiguous bare column across two aliases.
  EXPECT_EQ(CompileError("SELECT r_a1 FROM R a JOIN R b ON a.r_id = b.r_id")
                .code(),
            StatusCode::kAnalysisError);
  // Unknown relationship.
  EXPECT_EQ(CompileError("SELECT 1 FROM R r JOIN S s ON no_such_rel").code(),
            StatusCode::kAnalysisError);
  // Entity not participating in the relationship.
  EXPECT_EQ(CompileError("SELECT 1 FROM S s JOIN S2 x ON R2S1").code(),
            StatusCode::kAnalysisError);
  // Aggregate nested in an expression.
  EXPECT_EQ(CompileError("SELECT count(*) + 1 FROM R").code(),
            StatusCode::kAnalysisError);
  // Non-grouped select item with explicit GROUP BY.
  EXPECT_EQ(CompileError(
                "SELECT r_a1, count(*) AS n FROM R GROUP BY r_a4")
                .code(),
            StatusCode::kAnalysisError);
  // ORDER BY referencing a non-output column.
  EXPECT_EQ(CompileError("SELECT r_id FROM R ORDER BY r_a1").code(),
            StatusCode::kAnalysisError);
  // Duplicate alias.
  EXPECT_EQ(CompileError("SELECT 1 FROM R x JOIN S x ON RS").code(),
            StatusCode::kAnalysisError);
}

TEST_F(TranslatorTest, PredicatePushdownReachesBaseScan) {
  std::string plan = Plan(
      "SELECT r.r_id, s.s_id FROM R r JOIN S s ON RS "
      "WHERE r.r_a1 < 100 AND s.s_a1 > 50 AND r.r_id != s.s_id");
  // Single-alias conjuncts sit below the joins; the cross-alias one on
  // top.
  size_t top_filter = plan.find("Filter((r.r_id != s.s_id))");
  ASSERT_NE(top_filter, std::string::npos) << plan;
  size_t r_filter = plan.find("Filter((r.r_a1 < 100))");
  size_t s_filter = plan.find("Filter((s.s_a1 > 50))");
  ASSERT_NE(r_filter, std::string::npos) << plan;
  ASSERT_NE(s_filter, std::string::npos) << plan;
  EXPECT_LT(top_filter, r_filter);
  EXPECT_LT(top_filter, s_filter);
}

TEST_F(TranslatorTest, FullKeyEqualityBecomesIndexLookup) {
  std::string plan = Plan("SELECT r_a1 FROM R WHERE r_id = 42");
  EXPECT_NE(plan.find("IndexLookup(R)"), std::string::npos) << plan;
  // Composite weak-entity key requires both parts.
  plan = Plan("SELECT s1_a1 FROM S1 WHERE s_id = 3 AND s1_no = 1");
  EXPECT_NE(plan.find("IndexLookup(S1)"), std::string::npos) << plan;
  plan = Plan("SELECT s1_a1 FROM S1 WHERE s_id = 3");
  EXPECT_EQ(plan.find("IndexLookup"), std::string::npos) << plan;
}

TEST_F(TranslatorTest, UnnestFastPathUsesSideTable) {
  std::string plan = Plan("SELECT r_id, unnest(r_mv1) AS v FROM R");
  // Under M1 the side table IS the unnested stream: no join, no unnest.
  EXPECT_NE(plan.find("SeqScan(R_r_mv1)"), std::string::npos) << plan;
  EXPECT_EQ(plan.find("Unnest"), std::string::npos) << plan;
  EXPECT_EQ(plan.find("HashJoin"), std::string::npos) << plan;
  // With a non-key attribute in the select list the fast path must not
  // fire (r_a1 is not in the side table).
  plan = Plan("SELECT r_id, r_a1, unnest(r_mv1) AS v FROM R");
  EXPECT_NE(plan.find("Unnest"), std::string::npos) << plan;
}

TEST_F(TranslatorTest, RoleScoringPicksRightSides) {
  // R1R3 is a self-ish relationship inside the hierarchy; exact entity
  // matches must win over hierarchy-related ones.
  auto result = erql::QueryEngine::Execute(
      db_.get(),
      "SELECT p.r_id AS parent, c.r_id AS child FROM R1 p JOIN R3 c "
      "ON R1R3");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(result->rows.empty());
  // Reversed declaration order must produce the same pairs.
  auto reversed = erql::QueryEngine::Execute(
      db_.get(),
      "SELECT p.r_id AS parent, c.r_id AS child FROM R3 c JOIN R1 p "
      "ON R1R3");
  ASSERT_TRUE(reversed.ok()) << reversed.status().ToString();
  EXPECT_EQ(result->ToCanonicalString(), reversed->ToCanonicalString());
}

TEST_F(TranslatorTest, RelationshipAttributesResolve) {
  auto result = erql::QueryEngine::Execute(
      db_.get(),
      "SELECT r.r_id, rs_a1 FROM R r JOIN S s ON RS WHERE rs_a1 < 50");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (const Row& row : result->rows) {
    EXPECT_LT(row[1].as_int64(), 50);
  }
  // Qualified by relationship name too.
  auto qualified = erql::QueryEngine::Execute(
      db_.get(),
      "SELECT r.r_id, RS.rs_a1 AS a FROM R r JOIN S s ON RS "
      "WHERE RS.rs_a1 < 50");
  ASSERT_TRUE(qualified.ok()) << qualified.status().ToString();
  EXPECT_EQ(result->rows.size(), qualified->rows.size());
}

TEST_F(TranslatorTest, EmptyResultsAndLimits) {
  auto result = erql::QueryEngine::Execute(
      db_.get(), "SELECT r_id FROM R WHERE r_id = -5");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->rows.empty());
  // Global aggregate over the empty selection still yields one row.
  result = erql::QueryEngine::Execute(
      db_.get(), "SELECT count(*) AS n FROM R WHERE r_id = -5");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0], Value::Int64(0));
  result = erql::QueryEngine::Execute(db_.get(),
                                      "SELECT r_id FROM R LIMIT 0");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->rows.empty());
}

class FusedJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Figure4Config config;
    config.num_r = 150;
    config.num_s = 50;
    auto db = MakeFigure4Database(Figure4M6(), config, &schema_);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(db).value();
    auto pg = MakeFigure4Database(Figure4M6Pg(), config, &pg_schema_);
    ASSERT_TRUE(pg.ok()) << pg.status().ToString();
    pg_db_ = std::move(pg).value();
  }

  std::shared_ptr<ERSchema> schema_;
  std::unique_ptr<MappedDatabase> db_;
  std::shared_ptr<ERSchema> pg_schema_;
  std::unique_ptr<MappedDatabase> pg_db_;
};

TEST_F(FusedJoinTest, FactorizedJoinUsesFusedScan) {
  auto compiled = erql::QueryEngine::Compile(
      db_.get(),
      "SELECT r.r_id, r.r2_a1, s1.s1_a1 FROM R2 r JOIN S1 s1 ON R2S1");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  std::string plan = PrintPlan(*compiled->plan);
  EXPECT_NE(plan.find("FactorizedJoinScan"), std::string::npos) << plan;
  EXPECT_EQ(plan.find("HashJoin"), std::string::npos) << plan;
}

TEST_F(FusedJoinTest, MaterializedJoinScansWideTableOnce) {
  auto compiled = erql::QueryEngine::Compile(
      pg_db_.get(),
      "SELECT r.r_id, r.r2_a1, s1.s1_a1 FROM R2 r JOIN S1 s1 ON R2S1");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  std::string plan = PrintPlan(*compiled->plan);
  // One scan of the joined table, no runtime join, no distinct.
  EXPECT_NE(plan.find("SeqScan(R2S1_joined)"), std::string::npos) << plan;
  EXPECT_EQ(plan.find("HashJoin"), std::string::npos) << plan;
  EXPECT_EQ(plan.find("Distinct"), std::string::npos) << plan;
}

TEST_F(FusedJoinTest, FusedAndGenericAgree) {
  // The fused path must be a pure optimization: results equal the
  // generic composition on the normalized mapping.
  Figure4Config config;
  config.num_r = 150;
  config.num_s = 50;
  std::shared_ptr<ERSchema> m1_schema;
  auto m1 = MakeFigure4Database(Figure4M1(), config, &m1_schema);
  ASSERT_TRUE(m1.ok());
  const char* query =
      "SELECT r.r_id, r.r2_a1, r.r_a1, s1.s1_a1 FROM R2 r JOIN S1 s1 ON "
      "R2S1 WHERE r.r2_a1 < 800";
  auto fused = erql::QueryEngine::Execute(db_.get(), query);
  auto pg = erql::QueryEngine::Execute(pg_db_.get(), query);
  auto generic = erql::QueryEngine::Execute(m1->get(), query);
  ASSERT_TRUE(fused.ok()) << fused.status().ToString();
  ASSERT_TRUE(pg.ok()) << pg.status().ToString();
  ASSERT_TRUE(generic.ok()) << generic.status().ToString();
  EXPECT_EQ(fused->ToCanonicalString(), generic->ToCanonicalString());
  EXPECT_EQ(pg->ToCanonicalString(), generic->ToCanonicalString());
}

TEST_F(FusedJoinTest, LookupWeakByOwnerMatchesScan) {
  for (MappedDatabase* db : {db_.get(), pg_db_.get()}) {
    // S1 is swallowed here, so LookupWeakByOwner is unsupported —
    // NotImplemented, never wrong data.
    auto result =
        db->LookupWeakByOwner("S1", {Value::Int64(1)}, {"s1_a1"});
    EXPECT_EQ(result.status().code(), StatusCode::kNotImplemented);
  }
  // Own-table and folded storages support it.
  Figure4Config config;
  config.num_r = 150;
  config.num_s = 50;
  for (const MappingSpec& spec : {Figure4M1(), Figure4M5()}) {
    std::shared_ptr<ERSchema> schema;
    auto db = MakeFigure4Database(spec, config, &schema);
    ASSERT_TRUE(db.ok());
    auto scan = (*db)->ScanEntity("S1", {"s1_a1"});
    ASSERT_TRUE(scan.ok());
    auto all = CollectRows(scan->get());
    ASSERT_TRUE(all.ok());
    ASSERT_FALSE(all->empty());
    Value owner = all->front()[0];
    size_t expected = 0;
    for (const Row& row : *all) {
      if (row[0] == owner) ++expected;
    }
    auto lookup = (*db)->LookupWeakByOwner("S1", {owner}, {"s1_a1"});
    ASSERT_TRUE(lookup.ok()) << spec.name << ": "
                             << lookup.status().ToString();
    auto rows = CollectRows(lookup->get());
    ASSERT_TRUE(rows.ok());
    EXPECT_EQ(rows->size(), expected) << spec.name;
  }
}

}  // namespace
}  // namespace erbium
