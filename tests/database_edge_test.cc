// Edge-case CRUD tests: M6pg (materialized-join) storage semantics —
// lone rows, duplication-aware updates, edge deletion splitting rows —
// plus composite attributes end-to-end, GetEntity metadata, and
// miscellaneous error paths.

#include <gtest/gtest.h>

#include "er/ddl_parser.h"
#include "workload/figure4.h"

namespace erbium {
namespace {

Value I(int64_t v) { return Value::Int64(v); }

class M6PgCrudTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Figure4Config config;
    config.num_r = 0;  // start empty; we drive CRUD by hand
    config.num_s = 0;
    auto db = MakeFigure4Database(Figure4M6Pg(), config, &schema_);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(db).value();
    // Two R2 entities and one S with two S1s.
    for (int64_t id : {1, 2}) {
      Value::StructData fields;
      fields.emplace_back("r_id", I(id));
      fields.emplace_back("r2_a1", I(id * 10));
      fields.emplace_back("r2_a2", Value::String("x"));
      ASSERT_TRUE(
          db_->InsertEntity("R2", Value::Struct(std::move(fields))).ok());
    }
    ASSERT_TRUE(db_->InsertEntity(
                       "S", Value::Struct({{"s_id", I(1)},
                                           {"s_a1", I(5)},
                                           {"s_a2", Value::String("s")}}))
                    .ok());
    for (int64_t no : {1, 2}) {
      ASSERT_TRUE(db_->InsertEntity(
                         "S1", Value::Struct({{"s_id", I(1)},
                                              {"s1_no", I(no)},
                                              {"s1_a1", I(no * 100)},
                                              {"s1_a2", Value::String("w")}}))
                      .ok());
    }
  }

  size_t JoinedRowCount() {
    return db_->catalog().GetTable("R2S1_joined")->size();
  }

  std::shared_ptr<ERSchema> schema_;
  std::unique_ptr<MappedDatabase> db_;
};

TEST_F(M6PgCrudTest, LoneRowsMergeOnConnect) {
  // 2 lone R2 rows + 2 lone S1 rows.
  EXPECT_EQ(JoinedRowCount(), 4u);
  ASSERT_TRUE(db_->InsertRelationship("R2S1", {I(1)}, {I(1), I(1)}).ok());
  // Lone R2(1) and lone S1(1,1) merged into one row.
  EXPECT_EQ(JoinedRowCount(), 3u);
  EXPECT_EQ(db_->CountRelationships("R2S1").value(), 1u);
  // Entities are all still visible.
  EXPECT_EQ(db_->CountEntities("R2").value(), 2u);
  EXPECT_EQ(db_->CountEntities("S1").value(), 2u);
}

TEST_F(M6PgCrudTest, ManyToManyDuplicatesSegments) {
  ASSERT_TRUE(db_->InsertRelationship("R2S1", {I(1)}, {I(1), I(1)}).ok());
  ASSERT_TRUE(db_->InsertRelationship("R2S1", {I(1)}, {I(1), I(2)}).ok());
  ASSERT_TRUE(db_->InsertRelationship("R2S1", {I(2)}, {I(1), I(1)}).ok());
  // R2(1) appears on two rows, S1(1,1) on two rows: duplication.
  // Rows: (1,(1,1)), (1,(1,2)), (2,(1,1)) = 3, no lone rows left.
  EXPECT_EQ(JoinedRowCount(), 3u);
  // Entity scans still deduplicate.
  EXPECT_EQ(db_->CountEntities("R2").value(), 2u);
  EXPECT_EQ(db_->CountEntities("S1").value(), 2u);
  // An attribute update must hit every duplicated copy.
  ASSERT_TRUE(db_->UpdateAttribute("R2", {I(1)}, "r2_a1", I(-7)).ok());
  auto scan = db_->ScanEntity("R2", {"r2_a1"});
  ASSERT_TRUE(scan.ok());
  auto rows = CollectRows(scan->get());
  ASSERT_TRUE(rows.ok());
  for (const Row& row : *rows) {
    if (row[0] == I(1)) {
      EXPECT_EQ(row[1], I(-7));
    }
  }
  // And the joined scan sees the new value everywhere too.
  auto joined = db_->ScanRelationshipJoined("R2S1", {"r2_a1"}, {});
  ASSERT_TRUE(joined.ok());
  auto joined_rows = CollectRows(joined->get());
  ASSERT_TRUE(joined_rows.ok());
  for (const Row& row : *joined_rows) {
    if (row[0] == I(1)) {
      EXPECT_EQ(row[1], I(-7));
    }
  }
}

TEST_F(M6PgCrudTest, EdgeDeletePreservesLoneEntities) {
  ASSERT_TRUE(db_->InsertRelationship("R2S1", {I(1)}, {I(1), I(1)}).ok());
  ASSERT_TRUE(db_->DeleteRelationship("R2S1", {I(1)}, {I(1), I(1)}).ok());
  EXPECT_EQ(db_->CountRelationships("R2S1").value(), 0u);
  // Both entities survive as lone rows.
  EXPECT_TRUE(db_->EntityExists("R2", {I(1)}).value());
  EXPECT_TRUE(db_->EntityExists("S1", {I(1), I(1)}).value());
  EXPECT_EQ(JoinedRowCount(), 4u);
}

TEST_F(M6PgCrudTest, EntityDeleteRemovesAllCopies) {
  ASSERT_TRUE(db_->InsertRelationship("R2S1", {I(1)}, {I(1), I(1)}).ok());
  ASSERT_TRUE(db_->InsertRelationship("R2S1", {I(1)}, {I(1), I(2)}).ok());
  ASSERT_TRUE(db_->DeleteEntity("R2", {I(1)}).ok());
  EXPECT_FALSE(db_->EntityExists("R2", {I(1)}).value());
  EXPECT_FALSE(db_->EntityExists("R", {I(1)}).value());
  EXPECT_EQ(db_->CountRelationships("R2S1").value(), 0u);
  // The S1 partners survive (as lone rows).
  EXPECT_EQ(db_->CountEntities("S1").value(), 2u);
}

TEST(CompositeAttributeTest, RoundTripsThroughStorage) {
  ERSchema schema;
  ASSERT_TRUE(DdlParser::Execute(R"(
    CREATE ENTITY Place (
      id INT KEY,
      location STRUCT(lat FLOAT, lon FLOAT),
      tags STRING MULTIVALUED
    );)",
                                 &schema)
                  .ok());
  for (MultiValuedStorage mv :
       {MultiValuedStorage::kSeparateTable, MultiValuedStorage::kArray}) {
    MappingSpec spec = MappingSpec::Normalized();
    spec.default_multi_valued = mv;
    auto db = MappedDatabase::Create(&schema, spec);
    ASSERT_TRUE(db.ok());
    Value location = Value::Struct(
        {{"lat", Value::Float64(38.99)}, {"lon", Value::Float64(-76.94)}});
    ASSERT_TRUE(
        (*db)->InsertEntity(
                 "Place",
                 Value::Struct({{"id", I(1)},
                                {"location", location},
                                {"tags", Value::Array({Value::String("a"),
                                                       Value::String("b")})}}))
            .ok());
    auto entity = (*db)->GetEntity("Place", {I(1)});
    ASSERT_TRUE(entity.ok());
    const Value* loc = entity->FindField("location");
    ASSERT_NE(loc, nullptr);
    EXPECT_EQ(*loc, location);
    const Value* tags = entity->FindField("tags");
    ASSERT_NE(tags, nullptr);
    EXPECT_EQ(tags->array().size(), 2u);
    // Struct field mismatch is rejected by validation.
    Status st = (*db)->InsertEntity(
        "Place",
        Value::Struct({{"id", I(2)},
                       {"location", Value::Struct({{"lon", Value::Float64(0)},
                                                   {"lat", Value::Float64(0)}})}}));
    EXPECT_EQ(st.code(), StatusCode::kConstraintViolation) << st.ToString();
  }
}

TEST(GetEntityMetadataTest, IncludesSpecificClass) {
  Figure4Config config;
  config.num_r = 60;
  config.num_s = 20;
  std::shared_ptr<ERSchema> schema;
  auto db = MakeFigure4Database(Figure4M1(), config, &schema);
  ASSERT_TRUE(db.ok());
  auto scan = (*db)->ScanEntity("R4", {});
  ASSERT_TRUE(scan.ok());
  auto rows = CollectRows(scan->get());
  ASSERT_TRUE(rows.ok());
  ASSERT_FALSE(rows->empty());
  auto entity = (*db)->GetEntity("R", {rows->front()[0]});
  ASSERT_TRUE(entity.ok());
  const Value* cls = entity->FindField("_class");
  ASSERT_NE(cls, nullptr);
  EXPECT_EQ(*cls, Value::String("R4"));
  // R4-specific attribute is present, sibling attributes are not.
  EXPECT_NE(entity->FindField("r4_a1"), nullptr);
  EXPECT_EQ(entity->FindField("r2_a1"), nullptr);
}

TEST(ErrorPathTest, UsefulErrorsForBadCalls) {
  Figure4Config config;
  config.num_r = 30;
  config.num_s = 10;
  std::shared_ptr<ERSchema> schema;
  auto db = MakeFigure4Database(Figure4M1(), config, &schema);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->InsertEntity("Nope", Value::Struct({})).code(),
            StatusCode::kNotFound);
  EXPECT_EQ((*db)->InsertEntity("R", Value::Int64(3)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ((*db)->InsertEntity("R", Value::Struct({})).code(),
            StatusCode::kConstraintViolation);  // missing key
  EXPECT_EQ((*db)->GetEntity("R", {I(999999)}).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ((*db)->UpdateAttribute("R", {I(1)}, "r_id", I(2)).code(),
            StatusCode::kInvalidArgument);  // key update
  EXPECT_EQ((*db)->UpdateAttribute("R", {I(1)}, "ghost", I(2)).code(),
            StatusCode::kAnalysisError);
  EXPECT_EQ((*db)->ScanEntity("R", {"ghost"}).status().code(),
            StatusCode::kAnalysisError);
  EXPECT_EQ((*db)->ScanRelationship("ghost").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ((*db)->LookupEntity("R", {I(1), I(2)}, {}).status().code(),
            StatusCode::kInvalidArgument);  // key arity
  // Weak entity without its owner.
  EXPECT_EQ((*db)->InsertEntity(
                     "S1", Value::Struct({{"s_id", I(424242)},
                                          {"s1_no", I(1)}}))
                .code(),
            StatusCode::kConstraintViolation);
}

TEST(WorkloadDeterminismTest, SameSeedSameData) {
  Figure4Config config;
  config.num_r = 80;
  config.num_s = 25;
  std::shared_ptr<ERSchema> s1, s2;
  auto a = MakeFigure4Database(Figure4M1(), config, &s1);
  auto b = MakeFigure4Database(Figure4M1(), config, &s2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto ea = (*a)->GetEntity("R", {I(11)});
  auto eb = (*b)->GetEntity("R", {I(11)});
  ASSERT_TRUE(ea.ok());
  ASSERT_TRUE(eb.ok());
  EXPECT_EQ(ea->ToString(), eb->ToString());
  config.seed = 43;
  std::shared_ptr<ERSchema> s3;
  auto c = MakeFigure4Database(Figure4M1(), config, &s3);
  ASSERT_TRUE(c.ok());
  auto ec = (*c)->GetEntity("R", {I(11)});
  ASSERT_TRUE(ec.ok());
  EXPECT_NE(ea->ToString(), ec->ToString());
}

}  // namespace
}  // namespace erbium
