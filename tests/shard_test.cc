// Sharded-engine tests: schema-derived co-partitioning (anchors via ISA
// and weak edges, relationship dominance), strict ERBIUM_SHARDS parsing,
// the router's statement classification (single-shard / shard-local /
// scatter-gather), sharded-vs-serial result equivalence across mappings,
// fan-out DDL/REMAP, SHOW SHARDS, sharded ATTACH layout checks, and a
// 32-client hammer against a serial oracle. The hammer runs under TSan
// in CI — the assertions matter, but so does the absence of races.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "api/statement_runner.h"
#include "shard/co_partition.h"
#include "workload/figure4.h"

namespace erbium {
namespace {

using api::StatementOutcome;
using api::StatementRunner;

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/erbium_shard_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::unique_ptr<StatementRunner> Figure4Runner(int shards) {
  StatementRunner::Options options;
  options.figure4 = true;
  options.figure4_num_r = 400;
  options.figure4_num_s = 120;
  options.shards = shards;
  auto runner = StatementRunner::Create(std::move(options));
  EXPECT_TRUE(runner.ok()) << runner.status().ToString();
  return runner.ok() ? std::move(runner).value() : nullptr;
}

// ---- ERBIUM_SHARDS strict parsing ------------------------------------------

TEST(ShardCountFromEnvTest, StrictParsing) {
  const char* saved = std::getenv("ERBIUM_SHARDS");
  std::string saved_value = saved == nullptr ? "" : saved;

  ::unsetenv("ERBIUM_SHARDS");
  EXPECT_EQ(shard::ShardCountFromEnv(), 1);
  ::setenv("ERBIUM_SHARDS", "", 1);
  EXPECT_EQ(shard::ShardCountFromEnv(), 1);
  ::setenv("ERBIUM_SHARDS", "4", 1);
  EXPECT_EQ(shard::ShardCountFromEnv(), 4);
  ::setenv("ERBIUM_SHARDS", "1", 1);
  EXPECT_EQ(shard::ShardCountFromEnv(), 1);
  // Rejected: zero, negatives, garbage, trailing junk, overflow — all
  // fall back to 1 (warn once to stderr, never abort).
  for (const char* bad : {"0", "-1", "-4", "abc", "4x", "x4", "4.5", " ",
                          "99999999999999999999"}) {
    ::setenv("ERBIUM_SHARDS", bad, 1);
    EXPECT_EQ(shard::ShardCountFromEnv(), 1) << "ERBIUM_SHARDS='" << bad
                                             << "'";
  }

  if (saved == nullptr) {
    ::unsetenv("ERBIUM_SHARDS");
  } else {
    ::setenv("ERBIUM_SHARDS", saved_value.c_str(), 1);
  }
}

// ---- Co-partition map properties -------------------------------------------

TEST(CoPartitionMapTest, AnchorsFollowIsaAndWeakEdges) {
  auto schema = MakeFigure4Schema();
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  auto map = shard::CoPartitionMap::Build(*schema, Figure4M1(), 4);
  ASSERT_TRUE(map.ok()) << map.status().ToString();

  // Subclasses anchor at the hierarchy root: R3 extends R1 extends R.
  const shard::EntityPlacement* r3 = map->entity("R3");
  ASSERT_NE(r3, nullptr);
  EXPECT_EQ(r3->anchor, "R");
  // Weak entities anchor at their owner.
  const shard::EntityPlacement* s1 = map->entity("S1");
  ASSERT_NE(s1, nullptr);
  EXPECT_EQ(s1->anchor, "S");

  // Co-location: everything anchored at one root shares a shard for
  // equal key prefixes; distinct hierarchies do not co-anchor.
  EXPECT_TRUE(map->CoAnchored("R", "R3"));
  EXPECT_TRUE(map->CoAnchored("R1", "R4"));
  EXPECT_TRUE(map->CoAnchored("S", "S2"));
  EXPECT_FALSE(map->CoAnchored("R", "S"));

  // The routing attributes are the anchor-key prefix of the full key.
  ASSERT_EQ(r3->routing_attrs.size(), 1u);
  EXPECT_EQ(r3->routing_attrs[0], "r_id");
}

TEST(CoPartitionMapTest, RoutingIsDeterministicAndInRange) {
  auto schema = MakeFigure4Schema();
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  auto a = shard::CoPartitionMap::Build(*schema, Figure4M1(), 4);
  auto b = shard::CoPartitionMap::Build(*schema, Figure4M1(), 4);
  ASSERT_TRUE(a.ok() && b.ok());
  std::set<int> seen;
  for (int64_t id = 0; id < 256; ++id) {
    std::vector<Value> key = {Value::Int64(id)};
    int shard = a->RouteValues(key);
    EXPECT_GE(shard, 0);
    EXPECT_LT(shard, 4);
    // Same key, same shard — across independently built maps.
    EXPECT_EQ(shard, b->RouteValues(key));
    seen.insert(shard);
  }
  // 256 consecutive keys must not all hash to one shard.
  EXPECT_EQ(seen.size(), 4u);
}

TEST(CoPartitionMapTest, FusedStoragesRejectedAtShardsAboveOne) {
  auto schema = MakeFigure4Schema();
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  // M6 factorizes R2 with S1 — both endpoints in one structure, which
  // hash routing cannot split.
  Status st = shard::ValidateShardable(*schema, Figure4M6(), 4);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("fused"), std::string::npos)
      << st.ToString();
  // The same spec is fine unsharded.
  EXPECT_TRUE(shard::ValidateShardable(*schema, Figure4M6(), 1).ok());
  EXPECT_TRUE(shard::ValidateShardable(*schema, Figure4M1(), 4).ok());
}

// ---- Router classification table -------------------------------------------

TEST(ShardRouteClassificationTest, StatementKindsByRouteClass) {
  std::unique_ptr<StatementRunner> runner = Figure4Runner(4);
  ASSERT_NE(runner, nullptr);

  struct Case {
    const char* query;
    shard::ShardRouteClass expected;
  };
  const Case kCases[] = {
      // Point lookups route to exactly one shard by key hash; subclass
      // keys route by the inherited root-key prefix.
      {"SELECT r_a1 FROM R WHERE r_id = 42",
       shard::ShardRouteClass::kSingleShard},
      {"SELECT r_id, r3_a1 FROM R3 WHERE r_id = 7",
       shard::ShardRouteClass::kSingleShard},
      // Broadcast scans where every branch touches only its own shard.
      {"SELECT r_id, r_a1 FROM R", shard::ShardRouteClass::kLocalJoin},
      {"SELECT r_id, r_a1 FROM R WHERE r_a1 < 300",
       shard::ShardRouteClass::kLocalJoin},
      // Weak identifying join: S1 co-anchors with its owner S, so the
      // join is provably shard-local on every shard.
      {"SELECT s.s_id, s1.s1_no, s1.s1_a1 FROM S s JOIN S1 s1 ON S_S1",
       shard::ShardRouteClass::kLocalJoin},
      // Aggregates merge partial accumulators at the coordinator.
      {"SELECT count(*) AS n FROM R", shard::ShardRouteClass::kScatterGather},
      {"SELECT r_a4, count(*) AS n, avg(r_a1) AS mean FROM R",
       shard::ShardRouteClass::kScatterGather},
      // Relationship join to a non-co-anchored side: the new side's rows
      // hash by their own key, so its scan unions every shard.
      {"SELECT r.r_id, s.s_id, rs_a1 FROM R r JOIN S s ON RS",
       shard::ShardRouteClass::kScatterGather},
      // Theta join: no co-partitioning argument applies.
      {"SELECT a.r_id, b.r_id AS other FROM R3 a JOIN R4 b ON "
       "a.r1_a1 = b.r1_a1",
       shard::ShardRouteClass::kScatterGather},
  };
  for (const Case& c : kCases) {
    SCOPED_TRACE(c.query);
    auto outcome = runner->Execute(c.query);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    EXPECT_EQ(outcome->result.shard_count, 4);
    EXPECT_EQ(shard::ShardRouteClassName(outcome->result.shard_route),
              std::string(shard::ShardRouteClassName(c.expected)));
    if (c.expected == shard::ShardRouteClass::kSingleShard) {
      EXPECT_GE(outcome->result.shard_target, 0);
      EXPECT_LT(outcome->result.shard_target, 4);
      // The outcome tag SHOW SESSIONS renders matches the plan's target.
      EXPECT_EQ(outcome->shard, outcome->result.shard_target);
    } else {
      EXPECT_EQ(outcome->result.shard_target, -1);
      EXPECT_EQ(outcome->shard, -1);
    }
  }

  // EXPLAIN carries the routing decision as a note.
  auto explain = runner->Execute("EXPLAIN SELECT count(*) AS n FROM R");
  ASSERT_TRUE(explain.ok()) << explain.status().ToString();
  bool found = false;
  for (const Row& row : explain->result.rows) {
    if (row[0].as_string().find("shard routing: scatter-gather") !=
        std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// ---- Sharded vs serial equivalence -----------------------------------------

const char* kEquivalenceQueries[] = {
    "SELECT r_id, r_a1 FROM R",
    "SELECT r_id, r_a1, r1_a1, r3_a1 FROM R3",
    "SELECT r_id, r2_a1, r2_a2 FROM R2 WHERE r2_a1 < 500",
    "SELECT r_id, r_mv1, r_mv2, r_mv3 FROM R",
    "SELECT r_id, unnest(r_mv1) AS v FROM R",
    "SELECT r_id, r_mv1 FROM R WHERE r_id = 42",
    "SELECT r_id, cardinality(r_mv1) AS n FROM R WHERE r_id < 50",
    "SELECT r_a1 FROM R WHERE r_id = 42",
    "SELECT r.r_id, s.s_id, rs_a1 FROM R r JOIN S s ON RS WHERE s.s_a1 < 400",
    "SELECT r.r_id, s1.s_id, s1.s1_no FROM R2 r JOIN S1 s1 ON R2S1",
    "SELECT s.s_id, s1.s1_no, s1.s1_a1 FROM S s JOIN S1 s1 ON S_S1",
    "SELECT p.r_id, count(*) AS advisees FROM R1 p JOIN R3 c ON R1R3",
    "SELECT r_a4, count(*) AS n, avg(r_a1) AS mean FROM R",
    "SELECT count(*) AS n FROM R3",
    "SELECT a.r_id, b.r_id AS other FROM R3 a JOIN R4 b ON a.r1_a1 = b.r1_a1",
    "SELECT DISTINCT r_a4 FROM R WHERE r_a4 < 5",
    "SELECT r_id, r_a1 FROM R WHERE r_a1 < 300 ORDER BY r_a1 DESC, r_id",
    "SELECT r.r_id, sum(rs_a1) AS total FROM R r JOIN S s ON RS",
    "SELECT count(DISTINCT r_a4) AS n FROM R",
};

void ExpectSameResults(StatementRunner* sharded, StatementRunner* serial,
                       const char* query) {
  SCOPED_TRACE(query);
  auto a = sharded->Execute(query);
  auto b = serial->Execute(query);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(a->result.ToCanonicalString(), b->result.ToCanonicalString());
}

TEST(ShardedEquivalenceTest, MatchesSerialAcrossQueryBattery) {
  std::unique_ptr<StatementRunner> sharded = Figure4Runner(4);
  std::unique_ptr<StatementRunner> serial = Figure4Runner(1);
  ASSERT_NE(sharded, nullptr);
  ASSERT_NE(serial, nullptr);
  for (const char* query : kEquivalenceQueries) {
    ExpectSameResults(sharded.get(), serial.get(), query);
  }
}

TEST(ShardedEquivalenceTest, MatchesSerialAfterEveryRemap) {
  // REMAP on a sharded engine redistributes every instance and edge
  // through the new co-partition map (relationship dominance can flip
  // with the storage choice); results must stay identical to serial.
  std::unique_ptr<StatementRunner> sharded = Figure4Runner(4);
  std::unique_ptr<StatementRunner> serial = Figure4Runner(1);
  ASSERT_NE(sharded, nullptr);
  ASSERT_NE(serial, nullptr);
  for (const char* preset : {"m2", "m3", "m4", "m5", "m1"}) {
    SCOPED_TRACE(preset);
    auto a = sharded->Execute(std::string("REMAP ") + preset);
    auto b = serial->Execute(std::string("REMAP ") + preset);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    for (const char* query : kEquivalenceQueries) {
      ExpectSameResults(sharded.get(), serial.get(), query);
    }
  }
}

TEST(ShardedRemapTest, FusedPresetRejectedEngineStaysUsable) {
  std::unique_ptr<StatementRunner> runner = Figure4Runner(4);
  ASSERT_NE(runner, nullptr);
  auto before = runner->Execute("SELECT count(*) AS n FROM R");
  ASSERT_TRUE(before.ok());

  // M6 factorizes R2 with S1 — unshardable; the REMAP must fail without
  // taking the engine down.
  auto remap = runner->Execute("REMAP m6");
  ASSERT_FALSE(remap.ok());
  EXPECT_NE(remap.status().ToString().find("fused"), std::string::npos)
      << remap.status().ToString();

  auto after = runner->Execute("SELECT count(*) AS n FROM R");
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(before->result.ToCanonicalString(),
            after->result.ToCanonicalString());
}

// ---- DDL fan-out, insert routing, SHOW SHARDS ------------------------------

TEST(ShardedDdlTest, FanOutCreateThenRoutedInserts) {
  StatementRunner::Options options;
  options.shards = 4;
  auto created = StatementRunner::Create(std::move(options));
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  std::unique_ptr<StatementRunner> runner = std::move(created).value();

  ASSERT_TRUE(
      runner->Execute("CREATE ENTITY D ( id INT KEY, v INT )").ok());
  std::set<int> shards_hit;
  for (int id = 0; id < 64; ++id) {
    auto ack = runner->Execute("INSERT D (id = " + std::to_string(id) +
                               ", v = " + std::to_string(id * 3) + ")");
    ASSERT_TRUE(ack.ok()) << ack.status().ToString();
    ASSERT_GE(ack->shard, 0);
    ASSERT_LT(ack->shard, 4);
    shards_hit.insert(ack->shard);
  }
  // 64 consecutive keys must spread over all four shards.
  EXPECT_EQ(shards_hit.size(), 4u);

  auto rows = runner->Execute("SELECT id, v FROM D");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->result.rows.size(), 64u);
  for (const Row& row : rows->result.rows) {
    EXPECT_EQ(row[1].as_int64(), 3 * row[0].as_int64());
  }

  // Duplicate keys are rejected across shards, not just locally.
  EXPECT_FALSE(runner->Execute("INSERT D (id = 7, v = 0)").ok());
}

TEST(ShowShardsTest, OneRowPerShardInsertsSumMatches) {
  std::unique_ptr<StatementRunner> runner = Figure4Runner(4);
  ASSERT_NE(runner, nullptr);

  auto show = runner->Execute("SHOW SHARDS");
  ASSERT_TRUE(show.ok()) << show.status().ToString();
  ASSERT_EQ(show->result.rows.size(), 4u);
  // Column 1 is the per-shard insert counter; the figure4 preload routed
  // every generated instance, so the counters sum to the preload size
  // and at least two shards got a share.
  int64_t total = 0;
  int nonzero = 0;
  for (const Row& row : show->result.rows) {
    total += row[1].as_int64();
    if (row[1].as_int64() > 0) ++nonzero;
  }
  EXPECT_GT(total, 0);
  EXPECT_GE(nonzero, 2);

  // SHOW SHARDS also answers on an unsharded runner: one row.
  std::unique_ptr<StatementRunner> serial = Figure4Runner(1);
  ASSERT_NE(serial, nullptr);
  auto one = serial->Execute("SHOW SHARDS");
  ASSERT_TRUE(one.ok()) << one.status().ToString();
  EXPECT_EQ(one->result.rows.size(), 1u);
}

// ---- Sharded ATTACH layout -------------------------------------------------

TEST(ShardedAttachTest, RoundTripAndLayoutChecks) {
  const std::string dir = FreshDir("attach");
  {
    StatementRunner::Options options;
    options.shards = 4;
    options.attach_dir = dir;
    auto created = StatementRunner::Create(std::move(options));
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    std::unique_ptr<StatementRunner> runner = std::move(created).value();
    ASSERT_TRUE(
        runner->Execute("CREATE ENTITY P ( id INT KEY, v INT )").ok());
    for (int id = 0; id < 40; ++id) {
      ASSERT_TRUE(runner
                      ->Execute("INSERT P (id = " + std::to_string(id) +
                                ", v = " + std::to_string(id * 7) + ")")
                      .ok());
    }
    auto ckpt = runner->Execute("CHECKPOINT");
    ASSERT_TRUE(ckpt.ok()) << ckpt.status().ToString();
    // Sharded checkpoints report one line per shard.
    EXPECT_EQ(ckpt->result.rows.size(), 4u);
  }

  // The on-disk layout: a SHARDS manifest plus one subdirectory per
  // shard, each with its own WAL namespace.
  EXPECT_TRUE(std::filesystem::exists(dir + "/SHARDS"));
  for (int k = 0; k < 4; ++k) {
    EXPECT_TRUE(std::filesystem::exists(dir + "/shard-" + std::to_string(k)))
        << k;
  }

  // Reopen with the same count: everything recovers.
  {
    StatementRunner::Options options;
    options.shards = 4;
    options.attach_dir = dir;
    auto reopened = StatementRunner::Create(std::move(options));
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    auto rows = (*reopened)->Execute("SELECT id, v FROM P");
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    EXPECT_EQ(rows->result.rows.size(), 40u);
    for (const Row& row : rows->result.rows) {
      EXPECT_EQ(row[1].as_int64(), 7 * row[0].as_int64());
    }
  }

  // Reopen with a different count: refused, naming the recorded count —
  // silently rerouting lookups against the wrong modulus would read
  // misses as absences.
  {
    StatementRunner::Options options;
    options.shards = 2;
    options.attach_dir = dir;
    auto mismatched = StatementRunner::Create(std::move(options));
    ASSERT_FALSE(mismatched.ok());
    EXPECT_NE(mismatched.status().ToString().find("shards=4"),
              std::string::npos)
        << mismatched.status().ToString();
  }
}

TEST(ShardedAttachTest, RefusesLegacySingleDatabaseLayout) {
  const std::string dir = FreshDir("legacy");
  // A directory created unsharded has a top-level wal.erblog.
  {
    StatementRunner::Options options;
    options.shards = 1;
    options.attach_dir = dir;
    auto created = StatementRunner::Create(std::move(options));
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    ASSERT_TRUE(
        (*created)->Execute("CREATE ENTITY L ( id INT KEY )").ok());
  }
  StatementRunner::Options options;
  options.shards = 4;
  options.attach_dir = dir;
  auto sharded = StatementRunner::Create(std::move(options));
  ASSERT_FALSE(sharded.ok());
  EXPECT_NE(sharded.status().ToString().find("shards=1"), std::string::npos)
      << sharded.status().ToString();
}

// ---- 32-client hammer vs serial oracle -------------------------------------

TEST(ShardedHammerTest, ThirtyTwoClientsMatchSerialOracle) {
  constexpr int kClients = 32;
  constexpr int kPerClient = 64;
  constexpr int kReaders = 4;

  StatementRunner::Options options;
  options.shards = 4;
  auto created = StatementRunner::Create(std::move(options));
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  std::unique_ptr<StatementRunner> runner = std::move(created).value();
  ASSERT_TRUE(
      runner->Execute("CREATE ENTITY H ( id INT KEY, v INT )").ok());

  std::atomic<int> failures{0};
  std::atomic<bool> writers_done{false};
  std::vector<std::thread> writers;
  writers.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    writers.emplace_back([&, t] {
      for (int k = 0; k < kPerClient; ++k) {
        int64_t id = static_cast<int64_t>(t) * kPerClient + k;
        auto r = runner->Execute("INSERT H (id = " + std::to_string(id) +
                                 ", v = " + std::to_string(7 * id) + ")");
        if (!r.ok()) ++failures;
      }
    });
  }
  // Readers run scatter-gather scans and point lookups against the live
  // write storm; every observed row must satisfy the invariant, and
  // per-thread scan sizes never shrink (insert-only workload).
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      size_t last = 0;
      while (!writers_done.load(std::memory_order_acquire)) {
        auto rows = runner->Execute("SELECT id, v FROM H");
        if (!rows.ok()) {
          ++failures;
          continue;
        }
        if (rows->result.rows.size() < last) ++failures;
        last = rows->result.rows.size();
        for (const Row& row : rows->result.rows) {
          if (row[1].as_int64() != 7 * row[0].as_int64()) ++failures;
        }
        auto point = runner->Execute(
            "SELECT v FROM H WHERE id = " + std::to_string(t * kPerClient));
        if (!point.ok()) ++failures;
      }
    });
  }
  for (std::thread& t : writers) t.join();
  writers_done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  ASSERT_EQ(failures.load(), 0);

  // Serial oracle: an unsharded runner fed the same inserts must agree
  // on the full table and on merged aggregates (count / sum / avg are
  // the accumulator-merge cases).
  StatementRunner::Options serial_options;
  auto serial_created = StatementRunner::Create(std::move(serial_options));
  ASSERT_TRUE(serial_created.ok());
  std::unique_ptr<StatementRunner> serial =
      std::move(serial_created).value();
  ASSERT_TRUE(
      serial->Execute("CREATE ENTITY H ( id INT KEY, v INT )").ok());
  for (int64_t id = 0; id < kClients * kPerClient; ++id) {
    ASSERT_TRUE(serial
                    ->Execute("INSERT H (id = " + std::to_string(id) +
                              ", v = " + std::to_string(7 * id) + ")")
                    .ok());
  }
  for (const char* query :
       {"SELECT id, v FROM H", "SELECT count(*) AS n FROM H",
        "SELECT count(*) AS n, avg(v) AS mean FROM H",
        "SELECT sum(v) AS s FROM H"}) {
    ExpectSameResults(runner.get(), serial.get(), query);
  }
}

}  // namespace
}  // namespace erbium
