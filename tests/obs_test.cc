// Tests for the observability subsystem: metric registration and merge
// semantics (thread-local shards, retired totals), histogram bucket
// edges, reset between queries, and the analyze flag used by EXPLAIN
// ANALYZE.

#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "mini_json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace erbium {
namespace obs {
namespace {

TEST(MetricsTest, CounterRegistrationIsIdempotent) {
  MetricsRegistry registry;
  Counter a = registry.counter("queries");
  Counter b = registry.counter("queries");
  a.Increment();
  b.Increment(4);
  EXPECT_EQ(a.Value(), 5u);
  EXPECT_EQ(registry.CounterValue("queries"), 5u);
  EXPECT_EQ(registry.CounterValue("never_registered"), 0u);
}

TEST(MetricsTest, ConcurrentCounterIncrements) {
  constexpr uint64_t kPerThread = 20000;
  for (int threads : {1, 8}) {
    MetricsRegistry registry;
    Counter counter = registry.counter("hits");
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&counter] {
        for (uint64_t i = 0; i < kPerThread; ++i) counter.Increment();
      });
    }
    for (std::thread& w : workers) w.join();
    // Worker shards retired on thread exit must still be counted.
    EXPECT_EQ(counter.Value(), kPerThread * threads) << threads << " threads";
  }
}

TEST(MetricsTest, CountersVisibleWhileThreadsStillRun) {
  MetricsRegistry registry;
  Counter counter = registry.counter("live");
  std::thread worker([&counter] { counter.Increment(7); });
  worker.join();
  counter.Increment(1);
  EXPECT_EQ(counter.Value(), 8u);
}

TEST(MetricsTest, GaugeSetAndAdd) {
  MetricsRegistry registry;
  Gauge gauge = registry.gauge("open_scans");
  gauge.Set(10);
  gauge.Add(-3);
  EXPECT_EQ(gauge.Value(), 7);
  EXPECT_EQ(registry.GaugeValue("open_scans"), 7);
}

TEST(MetricsTest, HistogramBucketEdges) {
  MetricsRegistry registry;
  Histogram hist = registry.histogram("latency", {1.0, 10.0, 100.0});
  // v <= bound lands in that bucket: exact edges stay in the lower bucket.
  hist.Observe(0.5);    // bucket 0
  hist.Observe(1.0);    // bucket 0 (edge)
  hist.Observe(1.5);    // bucket 1
  hist.Observe(10.0);   // bucket 1 (edge)
  hist.Observe(100.0);  // bucket 2 (edge)
  hist.Observe(1e6);    // overflow
  HistogramSnapshot snap = hist.Snapshot();
  ASSERT_EQ(snap.bounds, (std::vector<double>{1.0, 10.0, 100.0}));
  ASSERT_EQ(snap.buckets.size(), 4u);
  EXPECT_EQ(snap.buckets[0], 2u);
  EXPECT_EQ(snap.buckets[1], 2u);
  EXPECT_EQ(snap.buckets[2], 1u);
  EXPECT_EQ(snap.buckets[3], 1u);
  EXPECT_EQ(snap.count, 6u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.5 + 1.0 + 1.5 + 10.0 + 100.0 + 1e6);
}

TEST(MetricsTest, HistogramMergesAcrossThreads) {
  MetricsRegistry registry;
  Histogram hist = registry.histogram("rows", {10.0});
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&hist] {
      hist.Observe(5.0);
      hist.Observe(50.0);
    });
  }
  for (std::thread& w : workers) w.join();
  HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.buckets[0], 4u);
  EXPECT_EQ(snap.buckets[1], 4u);
  EXPECT_EQ(snap.count, 8u);
}

TEST(MetricsTest, ResetZeroesEverythingButKeepsDefinitions) {
  MetricsRegistry registry;
  Counter counter = registry.counter("c");
  Gauge gauge = registry.gauge("g");
  Histogram hist = registry.histogram("h", {2.0});
  counter.Increment(9);
  gauge.Set(-4);
  hist.Observe(1.0);
  hist.Observe(3.0);
  registry.Reset();
  EXPECT_EQ(counter.Value(), 0u);
  EXPECT_EQ(gauge.Value(), 0);
  HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.bounds, (std::vector<double>{2.0}));  // bounds survive
  EXPECT_EQ(snap.buckets, (std::vector<uint64_t>{0u, 0u}));
  // Handles keep working after the reset (next query's counts).
  counter.Increment(2);
  hist.Observe(1.0);
  EXPECT_EQ(counter.Value(), 2u);
  EXPECT_EQ(hist.Snapshot().count, 1u);
}

TEST(MetricsTest, ToJsonContainsAllMetricKinds) {
  MetricsRegistry registry;
  registry.counter("b_counter").Increment(3);
  registry.counter("a_counter").Increment(1);
  registry.gauge("depth").Set(2);
  registry.histogram("lat", {1.0}).Observe(0.5);
  std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"a_counter\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"b_counter\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"depth\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"lat\""), std::string::npos) << json;
  // Keys come out sorted, so diffs between dumps are stable.
  EXPECT_LT(json.find("a_counter"), json.find("b_counter"));
}

TEST(MetricsTest, ToJsonEscapesQuotesAndBackslashes) {
  MetricsRegistry registry;
  registry.counter("weird\"name\\with\tescapes\n").Increment(2);
  registry.gauge(std::string("ctrl\x01" "byte")).Set(1);
  std::string json = registry.ToJson();
  // Raw quotes/backslashes/control bytes must never leak unescaped.
  EXPECT_NE(json.find("weird\\\"name\\\\with\\tescapes\\n"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("ctrl\\u0001byte"), std::string::npos) << json;
  testjson::Node root;
  std::string error;
  ASSERT_TRUE(testjson::ParseJson(json, &root, &error)) << error << "\n"
                                                        << json;
}

TEST(MetricsTest, ToJsonRoundTripsThroughStrictParser) {
  MetricsRegistry registry;
  registry.counter("reads").Increment(41);
  registry.gauge("depth").Set(-7);
  Histogram hist = registry.histogram("lat_ms", {0.5, 2.5, 10.0});
  hist.Observe(0.25);
  hist.Observe(0.1);  // sum = 0.35, a value %g must reproduce exactly
  hist.Observe(7.125);
  std::string json = registry.ToJson();
  testjson::Node root;
  std::string error;
  ASSERT_TRUE(testjson::ParseJson(json, &root, &error)) << error << "\n"
                                                        << json;
  const testjson::Node* counters = root.Find("counters");
  ASSERT_NE(counters, nullptr);
  const testjson::Node* reads = counters->Find("reads");
  ASSERT_NE(reads, nullptr);
  EXPECT_EQ(reads->number, 41.0);
  const testjson::Node* gauges = root.Find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_EQ(gauges->Find("depth")->number, -7.0);
  const testjson::Node* hists = root.Find("histograms");
  ASSERT_NE(hists, nullptr);
  const testjson::Node* lat = hists->Find("lat_ms");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->Find("count")->number, 3.0);
  // Doubles survive the round trip bit-exactly (shortest %g encoding).
  EXPECT_EQ(lat->Find("sum")->number, 0.25 + 0.1 + 7.125);
  ASSERT_EQ(lat->Find("buckets")->elements.size(), 4u);
  EXPECT_EQ(lat->Find("buckets")->elements[0].number, 2.0);
  EXPECT_EQ(lat->Find("buckets")->elements[2].number, 1.0);
}

TEST(MetricsTest, ToJsonKeysAreSortedAndStable) {
  MetricsRegistry registry;
  registry.counter("zz").Increment();
  registry.counter("aa").Increment();
  registry.counter("mm").Increment();
  std::string first = registry.ToJson();
  testjson::Node root;
  ASSERT_TRUE(testjson::ParseJson(first, &root));
  const testjson::Node* counters = root.Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_EQ(counters->members.size(), 3u);
  EXPECT_EQ(counters->members[0].first, "aa");
  EXPECT_EQ(counters->members[1].first, "mm");
  EXPECT_EQ(counters->members[2].first, "zz");
  // Registration order must not change the rendering.
  EXPECT_EQ(registry.ToJson(), first);
}

TEST(MetricsTest, JsonDoubleRoundTripsExactly) {
  for (double v : {0.1, 1.0 / 3.0, 1e-9, 123456.789, 5e15, 2.5, -0.0625}) {
    std::string text = JsonDouble(v);
    EXPECT_EQ(std::strtod(text.c_str(), nullptr), v) << text;
  }
  // Non-finite values have no JSON spelling; they degrade to zero.
  EXPECT_EQ(JsonDouble(std::numeric_limits<double>::infinity()), "0");
}

TEST(MetricsTest, SnapshotMatchesHandles) {
  MetricsRegistry registry;
  registry.counter("c1").Increment(5);
  registry.gauge("g1").Set(-2);
  Histogram hist = registry.histogram("h1", {1.0, 10.0});
  hist.Observe(0.5);
  hist.Observe(5.0);
  hist.Observe(500.0);
  RegistrySnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("c1"), 5u);
  EXPECT_EQ(snap.gauges.at("g1"), -2);
  const HistogramSnapshot& h = snap.histograms.at("h1");
  EXPECT_EQ(h.count, 3u);
  EXPECT_EQ(h.buckets, (std::vector<uint64_t>{1u, 1u, 1u}));
  EXPECT_DOUBLE_EQ(h.sum, 505.5);
}

TEST(MetricsTest, GlobalRegistryIsASingleton) {
  Counter a = MetricsRegistry::Global().counter("obs_test.global");
  uint64_t before = a.Value();
  MetricsRegistry::Global().counter("obs_test.global").Increment();
  EXPECT_EQ(a.Value(), before + 1);
}

TEST(TraceTest, ScopedAnalyzeRestoresPreviousState) {
  ASSERT_FALSE(AnalyzeEnabled());
  {
    ScopedAnalyze outer;
    EXPECT_TRUE(AnalyzeEnabled());
    {
      ScopedAnalyze inner;
      EXPECT_TRUE(AnalyzeEnabled());
    }
    EXPECT_TRUE(AnalyzeEnabled());  // inner exit keeps outer window open
  }
  EXPECT_FALSE(AnalyzeEnabled());
}

TEST(TraceTest, FormatNsUnitBoundaries) {
  // Each unit band, including both sides of every boundary and the
  // seconds range (durations >= 1s must not render as thousands of ms).
  EXPECT_EQ(FormatNs(0), "0ns");
  EXPECT_EQ(FormatNs(999), "999ns");
  EXPECT_EQ(FormatNs(1000), "1.0us");
  EXPECT_EQ(FormatNs(999'949), "999.9us");
  EXPECT_EQ(FormatNs(1'000'000), "1.00ms");
  EXPECT_EQ(FormatNs(50'000'000), "50.00ms");
  EXPECT_EQ(FormatNs(999'994'999), "999.99ms");
  EXPECT_EQ(FormatNs(1'000'000'000), "1.00s");
  EXPECT_EQ(FormatNs(2'345'000'000), "2.35s");
  EXPECT_EQ(FormatNs(61'000'000'000), "61.00s");
}

TEST(TraceTest, OpStatsMerge) {
  OpStats a;
  a.opens = 1;
  a.rows_out = 10;
  a.batches = 2;
  a.wall_ns = 100;
  a.cpu_ns = 80;
  OpStats b;
  b.opens = 1;
  b.rows_out = 5;
  b.wall_ns = 50;
  b.cpu_ns = 40;
  a.MergeFrom(b);
  EXPECT_EQ(a.opens, 2u);
  EXPECT_EQ(a.rows_out, 15u);
  EXPECT_EQ(a.batches, 2u);
  EXPECT_EQ(a.wall_ns, 150u);
  EXPECT_EQ(a.cpu_ns, 120u);
}

}  // namespace
}  // namespace obs
}  // namespace erbium
