// Tests for the observability subsystem: metric registration and merge
// semantics (thread-local shards, retired totals), histogram bucket
// edges, reset between queries, and the analyze flag used by EXPLAIN
// ANALYZE.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace erbium {
namespace obs {
namespace {

TEST(MetricsTest, CounterRegistrationIsIdempotent) {
  MetricsRegistry registry;
  Counter a = registry.counter("queries");
  Counter b = registry.counter("queries");
  a.Increment();
  b.Increment(4);
  EXPECT_EQ(a.Value(), 5u);
  EXPECT_EQ(registry.CounterValue("queries"), 5u);
  EXPECT_EQ(registry.CounterValue("never_registered"), 0u);
}

TEST(MetricsTest, ConcurrentCounterIncrements) {
  constexpr uint64_t kPerThread = 20000;
  for (int threads : {1, 8}) {
    MetricsRegistry registry;
    Counter counter = registry.counter("hits");
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&counter] {
        for (uint64_t i = 0; i < kPerThread; ++i) counter.Increment();
      });
    }
    for (std::thread& w : workers) w.join();
    // Worker shards retired on thread exit must still be counted.
    EXPECT_EQ(counter.Value(), kPerThread * threads) << threads << " threads";
  }
}

TEST(MetricsTest, CountersVisibleWhileThreadsStillRun) {
  MetricsRegistry registry;
  Counter counter = registry.counter("live");
  std::thread worker([&counter] { counter.Increment(7); });
  worker.join();
  counter.Increment(1);
  EXPECT_EQ(counter.Value(), 8u);
}

TEST(MetricsTest, GaugeSetAndAdd) {
  MetricsRegistry registry;
  Gauge gauge = registry.gauge("open_scans");
  gauge.Set(10);
  gauge.Add(-3);
  EXPECT_EQ(gauge.Value(), 7);
  EXPECT_EQ(registry.GaugeValue("open_scans"), 7);
}

TEST(MetricsTest, HistogramBucketEdges) {
  MetricsRegistry registry;
  Histogram hist = registry.histogram("latency", {1.0, 10.0, 100.0});
  // v <= bound lands in that bucket: exact edges stay in the lower bucket.
  hist.Observe(0.5);    // bucket 0
  hist.Observe(1.0);    // bucket 0 (edge)
  hist.Observe(1.5);    // bucket 1
  hist.Observe(10.0);   // bucket 1 (edge)
  hist.Observe(100.0);  // bucket 2 (edge)
  hist.Observe(1e6);    // overflow
  HistogramSnapshot snap = hist.Snapshot();
  ASSERT_EQ(snap.bounds, (std::vector<double>{1.0, 10.0, 100.0}));
  ASSERT_EQ(snap.buckets.size(), 4u);
  EXPECT_EQ(snap.buckets[0], 2u);
  EXPECT_EQ(snap.buckets[1], 2u);
  EXPECT_EQ(snap.buckets[2], 1u);
  EXPECT_EQ(snap.buckets[3], 1u);
  EXPECT_EQ(snap.count, 6u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.5 + 1.0 + 1.5 + 10.0 + 100.0 + 1e6);
}

TEST(MetricsTest, HistogramMergesAcrossThreads) {
  MetricsRegistry registry;
  Histogram hist = registry.histogram("rows", {10.0});
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&hist] {
      hist.Observe(5.0);
      hist.Observe(50.0);
    });
  }
  for (std::thread& w : workers) w.join();
  HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.buckets[0], 4u);
  EXPECT_EQ(snap.buckets[1], 4u);
  EXPECT_EQ(snap.count, 8u);
}

TEST(MetricsTest, ResetZeroesEverythingButKeepsDefinitions) {
  MetricsRegistry registry;
  Counter counter = registry.counter("c");
  Gauge gauge = registry.gauge("g");
  Histogram hist = registry.histogram("h", {2.0});
  counter.Increment(9);
  gauge.Set(-4);
  hist.Observe(1.0);
  hist.Observe(3.0);
  registry.Reset();
  EXPECT_EQ(counter.Value(), 0u);
  EXPECT_EQ(gauge.Value(), 0);
  HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.bounds, (std::vector<double>{2.0}));  // bounds survive
  EXPECT_EQ(snap.buckets, (std::vector<uint64_t>{0u, 0u}));
  // Handles keep working after the reset (next query's counts).
  counter.Increment(2);
  hist.Observe(1.0);
  EXPECT_EQ(counter.Value(), 2u);
  EXPECT_EQ(hist.Snapshot().count, 1u);
}

TEST(MetricsTest, ToJsonContainsAllMetricKinds) {
  MetricsRegistry registry;
  registry.counter("b_counter").Increment(3);
  registry.counter("a_counter").Increment(1);
  registry.gauge("depth").Set(2);
  registry.histogram("lat", {1.0}).Observe(0.5);
  std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"a_counter\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"b_counter\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"depth\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"lat\""), std::string::npos) << json;
  // Keys come out sorted, so diffs between dumps are stable.
  EXPECT_LT(json.find("a_counter"), json.find("b_counter"));
}

TEST(MetricsTest, GlobalRegistryIsASingleton) {
  Counter a = MetricsRegistry::Global().counter("obs_test.global");
  uint64_t before = a.Value();
  MetricsRegistry::Global().counter("obs_test.global").Increment();
  EXPECT_EQ(a.Value(), before + 1);
}

TEST(TraceTest, ScopedAnalyzeRestoresPreviousState) {
  ASSERT_FALSE(AnalyzeEnabled());
  {
    ScopedAnalyze outer;
    EXPECT_TRUE(AnalyzeEnabled());
    {
      ScopedAnalyze inner;
      EXPECT_TRUE(AnalyzeEnabled());
    }
    EXPECT_TRUE(AnalyzeEnabled());  // inner exit keeps outer window open
  }
  EXPECT_FALSE(AnalyzeEnabled());
}

TEST(TraceTest, OpStatsMerge) {
  OpStats a;
  a.opens = 1;
  a.rows_out = 10;
  a.batches = 2;
  a.wall_ns = 100;
  a.cpu_ns = 80;
  OpStats b;
  b.opens = 1;
  b.rows_out = 5;
  b.wall_ns = 50;
  b.cpu_ns = 40;
  a.MergeFrom(b);
  EXPECT_EQ(a.opens, 2u);
  EXPECT_EQ(a.rows_out, 15u);
  EXPECT_EQ(a.batches, 2u);
  EXPECT_EQ(a.wall_ns, 150u);
  EXPECT_EQ(a.cpu_ns, 120u);
}

}  // namespace
}  // namespace obs
}  // namespace erbium
