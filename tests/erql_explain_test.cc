// EXPLAIN / EXPLAIN ANALYZE end-to-end tests on the Figure-4 workload:
// the plan tree must keep its logical shape whether the query runs
// serial or morsel-parallel, and ANALYZE row counts must equal the
// query's actual output cardinality in both modes.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "erql/query_engine.h"
#include "workload/figure4.h"

namespace erbium {
namespace {

Figure4Config SmallConfig() {
  Figure4Config config;
  config.num_r = 2000;
  config.num_s = 600;
  config.rs_per_r = 2;
  return config;
}

ExecOptions Parallel8() {
  ExecOptions opts;
  opts.num_threads = 8;
  opts.parallel_row_threshold = 0;  // parallelize even the small test data
  return opts;
}

struct Fixture {
  std::shared_ptr<ERSchema> schema;
  std::unique_ptr<MappedDatabase> db;
};

Fixture MakeDb(const MappingSpec& spec) {
  Fixture f;
  auto db = MakeFigure4Database(spec, SmallConfig(), &f.schema);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  f.db = std::move(*db);
  return f;
}

std::vector<std::string> Lines(const erql::QueryResult& result) {
  std::vector<std::string> out;
  for (const Row& row : result.rows) {
    // Value::ToString renders strings quoted; unwrap to the raw line.
    std::string line = row[0].ToString();
    if (line.size() >= 2 && line.front() == '\'' && line.back() == '\'') {
      line = line.substr(1, line.size() - 2);
    }
    out.push_back(std::move(line));
  }
  return out;
}

// The plan-tree section: everything after the leading "mapping:" line and
// before the trailing "mapping notes:" block and ANALYZE total line.
std::vector<std::string> TreeLines(const erql::QueryResult& result) {
  std::vector<std::string> out;
  for (const std::string& line : Lines(result)) {
    if (line.rfind("mapping: ", 0) == 0) continue;
    if (line == "mapping notes:") break;
    if (line.rfind("total wall=", 0) == 0) continue;
    out.push_back(line);
  }
  return out;
}

std::string Trimmed(const std::string& line) {
  size_t start = line.find_first_not_of(' ');
  return start == std::string::npos ? std::string() : line.substr(start);
}

// Reduces a plan line to its logical operator name: indentation and
// bracketed details dropped, parallel operators mapped to their serial
// counterparts. Gather is purely an exchange wrapper and maps to nothing.
std::string LogicalName(const std::string& line) {
  std::string name = Trimmed(line);
  size_t bracket = name.find(" [");
  if (bracket != std::string::npos) name = name.substr(0, bracket);
  if (name.rfind("Gather(", 0) == 0) return std::string();
  if (name.rfind("ParallelScan(", 0) == 0) {
    return "SeqScan(" + name.substr(std::string("ParallelScan(").size());
  }
  if (name.rfind("ParallelHashAggregate(", 0) == 0) {
    size_t groups = name.find("groups=");
    return groups == std::string::npos ? name
                                       : "HashAggregate(" + name.substr(groups);
  }
  return name;
}

std::vector<std::string> LogicalShape(const erql::QueryResult& result) {
  std::vector<std::string> out;
  for (const std::string& line : TreeLines(result)) {
    std::string name = LogicalName(line);
    if (!name.empty()) out.push_back(name);
  }
  return out;
}

// rows=N from the first (root) plan line of an ANALYZE result.
uint64_t RootRows(const erql::QueryResult& result) {
  std::vector<std::string> tree = TreeLines(result);
  EXPECT_FALSE(tree.empty());
  if (tree.empty()) return 0;
  size_t pos = tree[0].find("rows=");
  EXPECT_NE(pos, std::string::npos) << tree[0];
  if (pos == std::string::npos) return 0;
  return std::stoull(tree[0].substr(pos + 5));
}

erql::QueryResult RunQuery(MappedDatabase* db, const std::string& query,
                      const ExecOptions& opts = ExecOptions::Serial()) {
  auto result = erql::QueryEngine::Execute(db, query, opts);
  EXPECT_TRUE(result.ok()) << query << ": " << result.status().ToString();
  return result.ok() ? std::move(*result) : erql::QueryResult{};
}

const char* kJoinQuery =
    "SELECT r.r_id, s.s_id, rs_a1 FROM R r JOIN S s ON RS "
    "WHERE s.s_a1 < 5000";
const char* kAggregateQuery =
    "SELECT r_a4, count(*) AS n, sum(r_a1) AS total FROM R "
    "WHERE r_a1 < 800";
const char* kScanQuery = "SELECT r_id, r_a1 FROM R WHERE r_a4 < 3";

TEST(ErqlExplainTest, ExplainShowsMappingAndPlan) {
  Fixture f = MakeDb(Figure4M1());
  erql::QueryResult result = RunQuery(f.db.get(), std::string("EXPLAIN ") +
                                                 kJoinQuery);
  ASSERT_EQ(result.columns, std::vector<std::string>{"plan"});
  std::vector<std::string> lines = Lines(result);
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines[0].rfind("mapping: M1", 0), 0u) << lines[0];
  bool has_notes = false;
  for (const std::string& line : lines) {
    if (line == "mapping notes:") has_notes = true;
  }
  EXPECT_TRUE(has_notes);
  // EXPLAIN without ANALYZE must not run the query or report stats.
  for (const std::string& line : TreeLines(result)) {
    EXPECT_EQ(line.find("rows="), std::string::npos) << line;
  }
  EXPECT_FALSE(LogicalShape(result).empty());
}

TEST(ErqlExplainTest, MappingNotesFollowTheSpec) {
  Fixture m1 = MakeDb(Figure4M1());
  Fixture m2 = MakeDb(Figure4M2());
  std::string q = "EXPLAIN SELECT r_id, r_a3 FROM R";
  std::vector<std::string> n1 = Lines(RunQuery(m1.db.get(), q));
  std::vector<std::string> n2 = Lines(RunQuery(m2.db.get(), q));
  // M1 stores the multi-valued r_a3 in a side table, M2 as an array
  // column; the notes must say which one the plan was compiled against.
  auto joined = [](const std::vector<std::string>& lines) {
    std::string out;
    for (const std::string& line : lines) out += line + "\n";
    return out;
  };
  EXPECT_NE(joined(n1).find("side table"), std::string::npos) << joined(n1);
  EXPECT_NE(joined(n2).find("array column"), std::string::npos) << joined(n2);
}

TEST(ErqlExplainTest, PlanShapeStableSerialVsParallel) {
  Fixture f = MakeDb(Figure4M1());
  for (const char* query : {kJoinQuery, kAggregateQuery, kScanQuery}) {
    std::string explain = std::string("EXPLAIN ") + query;
    erql::QueryResult serial = RunQuery(f.db.get(), explain);
    erql::QueryResult parallel = RunQuery(f.db.get(), explain, Parallel8());
    EXPECT_EQ(LogicalShape(serial), LogicalShape(parallel)) << query;
  }
}

TEST(ErqlExplainTest, AnalyzeRowCountsMatchCardinalitySerial) {
  Fixture f = MakeDb(Figure4M1());
  for (const char* query : {kJoinQuery, kAggregateQuery, kScanQuery}) {
    uint64_t actual = RunQuery(f.db.get(), query).rows.size();
    erql::QueryResult analyzed =
        RunQuery(f.db.get(), std::string("EXPLAIN ANALYZE ") + query);
    EXPECT_EQ(RootRows(analyzed), actual) << query;
    EXPECT_GT(actual, 0u) << query;  // non-trivial workload
  }
}

TEST(ErqlExplainTest, AnalyzeRowCountsMatchCardinalityParallel) {
  Fixture f = MakeDb(Figure4M1());
  for (const char* query : {kJoinQuery, kAggregateQuery, kScanQuery}) {
    uint64_t actual = RunQuery(f.db.get(), query, Parallel8()).rows.size();
    erql::QueryResult analyzed = RunQuery(
        f.db.get(), std::string("EXPLAIN ANALYZE ") + query, Parallel8());
    EXPECT_EQ(RootRows(analyzed), actual) << query;
    EXPECT_GT(actual, 0u) << query;
  }
}

TEST(ErqlExplainTest, AnalyzeReportsTimings) {
  Fixture f = MakeDb(Figure4M1());
  erql::QueryResult analyzed =
      RunQuery(f.db.get(), std::string("EXPLAIN ANALYZE ") + kScanQuery);
  std::vector<std::string> tree = TreeLines(analyzed);
  ASSERT_FALSE(tree.empty());
  EXPECT_NE(tree[0].find("wall="), std::string::npos) << tree[0];
  bool has_total = false;
  for (const std::string& line : Lines(analyzed)) {
    if (line.rfind("total wall=", 0) == 0) has_total = true;
  }
  EXPECT_TRUE(has_total);
}

TEST(ErqlExplainTest, ParallelAnalyzeReportsWorkersAndMorsels) {
  Fixture f = MakeDb(Figure4M1());
  erql::QueryResult analyzed = RunQuery(
      f.db.get(), std::string("EXPLAIN ANALYZE ") + kScanQuery, Parallel8());
  std::string all;
  for (const std::string& line : TreeLines(analyzed)) all += line + "\n";
  EXPECT_NE(all.find("workers="), std::string::npos) << all;
  EXPECT_NE(all.find("morsels="), std::string::npos) << all;
}

}  // namespace
}  // namespace erbium
