// The paper's core claim operationalized as a property test: a logical
// ERQL query compiles to very different physical plans under M1..M6, but
// must always produce the same logical result (logical data
// independence). Every query below runs under all six mappings and its
// canonicalized output is compared against the M1 baseline.

#include <gtest/gtest.h>

#include <map>

#include "erql/query_engine.h"
#include "workload/figure4.h"

namespace erbium {
namespace {

const char* kQueries[] = {
    // Plain scans and attribute access (inherited + own).
    "SELECT r_id, r_a1 FROM R",
    "SELECT r_id, r_a1, r1_a1, r3_a1 FROM R3",
    "SELECT r_id, r2_a1, r2_a2 FROM R2 WHERE r2_a1 < 500",
    // Multi-valued attributes as arrays and unnested (E1/E2 shapes).
    "SELECT r_id, r_mv1, r_mv2, r_mv3 FROM R",
    "SELECT r_id, unnest(r_mv1) AS v FROM R",
    // Point lookup by key (E3 shape).
    "SELECT r_id, r_mv1 FROM R WHERE r_id = 42",
    // Array functions (E4 shape).
    "SELECT r_id, array_intersect(r_mv1, r_mv2) AS common FROM R",
    "SELECT r_id, cardinality(r_mv1) AS n FROM R WHERE r_id < 50",
    // Hierarchy scans with predicates (E5/E6 shapes).
    "SELECT r_id, r_a4 FROM R WHERE r_a4 < 10",
    "SELECT r_id, r3_a1, r1_a1 FROM R3 WHERE r3_a1 < 800 AND r1_a1 < 800",
    // Relationship joins.
    "SELECT r.r_id, s.s_id, rs_a1 FROM R r JOIN S s ON RS WHERE s.s_a1 < "
    "5000",
    "SELECT r.r_id, s1.s_id, s1.s1_no FROM R2 r JOIN S1 s1 ON R2S1",
    // Weak entity access through the identifying relationship.
    "SELECT s.s_id, s1.s1_no, s1.s1_a1 FROM S s JOIN S1 s1 ON S_S1",
    // Aggregates with inferred group by (paper Section 3's advisor query
    // shape: average per parent).
    "SELECT p.r_id, count(*) AS advisees FROM R1 p JOIN R3 c ON R1R3",
    "SELECT r_a4, count(*) AS n, avg(r_a1) AS mean FROM R",
    "SELECT count(*) AS n FROM R3",
    // Nested outputs: array_agg of structs (hierarchical result).
    "SELECT s.s_id, array_agg(struct(no: s1.s1_no, a: s1.s1_a1)) AS "
    "sections FROM S s JOIN S1 s1 ON S_S1",
    // Theta join.
    "SELECT a.r_id, b.r_id AS other FROM R3 a JOIN R4 b ON a.r1_a1 = "
    "b.r1_a1 WHERE a.r_id < 40",
    // Distinct / order by / limit plumbing.
    "SELECT DISTINCT r_a4 FROM R WHERE r_a4 < 5",
    "SELECT r_id, r_a1 FROM R WHERE r_a1 < 300 ORDER BY r_a1 DESC, r_id "
    "LIMIT 17",
    // Aggregates over relationship attributes.
    "SELECT r.r_id, sum(rs_a1) AS total FROM R r JOIN S s ON RS",
    // count(distinct ...).
    "SELECT count(DISTINCT r_a4) AS n FROM R",
};

class ErqlEquivalenceTest : public ::testing::TestWithParam<MappingSpec> {
 protected:
  static Figure4Config Config() {
    Figure4Config config;
    config.num_r = 250;
    config.num_s = 60;
    return config;
  }

  void SetUp() override {
    auto db = MakeFigure4Database(GetParam(), Config(), &schema_);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(db).value();
  }

  std::shared_ptr<ERSchema> schema_;
  std::unique_ptr<MappedDatabase> db_;
};

INSTANTIATE_TEST_SUITE_P(
    Figure4, ErqlEquivalenceTest,
    ::testing::ValuesIn(Figure4AllMappings()),
    [](const ::testing::TestParamInfo<MappingSpec>& info) {
      return info.param.name;
    });

TEST_P(ErqlEquivalenceTest, AllQueriesMatchM1Baseline) {
  static std::map<std::string, std::string>* baseline = nullptr;
  bool is_baseline_run = baseline == nullptr;
  if (is_baseline_run) baseline = new std::map<std::string, std::string>();
  for (const char* text : kQueries) {
    auto result = erql::QueryEngine::Execute(db_.get(), text);
    ASSERT_TRUE(result.ok())
        << "mapping " << GetParam().name << ", query: " << text << "\n"
        << result.status().ToString();
    std::string canonical = result->ToCanonicalString();
    EXPECT_FALSE(result->rows.empty()) << "empty result for: " << text;
    if (is_baseline_run) {
      (*baseline)[text] = canonical;
    } else {
      EXPECT_EQ((*baseline)[text], canonical)
          << "mapping " << GetParam().name << " diverges on: " << text;
    }
  }
}

TEST_P(ErqlEquivalenceTest, PlansDifferButResultsAgree) {
  // Sanity that the translator really uses different physical plans: the
  // hierarchy scan plan under M1 contains joins, under M3 a filter on
  // the single table, under M4 a union.
  auto compiled = erql::QueryEngine::Compile(
      db_.get(), "SELECT r_id, r_a1, r1_a1, r3_a1 FROM R3");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  std::string plan = PrintPlan(*compiled->plan);
  const std::string& name = GetParam().name;
  if (name == "M1") {
    EXPECT_NE(plan.find("IndexJoin"), std::string::npos) << plan;
  } else if (name == "M3") {
    EXPECT_NE(plan.find("SeqScan(R)"), std::string::npos) << plan;
    EXPECT_EQ(plan.find("IndexJoin"), std::string::npos) << plan;
  } else if (name == "M4") {
    EXPECT_NE(plan.find("SeqScan(R3)"), std::string::npos) << plan;
    EXPECT_EQ(plan.find("Union"), std::string::npos) << plan;  // leaf class
  }
  // Superclass scan under M4 unions the subtree.
  compiled = erql::QueryEngine::Compile(db_.get(),
                                        "SELECT r_id, r1_a1 FROM R1");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  plan = PrintPlan(*compiled->plan);
  if (name == "M4") {
    EXPECT_NE(plan.find("UnionAll"), std::string::npos) << plan;
  }
  // Point lookups go through the index under every mapping.
  compiled = erql::QueryEngine::Compile(
      db_.get(), "SELECT r_id, r_a1 FROM R WHERE r_id = 42");
  ASSERT_TRUE(compiled.ok());
  plan = PrintPlan(*compiled->plan);
  if (name != "M6") {
    EXPECT_NE(plan.find("IndexLookup"), std::string::npos) << plan;
  }
}

}  // namespace
}  // namespace erbium
