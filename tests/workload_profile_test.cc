// Tests for the live workload profiler: shape normalization, sharded
// capture under concurrency, the JSON snapshot round trip, the engine
// and statement-runner feeds (SHOW WORKLOAD / EXPORT / LOAD / ADVISE),
// and the parity of ADVISE with a hand-written advisor workload.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/statement_runner.h"
#include "erql/plan_cache.h"
#include "erql/query_engine.h"
#include "mapping/advisor.h"
#include "mini_json.h"
#include "obs/workload_profile.h"
#include "workload/figure4.h"

namespace erbium {
namespace obs {
namespace {

StatementFootprint PointLookupFootprint() {
  StatementFootprint footprint;
  footprint.shape = "select r_a1 from r where r_id = ?";
  footprint.entities.push_back({"R", EntityPath::kProbe});
  footprint.attributes.push_back({"R", "r_a1", /*predicate=*/false});
  footprint.attributes.push_back({"R", "r_id", /*predicate=*/true});
  return footprint;
}

// ---------------------------------------------------------------------
// Shape normalization.

TEST(NormalizeShapeTest, StripsLiteralsAndLowercasesIdentifiers) {
  EXPECT_EQ(NormalizeShape("SELECT r_id FROM R WHERE r_id = 42"),
            "select r_id from r where r_id = ?");
  EXPECT_EQ(NormalizeShape("SELECT r_a3 FROM R WHERE r_a3 = 'abc'"),
            "select r_a3 from r where r_a3 = ?");
  EXPECT_EQ(NormalizeShape("SELECT r_a2 FROM R WHERE r_a2 < 0.5"),
            "select r_a2 from r where r_a2 < ?");
}

TEST(NormalizeShapeTest, CollapsesWhitespaceAndTrailingSemicolon) {
  EXPECT_EQ(NormalizeShape("  SELECT   r_id\n\tFROM  R ;  "),
            "select r_id from r");
  // Two statements differing only in literals and spacing share a shape.
  EXPECT_EQ(NormalizeShape("SELECT x FROM R WHERE r_id=1"),
            NormalizeShape("select  X  from  r  where R_ID = 999 ;"));
}

TEST(NormalizeShapeTest, UntokenizableTextFallsBackToWhitespaceCollapse) {
  // '#' is not a token in the lexer; the profiler must still keep the
  // statement rather than dropping it.
  std::string shape = NormalizeShape("  weird   # text  ; ");
  EXPECT_EQ(shape, "weird # text");
}

// ---------------------------------------------------------------------
// Capture into a private profile.

TEST(WorkloadProfileTest, RecordsFootprintAndShapeCounts) {
  MetricsRegistry registry;
  WorkloadProfile profile(32, &registry);
  StatementFootprint footprint = PointLookupFootprint();
  profile.RecordStatement(&footprint, "select",
                          "SELECT r_a1 FROM R WHERE r_id = 7", 1000);
  profile.RecordStatement(&footprint, "select",
                          "SELECT r_a1 FROM R WHERE r_id = 8", 3000);

  WorkloadSnapshot snapshot = profile.Snapshot();
  EXPECT_EQ(snapshot.statements, 2u);
  ASSERT_EQ(snapshot.entities.count("R"), 1u);
  EXPECT_EQ(snapshot.entities.at("R").probes, 2u);
  EXPECT_EQ(snapshot.entities.at("R").scans, 0u);
  EXPECT_EQ(snapshot.attributes.at("R.r_a1").projections, 2u);
  EXPECT_EQ(snapshot.attributes.at("R.r_id").predicates, 2u);
  ASSERT_EQ(snapshot.shapes.size(), 1u);
  EXPECT_EQ(snapshot.shapes[0].shape, footprint.shape);
  EXPECT_EQ(snapshot.shapes[0].count, 2u);
  EXPECT_EQ(snapshot.shapes[0].total_wall_ns, 4000u);
  EXPECT_EQ(snapshot.shapes[0].kind, "select");
  // The sample is the first concrete statement seen for the shape.
  EXPECT_EQ(snapshot.shapes[0].sample, "SELECT r_a1 FROM R WHERE r_id = 7");
}

TEST(WorkloadProfileTest, OnlyPlanExecutingKindsAreProfiled) {
  MetricsRegistry registry;
  WorkloadProfile profile(32, &registry);
  StatementFootprint footprint = PointLookupFootprint();
  for (const char* kind : {"show", "export", "load", "advise", "checkpoint",
                           "attach", "invalid", "explain"}) {
    profile.RecordStatement(&footprint, kind, "SHOW WORKLOAD", 500);
  }
  EXPECT_EQ(profile.Snapshot().statements, 0u);
  EXPECT_TRUE(profile.Snapshot().shapes.empty());

  for (const char* kind : {"select", "explain_analyze", "trace"}) {
    profile.RecordStatement(&footprint, kind, "SELECT 1", 500);
  }
  EXPECT_EQ(profile.Snapshot().statements, 3u);
}

TEST(WorkloadProfileTest, CrudFeedAndDisableSwitch) {
  MetricsRegistry registry;
  WorkloadProfile profile(32, &registry);
  profile.RecordEntityCrud("R", CrudKind::kInsert);
  profile.RecordEntityCrud("R", CrudKind::kDelete);
  profile.RecordEntityCrud("R", CrudKind::kUpdate);
  profile.RecordRelationshipCrud("RS", CrudKind::kInsert);
  profile.RecordRelationshipCrud("RS", CrudKind::kDelete);

  WorkloadSnapshot snapshot = profile.Snapshot();
  EXPECT_EQ(snapshot.entities.at("R").inserts, 1u);
  EXPECT_EQ(snapshot.entities.at("R").deletes, 1u);
  EXPECT_EQ(snapshot.entities.at("R").updates, 1u);
  EXPECT_EQ(snapshot.relationships.at("RS").inserts, 1u);
  EXPECT_EQ(snapshot.relationships.at("RS").deletes, 1u);

  profile.set_enabled(false);
  profile.RecordEntityCrud("R", CrudKind::kInsert);
  StatementFootprint footprint = PointLookupFootprint();
  profile.RecordStatement(&footprint, "select", "SELECT 1", 100);
  EXPECT_EQ(profile.Snapshot().entities.at("R").inserts, 1u);
  EXPECT_EQ(profile.Snapshot().statements, 0u);
}

TEST(WorkloadProfileTest, MirrorsIntoRegistryCounters) {
  MetricsRegistry registry;
  WorkloadProfile profile(32, &registry);
  StatementFootprint footprint = PointLookupFootprint();
  profile.RecordStatement(&footprint, "select",
                          "SELECT r_a1 FROM R WHERE r_id = 7", 1000);
  profile.RecordEntityCrud("S", CrudKind::kInsert);

  EXPECT_EQ(registry.counter("workload.statements").Value(), 1u);
  EXPECT_EQ(registry.counter("workload.entity.R.probes").Value(), 1u);
  EXPECT_EQ(registry.counter("workload.entity.S.inserts").Value(), 1u);
  EXPECT_EQ(registry.counter("workload.attr.R.r_id.predicates").Value(), 1u);
  EXPECT_EQ(registry.counter("workload.attr.R.r_a1.projections").Value(), 1u);
  EXPECT_EQ(registry.gauge("workload.shapes").Value(), 1);
}

TEST(WorkloadProfileTest, ShapeRingEvictsLightestKeepsHeaviest) {
  MetricsRegistry registry;
  WorkloadProfile profile(8, &registry);  // 1 shape per shard
  // One heavy hitter, then a stream of one-off light shapes.
  profile.RecordStatement(nullptr, "select", "SELECT heavy FROM R",
                          1'000'000'000);
  for (int i = 0; i < 64; ++i) {
    profile.RecordStatement(
        nullptr, "select",
        "SELECT light" + std::to_string(i) + " FROM R", 10);
  }
  WorkloadSnapshot snapshot = profile.Snapshot();
  EXPECT_LE(snapshot.shapes.size(), 8u);
  ASSERT_FALSE(snapshot.shapes.empty());
  // Weight-ordered: the heavy shape survived eviction and leads.
  EXPECT_EQ(snapshot.shapes[0].shape, "select heavy from r");
  EXPECT_EQ(snapshot.statements, 65u);
}

TEST(WorkloadProfileTest, ClearForgetsEverything) {
  MetricsRegistry registry;
  WorkloadProfile profile(32, &registry);
  StatementFootprint footprint = PointLookupFootprint();
  profile.RecordStatement(&footprint, "select", "SELECT 1 FROM R", 100);
  profile.RecordEntityCrud("R", CrudKind::kInsert);
  profile.Clear();
  WorkloadSnapshot snapshot = profile.Snapshot();
  EXPECT_EQ(snapshot.statements, 0u);
  EXPECT_TRUE(snapshot.entities.empty());
  EXPECT_TRUE(snapshot.shapes.empty());
  EXPECT_EQ(registry.gauge("workload.shapes").Value(), 0);
  // The Prometheus mirror is monotonic and intentionally not rewound.
  EXPECT_EQ(registry.counter("workload.statements").Value(), 1u);
}

// ---------------------------------------------------------------------
// Concurrency: the capture hammer (run under TSan in CI).

TEST(WorkloadProfileTest, ConcurrentCaptureHammer) {
  MetricsRegistry registry;
  WorkloadProfile profile(64, &registry);
  constexpr int kThreads = 8;
  constexpr int kIterations = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&profile, t] {
      StatementFootprint footprint;
      // Overlapping names across threads force shard contention.
      footprint.entities.push_back({"R", EntityPath::kScan});
      footprint.entities.push_back({"S" + std::to_string(t % 3),
                                    EntityPath::kProbe});
      footprint.relationships.push_back({"RS", false});
      footprint.attributes.push_back({"R", "r_a1", true});
      footprint.shape =
          "select ? from r shape" + std::to_string(t % 4);
      for (int i = 0; i < kIterations; ++i) {
        profile.RecordStatement(&footprint, "select", "SELECT hammer", 10);
        profile.RecordEntityCrud("R", CrudKind::kInsert);
        if (i % 64 == 0) profile.Snapshot();  // readers race writers
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  WorkloadSnapshot snapshot = profile.Snapshot();
  const uint64_t total = kThreads * kIterations;
  EXPECT_EQ(snapshot.statements, total);
  EXPECT_EQ(snapshot.entities.at("R").scans, total);
  EXPECT_EQ(snapshot.entities.at("R").inserts, total);
  EXPECT_EQ(snapshot.relationships.at("RS").joins, total);
  EXPECT_EQ(snapshot.attributes.at("R.r_a1").predicates, total);
  uint64_t probes = 0;
  for (int s = 0; s < 3; ++s) {
    probes += snapshot.entities.at("S" + std::to_string(s)).probes;
  }
  EXPECT_EQ(probes, total);
  uint64_t shape_count = 0;
  for (const WorkloadSnapshot::Shape& shape : snapshot.shapes) {
    shape_count += shape.count;
  }
  EXPECT_EQ(shape_count, total);
}

// ---------------------------------------------------------------------
// JSON snapshot: deterministic, parseable, byte-identical round trip.

TEST(WorkloadProfileTest, SnapshotJsonRoundTripsByteIdentically) {
  MetricsRegistry registry;
  WorkloadProfile profile(32, &registry);
  StatementFootprint footprint = PointLookupFootprint();
  profile.RecordStatement(&footprint, "select",
                          "SELECT r_a1 FROM R WHERE r_id = 7", 1200);
  // A shape whose sample carries every escape class the exporter knows.
  profile.RecordStatement(nullptr, "select",
                          "SELECT r_a3 FROM R WHERE r_a3 = 'q\"uo\\te\n'",
                          900);
  profile.RecordEntityCrud("S", CrudKind::kInsert);
  profile.RecordRelationshipCrud("RS", CrudKind::kDelete);

  std::string exported = profile.ToJson();

  // mini_json (the generic test-side parser) accepts the document.
  testjson::Node root;
  std::string error;
  ASSERT_TRUE(testjson::ParseJson(exported, &root, &error)) << error << "\n"
                                                            << exported;
  EXPECT_EQ(root.Find("version")->number, 1.0);
  EXPECT_EQ(root.Find("statements")->number, 2.0);
  ASSERT_NE(root.Find("entities")->Find("R"), nullptr);
  EXPECT_EQ(root.Find("shapes")->elements.size(), 2u);

  // Load into a fresh profile; re-export must be byte-identical.
  MetricsRegistry registry2;
  WorkloadProfile restored(32, &registry2);
  ASSERT_TRUE(restored.LoadJson(exported).ok());
  EXPECT_EQ(restored.ToJson(), exported);

  // And loading over existing contents replaces them.
  restored.RecordEntityCrud("Zzz", CrudKind::kInsert);
  ASSERT_TRUE(restored.LoadJson(exported).ok());
  EXPECT_EQ(restored.ToJson(), exported);
}

TEST(WorkloadProfileTest, LoadJsonRejectsMalformedSnapshots) {
  MetricsRegistry registry;
  WorkloadProfile profile(8, &registry);
  EXPECT_FALSE(profile.LoadJson("").ok());
  EXPECT_FALSE(profile.LoadJson("{}").ok());
  EXPECT_FALSE(profile.LoadJson("not json").ok());
  // Wrong version.
  EXPECT_FALSE(profile.LoadJson("{\"version\": 2}").ok());
  // Trailing garbage after a valid document.
  std::string valid = WorkloadProfile(8, &registry).ToJson();
  EXPECT_TRUE(profile.LoadJson(valid).ok());
  EXPECT_FALSE(profile.LoadJson(valid + "x").ok());
  // More shapes than this profile can hold.
  MetricsRegistry big_registry;
  WorkloadProfile big(64, &big_registry);
  for (int i = 0; i < 32; ++i) {
    big.RecordStatement(nullptr, "select",
                        "SELECT c" + std::to_string(i) + " FROM R", 100);
  }
  ASSERT_GT(big.Snapshot().shapes.size(), 8u);
  EXPECT_FALSE(profile.LoadJson(big.ToJson()).ok());
}

// ---------------------------------------------------------------------
// The engine feed: footprints derived by the translator, recorded by
// QueryEngine::Execute, replayed on plan-cache hits.

class WorkloadEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Figure4Config config;
    config.num_r = 200;
    config.num_s = 60;
    auto db = MakeFigure4Database(Figure4M1(), config, &schema_);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(db).value();
    WorkloadProfile::Global().Clear();
    WorkloadProfile::Global().set_enabled(true);
  }

  std::shared_ptr<ERSchema> schema_;
  std::unique_ptr<MappedDatabase> db_;
};

TEST_F(WorkloadEngineTest, ExecuteRecordsEntityPathsAndAttributes) {
  auto run = [this](const std::string& text) {
    auto result = erql::QueryEngine::Execute(db_.get(), text);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  };
  run("SELECT r_id, r_a1 FROM R");                   // full scan
  run("SELECT r_a1 FROM R WHERE r_id = 42");         // index probe
  run("SELECT r.r_id, s.s_id FROM R r JOIN S s ON RS");  // join

  WorkloadSnapshot snapshot = WorkloadProfile::Global().Snapshot();
  EXPECT_EQ(snapshot.statements, 3u);
  ASSERT_EQ(snapshot.entities.count("R"), 1u);
  EXPECT_GE(snapshot.entities.at("R").scans, 2u);   // plain scan + join base
  EXPECT_EQ(snapshot.entities.at("R").probes, 1u);  // the point lookup
  EXPECT_GE(snapshot.entities.at("S").join_sides, 1u);
  ASSERT_EQ(snapshot.relationships.count("RS"), 1u);
  EXPECT_GE(snapshot.relationships.at("RS").joins, 1u);
  EXPECT_GE(snapshot.attributes.at("R.r_id").projections, 1u);
  EXPECT_GE(snapshot.attributes.at("R.r_id").predicates, 1u);
  EXPECT_EQ(snapshot.shapes.size(), 3u);
  // Shapes carry engine-measured wall time as their weight.
  for (const WorkloadSnapshot::Shape& shape : snapshot.shapes) {
    EXPECT_GT(shape.total_wall_ns, 0u) << shape.shape;
    EXPECT_EQ(shape.kind, "select");
  }
}

TEST_F(WorkloadEngineTest, PlanCacheHitsStillRecordFootprints) {
  erql::PlanCache cache(16);
  const std::string text = "SELECT r_a1 FROM R WHERE r_id = 42";
  for (int i = 0; i < 3; ++i) {
    auto result = erql::QueryEngine::Execute(
        db_.get(), text, ExecOptions::Default(), &cache, /*generation=*/1);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }
  WorkloadSnapshot snapshot = WorkloadProfile::Global().Snapshot();
  EXPECT_EQ(snapshot.statements, 3u);
  // The cached executions replay the same shared footprint.
  EXPECT_EQ(snapshot.entities.at("R").probes, 3u);
  ASSERT_EQ(snapshot.shapes.size(), 1u);
  EXPECT_EQ(snapshot.shapes[0].count, 3u);
}

TEST_F(WorkloadEngineTest, ShowWorkloadRendersAndDoesNotPerturb) {
  auto seed = erql::QueryEngine::Execute(db_.get(),
                                         "SELECT r_id FROM R WHERE r_id = 1");
  ASSERT_TRUE(seed.ok());
  std::string before = WorkloadProfile::Global().ToJson();

  auto shown = erql::QueryEngine::Execute(db_.get(), "SHOW WORKLOAD LIMIT 5");
  ASSERT_TRUE(shown.ok()) << shown.status().ToString();
  ASSERT_EQ(shown->columns.size(), 3u);
  EXPECT_EQ(shown->columns[0], "section");
  ASSERT_FALSE(shown->rows.empty());
  EXPECT_EQ(shown->rows[0][0].as_string(), "profile");
  EXPECT_EQ(shown->rows[0][1].as_string(), "statements");
  bool has_entity_row = false;
  for (const Row& row : shown->rows) {
    if (row[0].as_string() == "entity" && row[1].as_string() == "R") {
      has_entity_row = true;
      EXPECT_NE(row[2].as_string().find("probes=1"), std::string::npos)
          << row[2].as_string();
    }
  }
  EXPECT_TRUE(has_entity_row);

  // Introspection is not traffic: the profile is unchanged.
  EXPECT_EQ(WorkloadProfile::Global().ToJson(), before);
}

TEST_F(WorkloadEngineTest, ExportLoadStatementsRoundTripByteIdentically) {
  auto seed = erql::QueryEngine::Execute(
      db_.get(), "SELECT r.r_id, s.s_id FROM R r JOIN S s ON RS");
  ASSERT_TRUE(seed.ok());

  std::string path = ::testing::TempDir() + "/erbium_workload_roundtrip.json";
  auto exported = erql::QueryEngine::Execute(
      db_.get(), "EXPORT WORKLOAD INTO '" + path + "'");
  ASSERT_TRUE(exported.ok()) << exported.status().ToString();

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string first = buffer.str();
  EXPECT_FALSE(first.empty());

  auto loaded = erql::QueryEngine::Execute(
      db_.get(), "LOAD WORKLOAD FROM '" + path + "'");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  // Neither EXPORT nor LOAD is itself profiled, so a second export is
  // byte-identical to the file just loaded.
  EXPECT_EQ(WorkloadProfile::Global().ToJson(), first);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// ADVISE: captured traffic feeds the mapping advisor.

TEST(WorkloadAdvisorTest, ReplayedTrafficSelectsSameMappingAsHandWritten) {
  // Mirror of AdvisorTest.PicksWorkloadAppropriateMapping, but with the
  // workload *captured* from live traffic instead of hand-written: the
  // MV-point-lookup traffic must still make the array mapping win over
  // side tables.
  Figure4Config config;
  config.num_r = 400;
  config.num_s = 100;
  std::shared_ptr<ERSchema> schema;
  auto db = MakeFigure4Database(MappingSpec::Normalized("side_tables"),
                                config, &schema);
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  WorkloadProfile::Global().Clear();
  WorkloadProfile::Global().set_enabled(true);
  for (int id : {10, 77, 140, 250, 333}) {
    auto result = erql::QueryEngine::Execute(
        db->get(), "SELECT r_id, r_mv1, r_mv2, r_mv3 FROM R WHERE r_id = " +
                       std::to_string(id));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }

  WorkloadSnapshot snapshot = WorkloadProfile::Global().Snapshot();
  Workload workload = WorkloadFromProfile(snapshot, 8);
  // The five point lookups share one normalized shape.
  ASSERT_EQ(workload.queries.size(), 1u);
  EXPECT_GE(workload.queries[0].weight, 1.0);
  EXPECT_EQ(workload.queries[0].label,
            "select r_id , r_mv1 , r_mv2 , r_mv3 from r where r_id = ?");

  auto populate = [&config](MappedDatabase* target) {
    return PopulateFigure4(target, config);
  };
  MappingSpec side = MappingSpec::Normalized("side_tables");
  MappingSpec arrays = MappingSpec::Normalized("arrays");
  arrays.default_multi_valued = MultiValuedStorage::kArray;
  auto advice = MappingAdvisor::Advise(schema.get(), {side, arrays}, populate,
                                       workload, 3);
  ASSERT_TRUE(advice.ok()) << advice.status().ToString();
  EXPECT_EQ(advice->best().name, "arrays");
}

TEST(WorkloadAdvisorTest, NonSelectShapesAreExcluded) {
  WorkloadSnapshot snapshot;
  snapshot.shapes.push_back({"trace select ?", "TRACE SELECT 1", "trace",
                             5, 100});
  snapshot.shapes.push_back({"select a from r", "SELECT a FROM R", "select",
                             1, 50});
  Workload workload = WorkloadFromProfile(snapshot, 8);
  ASSERT_EQ(workload.queries.size(), 1u);
  EXPECT_EQ(workload.queries[0].erql, "SELECT a FROM R");
}

// ---------------------------------------------------------------------
// The statement runner: CRUD feed, ADVISE end to end.

TEST(WorkloadRunnerTest, InsertStatementFeedsCrudCounters) {
  api::StatementRunner::Options options;
  options.figure4 = true;
  options.figure4_num_r = 50;
  options.figure4_num_s = 20;
  auto runner = api::StatementRunner::Create(std::move(options));
  ASSERT_TRUE(runner.ok()) << runner.status().ToString();
  WorkloadProfile::Global().Clear();
  WorkloadProfile::Global().set_enabled(true);

  auto outcome = (*runner)->Execute(
      "INSERT R (r_id = 90001, r_a1 = 1, r_a2 = 0.5, r_a3 = 'x', r_a4 = 1)");
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();

  WorkloadSnapshot snapshot = WorkloadProfile::Global().Snapshot();
  EXPECT_EQ(snapshot.entities.at("R").inserts, 1u);
  // Statement-level feed only: the INSERT is not a profiled query shape.
  EXPECT_EQ(snapshot.statements, 0u);
}

TEST(WorkloadRunnerTest, AdviseWithoutTrafficFailsWithHint) {
  api::StatementRunner::Options options;
  options.figure4 = true;
  options.figure4_num_r = 50;
  options.figure4_num_s = 20;
  auto runner = api::StatementRunner::Create(std::move(options));
  ASSERT_TRUE(runner.ok());
  WorkloadProfile::Global().Clear();

  auto outcome = (*runner)->Execute("ADVISE");
  ASSERT_FALSE(outcome.ok());
  EXPECT_NE(outcome.status().ToString().find("no captured SELECT traffic"),
            std::string::npos)
      << outcome.status().ToString();
}

TEST(WorkloadRunnerTest, AdviseRanksCandidatesFromLiveTraffic) {
  api::StatementRunner::Options options;
  options.figure4 = true;
  options.figure4_num_r = 120;
  options.figure4_num_s = 40;
  auto created = api::StatementRunner::Create(std::move(options));
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  api::StatementRunner* runner = created->get();
  WorkloadProfile::Global().Clear();
  WorkloadProfile::Global().set_enabled(true);

  for (const char* text :
       {"SELECT r_id, r_mv1 FROM R WHERE r_id = 10",
        "SELECT r_id, r_mv1 FROM R WHERE r_id = 20",
        "SELECT r_id, r_a1 FROM R"}) {
    auto outcome = runner->Execute(text);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  }

  auto advised = runner->Execute("ADVISE LIMIT 3");
  ASSERT_TRUE(advised.ok()) << advised.status().ToString();
  EXPECT_EQ(advised->shape, api::OutputShape::kTable);
  const erql::QueryResult& table = advised->result;
  ASSERT_EQ(table.columns.size(), 5u);
  EXPECT_EQ(table.columns[0], "rank");
  EXPECT_EQ(table.columns[1], "mapping");
  EXPECT_EQ(table.columns[3], "vs_active");
  ASSERT_LE(table.rows.size(), 3u);
  ASSERT_FALSE(table.rows.empty());
  EXPECT_EQ(table.rows[0][0].as_int64(), 1);
  // The top-ranked candidate is the advisor's pick.
  EXPECT_NE(table.rows[0][4].as_string().find("best"), std::string::npos)
      << table.rows[0][4].as_string();
  // Exactly one row is flagged as the active mapping across the full
  // (unlimited) listing.
  auto full = runner->Execute("ADVISE");
  ASSERT_TRUE(full.ok());
  int active_rows = 0;
  for (const Row& row : full->result.rows) {
    if (row[4].as_string().find("active") != std::string::npos) ++active_rows;
  }
  EXPECT_EQ(active_rows, 1);
  // ADVISE itself observed without perturbing the profile.
  EXPECT_EQ(WorkloadProfile::Global().Snapshot().statements, 3u);
}

}  // namespace
}  // namespace obs
}  // namespace erbium
