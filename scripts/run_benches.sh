#!/usr/bin/env bash
# Builds the benchmarks in Release mode and runs every bench_* binary,
# collecting results under bench/results/:
#   <name>.gbench.json  google-benchmark's own JSON report (not committed)
#   BENCH_<name>.json   the metrics-registry dump written on exit
#   BENCH_<name>.prom   the same registry, Prometheus text exposition
#
# Only Release binaries produce numbers worth keeping: the script
# verifies the build tree's CMAKE_BUILD_TYPE and refuses to record
# results from anything else. A debug-built google-benchmark *library*
# (the harness, not our code) is tagged with a warning instead — its
# overhead makes timings conservative, not invalid.
#
# Usage:
#   scripts/run_benches.sh                  # all benches, default scale
#   scripts/run_benches.sh bench_exec_micro # just one
#   ERBIUM_BENCH_SCALE=2000 scripts/run_benches.sh   # smaller database
#   BENCH_MIN_TIME=0.2 scripts/run_benches.sh        # faster, noisier
#
# See EXPERIMENTS.md for how these results map onto the paper's figures.

set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="$repo/build-release"
results="$repo/bench/results"
min_time="${BENCH_MIN_TIME:-0.5}"

cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$build" -j "$(nproc)" --target $(
  ls "$repo"/bench/bench_*.cc | xargs -n1 basename | sed 's/\.cc$//'
) >/dev/null

# Guard: numbers from a debug build are noise and must never land in
# bench/results/. The cache is the source of truth for what we built.
build_type="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$build/CMakeCache.txt")"
if [ "$build_type" != "Release" ]; then
  echo "refusing to run benchmarks: $build is CMAKE_BUILD_TYPE='$build_type'," >&2
  echo "expected Release (delete $build and re-run)" >&2
  exit 1
fi

mkdir -p "$results"

selected=("$@")
for bin in "$build"/bench/bench_*; do
  [ -x "$bin" ] || continue
  name="$(basename "$bin")"
  if [ "${#selected[@]}" -gt 0 ]; then
    case " ${selected[*]} " in
      *" $name "*) ;;
      *) continue ;;
    esac
  fi
  echo "== $name =="
  gbench_out="$results/$name.gbench.json"
  ERBIUM_BENCH_STATS_DIR="$results" "$bin" \
    --benchmark_min_time="$min_time" \
    --benchmark_out="$gbench_out" \
    --benchmark_out_format=json
  # google-benchmark also records how the *benchmark library itself* was
  # compiled. That is the harness, not our code (the CMakeCache check
  # above already guarantees our tree is Release) — a debug harness adds
  # per-iteration overhead, so tag the run loudly but keep the numbers:
  # they are conservative, not wrong.
  if grep -q '"library_build_type": "debug"' "$gbench_out"; then
    echo "WARNING: $name ran against a debug-built google-benchmark" >&2
    echo "library; timings include extra harness overhead (conservative)." >&2
  fi
  # Drop the legacy (pre-.gbench) output name so stale copies cannot be
  # mistaken for the registry dump BENCH_<stem>.json.
  rm -f "$results/$name.json"
done

# Conformance gate: every committed Prometheus exposition must pass the
# same validator CI runs against live scrapes. Catches a broken exporter
# (or a bench that wrote an empty/truncated .prom) before it lands.
validator="$build/examples/prom_validate"
if [ ! -x "$validator" ]; then
  cmake --build "$build" -j "$(nproc)" --target prom_validate >/dev/null
fi
for prom in "$results"/BENCH_*.prom; do
  [ -e "$prom" ] || continue
  if ! "$validator" < "$prom"; then
    echo "invalid Prometheus exposition: $prom" >&2
    exit 1
  fi
done

echo "results in $results/"
