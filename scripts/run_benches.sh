#!/usr/bin/env bash
# Builds the benchmarks in Release mode and runs every bench_* binary,
# collecting results under bench/results/:
#   <name>.json         google-benchmark's own JSON report
#   BENCH_<name>.json   the metrics-registry dump written on exit
#   BENCH_<name>.prom   the same registry, Prometheus text exposition
#
# Usage:
#   scripts/run_benches.sh                  # all benches, default scale
#   scripts/run_benches.sh bench_exec_micro # just one
#   ERBIUM_BENCH_SCALE=2000 scripts/run_benches.sh   # smaller database
#   BENCH_MIN_TIME=0.2 scripts/run_benches.sh        # faster, noisier
#
# See EXPERIMENTS.md for how these results map onto the paper's figures.

set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="$repo/build-release"
results="$repo/bench/results"
min_time="${BENCH_MIN_TIME:-0.5}"

cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$build" -j "$(nproc)" --target $(
  ls "$repo"/bench/bench_*.cc | xargs -n1 basename | sed 's/\.cc$//'
) >/dev/null

mkdir -p "$results"

selected=("$@")
for bin in "$build"/bench/bench_*; do
  [ -x "$bin" ] || continue
  name="$(basename "$bin")"
  if [ "${#selected[@]}" -gt 0 ]; then
    case " ${selected[*]} " in
      *" $name "*) ;;
      *) continue ;;
    esac
  fi
  echo "== $name =="
  ERBIUM_BENCH_STATS_DIR="$results" "$bin" \
    --benchmark_min_time="$min_time" \
    --benchmark_out="$results/$name.json" \
    --benchmark_out_format=json
done

echo "results in $results/"
