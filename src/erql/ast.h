#ifndef ERBIUM_ERQL_AST_H_
#define ERBIUM_ERQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "common/value.h"

namespace erbium {
namespace erql {

/// Untyped expression AST produced by the parser; the translator binds it
/// against the E/R schema and the chosen mapping.
struct ExprAst;
using ExprAstPtr = std::shared_ptr<ExprAst>;

struct ExprAst {
  enum class Kind {
    kIdent,      // [qualifier.]name
    kLiteral,    // literal
    kBinary,     // op in {=,!=,<,<=,>,>=,+,-,*,/,%,and,or}
    kNot,        // NOT child
    kIsNull,     // child IS [NOT] NULL (negated)
    kInList,     // child IN (literals...) (negated for NOT IN)
    kFunction,   // name(children...) — scalar builtin or aggregate
    kStar,       // * (only inside count(*))
    kStruct,     // struct(name: expr, ...) for nested outputs
  };

  Kind kind;
  std::string qualifier;            // kIdent
  std::string name;                 // kIdent / kFunction
  Value literal;                    // kLiteral
  std::string op;                   // kBinary
  std::vector<ExprAstPtr> children;
  std::vector<std::string> field_names;  // kStruct
  std::vector<Value> in_values;     // kInList
  bool negated = false;             // kIsNull / kInList
  bool distinct = false;            // kFunction aggregates

  std::string ToString() const;
};

struct SelectItem {
  ExprAstPtr expr;
  std::string alias;  // empty -> derived name
};

struct FromItem {
  std::string entity;
  std::string alias;  // defaults to entity name
};

struct JoinClause {
  FromItem item;
  /// Exactly one of relationship / on_expr is set: `JOIN x ON <name>`
  /// joins through the named relationship set (or a weak entity's
  /// identifying relationship); `JOIN x ON <expr>` is a theta join.
  std::string relationship;
  ExprAstPtr on_expr;
};

struct OrderItem {
  ExprAstPtr expr;
  bool ascending = true;
};

/// EXPLAIN prefix: kPlan prints the physical plan plus the active
/// mapping's choices without executing; kAnalyze also runs the query and
/// annotates every operator with collected row counts and timings.
enum class ExplainMode { kNone, kPlan, kAnalyze };

/// What a parsed statement is. Beyond SELECT the dialect carries the
/// telemetry introspection statements:
///   SHOW METRICS [LIKE '<glob>']   — the process metrics registry
///   SHOW QUERIES [SLOW] [LIMIT n]  — the query log / slow-query ring
///   SHOW SESSIONS                  — live client sessions (shell, server
///                                    connections) from the session registry
///   TRACE [INTO '<file>'] SELECT … — run under analyze, emit Chrome trace
/// the durability statements:
///   CHECKPOINT                     — snapshot + WAL truncate (needs a
///                                    durable database attached)
///   ATTACH DATABASE '<dir>'        — bind the session to an on-disk
///                                    directory (handled by the host
///                                    application, not the engine)
/// and the workload-profiler statements:
///   SHOW WORKLOAD [LIMIT n]        — captured E/R access profile (LIMIT
///                                    bounds the query-shape rows)
///   EXPORT WORKLOAD INTO '<file>'  — write the profile as a JSON snapshot
///   LOAD WORKLOAD FROM '<file>'    — replace the profile from a snapshot
///   ADVISE [LIMIT n]               — cost candidate mappings against the
///                                    captured workload (handled by the
///                                    host application, like ATTACH)
enum class StatementKind {
  kSelect,
  kShowMetrics,
  kShowQueries,
  kShowSessions,
  kShowWorkload,
  kTrace,
  kCheckpoint,
  kAttach,
  kExportWorkload,
  kLoadWorkload,
  kAdvise,
};

/// One parsed ERQL SELECT query (paper Figure 1(iii) dialect): SQL with
/// relationship joins, nested outputs via struct()/array_agg, unnest in
/// the select list, and GROUP BY inference.
struct Query {
  StatementKind statement = StatementKind::kSelect;
  /// SHOW METRICS LIKE glob; empty matches everything.
  std::string show_like;
  /// SHOW QUERIES SLOW reads the slow-query ring instead of the log.
  bool show_slow = false;
  /// SHOW QUERIES LIMIT n; -1 -> no limit.
  int64_t show_limit = -1;
  /// TRACE INTO '<file>': where to write the Chrome trace JSON; empty
  /// returns it as result rows. For kTrace the SELECT fields below
  /// describe the traced query.
  std::string trace_into;
  /// ATTACH DATABASE '<dir>': the database directory.
  std::string attach_path;
  /// EXPORT WORKLOAD INTO / LOAD WORKLOAD FROM: the snapshot file path.
  std::string workload_path;

  ExplainMode explain = ExplainMode::kNone;
  bool distinct = false;
  std::vector<SelectItem> select;
  FromItem from;
  std::vector<JoinClause> joins;
  ExprAstPtr where;                   // may be null
  std::vector<ExprAstPtr> group_by;   // empty -> inferred
  bool explicit_group_by = false;
  std::vector<OrderItem> order_by;
  int64_t limit = -1;                 // -1 -> none
};

}  // namespace erql
}  // namespace erbium

#endif  // ERBIUM_ERQL_AST_H_
