#ifndef ERBIUM_ERQL_TRANSLATOR_H_
#define ERBIUM_ERQL_TRANSLATOR_H_

#include <string>
#include <vector>

#include <memory>

#include "common/status.h"
#include "erql/ast.h"
#include "exec/operator.h"
#include "exec/parallel.h"
#include "mapping/database.h"
#include "obs/workload_profile.h"
#include "shard/co_partition.h"

namespace erbium {
namespace erql {

/// A bound, executable query: the physical plan plus output column names.
struct CompiledQuery {
  OperatorPtr plan;
  std::vector<std::string> columns;

  /// EXPLAIN support, filled by the translator when the query carried an
  /// EXPLAIN prefix and consumed by QueryEngine::Execute: the mapping's
  /// one-line summary plus one note per logical construct saying which
  /// physical structure it resolved to under the active mapping.
  ExplainMode explain = ExplainMode::kNone;
  std::string mapping_summary;
  std::vector<std::string> mapping_notes;

  /// E/R access footprint for the workload profiler, derived while
  /// planning (which entity/relationship sets the plan reaches and how).
  /// Shared so plan-cache hits replay it without copying; the engine
  /// stamps `footprint->shape` once after translation and treats it as
  /// immutable from then on.
  std::shared_ptr<obs::StatementFootprint> footprint;

  /// Shard routing decision, meaningful when compiled against a sharded
  /// engine (opts.shards set with more than one shard; shard_count stays
  /// 1 otherwise). kSingleShard plans name their target in shard_target.
  shard::ShardRouteClass shard_route = shard::ShardRouteClass::kSingleShard;
  int shard_target = -1;
  int shard_count = 1;
};

/// Compiles a parsed ERQL query against a database's E/R schema and its
/// chosen physical mapping. This is the logical-data-independence layer:
/// the same Query compiles into different operator trees under different
/// mappings (index lookups vs. scans, extra joins vs. array reads,
/// unions over subclass tables vs. discriminator filters) while always
/// producing the same logical result.
///
/// Supported shapes (see Parser for the grammar):
///   - entity scans with attribute access (inherited attributes resolve
///     through the hierarchy; multi-valued attributes evaluate as arrays)
///   - relationship joins (`JOIN x ON <relationship>`), including weak
///     entities' identifying relationships, plus theta joins on
///     expressions (hash join when the predicate is an equi-conjunction)
///   - WHERE with per-alias predicate pushdown and full-key point
///     lookups through indexes
///   - aggregates (count/sum/avg/min/max/array_agg, DISTINCT) with
///     explicit or inferred GROUP BY; array_agg(struct(...)) builds
///     hierarchical outputs
///   - unnest(<array expr>) in the select list
///   - DISTINCT, ORDER BY over output columns, LIMIT
/// With opts.num_threads > 1, plans whose base-table scan volume crosses
/// opts.parallel_row_threshold get morsel-parallel operators (GatherOp /
/// ParallelHashAggregateOp from exec/parallel.h) above the per-alias scan
/// pipelines; smaller plans — and everything at num_threads == 1, the
/// default — compile to exactly the classic serial operator tree.
class Translator {
 public:
  static Result<CompiledQuery> Translate(
      MappedDatabase* db, const Query& query,
      const ExecOptions& opts = ExecOptions::Serial());
};

}  // namespace erql
}  // namespace erbium

#endif  // ERBIUM_ERQL_TRANSLATOR_H_
