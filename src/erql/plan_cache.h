#ifndef ERBIUM_ERQL_PLAN_CACHE_H_
#define ERBIUM_ERQL_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "erql/translator.h"

namespace erbium {
namespace erql {

/// LRU cache of compiled SELECT plans — the paper's point that the E/R
/// layer is the *stable* abstraction above volatile physical mappings,
/// applied to the hot path: parse→translate is paid once per
/// (normalized statement text, mapping generation) and reused until the
/// mapping changes underneath it. The owner (api::StatementRunner) bumps
/// the generation on every DDL / REMAP / ATTACH; entries compiled under
/// an older generation hold dangling Table pointers and are never
/// returned, only purged.
///
/// Operator trees carry cursor state (Open() resets it, but two threads
/// may not drive one tree at once), so entries are *checked out* for the
/// duration of an execution: Checkout() removes a plan instance from the
/// cache, the caller runs it under the shared statement lock, then
/// CheckIn() returns it. A second concurrent reader of the same
/// statement simply misses and compiles fresh; its check-in deepens the
/// per-key pool (up to kPlansPerKey instances), so steady-state
/// concurrency stops missing.
///
/// Thread safety: all methods lock an internal mutex; the cache never
/// executes plans itself. Metrics: plan_cache.hits / .misses /
/// .evictions / .invalidations in the global registry, plus the
/// plan_cache.entries gauge.
class PlanCache {
 public:
  /// Maximum plan instances pooled per key; more check-ins than this are
  /// dropped (a plan is cheap to recompile, unbounded pools are not).
  static constexpr size_t kPlansPerKey = 8;

  explicit PlanCache(size_t capacity = 1024);
  ~PlanCache();

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// The cache key of a statement: whitespace runs outside quoted
  /// strings collapse to one space, leading/trailing whitespace and a
  /// trailing ';' drop. Formatting variants of one statement share an
  /// entry; literals stay significant (no parameterization yet).
  static std::string NormalizeStatement(const std::string& text);

  /// Removes and returns one plan compiled for `key` under exactly
  /// `generation`, or nullptr (miss). A surviving entry from an older
  /// generation is purged on sight and counts as an eviction.
  std::unique_ptr<CompiledQuery> Checkout(const std::string& key,
                                          uint64_t generation);

  /// Returns a plan to the pool for `key`. Dropped silently when the
  /// generation has moved on, the per-key pool is full, or inserting
  /// would exceed capacity after LRU eviction.
  void CheckIn(const std::string& key, uint64_t generation,
               std::unique_ptr<CompiledQuery> plan);

  /// Purges every entry compiled under a generation < `generation`.
  /// Called by the owner right after a DDL/REMAP/ATTACH rebuild, while
  /// it still holds the exclusive statement lock, so no reader can be
  /// executing a stale plan.
  void InvalidateBelow(uint64_t generation);

  /// Number of keys currently cached.
  size_t size() const;
  size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    std::string key;
    uint64_t generation = 0;
    std::vector<std::unique_ptr<CompiledQuery>> plans;
  };
  using LruList = std::list<Entry>;

  /// Erases an entry (drops its plans); caller holds mu_.
  void EraseLocked(LruList::iterator it);

  const size_t capacity_;
  mutable std::mutex mu_;
  /// Most-recently-used at the front.
  LruList lru_;
  std::unordered_map<std::string, LruList::iterator> index_;
};

}  // namespace erql
}  // namespace erbium

#endif  // ERBIUM_ERQL_PLAN_CACHE_H_
