#ifndef ERBIUM_ERQL_QUERY_ENGINE_H_
#define ERBIUM_ERQL_QUERY_ENGINE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "erql/plan_cache.h"
#include "erql/translator.h"
#include "mapping/database.h"

namespace erbium {
namespace erql {

/// Materialized query output.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<Row> rows;

  /// Shard routing of the executed plan, copied from CompiledQuery when
  /// the statement was a SELECT against a sharded engine (shard_count
  /// stays 1 otherwise; shard_target names the shard for single-shard
  /// routes). The host uses these for per-route metrics and outcome tags.
  shard::ShardRouteClass shard_route = shard::ShardRouteClass::kSingleShard;
  int shard_target = -1;
  int shard_count = 1;

  /// Pretty-prints as a bordered text table (examples / debugging).
  std::string ToTable(size_t max_rows = 20) const;

  /// Deterministic rendering for equivalence checks: rows sorted, arrays
  /// within cells sorted.
  std::string ToCanonicalString() const;
};

/// Facade over parse + translate + execute.
///
/// Both entry points take ExecOptions, defaulting to ExecOptions::Default()
/// (num_threads from ERBIUM_THREADS or the hardware concurrency). Pass
/// ExecOptions::Serial() — or set num_threads = 1 — for exactly the
/// classic single-threaded plans; either way, plans below the parallel
/// row threshold stay serial (see exec/parallel.h).
///
/// Every Execute() call — SELECT, EXPLAIN, SHOW, TRACE, and failures —
/// records a QueryRecord into obs::QueryTelemetry::Global() (query text,
/// kind, mapping, wall/cpu time, rows, status) and feeds the per-mapping
/// and per-kind latency histograms; statements slower than the telemetry
/// slow threshold additionally capture their span tree into the
/// slow-query ring. Introspection is reachable from the dialect itself:
/// SHOW METRICS [LIKE '<glob>'], SHOW QUERIES [SLOW] [LIMIT n], and
/// TRACE [INTO '<file>'] SELECT … (runs under an analyze window and
/// emits Chrome trace_event JSON, see obs/export.h).
class QueryEngine {
 public:
  /// Compiles a query without running it (plan inspection, benchmarks
  /// that amortize compilation). Only SELECT statements compile to
  /// plans; SHOW/TRACE statements are rejected here — Execute() them.
  /// Does not touch the query log.
  static Result<CompiledQuery> Compile(
      MappedDatabase* db, const std::string& text,
      const ExecOptions& opts = ExecOptions::Default());

  /// Parses, compiles, executes, and materializes.
  ///
  /// With a non-null `cache`, plain SELECTs (no EXPLAIN/TRACE) first try
  /// to check a compiled plan out of the cache under `generation` — a
  /// hit skips parse and translate entirely — and check the plan back in
  /// after a successful run (a failed run drops it). The caller owns the
  /// generation counter and must bump it whenever the database the plans
  /// are bound to is rebuilt (DDL/REMAP/ATTACH); it must also ensure no
  /// writer mutates the database while a checked-out plan executes (the
  /// statement lock in api::StatementRunner provides both). All cached
  /// executions must share one ExecOptions value: plan shape depends on
  /// it, and the cache key does not include it.
  static Result<QueryResult> Execute(
      MappedDatabase* db, const std::string& text,
      const ExecOptions& opts = ExecOptions::Default(),
      PlanCache* cache = nullptr, uint64_t generation = 0);
};

}  // namespace erql
}  // namespace erbium

#endif  // ERBIUM_ERQL_QUERY_ENGINE_H_
