#include "erql/plan_cache.h"

#include <cctype>
#include <utility>

#include "obs/metrics.h"

namespace erbium {
namespace erql {

namespace {

obs::Counter HitCounter() {
  return obs::MetricsRegistry::Global().counter("plan_cache.hits");
}
obs::Counter MissCounter() {
  return obs::MetricsRegistry::Global().counter("plan_cache.misses");
}
obs::Counter EvictionCounter() {
  return obs::MetricsRegistry::Global().counter("plan_cache.evictions");
}
obs::Counter InvalidationCounter() {
  return obs::MetricsRegistry::Global().counter("plan_cache.invalidations");
}

void UpdateEntriesGauge(size_t entries) {
  obs::MetricsRegistry::Global()
      .gauge("plan_cache.entries")
      .Set(static_cast<int64_t>(entries));
}

}  // namespace

PlanCache::PlanCache(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

PlanCache::~PlanCache() = default;

std::string PlanCache::NormalizeStatement(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  bool in_string = false;
  bool pending_space = false;
  for (char c : text) {
    if (in_string) {
      out.push_back(c);
      if (c == '\'') in_string = false;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) {
      out.push_back(' ');
      pending_space = false;
    }
    out.push_back(c);
    if (c == '\'') in_string = true;
  }
  // A trailing ';' (shell habit) does not change the statement.
  while (!out.empty() && (out.back() == ';' || out.back() == ' ')) {
    out.pop_back();
  }
  return out;
}

std::unique_ptr<CompiledQuery> PlanCache::Checkout(const std::string& key,
                                                   uint64_t generation) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    lock.unlock();
    MissCounter().Increment();
    return nullptr;
  }
  LruList::iterator entry = it->second;
  if (entry->generation != generation) {
    // A stale survivor (its tables are gone); purge instead of serving.
    EraseLocked(entry);
    size_t entries = lru_.size();
    lock.unlock();
    EvictionCounter().Increment();
    MissCounter().Increment();
    UpdateEntriesGauge(entries);
    return nullptr;
  }
  if (entry->plans.empty()) {
    // All instances for this key are checked out right now.
    lock.unlock();
    MissCounter().Increment();
    return nullptr;
  }
  std::unique_ptr<CompiledQuery> plan = std::move(entry->plans.back());
  entry->plans.pop_back();
  // Touch: move to the front of the LRU list.
  lru_.splice(lru_.begin(), lru_, entry);
  lock.unlock();
  HitCounter().Increment();
  return plan;
}

void PlanCache::CheckIn(const std::string& key, uint64_t generation,
                        std::unique_ptr<CompiledQuery> plan) {
  if (plan == nullptr) return;
  std::unique_lock<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    LruList::iterator entry = it->second;
    if (entry->generation != generation) {
      // The mapping changed while this plan ran (cannot actually happen
      // under the statement lock, but stay safe): drop both.
      EraseLocked(entry);
      size_t entries = lru_.size();
      lock.unlock();
      EvictionCounter().Increment();
      UpdateEntriesGauge(entries);
      return;
    }
    if (entry->plans.size() < kPlansPerKey) {
      entry->plans.push_back(std::move(plan));
    }
    lru_.splice(lru_.begin(), lru_, entry);
    return;
  }
  // New key: evict from the cold end until there is room.
  size_t evicted = 0;
  while (lru_.size() >= capacity_) {
    EraseLocked(std::prev(lru_.end()));
    ++evicted;
  }
  Entry entry;
  entry.key = key;
  entry.generation = generation;
  entry.plans.push_back(std::move(plan));
  lru_.push_front(std::move(entry));
  index_[key] = lru_.begin();
  size_t entries = lru_.size();
  lock.unlock();
  if (evicted > 0) EvictionCounter().Increment(evicted);
  UpdateEntriesGauge(entries);
}

void PlanCache::InvalidateBelow(uint64_t generation) {
  std::unique_lock<std::mutex> lock(mu_);
  size_t purged = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->generation < generation) {
      auto next = std::next(it);
      EraseLocked(it);
      it = next;
      ++purged;
    } else {
      ++it;
    }
  }
  size_t entries = lru_.size();
  lock.unlock();
  if (purged > 0) InvalidationCounter().Increment(purged);
  UpdateEntriesGauge(entries);
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

void PlanCache::EraseLocked(LruList::iterator it) {
  index_.erase(it->key);
  lru_.erase(it);
}

}  // namespace erql
}  // namespace erbium
