#include "erql/query_engine.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "erql/parser.h"
#include "exec/explain.h"
#include "exec/snapshot.h"
#include "obs/export.h"
#include "obs/session.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "obs/workload_profile.h"

namespace erbium {
namespace erql {

namespace {

Value SortArraysDeep(const Value& v) {
  if (v.kind() == TypeKind::kArray) {
    Value::ArrayData elements;
    elements.reserve(v.array().size());
    for (const Value& e : v.array()) elements.push_back(SortArraysDeep(e));
    std::sort(elements.begin(), elements.end());
    return Value::Array(std::move(elements));
  }
  if (v.kind() == TypeKind::kStruct) {
    Value::StructData fields;
    for (const auto& [name, value] : v.struct_fields()) {
      fields.emplace_back(name, SortArraysDeep(value));
    }
    return Value::Struct(std::move(fields));
  }
  return v;
}

}  // namespace

std::string QueryResult::ToTable(size_t max_rows) const {
  std::vector<size_t> widths(columns.size());
  std::vector<std::vector<std::string>> cells;
  for (size_t i = 0; i < columns.size(); ++i) {
    widths[i] = columns[i].size();
  }
  size_t shown = std::min(rows.size(), max_rows);
  for (size_t r = 0; r < shown; ++r) {
    std::vector<std::string> row_cells;
    for (size_t i = 0; i < columns.size(); ++i) {
      std::string cell = rows[r][i].ToString();
      if (cell.size() > 40) cell = cell.substr(0, 37) + "...";
      widths[i] = std::max(widths[i], cell.size());
      row_cells.push_back(std::move(cell));
    }
    cells.push_back(std::move(row_cells));
  }
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row_cells) {
    out += "|";
    for (size_t i = 0; i < columns.size(); ++i) {
      out += " " + row_cells[i] +
             std::string(widths[i] - row_cells[i].size(), ' ') + " |";
    }
    out += "\n";
  };
  std::vector<std::string> header(columns.begin(), columns.end());
  emit_row(header);
  out += "|";
  for (size_t i = 0; i < columns.size(); ++i) {
    out += std::string(widths[i] + 2, '-') + "|";
  }
  out += "\n";
  for (const auto& row_cells : cells) emit_row(row_cells);
  if (rows.size() > shown) {
    out += "... (" + std::to_string(rows.size()) + " rows total)\n";
  }
  return out;
}

std::string QueryResult::ToCanonicalString() const {
  std::vector<std::string> rendered;
  rendered.reserve(rows.size());
  for (const Row& row : rows) {
    std::string line;
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) line += " | ";
      line += SortArraysDeep(row[i]).ToString();
    }
    rendered.push_back(std::move(line));
  }
  std::sort(rendered.begin(), rendered.end());
  std::string out;
  for (const std::string& line : rendered) {
    out += line;
    out += "\n";
  }
  return out;
}

Result<CompiledQuery> QueryEngine::Compile(MappedDatabase* db,
                                           const std::string& text,
                                           const ExecOptions& opts) {
  ERBIUM_ASSIGN_OR_RETURN(Query query, Parser::Parse(text));
  if (query.statement != StatementKind::kSelect) {
    return Status::InvalidArgument(
        "only SELECT statements compile to plans; run SHOW/TRACE/CHECKPOINT "
        "through QueryEngine::Execute");
  }
  return Translator::Translate(db, query, opts);
}

namespace {

/// Query-log kind tag for a parsed statement.
std::string StatementKindName(const Query& query) {
  switch (query.statement) {
    case StatementKind::kShowMetrics:
    case StatementKind::kShowQueries:
    case StatementKind::kShowSessions:
    case StatementKind::kShowWorkload:
      return "show";
    case StatementKind::kTrace:
      return "trace";
    case StatementKind::kCheckpoint:
      return "checkpoint";
    case StatementKind::kAttach:
      return "attach";
    case StatementKind::kExportWorkload:
      return "export";
    case StatementKind::kLoadWorkload:
      return "load";
    case StatementKind::kAdvise:
      return "advise";
    case StatementKind::kSelect:
      break;
  }
  switch (query.explain) {
    case ExplainMode::kPlan:
      return "explain";
    case ExplainMode::kAnalyze:
      return "explain_analyze";
    case ExplainMode::kNone:
      break;
  }
  return "select";
}

/// EXPLAIN [ANALYZE] output as a one-column result, one line per row:
/// mapping summary, the (annotated) plan tree, then the mapping notes.
/// For ANALYZE the collected span tree is also exported through
/// `stats_out` so the engine can hand it to the slow-query ring.
Result<QueryResult> ExplainQuery(CompiledQuery* compiled,
                                 obs::QueryStats* stats_out,
                                 bool* have_stats) {
  QueryResult result;
  result.columns = {"plan"};
  auto add = [&result](std::string line) {
    result.rows.push_back(Row{Value::String(std::move(line))});
  };
  add("mapping: " + compiled->mapping_summary);
  std::string tree;
  if (compiled->explain == ExplainMode::kAnalyze) {
    // Execute under an analyze window so the operator wrappers record
    // wall/CPU time; the result rows themselves are discarded — their
    // cardinality shows up as the root span's rows.
    obs::ScopedAnalyze analyze_window;
    uint64_t start = obs::MonotonicNowNs();
    ERBIUM_ASSIGN_OR_RETURN(std::vector<Row> rows,
                            CollectRows(compiled->plan.get()));
    uint64_t total_wall = obs::MonotonicNowNs() - start;
    obs::QueryStats stats = CollectQueryStats(*compiled->plan);
    stats.total_wall_ns = total_wall;
    tree = stats.ToString();
    *stats_out = std::move(stats);
    *have_stats = true;
  } else {
    tree = RenderPlanTree(*compiled->plan);
  }
  std::istringstream lines(tree);
  for (std::string line; std::getline(lines, line);) add(std::move(line));
  if (!compiled->mapping_notes.empty()) {
    add("mapping notes:");
    for (const std::string& note : compiled->mapping_notes) add("  " + note);
  }
  return result;
}

/// Bucket-edge quantile estimate: the smallest bound whose cumulative
/// count reaches q * count, rendered as "p50<=2.5"; observations in the
/// overflow bucket report the last bound as a lower bound (">100").
std::string QuantileEstimate(const obs::HistogramSnapshot& snap, double q,
                             const char* label) {
  uint64_t target = static_cast<uint64_t>(q * static_cast<double>(snap.count));
  if (target == 0) target = 1;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < snap.bounds.size() && i < snap.buckets.size(); ++i) {
    cumulative += snap.buckets[i];
    if (cumulative >= target) {
      return std::string(label) + "<=" + obs::JsonDouble(snap.bounds[i]);
    }
  }
  if (snap.bounds.empty()) return std::string(label) + "=?";
  return std::string(label) + ">" + obs::JsonDouble(snap.bounds.back());
}

/// SHOW METRICS [LIKE '<glob>']: one row per metric, histograms
/// summarized as count/sum plus p50/p99 bucket-edge estimates.
QueryResult ShowMetrics(const Query& query) {
  obs::RegistrySnapshot snap = obs::MetricsRegistry::Global().Snapshot();
  auto matches = [&query](const std::string& name) {
    return query.show_like.empty() || GlobMatch(query.show_like, name);
  };
  QueryResult result;
  result.columns = {"metric", "kind", "value"};
  for (const auto& [name, value] : snap.counters) {
    if (!matches(name)) continue;
    result.rows.push_back(Row{Value::String(name), Value::String("counter"),
                              Value::Int64(static_cast<int64_t>(value))});
  }
  for (const auto& [name, value] : snap.gauges) {
    if (!matches(name)) continue;
    result.rows.push_back(
        Row{Value::String(name), Value::String("gauge"), Value::Int64(value)});
  }
  for (const auto& [name, hist] : snap.histograms) {
    if (!matches(name)) continue;
    std::string summary = "count=" + std::to_string(hist.count) +
                          " sum=" + obs::JsonDouble(hist.sum);
    if (hist.count > 0) {
      summary += " " + QuantileEstimate(hist, 0.5, "p50") + " " +
                 QuantileEstimate(hist, 0.99, "p99");
    }
    result.rows.push_back(Row{Value::String(name), Value::String("histogram"),
                              Value::String(std::move(summary))});
  }
  return result;
}

/// SHOW QUERIES [SLOW] [LIMIT n]: the query log (or slow-query ring),
/// newest first. Slow entries add a spans column (size of the captured
/// span tree). The session column attributes each statement to the
/// connection (or shell) that issued it.
QueryResult ShowQueries(const Query& query) {
  obs::QueryTelemetry& telemetry = obs::QueryTelemetry::Global();
  size_t limit = query.show_limit >= 0
                     ? static_cast<size_t>(query.show_limit)
                     : std::numeric_limits<size_t>::max();
  QueryResult result;
  result.columns = {"seq",        "kind",    "mapping",     "wall",
                    "cpu",        "queue_wait", "write_stall", "rows",
                    "threads",    "status",  "session",     "query"};
  // Transport columns render "-" for statements that never crossed the
  // wire (shell, embedded API) so local logs stay uncluttered.
  auto server_ns = [](uint64_t ns, bool remote) {
    return Value::String(remote ? obs::FormatNs(ns) : "-");
  };
  auto record_row = [&](const obs::QueryRecord& r) {
    bool remote = r.queue_wait_ns > 0 || r.server_total_ns > 0;
    return Row{Value::Int64(static_cast<int64_t>(r.seq)),
               Value::String(r.kind),
               Value::String(r.mapping),
               Value::String(obs::FormatNs(r.wall_ns)),
               Value::String(obs::FormatNs(r.cpu_ns)),
               server_ns(r.queue_wait_ns, remote),
               server_ns(r.write_stall_ns, remote),
               Value::Int64(static_cast<int64_t>(r.rows_out)),
               Value::Int64(r.threads),
               Value::String(r.ok ? "ok" : r.error),
               Value::String(r.session.empty() ? "-" : r.session),
               Value::String(r.text)};
  };
  if (query.show_slow) {
    result.columns.insert(result.columns.begin() + 7, "spans");
    for (const obs::SlowQueryRecord& slow : telemetry.RecentSlow(limit)) {
      Row row = record_row(slow.record);
      row.insert(row.begin() + 7,
                 Value::Int64(static_cast<int64_t>(slow.stats.spans.size())));
      result.rows.push_back(std::move(row));
    }
  } else {
    for (const obs::QueryRecord& record : telemetry.Recent(limit)) {
      result.rows.push_back(record_row(record));
    }
  }
  return result;
}

/// SHOW SESSIONS: every live session from the process-wide registry,
/// ordered by id — the shell's own session locally, one row per client
/// connection on a server.
QueryResult ShowSessions() {
  uint64_t now = obs::MonotonicNowNs();
  QueryResult result;
  result.columns = {"id",       "session",  "peer",     "state",
                    "statements", "errors", "bytes_in", "bytes_out",
                    "pipeline", "peak_out", "age",      "idle",
                    "shard",    "last_statement"};
  for (const obs::SessionInfo& info : obs::SessionRegistry::Global().List()) {
    result.rows.push_back(Row{
        Value::Int64(static_cast<int64_t>(info.id)),
        Value::String(info.name),
        Value::String(info.peer),
        Value::String(info.state),
        Value::Int64(static_cast<int64_t>(info.statements)),
        Value::Int64(static_cast<int64_t>(info.errors)),
        Value::Int64(static_cast<int64_t>(info.bytes_in)),
        Value::Int64(static_cast<int64_t>(info.bytes_out)),
        Value::Int64(static_cast<int64_t>(info.pipeline_depth)),
        Value::Int64(static_cast<int64_t>(info.peak_write_buffer)),
        Value::String(obs::FormatNs(now - info.connected_ns)),
        Value::String(obs::FormatNs(now - info.last_active_ns)),
        Value::String(info.last_shard < 0 ? "-"
                                          : std::to_string(info.last_shard)),
        Value::String(info.last_statement)});
  }
  return result;
}

/// SHOW WORKLOAD [LIMIT n]: the captured E/R access profile — one row
/// per entity set, relationship set, and touched attribute with their
/// access-path counters, then the query shapes ordered by weight
/// (accumulated wall time). LIMIT bounds the shape rows only; the
/// counter sections are bounded by the schema itself.
QueryResult ShowWorkload(const Query& query) {
  obs::WorkloadSnapshot snap = obs::WorkloadProfile::Global().Snapshot();
  size_t limit = query.show_limit >= 0
                     ? static_cast<size_t>(query.show_limit)
                     : std::numeric_limits<size_t>::max();
  QueryResult result;
  result.columns = {"section", "name", "detail"};
  auto add = [&](const char* section, std::string name, std::string detail) {
    result.rows.push_back(Row{Value::String(section),
                              Value::String(std::move(name)),
                              Value::String(std::move(detail))});
  };
  std::string summary = "profiled=" + std::to_string(snap.statements) +
                        " shapes=" + std::to_string(snap.shapes.size());
  if (!obs::WorkloadProfile::CompiledIn()) summary += " (capture compiled out)";
  if (!obs::WorkloadProfile::Global().enabled()) summary += " (disabled)";
  add("profile", "statements", std::move(summary));
  for (const auto& [name, e] : snap.entities) {
    add("entity", name,
        "scans=" + std::to_string(e.scans) +
            " probes=" + std::to_string(e.probes) +
            " join_sides=" + std::to_string(e.join_sides) +
            " inserts=" + std::to_string(e.inserts) +
            " deletes=" + std::to_string(e.deletes) +
            " updates=" + std::to_string(e.updates));
  }
  for (const auto& [name, r] : snap.relationships) {
    add("relationship", name,
        "joins=" + std::to_string(r.joins) +
            " fused_scans=" + std::to_string(r.fused_scans) +
            " inserts=" + std::to_string(r.inserts) +
            " deletes=" + std::to_string(r.deletes));
  }
  for (const auto& [name, a] : snap.attributes) {
    add("attribute", name,
        "predicates=" + std::to_string(a.predicates) +
            " projections=" + std::to_string(a.projections));
  }
  size_t shown = 0;
  for (const obs::WorkloadSnapshot::Shape& shape : snap.shapes) {
    if (shown++ >= limit) break;
    uint64_t mean = shape.count > 0 ? shape.total_wall_ns / shape.count : 0;
    add("shape", shape.shape,
        "count=" + std::to_string(shape.count) + " mean=" +
            obs::FormatNs(mean) + " total=" +
            obs::FormatNs(shape.total_wall_ns) + " kind=" + shape.kind);
  }
  return result;
}

/// TRACE [INTO '<file>'] SELECT …: compiles the inner query, runs it to
/// completion under an analyze window, and renders the collected span
/// tree as Chrome trace_event JSON — returned as a one-row result, or
/// written to the file with a confirmation row. The span tree is also
/// exported so the engine can feed the slow-query ring, and the traced
/// query's output cardinality lands in record->rows_out.
Result<QueryResult> TraceQuery(
    MappedDatabase* db, const Query& query, const std::string& text,
    const ExecOptions& opts, obs::QueryRecord* record,
    obs::QueryStats* stats_out, bool* have_stats,
    std::shared_ptr<obs::StatementFootprint>* footprint_out) {
  ERBIUM_ASSIGN_OR_RETURN(CompiledQuery compiled,
                          Translator::Translate(db, query, opts));
  if (compiled.footprint != nullptr) {
    if (compiled.footprint->shape.empty()) {
      compiled.footprint->shape = obs::NormalizeShape(text);
    }
    *footprint_out = compiled.footprint;
  }
  obs::ScopedAnalyze analyze_window;
  uint64_t start = obs::MonotonicNowNs();
  ERBIUM_ASSIGN_OR_RETURN(std::vector<Row> rows,
                          CollectRows(compiled.plan.get()));
  uint64_t total_wall = obs::MonotonicNowNs() - start;
  obs::QueryStats stats = CollectQueryStats(*compiled.plan);
  stats.total_wall_ns = total_wall;
  record->rows_out = rows.size();
  std::string json = obs::ExportChromeTrace(stats, text);
  size_t span_count = stats.spans.size();
  *stats_out = std::move(stats);
  *have_stats = true;
  QueryResult result;
  result.columns = {"trace"};
  if (query.trace_into.empty()) {
    result.rows.push_back(Row{Value::String(std::move(json))});
    return result;
  }
  std::ofstream file(query.trace_into, std::ios::binary | std::ios::trunc);
  if (!file) {
    return Status::InvalidArgument("cannot write trace file " +
                                   query.trace_into);
  }
  file << json << '\n';
  if (!file.good()) {
    return Status::Internal("failed writing trace file " + query.trace_into);
  }
  result.rows.push_back(Row{Value::String(
      "wrote " + query.trace_into + " (" + std::to_string(span_count) +
      " spans, wall=" + obs::FormatNs(total_wall) + ")")});
  return result;
}

/// Statement dispatch after parsing. `record` arrives with text/mapping/
/// threads filled; kind is set here, rows_out only by TRACE (the engine
/// fills it from the result for everything else). Statements that run a
/// plan under an analyze window export the span tree via `stats_out`.
/// A plain SELECT compiled here is checked into `cache` (when non-null)
/// under `cache_key`/`generation` after a successful run.
Result<QueryResult> ExecuteParsed(
    MappedDatabase* db, const Query& query, const std::string& text,
    const ExecOptions& opts, uint64_t start_wall_ns, obs::QueryRecord* record,
    obs::QueryStats* stats_out, bool* have_stats, PlanCache* cache,
    uint64_t generation, const std::string& cache_key,
    std::shared_ptr<obs::StatementFootprint>* footprint_out) {
  record->kind = StatementKindName(query);
  switch (query.statement) {
    case StatementKind::kShowMetrics:
      return ShowMetrics(query);
    case StatementKind::kShowQueries:
      return ShowQueries(query);
    case StatementKind::kShowSessions:
      return ShowSessions();
    case StatementKind::kShowWorkload:
      return ShowWorkload(query);
    case StatementKind::kExportWorkload: {
      std::string json = obs::WorkloadProfile::Global().ToJson();
      std::ofstream file(query.workload_path,
                         std::ios::binary | std::ios::trunc);
      if (!file) {
        return Status::InvalidArgument("cannot write workload snapshot " +
                                       query.workload_path);
      }
      file << json;
      if (!file.good()) {
        return Status::Internal("failed writing workload snapshot " +
                                query.workload_path);
      }
      QueryResult result;
      result.columns = {"export"};
      result.rows.push_back(Row{Value::String(
          "wrote " + query.workload_path + " (" +
          std::to_string(json.size()) + " bytes)")});
      return result;
    }
    case StatementKind::kLoadWorkload: {
      std::ifstream file(query.workload_path, std::ios::binary);
      if (!file) {
        return Status::InvalidArgument("cannot read workload snapshot " +
                                       query.workload_path);
      }
      std::ostringstream buffer;
      buffer << file.rdbuf();
      ERBIUM_RETURN_NOT_OK(
          obs::WorkloadProfile::Global().LoadJson(buffer.str()));
      obs::WorkloadSnapshot snap = obs::WorkloadProfile::Global().Snapshot();
      QueryResult result;
      result.columns = {"load"};
      result.rows.push_back(Row{Value::String(
          "loaded " + query.workload_path + " (" +
          std::to_string(snap.shapes.size()) + " shapes, " +
          std::to_string(snap.statements) + " statements)")});
      return result;
    }
    case StatementKind::kAdvise:
      // Costing candidate mappings needs the advisor (a layer above this
      // library) and the live database's owner.
      return Status::InvalidArgument(
          "ADVISE is handled by the host application (api::StatementRunner), "
          "not the query engine");
    case StatementKind::kTrace:
      return TraceQuery(db, query, text, opts, record, stats_out, have_stats,
                        footprint_out);
    case StatementKind::kCheckpoint: {
      DurabilityHook* hook = db->durability_hook();
      if (hook == nullptr) {
        return Status::InvalidArgument(
            "CHECKPOINT requires a durable database — ATTACH DATABASE "
            "'<dir>' first");
      }
      ERBIUM_ASSIGN_OR_RETURN(std::string summary, hook->Checkpoint());
      QueryResult result;
      result.columns = {"checkpoint"};
      result.rows.push_back(Row{Value::String(std::move(summary))});
      return result;
    }
    case StatementKind::kAttach:
      // Attaching replaces the whole database instance, which only the
      // owner of the MappedDatabase can do.
      return Status::InvalidArgument(
          "ATTACH DATABASE is handled by the host application (the shell), "
          "not the query engine");
    case StatementKind::kSelect:
      break;
  }
  ERBIUM_ASSIGN_OR_RETURN(CompiledQuery compiled,
                          Translator::Translate(db, query, opts));
  if (compiled.footprint != nullptr) {
    // Stamp the normalized shape once; the footprint (shape included) is
    // immutable from here on and rides along with cached plans.
    if (compiled.footprint->shape.empty()) {
      compiled.footprint->shape = obs::NormalizeShape(text);
    }
    *footprint_out = compiled.footprint;
  }
  if (compiled.explain != ExplainMode::kNone) {
    return ExplainQuery(&compiled, stats_out, have_stats);
  }
  ERBIUM_ASSIGN_OR_RETURN(std::vector<Row> rows,
                          CollectRows(compiled.plan.get()));
  // Slow-query capture: when the statement has already blown past the
  // slow threshold, walk the plan for its span tree while the plan is
  // still alive. Row counts are always populated; wall/cpu columns stay
  // zero unless an analyze window happened to be open. One extra clock
  // read per statement, never per row.
  uint64_t threshold = obs::QueryTelemetry::Global().slow_threshold_ns();
  if (obs::MonotonicNowNs() - start_wall_ns >= threshold) {
    *stats_out = CollectQueryStats(*compiled.plan);
    *have_stats = true;
  }
  QueryResult result;
  result.rows = std::move(rows);
  result.shard_route = compiled.shard_route;
  result.shard_target = compiled.shard_target;
  result.shard_count = compiled.shard_count;
  if (cache != nullptr) {
    // Keep the plan for the next execution of this statement; columns
    // are copied because the plan outlives this result.
    result.columns = compiled.columns;
    cache->CheckIn(cache_key, generation,
                   std::make_unique<CompiledQuery>(std::move(compiled)));
  } else {
    result.columns = std::move(compiled.columns);
  }
  return result;
}

}  // namespace

Result<QueryResult> QueryEngine::Execute(MappedDatabase* db,
                                         const std::string& text,
                                         const ExecOptions& opts,
                                         PlanCache* cache,
                                         uint64_t generation) {
  // Per-statement read snapshot: every operator Open below this frame
  // resolves its table/pair to one pinned version, so the whole
  // statement sees a single consistent database state no matter what
  // writers publish meanwhile.
  exec::ReadSnapshot snapshot_scope;
  uint64_t start_wall = obs::MonotonicNowNs();
  uint64_t start_cpu = obs::ThreadCpuNowNs();
  obs::QueryRecord record;
  record.text = text;
  record.mapping = db->mapping().spec().name;
  record.threads = opts.num_threads;
  record.kind = "invalid";  // overwritten once the statement parses

  // Prepared-statement fast path: a cached plan skips parse + translate.
  // Only plain SELECTs ever live in the cache, so a hit implies the kind.
  std::string cache_key;
  std::unique_ptr<CompiledQuery> cached;
  if (cache != nullptr) {
    cache_key = PlanCache::NormalizeStatement(text);
    cached = cache->Checkout(cache_key, generation);
  }

  obs::QueryStats stats;
  bool have_stats = false;
  std::shared_ptr<obs::StatementFootprint> footprint;
  Result<QueryResult> result = [&]() -> Result<QueryResult> {
    if (cached != nullptr) {
      record.kind = "select";
      // The footprint was derived when this plan was first compiled; a
      // cache hit replays it into the workload profile for free.
      footprint = cached->footprint;
      // A failed run drops the plan (`cached` dies on early return) —
      // only healthy plans go back in the pool.
      ERBIUM_ASSIGN_OR_RETURN(std::vector<Row> rows,
                              CollectRows(cached->plan.get()));
      uint64_t threshold = obs::QueryTelemetry::Global().slow_threshold_ns();
      if (obs::MonotonicNowNs() - start_wall >= threshold) {
        stats = CollectQueryStats(*cached->plan);
        have_stats = true;
      }
      QueryResult reused;
      reused.columns = cached->columns;
      reused.rows = std::move(rows);
      reused.shard_route = cached->shard_route;
      reused.shard_target = cached->shard_target;
      reused.shard_count = cached->shard_count;
      cache->CheckIn(cache_key, generation, std::move(cached));
      return reused;
    }
    ERBIUM_ASSIGN_OR_RETURN(Query query, Parser::Parse(text));
    return ExecuteParsed(db, query, text, opts, start_wall, &record, &stats,
                         &have_stats, cache, generation, cache_key,
                         &footprint);
  }();

  record.wall_ns = obs::MonotonicNowNs() - start_wall;
  record.cpu_ns = obs::ThreadCpuNowNs() - start_cpu;
  record.ok = result.ok();
  if (result.ok()) {
    if (record.rows_out == 0) record.rows_out = result->rows.size();
  } else {
    record.error = result.status().ToString();
  }
  if (have_stats && stats.total_wall_ns == 0) {
    stats.total_wall_ns = record.wall_ns;
  }
  // Feed the workload profiler with the E/R footprint + shape. Reuses
  // the wall time measured above — the profiler itself reads no clocks.
  if (result.ok()) {
    obs::WorkloadProfile::Global().RecordStatement(footprint.get(),
                                                   record.kind, text,
                                                   record.wall_ns);
  }
  obs::QueryTelemetry::Global().Record(std::move(record),
                                       have_stats ? &stats : nullptr);
  return result;
}

}  // namespace erql
}  // namespace erbium
