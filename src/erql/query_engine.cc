#include "erql/query_engine.h"

#include <algorithm>
#include <sstream>

#include "erql/parser.h"
#include "exec/explain.h"
#include "obs/trace.h"

namespace erbium {
namespace erql {

namespace {

Value SortArraysDeep(const Value& v) {
  if (v.kind() == TypeKind::kArray) {
    Value::ArrayData elements;
    elements.reserve(v.array().size());
    for (const Value& e : v.array()) elements.push_back(SortArraysDeep(e));
    std::sort(elements.begin(), elements.end());
    return Value::Array(std::move(elements));
  }
  if (v.kind() == TypeKind::kStruct) {
    Value::StructData fields;
    for (const auto& [name, value] : v.struct_fields()) {
      fields.emplace_back(name, SortArraysDeep(value));
    }
    return Value::Struct(std::move(fields));
  }
  return v;
}

}  // namespace

std::string QueryResult::ToTable(size_t max_rows) const {
  std::vector<size_t> widths(columns.size());
  std::vector<std::vector<std::string>> cells;
  for (size_t i = 0; i < columns.size(); ++i) {
    widths[i] = columns[i].size();
  }
  size_t shown = std::min(rows.size(), max_rows);
  for (size_t r = 0; r < shown; ++r) {
    std::vector<std::string> row_cells;
    for (size_t i = 0; i < columns.size(); ++i) {
      std::string cell = rows[r][i].ToString();
      if (cell.size() > 40) cell = cell.substr(0, 37) + "...";
      widths[i] = std::max(widths[i], cell.size());
      row_cells.push_back(std::move(cell));
    }
    cells.push_back(std::move(row_cells));
  }
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row_cells) {
    out += "|";
    for (size_t i = 0; i < columns.size(); ++i) {
      out += " " + row_cells[i] +
             std::string(widths[i] - row_cells[i].size(), ' ') + " |";
    }
    out += "\n";
  };
  std::vector<std::string> header(columns.begin(), columns.end());
  emit_row(header);
  out += "|";
  for (size_t i = 0; i < columns.size(); ++i) {
    out += std::string(widths[i] + 2, '-') + "|";
  }
  out += "\n";
  for (const auto& row_cells : cells) emit_row(row_cells);
  if (rows.size() > shown) {
    out += "... (" + std::to_string(rows.size()) + " rows total)\n";
  }
  return out;
}

std::string QueryResult::ToCanonicalString() const {
  std::vector<std::string> rendered;
  rendered.reserve(rows.size());
  for (const Row& row : rows) {
    std::string line;
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) line += " | ";
      line += SortArraysDeep(row[i]).ToString();
    }
    rendered.push_back(std::move(line));
  }
  std::sort(rendered.begin(), rendered.end());
  std::string out;
  for (const std::string& line : rendered) {
    out += line;
    out += "\n";
  }
  return out;
}

Result<CompiledQuery> QueryEngine::Compile(MappedDatabase* db,
                                           const std::string& text,
                                           const ExecOptions& opts) {
  ERBIUM_ASSIGN_OR_RETURN(Query query, Parser::Parse(text));
  return Translator::Translate(db, query, opts);
}

namespace {

/// EXPLAIN [ANALYZE] output as a one-column result, one line per row:
/// mapping summary, the (annotated) plan tree, then the mapping notes.
Result<QueryResult> ExplainQuery(CompiledQuery* compiled) {
  QueryResult result;
  result.columns = {"plan"};
  auto add = [&result](std::string line) {
    result.rows.push_back(Row{Value::String(std::move(line))});
  };
  add("mapping: " + compiled->mapping_summary);
  std::string tree;
  if (compiled->explain == ExplainMode::kAnalyze) {
    // Execute under an analyze window so the operator wrappers record
    // wall/CPU time; the result rows themselves are discarded — their
    // cardinality shows up as the root span's rows.
    obs::ScopedAnalyze analyze_window;
    uint64_t start = obs::MonotonicNowNs();
    ERBIUM_ASSIGN_OR_RETURN(std::vector<Row> rows,
                            CollectRows(compiled->plan.get()));
    uint64_t total_wall = obs::MonotonicNowNs() - start;
    obs::QueryStats stats = CollectQueryStats(*compiled->plan);
    stats.total_wall_ns = total_wall;
    tree = stats.ToString();
  } else {
    tree = RenderPlanTree(*compiled->plan);
  }
  std::istringstream lines(tree);
  for (std::string line; std::getline(lines, line);) add(std::move(line));
  if (!compiled->mapping_notes.empty()) {
    add("mapping notes:");
    for (const std::string& note : compiled->mapping_notes) add("  " + note);
  }
  return result;
}

}  // namespace

Result<QueryResult> QueryEngine::Execute(MappedDatabase* db,
                                         const std::string& text,
                                         const ExecOptions& opts) {
  ERBIUM_ASSIGN_OR_RETURN(CompiledQuery compiled, Compile(db, text, opts));
  if (compiled.explain != ExplainMode::kNone) {
    return ExplainQuery(&compiled);
  }
  ERBIUM_ASSIGN_OR_RETURN(std::vector<Row> rows,
                          CollectRows(compiled.plan.get()));
  QueryResult result;
  result.columns = std::move(compiled.columns);
  result.rows = std::move(rows);
  return result;
}

}  // namespace erql
}  // namespace erbium
