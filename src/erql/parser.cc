#include "erql/parser.h"

#include "common/lexer.h"
#include "common/string_util.h"

namespace erbium {
namespace erql {

namespace {

/// Keywords that terminate an expression context or may not be used as
/// bare identifiers in the FROM/alias positions.
bool IsReservedKeyword(const std::string& word) {
  static const char* kReserved[] = {
      "select", "from",  "where", "group", "order", "by",    "limit",
      "join",   "on",    "as",    "and",   "or",    "not",   "in",
      "is",     "null",  "true",  "false", "asc",   "desc",  "distinct",
  };
  for (const char* kw : kReserved) {
    if (EqualsIgnoreCase(word, kw)) return true;
  }
  return false;
}

class QueryParser {
 public:
  explicit QueryParser(TokenStream ts) : ts_(std::move(ts)) {}

  Result<Query> ParseQuery() {
    Query query;
    if (ts_.ConsumeKeyword("show")) {
      return ParseShow();
    }
    if (ts_.ConsumeKeyword("checkpoint")) {
      query.statement = StatementKind::kCheckpoint;
      ERBIUM_RETURN_NOT_OK(ExpectEnd());
      return query;
    }
    if (ts_.ConsumeKeyword("attach")) {
      ERBIUM_RETURN_NOT_OK(ts_.ExpectKeyword("database"));
      if (ts_.Peek().kind != TokenKind::kString) {
        return ts_.ErrorHere("expected 'directory path' after ATTACH DATABASE");
      }
      query.statement = StatementKind::kAttach;
      query.attach_path = ts_.Advance().text;
      ERBIUM_RETURN_NOT_OK(ExpectEnd());
      return query;
    }
    if (ts_.ConsumeKeyword("advise")) {
      query.statement = StatementKind::kAdvise;
      if (ts_.ConsumeKeyword("limit")) {
        if (ts_.Peek().kind != TokenKind::kInteger) {
          return ts_.ErrorHere("expected integer after LIMIT");
        }
        query.show_limit = ts_.Advance().int_value;
      }
      ERBIUM_RETURN_NOT_OK(ExpectEnd());
      return query;
    }
    if (ts_.ConsumeKeyword("export")) {
      ERBIUM_RETURN_NOT_OK(ts_.ExpectKeyword("workload"));
      ERBIUM_RETURN_NOT_OK(ts_.ExpectKeyword("into"));
      if (ts_.Peek().kind != TokenKind::kString) {
        return ts_.ErrorHere("expected 'file path' after EXPORT WORKLOAD INTO");
      }
      query.statement = StatementKind::kExportWorkload;
      query.workload_path = ts_.Advance().text;
      ERBIUM_RETURN_NOT_OK(ExpectEnd());
      return query;
    }
    if (ts_.ConsumeKeyword("load")) {
      ERBIUM_RETURN_NOT_OK(ts_.ExpectKeyword("workload"));
      ERBIUM_RETURN_NOT_OK(ts_.ExpectKeyword("from"));
      if (ts_.Peek().kind != TokenKind::kString) {
        return ts_.ErrorHere("expected 'file path' after LOAD WORKLOAD FROM");
      }
      query.statement = StatementKind::kLoadWorkload;
      query.workload_path = ts_.Advance().text;
      ERBIUM_RETURN_NOT_OK(ExpectEnd());
      return query;
    }
    if (ts_.ConsumeKeyword("trace")) {
      query.statement = StatementKind::kTrace;
      if (ts_.ConsumeKeyword("into")) {
        if (ts_.Peek().kind != TokenKind::kString) {
          return ts_.ErrorHere("expected 'file path' after TRACE INTO");
        }
        query.trace_into = ts_.Advance().text;
      }
      if (ts_.Peek().IsKeyword("explain")) {
        return ts_.ErrorHere("TRACE cannot wrap EXPLAIN");
      }
    }
    if (ts_.ConsumeKeyword("explain")) {
      query.explain = ts_.ConsumeKeyword("analyze") ? ExplainMode::kAnalyze
                                                    : ExplainMode::kPlan;
    }
    ERBIUM_RETURN_NOT_OK(ts_.ExpectKeyword("select"));
    if (ts_.ConsumeKeyword("distinct")) query.distinct = true;
    while (true) {
      SelectItem item;
      ERBIUM_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (ts_.ConsumeKeyword("as")) {
        ERBIUM_ASSIGN_OR_RETURN(item.alias,
                                ts_.ExpectIdentifier("output column name"));
      }
      query.select.push_back(std::move(item));
      if (!ts_.ConsumeSymbol(",")) break;
    }
    ERBIUM_RETURN_NOT_OK(ts_.ExpectKeyword("from"));
    ERBIUM_ASSIGN_OR_RETURN(query.from, ParseFromItem());
    while (ts_.ConsumeKeyword("join")) {
      JoinClause join;
      ERBIUM_ASSIGN_OR_RETURN(join.item, ParseFromItem());
      ERBIUM_RETURN_NOT_OK(ts_.ExpectKeyword("on"));
      // A lone identifier (not followed by an operator or '.') names a
      // relationship; anything else is a theta-join expression.
      if (ts_.Peek().kind == TokenKind::kIdentifier &&
          !IsReservedKeyword(ts_.Peek().text) && LooksLikeRelationship()) {
        join.relationship = ts_.Advance().text;
      } else {
        ERBIUM_ASSIGN_OR_RETURN(join.on_expr, ParseExpr());
      }
      query.joins.push_back(std::move(join));
    }
    if (ts_.ConsumeKeyword("where")) {
      ERBIUM_ASSIGN_OR_RETURN(query.where, ParseExpr());
    }
    if (ts_.ConsumeKeyword("group")) {
      ERBIUM_RETURN_NOT_OK(ts_.ExpectKeyword("by"));
      query.explicit_group_by = true;
      while (true) {
        ERBIUM_ASSIGN_OR_RETURN(ExprAstPtr expr, ParseExpr());
        query.group_by.push_back(std::move(expr));
        if (!ts_.ConsumeSymbol(",")) break;
      }
    }
    if (ts_.ConsumeKeyword("order")) {
      ERBIUM_RETURN_NOT_OK(ts_.ExpectKeyword("by"));
      while (true) {
        OrderItem item;
        ERBIUM_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (ts_.ConsumeKeyword("desc")) {
          item.ascending = false;
        } else {
          ts_.ConsumeKeyword("asc");
        }
        query.order_by.push_back(std::move(item));
        if (!ts_.ConsumeSymbol(",")) break;
      }
    }
    if (ts_.ConsumeKeyword("limit")) {
      if (ts_.Peek().kind != TokenKind::kInteger) {
        return ts_.ErrorHere("expected integer after LIMIT");
      }
      query.limit = ts_.Advance().int_value;
    }
    if (!ts_.AtEnd() && !ts_.ConsumeSymbol(";")) {
      return ts_.ErrorHere("unexpected trailing input");
    }
    return query;
  }

 private:
  Status ExpectEnd() {
    if (!ts_.AtEnd() && !ts_.ConsumeSymbol(";")) {
      return ts_.ErrorHere("unexpected trailing input");
    }
    return Status::OK();
  }

  /// After a consumed SHOW keyword: METRICS [LIKE '<glob>'],
  /// QUERIES [SLOW] [LIMIT n], SESSIONS, or WORKLOAD [LIMIT n].
  Result<Query> ParseShow() {
    Query query;
    if (ts_.ConsumeKeyword("sessions")) {
      query.statement = StatementKind::kShowSessions;
    } else if (ts_.ConsumeKeyword("workload")) {
      query.statement = StatementKind::kShowWorkload;
      if (ts_.ConsumeKeyword("limit")) {
        if (ts_.Peek().kind != TokenKind::kInteger) {
          return ts_.ErrorHere("expected integer after LIMIT");
        }
        query.show_limit = ts_.Advance().int_value;
      }
    } else if (ts_.ConsumeKeyword("metrics")) {
      query.statement = StatementKind::kShowMetrics;
      if (ts_.ConsumeKeyword("like")) {
        if (ts_.Peek().kind != TokenKind::kString) {
          return ts_.ErrorHere("expected 'glob pattern' after LIKE");
        }
        query.show_like = ts_.Advance().text;
      }
    } else if (ts_.ConsumeKeyword("queries")) {
      query.statement = StatementKind::kShowQueries;
      if (ts_.ConsumeKeyword("slow")) query.show_slow = true;
      if (ts_.ConsumeKeyword("limit")) {
        if (ts_.Peek().kind != TokenKind::kInteger) {
          return ts_.ErrorHere("expected integer after LIMIT");
        }
        query.show_limit = ts_.Advance().int_value;
      }
    } else {
      return ts_.ErrorHere(
          "expected METRICS, QUERIES, SESSIONS, or WORKLOAD after SHOW");
    }
    if (!ts_.AtEnd() && !ts_.ConsumeSymbol(";")) {
      return ts_.ErrorHere("unexpected trailing input");
    }
    return query;
  }

  /// After JOIN x ON, an identifier is a relationship name unless it is
  /// followed by '.', an operator, or '(' (expression shapes).
  bool LooksLikeRelationship() {
    const Token& next = ts_.Peek(1);
    if (next.IsSymbol(".") || next.IsSymbol("(") || next.IsSymbol("=") ||
        next.IsSymbol("!=") || next.IsSymbol("<>") || next.IsSymbol("<") ||
        next.IsSymbol("<=") || next.IsSymbol(">") || next.IsSymbol(">=") ||
        next.IsSymbol("+") || next.IsSymbol("-") || next.IsSymbol("*") ||
        next.IsSymbol("/") || next.IsSymbol("%")) {
      return false;
    }
    return true;
  }

  Result<FromItem> ParseFromItem() {
    FromItem item;
    ERBIUM_ASSIGN_OR_RETURN(item.entity,
                            ts_.ExpectIdentifier("entity set name"));
    if (ts_.Peek().kind == TokenKind::kIdentifier &&
        !IsReservedKeyword(ts_.Peek().text)) {
      item.alias = ts_.Advance().text;
    } else {
      item.alias = item.entity;
    }
    return item;
  }

  // Precedence climbing: or < and < not < comparison/is/in < add < mul.
  Result<ExprAstPtr> ParseExpr() { return ParseOr(); }

  Result<ExprAstPtr> ParseOr() {
    ERBIUM_ASSIGN_OR_RETURN(ExprAstPtr left, ParseAnd());
    while (ts_.ConsumeKeyword("or")) {
      ERBIUM_ASSIGN_OR_RETURN(ExprAstPtr right, ParseAnd());
      left = MakeBinary("or", std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprAstPtr> ParseAnd() {
    ERBIUM_ASSIGN_OR_RETURN(ExprAstPtr left, ParseNot());
    while (ts_.ConsumeKeyword("and")) {
      ERBIUM_ASSIGN_OR_RETURN(ExprAstPtr right, ParseNot());
      left = MakeBinary("and", std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprAstPtr> ParseNot() {
    if (ts_.ConsumeKeyword("not")) {
      ERBIUM_ASSIGN_OR_RETURN(ExprAstPtr child, ParseNot());
      auto ast = std::make_shared<ExprAst>();
      ast->kind = ExprAst::Kind::kNot;
      ast->children.push_back(std::move(child));
      return ExprAstPtr(ast);
    }
    return ParseComparison();
  }

  Result<ExprAstPtr> ParseComparison() {
    ERBIUM_ASSIGN_OR_RETURN(ExprAstPtr left, ParseAdditive());
    while (true) {
      if (ts_.ConsumeKeyword("is")) {
        bool negated = ts_.ConsumeKeyword("not");
        ERBIUM_RETURN_NOT_OK(ts_.ExpectKeyword("null"));
        auto ast = std::make_shared<ExprAst>();
        ast->kind = ExprAst::Kind::kIsNull;
        ast->negated = negated;
        ast->children.push_back(std::move(left));
        left = std::move(ast);
        continue;
      }
      bool negated_in = false;
      if (ts_.Peek().IsKeyword("not") && ts_.Peek(1).IsKeyword("in")) {
        ts_.Advance();
        negated_in = true;
      }
      if (ts_.ConsumeKeyword("in")) {
        ERBIUM_RETURN_NOT_OK(ts_.ExpectSymbol("("));
        auto ast = std::make_shared<ExprAst>();
        ast->kind = ExprAst::Kind::kInList;
        ast->negated = negated_in;
        ast->children.push_back(std::move(left));
        while (true) {
          ERBIUM_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
          ast->in_values.push_back(std::move(v));
          if (ts_.ConsumeSymbol(",")) continue;
          ERBIUM_RETURN_NOT_OK(ts_.ExpectSymbol(")"));
          break;
        }
        left = std::move(ast);
        continue;
      }
      const char* op = nullptr;
      for (const char* candidate : {"=", "!=", "<>", "<=", ">=", "<", ">"}) {
        if (ts_.Peek().IsSymbol(candidate)) {
          op = candidate;
          break;
        }
      }
      if (op == nullptr) break;
      ts_.Advance();
      ERBIUM_ASSIGN_OR_RETURN(ExprAstPtr right, ParseAdditive());
      left = MakeBinary(op == std::string("<>") ? "!=" : op, std::move(left),
                        std::move(right));
    }
    return left;
  }

  Result<ExprAstPtr> ParseAdditive() {
    ERBIUM_ASSIGN_OR_RETURN(ExprAstPtr left, ParseMultiplicative());
    while (ts_.Peek().IsSymbol("+") || ts_.Peek().IsSymbol("-")) {
      std::string op = ts_.Advance().text;
      ERBIUM_ASSIGN_OR_RETURN(ExprAstPtr right, ParseMultiplicative());
      left = MakeBinary(op, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprAstPtr> ParseMultiplicative() {
    ERBIUM_ASSIGN_OR_RETURN(ExprAstPtr left, ParsePrimary());
    while (ts_.Peek().IsSymbol("*") || ts_.Peek().IsSymbol("/") ||
           ts_.Peek().IsSymbol("%")) {
      std::string op = ts_.Advance().text;
      ERBIUM_ASSIGN_OR_RETURN(ExprAstPtr right, ParsePrimary());
      left = MakeBinary(op, std::move(left), std::move(right));
    }
    return left;
  }

  Result<Value> ParseLiteralValue() {
    const Token& token = ts_.Peek();
    if (token.kind == TokenKind::kInteger) {
      ts_.Advance();
      return Value::Int64(token.int_value);
    }
    if (token.kind == TokenKind::kFloat) {
      ts_.Advance();
      return Value::Float64(token.float_value);
    }
    if (token.kind == TokenKind::kString) {
      ts_.Advance();
      return Value::String(token.text);
    }
    if (token.IsKeyword("true")) {
      ts_.Advance();
      return Value::Bool(true);
    }
    if (token.IsKeyword("false")) {
      ts_.Advance();
      return Value::Bool(false);
    }
    if (token.IsKeyword("null")) {
      ts_.Advance();
      return Value::Null();
    }
    if (token.IsSymbol("-") &&
        (ts_.Peek(1).kind == TokenKind::kInteger ||
         ts_.Peek(1).kind == TokenKind::kFloat)) {
      ts_.Advance();
      const Token& number = ts_.Advance();
      if (number.kind == TokenKind::kInteger) {
        return Value::Int64(-number.int_value);
      }
      return Value::Float64(-number.float_value);
    }
    return ts_.ErrorHere("expected literal");
  }

  Result<ExprAstPtr> ParsePrimary() {
    const Token& token = ts_.Peek();
    // Literals (incl. negative numbers).
    if (token.kind == TokenKind::kInteger || token.kind == TokenKind::kFloat ||
        token.kind == TokenKind::kString || token.IsKeyword("true") ||
        token.IsKeyword("false") || token.IsKeyword("null") ||
        (token.IsSymbol("-") && (ts_.Peek(1).kind == TokenKind::kInteger ||
                                 ts_.Peek(1).kind == TokenKind::kFloat))) {
      ERBIUM_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
      auto ast = std::make_shared<ExprAst>();
      ast->kind = ExprAst::Kind::kLiteral;
      ast->literal = std::move(v);
      return ExprAstPtr(ast);
    }
    // Array literal.
    if (ts_.ConsumeSymbol("[")) {
      Value::ArrayData elements;
      if (!ts_.ConsumeSymbol("]")) {
        while (true) {
          ERBIUM_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
          elements.push_back(std::move(v));
          if (ts_.ConsumeSymbol(",")) continue;
          ERBIUM_RETURN_NOT_OK(ts_.ExpectSymbol("]"));
          break;
        }
      }
      auto ast = std::make_shared<ExprAst>();
      ast->kind = ExprAst::Kind::kLiteral;
      ast->literal = Value::Array(std::move(elements));
      return ExprAstPtr(ast);
    }
    // Parenthesized expression.
    if (ts_.ConsumeSymbol("(")) {
      ERBIUM_ASSIGN_OR_RETURN(ExprAstPtr inner, ParseExpr());
      ERBIUM_RETURN_NOT_OK(ts_.ExpectSymbol(")"));
      return inner;
    }
    // struct(name: expr, ...) constructor.
    if (token.IsKeyword("struct")) {
      ts_.Advance();
      ERBIUM_RETURN_NOT_OK(ts_.ExpectSymbol("("));
      auto ast = std::make_shared<ExprAst>();
      ast->kind = ExprAst::Kind::kStruct;
      while (true) {
        // Either `name: expr` or a bare identifier expression whose name
        // doubles as the field name.
        std::string field_name;
        if (ts_.Peek().kind == TokenKind::kIdentifier &&
            ts_.Peek(1).IsSymbol(":")) {
          field_name = ts_.Advance().text;
          ts_.Advance();  // ':'
        }
        ERBIUM_ASSIGN_OR_RETURN(ExprAstPtr field, ParseExpr());
        if (field_name.empty()) {
          field_name = field->kind == ExprAst::Kind::kIdent
                           ? field->name
                           : "f" + std::to_string(ast->children.size() + 1);
        }
        ast->field_names.push_back(std::move(field_name));
        ast->children.push_back(std::move(field));
        if (ts_.ConsumeSymbol(",")) continue;
        ERBIUM_RETURN_NOT_OK(ts_.ExpectSymbol(")"));
        break;
      }
      return ExprAstPtr(ast);
    }
    // Identifier: column ref or function call.
    if (token.kind == TokenKind::kIdentifier) {
      std::string first = ts_.Advance().text;
      if (ts_.ConsumeSymbol("(")) {
        auto ast = std::make_shared<ExprAst>();
        ast->kind = ExprAst::Kind::kFunction;
        ast->name = ToLower(first);
        if (ts_.ConsumeSymbol("*")) {
          auto star = std::make_shared<ExprAst>();
          star->kind = ExprAst::Kind::kStar;
          ast->children.push_back(std::move(star));
          ERBIUM_RETURN_NOT_OK(ts_.ExpectSymbol(")"));
          return ExprAstPtr(ast);
        }
        if (ts_.ConsumeKeyword("distinct")) ast->distinct = true;
        if (!ts_.ConsumeSymbol(")")) {
          while (true) {
            ERBIUM_ASSIGN_OR_RETURN(ExprAstPtr arg, ParseExpr());
            ast->children.push_back(std::move(arg));
            if (ts_.ConsumeSymbol(",")) continue;
            ERBIUM_RETURN_NOT_OK(ts_.ExpectSymbol(")"));
            break;
          }
        }
        return ExprAstPtr(ast);
      }
      auto ast = std::make_shared<ExprAst>();
      ast->kind = ExprAst::Kind::kIdent;
      if (ts_.ConsumeSymbol(".")) {
        ast->qualifier = first;
        ERBIUM_ASSIGN_OR_RETURN(ast->name,
                                ts_.ExpectIdentifier("attribute name"));
      } else {
        ast->name = first;
      }
      return ExprAstPtr(ast);
    }
    return ts_.ErrorHere("expected expression");
  }

  static ExprAstPtr MakeBinary(std::string op, ExprAstPtr left,
                               ExprAstPtr right) {
    auto ast = std::make_shared<ExprAst>();
    ast->kind = ExprAst::Kind::kBinary;
    ast->op = std::move(op);
    ast->children.push_back(std::move(left));
    ast->children.push_back(std::move(right));
    return ast;
  }

  TokenStream ts_;
};

}  // namespace

std::string ExprAst::ToString() const {
  switch (kind) {
    case Kind::kIdent:
      return qualifier.empty() ? name : qualifier + "." + name;
    case Kind::kLiteral:
      return literal.ToString();
    case Kind::kBinary:
      return "(" + children[0]->ToString() + " " + op + " " +
             children[1]->ToString() + ")";
    case Kind::kNot:
      return "NOT " + children[0]->ToString();
    case Kind::kIsNull:
      return children[0]->ToString() + (negated ? " IS NOT NULL" : " IS NULL");
    case Kind::kInList: {
      std::string out = children[0]->ToString() +
                        (negated ? " NOT IN (" : " IN (");
      for (size_t i = 0; i < in_values.size(); ++i) {
        if (i > 0) out += ", ";
        out += in_values[i].ToString();
      }
      return out + ")";
    }
    case Kind::kFunction: {
      std::string out = name + "(";
      if (distinct) out += "DISTINCT ";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += ", ";
        out += children[i]->ToString();
      }
      return out + ")";
    }
    case Kind::kStar:
      return "*";
    case Kind::kStruct: {
      std::string out = "struct(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += ", ";
        out += field_names[i] + ": " + children[i]->ToString();
      }
      return out + ")";
    }
  }
  return "?";
}

Result<Query> Parser::Parse(const std::string& text) {
  ERBIUM_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lexer::Tokenize(text));
  QueryParser parser{TokenStream(std::move(tokens))};
  return parser.ParseQuery();
}

}  // namespace erql
}  // namespace erbium
