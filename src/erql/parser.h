#ifndef ERBIUM_ERQL_PARSER_H_
#define ERBIUM_ERQL_PARSER_H_

#include <string>

#include "common/status.h"
#include "erql/ast.h"

namespace erbium {
namespace erql {

/// Recursive-descent parser for the ERQL dialect:
///
///   [EXPLAIN [ANALYZE] | TRACE [INTO '<file>']]
///   SELECT [DISTINCT] item [AS name], ...
///   FROM <entity> [alias]
///     [JOIN <entity> [alias] ON <relationship-name or expr>] ...
///   [WHERE expr]
///   [GROUP BY expr, ...]          -- optional: inferred from SELECT
///   [ORDER BY expr [ASC|DESC], ...]
///   [LIMIT n]
///
/// Expressions: comparison/arithmetic/boolean operators, IS [NOT] NULL,
/// IN (literal, ...), function calls (scalar builtins, aggregates with
/// optional DISTINCT, unnest), struct(name: expr, ...) constructors for
/// nested outputs, count(*), literals ('str', 123, 4.5, true, false,
/// null), and [lit, lit, ...] array literals.
///
/// Telemetry introspection statements (see StatementKind in ast.h):
///   SHOW METRICS [LIKE '<glob>'];
///   SHOW QUERIES [SLOW] [LIMIT n];
class Parser {
 public:
  static Result<Query> Parse(const std::string& text);
};

}  // namespace erql
}  // namespace erbium

#endif  // ERBIUM_ERQL_PARSER_H_
