#include "erql/translator.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

#include "common/string_util.h"
#include "exec/aggregate.h"
#include "exec/join.h"
#include "exec/shard_gather.h"
#include "exec/sort.h"
#include "shard/co_partition.h"

namespace erbium {
namespace erql {

namespace {

bool IsAggregateName(const std::string& name) {
  return name == "count" || name == "sum" || name == "avg" ||
         name == "min" || name == "max" || name == "array_agg";
}

/// One visible source of columns during translation: an entity alias or
/// the pseudo-alias of a joined relationship's attribute columns.
struct AliasInfo {
  std::string alias;
  std::string entity;  // empty for relationship pseudo-aliases
  std::vector<std::string> key_names;
  // Attribute/column name -> absolute position in the current plan row.
  std::map<std::string, int> columns;
};

struct Scope {
  std::vector<AliasInfo> aliases;
  int width = 0;

  AliasInfo* Find(const std::string& alias) {
    for (AliasInfo& info : aliases) {
      if (EqualsIgnoreCase(info.alias, alias)) return &info;
    }
    return nullptr;
  }

  /// Resolves an identifier to a position. Unqualified names must be
  /// unambiguous across aliases.
  Result<int> Resolve(const ExprAst& ident) {
    if (!ident.qualifier.empty()) {
      AliasInfo* info = Find(ident.qualifier);
      if (info == nullptr) {
        return Status::AnalysisError("unknown alias " + ident.qualifier);
      }
      auto it = info->columns.find(ident.name);
      if (it == info->columns.end()) {
        return Status::AnalysisError("alias " + ident.qualifier +
                                     " has no attribute " + ident.name);
      }
      return it->second;
    }
    int found = -1;
    for (AliasInfo& info : aliases) {
      auto it = info.columns.find(ident.name);
      if (it != info.columns.end()) {
        if (found >= 0 && it->second != found) {
          return Status::AnalysisError("ambiguous column " + ident.name);
        }
        found = it->second;
      }
    }
    if (found < 0) {
      return Status::AnalysisError("unknown column " + ident.name);
    }
    return found;
  }
};

/// Collects alias references of an expression (empty qualifier entries
/// resolved against `scope_entities`: alias -> set of visible names).
struct NeededAttrs {
  // alias -> attrs referenced
  std::map<std::string, std::set<std::string>> by_alias;
};

/// Splits a predicate into top-level AND conjuncts.
void SplitConjuncts(const ExprAstPtr& ast, std::vector<ExprAstPtr>* out) {
  if (ast == nullptr) return;
  if (ast->kind == ExprAst::Kind::kBinary && ast->op == "and") {
    SplitConjuncts(ast->children[0], out);
    SplitConjuncts(ast->children[1], out);
    return;
  }
  out->push_back(ast);
}

std::string DeriveName(const SelectItem& item, size_t index) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr->kind == ExprAst::Kind::kIdent) return item.expr->name;
  if (item.expr->kind == ExprAst::Kind::kFunction) return item.expr->name;
  return std::string("col") + std::to_string(index + 1);
}

/// The final projection over an aggregate's output: one position + name
/// per select item. Shared between the serial path and the sharded
/// coordinator (which applies it once above the partial-aggregate merge).
struct AggProjection {
  std::vector<int> positions;
  std::vector<std::string> names;
};

Result<AggProjection> ComputeAggProjection(
    const Query& query, const std::vector<ExprAstPtr>& group_asts) {
  AggProjection out;
  size_t group_index = 0;
  size_t agg_index = group_asts.size();
  // Map non-aggregate items to their group column. With explicit GROUP
  // BY, match by printed form.
  for (size_t i = 0; i < query.select.size(); ++i) {
    const SelectItem& item = query.select[i];
    std::string name = DeriveName(item, i);
    bool aggregate = item.expr->kind == ExprAst::Kind::kFunction &&
                     IsAggregateName(item.expr->name);
    int position;
    if (aggregate) {
      position = static_cast<int>(agg_index++);
    } else if (!query.explicit_group_by) {
      position = static_cast<int>(group_index++);
    } else {
      position = -1;
      for (size_t g = 0; g < group_asts.size(); ++g) {
        if (group_asts[g]->ToString() == item.expr->ToString()) {
          position = static_cast<int>(g);
          break;
        }
      }
      if (position < 0) {
        return Status::AnalysisError(
            "select item '" + item.expr->ToString() +
            "' is neither aggregated nor in GROUP BY");
      }
    }
    out.positions.push_back(position);
    out.names.push_back(std::move(name));
  }
  return out;
}

/// Distinct / ORDER BY / LIMIT above the projected stream. Shared by the
/// serial path and the sharded coordinator (these must run once, above
/// the cross-shard combine, never per branch).
Result<OperatorPtr> FinishQueryTail(OperatorPtr plan,
                                    const std::vector<std::string>& output_names,
                                    const Query& query) {
  if (query.distinct) {
    plan = std::make_unique<DistinctOp>(std::move(plan));
  }
  if (!query.order_by.empty()) {
    // ORDER BY binds against the output columns (by name) only.
    std::vector<SortKey> keys;
    for (const OrderItem& item : query.order_by) {
      if (item.expr->kind != ExprAst::Kind::kIdent ||
          !item.expr->qualifier.empty()) {
        return Status::AnalysisError(
            "ORDER BY supports output column names only");
      }
      int position = -1;
      for (size_t i = 0; i < output_names.size(); ++i) {
        if (EqualsIgnoreCase(output_names[i], item.expr->name)) {
          position = static_cast<int>(i);
        }
      }
      if (position < 0) {
        return Status::AnalysisError("ORDER BY references unknown column " +
                                     item.expr->name);
      }
      keys.push_back(
          SortKey{MakeColumnRef(position, item.expr->name), item.ascending});
    }
    plan = std::make_unique<SortOp>(std::move(plan), std::move(keys));
  }
  if (query.limit >= 0) {
    plan = std::make_unique<LimitOp>(std::move(plan),
                                     static_cast<size_t>(query.limit));
  }
  return plan;
}

/// What a per-shard branch translation hands back to the sharded
/// coordinator: the parts that must be assembled exactly once above the
/// ShardGather / ShardMergeAggregate seam rather than per branch.
struct BranchParts {
  bool has_aggregate = false;
  /// Aggregate queries: branch plans stop *before* aggregation and these
  /// describe the shared accumulator the coordinator merges.
  std::vector<ExprPtr> group_exprs;
  std::vector<std::string> group_names;
  std::vector<AggregateSpec> aggs;
  /// Final projection above the merged aggregate.
  std::vector<int> select_positions;
  /// Output column names of the combined stream (both modes).
  std::vector<std::string> output_names;
  /// True when any scan site had to union all shards (the plan moves
  /// non-driver data across shards; classifies as scatter-gather).
  bool any_global_scan = false;
};

class TranslatorImpl {
 public:
  TranslatorImpl(MappedDatabase* db, const Query& query,
                 const ExecOptions& opts, BranchParts* branch_out = nullptr)
      : db_(db),
        query_(query),
        opts_(opts),
        shards_(branch_out != nullptr ? opts.shards : nullptr),
        branch_out_(branch_out) {}

  Result<CompiledQuery> Run();

 private:
  struct AliasDecl {
    std::string alias;
    std::string entity;
    std::vector<std::string> key_names;
    std::set<std::string> visible;  // attrs + key names
    std::vector<std::string> needed;  // non-key attrs used by the query
  };

  Status CollectAliases();
  Status CollectIdent(const ExprAst& ast);
  Status CollectNeeded(const ExprAst& ast);
  Result<AliasDecl*> ResolveAlias(const std::string& qualifier,
                                  const std::string& attr);

  // Workload-profile footprint assembly: which entity/relationship sets
  // the plan reaches (and how), plus per-attribute predicate/projection
  // touches. Derived while planning so plan-cache hits replay it free.
  void TouchEntity(const std::string& entity, obs::EntityPath path);
  void TouchRelationship(const std::string& relationship, bool fused);
  Status CollectAttrTouches(const ExprAst& ast, bool predicate);
  Status CollectFootprintAttrs();

  /// Builds the base plan for one alias, applying its pushed-down
  /// conjuncts (and a key lookup when they pin the full key).
  /// `join_side` marks aliases brought in by a JOIN for the footprint.
  Result<OperatorPtr> BuildAliasPlan(AliasDecl* decl,
                                     std::vector<ExprAstPtr> conjuncts,
                                     AliasInfo* info_out, bool join_side);

  Result<ExprPtr> Bind(const ExprAst& ast, Scope* scope);

  /// Aliases referenced by an expression (resolved).
  Status ReferencedAliases(const ExprAst& ast, std::set<std::string>* out);

  /// Branch mode: decides, per alias and per relationship join, whether
  /// the branch can read only its own shard (see the call site in Run
  /// for the partitioning argument).
  void ComputeShardLocality();

  MappedDatabase* db_;
  const Query& query_;
  ExecOptions opts_;
  std::vector<AliasDecl> decls_;
  obs::StatementFootprint footprint_;
  std::set<std::string> attr_touches_seen_;

  /// Branch mode (sharded broadcast): non-null when this translation
  /// builds shard `branch_`'s pipeline of an N-way plan. db_ is then
  /// shard `branch_`'s database and the coordinator combines the N
  /// results above us.
  const shard::ShardPlanContext* shards_ = nullptr;
  BranchParts* branch_out_ = nullptr;
  /// Aliases whose rows provably live on the branch shard (driver, weak
  /// entities chained off it) and relationship joins whose edge scan is
  /// co-located with a local alias.
  std::set<std::string> local_aliases_;
  std::set<size_t> local_rel_joins_;
  bool any_global_scan_ = false;
};

Status TranslatorImpl::CollectAliases() {
  auto add = [&](const FromItem& item) -> Status {
    const EntitySetDef* def = db_->schema().FindEntitySet(item.entity);
    if (def == nullptr) {
      return Status::AnalysisError("unknown entity set " + item.entity);
    }
    for (const AliasDecl& decl : decls_) {
      if (EqualsIgnoreCase(decl.alias, item.alias)) {
        return Status::AnalysisError("duplicate alias " + item.alias);
      }
    }
    AliasDecl decl;
    decl.alias = item.alias;
    decl.entity = item.entity;
    ERBIUM_ASSIGN_OR_RETURN(std::vector<std::string> key,
                            db_->schema().FullKey(item.entity));
    // Weak entities: full key includes owner key columns.
    {
      const EntitySetDef* e = db_->schema().FindEntitySet(item.entity);
      if (e->weak) {
        // FullKey already includes owner's key + partial key.
      }
    }
    decl.key_names = key;
    for (const std::string& k : key) decl.visible.insert(k);
    ERBIUM_ASSIGN_OR_RETURN(std::vector<AttributeDef> attrs,
                            db_->schema().AllAttributes(item.entity));
    for (const AttributeDef& attr : attrs) decl.visible.insert(attr.name);
    decls_.push_back(std::move(decl));
    return Status::OK();
  };
  ERBIUM_RETURN_NOT_OK(add(query_.from));
  for (const JoinClause& join : query_.joins) {
    ERBIUM_RETURN_NOT_OK(add(join.item));
  }
  return Status::OK();
}

Result<TranslatorImpl::AliasDecl*> TranslatorImpl::ResolveAlias(
    const std::string& qualifier, const std::string& attr) {
  if (!qualifier.empty()) {
    for (AliasDecl& decl : decls_) {
      if (EqualsIgnoreCase(decl.alias, qualifier)) return &decl;
    }
    // Relationship attribute qualifiers are resolved at bind time.
    return static_cast<AliasDecl*>(nullptr);
  }
  AliasDecl* found = nullptr;
  for (AliasDecl& decl : decls_) {
    if (decl.visible.count(attr) > 0) {
      if (found != nullptr) {
        return Status::AnalysisError("ambiguous column " + attr);
      }
      found = &decl;
    }
  }
  return found;  // may be null: relationship attrs resolve later
}

Status TranslatorImpl::CollectIdent(const ExprAst& ast) {
  ERBIUM_ASSIGN_OR_RETURN(AliasDecl * decl,
                          ResolveAlias(ast.qualifier, ast.name));
  if (decl == nullptr) return Status::OK();
  bool is_key = std::find(decl->key_names.begin(), decl->key_names.end(),
                          ast.name) != decl->key_names.end();
  if (!is_key && decl->visible.count(ast.name) > 0) {
    if (std::find(decl->needed.begin(), decl->needed.end(), ast.name) ==
        decl->needed.end()) {
      decl->needed.push_back(ast.name);
    }
  }
  return Status::OK();
}

Status TranslatorImpl::CollectNeeded(const ExprAst& ast) {
  if (ast.kind == ExprAst::Kind::kIdent) return CollectIdent(ast);
  for (const ExprAstPtr& child : ast.children) {
    ERBIUM_RETURN_NOT_OK(CollectNeeded(*child));
  }
  return Status::OK();
}

void TranslatorImpl::TouchEntity(const std::string& entity,
                                 obs::EntityPath path) {
  footprint_.entities.push_back({entity, path});
}

void TranslatorImpl::TouchRelationship(const std::string& relationship,
                                       bool fused) {
  footprint_.relationships.push_back({relationship, fused});
}

Status TranslatorImpl::CollectAttrTouches(const ExprAst& ast, bool predicate) {
  if (ast.kind == ExprAst::Kind::kIdent) {
    // Ambiguity and unknown-column errors are reported by the real
    // analysis passes; the footprint records only what resolves cleanly.
    Result<AliasDecl*> resolved = ResolveAlias(ast.qualifier, ast.name);
    if (!resolved.ok() || *resolved == nullptr) return Status::OK();
    AliasDecl* decl = *resolved;
    if (decl->visible.count(ast.name) == 0) return Status::OK();
    std::string seen =
        (predicate ? "p|" : "o|") + decl->entity + "|" + ast.name;
    if (attr_touches_seen_.insert(std::move(seen)).second) {
      footprint_.attributes.push_back({decl->entity, ast.name, predicate});
    }
    return Status::OK();
  }
  for (const ExprAstPtr& child : ast.children) {
    ERBIUM_RETURN_NOT_OK(CollectAttrTouches(*child, predicate));
  }
  return Status::OK();
}

Status TranslatorImpl::CollectFootprintAttrs() {
  for (const SelectItem& item : query_.select) {
    ERBIUM_RETURN_NOT_OK(CollectAttrTouches(*item.expr, /*predicate=*/false));
  }
  for (const ExprAstPtr& g : query_.group_by) {
    ERBIUM_RETURN_NOT_OK(CollectAttrTouches(*g, /*predicate=*/false));
  }
  for (const OrderItem& item : query_.order_by) {
    ERBIUM_RETURN_NOT_OK(CollectAttrTouches(*item.expr, /*predicate=*/false));
  }
  if (query_.where) {
    ERBIUM_RETURN_NOT_OK(CollectAttrTouches(*query_.where, /*predicate=*/true));
  }
  for (const JoinClause& join : query_.joins) {
    if (join.on_expr) {
      ERBIUM_RETURN_NOT_OK(
          CollectAttrTouches(*join.on_expr, /*predicate=*/true));
    }
  }
  return Status::OK();
}

// A branch reads shard `branch_`'s data directly and everything else
// through cross-shard unions. This pre-pass decides which scan sites can
// stay shard-local, mirroring the join loop's side resolution (it runs
// before plan building because the join loop builds each right-hand plan
// at the top of its iteration, before join-kind analysis):
//   - the driver alias: its scan *is* the branch's partition;
//   - a weak entity joined through its identifying relationship to a
//     local alias: weak rows route by their owner-key prefix, so every
//     matched pair co-locates (and the weak alias itself becomes local,
//     chaining to further weak joins);
//   - a relationship edge scan when the already-bound side is local AND
//     is the relationship's dominant participant: edges route by the
//     dominant key, so a local row's edges are on its own shard.
// Anything else — theta joins, the new entity side of a relationship
// join (its instances hash by their own key, not the edge's) — scans all
// shards. Unresolvable names fall through conservatively; the join loop
// reports the real error.
void TranslatorImpl::ComputeShardLocality() {
  local_aliases_.insert(decls_[0].alias);
  auto side_score = [&](const std::string& side_entity,
                        const std::string& entity) -> int {
    if (EqualsIgnoreCase(side_entity, entity)) return 2;
    if (db_->schema().IsSelfOrDescendant(entity, side_entity) ||
        db_->schema().IsSelfOrDescendant(side_entity, entity)) {
      return 1;
    }
    return 0;
  };
  for (size_t j = 0; j < query_.joins.size(); ++j) {
    const JoinClause& join = query_.joins[j];
    if (j + 1 >= decls_.size()) break;
    AliasDecl* decl = &decls_[j + 1];
    if (join.relationship.empty()) continue;
    const RelationshipSetDef* rel =
        db_->schema().FindRelationshipSet(join.relationship);
    if (rel != nullptr) {
      int left_new = side_score(rel->left.entity, decl->entity);
      int right_new = side_score(rel->right.entity, decl->entity);
      if (left_new == 0 && right_new == 0) continue;
      bool new_is_right = right_new >= left_new;
      const Participant& old_side = new_is_right ? rel->left : rel->right;
      const AliasDecl* old_decl = nullptr;
      int best = 0;
      bool ambiguous = false;
      for (size_t k = 0; k <= j; ++k) {
        int score = side_score(old_side.entity, decls_[k].entity);
        if (score > best) {
          best = score;
          old_decl = &decls_[k];
          ambiguous = false;
        } else if (score == best && score > 0 && old_decl != nullptr) {
          ambiguous = true;
        }
      }
      if (old_decl == nullptr || ambiguous) continue;
      const shard::RelationshipPlacement* place =
          shards_->map->relationship(rel->name);
      if (place == nullptr) continue;
      bool old_is_left = new_is_right;
      if (place->dominant_is_left == old_is_left &&
          local_aliases_.count(old_decl->alias) > 0) {
        local_rel_joins_.insert(j);
      }
      continue;
    }
    // Weak identifying join.
    const EntitySetDef* weak = nullptr;
    for (const std::string& entity_name : db_->schema().EntitySetNames()) {
      const EntitySetDef* def = db_->schema().FindEntitySet(entity_name);
      if (def->weak &&
          EqualsIgnoreCase(def->identifying_relationship,
                           join.relationship)) {
        weak = def;
        break;
      }
    }
    if (weak == nullptr) continue;
    bool new_is_weak = EqualsIgnoreCase(decl->entity, weak->name);
    const std::string& other = new_is_weak ? weak->owner : weak->name;
    for (size_t k = 0; k <= j; ++k) {
      if (EqualsIgnoreCase(decls_[k].entity, other)) {
        if (local_aliases_.count(decls_[k].alias) > 0) {
          local_aliases_.insert(decl->alias);
          local_rel_joins_.insert(j);
        }
        break;
      }
    }
  }
}

Status TranslatorImpl::ReferencedAliases(const ExprAst& ast,
                                         std::set<std::string>* out) {
  if (ast.kind == ExprAst::Kind::kIdent) {
    ERBIUM_ASSIGN_OR_RETURN(AliasDecl * decl,
                            ResolveAlias(ast.qualifier, ast.name));
    if (decl != nullptr) {
      out->insert(decl->alias);
    } else if (!ast.qualifier.empty()) {
      out->insert(ast.qualifier);  // relationship pseudo-alias
    } else {
      out->insert("");  // unresolved bare name (relationship attr)
    }
    return Status::OK();
  }
  for (const ExprAstPtr& child : ast.children) {
    ERBIUM_RETURN_NOT_OK(ReferencedAliases(*child, out));
  }
  return Status::OK();
}

Result<ExprPtr> TranslatorImpl::Bind(const ExprAst& ast, Scope* scope) {
  switch (ast.kind) {
    case ExprAst::Kind::kIdent: {
      ERBIUM_ASSIGN_OR_RETURN(int position, scope->Resolve(ast));
      return MakeColumnRef(position, ast.ToString());
    }
    case ExprAst::Kind::kLiteral:
      return MakeLiteral(ast.literal);
    case ExprAst::Kind::kBinary: {
      ERBIUM_ASSIGN_OR_RETURN(ExprPtr left, Bind(*ast.children[0], scope));
      ERBIUM_ASSIGN_OR_RETURN(ExprPtr right, Bind(*ast.children[1], scope));
      if (ast.op == "and") return MakeAnd(std::move(left), std::move(right));
      if (ast.op == "or") return MakeOr(std::move(left), std::move(right));
      static const std::map<std::string, CompareOp> kCompare = {
          {"=", CompareOp::kEq},  {"!=", CompareOp::kNe},
          {"<", CompareOp::kLt},  {"<=", CompareOp::kLe},
          {">", CompareOp::kGt},  {">=", CompareOp::kGe}};
      auto cmp = kCompare.find(ast.op);
      if (cmp != kCompare.end()) {
        return MakeCompare(cmp->second, std::move(left), std::move(right));
      }
      static const std::map<std::string, ArithmeticOp> kArith = {
          {"+", ArithmeticOp::kAdd}, {"-", ArithmeticOp::kSub},
          {"*", ArithmeticOp::kMul}, {"/", ArithmeticOp::kDiv},
          {"%", ArithmeticOp::kMod}};
      auto arith = kArith.find(ast.op);
      if (arith != kArith.end()) {
        return MakeArithmetic(arith->second, std::move(left),
                              std::move(right));
      }
      return Status::AnalysisError("unknown operator " + ast.op);
    }
    case ExprAst::Kind::kNot: {
      ERBIUM_ASSIGN_OR_RETURN(ExprPtr child, Bind(*ast.children[0], scope));
      return MakeNot(std::move(child));
    }
    case ExprAst::Kind::kIsNull: {
      ERBIUM_ASSIGN_OR_RETURN(ExprPtr child, Bind(*ast.children[0], scope));
      return ExprPtr(
          std::make_shared<IsNullExpr>(std::move(child), ast.negated));
    }
    case ExprAst::Kind::kInList: {
      ERBIUM_ASSIGN_OR_RETURN(ExprPtr child, Bind(*ast.children[0], scope));
      ExprPtr in = MakeInList(std::move(child), ast.in_values);
      return ast.negated ? MakeNot(std::move(in)) : in;
    }
    case ExprAst::Kind::kFunction: {
      if (IsAggregateName(ast.name)) {
        return Status::AnalysisError(
            "aggregate " + ast.name +
            " is only allowed as a top-level select item");
      }
      if (ast.name == "unnest") {
        return Status::AnalysisError(
            "unnest is only allowed as a top-level select item");
      }
      ERBIUM_ASSIGN_OR_RETURN(BuiltinFn fn,
                              FunctionExpr::FunctionByName(ast.name));
      std::vector<ExprPtr> args;
      for (const ExprAstPtr& child : ast.children) {
        ERBIUM_ASSIGN_OR_RETURN(ExprPtr arg, Bind(*child, scope));
        args.push_back(std::move(arg));
      }
      return MakeFunction(fn, std::move(args));
    }
    case ExprAst::Kind::kStar:
      return Status::AnalysisError("* is only allowed inside count(*)");
    case ExprAst::Kind::kStruct: {
      std::vector<ExprPtr> fields;
      for (const ExprAstPtr& child : ast.children) {
        ERBIUM_ASSIGN_OR_RETURN(ExprPtr field, Bind(*child, scope));
        fields.push_back(std::move(field));
      }
      return ExprPtr(
          std::make_shared<MakeStructExpr>(ast.field_names, fields));
    }
  }
  return Status::Internal("unreachable expression kind");
}

Result<OperatorPtr> TranslatorImpl::BuildAliasPlan(
    AliasDecl* decl, std::vector<ExprAstPtr> conjuncts, AliasInfo* info_out,
    bool join_side) {
  // Detect a full-key point lookup: equality conjuncts ident = literal
  // (or literal = ident) covering every key attribute.
  std::map<std::string, Value> pinned;
  std::vector<bool> consumed(conjuncts.size(), false);
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    const ExprAst& c = *conjuncts[i];
    if (c.kind != ExprAst::Kind::kBinary || c.op != "=") continue;
    const ExprAst* ident = nullptr;
    const ExprAst* literal = nullptr;
    for (int side : {0, 1}) {
      if (c.children[side]->kind == ExprAst::Kind::kIdent &&
          c.children[1 - side]->kind == ExprAst::Kind::kLiteral) {
        ident = c.children[side].get();
        literal = c.children[1 - side].get();
      }
    }
    if (ident == nullptr) continue;
    bool is_key = std::find(decl->key_names.begin(), decl->key_names.end(),
                            ident->name) != decl->key_names.end();
    if (is_key && pinned.count(ident->name) == 0) {
      pinned.emplace(ident->name, literal->literal);
      consumed[i] = true;
    }
  }
  OperatorPtr plan;
  bool point_lookup = pinned.size() == decl->key_names.size() &&
                      !decl->key_names.empty();
  TouchEntity(decl->entity, join_side       ? obs::EntityPath::kJoinSide
                            : point_lookup ? obs::EntityPath::kProbe
                                           : obs::EntityPath::kScan);
  bool branch_local =
      shards_ == nullptr || local_aliases_.count(decl->alias) > 0;
  if (point_lookup) {
    IndexKey key;
    for (const std::string& name : decl->key_names) {
      key.push_back(pinned.at(name));
    }
    MappedDatabase* target = db_;
    if (!branch_local) {
      // A pinned full key names exactly one shard (the routing prefix is
      // part of it) — probe that shard directly instead of unioning
      // every shard's index.
      ERBIUM_ASSIGN_OR_RETURN(int s,
                              shards_->map->RouteKey(decl->entity, key));
      target = shards_->dbs[s];
    }
    ERBIUM_ASSIGN_OR_RETURN(
        plan, target->LookupEntity(decl->entity, key, decl->needed));
  } else if (branch_local) {
    ERBIUM_ASSIGN_OR_RETURN(plan, db_->ScanEntity(decl->entity, decl->needed));
    std::fill(consumed.begin(), consumed.end(), false);
  } else {
    // Rows for this alias may live anywhere: union every shard's scan.
    std::vector<OperatorPtr> children;
    children.reserve(shards_->dbs.size());
    for (MappedDatabase* sdb : shards_->dbs) {
      ERBIUM_ASSIGN_OR_RETURN(OperatorPtr child,
                              sdb->ScanEntity(decl->entity, decl->needed));
      children.push_back(std::move(child));
    }
    plan = std::make_unique<UnionAllOp>(std::move(children));
    any_global_scan_ = true;
    std::fill(consumed.begin(), consumed.end(), false);
  }
  // Local scope of this alias's output.
  AliasInfo info;
  info.alias = decl->alias;
  info.entity = decl->entity;
  info.key_names = decl->key_names;
  int position = 0;
  for (const std::string& k : decl->key_names) info.columns[k] = position++;
  for (const std::string& a : decl->needed) info.columns[a] = position++;
  // Apply remaining single-alias conjuncts.
  Scope local;
  local.aliases.push_back(info);
  local.width = position;
  std::vector<ExprPtr> bound;
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    if (consumed[i]) continue;
    ERBIUM_ASSIGN_OR_RETURN(ExprPtr e, Bind(*conjuncts[i], &local));
    bound.push_back(std::move(e));
  }
  if (ExprPtr predicate = ConjoinAll(std::move(bound))) {
    plan = std::make_unique<FilterOp>(std::move(plan), std::move(predicate));
  }
  *info_out = std::move(info);
  return plan;
}

Result<CompiledQuery> TranslatorImpl::Run() {
  ERBIUM_RETURN_NOT_OK(CollectAliases());
  ERBIUM_RETURN_NOT_OK(CollectFootprintAttrs());
  if (shards_ != nullptr) ComputeShardLocality();

  // ---- Unnest fast path --------------------------------------------------
  // SELECT <key attrs...>, unnest(<mv attr>) FROM E [WHERE <key-only>]:
  // under separate-table storage the side table *is* the unnested form,
  // so scan it directly instead of assembling arrays and re-expanding
  // them (the optimization PostgreSQL gets for free on the normalized
  // mapping; essential for the paper's E2 comparison).
  if (query_.joins.empty() && !query_.distinct && !query_.explicit_group_by &&
      query_.order_by.empty() && decls_.size() == 1) {
    AliasDecl& decl = decls_[0];
    int unnest_items = 0;
    std::string mv_attr;
    bool eligible = true;
    for (const SelectItem& item : query_.select) {
      const ExprAst& e = *item.expr;
      if (e.kind == ExprAst::Kind::kFunction && e.name == "unnest" &&
          e.children.size() == 1 &&
          e.children[0]->kind == ExprAst::Kind::kIdent) {
        ++unnest_items;
        mv_attr = e.children[0]->name;
        continue;
      }
      if (e.kind == ExprAst::Kind::kIdent &&
          std::find(decl.key_names.begin(), decl.key_names.end(), e.name) !=
              decl.key_names.end()) {
        continue;
      }
      eligible = false;
      break;
    }
    if (eligible && unnest_items == 1) {
      // The where clause may only touch key attributes or the element.
      std::vector<ExprAstPtr> conjuncts;
      SplitConjuncts(query_.where, &conjuncts);
      for (const ExprAstPtr& c : conjuncts) {
        std::set<std::string> refs;
        std::function<void(const ExprAst&)> collect =
            [&](const ExprAst& ast) {
              if (ast.kind == ExprAst::Kind::kIdent) refs.insert(ast.name);
              for (const ExprAstPtr& child : ast.children) collect(*child);
            };
        collect(*c);
        for (const std::string& name : refs) {
          if (std::find(decl.key_names.begin(), decl.key_names.end(),
                        name) == decl.key_names.end()) {
            eligible = false;
          }
        }
      }
      ERBIUM_ASSIGN_OR_RETURN(std::vector<AttributeDef> visible_attrs,
                              db_->schema().AllAttributes(decl.entity));
      const AttributeDef* attr_def = FindAttribute(visible_attrs, mv_attr);
      if (eligible && attr_def != nullptr && attr_def->multi_valued) {
        TouchEntity(decl.entity, obs::EntityPath::kScan);
        ERBIUM_ASSIGN_OR_RETURN(OperatorPtr plan,
                                db_->ScanMultiValued(decl.entity, mv_attr));
        // Scope over the stream: key columns then the element column.
        Scope scope;
        AliasInfo info;
        info.alias = decl.alias;
        info.entity = decl.entity;
        info.key_names = decl.key_names;
        for (size_t i = 0; i < plan->output_columns().size(); ++i) {
          info.columns[plan->output_columns()[i].name] =
              static_cast<int>(i);
        }
        scope.aliases.push_back(info);
        scope.width = static_cast<int>(plan->output_columns().size());
        if (query_.where) {
          ERBIUM_ASSIGN_OR_RETURN(ExprPtr predicate,
                                  Bind(*query_.where, &scope));
          plan = std::make_unique<FilterOp>(std::move(plan),
                                            std::move(predicate));
        }
        std::vector<ExprPtr> out_exprs;
        std::vector<Column> out_cols;
        std::vector<std::string> names;
        for (size_t i = 0; i < query_.select.size(); ++i) {
          const SelectItem& item = query_.select[i];
          const ExprAst& e = *item.expr;
          std::string source = e.kind == ExprAst::Kind::kIdent
                                   ? e.name
                                   : mv_attr;  // the unnest item
          std::string name = !item.alias.empty() ? item.alias : source;
          auto it = info.columns.find(source);
          if (it == info.columns.end()) {
            return Status::Internal("fast path missed column " + source);
          }
          out_cols.push_back(Column{name, Type::Null(), true});
          out_exprs.push_back(MakeColumnRef(it->second, name));
          names.push_back(name);
        }
        plan = std::make_unique<ProjectOp>(std::move(plan),
                                           std::move(out_cols),
                                           std::move(out_exprs));
        plan = MaybeParallelGather(std::move(plan), opts_);
        if (query_.limit >= 0) {
          plan = std::make_unique<LimitOp>(
              std::move(plan), static_cast<size_t>(query_.limit));
        }
        CompiledQuery compiled;
        compiled.plan = std::move(plan);
        compiled.columns = std::move(names);
        compiled.footprint =
            std::make_shared<obs::StatementFootprint>(std::move(footprint_));
        if (branch_out_ != nullptr) {
          // Branch mode: the driver's side table is shard-local, and the
          // per-branch LimitOp above only trims what the coordinator's
          // own limit re-enforces.
          branch_out_->output_names = compiled.columns;
          branch_out_->any_global_scan = false;
        }
        return compiled;
      }
    }
  }

  // Gather per-alias attribute needs from every expression in the query.
  for (const SelectItem& item : query_.select) {
    ERBIUM_RETURN_NOT_OK(CollectNeeded(*item.expr));
  }
  if (query_.where) ERBIUM_RETURN_NOT_OK(CollectNeeded(*query_.where));
  for (const ExprAstPtr& g : query_.group_by) {
    ERBIUM_RETURN_NOT_OK(CollectNeeded(*g));
  }
  for (const JoinClause& join : query_.joins) {
    if (join.on_expr) ERBIUM_RETURN_NOT_OK(CollectNeeded(*join.on_expr));
  }

  // Partition WHERE into per-alias pushdowns and residual conjuncts.
  std::vector<ExprAstPtr> conjuncts;
  SplitConjuncts(query_.where, &conjuncts);
  std::map<std::string, std::vector<ExprAstPtr>> pushed;
  std::vector<ExprAstPtr> residual;
  for (const ExprAstPtr& c : conjuncts) {
    std::set<std::string> refs;
    ERBIUM_RETURN_NOT_OK(ReferencedAliases(*c, &refs));
    // Pushable only when the single referenced alias is an entity alias;
    // relationship pseudo-aliases and unresolved bare names must wait
    // until after the joins bring their columns into scope.
    bool pushable = refs.size() == 1 && !refs.begin()->empty();
    if (pushable) {
      bool is_entity_alias = false;
      for (const AliasDecl& decl : decls_) {
        if (EqualsIgnoreCase(decl.alias, *refs.begin())) {
          is_entity_alias = true;
        }
      }
      pushable = is_entity_alias;
    }
    if (pushable) {
      pushed[*refs.begin()].push_back(c);
    } else {
      residual.push_back(c);
    }
  }

  // Base plan. When the first join goes through a relationship whose
  // storage already materializes the join (factorized pair or
  // materialized table) and the two aliases are exactly its participants,
  // serve both entities and the join from ONE pass over the joined
  // structure — the optimization that makes M6-style mappings pay off.
  Scope scope;
  OperatorPtr plan;
  size_t first_join = 0;
  // Fused storages are rejected at shards > 1 (ValidateShardable), so
  // the fused path can never apply to a branch; skip probing for it.
  if (shards_ == nullptr && !query_.joins.empty() &&
      !query_.joins[0].relationship.empty()) {
    const RelationshipSetDef* rel =
        db_->schema().FindRelationshipSet(query_.joins[0].relationship);
    if (rel != nullptr) {
      AliasDecl* from_decl = &decls_[0];
      AliasDecl* join_decl = &decls_[1];
      AliasDecl* left_decl = nullptr;
      AliasDecl* right_decl = nullptr;
      if (EqualsIgnoreCase(from_decl->entity, rel->left.entity) &&
          EqualsIgnoreCase(join_decl->entity, rel->right.entity)) {
        left_decl = from_decl;
        right_decl = join_decl;
      } else if (EqualsIgnoreCase(from_decl->entity, rel->right.entity) &&
                 EqualsIgnoreCase(join_decl->entity, rel->left.entity)) {
        left_decl = join_decl;
        right_decl = from_decl;
      }
      if (left_decl != nullptr) {
        Result<OperatorPtr> fused = db_->ScanRelationshipJoined(
            rel->name, left_decl->needed, right_decl->needed);
        if (fused.ok()) {
          plan = std::move(fused).value();
          // Register both aliases over the fused output by column name
          // (keys and attrs are uniquely named across R2/S1-style pairs;
          // on collision the fused path is skipped).
          bool collision = false;
          auto register_alias = [&](AliasDecl* decl) {
            AliasInfo info;
            info.alias = decl->alias;
            info.entity = decl->entity;
            info.key_names = decl->key_names;
            std::vector<std::string> wanted = decl->key_names;
            wanted.insert(wanted.end(), decl->needed.begin(),
                          decl->needed.end());
            for (const std::string& name : wanted) {
              int idx = -1;
              const std::vector<Column>& cols = plan->output_columns();
              for (size_t i = 0; i < cols.size(); ++i) {
                if (cols[i].name == name) {
                  if (idx >= 0) collision = true;
                  idx = static_cast<int>(i);
                }
              }
              if (idx < 0) collision = true;
              info.columns[name] = idx;
            }
            scope.aliases.push_back(std::move(info));
          };
          register_alias(left_decl);
          register_alias(right_decl);
          if (collision) {
            scope.aliases.clear();
            plan.reset();
          } else {
            scope.width = static_cast<int>(plan->output_columns().size());
            first_join = 1;
            // One pass over the joined structure serves both entities.
            TouchRelationship(rel->name, /*fused=*/true);
            TouchEntity(left_decl->entity, obs::EntityPath::kScan);
            TouchEntity(right_decl->entity, obs::EntityPath::kJoinSide);
            // Per-alias pushed conjuncts apply on top of the fused scan.
            std::vector<ExprPtr> bound;
            for (AliasDecl* decl : {left_decl, right_decl}) {
              for (const ExprAstPtr& c : pushed[decl->alias]) {
                ERBIUM_ASSIGN_OR_RETURN(ExprPtr e, Bind(*c, &scope));
                bound.push_back(std::move(e));
              }
            }
            if (ExprPtr predicate = ConjoinAll(std::move(bound))) {
              plan = std::make_unique<FilterOp>(std::move(plan),
                                                std::move(predicate));
            }
          }
        }
      }
    }
  }
  if (plan == nullptr) {
    AliasInfo first_info;
    ERBIUM_ASSIGN_OR_RETURN(
        plan, BuildAliasPlan(&decls_[0], pushed[decls_[0].alias], &first_info,
                             /*join_side=*/false));
    scope.aliases.clear();
    scope.aliases.push_back(first_info);
    scope.width = static_cast<int>(plan->output_columns().size());
    first_join = 0;
  }

  // Joins, left-deep in declaration order.
  for (size_t j = first_join; j < query_.joins.size(); ++j) {
    const JoinClause& join = query_.joins[j];
    AliasDecl* decl = &decls_[j + 1];
    AliasInfo right_info;
    ERBIUM_ASSIGN_OR_RETURN(
        OperatorPtr right_plan,
        BuildAliasPlan(decl, pushed[decl->alias], &right_info,
                       /*join_side=*/true));
    int right_width = static_cast<int>(right_plan->output_columns().size());

    if (!join.relationship.empty()) {
      const std::string& rel_name = join.relationship;
      const RelationshipSetDef* rel =
          db_->schema().FindRelationshipSet(rel_name);
      if (rel != nullptr) {
        // Which side is the new alias, which existing alias matches the
        // other side? Exact entity matches beat hierarchy-related ones.
        auto side_score = [&](const std::string& side_entity,
                              const std::string& entity) -> int {
          if (EqualsIgnoreCase(side_entity, entity)) return 2;
          if (db_->schema().IsSelfOrDescendant(entity, side_entity) ||
              db_->schema().IsSelfOrDescendant(side_entity, entity)) {
            return 1;
          }
          return 0;
        };
        int left_new = side_score(rel->left.entity, decl->entity);
        int right_new = side_score(rel->right.entity, decl->entity);
        if (left_new == 0 && right_new == 0) {
          return Status::AnalysisError("entity " + decl->entity +
                                       " does not participate in " +
                                       rel_name);
        }
        bool new_is_right = right_new >= left_new;
        const Participant& new_side = new_is_right ? rel->right : rel->left;
        const Participant& old_side = new_is_right ? rel->left : rel->right;
        // Find the existing alias for the other side.
        AliasInfo* old_info = nullptr;
        int best = 0;
        for (AliasInfo& cand : scope.aliases) {
          if (cand.entity.empty()) continue;
          int score = side_score(old_side.entity, cand.entity);
          if (score > best) {
            best = score;
            old_info = &cand;
          } else if (score == best && score > 0 && old_info != nullptr) {
            return Status::AnalysisError(
                "ambiguous participants for relationship " + rel_name +
                "; qualify with distinct entity classes");
          }
        }
        if (old_info == nullptr) {
          return Status::AnalysisError(
              "no in-scope entity participates in " + rel_name);
        }
        // plan ⋈ rel-instances ⋈ new entity.
        TouchRelationship(rel_name, /*fused=*/false);
        OperatorPtr rel_scan;
        if (shards_ == nullptr || local_rel_joins_.count(j) > 0) {
          ERBIUM_ASSIGN_OR_RETURN(rel_scan, db_->ScanRelationship(rel_name));
        } else {
          // Edges route by the dominant participant; the bound side here
          // is non-dominant (or itself global), so its edges may live on
          // any shard.
          std::vector<OperatorPtr> children;
          children.reserve(shards_->dbs.size());
          for (MappedDatabase* sdb : shards_->dbs) {
            ERBIUM_ASSIGN_OR_RETURN(OperatorPtr child,
                                    sdb->ScanRelationship(rel_name));
            children.push_back(std::move(child));
          }
          rel_scan = std::make_unique<UnionAllOp>(std::move(children));
          any_global_scan_ = true;
        }
        ERBIUM_ASSIGN_OR_RETURN(std::vector<Column> old_key_cols,
                                db_->mapping().KeyColumns(old_side.entity));
        ERBIUM_ASSIGN_OR_RETURN(std::vector<Column> new_key_cols,
                                db_->mapping().KeyColumns(new_side.entity));
        std::vector<ExprPtr> left_keys;
        for (const Column& c : old_key_cols) {
          auto it = old_info->columns.find(c.name);
          if (it == old_info->columns.end()) {
            return Status::Internal("missing key column " + c.name);
          }
          left_keys.push_back(MakeColumnRef(it->second, c.name));
        }
        std::vector<ExprPtr> rel_old_keys;
        std::vector<ExprPtr> rel_new_keys;
        {
          const std::vector<Column>& rel_cols = rel_scan->output_columns();
          auto rel_col = [&](const std::string& name) -> int {
            for (size_t i = 0; i < rel_cols.size(); ++i) {
              if (rel_cols[i].name == name) return static_cast<int>(i);
            }
            return -1;
          };
          for (const Column& c : old_key_cols) {
            int idx = rel_col(
                PhysicalMapping::RoleColumnName(old_side.role, c.name));
            if (idx < 0) return Status::Internal("missing rel key column");
            rel_old_keys.push_back(MakeColumnRef(idx, rel_cols[idx].name));
          }
          for (const Column& c : new_key_cols) {
            int idx = rel_col(
                PhysicalMapping::RoleColumnName(new_side.role, c.name));
            if (idx < 0) return Status::Internal("missing rel key column");
            rel_new_keys.push_back(MakeColumnRef(idx, rel_cols[idx].name));
          }
        }
        int rel_width = static_cast<int>(rel_scan->output_columns().size());
        // Register the relationship's attribute columns as a pseudo-alias
        // so rs_a1-style references resolve.
        AliasInfo rel_info;
        rel_info.alias = rel_name;
        for (size_t i = 0; i < rel->attributes.size(); ++i) {
          // Attr columns follow the two key column groups.
          rel_info.columns[rel->attributes[i].name] =
              scope.width +
              static_cast<int>(old_key_cols.size() + new_key_cols.size() + i);
        }
        // Careful: ScanRelationship output is left-role cols, right-role
        // cols, attrs — in *relationship* order, not old/new order.
        {
          const std::vector<Column>& rel_cols = rel_scan->output_columns();
          rel_info.columns.clear();
          for (const AttributeDef& attr : rel->attributes) {
            for (size_t i = 0; i < rel_cols.size(); ++i) {
              if (rel_cols[i].name == attr.name) {
                rel_info.columns[attr.name] =
                    scope.width + static_cast<int>(i);
              }
            }
          }
        }
        plan = std::make_unique<HashJoinOp>(std::move(plan),
                                            std::move(rel_scan),
                                            std::move(left_keys),
                                            std::move(rel_old_keys));
        // Join the new entity on the relationship's new-side key columns.
        std::vector<ExprPtr> probe_keys;
        {
          // rel_new_keys positions shift by scope.width after the join.
          for (const ExprPtr& e : rel_new_keys) {
            const auto* ref = static_cast<const ColumnRefExpr*>(e.get());
            probe_keys.push_back(MakeColumnRef(scope.width + ref->index(),
                                               ref->ToString()));
          }
        }
        std::vector<ExprPtr> build_keys;
        for (const Column& c : new_key_cols) {
          auto it = right_info.columns.find(c.name);
          if (it == right_info.columns.end()) {
            return Status::Internal("missing key column " + c.name);
          }
          build_keys.push_back(MakeColumnRef(it->second, c.name));
        }
        int offset = scope.width + rel_width;
        plan = std::make_unique<HashJoinOp>(std::move(plan),
                                            std::move(right_plan),
                                            std::move(probe_keys),
                                            std::move(build_keys));
        scope.aliases.push_back(rel_info);
        for (auto& [name, pos] : right_info.columns) pos += offset;
        scope.aliases.push_back(right_info);
        scope.width = offset + right_width;
        continue;
      }
      // Identifying relationship of a weak entity: join owner-key prefix.
      const EntitySetDef* weak = nullptr;
      for (const std::string& entity_name :
           db_->schema().EntitySetNames()) {
        const EntitySetDef* def = db_->schema().FindEntitySet(entity_name);
        if (def->weak &&
            EqualsIgnoreCase(def->identifying_relationship, rel_name)) {
          weak = def;
          break;
        }
      }
      if (weak == nullptr) {
        return Status::AnalysisError("unknown relationship " + rel_name);
      }
      // One side is the weak entity, the other its owner; figure out
      // which one is new.
      bool new_is_weak = EqualsIgnoreCase(decl->entity, weak->name);
      const std::string owner = weak->owner;
      AliasInfo* old_info = nullptr;
      for (AliasInfo& cand : scope.aliases) {
        if (cand.entity.empty()) continue;
        if (new_is_weak ? EqualsIgnoreCase(cand.entity, owner)
                        : EqualsIgnoreCase(cand.entity, weak->name)) {
          old_info = &cand;
          break;
        }
      }
      if (old_info == nullptr) {
        return Status::AnalysisError("no in-scope participant for " +
                                     rel_name);
      }
      TouchRelationship(rel_name, /*fused=*/false);
      ERBIUM_ASSIGN_OR_RETURN(std::vector<Column> owner_key,
                              db_->mapping().KeyColumns(owner));
      std::vector<ExprPtr> left_keys;
      std::vector<ExprPtr> right_keys;
      for (const Column& c : owner_key) {
        auto left_it = old_info->columns.find(c.name);
        auto right_it = right_info.columns.find(c.name);
        if (left_it == old_info->columns.end() ||
            right_it == right_info.columns.end()) {
          return Status::Internal("missing owner key column " + c.name);
        }
        left_keys.push_back(MakeColumnRef(left_it->second, c.name));
        right_keys.push_back(MakeColumnRef(right_it->second, c.name));
      }
      int offset = scope.width;
      plan = std::make_unique<HashJoinOp>(std::move(plan),
                                          std::move(right_plan),
                                          std::move(left_keys),
                                          std::move(right_keys));
      for (auto& [name, pos] : right_info.columns) pos += offset;
      scope.aliases.push_back(right_info);
      scope.width = offset + right_width;
      continue;
    }

    // Theta join on an expression: try to extract equi keys, else fall
    // back to a nested-loop join.
    std::vector<ExprAstPtr> on_conjuncts;
    SplitConjuncts(join.on_expr, &on_conjuncts);
    std::vector<ExprPtr> left_keys;
    std::vector<ExprPtr> right_keys;
    std::vector<ExprAstPtr> leftover;
    Scope right_scope;
    right_scope.aliases.push_back(right_info);
    for (const ExprAstPtr& c : on_conjuncts) {
      bool extracted = false;
      if (c->kind == ExprAst::Kind::kBinary && c->op == "=") {
        for (int side : {0, 1}) {
          std::set<std::string> l_refs, r_refs;
          Status s1 = ReferencedAliases(*c->children[side], &l_refs);
          Status s2 = ReferencedAliases(*c->children[1 - side], &r_refs);
          if (!s1.ok() || !s2.ok()) continue;
          bool left_is_old = l_refs.count(decl->alias) == 0;
          bool right_is_new =
              r_refs.size() == 1 && r_refs.count(decl->alias) == 1;
          if (left_is_old && right_is_new && !l_refs.empty()) {
            Result<ExprPtr> lk = Bind(*c->children[side], &scope);
            Result<ExprPtr> rk = Bind(*c->children[1 - side], &right_scope);
            if (lk.ok() && rk.ok()) {
              left_keys.push_back(std::move(lk).value());
              right_keys.push_back(std::move(rk).value());
              extracted = true;
            }
            break;
          }
        }
      }
      if (!extracted) leftover.push_back(c);
    }
    int offset = scope.width;
    if (!left_keys.empty()) {
      plan = std::make_unique<HashJoinOp>(std::move(plan),
                                          std::move(right_plan),
                                          std::move(left_keys),
                                          std::move(right_keys));
      for (auto& [name, pos] : right_info.columns) pos += offset;
      scope.aliases.push_back(right_info);
      scope.width = offset + right_width;
      if (!leftover.empty()) {
        std::vector<ExprPtr> bound;
        for (const ExprAstPtr& c : leftover) {
          ERBIUM_ASSIGN_OR_RETURN(ExprPtr e, Bind(*c, &scope));
          bound.push_back(std::move(e));
        }
        plan = std::make_unique<FilterOp>(std::move(plan),
                                          ConjoinAll(std::move(bound)));
      }
    } else {
      for (auto& [name, pos] : right_info.columns) pos += offset;
      scope.aliases.push_back(right_info);
      scope.width = offset + right_width;
      ExprPtr predicate;
      if (join.on_expr) {
        std::vector<ExprPtr> bound;
        for (const ExprAstPtr& c : leftover) {
          ERBIUM_ASSIGN_OR_RETURN(ExprPtr e, Bind(*c, &scope));
          bound.push_back(std::move(e));
        }
        predicate = ConjoinAll(std::move(bound));
      }
      plan = std::make_unique<NestedLoopJoinOp>(std::move(plan),
                                                std::move(right_plan),
                                                std::move(predicate));
    }
  }

  // Residual predicates after all joins.
  if (!residual.empty()) {
    std::vector<ExprPtr> bound;
    for (const ExprAstPtr& c : residual) {
      ERBIUM_ASSIGN_OR_RETURN(ExprPtr e, Bind(*c, &scope));
      bound.push_back(std::move(e));
    }
    plan = std::make_unique<FilterOp>(std::move(plan),
                                      ConjoinAll(std::move(bound)));
  }

  // ---- SELECT ----------------------------------------------------------------
  bool has_aggregate = false;
  for (const SelectItem& item : query_.select) {
    if (item.expr->kind == ExprAst::Kind::kFunction &&
        IsAggregateName(item.expr->name)) {
      has_aggregate = true;
    }
  }

  std::vector<std::string> output_names;
  if (has_aggregate) {
    // Group keys: explicit GROUP BY, otherwise the non-aggregate select
    // items (the paper's inferred group-by).
    std::vector<ExprAstPtr> group_asts = query_.group_by;
    if (!query_.explicit_group_by) {
      for (const SelectItem& item : query_.select) {
        if (!(item.expr->kind == ExprAst::Kind::kFunction &&
              IsAggregateName(item.expr->name))) {
          group_asts.push_back(item.expr);
        }
      }
    }
    std::vector<ExprPtr> group_exprs;
    std::vector<std::string> group_names;
    for (size_t i = 0; i < group_asts.size(); ++i) {
      ERBIUM_ASSIGN_OR_RETURN(ExprPtr e, Bind(*group_asts[i], &scope));
      group_exprs.push_back(std::move(e));
      group_names.push_back("g" + std::to_string(i));
    }
    std::vector<AggregateSpec> aggs;
    for (const SelectItem& item : query_.select) {
      if (!(item.expr->kind == ExprAst::Kind::kFunction &&
            IsAggregateName(item.expr->name))) {
        continue;
      }
      const ExprAst& fn = *item.expr;
      AggregateSpec spec;
      spec.distinct = fn.distinct;
      spec.output_name = DeriveName(item, aggs.size());
      if (fn.name == "count" && !fn.children.empty() &&
          fn.children[0]->kind == ExprAst::Kind::kStar) {
        spec.kind = AggKind::kCountStar;
      } else {
        ERBIUM_ASSIGN_OR_RETURN(spec.kind, AggKindByName(fn.name));
        if (fn.children.size() != 1) {
          return Status::AnalysisError("aggregate " + fn.name +
                                       " takes exactly one argument");
        }
        ERBIUM_ASSIGN_OR_RETURN(spec.input, Bind(*fn.children[0], &scope));
      }
      aggs.push_back(std::move(spec));
    }
    ERBIUM_ASSIGN_OR_RETURN(AggProjection proj,
                            ComputeAggProjection(query_, group_asts));
    if (branch_out_ != nullptr) {
      // Branch mode stops *before* aggregation: finalizing per shard and
      // re-aggregating would be wrong (avg of avgs), so the coordinator
      // merges accumulator partials (ShardMergeAggregateOp) and applies
      // the final projection once. Branch 0's copy of the shared specs
      // wins; all branches build identical ones.
      branch_out_->has_aggregate = true;
      branch_out_->group_exprs = std::move(group_exprs);
      branch_out_->group_names = std::move(group_names);
      branch_out_->aggs = std::move(aggs);
      branch_out_->select_positions = std::move(proj.positions);
      branch_out_->output_names = std::move(proj.names);
      branch_out_->any_global_scan = any_global_scan_;
      CompiledQuery compiled;
      compiled.plan = std::move(plan);
      compiled.columns = branch_out_->output_names;
      compiled.footprint =
          std::make_shared<obs::StatementFootprint>(std::move(footprint_));
      return compiled;
    }
    plan = MakeAggregatePlan(std::move(plan), std::move(group_exprs),
                             group_names, std::move(aggs), opts_);
    // Final projection maps select items onto the aggregate output.
    std::vector<ExprPtr> out_exprs;
    std::vector<Column> out_cols;
    for (size_t i = 0; i < query_.select.size(); ++i) {
      out_cols.push_back(Column{proj.names[i], Type::Null(), true});
      out_exprs.push_back(MakeColumnRef(proj.positions[i], proj.names[i]));
      output_names.push_back(proj.names[i]);
    }
    plan = std::make_unique<ProjectOp>(std::move(plan), std::move(out_cols),
                                       std::move(out_exprs));
  } else {
    // Plain projection; top-level unnest() items expand afterwards.
    std::vector<ExprPtr> out_exprs;
    std::vector<Column> out_cols;
    std::vector<int> unnest_positions;
    for (size_t i = 0; i < query_.select.size(); ++i) {
      const SelectItem& item = query_.select[i];
      const ExprAst* expr = item.expr.get();
      std::string name = DeriveName(item, i);
      bool is_unnest = expr->kind == ExprAst::Kind::kFunction &&
                       expr->name == "unnest";
      if (is_unnest) {
        if (expr->children.size() != 1) {
          return Status::AnalysisError("unnest takes exactly one argument");
        }
        expr = expr->children[0].get();
        if (item.alias.empty() && expr->kind == ExprAst::Kind::kIdent) {
          name = expr->name;
        }
        unnest_positions.push_back(static_cast<int>(i));
      }
      ERBIUM_ASSIGN_OR_RETURN(ExprPtr bound, Bind(*expr, &scope));
      out_cols.push_back(Column{name, Type::Null(), true});
      out_exprs.push_back(std::move(bound));
      output_names.push_back(name);
    }
    plan = std::make_unique<ProjectOp>(std::move(plan), std::move(out_cols),
                                       std::move(out_exprs));
    for (int position : unnest_positions) {
      plan = std::make_unique<UnnestOp>(std::move(plan), position,
                                        output_names[position]);
    }
    // Parallelize the scan→filter→project pipeline; Distinct/Sort/Limit
    // above stay serial consumers of the gathered stream.
    plan = MaybeParallelGather(std::move(plan), opts_);
  }

  if (branch_out_ != nullptr) {
    // Branch mode (non-aggregate; the aggregate arm returned above):
    // Distinct/Sort/Limit must see the combined stream, so they move up
    // to the coordinator, above the cross-shard gather.
    branch_out_->output_names = output_names;
    branch_out_->any_global_scan = any_global_scan_;
    CompiledQuery compiled;
    compiled.plan = std::move(plan);
    compiled.columns = std::move(output_names);
    compiled.footprint =
        std::make_shared<obs::StatementFootprint>(std::move(footprint_));
    return compiled;
  }

  ERBIUM_ASSIGN_OR_RETURN(plan,
                          FinishQueryTail(std::move(plan), output_names,
                                          query_));
  CompiledQuery compiled;
  compiled.plan = std::move(plan);
  compiled.columns = std::move(output_names);
  compiled.footprint =
      std::make_shared<obs::StatementFootprint>(std::move(footprint_));
  return compiled;
}

// ---- EXPLAIN mapping notes -------------------------------------------------
// One note per logical construct the query touches, saying which physical
// structure the active mapping resolved it to (the M1-vs-M6 distinction
// the paper's Section 6 experiments revolve around).

std::string SegmentNote(const PhysicalMapping& m, const std::string& entity) {
  switch (m.segment_location(entity)) {
    case SegmentLocation::kOwnTable:
      return "own table '" + m.SegmentTableName(entity) + "'";
    case SegmentLocation::kHierarchySingle:
      return "single hierarchy table '" + m.SegmentTableName(entity) +
             "' (discriminator " + std::string(PhysicalMapping::kTypeColumn) +
             ")";
    case SegmentLocation::kHierarchyDisjoint:
      return "disjoint per-class hierarchy tables";
    case SegmentLocation::kFoldedInOwner:
      return "folded into the owner's table as an array of structs";
    case SegmentLocation::kPairLeft:
    case SegmentLocation::kPairRight:
      return "factorized pair '" + m.SegmentPairName(entity) + "' (via " +
             m.SwallowingRelationship(entity) + ")";
    case SegmentLocation::kMaterializedLeft:
    case SegmentLocation::kMaterializedRight:
      return "materialized join table '" + m.SegmentTableName(entity) +
             "' (via " + m.SwallowingRelationship(entity) + ")";
  }
  return "unknown";
}

std::string RelationshipNote(const PhysicalMapping& m,
                             const RelationshipSetDef& rel) {
  switch (m.spec().relationship_storage(rel)) {
    case RelationshipStorage::kForeignKey:
      return "foreign-key columns on the many side";
    case RelationshipStorage::kJoinTable:
      return "join table '" + rel.name + "'";
    case RelationshipStorage::kMaterializedJoin:
      return "materialized join table '" +
             PhysicalMapping::MaterializedTableName(rel.name) + "'";
    case RelationshipStorage::kFactorized:
      return "factorized pair '" + PhysicalMapping::PairName(rel.name) + "'";
  }
  return "unknown";
}

std::vector<std::string> BuildMappingNotes(const PhysicalMapping& m,
                                           const Query& query) {
  std::vector<std::string> notes;
  std::set<std::string> seen_entities;
  auto note_entity = [&](const std::string& entity) {
    if (m.schema().FindEntitySet(entity) == nullptr) return;
    if (!seen_entities.insert(entity).second) return;
    notes.push_back("entity " + entity + " -> " + SegmentNote(m, entity));
    // Multi-valued attributes are the M1-vs-M2 axis: say where each lives.
    for (const AttributeDef& attr :
         m.schema().FindEntitySet(entity)->attributes) {
      if (!attr.multi_valued) continue;
      if (m.spec().multi_valued_storage(entity, attr.name) ==
          MultiValuedStorage::kSeparateTable) {
        notes.push_back("  " + entity + "." + attr.name + " -> side table '" +
                        PhysicalMapping::MvTableName(entity, attr.name) + "'");
      } else {
        notes.push_back("  " + entity + "." + attr.name +
                        " -> array column on '" + entity + "'");
      }
    }
  };
  note_entity(query.from.entity);
  for (const JoinClause& join : query.joins) {
    note_entity(join.item.entity);
    if (join.relationship.empty()) continue;
    const RelationshipSetDef* rel =
        m.schema().FindRelationshipSet(join.relationship);
    if (rel != nullptr) {
      notes.push_back("relationship " + rel->name + " -> " +
                      RelationshipNote(m, *rel));
    } else {
      // Weak-entity identifying join: storage is the entity's own note.
      notes.push_back("identifying join " + join.relationship +
                      " -> owner-key columns on the weak entity");
    }
  }
  return notes;
}

// ---- Sharded compilation ---------------------------------------------------

/// True when the WHERE clause pins every routing attribute of the FROM
/// entity with a top-level `attr = literal` equality and the query has
/// no joins: every qualifying row then lives on one shard, and the whole
/// statement (aggregates included) compiles unsharded against that
/// shard's database.
bool RouteSingleShard(const Query& query, const shard::ShardPlanContext& ctx,
                      MappedDatabase* db0, int* shard_out) {
  if (!query.joins.empty()) return false;
  const EntitySetDef* def = db0->schema().FindEntitySet(query.from.entity);
  if (def == nullptr) return false;  // let normal analysis report it
  const shard::EntityPlacement* place = ctx.map->entity(def->name);
  if (place == nullptr || place->routing_attrs.empty()) return false;
  std::vector<ExprAstPtr> conjuncts;
  SplitConjuncts(query.where, &conjuncts);
  std::map<std::string, Value> pinned;
  for (const ExprAstPtr& c : conjuncts) {
    if (c->kind != ExprAst::Kind::kBinary || c->op != "=") continue;
    const ExprAst* ident = nullptr;
    const ExprAst* literal = nullptr;
    for (int side : {0, 1}) {
      if (c->children[side]->kind == ExprAst::Kind::kIdent &&
          c->children[1 - side]->kind == ExprAst::Kind::kLiteral) {
        ident = c->children[side].get();
        literal = c->children[1 - side].get();
      }
    }
    if (ident == nullptr) continue;
    if (!ident->qualifier.empty() &&
        !EqualsIgnoreCase(ident->qualifier, query.from.alias)) {
      continue;
    }
    pinned.emplace(ident->name, literal->literal);
  }
  std::vector<Value> routing;
  routing.reserve(place->routing_attrs.size());
  for (const std::string& attr : place->routing_attrs) {
    auto it = pinned.find(attr);
    if (it == pinned.end()) return false;
    routing.push_back(it->second);
  }
  *shard_out = ctx.map->RouteValues(routing);
  return true;
}

/// The sharded coordinator: single-shard fast path, else one branch
/// pipeline per shard combined by ShardGatherOp (bag union) or
/// ShardMergeAggregateOp (accumulator merge), with the final projection,
/// Distinct, Sort, and Limit applied exactly once above the combine.
Result<CompiledQuery> TranslateSharded(const Query& query,
                                       const ExecOptions& opts) {
  const shard::ShardPlanContext& ctx = *opts.shards;
  const int n = static_cast<int>(ctx.dbs.size());

  int target = -1;
  if (RouteSingleShard(query, ctx, ctx.dbs[0], &target)) {
    ExecOptions inner = opts;
    inner.shards = nullptr;
    TranslatorImpl impl(ctx.dbs[target], query, inner);
    ERBIUM_ASSIGN_OR_RETURN(CompiledQuery compiled, impl.Run());
    compiled.shard_route = shard::ShardRouteClass::kSingleShard;
    compiled.shard_target = target;
    compiled.shard_count = n;
    return compiled;
  }

  // Broadcast: translate one branch per shard. Branches compile serially
  // inside (num_threads = 1), so the pool tasks that drain them never
  // contain a nested GatherOp waiting on more pool tasks; cross-shard
  // parallelism replaces morsel parallelism here.
  ExecOptions branch_opts = opts;
  branch_opts.num_threads = 1;
  BranchParts parts;
  std::vector<OperatorPtr> branches;
  std::shared_ptr<obs::StatementFootprint> footprint;
  branches.reserve(n);
  for (int k = 0; k < n; ++k) {
    BranchParts branch_parts;
    TranslatorImpl impl(ctx.dbs[k], query, branch_opts, &branch_parts);
    ERBIUM_ASSIGN_OR_RETURN(CompiledQuery branch, impl.Run());
    branches.push_back(std::move(branch.plan));
    if (k == 0) {
      parts = std::move(branch_parts);
      footprint = std::move(branch.footprint);
    }
  }

  OperatorPtr plan;
  std::vector<std::string> output_names = parts.output_names;
  if (parts.has_aggregate) {
    plan = std::make_unique<ShardMergeAggregateOp>(
        std::move(branches), std::move(parts.group_exprs), parts.group_names,
        std::move(parts.aggs));
    std::vector<ExprPtr> out_exprs;
    std::vector<Column> out_cols;
    for (size_t i = 0; i < output_names.size(); ++i) {
      out_cols.push_back(Column{output_names[i], Type::Null(), true});
      out_exprs.push_back(
          MakeColumnRef(parts.select_positions[i], output_names[i]));
    }
    plan = std::make_unique<ProjectOp>(std::move(plan), std::move(out_cols),
                                       std::move(out_exprs));
  } else {
    plan = std::make_unique<ShardGatherOp>(std::move(branches));
  }
  ERBIUM_ASSIGN_OR_RETURN(plan,
                          FinishQueryTail(std::move(plan), output_names,
                                          query));

  CompiledQuery compiled;
  compiled.plan = std::move(plan);
  compiled.columns = std::move(output_names);
  compiled.footprint = std::move(footprint);
  compiled.shard_route = (parts.any_global_scan || parts.has_aggregate)
                             ? shard::ShardRouteClass::kScatterGather
                             : shard::ShardRouteClass::kLocalJoin;
  compiled.shard_count = n;
  return compiled;
}

}  // namespace

Result<CompiledQuery> Translator::Translate(MappedDatabase* db,
                                            const Query& query,
                                            const ExecOptions& opts) {
  CompiledQuery compiled;
  if (opts.shards != nullptr && opts.shards->dbs.size() > 1) {
    ERBIUM_ASSIGN_OR_RETURN(compiled, TranslateSharded(query, opts));
  } else {
    TranslatorImpl impl(db, query, opts);
    ERBIUM_ASSIGN_OR_RETURN(compiled, impl.Run());
  }
  compiled.explain = query.explain;
  if (query.explain != ExplainMode::kNone) {
    compiled.mapping_summary = db->mapping().spec().ToString();
    compiled.mapping_notes = BuildMappingNotes(db->mapping(), query);
    if (compiled.shard_count > 1) {
      std::string note = std::string("shard routing: ") +
                         shard::ShardRouteClassName(compiled.shard_route);
      if (compiled.shard_target >= 0) {
        note += " -> shard " + std::to_string(compiled.shard_target);
      }
      note += " (" + std::to_string(compiled.shard_count) + " shards)";
      compiled.mapping_notes.push_back(std::move(note));
    }
  }
  return compiled;
}

}  // namespace erql
}  // namespace erbium
