#include "shard/router.h"

#include <cctype>

namespace erbium {
namespace shard {

Result<std::unique_ptr<ShardRouter>> ShardRouter::Create(
    const ERSchema& schema, const MappingSpec& spec, int shards) {
  ERBIUM_RETURN_NOT_OK(ValidateShardable(schema, spec, shards));
  ERBIUM_ASSIGN_OR_RETURN(CoPartitionMap map,
                          CoPartitionMap::Build(schema, spec, shards));
  return std::unique_ptr<ShardRouter>(new ShardRouter(std::move(map)));
}

bool ShardRouter::FansOut(const std::string& statement) {
  size_t i = 0;
  while (i < statement.size() &&
         std::isspace(static_cast<unsigned char>(statement[i]))) {
    ++i;
  }
  std::string keyword;
  while (i < statement.size() &&
         std::isalpha(static_cast<unsigned char>(statement[i]))) {
    keyword.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(statement[i]))));
    ++i;
  }
  return keyword == "create" || keyword == "remap" || keyword == "attach" ||
         keyword == "checkpoint";
}

}  // namespace shard
}  // namespace erbium
