#ifndef ERBIUM_SHARD_CO_PARTITION_H_
#define ERBIUM_SHARD_CO_PARTITION_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "er/er_schema.h"
#include "mapping/mapping_spec.h"
#include "storage/index.h"

namespace erbium {

class MappedDatabase;

namespace shard {

/// How a compiled statement executes across shards.
///   kSingleShard     routed to one shard by key hash (point statements)
///   kLocalJoin       broadcast, but every scan in every branch is proven
///                    shard-local (co-partitioned work; no cross-shard
///                    data movement beyond the final gather)
///   kScatterGather   broadcast with at least one cross-shard scan union
///                    or a partial-aggregate merge at the coordinator
enum class ShardRouteClass { kSingleShard, kLocalJoin, kScatterGather };

const char* ShardRouteClassName(ShardRouteClass c);

/// Where an entity set's instances live. Every entity routes by the key
/// of its *anchor*: the strong, non-weak root reached by following ISA
/// edges to the hierarchy root and weak edges to the owner, repeatedly.
/// Because FullKey(E) always starts with FullKey(anchor(E)) (subclasses
/// inherit the root key; weak keys are owner key + partial key), the
/// routing attributes are a prefix of every instance's full key — so an
/// instance and all its subclass segments, weak dependents, and
/// dominant-side relationship edges land on one shard.
struct EntityPlacement {
  std::string anchor;
  /// First |FullKey(anchor)| names of FullKey(entity).
  std::vector<std::string> routing_attrs;
  /// Connected-component id of the schema graph (ISA + weak +
  /// relationship edges) — the same partition the MVCC lock domains use.
  int component = 0;
};

/// Where a relationship set's edges live: on the dominant participant's
/// shard. Under foreign-key storage the edge physically lives on the
/// many side's segment rows, so the many side MUST be dominant; join
/// tables are free-standing and default to the left participant.
struct RelationshipPlacement {
  std::string dominant_entity;
  bool dominant_is_left = true;
  int component = 0;
};

/// The schema-derived co-partitioning: entity anchors, relationship
/// dominance, and the hash routing they imply. Immutable once built;
/// rebuilt on DDL/REMAP (the mapping spec decides relationship storage,
/// which decides edge dominance).
class CoPartitionMap {
 public:
  static Result<CoPartitionMap> Build(const ERSchema& schema,
                                      const MappingSpec& spec, int shards);

  int shards() const { return shards_; }
  const EntityPlacement* entity(const std::string& name) const;
  const RelationshipPlacement* relationship(const std::string& name) const;
  /// Same anchor — instances with equal routing prefixes co-locate.
  bool CoAnchored(const std::string& a, const std::string& b) const;

  /// Shard of an instance given its routing values (anchor-key prefix).
  int RouteValues(const std::vector<Value>& routing_values) const;
  /// Shard of an instance given its full key (routing prefix is taken).
  Result<int> RouteKey(const std::string& entity,
                       const IndexKey& full_key) const;
  /// Shard of an instance given its INSERT payload struct.
  Result<int> RouteEntityValue(const std::string& entity,
                               const Value& fields) const;
  /// Shard of an edge: the dominant participant's key routes it.
  Result<int> RouteRelationship(const std::string& rel,
                                const IndexKey& left_key,
                                const IndexKey& right_key) const;

 private:
  int shards_ = 1;
  std::unordered_map<std::string, EntityPlacement> entities_;
  std::unordered_map<std::string, RelationshipPlacement> relationships_;
};

/// Rejects schema/mapping combinations that cannot be partitioned:
/// fused relationship storages (kMaterializedJoin, kFactorized) store
/// both endpoints' segments in one physical structure, but hash routing
/// puts the two endpoints on different shards. OK at shards <= 1.
Status ValidateShardable(const ERSchema& schema, const MappingSpec& spec,
                         int shards);

/// Strictly parsed ERBIUM_SHARDS: rejects 0, negatives, and garbage with
/// a one-time stderr warning and falls back to 1 (never aborts).
int ShardCountFromEnv();

/// Everything the translator needs to compile one statement against a
/// sharded engine: the per-shard databases (index = shard id) and the
/// co-partition map. Owned by the statement runner; rebuilt under the
/// exclusive statement lock whenever any shard database is rebuilt.
struct ShardPlanContext {
  std::vector<MappedDatabase*> dbs;
  const CoPartitionMap* map = nullptr;
};

}  // namespace shard
}  // namespace erbium

#endif  // ERBIUM_SHARD_CO_PARTITION_H_
