#ifndef ERBIUM_SHARD_ROUTER_H_
#define ERBIUM_SHARD_ROUTER_H_

#include <memory>
#include <string>

#include "shard/co_partition.h"

namespace erbium {
namespace shard {

/// The statement-routing half of the shard subsystem: owns the
/// co-partition map for the current schema/mapping generation and
/// answers "which shard(s) does this statement touch". CRUD routes by
/// key hash; structural statements (DDL / REMAP / ATTACH / CHECKPOINT)
/// fan out to every shard under the runner's exclusive statement class;
/// SELECT classification happens in the translator, which consumes the
/// same CoPartitionMap through ShardPlanContext.
///
/// Immutable after construction — the statement runner rebuilds the
/// router under the exclusive lock whenever DDL or REMAP changes the
/// schema or the mapping (relationship storage decides edge dominance).
class ShardRouter {
 public:
  static Result<std::unique_ptr<ShardRouter>> Create(const ERSchema& schema,
                                                     const MappingSpec& spec,
                                                     int shards);

  int shards() const { return map_.shards(); }
  const CoPartitionMap& map() const { return map_; }

  /// Shard of one INSERT <Entity> (...) statement's instance.
  Result<int> RouteInsert(const std::string& entity,
                         const Value& fields) const {
    return map_.RouteEntityValue(entity, fields);
  }
  /// Shard of one relationship edge (dominant participant's key).
  Result<int> RouteRelationship(const std::string& rel,
                                const IndexKey& left_key,
                                const IndexKey& right_key) const {
    return map_.RouteRelationship(rel, left_key, right_key);
  }
  /// Shard of an entity instance by full key (point reads, deletes).
  Result<int> RouteKey(const std::string& entity,
                       const IndexKey& full_key) const {
    return map_.RouteKey(entity, full_key);
  }

  /// True for statements that must apply to every shard (structural:
  /// CREATE / REMAP / ATTACH, and CHECKPOINT). Leading keyword match,
  /// case- and whitespace-insensitive, mirroring StatementRunner's
  /// classifier.
  static bool FansOut(const std::string& statement);

 private:
  explicit ShardRouter(CoPartitionMap map) : map_(std::move(map)) {}
  CoPartitionMap map_;
};

}  // namespace shard
}  // namespace erbium

#endif  // ERBIUM_SHARD_ROUTER_H_
