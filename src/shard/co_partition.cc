#include "shard/co_partition.h"

#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

#include "common/union_find.h"

namespace erbium {
namespace shard {

namespace {

/// FNV-1a over the printed routing values, with a separator byte between
/// values so ("ab","c") and ("a","bc") hash apart. Printed form — not
/// pointer identity or float bits — keeps routing deterministic across
/// restarts, which per-shard WAL recovery depends on.
uint64_t HashRoutingValues(const std::vector<Value>& values) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](unsigned char byte) {
    h ^= byte;
    h *= 1099511628211ull;
  };
  for (const Value& v : values) {
    for (char c : v.ToString()) mix(static_cast<unsigned char>(c));
    mix(0x1f);
  }
  return h;
}

/// The strong, non-weak root an entity set routes by: follow the ISA
/// chain to the hierarchy root, then a weak set to its owner, repeatedly.
Result<std::string> AnchorOf(const ERSchema& schema, const std::string& name) {
  std::string current = name;
  // Bounded walk — a schema cycle would be a schema bug, not a hang.
  for (int step = 0; step < 64; ++step) {
    ERBIUM_ASSIGN_OR_RETURN(std::string root, schema.HierarchyRoot(current));
    const EntitySetDef* def = schema.FindEntitySet(root);
    if (def == nullptr) {
      return Status::Internal("anchor walk reached unknown entity set " +
                              root);
    }
    if (def->weak && !def->owner.empty()) {
      current = def->owner;
      continue;
    }
    return root;
  }
  return Status::InvalidArgument("anchor derivation did not converge for " +
                                 name + " (ownership cycle?)");
}

}  // namespace

const char* ShardRouteClassName(ShardRouteClass c) {
  switch (c) {
    case ShardRouteClass::kSingleShard:
      return "single-shard";
    case ShardRouteClass::kLocalJoin:
      return "shard-local";
    case ShardRouteClass::kScatterGather:
      return "scatter-gather";
  }
  return "unknown";
}

Result<CoPartitionMap> CoPartitionMap::Build(const ERSchema& schema,
                                             const MappingSpec& spec,
                                             int shards) {
  CoPartitionMap map;
  map.shards_ = shards < 1 ? 1 : shards;

  // Connected components over the same edge set the MVCC lock domains
  // use: ISA parent, weak -> owner, relationship -> both participants.
  UnionFind components;
  for (const std::string& name : schema.EntitySetNames()) {
    const EntitySetDef* def = schema.FindEntitySet(name);
    components.Find(name);
    if (!def->parent.empty()) components.Unite(name, def->parent);
    if (def->weak && !def->owner.empty()) components.Unite(name, def->owner);
  }
  for (const std::string& name : schema.RelationshipSetNames()) {
    const RelationshipSetDef* def = schema.FindRelationshipSet(name);
    components.Unite(name, def->left.entity);
    components.Unite(name, def->right.entity);
  }
  // Stable component ids: sorted roots, so ids don't depend on hash
  // iteration order.
  std::map<std::string, int> component_ids;
  for (const std::string& name : components.Names()) {
    component_ids.emplace(components.Find(name), 0);
  }
  int next_id = 0;
  for (auto& [root, id] : component_ids) id = next_id++;

  for (const std::string& name : schema.EntitySetNames()) {
    EntityPlacement placement;
    ERBIUM_ASSIGN_OR_RETURN(placement.anchor, AnchorOf(schema, name));
    ERBIUM_ASSIGN_OR_RETURN(std::vector<std::string> anchor_key,
                            schema.FullKey(placement.anchor));
    ERBIUM_ASSIGN_OR_RETURN(std::vector<std::string> full_key,
                            schema.FullKey(name));
    if (full_key.size() < anchor_key.size()) {
      return Status::Internal("full key of " + name +
                              " shorter than its anchor's (" +
                              placement.anchor + ")");
    }
    placement.routing_attrs.assign(full_key.begin(),
                                   full_key.begin() + anchor_key.size());
    placement.component = component_ids[components.Find(name)];
    map.entities_.emplace(name, std::move(placement));
  }

  for (const std::string& name : schema.RelationshipSetNames()) {
    const RelationshipSetDef* def = schema.FindRelationshipSet(name);
    RelationshipPlacement placement;
    // Under foreign-key storage the edge is folded into the many side's
    // segment rows, so the many side must route it; join-table edges are
    // free-standing and default to the left participant.
    if (spec.relationship_storage(*def) == RelationshipStorage::kForeignKey) {
      placement.dominant_entity = def->many_side().entity;
      placement.dominant_is_left = &def->many_side() == &def->left;
    } else {
      placement.dominant_entity = def->left.entity;
      placement.dominant_is_left = true;
    }
    placement.component = component_ids[components.Find(name)];
    map.relationships_.emplace(name, std::move(placement));
  }
  return map;
}

const EntityPlacement* CoPartitionMap::entity(const std::string& name) const {
  auto it = entities_.find(name);
  return it == entities_.end() ? nullptr : &it->second;
}

const RelationshipPlacement* CoPartitionMap::relationship(
    const std::string& name) const {
  auto it = relationships_.find(name);
  return it == relationships_.end() ? nullptr : &it->second;
}

bool CoPartitionMap::CoAnchored(const std::string& a,
                                const std::string& b) const {
  const EntityPlacement* pa = entity(a);
  const EntityPlacement* pb = entity(b);
  return pa != nullptr && pb != nullptr && pa->anchor == pb->anchor;
}

int CoPartitionMap::RouteValues(
    const std::vector<Value>& routing_values) const {
  if (shards_ <= 1) return 0;
  return static_cast<int>(HashRoutingValues(routing_values) %
                          static_cast<uint64_t>(shards_));
}

Result<int> CoPartitionMap::RouteKey(const std::string& entity_name,
                                     const IndexKey& full_key) const {
  const EntityPlacement* placement = entity(entity_name);
  if (placement == nullptr) {
    return Status::NotFound("no placement for entity set " + entity_name);
  }
  if (full_key.size() < placement->routing_attrs.size()) {
    return Status::InvalidArgument(
        "key for " + entity_name + " has " +
        std::to_string(full_key.size()) + " values; routing needs " +
        std::to_string(placement->routing_attrs.size()));
  }
  std::vector<Value> routing(full_key.begin(),
                             full_key.begin() + placement->routing_attrs.size());
  return RouteValues(routing);
}

Result<int> CoPartitionMap::RouteEntityValue(const std::string& entity_name,
                                             const Value& fields) const {
  const EntityPlacement* placement = entity(entity_name);
  if (placement == nullptr) {
    return Status::NotFound("no placement for entity set " + entity_name);
  }
  if (fields.kind() != TypeKind::kStruct) {
    return Status::InvalidArgument("entity value for " + entity_name +
                                   " is not a struct");
  }
  std::vector<Value> routing;
  routing.reserve(placement->routing_attrs.size());
  for (const std::string& attr : placement->routing_attrs) {
    const Value* found = nullptr;
    for (const auto& [name, value] : fields.struct_fields()) {
      if (name == attr) {
        found = &value;
        break;
      }
    }
    if (found == nullptr || found->is_null()) {
      return Status::InvalidArgument("entity value for " + entity_name +
                                     " is missing routing attribute " + attr);
    }
    routing.push_back(*found);
  }
  return RouteValues(routing);
}

Result<int> CoPartitionMap::RouteRelationship(const std::string& rel,
                                              const IndexKey& left_key,
                                              const IndexKey& right_key) const {
  const RelationshipPlacement* placement = relationship(rel);
  if (placement == nullptr) {
    return Status::NotFound("no placement for relationship set " + rel);
  }
  return RouteKey(placement->dominant_entity,
                  placement->dominant_is_left ? left_key : right_key);
}

Status ValidateShardable(const ERSchema& schema, const MappingSpec& spec,
                         int shards) {
  if (shards <= 1) return Status::OK();
  for (const std::string& name : schema.RelationshipSetNames()) {
    const RelationshipSetDef* def = schema.FindRelationshipSet(name);
    RelationshipStorage storage = spec.relationship_storage(*def);
    if (storage == RelationshipStorage::kMaterializedJoin ||
        storage == RelationshipStorage::kFactorized) {
      return Status::InvalidArgument(
          "relationship " + name +
          " uses fused storage (materialized join / factorized), which "
          "stores both endpoints together; hash co-partitioning places the "
          "endpoints on different shards — remap it to a join table or "
          "foreign key before sharding");
    }
  }
  return Status::OK();
}

int ShardCountFromEnv() {
  const char* s = std::getenv("ERBIUM_SHARDS");
  if (s == nullptr || *s == '\0') return 1;
  errno = 0;
  char* end = nullptr;
  long parsed = std::strtol(s, &end, 10);
  bool unparseable = end == s || *end != '\0' || errno == ERANGE ||
                     parsed > INT_MAX || parsed < INT_MIN;
  if (unparseable || parsed < 1) {
    static std::once_flag warned;
    std::call_once(warned, [s] {
      std::fprintf(stderr,
                   "erbium: ignoring invalid ERBIUM_SHARDS='%s' (want an "
                   "integer >= 1); running unsharded\n",
                   s);
    });
    return 1;
  }
  return static_cast<int>(parsed);
}

}  // namespace shard
}  // namespace erbium
