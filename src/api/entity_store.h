#ifndef ERBIUM_API_ENTITY_STORE_H_
#define ERBIUM_API_ENTITY_STORE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "mapping/database.h"

namespace erbium {

/// Renders a Value as JSON (structs as objects, arrays as arrays, string
/// escaping per RFC 8259). The serialization layer of the paper's
/// RESTful API plans (Section 5) without the network stack.
std::string ToJson(const Value& v);

/// Entity-centric application-facing facade (paper Figure 3's API layer):
/// nested-document CRUD over the E/R model plus the data-governance
/// operations of Section 1.1(2) — PII tagging, subject export (GDPR
/// access requests), and subject erasure (GDPR deletion) — which are
/// single calls here because the model is entity-centric, independent of
/// how many physical tables the mapping spread the data over.
class EntityStore {
 public:
  explicit EntityStore(MappedDatabase* db) : db_(db) {}

  // ---- CRUD -------------------------------------------------------------

  /// Inserts an entity given as a nested struct (multi-valued attributes
  /// as arrays, composites as structs; weak entities include the owner
  /// key fields).
  Status Put(const std::string& class_name, const Value& entity);

  /// The entity's attributes as a struct (includes "_class").
  Result<Value> Get(const std::string& class_name, const IndexKey& key);

  /// Like Get, but with owned weak entities nested as arrays of structs
  /// and relationship partners listed per relationship (one hop).
  Result<Value> GetExpanded(const std::string& class_name,
                            const IndexKey& key);

  Result<std::string> GetJson(const std::string& class_name,
                              const IndexKey& key);

  Status Delete(const std::string& class_name, const IndexKey& key);

  // ---- Governance --------------------------------------------------------

  /// Attributes visible on the class that are tagged PII (inherited
  /// attributes included).
  Result<std::vector<std::string>> PiiAttributes(
      const std::string& class_name) const;

  /// GDPR access request: everything held about the subject — the
  /// expanded entity plus PII annotations.
  Result<Value> ExportSubject(const std::string& class_name,
                              const IndexKey& key);

  /// GDPR erasure: removes the entity, its weak entities, and all its
  /// relationship instances in one entity-centric operation.
  Status EraseSubject(const std::string& class_name, const IndexKey& key);

  /// Returns a copy of an entity struct with PII attribute values
  /// replaced by null (for non-privileged consumers).
  Result<Value> Redact(const std::string& class_name,
                       const Value& entity) const;

 private:
  MappedDatabase* db_;
};

}  // namespace erbium

#endif  // ERBIUM_API_ENTITY_STORE_H_
