#include "api/entity_store.h"

#include <algorithm>
#include <set>

namespace erbium {

namespace {

void AppendJsonEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void ToJsonRec(const Value& v, std::string* out) {
  switch (v.kind()) {
    case TypeKind::kNull:
      *out += "null";
      return;
    case TypeKind::kBool:
      *out += v.as_bool() ? "true" : "false";
      return;
    case TypeKind::kInt64:
      *out += std::to_string(v.as_int64());
      return;
    case TypeKind::kFloat64: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", v.as_float64());
      *out += buf;
      return;
    }
    case TypeKind::kString:
      AppendJsonEscaped(v.as_string(), out);
      return;
    case TypeKind::kArray: {
      out->push_back('[');
      const Value::ArrayData& elements = v.array();
      for (size_t i = 0; i < elements.size(); ++i) {
        if (i > 0) out->push_back(',');
        ToJsonRec(elements[i], out);
      }
      out->push_back(']');
      return;
    }
    case TypeKind::kStruct: {
      out->push_back('{');
      const Value::StructData& fields = v.struct_fields();
      for (size_t i = 0; i < fields.size(); ++i) {
        if (i > 0) out->push_back(',');
        AppendJsonEscaped(fields[i].first, out);
        out->push_back(':');
        ToJsonRec(fields[i].second, out);
      }
      out->push_back('}');
      return;
    }
  }
}

}  // namespace

std::string ToJson(const Value& v) {
  std::string out;
  ToJsonRec(v, &out);
  return out;
}

Status EntityStore::Put(const std::string& class_name, const Value& entity) {
  return db_->InsertEntity(class_name, entity);
}

Result<Value> EntityStore::Get(const std::string& class_name,
                               const IndexKey& key) {
  return db_->GetEntity(class_name, key);
}

Result<Value> EntityStore::GetExpanded(const std::string& class_name,
                                       const IndexKey& key) {
  ERBIUM_ASSIGN_OR_RETURN(Value base, db_->GetEntity(class_name, key));
  ERBIUM_ASSIGN_OR_RETURN(std::string specific,
                          db_->SpecificClassOf(class_name, key));
  Value::StructData fields = base.struct_fields();
  const ERSchema& schema = db_->schema();
  ERBIUM_ASSIGN_OR_RETURN(std::vector<std::string> chain,
                          schema.AncestryChain(specific));

  // Owned weak entities, nested as arrays of their attribute structs.
  for (const std::string& cls : chain) {
    for (const std::string& weak : schema.WeakEntitiesOwnedBy(cls)) {
      ERBIUM_ASSIGN_OR_RETURN(std::vector<AttributeDef> weak_attrs,
                              schema.AllAttributes(weak));
      ERBIUM_ASSIGN_OR_RETURN(std::vector<std::string> weak_key_names,
                              schema.FullKey(weak));
      std::vector<std::string> attr_names;
      for (const AttributeDef& attr : weak_attrs) {
        bool is_key =
            std::find(weak_key_names.begin(), weak_key_names.end(),
                      attr.name) != weak_key_names.end();
        if (!is_key) attr_names.push_back(attr.name);
      }
      ERBIUM_ASSIGN_OR_RETURN(OperatorPtr scan,
                              db_->ScanEntity(weak, attr_names));
      ERBIUM_ASSIGN_OR_RETURN(std::vector<Row> rows, CollectRows(scan.get()));
      ERBIUM_ASSIGN_OR_RETURN(std::vector<Column> owner_key,
                              db_->mapping().KeyColumns(cls));
      Value::ArrayData nested;
      for (const Row& row : rows) {
        bool owned = true;
        for (size_t i = 0; i < key.size() && i < owner_key.size(); ++i) {
          if (row[i] != key[i]) {
            owned = false;
            break;
          }
        }
        if (!owned) continue;
        Value::StructData weak_fields;
        ERBIUM_ASSIGN_OR_RETURN(std::vector<std::string> weak_key,
                                schema.FullKey(weak));
        for (size_t i = 0; i < weak_key.size(); ++i) {
          weak_fields.emplace_back(weak_key[i], row[i]);
        }
        for (size_t i = 0; i < attr_names.size(); ++i) {
          weak_fields.emplace_back(attr_names[i], row[weak_key.size() + i]);
        }
        nested.push_back(Value::Struct(std::move(weak_fields)));
      }
      fields.emplace_back(weak, Value::Array(std::move(nested)));
    }
  }

  // One-hop relationship partners.
  for (const std::string& rel_name : schema.RelationshipSetNames()) {
    const RelationshipSetDef* rel = schema.FindRelationshipSet(rel_name);
    for (bool left : {true, false}) {
      const Participant& self = left ? rel->left : rel->right;
      const Participant& other = left ? rel->right : rel->left;
      bool participates = false;
      for (const std::string& cls : chain) {
        if (cls == self.entity ||
            schema.IsSelfOrDescendant(cls, self.entity)) {
          participates = true;
        }
      }
      if (!participates) continue;
      ERBIUM_ASSIGN_OR_RETURN(std::vector<Column> self_key,
                              db_->mapping().KeyColumns(self.entity));
      if (self_key.size() != key.size()) continue;
      ERBIUM_ASSIGN_OR_RETURN(std::vector<Column> other_key,
                              db_->mapping().KeyColumns(other.entity));
      ERBIUM_ASSIGN_OR_RETURN(OperatorPtr scan,
                              db_->ScanRelationship(rel_name));
      ERBIUM_ASSIGN_OR_RETURN(std::vector<Row> rows, CollectRows(scan.get()));
      size_t left_size = left ? self_key.size() : other_key.size();
      Value::ArrayData partners;
      for (const Row& row : rows) {
        size_t base_offset = left ? 0 : left_size;
        bool match = true;
        for (size_t i = 0; i < key.size(); ++i) {
          if (row[base_offset + i] != key[i]) {
            match = false;
            break;
          }
        }
        if (!match) continue;
        Value::StructData partner;
        size_t other_offset = left ? left_size : 0;
        for (size_t i = 0; i < other_key.size(); ++i) {
          partner.emplace_back(other_key[i].name, row[other_offset + i]);
        }
        size_t attrs_offset = self_key.size() + other_key.size();
        for (size_t i = 0; i < rel->attributes.size(); ++i) {
          partner.emplace_back(rel->attributes[i].name,
                               row[attrs_offset + i]);
        }
        partners.push_back(Value::Struct(std::move(partner)));
      }
      std::string field_name = rel_name + "." + other.role;
      fields.emplace_back(field_name, Value::Array(std::move(partners)));
    }
  }
  return Value::Struct(std::move(fields));
}

Result<std::string> EntityStore::GetJson(const std::string& class_name,
                                         const IndexKey& key) {
  ERBIUM_ASSIGN_OR_RETURN(Value entity, GetExpanded(class_name, key));
  return ToJson(entity);
}

Status EntityStore::Delete(const std::string& class_name,
                           const IndexKey& key) {
  return db_->DeleteEntity(class_name, key);
}

Result<std::vector<std::string>> EntityStore::PiiAttributes(
    const std::string& class_name) const {
  ERBIUM_ASSIGN_OR_RETURN(std::vector<AttributeDef> attrs,
                          db_->schema().AllAttributes(class_name));
  std::vector<std::string> out;
  for (const AttributeDef& attr : attrs) {
    if (attr.pii) out.push_back(attr.name);
  }
  return out;
}

Result<Value> EntityStore::ExportSubject(const std::string& class_name,
                                         const IndexKey& key) {
  ERBIUM_ASSIGN_OR_RETURN(Value expanded, GetExpanded(class_name, key));
  ERBIUM_ASSIGN_OR_RETURN(std::string specific,
                          db_->SpecificClassOf(class_name, key));
  ERBIUM_ASSIGN_OR_RETURN(std::vector<std::string> pii,
                          PiiAttributes(specific));
  Value::StructData out;
  out.emplace_back("subject", std::move(expanded));
  Value::ArrayData pii_names;
  for (const std::string& name : pii) {
    pii_names.push_back(Value::String(name));
  }
  out.emplace_back("pii_attributes", Value::Array(std::move(pii_names)));
  return Value::Struct(std::move(out));
}

Status EntityStore::EraseSubject(const std::string& class_name,
                                 const IndexKey& key) {
  return db_->DeleteEntity(class_name, key);
}

Result<Value> EntityStore::Redact(const std::string& class_name,
                                  const Value& entity) const {
  ERBIUM_ASSIGN_OR_RETURN(std::vector<std::string> pii,
                          PiiAttributes(class_name));
  std::set<std::string> pii_set(pii.begin(), pii.end());
  if (entity.kind() != TypeKind::kStruct) {
    return Status::InvalidArgument("entity value must be a struct");
  }
  Value::StructData fields = entity.struct_fields();
  for (auto& [name, value] : fields) {
    if (pii_set.count(name) > 0) value = Value::Null();
  }
  return Value::Struct(std::move(fields));
}

}  // namespace erbium
