#ifndef ERBIUM_API_STATEMENT_RUNNER_H_
#define ERBIUM_API_STATEMENT_RUNNER_H_

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "durability/durable_db.h"
#include "er/er_schema.h"
#include "erql/plan_cache.h"
#include "erql/query_engine.h"
#include "mapping/database.h"
#include "mapping/mapping_spec.h"
#include "shard/router.h"

namespace erbium {
namespace api {

/// How a statement's output should be rendered by a text front end. The
/// numeric values travel over the server wire protocol — stable, append
/// only.
enum class OutputShape : uint8_t {
  kMessage = 0,  // a one-line acknowledgement (CREATE, INSERT, REMAP, ...)
  kTable = 1,    // result rows as a bordered table (SELECT, SHOW)
  kLines = 2,    // one-column plain lines (EXPLAIN, TRACE, CHECKPOINT)
};

/// The result of one statement: either an acknowledgement message or a
/// materialized QueryResult plus how to render it.
struct StatementOutcome {
  OutputShape shape = OutputShape::kMessage;
  std::string message;        // kMessage: the acknowledgement text
  erql::QueryResult result;   // kTable / kLines: the rows
  /// Shard the statement resolved to on a sharded runner: the routed
  /// shard of an INSERT, or a single-shard SELECT's target. -1 for
  /// broadcast/structural statements and unsharded runners.
  int shard = -1;
};

/// The statement-dispatch core shared by the interactive shell and the
/// network server: one object owning the database state (in-memory or
/// durable) and one Execute() entry point for every statement the system
/// understands —
///
///   CREATE ...                      DDL (rebuilds the database, migrates)
///   INSERT <Entity> (a = 1, ...)    one entity instance
///   REMAP <preset>                  switch mapping preset (m1..m6, m6pg)
///   ATTACH DATABASE '<dir>'         bind to disk (recovery + WAL)
///   CHECKPOINT                      snapshot + WAL truncate
///   SELECT / EXPLAIN [ANALYZE] / SHOW ... / TRACE ...
///   ADVISE [LIMIT n]                rank candidate mappings by captured traffic
///   EXPORT WORKLOAD INTO '<file>'   snapshot the workload profile as JSON
///   LOAD WORKLOAD FROM '<file>'     replace the profile from a snapshot
///
/// Concurrency: Execute() classifies the statement into three lock
/// classes —
///   - Reads (SELECT / EXPLAIN / SHOW / TRACE / ADVISE / EXPORT) take the
///     statement lock shared and execute against pinned immutable
///     versions (exec::ReadSnapshot): they never block behind writers and
///     never observe a half-applied mutation.
///   - CRUD (INSERT, and LOAD WORKLOAD) also takes the lock *shared*:
///     writers serialize against each other per entity-set/relationship-
///     set inside MappedDatabase (lock domains), not through this lock,
///     so writers to unrelated schema parts run in parallel with each
///     other and with all readers.
///   - Structural statements (CREATE / REMAP / ATTACH, and anything
///     unrecognized) take the lock exclusively: they replace the physical
///     database, so every other statement drains first.
/// CHECKPOINT is its own dance: pin versions under a brief exclusive
/// barrier (the only exclusive moment), then write the snapshot and
/// finish (rename + WAL compaction) under shared locks — reads and CRUD
/// proceed for the whole disk phase, so reads no longer stall for the
/// duration of the snapshot write.
class StatementRunner {
 public:
  struct Options {
    MappingSpec spec = MappingSpec::Normalized("m1");
    /// Preload the paper's Figure 4 schema and synthetic data.
    bool figure4 = false;
    int figure4_num_r = 1000;
    int figure4_num_s = 300;
    /// When non-empty, ATTACH DATABASE to this directory at startup.
    std::string attach_dir;
    durability::WalWriter::SyncMode sync =
        durability::WalWriter::SyncMode::kNone;
    /// Prepared-statement plan cache capacity (distinct normalized
    /// SELECT texts); 0 disables caching entirely.
    size_t plan_cache_capacity = 1024;
    /// Crash/gate hooks passed through to the durable database on
    /// ATTACH; not owned, may be null. For the fault-injection tests.
    durability::FaultInjector* faults = nullptr;
    /// Number of intra-process shards. 1 (the default) is the classic
    /// single-database engine. At N > 1 entity sets are hash-partitioned
    /// by their anchor key across N databases (shard/co_partition.h):
    /// INSERTs route to one shard, SELECTs compile to single-shard,
    /// shard-local, or scatter-gather plans, and structural statements
    /// (CREATE / REMAP / ATTACH / CHECKPOINT) fan out to every shard
    /// under the exclusive statement class. Hosts usually fill this from
    /// shard::ShardCountFromEnv() or a --shards flag. Values < 1 are
    /// treated as 1.
    int shards = 1;
  };

  /// Lock class of a statement (see the class comment): reads and CRUD
  /// run shared, structural statements exclusive.
  enum class StatementClass { kRead, kCrud, kExclusive };
  /// Classification by leading keyword — insensitive to case and to any
  /// leading whitespace (spaces, tabs, newlines). Unknown statements
  /// classify as exclusive (they fail under the exclusive lock, which is
  /// always safe).
  static StatementClass Classify(const std::string& statement);

  static Result<std::unique_ptr<StatementRunner>> Create(Options options);

  /// Runs one statement (no trailing ';' required) under the statement
  /// lock and returns its outcome. Statement failures are returned as
  /// error Status — the runner stays usable.
  Result<StatementOutcome> Execute(const std::string& statement);

  /// Switches the mapping preset (m1..m6, m6pg), migrating data. Takes
  /// the exclusive lock; equivalent to Execute("REMAP <name>").
  Status RemapPreset(const std::string& name);

  /// Final CHECKPOINT for graceful shutdown; a no-op when no database is
  /// attached. Takes the exclusive lock.
  Status FinalCheckpoint();

  /// The preset specs selectable by REMAP. Unknown names yield m1.
  static MappingSpec PresetByName(const std::string& name);

  // ---- Unlocked introspection ----------------------------------------------
  // For single-threaded hosts (the shell's backslash commands). Callers
  // must not run concurrent statements around these — a debug-build
  // assert (WriterCheck-style: abort loudly, never corrupt silently)
  // fires if any statement is in flight when one is called.
  MappedDatabase* db() {
    AssertQuiescent("db()");
    return current_db();
  }
  const ERSchema* SchemaView() const {
    AssertQuiescent("SchemaView()");
    return current_schema();
  }
  durability::DurableDatabase* durable() {
    AssertQuiescent("durable()");
    return durable_.get();
  }
  bool attached() const { return durable_ != nullptr; }
  const MappingSpec& spec() const { return spec_; }
  int shards() const { return shards_; }

  /// The prepared-statement plan cache (null when disabled) and the
  /// mapping generation its entries are keyed by. The generation counts
  /// every rebuild of the underlying database — DDL, REMAP, ATTACH —
  /// i.e. every event that dangles a compiled plan's Table bindings.
  erql::PlanCache* plan_cache() { return plan_cache_.get(); }
  uint64_t mapping_generation() const {
    return mapping_generation_.load(std::memory_order_relaxed);
  }

 private:
  StatementRunner() = default;

  /// In-flight statement accounting for the debug asserts above. Scoped
  /// inside Execute's lock acquisition.
  struct StatementScope {
    explicit StatementScope(StatementRunner* r) : runner(r) {
      runner->active_statements_.fetch_add(1, std::memory_order_relaxed);
    }
    ~StatementScope() {
      runner->active_statements_.fetch_sub(1, std::memory_order_relaxed);
    }
    StatementScope(const StatementScope&) = delete;
    StatementScope& operator=(const StatementScope&) = delete;
    StatementRunner* runner;
  };

  /// Aborts (debug builds) when a statement is in flight: the unlocked
  /// introspection accessors are only safe on a quiescent runner.
  void AssertQuiescent(const char* what) const;

  /// Accessors for statement-execution paths (which legitimately run
  /// with active_statements_ > 0).
  MappedDatabase* current_db() {
    return durable_ ? durable_->db() : db_.get();
  }
  const ERSchema* current_schema() const {
    return durable_ ? &durable_->schema() : schema_.get();
  }

  Result<StatementOutcome> ExecuteClassified(const std::string& statement,
                                             StatementClass cls);
  /// The CHECKPOINT lock dance (see the class comment): exclusive
  /// prepare, shared snapshot write, shared finish.
  Result<StatementOutcome> CheckpointStatement();
  /// ADVISE [LIMIT n]: feeds the captured workload profile through
  /// MappingAdvisor against live data and renders the ranked candidates.
  /// Runs under the shared lock — candidate databases are populated by
  /// *reading* the live one via evolution::MigrateData.
  Result<StatementOutcome> AdviseLocked(const std::string& statement);
  Result<StatementOutcome> CreateLocked(const std::string& statement);
  Result<StatementOutcome> InsertLocked(const std::string& statement);
  Result<StatementOutcome> RemapLocked(const std::string& statement);
  Result<StatementOutcome> AttachLocked(const std::string& statement);
  /// SHOW SHARDS: one row per shard with its insert counter and (when
  /// attached) WAL/snapshot state. Works at shards == 1 too.
  Result<StatementOutcome> ShowShardsLocked();
  Status AttachDir(const std::string& dir, std::string* message);
  Status RemapSpec(const MappingSpec& next);

  /// Re-creates the database under `next_schema` (a separate object —
  /// the old instance keeps reading the old schema while data migrates)
  /// and the current spec, then swaps the schema in. Pass the existing
  /// schema for a pure remap.
  Status Rebuild(std::shared_ptr<ERSchema> next_schema);

  // ---- Sharding ------------------------------------------------------------
  /// The shard-k database (shard 0 is db_/durable_; shards 1..N-1 live
  /// in shard_dbs_ or shard_durables_ depending on attach state).
  MappedDatabase* shard_db(int k) {
    if (k == 0) return current_db();
    if (durable_ != nullptr) return shard_durables_[k - 1]->db();
    return shard_dbs_[k - 1].get();
  }
  durability::DurableDatabase* shard_durable(int k) {
    return k == 0 ? durable_.get() : shard_durables_[k - 1].get();
  }
  /// Rebuilds the router + plan context from the current schema/spec and
  /// the live shard databases, then marks the context ready. Must run
  /// under the exclusive statement lock (or before the runner is
  /// shared), after every event that replaces any shard's database.
  Status RefreshShardContext();
  /// The cross-shard existence probe installed on shard `self`'s
  /// database(s): trusts (returns true) while the shard context is not
  /// ready — during recovery, migration, and mid-fan-out rebuilds,
  /// sibling pointers may dangle — and otherwise routes the key and
  /// probes the owning sibling with a versioned read.
  MappedDatabase::RemoteEntityCheck MakeRemoteCheck(int self);

  /// Advances the mapping generation and purges now-stale cached plans.
  /// Must be called with the exclusive statement lock held (or before
  /// the runner is shared), after any rebuild of the database object.
  void BumpMappingGeneration();

  /// Shared/exclusive statement lock (see class comment).
  std::shared_mutex statement_mu_;
  /// Serializes whole CHECKPOINT statements (all three phases): without
  /// it, concurrent CHECKPOINTs would race PrepareCheckpoint and the
  /// losers would fail with "already in progress" instead of queueing.
  /// Always acquired before statement_mu_.
  std::mutex checkpoint_mu_;

  std::shared_ptr<ERSchema> schema_ = std::make_shared<ERSchema>();
  std::unique_ptr<MappedDatabase> db_;
  std::unique_ptr<durability::DurableDatabase> durable_;
  /// Shards 1..N-1 (shard 0 stays in db_/durable_ so every existing
  /// single-shard code path is untouched at shards_ == 1). Exactly one
  /// of the two vectors is populated, mirroring db_ vs durable_.
  int shards_ = 1;
  std::vector<std::unique_ptr<MappedDatabase>> shard_dbs_;
  std::vector<std::unique_ptr<durability::DurableDatabase>> shard_durables_;
  /// Routing state, rebuilt under the exclusive lock on every schema or
  /// mapping change. shard_ctx_ready_ gates every consumer: readers and
  /// INSERT routing fail closed, and the remote-entity probes fall back
  /// to trusting while a structural statement is mid-flight (when
  /// sibling database pointers may dangle).
  std::unique_ptr<shard::ShardRouter> router_;
  shard::ShardPlanContext shard_ctx_;
  std::atomic<bool> shard_ctx_ready_{false};
  MappingSpec spec_ = MappingSpec::Normalized("m1");
  durability::WalWriter::SyncMode sync_ =
      durability::WalWriter::SyncMode::kNone;
  durability::FaultInjector* faults_ = nullptr;
  /// Every DDL statement executed so far; an ATTACH seeds the durable
  /// database's schema with it.
  std::string ddl_history_;

  /// Prepared-statement support: compiled SELECT plans keyed by
  /// (normalized text, mapping_generation_). Readers check plans out
  /// under the shared lock; DDL/REMAP/ATTACH bump the generation under
  /// the exclusive lock, so a stale plan can never execute.
  std::unique_ptr<erql::PlanCache> plan_cache_;
  std::atomic<uint64_t> mapping_generation_{1};
  /// Statements currently inside Execute (any lock class); the unlocked
  /// introspection accessors assert this is zero in debug builds.
  mutable std::atomic<int> active_statements_{0};
};

}  // namespace api
}  // namespace erbium

#endif  // ERBIUM_API_STATEMENT_RUNNER_H_
