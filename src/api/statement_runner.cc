#include "api/statement_runner.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <numeric>
#include <utility>
#include <vector>

#include "common/lexer.h"
#include "er/ddl_parser.h"
#include "mapping/advisor.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/workload_profile.h"
#include "erql/parser.h"
#include "evolution/evolution.h"
#include "workload/figure4.h"

namespace erbium {
namespace api {

namespace {

/// Leading keyword of a statement, lowercased ("" when none). Skips any
/// leading whitespace — including newlines and vertical whitespace — so
/// "  \n select" classifies exactly like "SELECT".
std::string LeadingKeyword(const std::string& statement) {
  size_t begin = 0;
  while (begin < statement.size() &&
         std::isspace(static_cast<unsigned char>(statement[begin]))) {
    ++begin;
  }
  std::string word;
  for (size_t i = begin; i < statement.size(); ++i) {
    char c = statement[i];
    if (!std::isalpha(static_cast<unsigned char>(c))) break;
    word.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return word;
}

/// Second keyword of a statement, lowercased ("" when none) — used to
/// spot SHOW SHARDS, which the runner answers itself (the query engine
/// has no notion of the shard set).
std::string SecondKeyword(const std::string& statement) {
  size_t i = 0;
  auto skip_space = [&] {
    while (i < statement.size() &&
           std::isspace(static_cast<unsigned char>(statement[i]))) {
      ++i;
    }
  };
  auto skip_word = [&] {
    while (i < statement.size() &&
           std::isalpha(static_cast<unsigned char>(statement[i]))) {
      ++i;
    }
  };
  skip_space();
  skip_word();
  skip_space();
  std::string word;
  for (; i < statement.size(); ++i) {
    char c = statement[i];
    if (!std::isalpha(static_cast<unsigned char>(c))) break;
    word.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return word;
}

obs::Counter ShardCounter(const std::string& name) {
  return obs::MetricsRegistry::Global().counter(name);
}

std::string ShardInsertCounterName(int shard) {
  return "shard." + std::to_string(shard) + ".inserts";
}

std::string ShardManifestPath(const std::string& dir) {
  return dir + "/SHARDS";
}

std::string ShardDirPath(const std::string& dir, int shard) {
  return dir + "/shard-" + std::to_string(shard);
}

}  // namespace

StatementRunner::StatementClass StatementRunner::Classify(
    const std::string& statement) {
  std::string word = LeadingKeyword(statement);
  if (word == "select" || word == "explain" || word == "show" ||
      word == "trace" || word == "advise" || word == "export") {
    // ADVISE and EXPORT WORKLOAD only *read* the database (candidate
    // databases are populated by scanning the live one) and the workload
    // profile is internally synchronized, so both run shared.
    return StatementClass::kRead;
  }
  if (word == "insert" || word == "load" || word == "checkpoint") {
    // INSERT serializes per lock domain inside MappedDatabase — the
    // statement lock is only held shared so structural statements can
    // drain it. LOAD WORKLOAD replaces the internally synchronized
    // profile. CHECKPOINT spends almost all its time in the shared
    // snapshot-write phase (Execute routes it through its own
    // three-phase dance).
    return StatementClass::kCrud;
  }
  return StatementClass::kExclusive;
}

MappingSpec StatementRunner::PresetByName(const std::string& name) {
  if (name == "m2") return Figure4M2();
  if (name == "m3") return Figure4M3();
  if (name == "m4") return Figure4M4();
  if (name == "m5") return Figure4M5();
  if (name == "m6") return Figure4M6();
  if (name == "m6pg") return Figure4M6Pg();
  return MappingSpec::Normalized("m1");
}

Result<std::unique_ptr<StatementRunner>> StatementRunner::Create(
    Options options) {
  std::unique_ptr<StatementRunner> runner(new StatementRunner());
  runner->spec_ = std::move(options.spec);
  runner->sync_ = options.sync;
  runner->faults_ = options.faults;
  runner->shards_ = std::max(1, options.shards);
  if (options.plan_cache_capacity > 0) {
    runner->plan_cache_ =
        std::make_unique<erql::PlanCache>(options.plan_cache_capacity);
  }
  if (options.figure4) {
    ERBIUM_ASSIGN_OR_RETURN(ERSchema schema, MakeFigure4Schema());
    *runner->schema_ = std::move(schema);
    runner->ddl_history_ = Figure4Ddl();
  }
  ERBIUM_RETURN_NOT_OK(runner->Rebuild(runner->schema_));
  // Register the shard metrics up front so /metrics and SHOW METRICS
  // expose the full set from the first scrape.
  obs::MetricsRegistry::Global().gauge("shard.count").Set(runner->shards_);
  for (int k = 0; k < runner->shards_; ++k) {
    ShardCounter(ShardInsertCounterName(k)).Increment(0);
  }
  if (runner->shards_ > 1) {
    for (const char* route :
         {"single-shard", "shard-local", "scatter-gather"}) {
      ShardCounter(std::string("shard.route.") + route).Increment(0);
    }
  }
  if (options.figure4) {
    Figure4Config config;
    config.num_r = options.figure4_num_r;
    config.num_s = options.figure4_num_s;
    if (runner->shards_ > 1) {
      // Route the generated stream: entities by anchor-key hash, edges to
      // their dominant participant's shard. The generator emits every
      // entity before any relationship, so the cross-shard existence
      // probes resolve against fully loaded siblings.
      StatementRunner* r = runner.get();
      Figure4Sinks sinks;
      sinks.insert_entity = [r](const std::string& cls,
                                Value fields) -> Status {
        ERBIUM_ASSIGN_OR_RETURN(int s, r->router_->RouteInsert(cls, fields));
        return r->shard_db(s)->InsertEntity(cls, fields);
      };
      sinks.insert_relationship = [r](const std::string& rel, IndexKey left,
                                      IndexKey right, Value attrs) -> Status {
        ERBIUM_ASSIGN_OR_RETURN(int s,
                                r->router_->RouteRelationship(rel, left, right));
        return r->shard_db(s)->InsertRelationship(rel, left, right, attrs);
      };
      ERBIUM_RETURN_NOT_OK(PopulateFigure4(sinks, config));
    } else {
      ERBIUM_RETURN_NOT_OK(PopulateFigure4(runner->db_.get(), config));
    }
  }
  if (!options.attach_dir.empty()) {
    std::string message;
    ERBIUM_RETURN_NOT_OK(runner->AttachDir(options.attach_dir, &message));
  }
  return runner;
}

Status StatementRunner::Rebuild(std::shared_ptr<ERSchema> next_schema) {
  if (shards_ <= 1) {
    auto fresh = MappedDatabase::Create(next_schema.get(), spec_);
    if (!fresh.ok()) return fresh.status();
    if (db_ != nullptr) {
      ERBIUM_RETURN_NOT_OK(evolution::MigrateData(db_.get(), fresh->get()));
    }
    db_ = std::move(fresh).value();
    schema_ = std::move(next_schema);
    return Status::OK();
  }
  // Fail before touching anything: a mapping whose relationship storage
  // fuses both endpoints into one structure cannot be hash-partitioned.
  ERBIUM_RETURN_NOT_OK(shard::ValidateShardable(*next_schema, spec_, shards_));
  // The post-rebuild routing. Entity placement is schema-derived, but
  // relationship edges follow their dominant participant — which the
  // mapping spec can flip — so migration below re-routes every instance
  // through this map instead of copying shard-by-shard in place.
  ERBIUM_ASSIGN_OR_RETURN(
      shard::CoPartitionMap next_map,
      shard::CoPartitionMap::Build(*next_schema, spec_, shards_));
  // Build every fresh shard first, then migrate, then swap — a failure
  // anywhere leaves the old databases fully intact.
  std::vector<std::unique_ptr<MappedDatabase>> fresh(shards_);
  for (int k = 0; k < shards_; ++k) {
    auto f = MappedDatabase::Create(next_schema.get(), spec_);
    if (!f.ok()) return f.status();
    fresh[k] = std::move(f).value();
    fresh[k]->set_remote_entity_check(MakeRemoteCheck(k));
  }
  // Sibling probes trust while the context is down (the fresh shards are
  // not published yet); migration replays an already-validated stream.
  shard_ctx_ready_.store(false, std::memory_order_release);
  Status migrated = [&]() -> Status {
    if (db_ == nullptr) return Status::OK();
    evolution::MigrateSinks sinks;
    sinks.dst_schema = next_schema.get();
    sinks.insert_entity = [&](const std::string& cls,
                              Value fields) -> Status {
      ERBIUM_ASSIGN_OR_RETURN(int s, next_map.RouteEntityValue(cls, fields));
      return fresh[s]->InsertEntity(cls, fields);
    };
    sinks.insert_relationship = [&](const std::string& rel, IndexKey left,
                                    IndexKey right, Value attrs) -> Status {
      ERBIUM_ASSIGN_OR_RETURN(int s,
                              next_map.RouteRelationship(rel, left, right));
      return fresh[s]->InsertRelationship(rel, left, right, attrs);
    };
    // All entities (from every shard) land before any edge: foreign-key
    // edge storage needs the dominant side's rows in place, and an
    // edge's new shard may receive its entities from a different old
    // shard than the edge itself.
    for (int k = 0; k < shards_; ++k) {
      ERBIUM_RETURN_NOT_OK(evolution::MigrateEntities(shard_db(k), sinks));
    }
    for (int k = 0; k < shards_; ++k) {
      ERBIUM_RETURN_NOT_OK(
          evolution::MigrateRelationships(shard_db(k), sinks));
    }
    return Status::OK();
  }();
  if (!migrated.ok()) return migrated;  // old shards intact; ctx still down
  db_ = std::move(fresh[0]);
  shard_dbs_.clear();
  for (int k = 1; k < shards_; ++k) shard_dbs_.push_back(std::move(fresh[k]));
  schema_ = std::move(next_schema);
  return RefreshShardContext();
}

Status StatementRunner::RefreshShardContext() {
  if (shards_ <= 1) return Status::OK();
  ERBIUM_ASSIGN_OR_RETURN(
      std::unique_ptr<shard::ShardRouter> router,
      shard::ShardRouter::Create(*current_schema(),
                                 durable_ != nullptr ? durable_->spec() : spec_,
                                 shards_));
  router_ = std::move(router);
  shard_ctx_.dbs.clear();
  for (int k = 0; k < shards_; ++k) shard_ctx_.dbs.push_back(shard_db(k));
  shard_ctx_.map = &router_->map();
  shard_ctx_ready_.store(true, std::memory_order_release);
  return Status::OK();
}

MappedDatabase::RemoteEntityCheck StatementRunner::MakeRemoteCheck(int self) {
  return [this, self](const std::string& entity,
                      const IndexKey& key) -> Result<bool> {
    if (!shard_ctx_ready_.load(std::memory_order_acquire)) {
      // Recovery replay, migration, and mid-fan-out rebuilds run before
      // the sibling set is (re)published — trust the logged/migrated
      // stream rather than probe through possibly dangling pointers.
      return true;
    }
    ERBIUM_ASSIGN_OR_RETURN(int target, router_->RouteKey(entity, key));
    if (target == self) return false;  // a local miss is a genuine miss
    // Versioned read on the sibling — takes no writer locks, so a
    // concurrent relationship insert on that shard cannot deadlock us.
    return shard_db(target)->EntityExists(entity, key);
  };
}

namespace {

/// Acquires a deferred statement lock, attributing any blocking to the
/// statement.lock_wait_us histogram. The uncontended path is try_lock
/// only — no clock reads — so the statement clock-read budget (4 per
/// statement, all in the server) survives this instrumentation.
template <typename Lock>
void AcquireStatementLock(Lock* lock) {
  if (lock->try_lock()) return;
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.counter("statement.lock_contended").Increment();
  uint64_t start = obs::MonotonicNowNs();
  lock->lock();
  static const std::vector<double>* bounds = new std::vector<double>{
      10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000,
      50000, 100000, 250000, 1e6};
  registry.histogram("statement.lock_wait_us", *bounds)
      .Observe(static_cast<double>(obs::MonotonicNowNs() - start) / 1e3);
}

}  // namespace

Result<StatementOutcome> StatementRunner::Execute(
    const std::string& statement) {
  StatementClass cls = Classify(statement);
  if (LeadingKeyword(statement) == "checkpoint") {
    // CHECKPOINT alternates lock modes across its three phases; it
    // cannot run under one scoped acquisition.
    return CheckpointStatement();
  }
  if (cls == StatementClass::kExclusive) {
    std::unique_lock<std::shared_mutex> lock(statement_mu_, std::defer_lock);
    AcquireStatementLock(&lock);
    StatementScope scope(this);
    return ExecuteClassified(statement, cls);
  }
  // Reads and CRUD both run shared: readers execute against pinned
  // versions, CRUD serializes per mapping lock domain underneath.
  std::shared_lock<std::shared_mutex> lock(statement_mu_, std::defer_lock);
  AcquireStatementLock(&lock);
  StatementScope scope(this);
  return ExecuteClassified(statement, cls);
}

Result<StatementOutcome> StatementRunner::ExecuteClassified(
    const std::string& statement, StatementClass cls) {
  std::string word = LeadingKeyword(statement);
  if (word == "create") return CreateLocked(statement);
  if (word == "insert") return InsertLocked(statement);
  if (word == "remap") return RemapLocked(statement);
  if (word == "attach") return AttachLocked(statement);
  if (word == "advise") return AdviseLocked(statement);
  if (word == "show" && SecondKeyword(statement) == "shards") {
    return ShowShardsLocked();
  }
  if (cls != StatementClass::kExclusive) {
    ExecOptions opts = ExecOptions::Default();
    if (shards_ > 1) {
      if (!shard_ctx_ready_.load(std::memory_order_acquire)) {
        return Status::Internal(
            "sharded engine is unavailable: a structural statement failed "
            "mid-fan-out and left the shard set inconsistent");
      }
      opts.shards = &shard_ctx_;
    }
    // Only plain SELECTs go through the plan cache; SHOW/EXPLAIN/TRACE
    // would only pollute the hit/miss metrics with guaranteed misses.
    erql::PlanCache* cache = word == "select" ? plan_cache_.get() : nullptr;
    ERBIUM_ASSIGN_OR_RETURN(
        erql::QueryResult result,
        erql::QueryEngine::Execute(current_db(), statement, opts, cache,
                                   mapping_generation()));
    StatementOutcome outcome;
    if (result.shard_count > 1) {
      // Per-route-class traffic counters (sharded SELECTs only; EXPLAIN
      // and TRACE results keep the default single-shard stamp).
      ShardCounter(std::string("shard.route.") +
                   shard::ShardRouteClassName(result.shard_route))
          .Increment();
      outcome.shard = result.shard_target;
    }
    // EXPLAIN / TRACE / EXPORT / LOAD output is plain lines; SELECT and
    // SHOW render as tables.
    outcome.shape = (word == "explain" || word == "trace" ||
                     word == "export" || word == "load")
                        ? OutputShape::kLines
                        : OutputShape::kTable;
    outcome.result = std::move(result);
    return outcome;
  }
  return Status::InvalidArgument(
      "unsupported statement '" + word +
      "': expected CREATE / INSERT / REMAP / ATTACH DATABASE / CHECKPOINT / "
      "SELECT / EXPLAIN [ANALYZE] / SHOW / TRACE / ADVISE / "
      "EXPORT WORKLOAD / LOAD WORKLOAD");
}

Result<StatementOutcome> StatementRunner::CreateLocked(
    const std::string& statement) {
  if (durable_ != nullptr) {
    if (shards_ > 1) {
      // Validate the post-DDL schema on a scratch copy before any shard
      // commits it — parse errors and unshardable shapes must not leave
      // the shards' logs disagreeing.
      auto next = std::make_shared<ERSchema>(*current_schema());
      ERBIUM_RETURN_NOT_OK(DdlParser::Execute(statement + ";", next.get()));
      ERBIUM_RETURN_NOT_OK(
          shard::ValidateShardable(*next, durable_->spec(), shards_));
      shard_ctx_ready_.store(false, std::memory_order_release);
      for (int k = 0; k < shards_; ++k) {
        ERBIUM_RETURN_NOT_OK(shard_durable(k)->ExecuteDdl(statement + ";"));
      }
      ERBIUM_RETURN_NOT_OK(RefreshShardContext());
    } else {
      ERBIUM_RETURN_NOT_OK(durable_->ExecuteDdl(statement + ";"));
    }
  } else {
    auto next = std::make_shared<ERSchema>(*schema_);
    ERBIUM_RETURN_NOT_OK(DdlParser::Execute(statement + ";", next.get()));
    Status rebuilt = Rebuild(std::move(next));
    if (!rebuilt.ok()) {
      if (shards_ > 1) {
        // The old shard set is intact (Rebuild swaps only on success);
        // re-arm the routing context over it.
        ERBIUM_RETURN_NOT_OK(RefreshShardContext());
      }
      return rebuilt;
    }
    ddl_history_ += statement + ";\n";
  }
  // Either branch rebuilt the physical tables; cached plans are stale.
  BumpMappingGeneration();
  StatementOutcome outcome;
  outcome.message = "ok (" +
                    std::to_string(current_db()->mapping().tables().size()) +
                    " physical tables)";
  return outcome;
}

/// INSERT <Entity> (attr = literal, ...): builds a struct value and goes
/// through the logical insert (which also WAL-logs it when a database is
/// attached).
Result<StatementOutcome> StatementRunner::InsertLocked(
    const std::string& statement) {
  ERBIUM_ASSIGN_OR_RETURN(std::vector<Token> tokens,
                          Lexer::Tokenize(statement));
  TokenStream ts(std::move(tokens));
  if (!ts.ConsumeKeyword("insert")) {
    return Status::ParseError("expected INSERT");
  }
  ERBIUM_ASSIGN_OR_RETURN(std::string entity,
                          ts.ExpectIdentifier("entity set name"));
  ERBIUM_RETURN_NOT_OK(ts.ExpectSymbol("("));
  Value::StructData fields;
  while (true) {
    ERBIUM_ASSIGN_OR_RETURN(std::string attr,
                            ts.ExpectIdentifier("attribute name"));
    ERBIUM_RETURN_NOT_OK(ts.ExpectSymbol("="));
    bool negative = ts.ConsumeSymbol("-");
    const Token& tok = ts.Advance();
    Value value;
    switch (tok.kind) {
      case TokenKind::kInteger:
        value = Value::Int64(negative ? -tok.int_value : tok.int_value);
        break;
      case TokenKind::kFloat:
        value = Value::Float64(negative ? -tok.float_value : tok.float_value);
        break;
      case TokenKind::kString:
        value = Value::String(tok.text);
        break;
      case TokenKind::kIdentifier:
        if (tok.IsKeyword("true")) {
          value = Value::Bool(true);
        } else if (tok.IsKeyword("false")) {
          value = Value::Bool(false);
        } else if (tok.IsKeyword("null")) {
          value = Value::Null();
        } else {
          return Status::ParseError("unexpected value '" + tok.text + "'");
        }
        break;
      default:
        return Status::ParseError("expected a literal value");
    }
    if (negative && tok.kind != TokenKind::kInteger &&
        tok.kind != TokenKind::kFloat) {
      return Status::ParseError("'-' must precede a numeric literal");
    }
    fields.emplace_back(std::move(attr), std::move(value));
    if (ts.ConsumeSymbol(",")) continue;
    ERBIUM_RETURN_NOT_OK(ts.ExpectSymbol(")"));
    break;
  }
  if (!ts.AtEnd() && !ts.ConsumeSymbol(";")) {
    return Status::ParseError("unexpected trailing input after INSERT");
  }
  Value value = Value::Struct(std::move(fields));
  int target = 0;
  if (shards_ > 1) {
    if (!shard_ctx_ready_.load(std::memory_order_acquire)) {
      return Status::Internal(
          "sharded engine is unavailable: a structural statement failed "
          "mid-fan-out and left the shard set inconsistent");
    }
    ERBIUM_ASSIGN_OR_RETURN(target, router_->RouteInsert(entity, value));
  }
  ERBIUM_RETURN_NOT_OK(shard_db(target)->InsertEntity(entity, value));
  ShardCounter(ShardInsertCounterName(target)).Increment();
  // Feed the workload profiler at the statement level (not inside
  // MappedDatabase) so REMAP migration, recovery replay, and ADVISE
  // candidate population never pollute the CRUD counters.
  obs::WorkloadProfile::Global().RecordEntityCrud(entity,
                                                  obs::CrudKind::kInsert);
  StatementOutcome outcome;
  outcome.message = "ok";
  if (shards_ > 1) outcome.shard = target;
  return outcome;
}

/// REMAP <preset>: switch the physical mapping, migrating data.
Result<StatementOutcome> StatementRunner::RemapLocked(
    const std::string& statement) {
  ERBIUM_ASSIGN_OR_RETURN(std::vector<Token> tokens,
                          Lexer::Tokenize(statement));
  TokenStream ts(std::move(tokens));
  if (!ts.ConsumeKeyword("remap")) {
    return Status::ParseError("expected REMAP");
  }
  ERBIUM_ASSIGN_OR_RETURN(std::string name,
                          ts.ExpectIdentifier("mapping preset name"));
  if (!ts.AtEnd() && !ts.ConsumeSymbol(";")) {
    return Status::ParseError("unexpected trailing input after REMAP");
  }
  MappingSpec next = PresetByName(name);
  ERBIUM_RETURN_NOT_OK(RemapSpec(next));
  StatementOutcome outcome;
  outcome.message = "remapped to " + next.ToString() + " (data migrated)";
  return outcome;
}

Status StatementRunner::RemapSpec(const MappingSpec& next) {
  if (durable_ != nullptr) {
    if (shards_ > 1) {
      ERBIUM_RETURN_NOT_OK(
          shard::ValidateShardable(durable_->schema(), next, shards_));
      shard_ctx_ready_.store(false, std::memory_order_release);
      for (int k = 0; k < shards_; ++k) {
        ERBIUM_RETURN_NOT_OK(shard_durable(k)->Remap(next));
      }
      ERBIUM_RETURN_NOT_OK(RefreshShardContext());
    } else {
      ERBIUM_RETURN_NOT_OK(durable_->Remap(next));
    }
    BumpMappingGeneration();
    return Status::OK();
  }
  MappingSpec old = spec_;
  spec_ = next;
  Status st = Rebuild(schema_);
  if (!st.ok()) {
    spec_ = std::move(old);
    if (shards_ > 1) {
      // The old databases are intact (Rebuild swaps only on success);
      // re-arm the routing context under the rolled-back spec.
      Status refreshed = RefreshShardContext();
      if (!refreshed.ok()) return refreshed;
    }
    return st;
  }
  BumpMappingGeneration();
  return Status::OK();
}

Status StatementRunner::RemapPreset(const std::string& name) {
  std::unique_lock<std::shared_mutex> lock(statement_mu_);
  StatementScope scope(this);
  return RemapSpec(PresetByName(name));
}

Result<StatementOutcome> StatementRunner::AttachLocked(
    const std::string& statement) {
  ERBIUM_ASSIGN_OR_RETURN(erql::Query query, erql::Parser::Parse(statement));
  if (query.statement != erql::StatementKind::kAttach) {
    return Status::ParseError("expected ATTACH DATABASE '<dir>'");
  }
  if (durable_ != nullptr) {
    return Status::InvalidArgument("already attached to " + durable_->dir());
  }
  StatementOutcome outcome;
  ERBIUM_RETURN_NOT_OK(AttachDir(query.attach_path, &outcome.message));
  return outcome;
}

Status StatementRunner::AttachDir(const std::string& dir,
                                  std::string* message) {
  if (shards_ <= 1) {
    durability::DurableDatabase::Options options;
    options.spec = spec_;
    options.initial_ddl = ddl_history_;
    options.sync = sync_;
    options.faults = faults_;
    auto opened = durability::DurableDatabase::Open(dir, std::move(options));
    if (!opened.ok()) return opened.status();
    durable_ = std::move(opened).value();
    db_.reset();
    // The in-memory database (and every plan bound to it) just got
    // replaced by the recovered one.
    BumpMappingGeneration();
    const auto& info = durable_->recovery_info();
    *message = "attached " + dir + " (snapshot gen " +
               std::to_string(info.snapshot_gen) + ", " +
               std::to_string(info.records_replayed) + " records replayed" +
               (info.wal_clean ? "" : ", torn WAL tail discarded") + ")";
    return Status::OK();
  }
  // Sharded layout: <dir>/shard-<k>/ per shard, each with its own WAL
  // and snapshot generations, plus a shard-count manifest — the
  // partition function is baked into every shard's data, so reopening
  // with a different N would silently route lookups to the wrong shards.
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create database directory " + dir + ": " +
                           ec.message());
  }
  if (std::filesystem::exists(dir + "/wal.erblog")) {
    return Status::InvalidArgument(
        "directory " + dir + " holds a single-shard database (top-level "
        "wal.erblog); reopen it with shards=1 or choose a fresh directory");
  }
  const std::string manifest = ShardManifestPath(dir);
  if (std::filesystem::exists(manifest)) {
    std::ifstream in(manifest);
    int recorded = 0;
    if (!(in >> recorded) || recorded < 1) {
      return Status::IOError("unreadable shard manifest " + manifest);
    }
    if (recorded != shards_) {
      return Status::InvalidArgument(
          "directory " + dir + " was created with " +
          std::to_string(recorded) + " shards; reopen it with shards=" +
          std::to_string(recorded));
    }
  } else {
    std::ofstream out(manifest, std::ios::trunc);
    out << shards_ << "\n";
    out.flush();
    if (!out.good()) {
      return Status::IOError("cannot write shard manifest " + manifest);
    }
  }
  // Recovery replay consults the remote-existence probes; drop the
  // context first so they trust the logged stream instead of probing the
  // (empty, unrelated) in-memory shards. On failure the in-memory shard
  // set is intact — re-arm over it before surfacing the error.
  shard_ctx_ready_.store(false, std::memory_order_release);
  auto fail = [this](Status st) {
    Status rearmed = RefreshShardContext();
    return st.ok() ? rearmed : st;
  };
  std::vector<std::unique_ptr<durability::DurableDatabase>> opened(shards_);
  for (int k = 0; k < shards_; ++k) {
    durability::DurableDatabase::Options options;
    options.spec = spec_;
    options.initial_ddl = ddl_history_;
    options.sync = sync_;
    options.faults = faults_;
    options.remote_check = MakeRemoteCheck(k);
    auto shard_open = durability::DurableDatabase::Open(ShardDirPath(dir, k),
                                                       std::move(options));
    if (!shard_open.ok()) return fail(shard_open.status());
    opened[k] = std::move(shard_open).value();
  }
  // Fail-stop on divergent schema/mapping: a crash between the per-shard
  // steps of a structural fan-out leaves the logs disagreeing about the
  // schema itself, and no WAL replay can reconcile that.
  for (int k = 1; k < shards_; ++k) {
    if (opened[k]->ddl() != opened[0]->ddl() ||
        opened[k]->spec().ToJson() != opened[0]->spec().ToJson()) {
      return fail(Status::Internal(
          "shard " + std::to_string(k) + " of " + dir +
          " recovered a different schema/mapping than shard 0 (crash during "
          "a structural fan-out?); refusing to serve"));
    }
  }
  // Snapshot generations may legitimately disagree (kill -9 between the
  // per-shard phases of a fan-out CHECKPOINT): each shard's own WAL
  // covers its gap, so recovery takes the minimum consistent generation
  // and says so out loud rather than pretending the set is uniform.
  uint64_t min_gen = opened[0]->recovery_info().snapshot_gen;
  uint64_t max_gen = min_gen;
  size_t replayed = 0;
  bool torn = false;
  for (int k = 0; k < shards_; ++k) {
    const auto& info = opened[k]->recovery_info();
    min_gen = std::min(min_gen, info.snapshot_gen);
    max_gen = std::max(max_gen, info.snapshot_gen);
    replayed += info.records_replayed;
    torn = torn || !info.wal_clean;
  }
  if (min_gen != max_gen) {
    std::fprintf(stderr,
                 "erbium: shard snapshot generations disagree in %s "
                 "(gens %llu..%llu) — taking minimum consistent generation "
                 "%llu; per-shard WAL replay covers the difference\n",
                 dir.c_str(), static_cast<unsigned long long>(min_gen),
                 static_cast<unsigned long long>(max_gen),
                 static_cast<unsigned long long>(min_gen));
    ShardCounter("shard.recovery.gen_skew").Increment();
  }
  durable_ = std::move(opened[0]);
  shard_durables_.clear();
  for (int k = 1; k < shards_; ++k) {
    shard_durables_.push_back(std::move(opened[k]));
  }
  db_.reset();
  shard_dbs_.clear();
  BumpMappingGeneration();
  ERBIUM_RETURN_NOT_OK(RefreshShardContext());
  std::string gens = min_gen == max_gen
                         ? std::to_string(min_gen)
                         : std::to_string(min_gen) + ".." +
                               std::to_string(max_gen) + ", min taken";
  *message = "attached " + dir + " (" + std::to_string(shards_) +
             " shards, snapshot gen " + gens + ", " +
             std::to_string(replayed) + " records replayed" +
             (torn ? ", torn WAL tail discarded" : "") + ")";
  return Status::OK();
}

namespace {

/// Fixed-point milliseconds for the ADVISE table ("1.234").
std::string FormatMs(double ms) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", ms);
  return buffer;
}

}  // namespace

Result<StatementOutcome> StatementRunner::AdviseLocked(
    const std::string& statement) {
  ERBIUM_ASSIGN_OR_RETURN(erql::Query query, erql::Parser::Parse(statement));
  if (query.statement != erql::StatementKind::kAdvise) {
    return Status::ParseError("expected ADVISE [LIMIT n]");
  }
  obs::WorkloadSnapshot snapshot = obs::WorkloadProfile::Global().Snapshot();
  Workload workload = WorkloadFromProfile(snapshot);
  if (workload.queries.empty()) {
    std::string hint;
    if (!obs::WorkloadProfile::CompiledIn()) {
      hint = " (capture is compiled out)";
    } else if (!obs::WorkloadProfile::Global().enabled()) {
      hint = " (capture is disabled)";
    }
    return Status::InvalidArgument(
        "ADVISE: no captured SELECT traffic to advise from" + hint +
        " — run queries first, or LOAD WORKLOAD FROM a snapshot");
  }
  // The active spec goes in as candidate #0 (deduped out of the
  // enumeration) so every row has a well-defined delta against what the
  // system is running right now.
  const MappingSpec& active =
      durable_ != nullptr ? durable_->spec() : spec_;
  std::vector<MappingSpec> candidates;
  candidates.push_back(active);
  const std::string active_json = active.ToJson();
  std::vector<MappingSpec> enumerated =
      MappingAdvisor::EnumerateCandidates(*current_schema(), /*limit=*/16);
  for (MappingSpec& spec : enumerated) {
    if (spec.ToJson() == active_json) continue;
    candidates.push_back(std::move(spec));
  }
  MappedDatabase* live = current_db();
  auto populate = [live](MappedDatabase* dst) {
    return evolution::MigrateData(live, dst);
  };
  ERBIUM_ASSIGN_OR_RETURN(
      MappingAdvisor::Advice advice,
      MappingAdvisor::Advise(current_schema(), candidates, populate, workload,
                             /*repetitions=*/2));

  // Rank: valid candidates by measured cost, invalid ones last.
  std::vector<size_t> order(advice.candidates.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const MappingAdvisor::Candidate& ca = advice.candidates[a];
    const MappingAdvisor::Candidate& cb = advice.candidates[b];
    if (ca.valid != cb.valid) return ca.valid;
    return ca.total_cost_ms < cb.total_cost_ms;
  });
  const MappingAdvisor::Candidate& active_candidate = advice.candidates[0];

  erql::QueryResult result;
  result.columns = {"rank", "mapping", "cost_ms", "vs_active", "note"};
  int64_t limit = query.show_limit;
  size_t rank = 0;
  for (size_t index : order) {
    if (limit >= 0 && static_cast<int64_t>(rank) >= limit) break;
    const MappingAdvisor::Candidate& candidate = advice.candidates[index];
    ++rank;
    std::string cost = candidate.valid ? FormatMs(candidate.total_cost_ms)
                                       : "n/a";
    std::string delta = "n/a";
    if (candidate.valid && active_candidate.valid) {
      double d = candidate.total_cost_ms - active_candidate.total_cost_ms;
      delta = (d >= 0 ? "+" : "") + FormatMs(d);
    }
    std::string note;
    if (index == advice.best_index) note = "best";
    if (index == 0) note += note.empty() ? "active" : ", active";
    if (!candidate.valid) note = "invalid: " + candidate.invalid_reason;
    result.rows.push_back({Value::Int64(static_cast<int64_t>(rank)),
                           Value::String(candidate.spec.ToString()),
                           Value::String(std::move(cost)),
                           Value::String(std::move(delta)),
                           Value::String(std::move(note))});
  }
  StatementOutcome outcome;
  outcome.shape = OutputShape::kTable;
  outcome.result = std::move(result);
  return outcome;
}

void StatementRunner::BumpMappingGeneration() {
  uint64_t next =
      mapping_generation_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (plan_cache_ != nullptr) plan_cache_->InvalidateBelow(next);
}

Result<StatementOutcome> StatementRunner::CheckpointStatement() {
  // One CHECKPOINT at a time; later ones queue here (not on the
  // statement lock, which phase B only holds shared). On a sharded
  // runner each phase is applied to every shard before the next phase
  // starts, so all shards' images pin the same statement horizon (the
  // exclusive barrier of phase A spans the whole shard set).
  std::lock_guard<std::mutex> checkpoint_lock(checkpoint_mu_);
  std::vector<durability::DurableDatabase::CheckpointPins> pins(
      static_cast<size_t>(shards_));
  {
    // Phase A — brief exclusive barrier: pin every table/pair version and
    // fix each shard's WAL horizon. O(#tables), no IO.
    std::unique_lock<std::shared_mutex> lock(statement_mu_, std::defer_lock);
    AcquireStatementLock(&lock);
    StatementScope scope(this);
    if (durable_ == nullptr) {
      return Status::InvalidArgument(
          "CHECKPOINT requires a durable database — ATTACH DATABASE "
          "'<dir>' first");
    }
    for (int k = 0; k < shards_; ++k) {
      Result<durability::DurableDatabase::CheckpointPins> p =
          shard_durable(k)->PrepareCheckpoint();
      if (!p.ok()) {
        for (int j = 0; j < k; ++j) shard_durable(j)->AbortCheckpoint();
        return p.status();
      }
      pins[k] = std::move(p).value();
    }
  }
  // Phase B — shared lock: encode the pinned images and write them to
  // disk while concurrent SELECTs and CRUD proceed. (ATTACH refuses when
  // already attached, so the shard set cannot change between phases.)
  std::vector<std::string> summaries(static_cast<size_t>(shards_));
  Status wrote = [&]() -> Status {
    std::shared_lock<std::shared_mutex> lock(statement_mu_, std::defer_lock);
    AcquireStatementLock(&lock);
    StatementScope scope(this);
    for (int k = 0; k < shards_; ++k) {
      Result<std::string> summary =
          shard_durable(k)->WriteSnapshotPhase(pins[k]);
      if (!summary.ok()) return summary.status();
      summaries[k] = std::move(summary).value();
    }
    return Status::OK();
  }();
  if (!wrote.ok()) {
    // Any shard failing the write phase aborts the checkpoint on every
    // shard: no shard advances its generation, so a later recovery sees
    // a uniform set (plus intact WALs).
    for (int k = 0; k < shards_; ++k) shard_durable(k)->AbortCheckpoint();
    return wrote;
  }
  {
    // Phase C — also shared: rename the snapshots into place and compact
    // each WAL down to the records appended during phase B. Readers never
    // touch snapshot files or the WAL at runtime; concurrent appends
    // order against the compaction on the WAL's internal mutex, and any
    // record they add carries lsn > the checkpoint horizon, so the
    // compaction keeps it. Only phase A's pin grab needs exclusivity.
    std::shared_lock<std::shared_mutex> lock(statement_mu_, std::defer_lock);
    AcquireStatementLock(&lock);
    StatementScope scope(this);
    for (int k = 0; k < shards_; ++k) {
      Status finished = shard_durable(k)->FinishCheckpoint(pins[k]);
      if (!finished.ok()) {
        // Shards before k already advanced; the ones after keep their old
        // generation + full WAL — exactly the skew ATTACH recovery logs
        // and absorbs (each shard stays individually consistent).
        for (int j = k + 1; j < shards_; ++j) {
          shard_durable(j)->AbortCheckpoint();
        }
        return finished;
      }
    }
  }
  StatementOutcome outcome;
  outcome.shape = OutputShape::kLines;
  outcome.result.columns = {"checkpoint"};
  if (shards_ == 1) {
    outcome.result.rows.push_back(Row{Value::String(std::move(summaries[0]))});
  } else {
    for (int k = 0; k < shards_; ++k) {
      outcome.result.rows.push_back(Row{Value::String(
          "shard " + std::to_string(k) + ": " + std::move(summaries[k]))});
    }
  }
  return outcome;
}

Result<StatementOutcome> StatementRunner::ShowShardsLocked() {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  erql::QueryResult result;
  result.columns = {"shard", "inserts", "wal_bytes", "next_lsn",
                    "snapshot_gen"};
  for (int k = 0; k < shards_; ++k) {
    uint64_t inserts = registry.counter(ShardInsertCounterName(k)).Value();
    uint64_t wal_bytes = 0;
    uint64_t next_lsn = 0;
    uint64_t gen = 0;
    if (durable_ != nullptr) {
      durability::DurableDatabase* d = shard_durable(k);
      wal_bytes = d->wal_bytes();
      next_lsn = d->next_lsn();
      gen = d->latest_snapshot_gen();
    }
    result.rows.push_back(Row{Value::Int64(k),
                              Value::Int64(static_cast<int64_t>(inserts)),
                              Value::Int64(static_cast<int64_t>(wal_bytes)),
                              Value::Int64(static_cast<int64_t>(next_lsn)),
                              Value::Int64(static_cast<int64_t>(gen))});
  }
  StatementOutcome outcome;
  outcome.shape = OutputShape::kTable;
  outcome.result = std::move(result);
  return outcome;
}

void StatementRunner::AssertQuiescent(const char* what) const {
#ifndef NDEBUG
  int active = active_statements_.load(std::memory_order_relaxed);
  if (active != 0) {
    std::fprintf(stderr,
                 "FATAL: StatementRunner::%s called while %d statement(s) "
                 "are in flight — the unlocked introspection accessors are "
                 "only safe on a quiescent runner\n",
                 what, active);
    std::abort();
  }
#else
  (void)what;
#endif
}

Status StatementRunner::FinalCheckpoint() {
  std::lock_guard<std::mutex> checkpoint_lock(checkpoint_mu_);
  std::unique_lock<std::shared_mutex> lock(statement_mu_);
  StatementScope scope(this);
  if (durable_ == nullptr) return Status::OK();
  for (int k = 0; k < shards_; ++k) {
    ERBIUM_RETURN_NOT_OK(shard_durable(k)->Checkpoint().status());
  }
  return Status::OK();
}

}  // namespace api
}  // namespace erbium
