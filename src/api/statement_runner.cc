#include "api/statement_runner.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <utility>

#include "common/lexer.h"
#include "er/ddl_parser.h"
#include "mapping/advisor.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/workload_profile.h"
#include "erql/parser.h"
#include "evolution/evolution.h"
#include "workload/figure4.h"

namespace erbium {
namespace api {

namespace {

/// Leading keyword of a statement, lowercased ("" when none). Skips any
/// leading whitespace — including newlines and vertical whitespace — so
/// "  \n select" classifies exactly like "SELECT".
std::string LeadingKeyword(const std::string& statement) {
  size_t begin = 0;
  while (begin < statement.size() &&
         std::isspace(static_cast<unsigned char>(statement[begin]))) {
    ++begin;
  }
  std::string word;
  for (size_t i = begin; i < statement.size(); ++i) {
    char c = statement[i];
    if (!std::isalpha(static_cast<unsigned char>(c))) break;
    word.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return word;
}

}  // namespace

StatementRunner::StatementClass StatementRunner::Classify(
    const std::string& statement) {
  std::string word = LeadingKeyword(statement);
  if (word == "select" || word == "explain" || word == "show" ||
      word == "trace" || word == "advise" || word == "export") {
    // ADVISE and EXPORT WORKLOAD only *read* the database (candidate
    // databases are populated by scanning the live one) and the workload
    // profile is internally synchronized, so both run shared.
    return StatementClass::kRead;
  }
  if (word == "insert" || word == "load" || word == "checkpoint") {
    // INSERT serializes per lock domain inside MappedDatabase — the
    // statement lock is only held shared so structural statements can
    // drain it. LOAD WORKLOAD replaces the internally synchronized
    // profile. CHECKPOINT spends almost all its time in the shared
    // snapshot-write phase (Execute routes it through its own
    // three-phase dance).
    return StatementClass::kCrud;
  }
  return StatementClass::kExclusive;
}

MappingSpec StatementRunner::PresetByName(const std::string& name) {
  if (name == "m2") return Figure4M2();
  if (name == "m3") return Figure4M3();
  if (name == "m4") return Figure4M4();
  if (name == "m5") return Figure4M5();
  if (name == "m6") return Figure4M6();
  if (name == "m6pg") return Figure4M6Pg();
  return MappingSpec::Normalized("m1");
}

Result<std::unique_ptr<StatementRunner>> StatementRunner::Create(
    Options options) {
  std::unique_ptr<StatementRunner> runner(new StatementRunner());
  runner->spec_ = std::move(options.spec);
  runner->sync_ = options.sync;
  runner->faults_ = options.faults;
  if (options.plan_cache_capacity > 0) {
    runner->plan_cache_ =
        std::make_unique<erql::PlanCache>(options.plan_cache_capacity);
  }
  if (options.figure4) {
    ERBIUM_ASSIGN_OR_RETURN(ERSchema schema, MakeFigure4Schema());
    *runner->schema_ = std::move(schema);
    runner->ddl_history_ = Figure4Ddl();
  }
  ERBIUM_RETURN_NOT_OK(runner->Rebuild(runner->schema_));
  if (options.figure4) {
    Figure4Config config;
    config.num_r = options.figure4_num_r;
    config.num_s = options.figure4_num_s;
    ERBIUM_RETURN_NOT_OK(PopulateFigure4(runner->db_.get(), config));
  }
  if (!options.attach_dir.empty()) {
    std::string message;
    ERBIUM_RETURN_NOT_OK(runner->AttachDir(options.attach_dir, &message));
  }
  return runner;
}

Status StatementRunner::Rebuild(std::shared_ptr<ERSchema> next_schema) {
  auto fresh = MappedDatabase::Create(next_schema.get(), spec_);
  if (!fresh.ok()) return fresh.status();
  if (db_ != nullptr) {
    ERBIUM_RETURN_NOT_OK(evolution::MigrateData(db_.get(), fresh->get()));
  }
  db_ = std::move(fresh).value();
  schema_ = std::move(next_schema);
  return Status::OK();
}

namespace {

/// Acquires a deferred statement lock, attributing any blocking to the
/// statement.lock_wait_us histogram. The uncontended path is try_lock
/// only — no clock reads — so the statement clock-read budget (4 per
/// statement, all in the server) survives this instrumentation.
template <typename Lock>
void AcquireStatementLock(Lock* lock) {
  if (lock->try_lock()) return;
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.counter("statement.lock_contended").Increment();
  uint64_t start = obs::MonotonicNowNs();
  lock->lock();
  static const std::vector<double>* bounds = new std::vector<double>{
      10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000,
      50000, 100000, 250000, 1e6};
  registry.histogram("statement.lock_wait_us", *bounds)
      .Observe(static_cast<double>(obs::MonotonicNowNs() - start) / 1e3);
}

}  // namespace

Result<StatementOutcome> StatementRunner::Execute(
    const std::string& statement) {
  StatementClass cls = Classify(statement);
  if (LeadingKeyword(statement) == "checkpoint") {
    // CHECKPOINT alternates lock modes across its three phases; it
    // cannot run under one scoped acquisition.
    return CheckpointStatement();
  }
  if (cls == StatementClass::kExclusive) {
    std::unique_lock<std::shared_mutex> lock(statement_mu_, std::defer_lock);
    AcquireStatementLock(&lock);
    StatementScope scope(this);
    return ExecuteClassified(statement, cls);
  }
  // Reads and CRUD both run shared: readers execute against pinned
  // versions, CRUD serializes per mapping lock domain underneath.
  std::shared_lock<std::shared_mutex> lock(statement_mu_, std::defer_lock);
  AcquireStatementLock(&lock);
  StatementScope scope(this);
  return ExecuteClassified(statement, cls);
}

Result<StatementOutcome> StatementRunner::ExecuteClassified(
    const std::string& statement, StatementClass cls) {
  std::string word = LeadingKeyword(statement);
  if (word == "create") return CreateLocked(statement);
  if (word == "insert") return InsertLocked(statement);
  if (word == "remap") return RemapLocked(statement);
  if (word == "attach") return AttachLocked(statement);
  if (word == "advise") return AdviseLocked(statement);
  if (cls != StatementClass::kExclusive) {
    // Only plain SELECTs go through the plan cache; SHOW/EXPLAIN/TRACE
    // would only pollute the hit/miss metrics with guaranteed misses.
    erql::PlanCache* cache = word == "select" ? plan_cache_.get() : nullptr;
    ERBIUM_ASSIGN_OR_RETURN(
        erql::QueryResult result,
        erql::QueryEngine::Execute(current_db(), statement,
                                   ExecOptions::Default(), cache,
                                   mapping_generation()));
    StatementOutcome outcome;
    // EXPLAIN / TRACE / EXPORT / LOAD output is plain lines; SELECT and
    // SHOW render as tables.
    outcome.shape = (word == "explain" || word == "trace" ||
                     word == "export" || word == "load")
                        ? OutputShape::kLines
                        : OutputShape::kTable;
    outcome.result = std::move(result);
    return outcome;
  }
  return Status::InvalidArgument(
      "unsupported statement '" + word +
      "': expected CREATE / INSERT / REMAP / ATTACH DATABASE / CHECKPOINT / "
      "SELECT / EXPLAIN [ANALYZE] / SHOW / TRACE / ADVISE / "
      "EXPORT WORKLOAD / LOAD WORKLOAD");
}

Result<StatementOutcome> StatementRunner::CreateLocked(
    const std::string& statement) {
  if (durable_ != nullptr) {
    ERBIUM_RETURN_NOT_OK(durable_->ExecuteDdl(statement + ";"));
  } else {
    auto next = std::make_shared<ERSchema>(*schema_);
    ERBIUM_RETURN_NOT_OK(DdlParser::Execute(statement + ";", next.get()));
    ERBIUM_RETURN_NOT_OK(Rebuild(std::move(next)));
    ddl_history_ += statement + ";\n";
  }
  // Either branch rebuilt the physical tables; cached plans are stale.
  BumpMappingGeneration();
  StatementOutcome outcome;
  outcome.message = "ok (" +
                    std::to_string(current_db()->mapping().tables().size()) +
                    " physical tables)";
  return outcome;
}

/// INSERT <Entity> (attr = literal, ...): builds a struct value and goes
/// through the logical insert (which also WAL-logs it when a database is
/// attached).
Result<StatementOutcome> StatementRunner::InsertLocked(
    const std::string& statement) {
  ERBIUM_ASSIGN_OR_RETURN(std::vector<Token> tokens,
                          Lexer::Tokenize(statement));
  TokenStream ts(std::move(tokens));
  if (!ts.ConsumeKeyword("insert")) {
    return Status::ParseError("expected INSERT");
  }
  ERBIUM_ASSIGN_OR_RETURN(std::string entity,
                          ts.ExpectIdentifier("entity set name"));
  ERBIUM_RETURN_NOT_OK(ts.ExpectSymbol("("));
  Value::StructData fields;
  while (true) {
    ERBIUM_ASSIGN_OR_RETURN(std::string attr,
                            ts.ExpectIdentifier("attribute name"));
    ERBIUM_RETURN_NOT_OK(ts.ExpectSymbol("="));
    bool negative = ts.ConsumeSymbol("-");
    const Token& tok = ts.Advance();
    Value value;
    switch (tok.kind) {
      case TokenKind::kInteger:
        value = Value::Int64(negative ? -tok.int_value : tok.int_value);
        break;
      case TokenKind::kFloat:
        value = Value::Float64(negative ? -tok.float_value : tok.float_value);
        break;
      case TokenKind::kString:
        value = Value::String(tok.text);
        break;
      case TokenKind::kIdentifier:
        if (tok.IsKeyword("true")) {
          value = Value::Bool(true);
        } else if (tok.IsKeyword("false")) {
          value = Value::Bool(false);
        } else if (tok.IsKeyword("null")) {
          value = Value::Null();
        } else {
          return Status::ParseError("unexpected value '" + tok.text + "'");
        }
        break;
      default:
        return Status::ParseError("expected a literal value");
    }
    if (negative && tok.kind != TokenKind::kInteger &&
        tok.kind != TokenKind::kFloat) {
      return Status::ParseError("'-' must precede a numeric literal");
    }
    fields.emplace_back(std::move(attr), std::move(value));
    if (ts.ConsumeSymbol(",")) continue;
    ERBIUM_RETURN_NOT_OK(ts.ExpectSymbol(")"));
    break;
  }
  if (!ts.AtEnd() && !ts.ConsumeSymbol(";")) {
    return Status::ParseError("unexpected trailing input after INSERT");
  }
  ERBIUM_RETURN_NOT_OK(
      current_db()->InsertEntity(entity, Value::Struct(std::move(fields))));
  // Feed the workload profiler at the statement level (not inside
  // MappedDatabase) so REMAP migration, recovery replay, and ADVISE
  // candidate population never pollute the CRUD counters.
  obs::WorkloadProfile::Global().RecordEntityCrud(entity,
                                                  obs::CrudKind::kInsert);
  StatementOutcome outcome;
  outcome.message = "ok";
  return outcome;
}

/// REMAP <preset>: switch the physical mapping, migrating data.
Result<StatementOutcome> StatementRunner::RemapLocked(
    const std::string& statement) {
  ERBIUM_ASSIGN_OR_RETURN(std::vector<Token> tokens,
                          Lexer::Tokenize(statement));
  TokenStream ts(std::move(tokens));
  if (!ts.ConsumeKeyword("remap")) {
    return Status::ParseError("expected REMAP");
  }
  ERBIUM_ASSIGN_OR_RETURN(std::string name,
                          ts.ExpectIdentifier("mapping preset name"));
  if (!ts.AtEnd() && !ts.ConsumeSymbol(";")) {
    return Status::ParseError("unexpected trailing input after REMAP");
  }
  MappingSpec next = PresetByName(name);
  ERBIUM_RETURN_NOT_OK(RemapSpec(next));
  StatementOutcome outcome;
  outcome.message = "remapped to " + next.ToString() + " (data migrated)";
  return outcome;
}

Status StatementRunner::RemapSpec(const MappingSpec& next) {
  if (durable_ != nullptr) {
    ERBIUM_RETURN_NOT_OK(durable_->Remap(next));
    BumpMappingGeneration();
    return Status::OK();
  }
  MappingSpec old = spec_;
  spec_ = next;
  Status st = Rebuild(schema_);
  if (!st.ok()) {
    spec_ = std::move(old);
    return st;
  }
  BumpMappingGeneration();
  return Status::OK();
}

Status StatementRunner::RemapPreset(const std::string& name) {
  std::unique_lock<std::shared_mutex> lock(statement_mu_);
  StatementScope scope(this);
  return RemapSpec(PresetByName(name));
}

Result<StatementOutcome> StatementRunner::AttachLocked(
    const std::string& statement) {
  ERBIUM_ASSIGN_OR_RETURN(erql::Query query, erql::Parser::Parse(statement));
  if (query.statement != erql::StatementKind::kAttach) {
    return Status::ParseError("expected ATTACH DATABASE '<dir>'");
  }
  if (durable_ != nullptr) {
    return Status::InvalidArgument("already attached to " + durable_->dir());
  }
  StatementOutcome outcome;
  ERBIUM_RETURN_NOT_OK(AttachDir(query.attach_path, &outcome.message));
  return outcome;
}

Status StatementRunner::AttachDir(const std::string& dir,
                                  std::string* message) {
  durability::DurableDatabase::Options options;
  options.spec = spec_;
  options.initial_ddl = ddl_history_;
  options.sync = sync_;
  options.faults = faults_;
  auto opened = durability::DurableDatabase::Open(dir, std::move(options));
  if (!opened.ok()) return opened.status();
  durable_ = std::move(opened).value();
  db_.reset();
  // The in-memory database (and every plan bound to it) just got
  // replaced by the recovered one.
  BumpMappingGeneration();
  const auto& info = durable_->recovery_info();
  *message = "attached " + dir + " (snapshot gen " +
             std::to_string(info.snapshot_gen) + ", " +
             std::to_string(info.records_replayed) + " records replayed" +
             (info.wal_clean ? "" : ", torn WAL tail discarded") + ")";
  return Status::OK();
}

namespace {

/// Fixed-point milliseconds for the ADVISE table ("1.234").
std::string FormatMs(double ms) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", ms);
  return buffer;
}

}  // namespace

Result<StatementOutcome> StatementRunner::AdviseLocked(
    const std::string& statement) {
  ERBIUM_ASSIGN_OR_RETURN(erql::Query query, erql::Parser::Parse(statement));
  if (query.statement != erql::StatementKind::kAdvise) {
    return Status::ParseError("expected ADVISE [LIMIT n]");
  }
  obs::WorkloadSnapshot snapshot = obs::WorkloadProfile::Global().Snapshot();
  Workload workload = WorkloadFromProfile(snapshot);
  if (workload.queries.empty()) {
    std::string hint;
    if (!obs::WorkloadProfile::CompiledIn()) {
      hint = " (capture is compiled out)";
    } else if (!obs::WorkloadProfile::Global().enabled()) {
      hint = " (capture is disabled)";
    }
    return Status::InvalidArgument(
        "ADVISE: no captured SELECT traffic to advise from" + hint +
        " — run queries first, or LOAD WORKLOAD FROM a snapshot");
  }
  // The active spec goes in as candidate #0 (deduped out of the
  // enumeration) so every row has a well-defined delta against what the
  // system is running right now.
  const MappingSpec& active =
      durable_ != nullptr ? durable_->spec() : spec_;
  std::vector<MappingSpec> candidates;
  candidates.push_back(active);
  const std::string active_json = active.ToJson();
  std::vector<MappingSpec> enumerated =
      MappingAdvisor::EnumerateCandidates(*current_schema(), /*limit=*/16);
  for (MappingSpec& spec : enumerated) {
    if (spec.ToJson() == active_json) continue;
    candidates.push_back(std::move(spec));
  }
  MappedDatabase* live = current_db();
  auto populate = [live](MappedDatabase* dst) {
    return evolution::MigrateData(live, dst);
  };
  ERBIUM_ASSIGN_OR_RETURN(
      MappingAdvisor::Advice advice,
      MappingAdvisor::Advise(current_schema(), candidates, populate, workload,
                             /*repetitions=*/2));

  // Rank: valid candidates by measured cost, invalid ones last.
  std::vector<size_t> order(advice.candidates.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const MappingAdvisor::Candidate& ca = advice.candidates[a];
    const MappingAdvisor::Candidate& cb = advice.candidates[b];
    if (ca.valid != cb.valid) return ca.valid;
    return ca.total_cost_ms < cb.total_cost_ms;
  });
  const MappingAdvisor::Candidate& active_candidate = advice.candidates[0];

  erql::QueryResult result;
  result.columns = {"rank", "mapping", "cost_ms", "vs_active", "note"};
  int64_t limit = query.show_limit;
  size_t rank = 0;
  for (size_t index : order) {
    if (limit >= 0 && static_cast<int64_t>(rank) >= limit) break;
    const MappingAdvisor::Candidate& candidate = advice.candidates[index];
    ++rank;
    std::string cost = candidate.valid ? FormatMs(candidate.total_cost_ms)
                                       : "n/a";
    std::string delta = "n/a";
    if (candidate.valid && active_candidate.valid) {
      double d = candidate.total_cost_ms - active_candidate.total_cost_ms;
      delta = (d >= 0 ? "+" : "") + FormatMs(d);
    }
    std::string note;
    if (index == advice.best_index) note = "best";
    if (index == 0) note += note.empty() ? "active" : ", active";
    if (!candidate.valid) note = "invalid: " + candidate.invalid_reason;
    result.rows.push_back({Value::Int64(static_cast<int64_t>(rank)),
                           Value::String(candidate.spec.ToString()),
                           Value::String(std::move(cost)),
                           Value::String(std::move(delta)),
                           Value::String(std::move(note))});
  }
  StatementOutcome outcome;
  outcome.shape = OutputShape::kTable;
  outcome.result = std::move(result);
  return outcome;
}

void StatementRunner::BumpMappingGeneration() {
  uint64_t next =
      mapping_generation_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (plan_cache_ != nullptr) plan_cache_->InvalidateBelow(next);
}

Result<StatementOutcome> StatementRunner::CheckpointStatement() {
  // One CHECKPOINT at a time; later ones queue here (not on the
  // statement lock, which phase B only holds shared).
  std::lock_guard<std::mutex> checkpoint_lock(checkpoint_mu_);
  durability::DurableDatabase::CheckpointPins pins;
  {
    // Phase A — brief exclusive barrier: pin every table/pair version and
    // fix the WAL horizon. O(#tables), no IO.
    std::unique_lock<std::shared_mutex> lock(statement_mu_, std::defer_lock);
    AcquireStatementLock(&lock);
    StatementScope scope(this);
    if (durable_ == nullptr) {
      return Status::InvalidArgument(
          "CHECKPOINT requires a durable database — ATTACH DATABASE "
          "'<dir>' first");
    }
    ERBIUM_ASSIGN_OR_RETURN(pins, durable_->PrepareCheckpoint());
  }
  // Phase B — shared lock: encode the pinned image and write it to disk
  // while concurrent SELECTs and CRUD proceed. (ATTACH refuses when
  // already attached, so durable_ cannot be replaced between phases.)
  Result<std::string> summary = [&]() -> Result<std::string> {
    std::shared_lock<std::shared_mutex> lock(statement_mu_, std::defer_lock);
    AcquireStatementLock(&lock);
    StatementScope scope(this);
    return durable_->WriteSnapshotPhase(pins);
  }();
  if (!summary.ok()) {
    durable_->AbortCheckpoint();
    return summary.status();
  }
  {
    // Phase C — also shared: rename the snapshot into place and compact
    // the WAL down to the records appended during phase B. Readers never
    // touch snapshot files or the WAL at runtime; concurrent appends
    // order against the compaction on the WAL's internal mutex, and any
    // record they add carries lsn > the checkpoint horizon, so the
    // compaction keeps it. Only phase A's pin grab needs exclusivity.
    std::shared_lock<std::shared_mutex> lock(statement_mu_, std::defer_lock);
    AcquireStatementLock(&lock);
    StatementScope scope(this);
    ERBIUM_RETURN_NOT_OK(durable_->FinishCheckpoint(pins));
  }
  StatementOutcome outcome;
  outcome.shape = OutputShape::kLines;
  outcome.result.columns = {"checkpoint"};
  outcome.result.rows.push_back(
      Row{Value::String(std::move(summary).value())});
  return outcome;
}

void StatementRunner::AssertQuiescent(const char* what) const {
#ifndef NDEBUG
  int active = active_statements_.load(std::memory_order_relaxed);
  if (active != 0) {
    std::fprintf(stderr,
                 "FATAL: StatementRunner::%s called while %d statement(s) "
                 "are in flight — the unlocked introspection accessors are "
                 "only safe on a quiescent runner\n",
                 what, active);
    std::abort();
  }
#else
  (void)what;
#endif
}

Status StatementRunner::FinalCheckpoint() {
  std::lock_guard<std::mutex> checkpoint_lock(checkpoint_mu_);
  std::unique_lock<std::shared_mutex> lock(statement_mu_);
  StatementScope scope(this);
  if (durable_ == nullptr) return Status::OK();
  return durable_->Checkpoint().status();
}

}  // namespace api
}  // namespace erbium
