#include "api/statement_runner.h"

#include <cctype>
#include <mutex>
#include <utility>

#include "common/lexer.h"
#include "er/ddl_parser.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "erql/parser.h"
#include "evolution/evolution.h"
#include "workload/figure4.h"

namespace erbium {
namespace api {

namespace {

/// Leading keyword of a statement, lowercased ("" when none).
std::string LeadingKeyword(const std::string& statement) {
  size_t begin = statement.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  std::string word;
  for (size_t i = begin; i < statement.size(); ++i) {
    char c = statement[i];
    if (!std::isalpha(static_cast<unsigned char>(c))) break;
    word.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return word;
}

}  // namespace

StatementRunner::StatementClass StatementRunner::Classify(
    const std::string& statement) {
  std::string word = LeadingKeyword(statement);
  if (word == "select" || word == "explain" || word == "show" ||
      word == "trace") {
    return StatementClass::kRead;
  }
  return StatementClass::kWrite;
}

MappingSpec StatementRunner::PresetByName(const std::string& name) {
  if (name == "m2") return Figure4M2();
  if (name == "m3") return Figure4M3();
  if (name == "m4") return Figure4M4();
  if (name == "m5") return Figure4M5();
  if (name == "m6") return Figure4M6();
  if (name == "m6pg") return Figure4M6Pg();
  return MappingSpec::Normalized("m1");
}

Result<std::unique_ptr<StatementRunner>> StatementRunner::Create(
    Options options) {
  std::unique_ptr<StatementRunner> runner(new StatementRunner());
  runner->spec_ = std::move(options.spec);
  runner->sync_ = options.sync;
  if (options.plan_cache_capacity > 0) {
    runner->plan_cache_ =
        std::make_unique<erql::PlanCache>(options.plan_cache_capacity);
  }
  if (options.figure4) {
    ERBIUM_ASSIGN_OR_RETURN(ERSchema schema, MakeFigure4Schema());
    *runner->schema_ = std::move(schema);
    runner->ddl_history_ = Figure4Ddl();
  }
  ERBIUM_RETURN_NOT_OK(runner->Rebuild(runner->schema_));
  if (options.figure4) {
    Figure4Config config;
    config.num_r = options.figure4_num_r;
    config.num_s = options.figure4_num_s;
    ERBIUM_RETURN_NOT_OK(PopulateFigure4(runner->db_.get(), config));
  }
  if (!options.attach_dir.empty()) {
    std::string message;
    ERBIUM_RETURN_NOT_OK(runner->AttachDir(options.attach_dir, &message));
  }
  return runner;
}

Status StatementRunner::Rebuild(std::shared_ptr<ERSchema> next_schema) {
  auto fresh = MappedDatabase::Create(next_schema.get(), spec_);
  if (!fresh.ok()) return fresh.status();
  if (db_ != nullptr) {
    ERBIUM_RETURN_NOT_OK(evolution::MigrateData(db_.get(), fresh->get()));
  }
  db_ = std::move(fresh).value();
  schema_ = std::move(next_schema);
  return Status::OK();
}

namespace {

/// Acquires a deferred statement lock, attributing any blocking to the
/// statement.lock_wait_us histogram. The uncontended path is try_lock
/// only — no clock reads — so the statement clock-read budget (4 per
/// statement, all in the server) survives this instrumentation.
template <typename Lock>
void AcquireStatementLock(Lock* lock) {
  if (lock->try_lock()) return;
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.counter("statement.lock_contended").Increment();
  uint64_t start = obs::MonotonicNowNs();
  lock->lock();
  static const std::vector<double>* bounds = new std::vector<double>{
      10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000,
      50000, 100000, 250000, 1e6};
  registry.histogram("statement.lock_wait_us", *bounds)
      .Observe(static_cast<double>(obs::MonotonicNowNs() - start) / 1e3);
}

}  // namespace

Result<StatementOutcome> StatementRunner::Execute(
    const std::string& statement) {
  StatementClass cls = Classify(statement);
  if (cls == StatementClass::kRead) {
    std::shared_lock<std::shared_mutex> lock(statement_mu_, std::defer_lock);
    AcquireStatementLock(&lock);
    return ExecuteClassified(statement, cls);
  }
  std::unique_lock<std::shared_mutex> lock(statement_mu_, std::defer_lock);
  AcquireStatementLock(&lock);
  return ExecuteClassified(statement, cls);
}

Result<StatementOutcome> StatementRunner::ExecuteClassified(
    const std::string& statement, StatementClass cls) {
  std::string word = LeadingKeyword(statement);
  if (word == "create") return CreateLocked(statement);
  if (word == "insert") return InsertLocked(statement);
  if (word == "remap") return RemapLocked(statement);
  if (word == "attach") return AttachLocked(statement);
  if (cls == StatementClass::kRead || word == "checkpoint") {
    // Only plain SELECTs go through the plan cache; SHOW/EXPLAIN/TRACE
    // would only pollute the hit/miss metrics with guaranteed misses.
    erql::PlanCache* cache = word == "select" ? plan_cache_.get() : nullptr;
    ERBIUM_ASSIGN_OR_RETURN(
        erql::QueryResult result,
        erql::QueryEngine::Execute(db(), statement, ExecOptions::Default(),
                                   cache, mapping_generation()));
    StatementOutcome outcome;
    // EXPLAIN / TRACE / CHECKPOINT output is plain lines; SELECT and
    // SHOW render as tables.
    outcome.shape = (word == "explain" || word == "trace" ||
                     word == "checkpoint")
                        ? OutputShape::kLines
                        : OutputShape::kTable;
    outcome.result = std::move(result);
    return outcome;
  }
  return Status::InvalidArgument(
      "unsupported statement '" + word +
      "': expected CREATE / INSERT / REMAP / ATTACH DATABASE / CHECKPOINT / "
      "SELECT / EXPLAIN [ANALYZE] / SHOW / TRACE");
}

Result<StatementOutcome> StatementRunner::CreateLocked(
    const std::string& statement) {
  if (durable_ != nullptr) {
    ERBIUM_RETURN_NOT_OK(durable_->ExecuteDdl(statement + ";"));
  } else {
    auto next = std::make_shared<ERSchema>(*schema_);
    ERBIUM_RETURN_NOT_OK(DdlParser::Execute(statement + ";", next.get()));
    ERBIUM_RETURN_NOT_OK(Rebuild(std::move(next)));
    ddl_history_ += statement + ";\n";
  }
  // Either branch rebuilt the physical tables; cached plans are stale.
  BumpMappingGeneration();
  StatementOutcome outcome;
  outcome.message = "ok (" + std::to_string(db()->mapping().tables().size()) +
                    " physical tables)";
  return outcome;
}

/// INSERT <Entity> (attr = literal, ...): builds a struct value and goes
/// through the logical insert (which also WAL-logs it when a database is
/// attached).
Result<StatementOutcome> StatementRunner::InsertLocked(
    const std::string& statement) {
  ERBIUM_ASSIGN_OR_RETURN(std::vector<Token> tokens,
                          Lexer::Tokenize(statement));
  TokenStream ts(std::move(tokens));
  if (!ts.ConsumeKeyword("insert")) {
    return Status::ParseError("expected INSERT");
  }
  ERBIUM_ASSIGN_OR_RETURN(std::string entity,
                          ts.ExpectIdentifier("entity set name"));
  ERBIUM_RETURN_NOT_OK(ts.ExpectSymbol("("));
  Value::StructData fields;
  while (true) {
    ERBIUM_ASSIGN_OR_RETURN(std::string attr,
                            ts.ExpectIdentifier("attribute name"));
    ERBIUM_RETURN_NOT_OK(ts.ExpectSymbol("="));
    bool negative = ts.ConsumeSymbol("-");
    const Token& tok = ts.Advance();
    Value value;
    switch (tok.kind) {
      case TokenKind::kInteger:
        value = Value::Int64(negative ? -tok.int_value : tok.int_value);
        break;
      case TokenKind::kFloat:
        value = Value::Float64(negative ? -tok.float_value : tok.float_value);
        break;
      case TokenKind::kString:
        value = Value::String(tok.text);
        break;
      case TokenKind::kIdentifier:
        if (tok.IsKeyword("true")) {
          value = Value::Bool(true);
        } else if (tok.IsKeyword("false")) {
          value = Value::Bool(false);
        } else if (tok.IsKeyword("null")) {
          value = Value::Null();
        } else {
          return Status::ParseError("unexpected value '" + tok.text + "'");
        }
        break;
      default:
        return Status::ParseError("expected a literal value");
    }
    if (negative && tok.kind != TokenKind::kInteger &&
        tok.kind != TokenKind::kFloat) {
      return Status::ParseError("'-' must precede a numeric literal");
    }
    fields.emplace_back(std::move(attr), std::move(value));
    if (ts.ConsumeSymbol(",")) continue;
    ERBIUM_RETURN_NOT_OK(ts.ExpectSymbol(")"));
    break;
  }
  if (!ts.AtEnd() && !ts.ConsumeSymbol(";")) {
    return Status::ParseError("unexpected trailing input after INSERT");
  }
  ERBIUM_RETURN_NOT_OK(
      db()->InsertEntity(entity, Value::Struct(std::move(fields))));
  StatementOutcome outcome;
  outcome.message = "ok";
  return outcome;
}

/// REMAP <preset>: switch the physical mapping, migrating data.
Result<StatementOutcome> StatementRunner::RemapLocked(
    const std::string& statement) {
  ERBIUM_ASSIGN_OR_RETURN(std::vector<Token> tokens,
                          Lexer::Tokenize(statement));
  TokenStream ts(std::move(tokens));
  if (!ts.ConsumeKeyword("remap")) {
    return Status::ParseError("expected REMAP");
  }
  ERBIUM_ASSIGN_OR_RETURN(std::string name,
                          ts.ExpectIdentifier("mapping preset name"));
  if (!ts.AtEnd() && !ts.ConsumeSymbol(";")) {
    return Status::ParseError("unexpected trailing input after REMAP");
  }
  MappingSpec next = PresetByName(name);
  ERBIUM_RETURN_NOT_OK(RemapSpec(next));
  StatementOutcome outcome;
  outcome.message = "remapped to " + next.ToString() + " (data migrated)";
  return outcome;
}

Status StatementRunner::RemapSpec(const MappingSpec& next) {
  if (durable_ != nullptr) {
    ERBIUM_RETURN_NOT_OK(durable_->Remap(next));
    BumpMappingGeneration();
    return Status::OK();
  }
  MappingSpec old = spec_;
  spec_ = next;
  Status st = Rebuild(schema_);
  if (!st.ok()) {
    spec_ = std::move(old);
    return st;
  }
  BumpMappingGeneration();
  return Status::OK();
}

Status StatementRunner::RemapPreset(const std::string& name) {
  std::unique_lock<std::shared_mutex> lock(statement_mu_);
  return RemapSpec(PresetByName(name));
}

Result<StatementOutcome> StatementRunner::AttachLocked(
    const std::string& statement) {
  ERBIUM_ASSIGN_OR_RETURN(erql::Query query, erql::Parser::Parse(statement));
  if (query.statement != erql::StatementKind::kAttach) {
    return Status::ParseError("expected ATTACH DATABASE '<dir>'");
  }
  if (durable_ != nullptr) {
    return Status::InvalidArgument("already attached to " + durable_->dir());
  }
  StatementOutcome outcome;
  ERBIUM_RETURN_NOT_OK(AttachDir(query.attach_path, &outcome.message));
  return outcome;
}

Status StatementRunner::AttachDir(const std::string& dir,
                                  std::string* message) {
  durability::DurableDatabase::Options options;
  options.spec = spec_;
  options.initial_ddl = ddl_history_;
  options.sync = sync_;
  auto opened = durability::DurableDatabase::Open(dir, std::move(options));
  if (!opened.ok()) return opened.status();
  durable_ = std::move(opened).value();
  db_.reset();
  // The in-memory database (and every plan bound to it) just got
  // replaced by the recovered one.
  BumpMappingGeneration();
  const auto& info = durable_->recovery_info();
  *message = "attached " + dir + " (snapshot gen " +
             std::to_string(info.snapshot_gen) + ", " +
             std::to_string(info.records_replayed) + " records replayed" +
             (info.wal_clean ? "" : ", torn WAL tail discarded") + ")";
  return Status::OK();
}

void StatementRunner::BumpMappingGeneration() {
  uint64_t next =
      mapping_generation_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (plan_cache_ != nullptr) plan_cache_->InvalidateBelow(next);
}

Status StatementRunner::FinalCheckpoint() {
  std::unique_lock<std::shared_mutex> lock(statement_mu_);
  if (durable_ == nullptr) return Status::OK();
  return durable_->Checkpoint().status();
}

}  // namespace api
}  // namespace erbium
