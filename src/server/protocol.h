#ifndef ERBIUM_SERVER_PROTOCOL_H_
#define ERBIUM_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "api/statement_runner.h"
#include "common/status.h"
#include "erql/query_engine.h"

namespace erbium {
namespace server {

/// The ErbiumDB wire protocol: length-prefixed binary frames over TCP,
/// reusing the WAL's little-endian serde helpers and CRC so both on-disk
/// and on-wire bytes share one encoding discipline.
///
/// Frame layout (everything little-endian):
///
///   [u32 payload_len][u32 crc32(payload)][payload]
///   payload = [u8 frame_type][type-specific body]
///
/// Conversation: the client opens with kHello and the server answers
/// kHelloOk (or kError, e.g. when at max connections). After that each
/// client frame gets exactly one server frame in order:
///
///   kStatement -> kResult | kError
///   kPing      -> kPong
///   kGoodbye   -> (none; both sides close)
///
/// Bodies:
///   kHello     u32 protocol_version, string client_name
///   kHelloOk   u32 protocol_version, u64 session_id, string banner
///   kStatement string statement_text
///   kPing      (empty)
///   kGoodbye   (empty)
///   kResult    u8 shape (api::OutputShape), string message,
///              u32 n_columns, n_columns * string,
///              u32 n_rows, n_rows * Values (serde PutValues)
///   kError     u32 status_code (StatusCodeToWire), string message
///   kPong      (empty)
///
/// Malformed input (bad CRC, oversized length, truncated frame, unknown
/// type) is always answered with a typed kError frame when the socket
/// still permits a write, then the connection closes — never a silent
/// drop, never a crash.
enum class FrameType : uint8_t {
  // Client -> server.
  kHello = 1,
  kStatement = 2,
  kPing = 3,
  kGoodbye = 4,
  // Server -> client (high bit set).
  kHelloOk = 0x81,
  kResult = 0x82,
  kError = 0x83,
  kPong = 0x84,
};

/// Bumped only for incompatible changes; the server rejects mismatches
/// in the handshake with kError(InvalidArgument).
constexpr uint32_t kProtocolVersion = 1;

/// Upper bound on a frame payload. A length prefix above this is
/// rejected before any buffering, so a garbage header cannot cause a
/// multi-gigabyte allocation. 16 MiB comfortably fits real result sets;
/// larger ones should page through LIMIT.
constexpr uint32_t kMaxFramePayloadBytes = 16u << 20;

/// A decoded frame: the type tag plus the raw type-specific body.
struct Frame {
  FrameType type = FrameType::kError;
  std::string body;
};

/// Encodes a complete wire frame (header + CRC + payload).
std::string EncodeFrame(FrameType type, const std::string& body);

// ---- Body encoders --------------------------------------------------------

std::string EncodeHelloBody(const std::string& client_name);
std::string EncodeHelloOkBody(uint64_t session_id, const std::string& banner);
std::string EncodeStatementBody(const std::string& statement);
std::string EncodeResultBody(const api::StatementOutcome& outcome);
std::string EncodeErrorBody(const Status& status);

// ---- Body decoders --------------------------------------------------------
// Each fails with Status::IOError on truncated or malformed bodies; a
// decoded kError body comes back as the transported Status itself.

struct HelloBody {
  uint32_t version = 0;
  std::string client_name;
};
Result<HelloBody> DecodeHelloBody(const std::string& body);

struct HelloOkBody {
  uint32_t version = 0;
  uint64_t session_id = 0;
  std::string banner;
};
Result<HelloOkBody> DecodeHelloOkBody(const std::string& body);

Result<std::string> DecodeStatementBody(const std::string& body);
Result<api::StatementOutcome> DecodeResultBody(const std::string& body);
/// Decodes the Status a kError frame transports into *out (its code
/// round-trips through StatusCodeToWire/FromWire). The return value
/// reports decode failures — a truncated or garbled error body.
Status DecodeErrorBody(const std::string& body, Status* out);

/// A connected socket speaking the frame protocol — the single I/O path
/// shared by the server's sessions and the client driver. Owns the fd
/// and closes it on destruction.
class FrameSocket {
 public:
  explicit FrameSocket(int fd) : fd_(fd) {}
  ~FrameSocket();

  FrameSocket(const FrameSocket&) = delete;
  FrameSocket& operator=(const FrameSocket&) = delete;

  int fd() const { return fd_; }

  /// Writes one complete frame (retrying short writes). SIGPIPE is
  /// suppressed; a peer that vanished surfaces as Status::IOError.
  Status Send(FrameType type, const std::string& body);

  /// Reads one complete frame. `timeout_ms` bounds the whole read
  /// (poll-based); negative blocks forever. Error taxonomy:
  ///   kUnavailable       orderly EOF at a frame boundary (peer closed)
  ///   kDeadlineExceeded  nothing (or only part of a frame) arrived in time
  ///   kIOError           torn frame, CRC mismatch, oversized length,
  ///                      empty payload, or a socket error
  Result<Frame> Recv(int timeout_ms);

  /// Shuts down the read side, unblocking a concurrent Recv with EOF.
  /// Used by graceful shutdown to drain sessions.
  void ShutdownRead();

 private:
  int fd_;
};

}  // namespace server
}  // namespace erbium

#endif  // ERBIUM_SERVER_PROTOCOL_H_
