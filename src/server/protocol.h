#ifndef ERBIUM_SERVER_PROTOCOL_H_
#define ERBIUM_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "api/statement_runner.h"
#include "common/status.h"
#include "erql/query_engine.h"

namespace erbium {
namespace server {

/// The ErbiumDB wire protocol: length-prefixed binary frames over TCP,
/// reusing the WAL's little-endian serde helpers and CRC so both on-disk
/// and on-wire bytes share one encoding discipline.
///
/// Frame layout (everything little-endian):
///
///   [u32 payload_len][u32 crc32(payload)][payload]
///   payload = [u8 frame_type][type-specific body]
///
/// Conversation: the client opens with kHello and the server answers
/// kHelloOk (or kError, e.g. when at max connections). After that each
/// client frame gets exactly one server frame:
///
///   kStatement    -> kResult | kError
///   kStatementSeq -> kResultSeq | kErrorSeq   (pipelined, tagged)
///   kPing         -> kPong
///   kGoodbye      -> (none; both sides close)
///
/// Pipelining: a client may send any number of kStatementSeq frames
/// without waiting for replies. The server executes each session's
/// statements strictly in arrival order and answers with the same `seq`
/// tag, in the same order — different sessions proceed concurrently,
/// one session never reorders. kPing is answered immediately and may
/// therefore overtake pending pipelined responses; kStatement (untagged)
/// keeps its classic one-in-flight request/response use. Statements
/// queued past the server's per-connection pipeline depth are not
/// dropped — the server simply stops reading that socket until the
/// queue drains (TCP backpressure).
///
/// Bodies:
///   kHello        u32 protocol_version, string client_name
///   kHelloOk      u32 protocol_version, u64 session_id, string banner
///   kStatement    string statement_text
///   kStatementSeq u64 seq, string statement_text
///   kPing         (empty)
///   kGoodbye      (empty)
///   kResult       u8 shape (api::OutputShape), string message,
///                 u32 n_columns, n_columns * string,
///                 u32 n_rows, n_rows * Values (serde PutValues)
///   kResultSeq    u64 seq, then a kResult body
///   kError        u32 status_code (StatusCodeToWire), string message
///   kErrorSeq     u64 seq, then a kError body
///   kPong         (empty)
///
/// Malformed input (bad CRC, oversized length, truncated frame, unknown
/// type) is always answered with a typed kError frame when the socket
/// still permits a write, then the connection closes — never a silent
/// drop, never a crash.
enum class FrameType : uint8_t {
  // Client -> server.
  kHello = 1,
  kStatement = 2,
  kPing = 3,
  kGoodbye = 4,
  kStatementSeq = 5,
  // Server -> client (high bit set).
  kHelloOk = 0x81,
  kResult = 0x82,
  kError = 0x83,
  kPong = 0x84,
  kResultSeq = 0x85,
  kErrorSeq = 0x86,
};

/// Bumped only for incompatible changes; the server rejects mismatches
/// in the handshake with kError(InvalidArgument). New frame *types* are
/// append-only and do not bump the version: a peer that never sends
/// kStatementSeq never sees a seq-tagged reply.
constexpr uint32_t kProtocolVersion = 1;

/// Upper bound on a frame payload. A length prefix above this is
/// rejected before any buffering, so a garbage header cannot cause a
/// multi-gigabyte allocation. 16 MiB comfortably fits real result sets;
/// larger ones should page through LIMIT.
constexpr uint32_t kMaxFramePayloadBytes = 16u << 20;

/// A decoded frame: the type tag plus the raw type-specific body.
struct Frame {
  FrameType type = FrameType::kError;
  std::string body;
};

/// Encodes a complete wire frame (header + CRC + payload).
std::string EncodeFrame(FrameType type, const std::string& body);

// ---- Body encoders --------------------------------------------------------

std::string EncodeHelloBody(const std::string& client_name);
std::string EncodeHelloOkBody(uint64_t session_id, const std::string& banner);
std::string EncodeStatementBody(const std::string& statement);
std::string EncodeResultBody(const api::StatementOutcome& outcome);
std::string EncodeErrorBody(const Status& status);
/// Seq-tagged variants for pipelining: `u64 seq` then the untagged body.
std::string EncodeStatementSeqBody(uint64_t seq, const std::string& statement);
std::string EncodeResultSeqBody(uint64_t seq,
                                const api::StatementOutcome& outcome);
std::string EncodeErrorSeqBody(uint64_t seq, const Status& status);

// ---- Body decoders --------------------------------------------------------
// Each fails with Status::IOError on truncated or malformed bodies; a
// decoded kError body comes back as the transported Status itself.

struct HelloBody {
  uint32_t version = 0;
  std::string client_name;
};
Result<HelloBody> DecodeHelloBody(const std::string& body);

struct HelloOkBody {
  uint32_t version = 0;
  uint64_t session_id = 0;
  std::string banner;
};
Result<HelloOkBody> DecodeHelloOkBody(const std::string& body);

Result<std::string> DecodeStatementBody(const std::string& body);
Result<api::StatementOutcome> DecodeResultBody(const std::string& body);

/// Server-side latency breakdown a kResultSeq frame may carry as a
/// trailing footer — the server measured where the statement's time
/// went, the client gets to see it without a second round-trip.
/// write-stall is intentionally absent: the server only knows it after
/// the response (including this footer) has left the socket.
struct ServerTiming {
  bool present = false;
  uint64_t queue_wait_us = 0;  // frame decode -> worker pickup
  uint64_t execute_us = 0;     // worker execute window
};

/// Footer layout, appended after a kResultSeq result body:
///
///   [u8 0xF7 marker][u8 n_fields][n_fields * (string name, u64 value)]
///
/// Self-describing so fields are append-only: a decoder skips names it
/// does not know, and a v1 client that never asks for timing still
/// decodes the body via the strict overload's prefix. Only kResultSeq
/// carries it — plain kResult keeps its exact-length contract, which is
/// the corruption tripwire for classic one-shot clients.
constexpr uint8_t kServerTimingMarker = 0xF7;

std::string EncodeServerTimingFooter(const ServerTiming& timing);

/// Timing-aware overload: decodes the result body and, when a
/// well-formed timing footer trails it, fills *timing (present = true).
/// Trailing bytes that are not a timing footer are still an error.
Result<api::StatementOutcome> DecodeResultBody(const std::string& body,
                                               ServerTiming* timing);

struct StatementSeqBody {
  uint64_t seq = 0;
  std::string statement;
};
Result<StatementSeqBody> DecodeStatementSeqBody(const std::string& body);
/// Splits a seq-tagged server body (kResultSeq / kErrorSeq) into the
/// tag and the untagged remainder, decodable by the plain decoders.
Result<uint64_t> DecodeSeqPrefix(const std::string& body, std::string* rest);
/// Decodes the Status a kError frame transports into *out (its code
/// round-trips through StatusCodeToWire/FromWire). The return value
/// reports decode failures — a truncated or garbled error body.
Status DecodeErrorBody(const std::string& body, Status* out);

/// Incremental frame decoder for non-blocking sockets: the reactor
/// feeds whatever bytes recv() produced and pulls out as many complete
/// frames as those bytes contain. Tolerates frames torn across any
/// number of reads; byte-level garbage (bad CRC, oversized or empty
/// payload) is unrecoverable because framing is lost — the connection
/// must be closed.
class FrameDecoder {
 public:
  /// Appends raw socket bytes to the internal buffer.
  void Feed(const char* data, size_t size);

  /// Extracts the next complete frame. Returns true and fills *out when
  /// a frame was decoded, false when more bytes are needed; an error
  /// Status (kIOError) means the stream is garbled beyond recovery.
  Result<bool> Next(Frame* out);

  /// Bytes buffered but not yet consumed by Next().
  size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::string buf_;
  size_t pos_ = 0;  // consumed prefix, compacted lazily
};

/// A connected socket speaking the frame protocol — the single I/O path
/// shared by the server's sessions and the client driver. Owns the fd
/// and closes it on destruction.
class FrameSocket {
 public:
  explicit FrameSocket(int fd) : fd_(fd) {}
  ~FrameSocket();

  FrameSocket(const FrameSocket&) = delete;
  FrameSocket& operator=(const FrameSocket&) = delete;

  int fd() const { return fd_; }

  /// Writes one complete frame (retrying short writes). SIGPIPE is
  /// suppressed; a peer that vanished surfaces as Status::IOError.
  Status Send(FrameType type, const std::string& body);

  /// Reads one complete frame. `timeout_ms` bounds the whole read
  /// (poll-based); negative blocks forever. Error taxonomy:
  ///   kUnavailable       orderly EOF at a frame boundary (peer closed)
  ///   kDeadlineExceeded  nothing (or only part of a frame) arrived in time
  ///   kIOError           torn frame, CRC mismatch, oversized length,
  ///                      empty payload, or a socket error
  Result<Frame> Recv(int timeout_ms);

  /// Shuts down the read side, unblocking a concurrent Recv with EOF.
  /// Used by graceful shutdown to drain sessions.
  void ShutdownRead();

 private:
  int fd_;
};

}  // namespace server
}  // namespace erbium

#endif  // ERBIUM_SERVER_PROTOCOL_H_
