#ifndef ERBIUM_SERVER_SERVER_H_
#define ERBIUM_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "server/session.h"

namespace erbium {
namespace server {

/// Network server configuration. The runner options decide what database
/// the server fronts (empty, --figure4 preloaded, or attached to disk).
struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read the bound one back with port().
  int port = 0;
  /// Admission limit; connection #max+1 gets kError(kUnavailable) and a
  /// close — typed backpressure, never a silent drop.
  int max_connections = 64;
  /// listen(2) backlog — the bounded accept queue. Connections beyond
  /// backlog while the accept thread is busy queue in the kernel; the
  /// admission check above bounds what we accept.
  int accept_backlog = 16;
  /// A connection idle (no complete frame) this long is told
  /// kError(kDeadlineExceeded) and closed. <= 0 disables.
  int idle_timeout_ms = 60'000;
  /// Per-statement budget (see Session::Execute). <= 0 disables.
  int request_deadline_ms = 30'000;
  /// Database configuration (mapping preset, figure4 preload, attach
  /// directory, WAL sync mode).
  api::StatementRunner::Options runner;
  /// CHECKPOINT once all sessions have drained during Stop(), when a
  /// database is attached.
  bool checkpoint_on_shutdown = true;
};

/// Thread-per-connection TCP server speaking the frame protocol of
/// server/protocol.h. One accept thread admits connections (refusing
/// typed-and-loud beyond max_connections); each connection gets a thread
/// running handshake -> statement loop against a Session from the shared
/// SessionManager, which serializes writers and lets readers overlap.
///
/// Stop() (also the destructor) is graceful: the listener closes first
/// so no new work arrives, then every connection's read side is shut
/// down — a session blocked in Recv wakes with EOF and exits, a session
/// mid-statement finishes, sends its result, and exits on the next
/// read — then all threads are joined and, when a database is attached,
/// a final CHECKPOINT collapses the WAL.
class Server {
 public:
  static Result<std::unique_ptr<Server>> Start(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound TCP port (resolves ephemeral binds).
  int port() const { return port_; }

  /// Graceful shutdown; idempotent. Returns the final-checkpoint status
  /// (OK when nothing is attached or checkpointing is disabled).
  Status Stop();

  SessionManager* session_manager() { return manager_.get(); }
  size_t active_connections() const { return manager_->active_sessions(); }

 private:
  explicit Server(ServerOptions options) : options_(std::move(options)) {}

  void AcceptLoop();
  void ServeConnection(int fd, uint64_t conn_id, const std::string& peer);

  ServerOptions options_;
  int port_ = 0;
  // Written by Start()/Stop(), read by the accept thread — atomic so the
  // close-on-shutdown handoff is race-free.
  std::atomic<int> listen_fd_{-1};
  std::unique_ptr<SessionManager> manager_;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> next_conn_id_{1};

  /// Live connection threads plus their fds, so Stop() can shut down
  /// read sides and join. Guarded by mu_.
  std::mutex mu_;
  std::map<uint64_t, std::thread> conn_threads_;
  std::map<uint64_t, int> conn_fds_;
  /// Threads whose connections already finished, awaiting join.
  std::vector<std::thread> finished_threads_;
};

}  // namespace server
}  // namespace erbium

#endif  // ERBIUM_SERVER_SERVER_H_
