#ifndef ERBIUM_SERVER_SERVER_H_
#define ERBIUM_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/status.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "server/protocol.h"
#include "server/session.h"

namespace erbium {
namespace server {

/// Network server configuration. The runner options decide what database
/// the server fronts (empty, --figure4 preloaded, or attached to disk).
struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read the bound one back with port().
  int port = 0;
  /// Admission limit; connection #max+1 gets kError(kUnavailable) at its
  /// Hello and a close — typed backpressure, never a silent drop.
  int max_connections = 64;
  /// listen(2) backlog — the bounded accept queue.
  int accept_backlog = 16;
  /// A connection idle (no complete frame) this long is told
  /// kError(kDeadlineExceeded) and closed. <= 0 disables.
  int idle_timeout_ms = 60'000;
  /// Per-statement budget (see Session::Execute). <= 0 disables.
  int request_deadline_ms = 30'000;
  /// Statement-execution worker threads. 0 sizes to the hardware
  /// concurrency (at least 2). The server owns a dedicated pool — never
  /// ThreadPool::Shared(), whose contract forbids intra-pool waits and
  /// which parallel query execution submits to from these very workers.
  int worker_threads = 0;
  /// Per-connection pipelining bound: once this many statements are
  /// queued or executing for one connection, the reactor stops reading
  /// its socket until responses drain (TCP backpressure — statements are
  /// delayed, never dropped).
  int max_pipeline_depth = 128;
  /// Database configuration (mapping preset, figure4 preload, attach
  /// directory, WAL sync mode).
  api::StatementRunner::Options runner;
  /// CHECKPOINT once all sessions have drained during Stop(), when a
  /// database is attached.
  bool checkpoint_on_shutdown = true;
  /// Second listener, served by the same epoll loop, speaking just
  /// enough HTTP for `GET /metrics` (Prometheus text exposition) and
  /// `GET /healthz` — the server is scrapeable without a wire-protocol
  /// session. -1 disables; 0 binds an ephemeral port (read it back
  /// with metrics_port()).
  int metrics_port = -1;
};

/// Event-driven TCP server speaking the frame protocol of
/// server/protocol.h. One reactor thread owns every socket: an epoll
/// loop accepts connections, reads frames through the incremental
/// FrameDecoder, and answers handshakes and Pings inline. Decoded
/// statements are handed to a small dedicated worker pool; responses
/// come back through a completion queue (eventfd wakeup) and are
/// written by the loop, buffered when the peer's window is full. An
/// idle connection therefore costs one fd and ~one Connection struct —
/// not a thread — so thousands of idle sessions are cheap.
///
/// Ordering: each connection's statements execute strictly in arrival
/// order (one in flight per connection; the rest wait in its pending
/// queue), and responses are written in that same order. Clients may
/// pipeline kStatementSeq frames without waiting; different connections
/// execute concurrently across the worker pool, subject to the
/// engine's shared/exclusive statement lock.
///
/// Stop() (also the destructor) is graceful: the listener closes first,
/// every connection stops reading, in-flight and queued statements
/// finish and their responses flush (bounded by a drain deadline for
/// peers that stopped reading), then the loop and workers join and,
/// when a database is attached, a final CHECKPOINT collapses the WAL.
class Server {
 public:
  static Result<std::unique_ptr<Server>> Start(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound TCP port (resolves ephemeral binds).
  int port() const { return port_; }

  /// The bound metrics/health HTTP port, -1 when disabled.
  int metrics_port() const { return metrics_port_; }

  /// Graceful shutdown; idempotent. Returns the final-checkpoint status
  /// (OK when nothing is attached or checkpointing is disabled).
  Status Stop();

  SessionManager* session_manager() { return manager_.get(); }
  size_t active_connections() const { return manager_->active_sessions(); }

 private:
  struct Connection;
  /// A worker's finished statement: the already-encoded response frame,
  /// routed back to its connection by id (the connection may be gone),
  /// plus the lifecycle stamps the flush path needs to finish the
  /// statement's timing story once the last byte leaves the socket.
  struct Completion {
    uint64_t conn_id = 0;
    std::string frame;
    uint64_t telemetry_seq = 0;  // QueryTelemetry seq, 0 if unrecorded
    uint64_t decode_ns = 0;      // statement frame decoded (t0)
    uint64_t done_ns = 0;        // worker finished executing (t2); also
                                 // the completion-queue push time the
                                 // loop-lag histogram measures against
  };
  struct PendingStatement {
    bool tagged = false;  // kStatementSeq (reply carries seq) vs kStatement
    uint64_t seq = 0;
    std::string text;
    uint64_t decode_ns = 0;  // MonotonicNowNs() at frame decode (t0)
  };

  explicit Server(ServerOptions options) : options_(std::move(options)) {}

  void EventLoop();
  void HandleAccept(int listen_fd, bool http);
  void HandleReadable(const std::shared_ptr<Connection>& conn);
  void HandleHttpReadable(const std::shared_ptr<Connection>& conn);
  void HandleHttpRequest(const std::shared_ptr<Connection>& conn);
  void DrainDecoder(const std::shared_ptr<Connection>& conn);
  void HandleFrame(const std::shared_ptr<Connection>& conn,
                   FrameType type, const std::string& body);
  void ScheduleNext(const std::shared_ptr<Connection>& conn);
  void ExecuteOnWorker(std::shared_ptr<Connection> conn,
                       PendingStatement item);
  void DrainCompletions();
  void QueueFrame(const std::shared_ptr<Connection>& conn, FrameType type,
                  const std::string& body);
  /// Appends pre-encoded bytes to conn's write queue, maintaining the
  /// backlog accounting (gauge + per-connection peak).
  void QueueBytes(const std::shared_ptr<Connection>& conn, std::string bytes,
                  uint64_t telemetry_seq = 0, uint64_t decode_ns = 0,
                  uint64_t done_ns = 0);
  /// Drops conn's write queue (broken socket / forced close), keeping
  /// the backlog gauge honest.
  void DiscardOutput(const std::shared_ptr<Connection>& conn);
  void FlushWrites(const std::shared_ptr<Connection>& conn);
  void BeginDrain(const std::shared_ptr<Connection>& conn);
  void UpdateEpoll(const std::shared_ptr<Connection>& conn);
  void MaybeClose(const std::shared_ptr<Connection>& conn);
  void CloseConnection(const std::shared_ptr<Connection>& conn);
  void HandleTimeouts();
  int ComputeTimeoutMs() const;
  void WakeLoop();
  /// Pushes conn's transport counters into the SessionRegistry (the
  /// SHOW SESSIONS source); per-event granularity, never per byte.
  void SyncSessionStats(const std::shared_ptr<Connection>& conn);
  void RegisterMetrics();

  ServerOptions options_;
  int port_ = 0;
  int listen_fd_ = -1;
  int metrics_listen_fd_ = -1;
  int metrics_port_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: workers (and Stop) wake the loop
  uint64_t start_ns_ = 0;  // MonotonicNowNs() at Start, for the uptime gauge

  std::unique_ptr<SessionManager> manager_;
  /// Dedicated statement-execution pool (see ServerOptions::worker_threads).
  std::unique_ptr<ThreadPool> workers_;
  std::thread loop_thread_;
  std::atomic<bool> stopping_{false};
  bool shutdown_started_ = false;  // loop-thread only
  int64_t drain_deadline_ms_ = 0;  // loop-thread only

  /// Loop-thread-owned connection table; workers never touch it — they
  /// reference connections by id through the completion queue.
  std::unordered_map<uint64_t, std::shared_ptr<Connection>> conns_;
  uint64_t next_conn_id_ = 3;  // 0 = listener, 1 = wake eventfd,
                               // 2 = metrics listener

  std::mutex completions_mu_;
  std::deque<Completion> completions_;

  // Cached handles for the reactor/lifecycle metrics (registration takes
  // the registry lock; the hot path must not). All registered once in
  // RegisterMetrics() before the loop thread starts.
  obs::Histogram hist_queue_wait_us_;
  obs::Histogram hist_execute_us_;
  obs::Histogram hist_write_stall_us_;
  obs::Histogram hist_total_us_;
  obs::Histogram hist_loop_lag_us_;
  obs::Histogram hist_loop_iter_us_;
  obs::Histogram hist_pipeline_depth_;
  obs::Counter ctr_bytes_in_;
  obs::Counter ctr_bytes_out_;
  obs::Counter ctr_scrapes_;
  obs::Counter ctr_scrape_requests_;
  obs::Histogram hist_scrape_duration_us_;
  obs::Gauge gauge_worker_queue_;
  obs::Gauge gauge_write_backlog_;
  obs::Gauge gauge_uptime_;
  /// Loop-thread shadow of gauge_write_backlog_ (buffered response bytes
  /// across all connections).
  int64_t write_backlog_bytes_ = 0;
};

}  // namespace server
}  // namespace erbium

#endif  // ERBIUM_SERVER_SERVER_H_
