#include "server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/session.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace erbium {
namespace server {

namespace {

constexpr uint64_t kListenerTag = 0;
constexpr uint64_t kWakeTag = 1;
constexpr uint64_t kMetricsListenerTag = 2;
/// How long Stop() keeps flushing responses toward peers that stopped
/// reading before dropping them on the floor.
constexpr int64_t kDrainDeadlineMs = 5'000;
/// An HTTP request (line + headers) larger than this is rejected with
/// 431 — /metrics and /healthz requests are a few hundred bytes.
constexpr size_t kMaxHttpRequestBytes = 16 * 1024;

/// Microsecond latency bucket edges for the statement-lifecycle and
/// reactor histograms: 10us point-read territory through multi-second
/// stalls.
const std::vector<double>& LatencyBoundsUs() {
  static const std::vector<double>* bounds = new std::vector<double>{
      10,     25,     50,      100,     250,     500,   1000, 2500,
      5000,   10000,  25000,   50000,   100000,  250000, 1e6,  5e6};
  return *bounds;
}

/// The loop is expected to turn around in microseconds; its buckets
/// start an order of magnitude lower than the statement buckets.
const std::vector<double>& LoopBoundsUs() {
  static const std::vector<double>* bounds = new std::vector<double>{
      5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 50000, 100000};
  return *bounds;
}

const std::vector<double>& PipelineDepthBounds() {
  static const std::vector<double>* bounds =
      new std::vector<double>{1, 2, 4, 8, 16, 32, 64, 128, 256};
  return *bounds;
}

std::string PeerName(const struct sockaddr_in& addr) {
  char ip[INET_ADDRSTRLEN] = {0};
  ::inet_ntop(AF_INET, &addr.sin_addr, ip, sizeof(ip));
  return std::string(ip) + ":" + std::to_string(ntohs(addr.sin_port));
}

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Creates a bound, listening, non-blocking TCP socket and writes the
/// resolved port (meaningful for ephemeral binds) to *bound_port.
Result<int> BindListener(const std::string& host, int port, int backlog,
                         int* bound_port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket failed: ") +
                           std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("unparseable listen address '" + host +
                                   "'");
  }
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status st = Status::IOError("bind to " + host + ":" +
                                std::to_string(port) +
                                " failed: " + std::strerror(errno));
    ::close(fd);
    return st;
  }
  if (::listen(fd, backlog) < 0) {
    Status st =
        Status::IOError(std::string("listen failed: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &addr_len);
  *bound_port = ntohs(addr.sin_port);
  SetNonBlocking(fd);
  return fd;
}

}  // namespace

/// Per-connection reactor state. Everything here is owned by the loop
/// thread, with two exceptions a worker may touch while `executing` is
/// true: `id` and the `session` pointer (set once at handshake, cleared
/// only after the last reference drops). The loop never closes a
/// connection while a statement is executing, so a worker's Session
/// stays valid for the whole statement.
struct Server::Connection {
  int fd = -1;
  uint64_t id = 0;
  std::string peer;
  std::unique_ptr<Session> session;  // null until the Hello handshake
  FrameDecoder decoder;

  /// One queued response: the encoded bytes plus — for statement
  /// responses — the lifecycle stamps that let the flush path close the
  /// timing story when the last byte leaves the socket. Control frames
  /// (HelloOk, Pong, errors, HTTP responses) leave the stamps zero and
  /// cost the write path no clock read.
  struct OutFrame {
    std::string bytes;
    uint64_t telemetry_seq = 0;
    uint64_t decode_ns = 0;  // statement frame decoded (t0)
    uint64_t done_ns = 0;    // worker finished executing (t2)
  };

  /// Encoded response frames awaiting the socket; front() is partially
  /// written up to out_offset.
  std::deque<OutFrame> out;
  size_t out_offset = 0;
  /// Bytes in `out` not yet written; QueueBytes/FlushWrites/DiscardOutput
  /// keep it (and the server-wide backlog gauge) in step.
  size_t out_bytes = 0;

  /// True for connections accepted on the metrics listener: they speak
  /// HTTP, never the frame protocol, and close after one response.
  bool http = false;
  std::string http_request;  // bytes buffered until the blank line

  // Transport counters surfaced by SHOW SESSIONS.
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t peak_out_bytes = 0;

  /// Statements decoded but not yet handed to a worker; at most one is
  /// executing at a time, preserving per-session statement order.
  std::deque<PendingStatement> pending;
  bool executing = false;

  bool draining = false;     // stop reading; close once work + out drain
  bool broken = false;       // socket unusable; close once not executing
  bool read_paused = false;  // pipeline depth reached; EPOLLIN de-armed
  uint32_t armed = 0;        // last epoll event mask requested
  int64_t last_activity_ms = 0;

  ~Connection() {
    if (fd >= 0) ::close(fd);
  }
};

Result<std::unique_ptr<Server>> Server::Start(ServerOptions options) {
  std::unique_ptr<Server> server(new Server(std::move(options)));

  SessionManager::Options manager_options;
  manager_options.runner = server->options_.runner;
  manager_options.max_sessions = server->options_.max_connections;
  manager_options.request_deadline_ms = server->options_.request_deadline_ms;
  ERBIUM_ASSIGN_OR_RETURN(server->manager_,
                          SessionManager::Create(std::move(manager_options)));

  ERBIUM_ASSIGN_OR_RETURN(
      int fd, BindListener(server->options_.host, server->options_.port,
                           server->options_.accept_backlog, &server->port_));
  server->listen_fd_ = fd;
  if (server->options_.metrics_port >= 0) {
    ERBIUM_ASSIGN_OR_RETURN(
        server->metrics_listen_fd_,
        BindListener(server->options_.host, server->options_.metrics_port,
                     server->options_.accept_backlog,
                     &server->metrics_port_));
  }

  server->epoll_fd_ = ::epoll_create1(0);
  server->wake_fd_ = ::eventfd(0, EFD_NONBLOCK);
  if (server->epoll_fd_ < 0 || server->wake_fd_ < 0) {
    return Status::IOError(std::string("epoll/eventfd setup failed: ") +
                           std::strerror(errno));
  }
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerTag;
  ::epoll_ctl(server->epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  ev.data.u64 = kWakeTag;
  ::epoll_ctl(server->epoll_fd_, EPOLL_CTL_ADD, server->wake_fd_, &ev);
  if (server->metrics_listen_fd_ >= 0) {
    ev.data.u64 = kMetricsListenerTag;
    ::epoll_ctl(server->epoll_fd_, EPOLL_CTL_ADD, server->metrics_listen_fd_,
                &ev);
  }

  server->RegisterMetrics();

  int workers = server->options_.worker_threads;
  if (workers <= 0) {
    workers = std::max(2u, std::thread::hardware_concurrency());
  }
  server->workers_ = std::make_unique<ThreadPool>(workers);
  server->loop_thread_ = std::thread([raw = server.get()] { raw->EventLoop(); });
  return server;
}

Server::~Server() { Stop(); }

void Server::RegisterMetrics() {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  hist_queue_wait_us_ =
      registry.histogram("server.queue_wait_us", LatencyBoundsUs());
  hist_execute_us_ = registry.histogram("server.execute_us", LatencyBoundsUs());
  hist_write_stall_us_ =
      registry.histogram("server.write_stall_us", LatencyBoundsUs());
  hist_total_us_ =
      registry.histogram("server.statement_total_us", LatencyBoundsUs());
  hist_loop_lag_us_ = registry.histogram("server.loop.lag_us", LoopBoundsUs());
  hist_loop_iter_us_ =
      registry.histogram("server.loop.iteration_us", LoopBoundsUs());
  hist_pipeline_depth_ =
      registry.histogram("server.pipeline_depth", PipelineDepthBounds());
  ctr_bytes_in_ = registry.counter("server.bytes_in");
  ctr_bytes_out_ = registry.counter("server.bytes_out");
  ctr_scrapes_ = registry.counter("server.metrics.scrapes");
  ctr_scrape_requests_ = registry.counter("server.scrape.requests");
  hist_scrape_duration_us_ =
      registry.histogram("server.scrape.duration_us", LatencyBoundsUs());
  gauge_worker_queue_ = registry.gauge("server.worker.queue_depth");
  gauge_write_backlog_ = registry.gauge("server.write_backlog_bytes");
  gauge_uptime_ = registry.gauge("server.uptime_seconds");
  // A constant-1 gauge, the conventional Prometheus way to expose build
  // identity (exports as erbium_build_info).
  registry.gauge("build.info").Set(1);
  start_ns_ = obs::MonotonicNowNs();
  gauge_uptime_.Set(0);
}

void Server::WakeLoop() {
  uint64_t one = 1;
  ssize_t ignored = ::write(wake_fd_, &one, sizeof(one));
  (void)ignored;  // EAGAIN just means a wakeup is already pending.
}

// ---- The reactor ----------------------------------------------------------

void Server::EventLoop() {
  std::vector<struct epoll_event> events(128);
  for (;;) {
    if (stopping_.load() && !shutdown_started_) {
      shutdown_started_ = true;
      drain_deadline_ms_ = NowMs() + kDrainDeadlineMs;
      if (listen_fd_ >= 0) {
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
        ::close(listen_fd_);
        listen_fd_ = -1;
      }
      if (metrics_listen_fd_ >= 0) {
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, metrics_listen_fd_, nullptr);
        ::close(metrics_listen_fd_);
        metrics_listen_fd_ = -1;
      }
      // Stop reading everywhere; in-flight and queued statements finish
      // and their responses flush before each connection closes.
      std::vector<std::shared_ptr<Connection>> all;
      all.reserve(conns_.size());
      for (const auto& entry : conns_) all.push_back(entry.second);
      for (const auto& conn : all) BeginDrain(conn);
    }
    if (shutdown_started_ && conns_.empty()) break;

    int n = ::epoll_wait(epoll_fd_, events.data(),
                         static_cast<int>(events.size()), ComputeTimeoutMs());
    if (n < 0 && errno != EINTR) break;
    // Iteration duration covers the work between epoll_wait returns —
    // the sleep itself is not loop overhead. One clock pair per
    // iteration, never per statement.
    uint64_t work_start_ns = obs::MonotonicNowNs();
    for (int i = 0; i < n; ++i) {
      uint64_t tag = events[i].data.u64;
      uint32_t ev = events[i].events;
      if (tag == kListenerTag) {
        HandleAccept(listen_fd_, /*http=*/false);
        continue;
      }
      if (tag == kMetricsListenerTag) {
        HandleAccept(metrics_listen_fd_, /*http=*/true);
        continue;
      }
      if (tag == kWakeTag) {
        uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      auto it = conns_.find(tag);
      if (it == conns_.end()) continue;  // closed earlier in this batch
      std::shared_ptr<Connection> conn = it->second;
      if (ev & (EPOLLERR | EPOLLHUP)) {
        conn->broken = true;
        conn->pending.clear();
        DiscardOutput(conn);
      }
      if ((ev & EPOLLOUT) && !conn->broken) FlushWrites(conn);
      if ((ev & EPOLLIN) && !conn->broken && !conn->draining) {
        HandleReadable(conn);
      }
      UpdateEpoll(conn);
      MaybeClose(conn);
    }
    DrainCompletions();
    HandleTimeouts();
    hist_loop_iter_us_.Observe(
        static_cast<double>(obs::MonotonicNowNs() - work_start_ns) / 1e3);
  }
}

int Server::ComputeTimeoutMs() const {
  if (shutdown_started_) return 50;
  if (options_.idle_timeout_ms <= 0) return -1;
  int64_t min_deadline = INT64_MAX;
  for (const auto& entry : conns_) {
    const Connection& conn = *entry.second;
    if (conn.draining || conn.broken || conn.executing ||
        !conn.pending.empty()) {
      continue;  // busy connections are not idle
    }
    min_deadline = std::min(
        min_deadline, conn.last_activity_ms + options_.idle_timeout_ms);
  }
  if (min_deadline == INT64_MAX) return -1;
  int64_t wait = min_deadline - NowMs();
  return static_cast<int>(std::clamp<int64_t>(wait, 0, 60'000));
}

void Server::HandleTimeouts() {
  int64_t now = NowMs();
  std::vector<std::shared_ptr<Connection>> expired;
  if (options_.idle_timeout_ms > 0 && !shutdown_started_) {
    for (const auto& entry : conns_) {
      const auto& conn = entry.second;
      if (conn->draining || conn->broken || conn->executing ||
          !conn->pending.empty()) {
        continue;
      }
      if (now - conn->last_activity_ms >= options_.idle_timeout_ms) {
        expired.push_back(conn);
      }
    }
    for (const auto& conn : expired) {
      if (conn->session != nullptr) {
        QueueFrame(conn, FrameType::kError,
                   EncodeErrorBody(Status::DeadlineExceeded(
                       "connection idle past " +
                       std::to_string(options_.idle_timeout_ms) +
                       " ms; closing")));
      }
      // Pre-handshake idlers (port scanners) get a silent close.
      BeginDrain(conn);
    }
  }
  if (shutdown_started_ && now >= drain_deadline_ms_) {
    // Peers that stopped reading forfeit their buffered responses; we
    // still wait out executing statements (their deadline bounds them).
    std::vector<std::shared_ptr<Connection>> stuck;
    for (const auto& entry : conns_) {
      if (!entry.second->executing) stuck.push_back(entry.second);
    }
    for (const auto& conn : stuck) {
      conn->pending.clear();
      DiscardOutput(conn);
      CloseConnection(conn);
    }
  }
}

// ---- Accept + read path ---------------------------------------------------

void Server::HandleAccept(int listen_fd, bool http) {
  if (listen_fd < 0) return;
  auto accepted =
      obs::MetricsRegistry::Global().counter("server.connections.accepted");
  for (;;) {
    struct sockaddr_in peer_addr;
    socklen_t peer_len = sizeof(peer_addr);
    int fd = ::accept4(listen_fd,
                       reinterpret_cast<struct sockaddr*>(&peer_addr),
                       &peer_len, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // EAGAIN: queue drained. Anything else (EMFILE under load, aborted
      // connections) must not kill the listener either.
      break;
    }
    if (!http) accepted.Increment();
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    conn->peer = PeerName(peer_addr);
    conn->http = http;
    conn->last_activity_ms = NowMs();
    struct epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.u64 = conn->id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      continue;  // conn destructor closes the fd
    }
    conn->armed = EPOLLIN;
    conns_[conn->id] = conn;
  }
}

void Server::HandleReadable(const std::shared_ptr<Connection>& conn) {
  if (conn->http) {
    HandleHttpReadable(conn);
    return;
  }
  char buf[64 * 1024];
  bool eof = false;
  for (;;) {
    ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      ctr_bytes_in_.Increment(static_cast<uint64_t>(n));
      conn->bytes_in += static_cast<uint64_t>(n);
      conn->decoder.Feed(buf, static_cast<size_t>(n));
      if (static_cast<size_t>(n) < sizeof(buf)) break;  // drained
      continue;
    }
    if (n == 0) {
      eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    conn->broken = true;
    conn->pending.clear();
    DiscardOutput(conn);
    return;
  }
  DrainDecoder(conn);
  SyncSessionStats(conn);
  // EOF: the peer is done talking; finish its outstanding statements,
  // flush, close.
  if (eof && !conn->draining) BeginDrain(conn);
}

// ---- The metrics/health HTTP endpoint -------------------------------------

void Server::HandleHttpReadable(const std::shared_ptr<Connection>& conn) {
  char buf[16 * 1024];
  bool eof = false;
  for (;;) {
    ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      ctr_bytes_in_.Increment(static_cast<uint64_t>(n));
      conn->bytes_in += static_cast<uint64_t>(n);
      conn->http_request.append(buf, static_cast<size_t>(n));
      if (static_cast<size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n == 0) {
      eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    conn->broken = true;
    DiscardOutput(conn);
    return;
  }
  if (!conn->draining) HandleHttpRequest(conn);
  // EOF before a complete request: nothing to answer, just close.
  if (eof && !conn->draining) BeginDrain(conn);
}

void Server::HandleHttpRequest(const std::shared_ptr<Connection>& conn) {
  auto respond = [&](const char* status, const std::string& content_type,
                     const std::string& body) {
    std::string response = "HTTP/1.1 ";
    response += status;
    response += "\r\nServer: erbium\r\nConnection: close\r\nContent-Type: ";
    response += content_type;
    response += "\r\nContent-Length: " + std::to_string(body.size());
    response += "\r\n\r\n";
    response += body;
    QueueBytes(conn, std::move(response));
    FlushWrites(conn);
    // One request per connection: stop reading, close once flushed.
    BeginDrain(conn);
  };

  if (conn->http_request.size() > kMaxHttpRequestBytes) {
    respond("431 Request Header Fields Too Large", "text/plain",
            "request too large\n");
    return;
  }
  size_t header_end = conn->http_request.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    header_end = conn->http_request.find("\n\n");  // lenient towards nc(1)
    if (header_end == std::string::npos) return;   // need more bytes
  }
  size_t line_end = conn->http_request.find_first_of("\r\n");
  std::string request_line = conn->http_request.substr(0, line_end);
  size_t sp1 = request_line.find(' ');
  size_t sp2 = request_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos ||
      request_line.compare(sp2 + 1, 5, "HTTP/") != 0) {
    respond("400 Bad Request", "text/plain", "malformed request line\n");
    return;
  }
  std::string method = request_line.substr(0, sp1);
  std::string target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (method != "GET") {
    respond("405 Method Not Allowed", "text/plain", "only GET is served\n");
    return;
  }
  if (target == "/metrics") {
    ctr_scrapes_.Increment();
    ctr_scrape_requests_.Increment();
    uint64_t scrape_start = obs::MonotonicNowNs();
    gauge_uptime_.Set(
        static_cast<int64_t>((scrape_start - start_ns_) / 1'000'000'000ULL));
    std::string body = obs::ExportPrometheusText();
    hist_scrape_duration_us_.Observe(
        static_cast<double>(obs::MonotonicNowNs() - scrape_start) / 1e3);
    respond("200 OK", "text/plain; version=0.0.4; charset=utf-8",
            std::move(body));
    return;
  }
  if (target == "/healthz") {
    respond("200 OK", "text/plain", "ok\n");
    return;
  }
  respond("404 Not Found", "text/plain", "not found\n");
}

void Server::DrainDecoder(const std::shared_ptr<Connection>& conn) {
  auto protocol_errors =
      obs::MetricsRegistry::Global().counter("server.protocol_errors");
  while (!conn->draining && !conn->broken) {
    // Backpressure: at max_pipeline_depth stop decoding (and reading —
    // UpdateEpoll de-arms EPOLLIN via read_paused). Buffered bytes keep
    // their place; DrainCompletions resumes us as responses drain.
    int depth = static_cast<int>(conn->pending.size()) +
                (conn->executing ? 1 : 0);
    if (conn->session != nullptr && depth >= options_.max_pipeline_depth) {
      conn->read_paused = true;
      break;
    }
    Frame frame;
    Result<bool> has = conn->decoder.Next(&frame);
    if (!has.ok()) {
      // Garbled bytes: framing is lost, so answer typed and close. The
      // responses of statements already decoded still flush first.
      protocol_errors.Increment();
      QueueFrame(conn, FrameType::kError, EncodeErrorBody(has.status()));
      BeginDrain(conn);
      break;
    }
    if (!*has) break;
    conn->last_activity_ms = NowMs();
    HandleFrame(conn, frame.type, frame.body);
  }
}

void Server::HandleFrame(const std::shared_ptr<Connection>& conn,
                         FrameType type, const std::string& body) {
  auto protocol_errors =
      obs::MetricsRegistry::Global().counter("server.protocol_errors");

  // ---- Handshake: the first frame must be kHello. -------------------------
  if (conn->session == nullptr) {
    if (type != FrameType::kHello) {
      protocol_errors.Increment();
      QueueFrame(conn, FrameType::kError,
                 EncodeErrorBody(Status::InvalidArgument(
                     "expected a Hello frame to open the session")));
      BeginDrain(conn);
      return;
    }
    Result<HelloBody> hello = DecodeHelloBody(body);
    if (!hello.ok()) {
      protocol_errors.Increment();
      QueueFrame(conn, FrameType::kError, EncodeErrorBody(hello.status()));
      BeginDrain(conn);
      return;
    }
    if (hello->version != kProtocolVersion) {
      QueueFrame(conn, FrameType::kError,
                 EncodeErrorBody(Status::InvalidArgument(
                     "protocol version " + std::to_string(hello->version) +
                     " not supported (server speaks " +
                     std::to_string(kProtocolVersion) + ")")));
      BeginDrain(conn);
      return;
    }
    std::string name = hello->client_name.empty()
                           ? "conn-" + std::to_string(conn->id)
                           : hello->client_name;
    Result<std::unique_ptr<Session>> opened =
        manager_->OpenSession(name, conn->peer);
    if (!opened.ok()) {
      // Typed backpressure: at max_connections the client is told
      // kUnavailable and can retry, never silently dropped.
      QueueFrame(conn, FrameType::kError, EncodeErrorBody(opened.status()));
      BeginDrain(conn);
      return;
    }
    conn->session = std::move(opened).value();
    QueueFrame(conn, FrameType::kHelloOk,
               EncodeHelloOkBody(conn->session->id(), "ErbiumDB"));
    return;
  }

  // ---- Established session. -----------------------------------------------
  switch (type) {
    case FrameType::kPing:
      // Answered inline by the loop — a Ping measures reactor liveness
      // and may overtake queued statement responses.
      QueueFrame(conn, FrameType::kPong, "");
      return;
    case FrameType::kGoodbye:
      BeginDrain(conn);
      return;
    case FrameType::kStatement: {
      Result<std::string> statement = DecodeStatementBody(body);
      if (!statement.ok()) {
        protocol_errors.Increment();
        QueueFrame(conn, FrameType::kError,
                   EncodeErrorBody(statement.status()));
        BeginDrain(conn);
        return;
      }
      PendingStatement item;
      item.text = std::move(*statement);
      item.decode_ns = obs::MonotonicNowNs();  // lifecycle t0
      conn->pending.push_back(std::move(item));
      hist_pipeline_depth_.Observe(static_cast<double>(
          conn->pending.size() + (conn->executing ? 1 : 0)));
      ScheduleNext(conn);
      return;
    }
    case FrameType::kStatementSeq: {
      Result<StatementSeqBody> statement = DecodeStatementSeqBody(body);
      if (!statement.ok()) {
        protocol_errors.Increment();
        QueueFrame(conn, FrameType::kError,
                   EncodeErrorBody(statement.status()));
        BeginDrain(conn);
        return;
      }
      PendingStatement item;
      item.tagged = true;
      item.seq = statement->seq;
      item.text = std::move(statement->statement);
      item.decode_ns = obs::MonotonicNowNs();  // lifecycle t0
      conn->pending.push_back(std::move(item));
      hist_pipeline_depth_.Observe(static_cast<double>(
          conn->pending.size() + (conn->executing ? 1 : 0)));
      ScheduleNext(conn);
      return;
    }
    default:
      protocol_errors.Increment();
      QueueFrame(conn, FrameType::kError,
                 EncodeErrorBody(Status::InvalidArgument(
                     "unexpected frame type " +
                     std::to_string(static_cast<int>(type)))));
      BeginDrain(conn);
      return;
  }
}

// ---- Statement execution --------------------------------------------------

void Server::ScheduleNext(const std::shared_ptr<Connection>& conn) {
  if (conn->executing || conn->pending.empty() || conn->broken) return;
  PendingStatement item = std::move(conn->pending.front());
  conn->pending.pop_front();
  conn->executing = true;
  gauge_worker_queue_.Add(1);
  workers_->Submit([this, conn, item = std::move(item)]() mutable {
    ExecuteOnWorker(conn, std::move(item));
  });
}

void Server::ExecuteOnWorker(std::shared_ptr<Connection> conn,
                             PendingStatement item) {
  gauge_worker_queue_.Add(-1);
  // Lifecycle t1/t2 bracket the execute window; with t0 (decode) and t3
  // (flush) these are the statement's entire clock-read budget.
  uint64_t exec_start_ns = obs::MonotonicNowNs();
  uint64_t queue_wait_ns = exec_start_ns - item.decode_ns;
  uint64_t telemetry_seq = 0;
  Result<api::StatementOutcome> outcome = api::StatementOutcome{};
  {
    obs::ScopedStatementLifecycle lifecycle(queue_wait_ns);
    outcome = conn->session->Execute(item.text);
    telemetry_seq = lifecycle.recorded_seq();
  }
  uint64_t exec_end_ns = obs::MonotonicNowNs();
  hist_queue_wait_us_.Observe(static_cast<double>(queue_wait_ns) / 1e3);
  hist_execute_us_.Observe(static_cast<double>(exec_end_ns - exec_start_ns) /
                           1e3);
  std::string frame;
  if (item.tagged) {
    if (outcome.ok()) {
      // Seq-tagged results carry the server-timing footer (append-only,
      // so v1 batch clients that don't ask for timing still decode).
      // write_stall can't be known yet — it is server-side telemetry.
      ServerTiming timing;
      timing.present = true;
      timing.queue_wait_us = queue_wait_ns / 1000;
      timing.execute_us = (exec_end_ns - exec_start_ns) / 1000;
      frame = EncodeFrame(FrameType::kResultSeq,
                          EncodeResultSeqBody(item.seq, *outcome) +
                              EncodeServerTimingFooter(timing));
    } else {
      frame = EncodeFrame(FrameType::kErrorSeq,
                          EncodeErrorSeqBody(item.seq, outcome.status()));
    }
  } else {
    frame = outcome.ok()
                ? EncodeFrame(FrameType::kResult, EncodeResultBody(*outcome))
                : EncodeFrame(FrameType::kError,
                              EncodeErrorBody(outcome.status()));
  }
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    completions_.push_back(Completion{conn->id, std::move(frame),
                                      telemetry_seq, item.decode_ns,
                                      exec_end_ns});
  }
  WakeLoop();
}

void Server::DrainCompletions() {
  std::deque<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    batch.swap(completions_);
  }
  // One clock read covers the whole batch: the lag of each completion is
  // measured from its push time (the worker's t2) to this dispatch.
  uint64_t drain_ns = batch.empty() ? 0 : obs::MonotonicNowNs();
  for (Completion& done : batch) {
    if (done.done_ns != 0 && drain_ns > done.done_ns) {
      hist_loop_lag_us_.Observe(static_cast<double>(drain_ns - done.done_ns) /
                                1e3);
    }
    auto it = conns_.find(done.conn_id);
    if (it == conns_.end()) continue;
    std::shared_ptr<Connection> conn = it->second;
    conn->executing = false;
    if (!conn->broken) {
      QueueBytes(conn, std::move(done.frame), done.telemetry_seq,
                 done.decode_ns, done.done_ns);
    }
    ScheduleNext(conn);
    if (conn->read_paused) {
      // Below the pipeline bound again: decode what we buffered, then
      // let UpdateEpoll re-arm EPOLLIN.
      conn->read_paused = false;
      DrainDecoder(conn);
    }
    FlushWrites(conn);
    SyncSessionStats(conn);
    UpdateEpoll(conn);
    MaybeClose(conn);
  }
}

// ---- Write path + lifecycle -----------------------------------------------

void Server::QueueFrame(const std::shared_ptr<Connection>& conn,
                        FrameType type, const std::string& body) {
  if (conn->fd < 0 || conn->broken) return;
  QueueBytes(conn, EncodeFrame(type, body));
  FlushWrites(conn);
}

void Server::QueueBytes(const std::shared_ptr<Connection>& conn,
                        std::string bytes, uint64_t telemetry_seq,
                        uint64_t decode_ns, uint64_t done_ns) {
  if (conn->fd < 0 || conn->broken) return;
  size_t size = bytes.size();
  Connection::OutFrame frame;
  frame.bytes = std::move(bytes);
  frame.telemetry_seq = telemetry_seq;
  frame.decode_ns = decode_ns;
  frame.done_ns = done_ns;
  conn->out.push_back(std::move(frame));
  conn->out_bytes += size;
  if (conn->out_bytes > conn->peak_out_bytes) {
    conn->peak_out_bytes = conn->out_bytes;
  }
  write_backlog_bytes_ += static_cast<int64_t>(size);
  gauge_write_backlog_.Set(write_backlog_bytes_);
}

void Server::DiscardOutput(const std::shared_ptr<Connection>& conn) {
  if (conn->out_bytes > 0) {
    write_backlog_bytes_ -= static_cast<int64_t>(conn->out_bytes);
    gauge_write_backlog_.Set(write_backlog_bytes_);
  }
  conn->out.clear();
  conn->out_bytes = 0;
  conn->out_offset = 0;
}

void Server::FlushWrites(const std::shared_ptr<Connection>& conn) {
  while (conn->fd >= 0 && !conn->broken && !conn->out.empty()) {
    const Connection::OutFrame& front = conn->out.front();
    ssize_t n = ::send(conn->fd, front.bytes.data() + conn->out_offset,
                       front.bytes.size() - conn->out_offset, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;  // EPOLLOUT arms
      conn->broken = true;
      conn->pending.clear();
      DiscardOutput(conn);
      break;
    }
    ctr_bytes_out_.Increment(static_cast<uint64_t>(n));
    conn->bytes_out += static_cast<uint64_t>(n);
    conn->out_bytes -= static_cast<size_t>(n);
    write_backlog_bytes_ -= n;
    conn->out_offset += static_cast<size_t>(n);
    if (conn->out_offset == front.bytes.size()) {
      if (front.decode_ns != 0) {
        // Lifecycle t3: the statement's response has fully left the
        // socket. write_stall = t3 - t2, total = t3 - t0; the telemetry
        // entry recorded at execute time gets its tail back-filled.
        uint64_t flushed_ns = obs::MonotonicNowNs();
        uint64_t stall_ns =
            flushed_ns > front.done_ns ? flushed_ns - front.done_ns : 0;
        uint64_t total_ns =
            flushed_ns > front.decode_ns ? flushed_ns - front.decode_ns : 0;
        hist_write_stall_us_.Observe(static_cast<double>(stall_ns) / 1e3);
        hist_total_us_.Observe(static_cast<double>(total_ns) / 1e3);
        if (front.telemetry_seq != 0) {
          obs::QueryTelemetry::Global().AnnotateWriteStall(
              front.telemetry_seq, stall_ns, total_ns);
        }
      }
      conn->out.pop_front();
      conn->out_offset = 0;
    }
  }
  gauge_write_backlog_.Set(write_backlog_bytes_);
}

void Server::BeginDrain(const std::shared_ptr<Connection>& conn) {
  conn->draining = true;
  UpdateEpoll(conn);
  MaybeClose(conn);
}

void Server::UpdateEpoll(const std::shared_ptr<Connection>& conn) {
  if (conn->fd < 0) return;
  uint32_t want = 0;
  if (!conn->draining && !conn->broken && !conn->read_paused) {
    want |= EPOLLIN;
  }
  if (!conn->out.empty() && !conn->broken) want |= EPOLLOUT;
  if (want == conn->armed) return;
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = want;
  ev.data.u64 = conn->id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
  conn->armed = want;
}

void Server::MaybeClose(const std::shared_ptr<Connection>& conn) {
  if (conn->fd < 0 || conn->executing) return;
  if (conn->broken) {
    CloseConnection(conn);
    return;
  }
  if (conn->draining && conn->pending.empty() && conn->out.empty()) {
    CloseConnection(conn);
  }
}

void Server::CloseConnection(const std::shared_ptr<Connection>& conn) {
  if (conn->fd < 0) return;
  DiscardOutput(conn);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  conn->fd = -1;
  // Erasing drops the loop's reference; the Session (and its admission
  // slot) dies with the last reference — usually right here.
  conns_.erase(conn->id);
}

void Server::SyncSessionStats(const std::shared_ptr<Connection>& conn) {
  if (conn->session == nullptr) return;
  uint64_t bytes_in = conn->bytes_in;
  uint64_t bytes_out = conn->bytes_out;
  uint64_t depth = conn->pending.size() + (conn->executing ? 1 : 0);
  uint64_t peak = conn->peak_out_bytes;
  obs::SessionRegistry::Global().Update(
      conn->session->id(), [&](obs::SessionInfo* info) {
        info->bytes_in = bytes_in;
        info->bytes_out = bytes_out;
        info->pipeline_depth = depth;
        info->peak_write_buffer = peak;
      });
}

// ---- Shutdown -------------------------------------------------------------

Status Server::Stop() {
  if (stopping_.exchange(true)) return Status::OK();
  WakeLoop();
  if (loop_thread_.joinable()) loop_thread_.join();
  // Join the workers before closing the eventfd: a worker between its
  // completion push and WakeLoop must not write a dead (reusable) fd.
  workers_.reset();
  if (listen_fd_ >= 0) {
    // Only reachable when Start() failed before the loop thread ran.
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (metrics_listen_fd_ >= 0) {
    ::close(metrics_listen_fd_);
    metrics_listen_fd_ = -1;
  }
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
  if (wake_fd_ >= 0) {
    ::close(wake_fd_);
    wake_fd_ = -1;
  }
  if (options_.checkpoint_on_shutdown && manager_ != nullptr) {
    return manager_->FinalCheckpoint();
  }
  return Status::OK();
}

}  // namespace server
}  // namespace erbium
