#include "server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace erbium {
namespace server {

namespace {

constexpr uint64_t kListenerTag = 0;
constexpr uint64_t kWakeTag = 1;
/// How long Stop() keeps flushing responses toward peers that stopped
/// reading before dropping them on the floor.
constexpr int64_t kDrainDeadlineMs = 5'000;

std::string PeerName(const struct sockaddr_in& addr) {
  char ip[INET_ADDRSTRLEN] = {0};
  ::inet_ntop(AF_INET, &addr.sin_addr, ip, sizeof(ip));
  return std::string(ip) + ":" + std::to_string(ntohs(addr.sin_port));
}

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

/// Per-connection reactor state. Everything here is owned by the loop
/// thread, with two exceptions a worker may touch while `executing` is
/// true: `id` and the `session` pointer (set once at handshake, cleared
/// only after the last reference drops). The loop never closes a
/// connection while a statement is executing, so a worker's Session
/// stays valid for the whole statement.
struct Server::Connection {
  int fd = -1;
  uint64_t id = 0;
  std::string peer;
  std::unique_ptr<Session> session;  // null until the Hello handshake
  FrameDecoder decoder;

  /// Encoded response frames awaiting the socket; front() is partially
  /// written up to out_offset.
  std::deque<std::string> out;
  size_t out_offset = 0;

  /// Statements decoded but not yet handed to a worker; at most one is
  /// executing at a time, preserving per-session statement order.
  std::deque<PendingStatement> pending;
  bool executing = false;

  bool draining = false;     // stop reading; close once work + out drain
  bool broken = false;       // socket unusable; close once not executing
  bool read_paused = false;  // pipeline depth reached; EPOLLIN de-armed
  uint32_t armed = 0;        // last epoll event mask requested
  int64_t last_activity_ms = 0;

  ~Connection() {
    if (fd >= 0) ::close(fd);
  }
};

Result<std::unique_ptr<Server>> Server::Start(ServerOptions options) {
  std::unique_ptr<Server> server(new Server(std::move(options)));

  SessionManager::Options manager_options;
  manager_options.runner = server->options_.runner;
  manager_options.max_sessions = server->options_.max_connections;
  manager_options.request_deadline_ms = server->options_.request_deadline_ms;
  ERBIUM_ASSIGN_OR_RETURN(server->manager_,
                          SessionManager::Create(std::move(manager_options)));

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket failed: ") +
                           std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(server->options_.port));
  if (::inet_pton(AF_INET, server->options_.host.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return Status::InvalidArgument("unparseable listen address '" +
                                   server->options_.host + "'");
  }
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status st = Status::IOError("bind to " + server->options_.host + ":" +
                                std::to_string(server->options_.port) +
                                " failed: " + std::strerror(errno));
    ::close(fd);
    return st;
  }
  if (::listen(fd, server->options_.accept_backlog) < 0) {
    Status st =
        Status::IOError(std::string("listen failed: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &addr_len);
  server->port_ = ntohs(addr.sin_port);
  SetNonBlocking(fd);
  server->listen_fd_ = fd;

  server->epoll_fd_ = ::epoll_create1(0);
  server->wake_fd_ = ::eventfd(0, EFD_NONBLOCK);
  if (server->epoll_fd_ < 0 || server->wake_fd_ < 0) {
    return Status::IOError(std::string("epoll/eventfd setup failed: ") +
                           std::strerror(errno));
  }
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerTag;
  ::epoll_ctl(server->epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  ev.data.u64 = kWakeTag;
  ::epoll_ctl(server->epoll_fd_, EPOLL_CTL_ADD, server->wake_fd_, &ev);

  int workers = server->options_.worker_threads;
  if (workers <= 0) {
    workers = std::max(2u, std::thread::hardware_concurrency());
  }
  server->workers_ = std::make_unique<ThreadPool>(workers);
  server->loop_thread_ = std::thread([raw = server.get()] { raw->EventLoop(); });
  return server;
}

Server::~Server() { Stop(); }

void Server::WakeLoop() {
  uint64_t one = 1;
  ssize_t ignored = ::write(wake_fd_, &one, sizeof(one));
  (void)ignored;  // EAGAIN just means a wakeup is already pending.
}

// ---- The reactor ----------------------------------------------------------

void Server::EventLoop() {
  std::vector<struct epoll_event> events(128);
  for (;;) {
    if (stopping_.load() && !shutdown_started_) {
      shutdown_started_ = true;
      drain_deadline_ms_ = NowMs() + kDrainDeadlineMs;
      if (listen_fd_ >= 0) {
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
        ::close(listen_fd_);
        listen_fd_ = -1;
      }
      // Stop reading everywhere; in-flight and queued statements finish
      // and their responses flush before each connection closes.
      std::vector<std::shared_ptr<Connection>> all;
      all.reserve(conns_.size());
      for (const auto& entry : conns_) all.push_back(entry.second);
      for (const auto& conn : all) BeginDrain(conn);
    }
    if (shutdown_started_ && conns_.empty()) break;

    int n = ::epoll_wait(epoll_fd_, events.data(),
                         static_cast<int>(events.size()), ComputeTimeoutMs());
    if (n < 0 && errno != EINTR) break;
    for (int i = 0; i < n; ++i) {
      uint64_t tag = events[i].data.u64;
      uint32_t ev = events[i].events;
      if (tag == kListenerTag) {
        HandleAccept();
        continue;
      }
      if (tag == kWakeTag) {
        uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      auto it = conns_.find(tag);
      if (it == conns_.end()) continue;  // closed earlier in this batch
      std::shared_ptr<Connection> conn = it->second;
      if (ev & (EPOLLERR | EPOLLHUP)) {
        conn->broken = true;
        conn->pending.clear();
        conn->out.clear();
      }
      if ((ev & EPOLLOUT) && !conn->broken) FlushWrites(conn);
      if ((ev & EPOLLIN) && !conn->broken && !conn->draining) {
        HandleReadable(conn);
      }
      UpdateEpoll(conn);
      MaybeClose(conn);
    }
    DrainCompletions();
    HandleTimeouts();
  }
}

int Server::ComputeTimeoutMs() const {
  if (shutdown_started_) return 50;
  if (options_.idle_timeout_ms <= 0) return -1;
  int64_t min_deadline = INT64_MAX;
  for (const auto& entry : conns_) {
    const Connection& conn = *entry.second;
    if (conn.draining || conn.broken || conn.executing ||
        !conn.pending.empty()) {
      continue;  // busy connections are not idle
    }
    min_deadline = std::min(
        min_deadline, conn.last_activity_ms + options_.idle_timeout_ms);
  }
  if (min_deadline == INT64_MAX) return -1;
  int64_t wait = min_deadline - NowMs();
  return static_cast<int>(std::clamp<int64_t>(wait, 0, 60'000));
}

void Server::HandleTimeouts() {
  int64_t now = NowMs();
  std::vector<std::shared_ptr<Connection>> expired;
  if (options_.idle_timeout_ms > 0 && !shutdown_started_) {
    for (const auto& entry : conns_) {
      const auto& conn = entry.second;
      if (conn->draining || conn->broken || conn->executing ||
          !conn->pending.empty()) {
        continue;
      }
      if (now - conn->last_activity_ms >= options_.idle_timeout_ms) {
        expired.push_back(conn);
      }
    }
    for (const auto& conn : expired) {
      if (conn->session != nullptr) {
        QueueFrame(conn, FrameType::kError,
                   EncodeErrorBody(Status::DeadlineExceeded(
                       "connection idle past " +
                       std::to_string(options_.idle_timeout_ms) +
                       " ms; closing")));
      }
      // Pre-handshake idlers (port scanners) get a silent close.
      BeginDrain(conn);
    }
  }
  if (shutdown_started_ && now >= drain_deadline_ms_) {
    // Peers that stopped reading forfeit their buffered responses; we
    // still wait out executing statements (their deadline bounds them).
    std::vector<std::shared_ptr<Connection>> stuck;
    for (const auto& entry : conns_) {
      if (!entry.second->executing) stuck.push_back(entry.second);
    }
    for (const auto& conn : stuck) {
      conn->pending.clear();
      conn->out.clear();
      CloseConnection(conn);
    }
  }
}

// ---- Accept + read path ---------------------------------------------------

void Server::HandleAccept() {
  auto accepted =
      obs::MetricsRegistry::Global().counter("server.connections.accepted");
  for (;;) {
    struct sockaddr_in peer_addr;
    socklen_t peer_len = sizeof(peer_addr);
    int fd = ::accept4(listen_fd_,
                       reinterpret_cast<struct sockaddr*>(&peer_addr),
                       &peer_len, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // EAGAIN: queue drained. Anything else (EMFILE under load, aborted
      // connections) must not kill the listener either.
      break;
    }
    accepted.Increment();
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    conn->peer = PeerName(peer_addr);
    conn->last_activity_ms = NowMs();
    struct epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.u64 = conn->id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      continue;  // conn destructor closes the fd
    }
    conn->armed = EPOLLIN;
    conns_[conn->id] = conn;
  }
}

void Server::HandleReadable(const std::shared_ptr<Connection>& conn) {
  char buf[64 * 1024];
  bool eof = false;
  for (;;) {
    ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->decoder.Feed(buf, static_cast<size_t>(n));
      if (static_cast<size_t>(n) < sizeof(buf)) break;  // drained
      continue;
    }
    if (n == 0) {
      eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    conn->broken = true;
    conn->pending.clear();
    conn->out.clear();
    return;
  }
  DrainDecoder(conn);
  // EOF: the peer is done talking; finish its outstanding statements,
  // flush, close.
  if (eof && !conn->draining) BeginDrain(conn);
}

void Server::DrainDecoder(const std::shared_ptr<Connection>& conn) {
  auto protocol_errors =
      obs::MetricsRegistry::Global().counter("server.protocol_errors");
  while (!conn->draining && !conn->broken) {
    // Backpressure: at max_pipeline_depth stop decoding (and reading —
    // UpdateEpoll de-arms EPOLLIN via read_paused). Buffered bytes keep
    // their place; DrainCompletions resumes us as responses drain.
    int depth = static_cast<int>(conn->pending.size()) +
                (conn->executing ? 1 : 0);
    if (conn->session != nullptr && depth >= options_.max_pipeline_depth) {
      conn->read_paused = true;
      break;
    }
    Frame frame;
    Result<bool> has = conn->decoder.Next(&frame);
    if (!has.ok()) {
      // Garbled bytes: framing is lost, so answer typed and close. The
      // responses of statements already decoded still flush first.
      protocol_errors.Increment();
      QueueFrame(conn, FrameType::kError, EncodeErrorBody(has.status()));
      BeginDrain(conn);
      break;
    }
    if (!*has) break;
    conn->last_activity_ms = NowMs();
    HandleFrame(conn, frame.type, frame.body);
  }
}

void Server::HandleFrame(const std::shared_ptr<Connection>& conn,
                         FrameType type, const std::string& body) {
  auto protocol_errors =
      obs::MetricsRegistry::Global().counter("server.protocol_errors");

  // ---- Handshake: the first frame must be kHello. -------------------------
  if (conn->session == nullptr) {
    if (type != FrameType::kHello) {
      protocol_errors.Increment();
      QueueFrame(conn, FrameType::kError,
                 EncodeErrorBody(Status::InvalidArgument(
                     "expected a Hello frame to open the session")));
      BeginDrain(conn);
      return;
    }
    Result<HelloBody> hello = DecodeHelloBody(body);
    if (!hello.ok()) {
      protocol_errors.Increment();
      QueueFrame(conn, FrameType::kError, EncodeErrorBody(hello.status()));
      BeginDrain(conn);
      return;
    }
    if (hello->version != kProtocolVersion) {
      QueueFrame(conn, FrameType::kError,
                 EncodeErrorBody(Status::InvalidArgument(
                     "protocol version " + std::to_string(hello->version) +
                     " not supported (server speaks " +
                     std::to_string(kProtocolVersion) + ")")));
      BeginDrain(conn);
      return;
    }
    std::string name = hello->client_name.empty()
                           ? "conn-" + std::to_string(conn->id)
                           : hello->client_name;
    Result<std::unique_ptr<Session>> opened =
        manager_->OpenSession(name, conn->peer);
    if (!opened.ok()) {
      // Typed backpressure: at max_connections the client is told
      // kUnavailable and can retry, never silently dropped.
      QueueFrame(conn, FrameType::kError, EncodeErrorBody(opened.status()));
      BeginDrain(conn);
      return;
    }
    conn->session = std::move(opened).value();
    QueueFrame(conn, FrameType::kHelloOk,
               EncodeHelloOkBody(conn->session->id(), "ErbiumDB"));
    return;
  }

  // ---- Established session. -----------------------------------------------
  switch (type) {
    case FrameType::kPing:
      // Answered inline by the loop — a Ping measures reactor liveness
      // and may overtake queued statement responses.
      QueueFrame(conn, FrameType::kPong, "");
      return;
    case FrameType::kGoodbye:
      BeginDrain(conn);
      return;
    case FrameType::kStatement: {
      Result<std::string> statement = DecodeStatementBody(body);
      if (!statement.ok()) {
        protocol_errors.Increment();
        QueueFrame(conn, FrameType::kError,
                   EncodeErrorBody(statement.status()));
        BeginDrain(conn);
        return;
      }
      PendingStatement item;
      item.text = std::move(*statement);
      conn->pending.push_back(std::move(item));
      ScheduleNext(conn);
      return;
    }
    case FrameType::kStatementSeq: {
      Result<StatementSeqBody> statement = DecodeStatementSeqBody(body);
      if (!statement.ok()) {
        protocol_errors.Increment();
        QueueFrame(conn, FrameType::kError,
                   EncodeErrorBody(statement.status()));
        BeginDrain(conn);
        return;
      }
      PendingStatement item;
      item.tagged = true;
      item.seq = statement->seq;
      item.text = std::move(statement->statement);
      conn->pending.push_back(std::move(item));
      ScheduleNext(conn);
      return;
    }
    default:
      protocol_errors.Increment();
      QueueFrame(conn, FrameType::kError,
                 EncodeErrorBody(Status::InvalidArgument(
                     "unexpected frame type " +
                     std::to_string(static_cast<int>(type)))));
      BeginDrain(conn);
      return;
  }
}

// ---- Statement execution --------------------------------------------------

void Server::ScheduleNext(const std::shared_ptr<Connection>& conn) {
  if (conn->executing || conn->pending.empty() || conn->broken) return;
  PendingStatement item = std::move(conn->pending.front());
  conn->pending.pop_front();
  conn->executing = true;
  workers_->Submit([this, conn, item = std::move(item)]() mutable {
    ExecuteOnWorker(conn, std::move(item));
  });
}

void Server::ExecuteOnWorker(std::shared_ptr<Connection> conn,
                             PendingStatement item) {
  Result<api::StatementOutcome> outcome = conn->session->Execute(item.text);
  std::string frame;
  if (item.tagged) {
    frame = outcome.ok()
                ? EncodeFrame(FrameType::kResultSeq,
                              EncodeResultSeqBody(item.seq, *outcome))
                : EncodeFrame(FrameType::kErrorSeq,
                              EncodeErrorSeqBody(item.seq, outcome.status()));
  } else {
    frame = outcome.ok()
                ? EncodeFrame(FrameType::kResult, EncodeResultBody(*outcome))
                : EncodeFrame(FrameType::kError,
                              EncodeErrorBody(outcome.status()));
  }
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    completions_.push_back(Completion{conn->id, std::move(frame)});
  }
  WakeLoop();
}

void Server::DrainCompletions() {
  std::deque<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    batch.swap(completions_);
  }
  for (Completion& done : batch) {
    auto it = conns_.find(done.conn_id);
    if (it == conns_.end()) continue;
    std::shared_ptr<Connection> conn = it->second;
    conn->executing = false;
    if (!conn->broken) conn->out.push_back(std::move(done.frame));
    ScheduleNext(conn);
    if (conn->read_paused) {
      // Below the pipeline bound again: decode what we buffered, then
      // let UpdateEpoll re-arm EPOLLIN.
      conn->read_paused = false;
      DrainDecoder(conn);
    }
    FlushWrites(conn);
    UpdateEpoll(conn);
    MaybeClose(conn);
  }
}

// ---- Write path + lifecycle -----------------------------------------------

void Server::QueueFrame(const std::shared_ptr<Connection>& conn,
                        FrameType type, const std::string& body) {
  if (conn->fd < 0 || conn->broken) return;
  conn->out.push_back(EncodeFrame(type, body));
  FlushWrites(conn);
}

void Server::FlushWrites(const std::shared_ptr<Connection>& conn) {
  while (conn->fd >= 0 && !conn->broken && !conn->out.empty()) {
    const std::string& front = conn->out.front();
    ssize_t n = ::send(conn->fd, front.data() + conn->out_offset,
                       front.size() - conn->out_offset, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;  // EPOLLOUT arms
      conn->broken = true;
      conn->pending.clear();
      conn->out.clear();
      conn->out_offset = 0;
      break;
    }
    conn->out_offset += static_cast<size_t>(n);
    if (conn->out_offset == front.size()) {
      conn->out.pop_front();
      conn->out_offset = 0;
    }
  }
}

void Server::BeginDrain(const std::shared_ptr<Connection>& conn) {
  conn->draining = true;
  UpdateEpoll(conn);
  MaybeClose(conn);
}

void Server::UpdateEpoll(const std::shared_ptr<Connection>& conn) {
  if (conn->fd < 0) return;
  uint32_t want = 0;
  if (!conn->draining && !conn->broken && !conn->read_paused) {
    want |= EPOLLIN;
  }
  if (!conn->out.empty() && !conn->broken) want |= EPOLLOUT;
  if (want == conn->armed) return;
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = want;
  ev.data.u64 = conn->id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
  conn->armed = want;
}

void Server::MaybeClose(const std::shared_ptr<Connection>& conn) {
  if (conn->fd < 0 || conn->executing) return;
  if (conn->broken) {
    CloseConnection(conn);
    return;
  }
  if (conn->draining && conn->pending.empty() && conn->out.empty()) {
    CloseConnection(conn);
  }
}

void Server::CloseConnection(const std::shared_ptr<Connection>& conn) {
  if (conn->fd < 0) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  conn->fd = -1;
  // Erasing drops the loop's reference; the Session (and its admission
  // slot) dies with the last reference — usually right here.
  conns_.erase(conn->id);
}

// ---- Shutdown -------------------------------------------------------------

Status Server::Stop() {
  if (stopping_.exchange(true)) return Status::OK();
  WakeLoop();
  if (loop_thread_.joinable()) loop_thread_.join();
  // Join the workers before closing the eventfd: a worker between its
  // completion push and WakeLoop must not write a dead (reusable) fd.
  workers_.reset();
  if (listen_fd_ >= 0) {
    // Only reachable when Start() failed before the loop thread ran.
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
  if (wake_fd_ >= 0) {
    ::close(wake_fd_);
    wake_fd_ = -1;
  }
  if (options_.checkpoint_on_shutdown && manager_ != nullptr) {
    return manager_->FinalCheckpoint();
  }
  return Status::OK();
}

}  // namespace server
}  // namespace erbium
