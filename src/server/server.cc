#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "server/protocol.h"

namespace erbium {
namespace server {

namespace {

std::string PeerName(const struct sockaddr_in& addr) {
  char ip[INET_ADDRSTRLEN] = {0};
  ::inet_ntop(AF_INET, &addr.sin_addr, ip, sizeof(ip));
  return std::string(ip) + ":" + std::to_string(ntohs(addr.sin_port));
}

}  // namespace

Result<std::unique_ptr<Server>> Server::Start(ServerOptions options) {
  std::unique_ptr<Server> server(new Server(std::move(options)));

  SessionManager::Options manager_options;
  manager_options.runner = server->options_.runner;
  manager_options.max_sessions = server->options_.max_connections;
  manager_options.request_deadline_ms = server->options_.request_deadline_ms;
  ERBIUM_ASSIGN_OR_RETURN(server->manager_,
                          SessionManager::Create(std::move(manager_options)));

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket failed: ") +
                           std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(server->options_.port));
  if (::inet_pton(AF_INET, server->options_.host.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return Status::InvalidArgument("unparseable listen address '" +
                                   server->options_.host + "'");
  }
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status st = Status::IOError("bind to " + server->options_.host + ":" +
                                std::to_string(server->options_.port) +
                                " failed: " + std::strerror(errno));
    ::close(fd);
    return st;
  }
  if (::listen(fd, server->options_.accept_backlog) < 0) {
    Status st =
        Status::IOError(std::string("listen failed: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &addr_len);
  server->port_ = ntohs(addr.sin_port);
  server->listen_fd_ = fd;
  server->accept_thread_ = std::thread([raw = server.get()] {
    raw->AcceptLoop();
  });
  return server;
}

Server::~Server() { Stop(); }

void Server::AcceptLoop() {
  auto accepted = obs::MetricsRegistry::Global()
                      .counter("server.connections.accepted");
  while (!stopping_.load()) {
    // Reap connection threads that finished since the last accept, so a
    // long-lived server does not accumulate unjoined handles.
    std::vector<std::thread> finished;
    {
      std::lock_guard<std::mutex> lock(mu_);
      finished.swap(finished_threads_);
    }
    for (std::thread& t : finished) {
      if (t.joinable()) t.join();
    }

    struct sockaddr_in peer_addr;
    socklen_t peer_len = sizeof(peer_addr);
    int fd = ::accept(listen_fd_.load(),
                      reinterpret_cast<struct sockaddr*>(&peer_addr),
                      &peer_len);
    if (fd < 0) {
      if (stopping_.load()) break;
      if (errno == EINTR) continue;
      // Transient accept failures (EMFILE under load, aborted
      // connections) must not kill the listener.
      continue;
    }
    accepted.Increment();
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    uint64_t conn_id = next_conn_id_.fetch_add(1);
    std::string peer = PeerName(peer_addr);
    std::lock_guard<std::mutex> lock(mu_);
    conn_fds_[conn_id] = fd;
    conn_threads_[conn_id] = std::thread(
        [this, fd, conn_id, peer] { ServeConnection(fd, conn_id, peer); });
  }
}

void Server::ServeConnection(int fd, uint64_t conn_id,
                             const std::string& peer) {
  auto protocol_errors =
      obs::MetricsRegistry::Global().counter("server.protocol_errors");
  {
    FrameSocket sock(fd);
    std::unique_ptr<Session> session;

    // ---- Handshake: expect kHello within the idle budget. ----------------
    Result<Frame> first = sock.Recv(options_.idle_timeout_ms);
    if (first.ok() && first->type == FrameType::kHello) {
      Result<HelloBody> hello = DecodeHelloBody(first->body);
      if (!hello.ok()) {
        protocol_errors.Increment();
        sock.Send(FrameType::kError, EncodeErrorBody(hello.status()));
      } else if (hello->version != kProtocolVersion) {
        sock.Send(FrameType::kError,
                  EncodeErrorBody(Status::InvalidArgument(
                      "protocol version " + std::to_string(hello->version) +
                      " not supported (server speaks " +
                      std::to_string(kProtocolVersion) + ")")));
      } else {
        std::string name = hello->client_name.empty()
                               ? "conn-" + std::to_string(conn_id)
                               : hello->client_name;
        Result<std::unique_ptr<Session>> opened =
            manager_->OpenSession(name, peer);
        if (!opened.ok()) {
          // Typed backpressure: at max_connections the client is told
          // kUnavailable and can retry, never silently dropped.
          sock.Send(FrameType::kError, EncodeErrorBody(opened.status()));
        } else {
          session = std::move(opened).value();
          Status st = sock.Send(
              FrameType::kHelloOk,
              EncodeHelloOkBody(session->id(), "ErbiumDB"));
          if (!st.ok()) session.reset();
        }
      }
    } else if (first.ok()) {
      protocol_errors.Increment();
      sock.Send(FrameType::kError,
                EncodeErrorBody(Status::InvalidArgument(
                    "expected a Hello frame to open the session")));
    } else if (first.status().code() == StatusCode::kIOError) {
      // Malformed bytes before the handshake (fuzzers, port scanners):
      // answer typed and close.
      protocol_errors.Increment();
      sock.Send(FrameType::kError, EncodeErrorBody(first.status()));
    }
    // EOF / timeout before Hello: nothing useful to say; just close.

    // ---- Statement loop. -------------------------------------------------
    while (session != nullptr) {
      Result<Frame> frame = sock.Recv(options_.idle_timeout_ms);
      if (!frame.ok()) {
        if (frame.status().code() == StatusCode::kDeadlineExceeded &&
            !stopping_.load()) {
          sock.Send(FrameType::kError,
                    EncodeErrorBody(Status::DeadlineExceeded(
                        "connection idle past " +
                        std::to_string(options_.idle_timeout_ms) +
                        " ms; closing")));
        } else if (frame.status().code() == StatusCode::kIOError) {
          protocol_errors.Increment();
          sock.Send(FrameType::kError, EncodeErrorBody(frame.status()));
        }
        // kUnavailable: orderly close (or shutdown drain) — say nothing.
        break;
      }
      if (frame->type == FrameType::kGoodbye) break;
      if (frame->type == FrameType::kPing) {
        if (!sock.Send(FrameType::kPong, "").ok()) break;
        continue;
      }
      if (frame->type != FrameType::kStatement) {
        protocol_errors.Increment();
        sock.Send(FrameType::kError,
                  EncodeErrorBody(Status::InvalidArgument(
                      "unexpected frame type " +
                      std::to_string(static_cast<int>(frame->type)))));
        break;
      }
      Result<std::string> statement = DecodeStatementBody(frame->body);
      if (!statement.ok()) {
        protocol_errors.Increment();
        sock.Send(FrameType::kError, EncodeErrorBody(statement.status()));
        break;
      }
      Result<api::StatementOutcome> outcome = session->Execute(*statement);
      Status send_st =
          outcome.ok()
              ? sock.Send(FrameType::kResult, EncodeResultBody(*outcome))
              : sock.Send(FrameType::kError,
                          EncodeErrorBody(outcome.status()));
      if (!send_st.ok()) break;
    }
  }  // FrameSocket closes the fd; Session deregisters.

  // Hand our thread handle to the reaper (or to Stop(), which may have
  // taken it already).
  std::lock_guard<std::mutex> lock(mu_);
  conn_fds_.erase(conn_id);
  auto it = conn_threads_.find(conn_id);
  if (it != conn_threads_.end()) {
    finished_threads_.push_back(std::move(it->second));
    conn_threads_.erase(it);
  }
}

Status Server::Stop() {
  if (stopping_.exchange(true)) return Status::OK();

  // 1. Close the listener so no new connections arrive; accept() fails
  //    and the accept loop exits.
  int listener = listen_fd_.exchange(-1);
  if (listener >= 0) {
    ::shutdown(listener, SHUT_RDWR);
    ::close(listener);
  }
  if (accept_thread_.joinable()) accept_thread_.join();

  // 2. Drain: shut down every connection's read side. A session blocked
  //    in Recv wakes with EOF and exits; one mid-statement finishes,
  //    sends its result (write side stays open), then exits.
  std::vector<std::thread> to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& entry : conn_fds_) {
      ::shutdown(entry.second, SHUT_RD);
    }
    for (auto& entry : conn_threads_) to_join.push_back(std::move(entry.second));
    conn_threads_.clear();
    for (std::thread& t : finished_threads_) to_join.push_back(std::move(t));
    finished_threads_.clear();
  }
  for (std::thread& t : to_join) {
    if (t.joinable()) t.join();
  }
  {
    // Threads that finished while we were joining parked their handles.
    std::lock_guard<std::mutex> lock(mu_);
    for (std::thread& t : finished_threads_) to_join.push_back(std::move(t));
    finished_threads_.clear();
  }
  for (std::thread& t : to_join) {
    if (t.joinable()) t.join();
  }

  // 3. Final checkpoint once everything is quiet.
  if (options_.checkpoint_on_shutdown && manager_ != nullptr) {
    return manager_->FinalCheckpoint();
  }
  return Status::OK();
}

}  // namespace server
}  // namespace erbium
