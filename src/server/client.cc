#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace erbium {
namespace server {

namespace {

/// One blocking TCP connect attempt. Targets are local or LAN, where
/// connect either succeeds promptly or fails with ECONNREFUSED; the
/// retry loop in Connect() handles a server that is still binding.
Result<int> ConnectOnce(const std::string& host, int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket failed: ") +
                           std::strerror(errno));
  }
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("unparseable host '" + host + "'");
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    Status st = Status::Unavailable("connect to " + host + ":" +
                                    std::to_string(port) +
                                    " failed: " + std::strerror(errno));
    ::close(fd);
    return st;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace

Result<std::unique_ptr<Client>> Client::Connect(Options options) {
  std::unique_ptr<Client> client(new Client(std::move(options)));
  const Options& opt = client->options_;

  int fd = -1;
  Status last = Status::OK();
  for (int attempt = 0; attempt <= opt.connect_retries; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(opt.connect_retry_pause_ms));
    }
    Result<int> connected = ConnectOnce(opt.host, opt.port);
    if (connected.ok()) {
      fd = *connected;
      break;
    }
    last = connected.status();
  }
  if (fd < 0) return last;
  client->sock_ = std::make_unique<FrameSocket>(fd);

  ERBIUM_RETURN_NOT_OK(
      client->sock_->Send(FrameType::kHello, EncodeHelloBody(opt.name)));
  ERBIUM_ASSIGN_OR_RETURN(Frame reply,
                          client->sock_->Recv(opt.connect_timeout_ms));
  if (reply.type == FrameType::kError) {
    // The server refused the session (max connections, bad version);
    // surface its typed status directly.
    Status refused;
    ERBIUM_RETURN_NOT_OK(DecodeErrorBody(reply.body, &refused));
    return refused;
  }
  if (reply.type != FrameType::kHelloOk) {
    return Status::IOError("handshake got unexpected frame type " +
                           std::to_string(static_cast<int>(reply.type)));
  }
  ERBIUM_ASSIGN_OR_RETURN(HelloOkBody hello, DecodeHelloOkBody(reply.body));
  if (hello.version != kProtocolVersion) {
    return Status::InvalidArgument(
        "server speaks protocol version " + std::to_string(hello.version) +
        ", this client speaks " + std::to_string(kProtocolVersion));
  }
  client->session_id_ = hello.session_id;
  client->banner_ = hello.banner;
  return client;
}

Client::~Client() { Close(); }

void Client::Close() {
  if (sock_ != nullptr && broken_.ok()) {
    sock_->Send(FrameType::kGoodbye, "");
  }
  sock_.reset();
  if (broken_.ok()) {
    broken_ = Status::Unavailable("client is closed");
  }
}

Result<Frame> Client::RoundTrip(FrameType type, const std::string& body) {
  if (sock_ == nullptr || !broken_.ok()) {
    return broken_.ok() ? Status::Unavailable("client is closed") : broken_;
  }
  Status st = sock_->Send(type, body);
  if (!st.ok()) {
    broken_ = st;
    return st;
  }
  Result<Frame> reply = sock_->Recv(options_.recv_timeout_ms);
  if (!reply.ok()) {
    broken_ = reply.status();
    return broken_;
  }
  return reply;
}

Result<api::StatementOutcome> Client::Execute(const std::string& statement) {
  ERBIUM_ASSIGN_OR_RETURN(
      Frame reply,
      RoundTrip(FrameType::kStatement, EncodeStatementBody(statement)));
  if (reply.type == FrameType::kError) {
    Status remote;
    ERBIUM_RETURN_NOT_OK(DecodeErrorBody(reply.body, &remote));
    return remote;
  }
  if (reply.type != FrameType::kResult) {
    broken_ = Status::IOError("expected a Result frame, got type " +
                              std::to_string(static_cast<int>(reply.type)));
    return broken_;
  }
  return DecodeResultBody(reply.body);
}

Result<std::vector<Client::BatchItem>> Client::ExecuteBatch(
    const std::vector<std::string>& statements) {
  if (sock_ == nullptr || !broken_.ok()) {
    return broken_.ok() ? Status::Unavailable("client is closed") : broken_;
  }
  if (statements.empty()) return std::vector<BatchItem>{};

  // Phase 1: pipeline — every statement goes out before any reply is
  // read. The socket's send buffer plus the server's pending queue
  // absorb the burst; the server stops reading (TCP backpressure) past
  // its pipeline depth rather than dropping anything.
  uint64_t first_seq = next_seq_;
  for (const std::string& statement : statements) {
    Status st = sock_->Send(FrameType::kStatementSeq,
                            EncodeStatementSeqBody(next_seq_, statement));
    if (!st.ok()) {
      broken_ = st;
      return st;
    }
    ++next_seq_;
  }

  // Phase 2: collect — the server answers in order with matching tags,
  // so the i-th reply must carry seq first_seq + i. A mismatch means
  // the stream is corrupt beyond recovery: poison.
  std::vector<BatchItem> items;
  items.reserve(statements.size());
  for (size_t i = 0; i < statements.size(); ++i) {
    Result<Frame> reply = sock_->Recv(options_.recv_timeout_ms);
    if (!reply.ok()) {
      broken_ = reply.status();
      return broken_;
    }
    if (reply->type != FrameType::kResultSeq &&
        reply->type != FrameType::kErrorSeq) {
      broken_ = Status::IOError(
          "expected a seq-tagged response frame, got type " +
          std::to_string(static_cast<int>(reply->type)));
      return broken_;
    }
    std::string body;
    Result<uint64_t> seq = DecodeSeqPrefix(reply->body, &body);
    if (!seq.ok()) {
      broken_ = seq.status();
      return broken_;
    }
    if (*seq != first_seq + i) {
      broken_ = Status::IOError(
          "pipelined response out of order: expected seq " +
          std::to_string(first_seq + i) + ", got " + std::to_string(*seq));
      return broken_;
    }
    BatchItem item;
    if (reply->type == FrameType::kErrorSeq) {
      // A per-statement failure — the batch (and connection) live on.
      ERBIUM_RETURN_NOT_OK(DecodeErrorBody(body, &item.status));
    } else {
      ERBIUM_ASSIGN_OR_RETURN(item.outcome,
                              DecodeResultBody(body, &item.timing));
    }
    items.push_back(std::move(item));
  }
  return items;
}

Status Client::Ping() {
  ERBIUM_ASSIGN_OR_RETURN(Frame reply, RoundTrip(FrameType::kPing, ""));
  if (reply.type == FrameType::kError) {
    Status remote;
    ERBIUM_RETURN_NOT_OK(DecodeErrorBody(reply.body, &remote));
    return remote;
  }
  if (reply.type != FrameType::kPong) {
    broken_ = Status::IOError("expected a Pong frame, got type " +
                              std::to_string(static_cast<int>(reply.type)));
    return broken_;
  }
  return Status::OK();
}

}  // namespace server
}  // namespace erbium
