#ifndef ERBIUM_SERVER_CLIENT_H_
#define ERBIUM_SERVER_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "api/statement_runner.h"
#include "common/status.h"
#include "server/protocol.h"

namespace erbium {
namespace server {

/// Synchronous ErbiumDB client driver: one TCP connection, one request
/// in flight at a time (the protocol answers frames in order). Not
/// thread-safe — use one Client per thread.
///
///   auto client = Client::Connect({.port = 7177});
///   auto outcome = (*client)->Execute("SELECT r_id FROM R");
///
/// A statement the server rejects comes back as the transported Status
/// (its code round-trips through the wire numbering), so remote errors
/// are indistinguishable in kind from local ones.
class Client {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    int port = 0;
    /// Attribution name, shown by SHOW SESSIONS and SHOW QUERIES.
    std::string name = "client";
    /// Budget for the handshake reply / for each statement response.
    int connect_timeout_ms = 5'000;
    int recv_timeout_ms = 60'000;
    /// Retries for the initial TCP connect (the server may still be
    /// binding, e.g. in a CI smoke test), with a short pause between.
    int connect_retries = 0;
    int connect_retry_pause_ms = 200;
  };

  /// Connects, performs the Hello handshake, and returns a ready client.
  /// A server at max_connections surfaces as kUnavailable.
  static Result<std::unique_ptr<Client>> Connect(Options options);

  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Runs one statement remotely and returns its outcome (or the
  /// server's error). An I/O failure poisons the connection — every
  /// later call fails fast with the same error.
  Result<api::StatementOutcome> Execute(const std::string& statement);

  /// One pipelined statement's result: the server's per-statement
  /// Status plus, on success, its outcome and — when the server sent a
  /// timing footer — where the statement's server-side time went.
  struct BatchItem {
    Status status = Status::OK();
    api::StatementOutcome outcome;
    ServerTiming timing;
  };

  /// Pipelines a batch: sends every statement as a seq-tagged frame in
  /// one burst, then reads the responses — one network round-trip's
  /// latency for the whole batch instead of one per statement. The
  /// server executes the batch strictly in order; results come back in
  /// the same order (index i answers statements[i]). A statement the
  /// server rejects fills its item's error status WITHOUT aborting the
  /// rest of the batch; only transport failures (or a seq-tag mismatch,
  /// which means the stream is corrupt) poison the connection.
  Result<std::vector<BatchItem>> ExecuteBatch(
      const std::vector<std::string>& statements);

  /// Liveness round-trip (kPing -> kPong).
  Status Ping();

  /// Sends Goodbye and closes; further calls fail. The destructor calls
  /// this implicitly.
  void Close();

  /// The server-assigned session id from the handshake.
  uint64_t session_id() const { return session_id_; }
  const std::string& server_banner() const { return banner_; }

 private:
  explicit Client(Options options) : options_(std::move(options)) {}

  /// One request/response exchange, with connection poisoning.
  Result<Frame> RoundTrip(FrameType type, const std::string& body);

  Options options_;
  std::unique_ptr<FrameSocket> sock_;
  uint64_t session_id_ = 0;
  uint64_t next_seq_ = 1;
  std::string banner_;
  /// First transport error, replayed by later calls.
  Status broken_ = Status::OK();
};

}  // namespace server
}  // namespace erbium

#endif  // ERBIUM_SERVER_CLIENT_H_
