#include "server/session.h"

#include <utility>

#include "obs/metrics.h"
#include "obs/session.h"
#include "obs/trace.h"

namespace erbium {
namespace server {

Session::~Session() {
  obs::SessionRegistry::Global().Deregister(id_);
  manager_->active_.fetch_sub(1);
  obs::MetricsRegistry::Global().gauge("server.sessions.active").Add(-1);
}

void Session::SetState(const std::string& state) {
  obs::SessionRegistry::Global().Update(
      id_, [&state](obs::SessionInfo* info) { info->state = state; });
}

Result<api::StatementOutcome> Session::Execute(const std::string& statement) {
  auto& registry = obs::SessionRegistry::Global();
  registry.Update(id_, [&statement](obs::SessionInfo* info) {
    info->state = "executing";
    info->last_statement = statement;
    info->last_active_ns = obs::MonotonicNowNs();
  });
  uint64_t start_ns = obs::MonotonicNowNs();
  Result<api::StatementOutcome> outcome = [&] {
    obs::ScopedSessionTag tag(name_);
    return manager_->runner_->Execute(statement);
  }();
  uint64_t wall_ns = obs::MonotonicNowNs() - start_ns;
  int deadline_ms = manager_->options_.request_deadline_ms;
  if (outcome.ok() && deadline_ms > 0 &&
      wall_ns > static_cast<uint64_t>(deadline_ms) * 1'000'000u) {
    outcome = Status::DeadlineExceeded(
        "statement exceeded the " + std::to_string(deadline_ms) +
        " ms request deadline (took " + std::to_string(wall_ns / 1'000'000u) +
        " ms); result discarded");
  }
  auto& metrics = obs::MetricsRegistry::Global();
  metrics.counter("server.requests").Increment();
  if (!outcome.ok()) metrics.counter("server.request_errors").Increment();
  metrics
      .histogram("server.request.wall_us",
                 {100, 1000, 10'000, 100'000, 1'000'000, 10'000'000})
      .Observe(static_cast<double>(wall_ns) / 1000.0);
  bool failed = !outcome.ok();
  int shard = outcome.ok() ? outcome->shard : -1;
  registry.Update(id_, [failed, shard](obs::SessionInfo* info) {
    info->state = "idle";
    ++info->statements;
    if (failed) ++info->errors;
    info->last_shard = shard;
    info->last_active_ns = obs::MonotonicNowNs();
  });
  return outcome;
}

Result<std::unique_ptr<SessionManager>> SessionManager::Create(
    Options options) {
  std::unique_ptr<SessionManager> manager(
      new SessionManager(std::move(options)));
  ERBIUM_ASSIGN_OR_RETURN(manager->runner_,
                          api::StatementRunner::Create(manager->options_.runner));
  return manager;
}

Result<std::unique_ptr<Session>> SessionManager::OpenSession(
    const std::string& name, const std::string& peer) {
  // Reserve the slot optimistically; back off if we raced past the cap.
  size_t now_active = active_.fetch_add(1) + 1;
  if (options_.max_sessions > 0 &&
      now_active > static_cast<size_t>(options_.max_sessions)) {
    active_.fetch_sub(1);
    obs::MetricsRegistry::Global().counter("server.sessions.refused")
        .Increment();
    return Status::Unavailable(
        "server is at its limit of " + std::to_string(options_.max_sessions) +
        " concurrent sessions; retry later");
  }
  obs::SessionInfo info;
  info.name = name;
  info.peer = peer;
  info.state = "idle";
  uint64_t id = obs::SessionRegistry::Global().Register(std::move(info));
  auto& metrics = obs::MetricsRegistry::Global();
  metrics.counter("server.sessions.opened").Increment();
  metrics.gauge("server.sessions.active").Add(1);
  return std::unique_ptr<Session>(new Session(this, id, name));
}

}  // namespace server
}  // namespace erbium
