#ifndef ERBIUM_SERVER_SESSION_H_
#define ERBIUM_SERVER_SESSION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "api/statement_runner.h"
#include "common/status.h"

namespace erbium {
namespace server {

class SessionManager;

/// Per-connection engine state: an admission slot in the SessionManager,
/// an entry in the obs::SessionRegistry (so the session shows up in
/// SHOW SESSIONS and its statements carry attribution in SHOW QUERIES),
/// and the Execute() entry point the transport layer calls once per
/// kStatement frame. The transport (socket, read loop, frame encoding)
/// lives in Server; a Session knows nothing about the wire.
class Session {
 public:
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// The obs registry id — also the wire session_id in kHelloOk.
  uint64_t id() const { return id_; }
  const std::string& name() const { return name_; }

  /// Runs one statement under this session's attribution tag and the
  /// engine's shared/exclusive statement lock. The per-request deadline
  /// is enforced cooperatively: execution is never interrupted mid-
  /// flight, but a statement that finishes past its deadline has its
  /// result discarded and returns kDeadlineExceeded — the client gets a
  /// typed error, never a silently late result.
  Result<api::StatementOutcome> Execute(const std::string& statement);

  /// Updates the session's SHOW SESSIONS state ("idle", "draining", ...).
  void SetState(const std::string& state);

 private:
  friend class SessionManager;
  Session(SessionManager* manager, uint64_t id, std::string name)
      : manager_(manager), id_(id), name_(std::move(name)) {}

  SessionManager* manager_;
  uint64_t id_;
  std::string name_;
};

/// Engine-level concurrency control for a set of sessions sharing one
/// database: admission (bounded session count) plus the shared
/// StatementRunner whose internal shared/exclusive lock lets SELECT /
/// EXPLAIN / SHOW / TRACE from different sessions run concurrently
/// while CRUD, DDL, REMAP, ATTACH, and CHECKPOINT serialize. Used by
/// the network server; usable headless in tests.
class SessionManager {
 public:
  struct Options {
    api::StatementRunner::Options runner;
    /// Admission limit; OpenSession fails with kUnavailable beyond it.
    int max_sessions = 64;
    /// Per-statement budget in ms; <= 0 disables the deadline.
    int request_deadline_ms = 0;
  };

  static Result<std::unique_ptr<SessionManager>> Create(Options options);

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Admits one session (or fails with kUnavailable at the limit),
  /// registering it with obs. The returned Session must not outlive the
  /// manager; destroying it releases the slot and deregisters.
  Result<std::unique_ptr<Session>> OpenSession(const std::string& name,
                                               const std::string& peer);

  api::StatementRunner* runner() { return runner_.get(); }
  size_t active_sessions() const { return active_.load(); }
  int max_sessions() const { return options_.max_sessions; }

  /// Graceful-shutdown hook: CHECKPOINT when a database is attached.
  Status FinalCheckpoint() { return runner_->FinalCheckpoint(); }

 private:
  friend class Session;
  explicit SessionManager(Options options) : options_(std::move(options)) {}

  Options options_;
  std::unique_ptr<api::StatementRunner> runner_;
  std::atomic<size_t> active_{0};
};

}  // namespace server
}  // namespace erbium

#endif  // ERBIUM_SERVER_SESSION_H_
