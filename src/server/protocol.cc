#include "server/protocol.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "durability/serde.h"

namespace erbium {
namespace server {

namespace {

using durability::ByteReader;
using durability::Crc32;
using durability::PutString;
using durability::PutU8;
using durability::PutU32;
using durability::PutU64;
using durability::PutValues;

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::string EncodeFrame(FrameType type, const std::string& body) {
  std::string payload;
  payload.reserve(1 + body.size());
  PutU8(static_cast<uint8_t>(type), &payload);
  payload += body;
  std::string frame;
  frame.reserve(8 + payload.size());
  PutU32(static_cast<uint32_t>(payload.size()), &frame);
  PutU32(Crc32(payload.data(), payload.size()), &frame);
  frame += payload;
  return frame;
}

std::string EncodeHelloBody(const std::string& client_name) {
  std::string body;
  PutU32(kProtocolVersion, &body);
  PutString(client_name, &body);
  return body;
}

std::string EncodeHelloOkBody(uint64_t session_id, const std::string& banner) {
  std::string body;
  PutU32(kProtocolVersion, &body);
  PutU64(session_id, &body);
  PutString(banner, &body);
  return body;
}

std::string EncodeStatementBody(const std::string& statement) {
  std::string body;
  PutString(statement, &body);
  return body;
}

std::string EncodeResultBody(const api::StatementOutcome& outcome) {
  std::string body;
  PutU8(static_cast<uint8_t>(outcome.shape), &body);
  PutString(outcome.message, &body);
  PutU32(static_cast<uint32_t>(outcome.result.columns.size()), &body);
  for (const std::string& column : outcome.result.columns) {
    PutString(column, &body);
  }
  PutU32(static_cast<uint32_t>(outcome.result.rows.size()), &body);
  for (const Row& row : outcome.result.rows) {
    PutValues(row, &body);
  }
  return body;
}

std::string EncodeErrorBody(const Status& status) {
  std::string body;
  PutU32(static_cast<uint32_t>(StatusCodeToWire(status.code())), &body);
  PutString(status.message(), &body);
  return body;
}

std::string EncodeStatementSeqBody(uint64_t seq, const std::string& statement) {
  std::string body;
  PutU64(seq, &body);
  PutString(statement, &body);
  return body;
}

std::string EncodeResultSeqBody(uint64_t seq,
                                const api::StatementOutcome& outcome) {
  std::string body;
  PutU64(seq, &body);
  body += EncodeResultBody(outcome);
  return body;
}

std::string EncodeErrorSeqBody(uint64_t seq, const Status& status) {
  std::string body;
  PutU64(seq, &body);
  body += EncodeErrorBody(status);
  return body;
}

Result<HelloBody> DecodeHelloBody(const std::string& body) {
  ByteReader reader(body.data(), body.size());
  HelloBody hello;
  ERBIUM_ASSIGN_OR_RETURN(hello.version, reader.U32());
  ERBIUM_ASSIGN_OR_RETURN(hello.client_name, reader.String());
  return hello;
}

Result<HelloOkBody> DecodeHelloOkBody(const std::string& body) {
  ByteReader reader(body.data(), body.size());
  HelloOkBody hello;
  ERBIUM_ASSIGN_OR_RETURN(hello.version, reader.U32());
  ERBIUM_ASSIGN_OR_RETURN(hello.session_id, reader.U64());
  ERBIUM_ASSIGN_OR_RETURN(hello.banner, reader.String());
  return hello;
}

Result<std::string> DecodeStatementBody(const std::string& body) {
  ByteReader reader(body.data(), body.size());
  return reader.String();
}

std::string EncodeServerTimingFooter(const ServerTiming& timing) {
  std::string footer;
  PutU8(kServerTimingMarker, &footer);
  PutU8(2, &footer);
  PutString("queue_wait_us", &footer);
  PutU64(timing.queue_wait_us, &footer);
  PutString("execute_us", &footer);
  PutU64(timing.execute_us, &footer);
  return footer;
}

Result<api::StatementOutcome> DecodeResultBody(const std::string& body) {
  return DecodeResultBody(body, nullptr);
}

Result<api::StatementOutcome> DecodeResultBody(const std::string& body,
                                               ServerTiming* timing) {
  ByteReader reader(body.data(), body.size());
  api::StatementOutcome outcome;
  ERBIUM_ASSIGN_OR_RETURN(uint8_t shape, reader.U8());
  if (shape > static_cast<uint8_t>(api::OutputShape::kLines)) {
    return Status::IOError("result frame carries unknown output shape " +
                           std::to_string(shape));
  }
  outcome.shape = static_cast<api::OutputShape>(shape);
  ERBIUM_ASSIGN_OR_RETURN(outcome.message, reader.String());
  ERBIUM_ASSIGN_OR_RETURN(uint32_t n_columns, reader.U32());
  // Trust counts only as far as the bytes present (a column name costs
  // at least its 4-byte length prefix).
  if (n_columns > reader.remaining() / 4) {
    return Status::IOError("result frame column count exceeds frame size");
  }
  outcome.result.columns.reserve(n_columns);
  for (uint32_t i = 0; i < n_columns; ++i) {
    ERBIUM_ASSIGN_OR_RETURN(std::string column, reader.String());
    outcome.result.columns.push_back(std::move(column));
  }
  ERBIUM_ASSIGN_OR_RETURN(uint32_t n_rows, reader.U32());
  if (n_rows > reader.remaining() / 4) {
    return Status::IOError("result frame row count exceeds frame size");
  }
  outcome.result.rows.reserve(n_rows);
  for (uint32_t i = 0; i < n_rows; ++i) {
    ERBIUM_ASSIGN_OR_RETURN(Row row, reader.ReadValues());
    outcome.result.rows.push_back(std::move(row));
  }
  if (!reader.AtEnd() && timing != nullptr) {
    // Optional server-timing footer. Fields are name-tagged so the
    // server may append new ones without a version bump; unknown names
    // are skipped. A malformed footer is a framing error like any other
    // truncated body.
    ERBIUM_ASSIGN_OR_RETURN(uint8_t marker, reader.U8());
    if (marker != kServerTimingMarker) {
      return Status::IOError("result frame has trailing bytes");
    }
    ERBIUM_ASSIGN_OR_RETURN(uint8_t n_fields, reader.U8());
    for (uint8_t i = 0; i < n_fields; ++i) {
      ERBIUM_ASSIGN_OR_RETURN(std::string name, reader.String());
      ERBIUM_ASSIGN_OR_RETURN(uint64_t value, reader.U64());
      if (name == "queue_wait_us") {
        timing->queue_wait_us = value;
      } else if (name == "execute_us") {
        timing->execute_us = value;
      }
    }
    timing->present = true;
  }
  if (!reader.AtEnd()) {
    return Status::IOError("result frame has trailing bytes");
  }
  return outcome;
}

Result<StatementSeqBody> DecodeStatementSeqBody(const std::string& body) {
  ByteReader reader(body.data(), body.size());
  StatementSeqBody out;
  ERBIUM_ASSIGN_OR_RETURN(out.seq, reader.U64());
  ERBIUM_ASSIGN_OR_RETURN(out.statement, reader.String());
  return out;
}

Result<uint64_t> DecodeSeqPrefix(const std::string& body, std::string* rest) {
  ByteReader reader(body.data(), body.size());
  ERBIUM_ASSIGN_OR_RETURN(uint64_t seq, reader.U64());
  *rest = body.substr(8);
  return seq;
}

Status DecodeErrorBody(const std::string& body, Status* out) {
  ByteReader reader(body.data(), body.size());
  ERBIUM_ASSIGN_OR_RETURN(uint32_t wire_code, reader.U32());
  ERBIUM_ASSIGN_OR_RETURN(std::string message, reader.String());
  *out = Status(StatusCodeFromWire(static_cast<int32_t>(wire_code)),
                std::move(message));
  return Status::OK();
}

void FrameDecoder::Feed(const char* data, size_t size) {
  // Compact the consumed prefix before growing — keeps the buffer bounded
  // by (one partial frame + one read) instead of the connection's history.
  if (pos_ > 0 && (pos_ >= buf_.size() || pos_ > 4096)) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(data, size);
}

Result<bool> FrameDecoder::Next(Frame* out) {
  if (buffered() < 8) return false;
  ByteReader head(buf_.data() + pos_, 8);
  uint32_t payload_len = head.U32().value();
  uint32_t expected_crc = head.U32().value();
  if (payload_len == 0) {
    return Status::IOError("frame has empty payload");
  }
  if (payload_len > kMaxFramePayloadBytes) {
    return Status::IOError("frame payload of " + std::to_string(payload_len) +
                           " bytes exceeds the " +
                           std::to_string(kMaxFramePayloadBytes) +
                           "-byte limit");
  }
  if (buffered() < 8 + static_cast<size_t>(payload_len)) return false;
  const char* payload = buf_.data() + pos_ + 8;
  if (Crc32(payload, payload_len) != expected_crc) {
    return Status::IOError("frame CRC mismatch");
  }
  out->type = static_cast<FrameType>(static_cast<uint8_t>(payload[0]));
  out->body.assign(payload + 1, payload_len - 1);
  pos_ += 8 + payload_len;
  return true;
}

FrameSocket::~FrameSocket() {
  if (fd_ >= 0) ::close(fd_);
}

Status FrameSocket::Send(FrameType type, const std::string& body) {
  std::string frame = EncodeFrame(type, body);
  size_t sent = 0;
  while (sent < frame.size()) {
    // MSG_NOSIGNAL: a vanished peer must surface as EPIPE, not kill the
    // process with SIGPIPE.
    ssize_t n = ::send(fd_, frame.data() + sent, frame.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("send failed: ") +
                             std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

namespace {

/// Reads exactly `size` bytes, honoring an absolute deadline (ms since
/// the steady clock epoch; negative = no deadline). `any_read` reports
/// whether at least one byte arrived before an EOF/timeout, so callers
/// can tell an orderly close (EOF at a frame boundary) from a torn frame.
Status ReadExact(int fd, char* out, size_t size, int64_t deadline_ms,
                 bool* any_read) {
  size_t have = 0;
  while (have < size) {
    if (deadline_ms >= 0) {
      int64_t remaining = deadline_ms - NowMs();
      if (remaining <= 0) {
        return Status::DeadlineExceeded("read timed out");
      }
      struct pollfd pfd;
      pfd.fd = fd;
      pfd.events = POLLIN;
      pfd.revents = 0;
      int rc = ::poll(&pfd, 1, static_cast<int>(remaining));
      if (rc < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(std::string("poll failed: ") +
                               std::strerror(errno));
      }
      if (rc == 0) {
        return Status::DeadlineExceeded("read timed out");
      }
    }
    ssize_t n = ::recv(fd, out + have, size - have, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("recv failed: ") +
                             std::strerror(errno));
    }
    if (n == 0) {
      return Status::Unavailable("peer closed the connection");
    }
    have += static_cast<size_t>(n);
    *any_read = true;
  }
  return Status::OK();
}

}  // namespace

Result<Frame> FrameSocket::Recv(int timeout_ms) {
  int64_t deadline_ms = timeout_ms < 0 ? -1 : NowMs() + timeout_ms;
  char header[8];
  bool any_read = false;
  Status st = ReadExact(fd_, header, sizeof(header), deadline_ms, &any_read);
  if (!st.ok()) {
    // EOF or timeout cleanly between frames keeps its taxonomy; the same
    // condition mid-frame means the peer tore a frame.
    if (any_read && st.code() != StatusCode::kIOError) {
      return Status::IOError("connection dropped mid-frame: " + st.message());
    }
    return st;
  }
  ByteReader head(header, sizeof(header));
  uint32_t payload_len = head.U32().value();
  uint32_t expected_crc = head.U32().value();
  if (payload_len == 0) {
    return Status::IOError("frame has empty payload");
  }
  if (payload_len > kMaxFramePayloadBytes) {
    return Status::IOError("frame payload of " + std::to_string(payload_len) +
                           " bytes exceeds the " +
                           std::to_string(kMaxFramePayloadBytes) +
                           "-byte limit");
  }
  std::string payload(payload_len, '\0');
  st = ReadExact(fd_, payload.data(), payload.size(), deadline_ms, &any_read);
  if (!st.ok()) {
    if (st.code() != StatusCode::kIOError) {
      return Status::IOError("connection dropped mid-frame: " + st.message());
    }
    return st;
  }
  if (Crc32(payload.data(), payload.size()) != expected_crc) {
    return Status::IOError("frame CRC mismatch");
  }
  Frame frame;
  frame.type = static_cast<FrameType>(static_cast<uint8_t>(payload[0]));
  frame.body = payload.substr(1);
  return frame;
}

void FrameSocket::ShutdownRead() { ::shutdown(fd_, SHUT_RD); }

}  // namespace server
}  // namespace erbium
