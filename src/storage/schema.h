#ifndef ERBIUM_STORAGE_SCHEMA_H_
#define ERBIUM_STORAGE_SCHEMA_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/type.h"
#include "common/value.h"

namespace erbium {

/// A physical column: name, type, nullability.
struct Column {
  std::string name;
  TypePtr type;
  bool nullable = true;
};

/// Schema of one physical table. `key` lists the indexes of the columns
/// forming the primary key (possibly empty for keyless structures such as
/// relationship tables before constraints are added).
class TableSchema {
 public:
  TableSchema() = default;
  TableSchema(std::string name, std::vector<Column> columns,
              std::vector<int> key = {})
      : name_(std::move(name)),
        columns_(std::move(columns)),
        key_(std::move(key)) {}

  const std::string& name() const { return name_; }
  const std::vector<Column>& columns() const { return columns_; }
  const std::vector<int>& key() const { return key_; }
  size_t num_columns() const { return columns_.size(); }
  const Column& column(int i) const { return columns_[i]; }

  /// Index of a column by name, or -1.
  int ColumnIndex(const std::string& name) const;

  /// Validates a row against the schema: arity, types (null allowed when
  /// nullable), recursively for arrays/structs.
  Status ValidateRow(const Row& row) const;

  /// "name(col1: type1, col2: type2, ...) key(colA, colB)".
  std::string ToString() const;

 private:
  std::string name_;
  std::vector<Column> columns_;
  std::vector<int> key_;
};

/// Checks that a value conforms to a type (nulls conform to everything
/// when `nullable`). Array elements and struct fields are checked
/// recursively; struct values must carry exactly the type's field names
/// in order.
Status ValidateValue(const Value& value, const TypePtr& type, bool nullable);

}  // namespace erbium

#endif  // ERBIUM_STORAGE_SCHEMA_H_
