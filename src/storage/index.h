#ifndef ERBIUM_STORAGE_INDEX_H_
#define ERBIUM_STORAGE_INDEX_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "obs/metrics.h"

namespace erbium {

/// Stable identifier of a row within one table (slot number; never reused
/// while the table lives, deleted slots are tombstoned).
using RowId = uint64_t;

using IndexKey = std::vector<Value>;

/// Abstract secondary/primary index over a subset of a table's columns.
/// The table drives maintenance: it extracts the key columns and calls
/// Insert/Erase as rows change.
class Index {
 public:
  Index(std::string name, std::vector<int> columns, bool unique)
      : name_(std::move(name)),
        columns_(std::move(columns)),
        unique_(unique),
        probes_(obs::MetricsRegistry::Global().counter("index." + name_ +
                                                       ".probes")) {}
  virtual ~Index() = default;

  Index(const Index&) = delete;
  Index& operator=(const Index&) = delete;

  const std::string& name() const { return name_; }
  const std::vector<int>& columns() const { return columns_; }
  bool unique() const { return unique_; }

  /// Adds an entry unconditionally. Uniqueness is enforced by the owning
  /// Table against live row state — under deferred (epoch-based) erasure
  /// the index may legitimately hold stale entries for a key, so the
  /// index itself cannot police duplicates. Keys containing nulls are not
  /// indexed (SQL semantics: null never equals null).
  virtual void Add(const IndexKey& key, RowId id) = 0;
  virtual void Erase(const IndexKey& key, RowId id) = 0;

  /// Appends all row ids with the exact key.
  virtual void Lookup(const IndexKey& key, std::vector<RowId>* out) const = 0;

  /// True if the exact key exists.
  virtual bool Contains(const IndexKey& key) const = 0;

  virtual size_t size() const = 0;

  /// Whether a key participates in the index (no null components).
  static bool IsIndexableKey(const IndexKey& key);

  /// Merged probe count ("index.<name>.probes"): point lookups, existence
  /// checks, and range scans served by this index.
  uint64_t probes() const { return probes_.Value(); }

 protected:
  void CountProbe() const { probes_.Increment(); }

 private:
  std::string name_;
  std::vector<int> columns_;
  bool unique_;
  obs::Counter probes_;
};

/// Hash index: O(1) point lookups, no range support.
class HashIndex : public Index {
 public:
  using Index::Index;

  void Add(const IndexKey& key, RowId id) override;
  void Erase(const IndexKey& key, RowId id) override;
  void Lookup(const IndexKey& key, std::vector<RowId>* out) const override;
  bool Contains(const IndexKey& key) const override;
  size_t size() const override { return map_.size(); }

 private:
  std::unordered_multimap<IndexKey, RowId, ValueVectorHash, ValueVectorEq>
      map_;
};

/// Ordered index: point lookups plus range scans, backed by a multimap
/// over the Value total order.
class OrderedIndex : public Index {
 public:
  using Index::Index;

  void Add(const IndexKey& key, RowId id) override;
  void Erase(const IndexKey& key, RowId id) override;
  void Lookup(const IndexKey& key, std::vector<RowId>* out) const override;
  bool Contains(const IndexKey& key) const override;
  size_t size() const override { return map_.size(); }

  /// Appends ids for keys in [lo, hi]; either bound may be empty (vector of
  /// size 0) meaning unbounded on that side. `lo_inclusive`/`hi_inclusive`
  /// control open vs closed ends.
  void LookupRange(const IndexKey& lo, bool lo_inclusive, const IndexKey& hi,
                   bool hi_inclusive, std::vector<RowId>* out) const;

 private:
  struct KeyLess {
    bool operator()(const IndexKey& a, const IndexKey& b) const {
      size_t n = std::min(a.size(), b.size());
      for (size_t i = 0; i < n; ++i) {
        int c = a[i].Compare(b[i]);
        if (c != 0) return c < 0;
      }
      return a.size() < b.size();
    }
  };

  std::multimap<IndexKey, RowId, KeyLess> map_;
};

}  // namespace erbium

#endif  // ERBIUM_STORAGE_INDEX_H_
