#include "storage/table.h"

#include <cassert>

namespace erbium {

Table::Table(TableSchema schema) : schema_(std::move(schema)) {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  inserts_ = metrics.counter("table." + name() + ".inserts");
  updates_ = metrics.counter("table." + name() + ".updates");
  deletes_ = metrics.counter("table." + name() + ".deletes");
}

IndexKey Table::ExtractKey(const Row& row,
                           const std::vector<int>& columns) const {
  IndexKey key;
  key.reserve(columns.size());
  for (int c : columns) key.push_back(row[c]);
  return key;
}

Result<RowId> Table::Insert(Row row) {
  assert(NoConcurrentReaders() && "Insert during a concurrent-read window");
  ERBIUM_RETURN_NOT_OK(schema_.ValidateRow(row));
  // Check unique constraints before mutating anything.
  for (const auto& index : indexes_) {
    if (!index->unique()) continue;
    IndexKey key = ExtractKey(row, index->columns());
    if (Index::IsIndexableKey(key) && index->Contains(key)) {
      return Status::ConstraintViolation("duplicate key in unique index " +
                                         index->name() + " of table " +
                                         name());
    }
  }
  RowId id = rows_.size();
  for (const auto& index : indexes_) {
    ERBIUM_RETURN_NOT_OK(index->Insert(ExtractKey(row, index->columns()), id));
  }
  rows_.push_back(std::move(row));
  live_.push_back(true);
  ++live_count_;
  inserts_.Increment();
  return id;
}

Status Table::Update(RowId id, Row row) {
  assert(NoConcurrentReaders() && "Update during a concurrent-read window");
  if (!IsLive(id)) {
    return Status::NotFound("update of dead or out-of-range row id " +
                            std::to_string(id) + " in table " + name());
  }
  ERBIUM_RETURN_NOT_OK(schema_.ValidateRow(row));
  const Row& old_row = rows_[id];
  for (const auto& index : indexes_) {
    if (!index->unique()) continue;
    IndexKey new_key = ExtractKey(row, index->columns());
    IndexKey old_key = ExtractKey(old_row, index->columns());
    if (!Index::IsIndexableKey(new_key)) continue;
    if (ValueVectorEq()(new_key, old_key)) continue;
    if (index->Contains(new_key)) {
      return Status::ConstraintViolation("duplicate key in unique index " +
                                         index->name() + " of table " +
                                         name());
    }
  }
  for (const auto& index : indexes_) {
    index->Erase(ExtractKey(old_row, index->columns()), id);
    ERBIUM_RETURN_NOT_OK(index->Insert(ExtractKey(row, index->columns()), id));
  }
  rows_[id] = std::move(row);
  updates_.Increment();
  return Status::OK();
}

Status Table::Delete(RowId id) {
  assert(NoConcurrentReaders() && "Delete during a concurrent-read window");
  if (!IsLive(id)) {
    return Status::NotFound("delete of dead or out-of-range row id " +
                            std::to_string(id) + " in table " + name());
  }
  for (const auto& index : indexes_) {
    index->Erase(ExtractKey(rows_[id], index->columns()), id);
  }
  live_[id] = false;
  rows_[id].clear();
  --live_count_;
  deletes_.Increment();
  return Status::OK();
}

Status Table::CreateIndex(const std::string& index_name,
                          const std::vector<std::string>& column_names,
                          bool unique, bool ordered) {
  assert(NoConcurrentReaders() &&
         "CreateIndex during a concurrent-read window");
  if (FindIndexByName(index_name) != nullptr) {
    return Status::AlreadyExists("index " + index_name + " already exists");
  }
  std::vector<int> columns;
  for (const std::string& column_name : column_names) {
    int idx = schema_.ColumnIndex(column_name);
    if (idx < 0) {
      return Status::InvalidArgument("no column " + column_name +
                                     " in table " + name());
    }
    columns.push_back(idx);
  }
  std::unique_ptr<Index> index;
  if (ordered) {
    index = std::make_unique<OrderedIndex>(index_name, columns, unique);
  } else {
    index = std::make_unique<HashIndex>(index_name, columns, unique);
  }
  for (RowId id = 0; id < rows_.size(); ++id) {
    if (!live_[id]) continue;
    ERBIUM_RETURN_NOT_OK(index->Insert(ExtractKey(rows_[id], columns), id));
  }
  indexes_.push_back(std::move(index));
  return Status::OK();
}

const Index* Table::FindIndex(const std::vector<int>& column_indexes) const {
  for (const auto& index : indexes_) {
    if (index->columns() == column_indexes) return index.get();
  }
  return nullptr;
}

const Index* Table::FindIndexByName(const std::string& index_name) const {
  for (const auto& index : indexes_) {
    if (index->name() == index_name) return index.get();
  }
  return nullptr;
}

void Table::LookupEqual(const std::vector<int>& column_indexes,
                        const IndexKey& key, std::vector<RowId>* out) const {
  const Index* index = FindIndex(column_indexes);
  if (index != nullptr) {
    std::vector<RowId> candidates;
    index->Lookup(key, &candidates);
    for (RowId id : candidates) {
      if (live_[id]) out->push_back(id);
    }
    return;
  }
  for (RowId id = 0; id < rows_.size(); ++id) {
    if (!live_[id]) continue;
    bool match = true;
    for (size_t i = 0; i < column_indexes.size(); ++i) {
      if (rows_[id][column_indexes[i]] != key[i]) {
        match = false;
        break;
      }
    }
    if (match) out->push_back(id);
  }
}

size_t ApproximateValueBytes(const Value& v) {
  switch (v.kind()) {
    case TypeKind::kNull:
      return 1;
    case TypeKind::kBool:
      return 1;
    case TypeKind::kInt64:
    case TypeKind::kFloat64:
      return 8;
    case TypeKind::kString:
      return 16 + v.as_string().size();
    case TypeKind::kArray: {
      size_t total = 24;
      for (const Value& element : v.array()) {
        total += ApproximateValueBytes(element);
      }
      return total;
    }
    case TypeKind::kStruct: {
      size_t total = 24;
      for (const auto& [name, value] : v.struct_fields()) {
        total += name.size() + ApproximateValueBytes(value);
      }
      return total;
    }
  }
  return 0;
}

size_t Table::ApproximateDataBytes() const {
  size_t total = 0;
  for (RowId id = 0; id < rows_.size(); ++id) {
    if (!live_[id]) continue;
    for (const Value& v : rows_[id]) total += ApproximateValueBytes(v);
  }
  return total;
}

}  // namespace erbium
