#include "storage/table.h"

#include <algorithm>
#include <cassert>

namespace erbium {

Table::Table(TableSchema schema) : schema_(std::move(schema)) {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  inserts_ = metrics.counter("table." + name() + ".inserts");
  updates_ = metrics.counter("table." + name() + ".updates");
  deletes_ = metrics.counter("table." + name() + ".deletes");
  Publish();  // version 1: the empty table
}

IndexKey Table::ExtractKey(const Row& row,
                           const std::vector<int>& columns) const {
  IndexKey key;
  key.reserve(columns.size());
  for (int c : columns) key.push_back(row[c]);
  return key;
}

const Row& Table::row(RowId id) const {
  static const Row kDeadRow;
  const Row* r = bank_.Get(id);
  return r != nullptr ? *r : kDeadRow;
}

bool Table::HasLiveDuplicate(const Index& index, const IndexKey& key,
                             RowId self) const {
  std::vector<RowId> candidates;
  index.Lookup(key, &candidates);
  for (RowId id : candidates) {
    if (id == self) continue;
    const Row* r = bank_.Get(id);
    if (r == nullptr) continue;  // tombstoned or not yet appended
    // Deferred erasure: a candidate may carry a *different* key now.
    if (ValueVectorEq()(ExtractKey(*r, index.columns()), key)) return true;
  }
  return false;
}

void Table::Publish() {
  auto version = std::make_shared<TableVersion>();
  version->rows = bank_.TakeSnapshot();
  version->live_count = live_count_;
  version->epoch = ++epoch_;
  live_versions_.push_back(TrackedVersion{version->epoch, version});
  {
    std::lock_guard<std::mutex> lock(version_mu_);
    current_ = std::move(version);
  }
  published_slots_.store(bank_.size(), std::memory_order_release);
  published_live_.store(live_count_, std::memory_order_release);

  // Epoch sweep: drop expired pins, then apply every queued erasure no
  // pinned version can still see. current_ is always tracked, so
  // min_live <= epoch_ and entries queued this mutation never apply yet.
  uint64_t min_live = epoch_;
  size_t kept = 0;
  for (TrackedVersion& tracked : live_versions_) {
    if (tracked.version.expired()) continue;
    min_live = std::min(min_live, tracked.epoch);
    live_versions_[kept++] = std::move(tracked);
  }
  live_versions_.resize(kept);
  if (pending_erases_.empty() || pending_erases_.front().epoch >= min_live) {
    return;
  }
  std::unique_lock<std::shared_mutex> lock(index_mu_);
  while (!pending_erases_.empty() &&
         pending_erases_.front().epoch < min_live) {
    PendingErase& pending = pending_erases_.front();
    pending.index->Erase(pending.key, pending.id);
    pending_erases_.pop_front();
  }
}

void Table::DeferErase(Index* index, IndexKey key, RowId id) {
  if (!Index::IsIndexableKey(key)) return;  // never entered the index
  pending_erases_.push_back(PendingErase{epoch_, index, std::move(key), id});
}

Result<RowId> Table::Insert(Row row) {
  WriterCheck::Scope write_scope(&writer_check_, "Table (Insert)");
  ERBIUM_RETURN_NOT_OK(schema_.ValidateRow(row));
  // Check unique constraints against live working state before mutating
  // anything (the index alone may hold stale entries).
  for (const auto& index : indexes_) {
    if (!index->unique()) continue;
    IndexKey key = ExtractKey(row, index->columns());
    if (Index::IsIndexableKey(key) &&
        HasLiveDuplicate(*index, key, static_cast<RowId>(-1))) {
      return Status::ConstraintViolation("duplicate key in unique index " +
                                         index->name() + " of table " +
                                         name());
    }
  }
  RowId id = bank_.size();
  {
    std::unique_lock<std::shared_mutex> lock(index_mu_);
    for (const auto& index : indexes_) {
      index->Add(ExtractKey(row, index->columns()), id);
    }
  }
  bank_.Append(std::make_shared<const Row>(std::move(row)));
  ++live_count_;
  Publish();
  inserts_.Increment();
  return id;
}

Status Table::Update(RowId id, Row row) {
  WriterCheck::Scope write_scope(&writer_check_, "Table (Update)");
  const Row* old_row = bank_.Get(id);
  if (old_row == nullptr) {
    return Status::NotFound("update of dead or out-of-range row id " +
                            std::to_string(id) + " in table " + name());
  }
  ERBIUM_RETURN_NOT_OK(schema_.ValidateRow(row));
  for (const auto& index : indexes_) {
    if (!index->unique()) continue;
    IndexKey new_key = ExtractKey(row, index->columns());
    if (!Index::IsIndexableKey(new_key)) continue;
    if (ValueVectorEq()(new_key, ExtractKey(*old_row, index->columns()))) {
      continue;
    }
    if (HasLiveDuplicate(*index, new_key, id)) {
      return Status::ConstraintViolation("duplicate key in unique index " +
                                         index->name() + " of table " +
                                         name());
    }
  }
  {
    std::unique_lock<std::shared_mutex> lock(index_mu_);
    for (const auto& index : indexes_) {
      IndexKey old_key = ExtractKey(*old_row, index->columns());
      IndexKey new_key = ExtractKey(row, index->columns());
      // Unchanged key: the existing entry stays valid; adding again would
      // duplicate it and the deferred erase would then remove the wrong
      // (identical) copy.
      if (ValueVectorEq()(old_key, new_key)) continue;
      index->Add(new_key, id);
      // Deferring outside the lock is fine (writer-only queue), but the
      // key was extracted from *old_row which Set() below invalidates.
      DeferErase(index.get(), std::move(old_key), id);
    }
  }
  bank_.Set(id, std::make_shared<const Row>(std::move(row)));
  Publish();
  updates_.Increment();
  return Status::OK();
}

Status Table::Delete(RowId id) {
  WriterCheck::Scope write_scope(&writer_check_, "Table (Delete)");
  const Row* old_row = bank_.Get(id);
  if (old_row == nullptr) {
    return Status::NotFound("delete of dead or out-of-range row id " +
                            std::to_string(id) + " in table " + name());
  }
  for (const auto& index : indexes_) {
    DeferErase(index.get(), ExtractKey(*old_row, index->columns()), id);
  }
  bank_.Set(id, nullptr);
  --live_count_;
  Publish();
  deletes_.Increment();
  return Status::OK();
}

Status Table::CreateIndex(const std::string& index_name,
                          const std::vector<std::string>& column_names,
                          bool unique, bool ordered) {
  WriterCheck::Scope write_scope(&writer_check_, "Table (CreateIndex)");
  if (FindIndexByName(index_name) != nullptr) {
    return Status::AlreadyExists("index " + index_name + " already exists");
  }
  std::vector<int> columns;
  for (const std::string& column_name : column_names) {
    int idx = schema_.ColumnIndex(column_name);
    if (idx < 0) {
      return Status::InvalidArgument("no column " + column_name +
                                     " in table " + name());
    }
    columns.push_back(idx);
  }
  std::unique_ptr<Index> index;
  if (ordered) {
    index = std::make_unique<OrderedIndex>(index_name, columns, unique);
  } else {
    index = std::make_unique<HashIndex>(index_name, columns, unique);
  }
  for (RowId id = 0; id < bank_.size(); ++id) {
    const Row* r = bank_.Get(id);
    if (r == nullptr) continue;
    IndexKey key = ExtractKey(*r, columns);
    if (unique && Index::IsIndexableKey(key) && index->Contains(key)) {
      return Status::ConstraintViolation("duplicate key in unique index " +
                                         index_name + " of table " + name());
    }
    index->Add(std::move(key), id);
  }
  std::unique_lock<std::shared_mutex> lock(index_mu_);
  indexes_.push_back(std::move(index));
  return Status::OK();
}

const Index* Table::FindIndex(const std::vector<int>& column_indexes) const {
  for (const auto& index : indexes_) {
    if (index->columns() == column_indexes) return index.get();
  }
  return nullptr;
}

const Index* Table::FindIndexByName(const std::string& index_name) const {
  for (const auto& index : indexes_) {
    if (index->name() == index_name) return index.get();
  }
  return nullptr;
}

namespace {

bool RowMatchesKey(const Row& row, const std::vector<int>& column_indexes,
                   const IndexKey& key) {
  for (size_t i = 0; i < column_indexes.size(); ++i) {
    if (row[column_indexes[i]] != key[i]) return false;
  }
  return true;
}

}  // namespace

void Table::LookupEqual(const std::vector<int>& column_indexes,
                        const IndexKey& key, std::vector<RowId>* out) const {
  const Index* index = FindIndex(column_indexes);
  if (index != nullptr) {
    std::vector<RowId> candidates;
    index->Lookup(key, &candidates);
    // Deferred erasure can leave duplicate (key, id) entries and stale
    // candidates: dedupe, then verify liveness and the key itself.
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    for (RowId id : candidates) {
      const Row* r = bank_.Get(id);
      if (r != nullptr && RowMatchesKey(*r, column_indexes, key)) {
        out->push_back(id);
      }
    }
    return;
  }
  for (RowId id = 0; id < bank_.size(); ++id) {
    const Row* r = bank_.Get(id);
    if (r != nullptr && RowMatchesKey(*r, column_indexes, key)) {
      out->push_back(id);
    }
  }
}

void Table::LookupEqualIn(const TableVersion& version,
                          const std::vector<int>& column_indexes,
                          const IndexKey& key, std::vector<RowId>* out) const {
  const Index* index = FindIndex(column_indexes);
  if (index != nullptr) {
    std::vector<RowId> candidates;
    {
      std::shared_lock<std::shared_mutex> lock(index_mu_);
      index->Lookup(key, &candidates);
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    for (RowId id : candidates) {
      // The version filter makes the probe snapshot-exact: entries for
      // rows born after the pin fall outside `bound`, tombstones are
      // null, and stale entries fail the key comparison.
      const Row* r = version.row(id);
      if (r != nullptr && RowMatchesKey(*r, column_indexes, key)) {
        out->push_back(id);
      }
    }
    return;
  }
  for (RowId id = 0; id < version.slot_count(); ++id) {
    const Row* r = version.row(id);
    if (r != nullptr && RowMatchesKey(*r, column_indexes, key)) {
      out->push_back(id);
    }
  }
}

size_t ApproximateValueBytes(const Value& v) {
  switch (v.kind()) {
    case TypeKind::kNull:
      return 1;
    case TypeKind::kBool:
      return 1;
    case TypeKind::kInt64:
    case TypeKind::kFloat64:
      return 8;
    case TypeKind::kString:
      return 16 + v.as_string().size();
    case TypeKind::kArray: {
      size_t total = 24;
      for (const Value& element : v.array()) {
        total += ApproximateValueBytes(element);
      }
      return total;
    }
    case TypeKind::kStruct: {
      size_t total = 24;
      for (const auto& [name, value] : v.struct_fields()) {
        total += name.size() + ApproximateValueBytes(value);
      }
      return total;
    }
  }
  return 0;
}

size_t Table::ApproximateDataBytes() const {
  std::shared_ptr<const TableVersion> version = PinVersion();
  size_t total = 0;
  for (RowId id = 0; id < version->slot_count(); ++id) {
    const Row* r = version->row(id);
    if (r == nullptr) continue;
    for (const Value& v : *r) total += ApproximateValueBytes(v);
  }
  return total;
}

}  // namespace erbium
