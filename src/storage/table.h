#ifndef ERBIUM_STORAGE_TABLE_H_
#define ERBIUM_STORAGE_TABLE_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "storage/index.h"
#include "storage/schema.h"

namespace erbium {

/// An in-memory heap table with stable row ids, tombstoned deletes, and
/// attached indexes.
///
/// Concurrency contract (see DESIGN.md "Threading model"): the table is
/// *read-shared*. Any number of threads may call the const accessors
/// (row, IsLive, LookupEqual, ...) concurrently, but no mutating call
/// (Insert/Update/Delete/CreateIndex) may overlap with them. Parallel
/// query execution brackets its read window with BeginConcurrentRead /
/// EndConcurrentRead; mutations assert (debug builds) that no such
/// window is open. All other use is single-threaded, as before.
class Table {
 public:
  explicit Table(TableSchema schema);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const TableSchema& schema() const { return schema_; }
  const std::string& name() const { return schema_.name(); }

  /// Number of live rows.
  size_t size() const { return live_count_; }
  /// Upper bound on row ids (including tombstones); scan range is [0, ...).
  size_t slot_count() const { return rows_.size(); }

  bool IsLive(RowId id) const { return id < rows_.size() && live_[id]; }
  const Row& row(RowId id) const { return rows_[id]; }

  /// Validates the row, checks unique indexes, appends, and maintains
  /// indexes. Returns the new row's id.
  Result<RowId> Insert(Row row);

  /// Replaces the row at `id` (must be live). Index entries are updated.
  Status Update(RowId id, Row row);

  /// Tombstones the row at `id` (must be live) and removes index entries.
  Status Delete(RowId id);

  /// Creates an index over the named columns, backfilling existing rows.
  /// `ordered` selects OrderedIndex (range support) over HashIndex.
  Status CreateIndex(const std::string& index_name,
                     const std::vector<std::string>& column_names, bool unique,
                     bool ordered = false);

  /// Finds an index whose column list is exactly `column_indexes`
  /// (order-sensitive). Returns nullptr if none.
  const Index* FindIndex(const std::vector<int>& column_indexes) const;
  /// Finds an index by name. Returns nullptr if none.
  const Index* FindIndexByName(const std::string& index_name) const;

  const std::vector<std::unique_ptr<Index>>& indexes() const {
    return indexes_;
  }

  /// Convenience point lookup through an index on the given columns; falls
  /// back to a full scan when no matching index exists. Appends live ids.
  void LookupEqual(const std::vector<int>& column_indexes, const IndexKey& key,
                   std::vector<RowId>* out) const;

  /// Approximate bytes consumed by live row data (for the cost model and
  /// storage-size reporting; counts Value payloads, not allocator slack).
  size_t ApproximateDataBytes() const;

  /// Opens/closes a read-shared window: while any lease is held the table
  /// may be scanned from multiple threads and mutations are forbidden
  /// (debug-asserted in Insert/Update/Delete/CreateIndex).
  void BeginConcurrentRead() const {
    concurrent_readers_.fetch_add(1, std::memory_order_acq_rel);
  }
  void EndConcurrentRead() const {
    concurrent_readers_.fetch_sub(1, std::memory_order_acq_rel);
  }

 private:
  IndexKey ExtractKey(const Row& row, const std::vector<int>& columns) const;
  bool NoConcurrentReaders() const {
    return concurrent_readers_.load(std::memory_order_acquire) == 0;
  }

  TableSchema schema_;
  std::vector<Row> rows_;
  std::vector<bool> live_;
  size_t live_count_ = 0;
  std::vector<std::unique_ptr<Index>> indexes_;
  mutable std::atomic<int> concurrent_readers_{0};
  // Per-physical-table mutation counters ("table.<name>.inserts" etc.),
  // bumped only after the mutation succeeds.
  obs::Counter inserts_;
  obs::Counter updates_;
  obs::Counter deletes_;
};

/// Approximate payload size of one value in bytes (recursive).
size_t ApproximateValueBytes(const Value& v);

}  // namespace erbium

#endif  // ERBIUM_STORAGE_TABLE_H_
