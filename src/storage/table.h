#ifndef ERBIUM_STORAGE_TABLE_H_
#define ERBIUM_STORAGE_TABLE_H_

#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/reentrant_check.h"
#include "common/status.h"
#include "common/value.h"
#include "storage/index.h"
#include "storage/schema.h"
#include "storage/versioned_bank.h"

namespace erbium {

/// One immutable published version of a table: a frozen row bank plus its
/// live count, tagged with the epoch that produced it. Readers pin a
/// version (Table::PinVersion) and read it without synchronization for as
/// long as they hold the pin; a null row slot is a tombstone (or a slot
/// appended after this version was published).
struct TableVersion {
  CowBank<Row>::Snapshot rows;
  size_t live_count = 0;
  uint64_t epoch = 0;

  size_t size() const { return live_count; }
  size_t slot_count() const { return rows.bound; }
  const Row* row(RowId id) const { return rows.Get(id); }
  bool IsLive(RowId id) const { return rows.Get(id) != nullptr; }
};

/// An in-memory heap table with stable row ids, tombstoned deletes,
/// attached indexes, and MVCC snapshot reads.
///
/// Concurrency contract (see DESIGN.md "Threading model"):
///   - Exactly one writer thread may mutate the table at a time (callers
///     hold the entity-set's writer-domain lock; a WriterCheck aborts
///     loudly in debug builds if two mutators race). Each mutation
///     publishes a new immutable TableVersion before returning.
///   - Any number of reader threads may concurrently PinVersion() and
///     read the pinned version, including LookupEqualIn index probes —
///     these never block behind the writer and never observe a
///     half-applied mutation.
///   - Index entries for deleted/updated rows are erased *deferred*: a
///     probe may surface a stale candidate, so both probe paths verify
///     liveness and key equality against their row view. Deferred
///     erasures are applied once no pinned version can still see the row
///     (epoch-based reclamation, swept on the writer's thread).
///   - The working-state accessors (row, IsLive, LookupEqual) are for
///     writer/exclusive contexts; concurrent readers must go through a
///     pinned version.
class Table {
 public:
  /// For generic version pinning (exec::ReadSnapshot).
  using VersionType = TableVersion;

  explicit Table(TableSchema schema);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const TableSchema& schema() const { return schema_; }
  const std::string& name() const { return schema_.name(); }

  /// Number of live rows in the latest published version. Safe to call
  /// from any thread.
  size_t size() const {
    return published_live_.load(std::memory_order_acquire);
  }
  /// Upper bound on row ids (including tombstones) in the latest
  /// published version. Safe to call from any thread.
  size_t slot_count() const {
    return published_slots_.load(std::memory_order_acquire);
  }

  /// Pins the latest published version. Cheap (one lock + shared_ptr
  /// copy); holding the pin delays index-entry reclamation for rows it
  /// can see, nothing else.
  std::shared_ptr<const TableVersion> PinVersion() const {
    std::lock_guard<std::mutex> lock(version_mu_);
    return current_;
  }

  /// Working-state liveness/row access — writer/exclusive contexts only.
  bool IsLive(RowId id) const { return bank_.Get(id) != nullptr; }
  /// Row at `id`; dead or out-of-range slots yield an empty row (the
  /// historical tombstone representation).
  const Row& row(RowId id) const;

  /// Validates the row, checks unique constraints against live working
  /// state, appends, maintains indexes, and publishes a new version.
  /// Returns the new row's id.
  Result<RowId> Insert(Row row);

  /// Replaces the row at `id` (must be live); index entries for changed
  /// keys are added now and the old ones erased once unreferenced.
  Status Update(RowId id, Row row);

  /// Tombstones the row at `id` (must be live); index erasure deferred.
  Status Delete(RowId id);

  /// Creates an index over the named columns, backfilling existing rows.
  /// `ordered` selects OrderedIndex (range support) over HashIndex.
  /// Exclusive contexts only (schema build / DDL barrier).
  Status CreateIndex(const std::string& index_name,
                     const std::vector<std::string>& column_names, bool unique,
                     bool ordered = false);

  /// Finds an index whose column list is exactly `column_indexes`
  /// (order-sensitive). Returns nullptr if none. The index *set* is
  /// frozen outside DDL barriers, so concurrent lookup is safe; probing
  /// the returned index's contents requires LookupEqual/LookupEqualIn.
  const Index* FindIndex(const std::vector<int>& column_indexes) const;
  /// Finds an index by name. Returns nullptr if none.
  const Index* FindIndexByName(const std::string& index_name) const;

  const std::vector<std::unique_ptr<Index>>& indexes() const {
    return indexes_;
  }

  /// Point lookup against *working* state — writer/exclusive contexts
  /// only. Falls back to a full scan when no matching index exists.
  /// Appends ids of live rows whose key columns equal `key` (candidates
  /// are deduplicated and key-verified: deferred erasure means the index
  /// may hold stale entries).
  void LookupEqual(const std::vector<int>& column_indexes, const IndexKey& key,
                   std::vector<RowId>* out) const;

  /// Snapshot point lookup: like LookupEqual but filtered against the
  /// pinned `version` and safe to call concurrently with the writer
  /// (probes take the index lock shared).
  void LookupEqualIn(const TableVersion& version,
                     const std::vector<int>& column_indexes,
                     const IndexKey& key, std::vector<RowId>* out) const;

  /// Approximate bytes consumed by live row data in the latest published
  /// version (cost model / storage-size reporting; counts Value payloads,
  /// not allocator slack). Safe to call from any thread.
  size_t ApproximateDataBytes() const;

 private:
  IndexKey ExtractKey(const Row& row, const std::vector<int>& columns) const;
  /// True when a live working row other than `self` carries `key` in the
  /// index's columns (uniqueness must be checked against live state —
  /// the index alone can hold stale and not-yet-visible entries).
  bool HasLiveDuplicate(const Index& index, const IndexKey& key,
                        RowId self) const;
  /// Publishes the working state as a new immutable version and sweeps
  /// deferred index erasures whose rows no pinned version can see.
  void Publish();
  /// Queues (key, id) for erasure from `index` once every version
  /// published up to now (epoch <= current) is unpinned.
  void DeferErase(Index* index, IndexKey key, RowId id);

  TableSchema schema_;
  CowBank<Row> bank_;       // working row state (single writer)
  size_t live_count_ = 0;   // working live count
  uint64_t epoch_ = 0;      // epoch of the latest published version

  /// Latest published version; guarded by version_mu_ (pin = copy).
  mutable std::mutex version_mu_;
  std::shared_ptr<const TableVersion> current_;
  /// Published bounds mirrored as atomics so size()/slot_count() never
  /// tear (readers planning scans, morsel cursors).
  std::atomic<size_t> published_slots_{0};
  std::atomic<size_t> published_live_{0};

  /// Index contents: reader probes lock shared, writer entry mutations
  /// (Add / swept Erase) lock unique. The writer's own probes are
  /// unlocked — only the single writer mutates entries.
  mutable std::shared_mutex index_mu_;
  std::vector<std::unique_ptr<Index>> indexes_;

  /// Epoch-based index reclamation (writer-thread only): erasures queued
  /// FIFO with the epoch whose readers may still need the entry, applied
  /// once the minimum pinned epoch passes it.
  struct PendingErase {
    uint64_t epoch;
    Index* index;
    IndexKey key;
    RowId id;
  };
  std::deque<PendingErase> pending_erases_;
  struct TrackedVersion {
    uint64_t epoch;
    std::weak_ptr<const TableVersion> version;
  };
  std::vector<TrackedVersion> live_versions_;

  /// Debug-build guard: aborts loudly when two threads mutate the same
  /// table concurrently (a writer-domain locking bug).
  WriterCheck writer_check_;

  // Per-physical-table mutation counters ("table.<name>.inserts" etc.),
  // bumped only after the mutation succeeds.
  obs::Counter inserts_;
  obs::Counter updates_;
  obs::Counter deletes_;
};

/// Approximate payload size of one value in bytes (recursive).
size_t ApproximateValueBytes(const Value& v);

}  // namespace erbium

#endif  // ERBIUM_STORAGE_TABLE_H_
