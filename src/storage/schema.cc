#include "storage/schema.h"

namespace erbium {

int TableSchema::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Status TableSchema::ValidateRow(const Row& row) const {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " does not match table " +
        name_ + " arity " + std::to_string(columns_.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    Status st = ValidateValue(row[i], columns_[i].type, columns_[i].nullable);
    if (!st.ok()) {
      return Status(st.code(), "column " + columns_[i].name + " of table " +
                                   name_ + ": " + st.message());
    }
  }
  return Status::OK();
}

std::string TableSchema::ToString() const {
  std::string out = name_ + "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name + ": " + columns_[i].type->ToString();
    if (!columns_[i].nullable) out += " not null";
  }
  out += ")";
  if (!key_.empty()) {
    out += " key(";
    for (size_t i = 0; i < key_.size(); ++i) {
      if (i > 0) out += ", ";
      out += columns_[key_[i]].name;
    }
    out += ")";
  }
  return out;
}

Status ValidateValue(const Value& value, const TypePtr& type, bool nullable) {
  if (value.is_null()) {
    if (!nullable) return Status::ConstraintViolation("null in non-null slot");
    return Status::OK();
  }
  if (!type) return Status::Internal("missing type descriptor");
  switch (type->kind()) {
    case TypeKind::kNull:
      return Status::ConstraintViolation("non-null value in null-typed slot");
    case TypeKind::kBool:
    case TypeKind::kInt64:
    case TypeKind::kFloat64:
    case TypeKind::kString:
      if (value.kind() != type->kind()) {
        return Status::ConstraintViolation(
            std::string("expected ") + TypeKindToString(type->kind()) +
            ", got " + TypeKindToString(value.kind()));
      }
      return Status::OK();
    case TypeKind::kArray: {
      if (value.kind() != TypeKind::kArray) {
        return Status::ConstraintViolation(
            std::string("expected array, got ") +
            TypeKindToString(value.kind()));
      }
      for (const Value& element : value.array()) {
        ERBIUM_RETURN_NOT_OK(
            ValidateValue(element, type->element_type(), /*nullable=*/true));
      }
      return Status::OK();
    }
    case TypeKind::kStruct: {
      if (value.kind() != TypeKind::kStruct) {
        return Status::ConstraintViolation(
            std::string("expected struct, got ") +
            TypeKindToString(value.kind()));
      }
      const Value::StructData& fields = value.struct_fields();
      if (fields.size() != type->fields().size()) {
        return Status::ConstraintViolation("struct field count mismatch");
      }
      for (size_t i = 0; i < fields.size(); ++i) {
        if (fields[i].first != type->fields()[i].name) {
          return Status::ConstraintViolation(
              "struct field name mismatch: expected " +
              type->fields()[i].name + ", got " + fields[i].first);
        }
        ERBIUM_RETURN_NOT_OK(ValidateValue(
            fields[i].second, type->fields()[i].type, /*nullable=*/true));
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable type kind");
}

}  // namespace erbium
