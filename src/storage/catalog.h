#ifndef ERBIUM_STORAGE_CATALOG_H_
#define ERBIUM_STORAGE_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace erbium {

/// Owns the physical tables of one database instance. Table names are
/// unique; lookups return borrowed pointers valid until the table is
/// dropped.
class Catalog {
 public:
  Catalog() = default;

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  Result<Table*> CreateTable(TableSchema schema);
  Status DropTable(const std::string& name);

  /// Returns nullptr if the table does not exist.
  Table* GetTable(const std::string& name);
  const Table* GetTable(const std::string& name) const;

  bool HasTable(const std::string& name) const {
    return tables_.count(name) > 0;
  }

  std::vector<std::string> TableNames() const;
  size_t size() const { return tables_.size(); }

  /// Total approximate bytes across all tables (storage-size reporting).
  size_t ApproximateDataBytes() const;

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace erbium

#endif  // ERBIUM_STORAGE_CATALOG_H_
