#include "storage/catalog.h"

namespace erbium {

Result<Table*> Catalog::CreateTable(TableSchema schema) {
  // Copy: `schema` is moved into the Table before the map key is used.
  std::string name = schema.name();
  if (name.empty()) {
    return Status::InvalidArgument("table name must be non-empty");
  }
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table " + name + " already exists");
  }
  auto table = std::make_unique<Table>(std::move(schema));
  Table* raw = table.get();
  tables_.emplace(name, std::move(table));
  return raw;
}

Status Catalog::DropTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table named " + name);
  }
  tables_.erase(it);
  return Status::OK();
}

Table* Catalog::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

size_t Catalog::ApproximateDataBytes() const {
  size_t total = 0;
  for (const auto& [name, table] : tables_) {
    total += table->ApproximateDataBytes();
  }
  return total;
}

}  // namespace erbium
