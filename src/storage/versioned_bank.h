#ifndef ERBIUM_STORAGE_VERSIONED_BANK_H_
#define ERBIUM_STORAGE_VERSIONED_BANK_H_

#include <array>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

namespace erbium {

/// A chunked copy-on-write slot bank: the storage primitive behind MVCC
/// snapshot reads (modeled on mirrored-buffer-cache designs — readers pin
/// a frozen version, the single writer publishes new ones).
///
/// Layout: a directory vector of fixed-capacity chunks, each chunk an
/// array of `shared_ptr<const T>` slots. A null slot is a tombstone.
///
/// Write protocol (single writer per bank, enforced by the owner):
///   - Append writes the next tail slot *in place*. The chunk may be
///     shared with published snapshots, but every snapshot's `bound` was
///     taken before the append, so no reader ever dereferences that slot
///     — disjoint memory, no race.
///   - Set (update / tombstone) clones the affected chunk and the
///     directory, then swaps the new directory in. Published snapshots
///     keep the old chunk — and therefore the old slot value — alive.
///   - Crossing into a new chunk clones only the directory (amortized
///     1/kChunkSlots of appends).
///
/// Read protocol: take a Snapshot (two shared_ptr copies), then read any
/// slot `< bound` without synchronization. The snapshot owns everything
/// it can reach; raw pointers obtained from it stay valid for the
/// snapshot's lifetime.
template <typename T>
class CowBank {
 public:
  static constexpr size_t kChunkSlots = 256;

  struct Chunk {
    std::array<std::shared_ptr<const T>, kChunkSlots> slots;
  };
  using ChunkVec = std::vector<std::shared_ptr<Chunk>>;

  /// An immutable view of the bank: the first `bound` slots as of the
  /// moment the snapshot was taken. Copyable, cheap, thread-safe to read.
  struct Snapshot {
    std::shared_ptr<const ChunkVec> chunks;
    size_t bound = 0;

    /// Slot value, or nullptr when out of range or tombstoned.
    const T* Get(size_t i) const {
      if (i >= bound) return nullptr;
      return (*chunks)[i / kChunkSlots]->slots[i % kChunkSlots].get();
    }
  };

  CowBank() : chunks_(std::make_shared<ChunkVec>()) {}

  CowBank(const CowBank&) = delete;
  CowBank& operator=(const CowBank&) = delete;

  /// Number of slots ever appended (tombstones included). Writer-side
  /// working value; readers use their Snapshot's bound.
  size_t size() const { return size_; }

  /// Working-state slot value, or nullptr when out of range / tombstoned.
  /// Writer-context only (callers hold the owning object's writer lock).
  const T* Get(size_t i) const {
    if (i >= size_) return nullptr;
    return (*chunks_)[i / kChunkSlots]->slots[i % kChunkSlots].get();
  }

  /// Appends a slot and returns its id. Null is allowed (a born-dead
  /// slot) but unusual.
  size_t Append(std::shared_ptr<const T> value) {
    size_t id = size_;
    if (id % kChunkSlots == 0) {
      auto next = std::make_shared<ChunkVec>(*chunks_);
      next->push_back(std::make_shared<Chunk>());
      chunks_ = std::move(next);
    }
    (*chunks_)[id / kChunkSlots]->slots[id % kChunkSlots] = std::move(value);
    ++size_;
    return id;
  }

  /// Replaces slot `i` (pass nullptr to tombstone). Always clones the
  /// chunk and the directory so every published snapshot keeps its view.
  void Set(size_t i, std::shared_ptr<const T> value) {
    size_t c = i / kChunkSlots;
    auto fresh = std::make_shared<Chunk>(*(*chunks_)[c]);
    fresh->slots[i % kChunkSlots] = std::move(value);
    auto next = std::make_shared<ChunkVec>(*chunks_);
    (*next)[c] = std::move(fresh);
    chunks_ = std::move(next);
  }

  /// Freezes the current state. The caller publishes the result under
  /// its version lock; readers then pin it concurrently with further
  /// writer mutations.
  Snapshot TakeSnapshot() const { return Snapshot{chunks_, size_}; }

 private:
  std::shared_ptr<ChunkVec> chunks_;  // writer's working directory
  size_t size_ = 0;
};

}  // namespace erbium

#endif  // ERBIUM_STORAGE_VERSIONED_BANK_H_
