#include "storage/index.h"

namespace erbium {

bool Index::IsIndexableKey(const IndexKey& key) {
  for (const Value& v : key) {
    if (v.is_null()) return false;
  }
  return true;
}

void HashIndex::Add(const IndexKey& key, RowId id) {
  if (!IsIndexableKey(key)) return;
  map_.emplace(key, id);
}

void HashIndex::Erase(const IndexKey& key, RowId id) {
  auto [begin, end] = map_.equal_range(key);
  for (auto it = begin; it != end; ++it) {
    if (it->second == id) {
      map_.erase(it);
      return;
    }
  }
}

void HashIndex::Lookup(const IndexKey& key, std::vector<RowId>* out) const {
  CountProbe();
  auto [begin, end] = map_.equal_range(key);
  for (auto it = begin; it != end; ++it) out->push_back(it->second);
}

bool HashIndex::Contains(const IndexKey& key) const {
  CountProbe();
  return map_.count(key) > 0;
}

void OrderedIndex::Add(const IndexKey& key, RowId id) {
  if (!IsIndexableKey(key)) return;
  map_.emplace(key, id);
}

void OrderedIndex::Erase(const IndexKey& key, RowId id) {
  auto [begin, end] = map_.equal_range(key);
  for (auto it = begin; it != end; ++it) {
    if (it->second == id) {
      map_.erase(it);
      return;
    }
  }
}

void OrderedIndex::Lookup(const IndexKey& key,
                          std::vector<RowId>* out) const {
  CountProbe();
  auto [begin, end] = map_.equal_range(key);
  for (auto it = begin; it != end; ++it) out->push_back(it->second);
}

bool OrderedIndex::Contains(const IndexKey& key) const {
  CountProbe();
  return map_.count(key) > 0;
}

void OrderedIndex::LookupRange(const IndexKey& lo, bool lo_inclusive,
                               const IndexKey& hi, bool hi_inclusive,
                               std::vector<RowId>* out) const {
  CountProbe();
  auto begin = lo.empty()
                   ? map_.begin()
                   : (lo_inclusive ? map_.lower_bound(lo) : map_.upper_bound(lo));
  auto end = hi.empty()
                 ? map_.end()
                 : (hi_inclusive ? map_.upper_bound(hi) : map_.lower_bound(hi));
  for (auto it = begin; it != end; ++it) out->push_back(it->second);
}

}  // namespace erbium
