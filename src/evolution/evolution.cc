#include "evolution/evolution.h"

#include <algorithm>
#include <map>

namespace erbium {
namespace evolution {

namespace {

Result<AttributeDef*> FindMutableAttribute(ERSchema* schema,
                                           const std::string& entity,
                                           const std::string& attr) {
  EntitySetDef* def = schema->MutableEntitySet(entity);
  if (def == nullptr) {
    return Status::NotFound("no entity set named " + entity);
  }
  for (AttributeDef& a : def->attributes) {
    if (a.name == attr) return &a;
  }
  return Status::NotFound("entity set " + entity + " has no attribute " +
                          attr);
}

}  // namespace

Status MakeAttributeMultiValued(ERSchema* schema, const std::string& entity,
                                const std::string& attr) {
  ERBIUM_ASSIGN_OR_RETURN(AttributeDef * def,
                          FindMutableAttribute(schema, entity, attr));
  const EntitySetDef* entity_def = schema->FindEntitySet(entity);
  if (std::find(entity_def->key.begin(), entity_def->key.end(), attr) !=
          entity_def->key.end() ||
      std::find(entity_def->partial_key.begin(),
                entity_def->partial_key.end(),
                attr) != entity_def->partial_key.end()) {
    return Status::InvalidArgument("key attribute " + attr +
                                   " cannot become multi-valued");
  }
  if (def->multi_valued) {
    return Status::InvalidArgument("attribute " + attr +
                                   " is already multi-valued");
  }
  def->multi_valued = true;
  def->nullable = true;
  return schema->Validate();
}

Status AddAttribute(ERSchema* schema, const std::string& entity,
                    AttributeDef attr) {
  EntitySetDef* def = schema->MutableEntitySet(entity);
  if (def == nullptr) {
    return Status::NotFound("no entity set named " + entity);
  }
  attr.nullable = true;  // existing instances have no value
  def->attributes.push_back(std::move(attr));
  return schema->Validate();
}

Status DropAttribute(ERSchema* schema, const std::string& entity,
                     const std::string& attr) {
  EntitySetDef* def = schema->MutableEntitySet(entity);
  if (def == nullptr) {
    return Status::NotFound("no entity set named " + entity);
  }
  if (std::find(def->key.begin(), def->key.end(), attr) != def->key.end() ||
      std::find(def->partial_key.begin(), def->partial_key.end(), attr) !=
          def->partial_key.end()) {
    return Status::InvalidArgument("key attribute " + attr +
                                   " cannot be dropped");
  }
  auto it = std::find_if(def->attributes.begin(), def->attributes.end(),
                         [&](const AttributeDef& a) { return a.name == attr; });
  if (it == def->attributes.end()) {
    return Status::NotFound("entity set " + entity + " has no attribute " +
                            attr);
  }
  def->attributes.erase(it);
  return schema->Validate();
}

Status ChangeRelationshipCardinality(ERSchema* schema, const std::string& rel,
                                     Cardinality left, Cardinality right) {
  RelationshipSetDef* def = schema->MutableRelationshipSet(rel);
  if (def == nullptr) {
    return Status::NotFound("no relationship set named " + rel);
  }
  auto tightens = [](Cardinality from, Cardinality to) {
    return from == Cardinality::kMany && to == Cardinality::kOne;
  };
  if (tightens(def->left.cardinality, left) ||
      tightens(def->right.cardinality, right)) {
    return Status::InvalidArgument(
        "tightening a cardinality requires a data check; relax only");
  }
  def->left.cardinality = left;
  def->right.cardinality = right;
  return schema->Validate();
}

Status AddSubclass(ERSchema* schema, const std::string& parent,
                   EntitySetDef subclass) {
  if (schema->FindEntitySet(parent) == nullptr) {
    return Status::NotFound("no entity set named " + parent);
  }
  subclass.parent = parent;
  subclass.key.clear();
  ERBIUM_RETURN_NOT_OK(schema->AddEntitySet(std::move(subclass)));
  return schema->Validate();
}

namespace {

/// Adapts one attribute value from the source schema's shape to the
/// destination's (scalar -> 1-element array when the attribute became
/// multi-valued; arrays collapse to their first element when it became
/// single-valued).
Value AdaptValue(const Value& v, bool src_multi, bool dst_multi) {
  if (src_multi == dst_multi) return v;
  if (dst_multi) {
    if (v.is_null()) return Value::Array({});
    return Value::Array({v});
  }
  if (v.kind() == TypeKind::kArray) {
    return v.array().empty() ? Value::Null() : v.array().front();
  }
  return v;
}

}  // namespace

Status MigrateEntities(MappedDatabase* src, const MigrateSinks& sinks) {
  const ERSchema& src_schema = src->schema();
  const ERSchema& dst_schema = *sinks.dst_schema;

  // Entities: roots (and their hierarchies) first, then weak entity sets
  // ordered so owners precede the weak sets they own.
  std::vector<std::string> strong_roots;
  std::vector<std::string> weak_sets;
  for (const std::string& name : src_schema.EntitySetNames()) {
    const EntitySetDef* def = src_schema.FindEntitySet(name);
    if (def->weak) {
      weak_sets.push_back(name);
    } else if (!def->is_subclass()) {
      strong_roots.push_back(name);
    }
  }
  std::stable_sort(weak_sets.begin(), weak_sets.end(),
                   [&](const std::string& a, const std::string& b) {
                     // Owner-depth ascending.
                     auto depth = [&](std::string cur) {
                       int d = 0;
                       while (true) {
                         const EntitySetDef* def =
                             src_schema.FindEntitySet(cur);
                         if (def == nullptr || !def->weak) break;
                         cur = def->owner;
                         ++d;
                       }
                       return d;
                     };
                     return depth(a) < depth(b);
                   });

  auto migrate_class_instances = [&](const std::string& set_name) -> Status {
    ERBIUM_ASSIGN_OR_RETURN(OperatorPtr scan, src->ScanEntity(set_name, {}));
    ERBIUM_ASSIGN_OR_RETURN(std::vector<Row> keys, CollectRows(scan.get()));
    for (const Row& key_row : keys) {
      IndexKey key(key_row.begin(), key_row.end());
      ERBIUM_ASSIGN_OR_RETURN(std::string specific,
                              src->SpecificClassOf(set_name, key));
      ERBIUM_ASSIGN_OR_RETURN(Value entity, src->GetEntity(specific, key));
      // Adapt attribute shapes to the destination schema; the _class
      // field from GetEntity is dropped.
      std::string dst_class = specific;
      if (dst_schema.FindEntitySet(dst_class) == nullptr) {
        // Class removed in the new schema: degrade to the nearest
        // surviving ancestor.
        Result<std::vector<std::string>> chain =
            src_schema.AncestryChain(specific);
        if (!chain.ok()) return chain.status();
        dst_class.clear();
        for (auto it = chain->rbegin(); it != chain->rend(); ++it) {
          if (dst_schema.FindEntitySet(*it) != nullptr) {
            dst_class = *it;
            break;
          }
        }
        if (dst_class.empty()) continue;  // whole hierarchy dropped
      }
      ERBIUM_ASSIGN_OR_RETURN(std::vector<AttributeDef> dst_attrs,
                              dst_schema.AllAttributes(dst_class));
      ERBIUM_ASSIGN_OR_RETURN(std::vector<AttributeDef> src_attrs,
                              src_schema.AllAttributes(specific));
      std::map<std::string, bool> src_multi;
      for (const AttributeDef& a : src_attrs) {
        src_multi[a.name] = a.multi_valued;
      }
      Value::StructData fields;
      // Key attributes first (names are shared between versions).
      ERBIUM_ASSIGN_OR_RETURN(std::vector<std::string> key_names,
                              dst_schema.FullKey(dst_class));
      for (const std::string& k : key_names) {
        const Value* v = entity.FindField(k);
        if (v == nullptr) {
          return Status::AnalysisError(
              "migration cannot derive key attribute " + k + " of " +
              dst_class);
        }
        fields.emplace_back(k, *v);
      }
      for (const AttributeDef& attr : dst_attrs) {
        bool is_key = std::find(key_names.begin(), key_names.end(),
                                attr.name) != key_names.end();
        if (is_key) continue;
        const Value* v = entity.FindField(attr.name);
        Value adapted =
            v == nullptr
                ? (attr.multi_valued ? Value::Array({}) : Value::Null())
                : AdaptValue(*v, src_multi.count(attr.name) > 0 &&
                                     src_multi[attr.name],
                             attr.multi_valued);
        fields.emplace_back(attr.name, std::move(adapted));
      }
      ERBIUM_RETURN_NOT_OK(
          sinks.insert_entity(dst_class, Value::Struct(std::move(fields))));
    }
    return Status::OK();
  };

  for (const std::string& root : strong_roots) {
    ERBIUM_RETURN_NOT_OK(migrate_class_instances(root));
  }
  for (const std::string& weak : weak_sets) {
    ERBIUM_RETURN_NOT_OK(migrate_class_instances(weak));
  }
  return Status::OK();
}

Status MigrateRelationships(MappedDatabase* src, const MigrateSinks& sinks) {
  const ERSchema& src_schema = src->schema();
  const ERSchema& dst_schema = *sinks.dst_schema;
  for (const std::string& rel_name : src_schema.RelationshipSetNames()) {
    const RelationshipSetDef* dst_rel =
        dst_schema.FindRelationshipSet(rel_name);
    if (dst_rel == nullptr) continue;  // dropped in the new schema
    const RelationshipSetDef* src_rel =
        src_schema.FindRelationshipSet(rel_name);
    ERBIUM_ASSIGN_OR_RETURN(OperatorPtr scan,
                            src->ScanRelationship(rel_name));
    ERBIUM_ASSIGN_OR_RETURN(std::vector<Row> rows, CollectRows(scan.get()));
    ERBIUM_ASSIGN_OR_RETURN(std::vector<Column> left_key,
                            src->mapping().KeyColumns(src_rel->left.entity));
    ERBIUM_ASSIGN_OR_RETURN(std::vector<Column> right_key,
                            src->mapping().KeyColumns(src_rel->right.entity));
    for (const Row& row : rows) {
      IndexKey left(row.begin(), row.begin() + left_key.size());
      IndexKey right(row.begin() + left_key.size(),
                     row.begin() + left_key.size() + right_key.size());
      Value attrs = Value::Null();
      if (!src_rel->attributes.empty()) {
        Value::StructData fields;
        size_t base = left_key.size() + right_key.size();
        for (size_t i = 0; i < src_rel->attributes.size(); ++i) {
          fields.emplace_back(src_rel->attributes[i].name, row[base + i]);
        }
        attrs = Value::Struct(std::move(fields));
      }
      ERBIUM_RETURN_NOT_OK(
          sinks.insert_relationship(rel_name, left, right, attrs));
    }
  }
  return Status::OK();
}

Status MigrateData(MappedDatabase* src, MappedDatabase* dst) {
  MigrateSinks sinks;
  sinks.dst_schema = &dst->schema();
  sinks.insert_entity = [dst](const std::string& cls, Value fields) {
    return dst->InsertEntity(cls, std::move(fields));
  };
  sinks.insert_relationship = [dst](const std::string& rel, IndexKey left,
                                    IndexKey right, Value attrs) {
    return dst->InsertRelationship(rel, left, right, attrs);
  };
  ERBIUM_RETURN_NOT_OK(MigrateEntities(src, sinks));
  return MigrateRelationships(src, sinks);
}

}  // namespace evolution

Result<std::unique_ptr<VersionedDatabase>> VersionedDatabase::Create(
    ERSchema initial_schema, MappingSpec spec) {
  std::unique_ptr<VersionedDatabase> db(new VersionedDatabase());
  ERBIUM_RETURN_NOT_OK(db->PushVersion(std::move(initial_schema),
                                       std::move(spec), "initial schema",
                                       /*migrate=*/false));
  return db;
}

std::vector<VersionedDatabase::VersionInfo> VersionedDatabase::History()
    const {
  std::vector<VersionInfo> out;
  for (size_t i = 0; i < versions_.size(); ++i) {
    out.push_back(VersionInfo{static_cast<int>(i), versions_[i].description,
                              versions_[i].db->mapping().spec().name});
  }
  return out;
}

Status VersionedDatabase::PushVersion(ERSchema schema, MappingSpec spec,
                                      std::string description, bool migrate) {
  Version version;
  version.schema = std::make_shared<ERSchema>(std::move(schema));
  ERBIUM_ASSIGN_OR_RETURN(
      version.db, MappedDatabase::Create(version.schema.get(), std::move(spec)));
  version.description = std::move(description);
  if (migrate) {
    ERBIUM_RETURN_NOT_OK(
        evolution::MigrateData(versions_.back().db.get(), version.db.get()));
  }
  versions_.push_back(std::move(version));
  return Status::OK();
}

Status VersionedDatabase::Evolve(const std::function<Status(ERSchema*)>& change,
                                 std::string description) {
  return EvolveWithMapping(change, versions_.back().db->mapping().spec(),
                           std::move(description));
}

Status VersionedDatabase::EvolveWithMapping(
    const std::function<Status(ERSchema*)>& change, MappingSpec new_spec,
    std::string description) {
  ERSchema next = *versions_.back().schema;
  ERBIUM_RETURN_NOT_OK(change(&next));
  return PushVersion(std::move(next), std::move(new_spec),
                     std::move(description), /*migrate=*/true);
}

Status VersionedDatabase::Remap(MappingSpec new_spec, std::string description) {
  ERSchema same = *versions_.back().schema;
  return PushVersion(std::move(same), std::move(new_spec),
                     std::move(description), /*migrate=*/true);
}

Status VersionedDatabase::Rollback() {
  if (versions_.size() <= 1) {
    return Status::InvalidArgument("no prior version to roll back to");
  }
  versions_.pop_back();
  return Status::OK();
}

}  // namespace erbium
