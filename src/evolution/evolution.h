#ifndef ERBIUM_EVOLUTION_EVOLUTION_H_
#define ERBIUM_EVOLUTION_EVOLUTION_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "er/er_schema.h"
#include "mapping/database.h"

namespace erbium {

/// Schema-evolution operations (paper Section 3). Each produces a
/// modified copy of a schema; VersionedDatabase applies them together
/// with data migration. The operations are deliberately E/R-level: the
/// "single-valued city becomes multi-valued" change is one call here,
/// whereas on a raw relational schema it forces a table split and a
/// rewrite of every query touching the attribute.
namespace evolution {

/// attr becomes multi-valued; existing scalars migrate to 1-element
/// arrays (nulls to empty arrays).
Status MakeAttributeMultiValued(ERSchema* schema, const std::string& entity,
                                const std::string& attr);

/// Adds an attribute (nullable; existing instances get null / []).
Status AddAttribute(ERSchema* schema, const std::string& entity,
                    AttributeDef attr);

/// Drops a non-key attribute.
Status DropAttribute(ERSchema* schema, const std::string& entity,
                     const std::string& attr);

/// Changes participation cardinalities (e.g. many-to-one advisor becomes
/// many-to-many). Existing instances always satisfy the relaxed
/// constraint; tightening is rejected here (it would need data checks).
Status ChangeRelationshipCardinality(ERSchema* schema, const std::string& rel,
                                     Cardinality left, Cardinality right);

/// Adds a new subclass under `parent`.
Status AddSubclass(ERSchema* schema, const std::string& parent,
                   EntitySetDef subclass);

/// Copies every entity (with its most-specific class) and every
/// relationship instance from `src` into `dst`. Schemas may differ:
/// attributes are matched by name; newly multi-valued attributes wrap
/// scalars into arrays; attributes missing in dst are dropped; new
/// attributes start null. This is the generic migration path enabled by
/// mapping reversibility (paper Section 4 requirement 1).
Status MigrateData(MappedDatabase* src, MappedDatabase* dst);

/// Sink form of the same migration, for hosts that spread the stream
/// over several destination databases (the sharded engine re-routes
/// every instance: entity placement is schema-derived, but relationship
/// edges follow their dominant participant, which the mapping spec can
/// flip). `dst_schema` drives the value adaptation exactly as dst's
/// schema does in MigrateData. The two passes are separate so a
/// multi-source host can land *all* entities (from every source) before
/// any relationship edge — foreign-key edge storage needs the dominant
/// side's rows in place.
struct MigrateSinks {
  const ERSchema* dst_schema = nullptr;
  std::function<Status(const std::string& cls, Value fields)> insert_entity;
  std::function<Status(const std::string& rel, IndexKey left, IndexKey right,
                       Value attrs)>
      insert_relationship;
};
Status MigrateEntities(MappedDatabase* src, const MigrateSinks& sinks);
Status MigrateRelationships(MappedDatabase* src, const MigrateSinks& sinks);

}  // namespace evolution

/// A database with native schema/mapping versioning (paper Sections 3
/// and 5): every Evolve/Remap produces a new version with migrated data;
/// prior versions stay readable and Rollback reinstates them.
class VersionedDatabase {
 public:
  struct VersionInfo {
    int version;
    std::string description;
    std::string mapping_name;
  };

  static Result<std::unique_ptr<VersionedDatabase>> Create(
      ERSchema initial_schema, MappingSpec spec);

  MappedDatabase* current() { return versions_.back().db.get(); }
  const ERSchema& schema() const { return *versions_.back().schema; }
  int version() const { return static_cast<int>(versions_.size()) - 1; }
  std::vector<VersionInfo> History() const;

  /// Applies a schema change (mutating a copy of the current schema),
  /// optionally switches the physical mapping, migrates all data, and
  /// makes the result the new current version.
  Status Evolve(const std::function<Status(ERSchema*)>& change,
                std::string description);
  Status EvolveWithMapping(const std::function<Status(ERSchema*)>& change,
                           MappingSpec new_spec, std::string description);

  /// Keeps the schema, changes only the physical mapping — the pure
  /// logical-data-independence move (no query changes needed).
  Status Remap(MappingSpec new_spec, std::string description);

  /// Discards the newest version and reinstates the previous one.
  Status Rollback();

 private:
  struct Version {
    std::shared_ptr<ERSchema> schema;
    std::unique_ptr<MappedDatabase> db;
    std::string description;
  };

  VersionedDatabase() = default;

  Status PushVersion(ERSchema schema, MappingSpec spec,
                     std::string description, bool migrate);

  std::vector<Version> versions_;
};

}  // namespace erbium

#endif  // ERBIUM_EVOLUTION_EVOLUTION_H_
