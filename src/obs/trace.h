#ifndef ERBIUM_OBS_TRACE_H_
#define ERBIUM_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace erbium {
namespace obs {

/// Per-operator-instance execution stats, filled in by the exec layer's
/// Open/Next wrappers. One instance is driven by one thread at a time
/// (worker clones get their own instance), so the fields are plain
/// integers; cross-worker aggregation copies them after the workers have
/// been joined.
struct OpStats {
  uint64_t opens = 0;     // Open() calls (re-execution shows up here)
  uint64_t rows_out = 0;  // successful Next() calls
  uint64_t batches = 0;   // exchange batches (GatherOp only)
  uint64_t wall_ns = 0;   // monotonic time inside Open+Next, analyze only
  uint64_t cpu_ns = 0;    // thread CPU time inside Open+Next, analyze only

  void MergeFrom(const OpStats& other) {
    opens += other.opens;
    rows_out += other.rows_out;
    batches += other.batches;
    wall_ns += other.wall_ns;
    cpu_ns += other.cpu_ns;
  }
};

/// Row counting is always on (one add per Next); the clock reads are not
/// free, so they are gated behind this process-wide flag, flipped by
/// EXPLAIN ANALYZE around a single execution. A tree walk can't reach
/// parallel worker clones (GatherOp owns them internally), which is why
/// this is a global flag rather than per-plan state.
bool AnalyzeEnabled();
void SetAnalyzeEnabled(bool enabled);

/// RAII analyze window; restores the previous flag value on scope exit.
class ScopedAnalyze {
 public:
  ScopedAnalyze();
  ~ScopedAnalyze();
  ScopedAnalyze(const ScopedAnalyze&) = delete;
  ScopedAnalyze& operator=(const ScopedAnalyze&) = delete;

 private:
  bool prev_;
};

/// CLOCK_MONOTONIC, nanoseconds.
uint64_t MonotonicNowNs();
/// CLOCK_THREAD_CPUTIME_ID, nanoseconds (calling thread only).
uint64_t ThreadCpuNowNs();

/// One rendered span in a collected query trace: an operator instance
/// plus its stats, positioned in the plan tree by depth (parent spans
/// precede children, preorder).
struct SpanRecord {
  std::string name;    // operator display name
  std::string detail;  // mapping / planner annotation, may be empty
  int depth = 0;
  OpStats stats;
};

/// Per-query trace assembled after execution by walking the plan.
struct QueryStats {
  std::vector<SpanRecord> spans;
  uint64_t total_wall_ns = 0;

  /// Indented tree, one span per line:
  ///   name [detail]  rows=N opens=N wall=1.2ms cpu=0.9ms
  /// Timing columns are omitted when no span recorded any.
  std::string ToString() const;
};

/// "1.23ms" / "45.6us" / "789ns" — shared by QueryStats and EXPLAIN.
std::string FormatNs(uint64_t ns);

}  // namespace obs
}  // namespace erbium

#endif  // ERBIUM_OBS_TRACE_H_
