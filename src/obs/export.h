#ifndef ERBIUM_OBS_EXPORT_H_
#define ERBIUM_OBS_EXPORT_H_

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace erbium {
namespace obs {

/// Maps a dotted metric name to a Prometheus metric name: prefixed with
/// "erbium_", every character outside [a-zA-Z0-9_:] replaced by '_'.
std::string PrometheusName(const std::string& name);

/// Renders every metric in the registry in the Prometheus text exposition
/// format (version 0.0.4): one "# TYPE" line per family, counters and
/// gauges as single samples, histograms as cumulative "_bucket" samples
/// with an le label (including le="+Inf") plus "_sum" and "_count".
/// Defaults to the process-wide registry.
std::string ExportPrometheusText();
std::string ExportPrometheusText(const MetricsRegistry& registry);

/// Line-level conformance check for the text exposition format: every
/// comment is a well-formed "# TYPE <name> counter|gauge|histogram"
/// line, every sample parses and is preceded by its family's TYPE line
/// (histogram _bucket/_sum/_count samples count toward the histogram's
/// family), and the text carries at least one sample. Returns the empty
/// string when `text` conforms, else a one-line description of the
/// first violation. Shared by the exporter tests and the prom_validate
/// CLI the CI smoke job pipes live scrapes through.
std::string PrometheusFormatError(const std::string& text);

/// Renders a collected query span tree as Chrome trace_event JSON — an
/// object with a "traceEvents" array of complete ("ph":"X") events, one
/// per span, loadable in Perfetto / chrome://tracing. Timestamps are
/// synthesized from the tree shape (children nest inside their parent,
/// siblings laid out sequentially); tid is the span's depth so each plan
/// level renders as its own track. Durations are the spans' wall time in
/// microseconds (zero outside analyze windows, which still yields a
/// structurally valid trace). `query_text` lands in otherData.query.
std::string ExportChromeTrace(const QueryStats& stats,
                              const std::string& query_text = std::string());

}  // namespace obs
}  // namespace erbium

#endif  // ERBIUM_OBS_EXPORT_H_
