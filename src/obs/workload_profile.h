#ifndef ERBIUM_OBS_WORKLOAD_PROFILE_H_
#define ERBIUM_OBS_WORKLOAD_PROFILE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace erbium {
namespace obs {

/// Always-on workload profiler: records *what* statements touch at the
/// E/R level (which entity sets, relationship sets, and attributes, and
/// how — full scan vs index probe vs join side vs CRUD kind) plus a
/// normalized query-shape table, so the mapping advisor can be fed from
/// live traffic instead of a hand-written workload.
///
/// The write path is lock-sharded like QueryTelemetry: names hash to one
/// of kShards shards, each guarded by its own mutex, so concurrent
/// sessions rarely contend. Every count is mirrored into a
/// MetricsRegistry counter under the "workload." prefix, which is what
/// puts the profile on the Prometheus export and the /metrics scrape for
/// free. The profiler performs no clock reads of its own: statement wall
/// time arrives from the query engine's existing measurement.
///
/// Compile the capture out entirely with -DERBIUM_DISABLE_WORKLOAD_PROFILE
/// (a CMake option of the same name); the recording entry points then
/// collapse to empty inlines.

/// How one statement reached one entity set.
enum class EntityPath { kScan, kProbe, kJoinSide };

/// CRUD verbs fed from the statement layer.
enum class CrudKind { kInsert, kDelete, kUpdate };

struct EntityAccess {
  uint64_t scans = 0;       // full entity-set scans
  uint64_t probes = 0;      // key point lookups (index probe)
  uint64_t join_sides = 0;  // appeared as the probe/build side of a join
  uint64_t inserts = 0;
  uint64_t deletes = 0;
  uint64_t updates = 0;
};

struct RelationshipAccess {
  uint64_t joins = 0;        // traversed by a relationship join
  uint64_t fused_scans = 0;  // served by a fused joined-storage scan
  uint64_t inserts = 0;
  uint64_t deletes = 0;
};

struct AttributeAccess {
  uint64_t predicates = 0;   // referenced by WHERE / ON
  uint64_t projections = 0;  // referenced by SELECT / GROUP BY / ORDER BY
};

/// The E/R access footprint of one compiled statement, assembled by the
/// translator while it plans and stored alongside the compiled plan, so
/// plan-cache hits replay it without re-deriving anything.
struct StatementFootprint {
  struct EntityTouch {
    std::string entity;
    EntityPath path;
  };
  struct RelationshipTouch {
    std::string relationship;
    bool fused = false;
  };
  struct AttributeTouch {
    std::string entity;
    std::string attribute;
    bool predicate = false;  // else projection
  };

  /// Literal-stripped statement text (NormalizeShape), stamped by the
  /// query engine once per compile.
  std::string shape;
  std::vector<EntityTouch> entities;
  std::vector<RelationshipTouch> relationships;
  std::vector<AttributeTouch> attributes;
};

/// Point-in-time copy of a profile. Maps are key-sorted and shapes are
/// ordered by weight (total wall time) descending then shape text
/// ascending, so ToJson() is byte-deterministic for a given state.
struct WorkloadSnapshot {
  struct Shape {
    std::string shape;   // normalized text (literals stripped)
    std::string sample;  // one concrete statement matching the shape
    std::string kind;    // statement kind tag ("select", "trace", ...)
    uint64_t count = 0;
    uint64_t total_wall_ns = 0;
    /// frequency x mean latency == accumulated wall time.
    uint64_t weight_ns() const { return total_wall_ns; }
  };

  uint64_t statements = 0;  // profiled statements recorded
  std::map<std::string, EntityAccess> entities;
  std::map<std::string, RelationshipAccess> relationships;
  std::map<std::string, AttributeAccess> attributes;  // key "Entity.attr"
  std::vector<Shape> shapes;

  /// Canonical JSON encoding (parseable by tests/mini_json.h). Two equal
  /// snapshots always render byte-identically.
  std::string ToJson() const;
};

/// Rewrites statement text into its shape: tokens re-joined with single
/// spaces, identifiers lowercased, every literal (integer, float, string)
/// replaced by '?', trailing ';' dropped. Text that fails to tokenize
/// falls back to whitespace collapsing so the profiler never rejects a
/// statement the parser itself accepted.
std::string NormalizeShape(const std::string& text);

class WorkloadProfile {
 public:
  /// The process-wide profile, mirroring into MetricsRegistry::Global().
  /// Intentionally leaked, like the registry itself.
  static WorkloadProfile& Global();

  /// `shape_capacity` bounds the number of distinct shapes kept. At
  /// capacity, a new shape is admitted only by arriving with more wall
  /// time than the lightest resident (which it then evicts) — heavy
  /// hitters survive streams of one-off shapes. `registry` defaults to
  /// the process-wide registry; tests pass their own for isolation.
  explicit WorkloadProfile(size_t shape_capacity = kDefaultShapeCapacity,
                           MetricsRegistry* registry = nullptr);

  WorkloadProfile(const WorkloadProfile&) = delete;
  WorkloadProfile& operator=(const WorkloadProfile&) = delete;

  /// Runtime kill switch; capture entry points become near-free loads.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// True unless built with ERBIUM_DISABLE_WORKLOAD_PROFILE.
  static constexpr bool CompiledIn() {
#ifdef ERBIUM_DISABLE_WORKLOAD_PROFILE
    return false;
#else
    return true;
#endif
  }

  /// Records one executed statement: its footprint (may be null for
  /// statements with no compiled plan) and its shape weighted by the wall
  /// time the engine already measured. Only plan-executing kinds
  /// ("select", "explain_analyze", "trace") are profiled; introspection
  /// statements (SHOW/EXPORT/LOAD WORKLOAD, ADVISE) observe the profile
  /// without perturbing it.
  void RecordStatement(const StatementFootprint* footprint,
                       const std::string& kind, const std::string& text,
                       uint64_t wall_ns) {
#ifndef ERBIUM_DISABLE_WORKLOAD_PROFILE
    if (enabled()) RecordStatementImpl(footprint, kind, text, wall_ns);
#else
    (void)footprint, (void)kind, (void)text, (void)wall_ns;
#endif
  }

  /// CRUD feed from the statement layer (api::StatementRunner), so
  /// internal bulk paths (REMAP migration, recovery replay, advisor
  /// candidate population) never pollute the captured workload.
  void RecordEntityCrud(const std::string& entity, CrudKind kind) {
#ifndef ERBIUM_DISABLE_WORKLOAD_PROFILE
    if (enabled()) RecordEntityCrudImpl(entity, kind);
#else
    (void)entity, (void)kind;
#endif
  }
  void RecordRelationshipCrud(const std::string& relationship, CrudKind kind) {
#ifndef ERBIUM_DISABLE_WORKLOAD_PROFILE
    if (enabled()) RecordRelationshipCrudImpl(relationship, kind);
#else
    (void)relationship, (void)kind;
#endif
  }

  WorkloadSnapshot Snapshot() const;

  /// Forgets everything captured so far (the Prometheus mirror counters,
  /// being monotonic, are not rewound).
  void Clear();

  /// Snapshot().ToJson() — the EXPORT WORKLOAD INTO payload.
  std::string ToJson() const { return Snapshot().ToJson(); }

  /// Replaces the profile contents with a previously exported snapshot.
  /// Loading S then exporting again reproduces S byte-for-byte. The
  /// Prometheus mirror keeps counting live traffic only.
  Status LoadJson(const std::string& json);

  static constexpr size_t kDefaultShapeCapacity = 128;

 private:
  static constexpr size_t kShards = 8;

  struct EntityState {
    EntityAccess counts;
    Counter c_scans, c_probes, c_join_sides, c_inserts, c_deletes, c_updates;
  };
  struct RelationshipState {
    RelationshipAccess counts;
    Counter c_joins, c_fused_scans, c_inserts, c_deletes;
  };
  struct AttributeState {
    AttributeAccess counts;
    Counter c_predicates, c_projections;
  };
  struct ShapeState {
    std::string sample;
    std::string kind;
    uint64_t count = 0;
    uint64_t total_wall_ns = 0;
  };

  /// One hash-sharded slice of the profile. A statement's touches are
  /// applied name-by-name; each name locks only its own shard.
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, EntityState> entities;
    std::unordered_map<std::string, RelationshipState> relationships;
    std::unordered_map<std::string, AttributeState> attributes;
    std::unordered_map<std::string, ShapeState> shapes;
  };

  void RecordStatementImpl(const StatementFootprint* footprint,
                           const std::string& kind, const std::string& text,
                           uint64_t wall_ns);
  void RecordEntityCrudImpl(const std::string& entity, CrudKind kind);
  void RecordRelationshipCrudImpl(const std::string& relationship,
                                  CrudKind kind);
  void RecordShape(const std::string& shape, const std::string& kind,
                   const std::string& sample, uint64_t wall_ns,
                   uint64_t count);

  Shard& ShardFor(const std::string& name);
  EntityState& EntityStateLocked(Shard& shard, const std::string& name);
  RelationshipState& RelationshipStateLocked(Shard& shard,
                                             const std::string& name);
  AttributeState& AttributeStateLocked(Shard& shard, const std::string& key);

  MetricsRegistry* registry_;
  size_t shape_capacity_;
  size_t shapes_per_shard_;
  std::atomic<bool> enabled_{true};
  std::atomic<uint64_t> statements_{0};
  Counter c_statements_;
  Gauge g_shapes_;
  Shard shards_[kShards];
};

}  // namespace obs
}  // namespace erbium

#endif  // ERBIUM_OBS_WORKLOAD_PROFILE_H_
