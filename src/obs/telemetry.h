#ifndef ERBIUM_OBS_TELEMETRY_H_
#define ERBIUM_OBS_TELEMETRY_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace erbium {
namespace obs {

/// One completed statement as seen by the query engine: what ran, under
/// which mapping, how long it took, and how it ended. Produced for every
/// statement — successes and failures alike — so the query log is a
/// faithful record of traffic, not just of happy paths.
struct QueryRecord {
  uint64_t seq = 0;       // monotonic, process-wide, assigned by Record()
  std::string text;       // statement text (truncated to kMaxTextBytes)
  std::string kind;       // select / explain / explain_analyze / show /
                          // trace / invalid
  std::string mapping;    // active mapping name (e.g. "m1")
  std::string session;    // session tag of the issuing connection; filled
                          // from obs::CurrentSessionTag() when empty
                          // ("-" when the thread has no session)
  uint64_t wall_ns = 0;   // end-to-end wall time incl. parse + translate
  uint64_t cpu_ns = 0;    // calling thread's CPU time over the same window
  uint64_t rows_out = 0;  // materialized result rows
  int threads = 1;        // ExecOptions::num_threads the statement ran with
  bool ok = true;
  std::string error;      // status message when !ok

  // Server transport lifecycle, zero for statements that never crossed
  // the wire (local shell, embedded API). queue_wait is stamped by
  // Record() from the ScopedStatementLifecycle of the executing worker;
  // write_stall / server_total arrive later via AnnotateWriteStall()
  // once the reactor has flushed the response to the socket.
  uint64_t queue_wait_ns = 0;    // frame decode -> worker picked it up
  uint64_t write_stall_ns = 0;   // response queued -> last byte written
  uint64_t server_total_ns = 0;  // frame decode -> last byte written
};

/// A slow query keeps its full span tree (per-operator rows, and wall/cpu
/// when the statement ran inside an analyze window) next to the record.
struct SlowQueryRecord {
  QueryRecord record;
  QueryStats stats;
};

/// Always-on, low-overhead query log: a lock-sharded fixed-capacity ring
/// buffer of QueryRecords plus a dedicated ring for slow queries.
///
/// Recording is per-statement (never per-row), so the cost budget is a
/// couple of clock reads in the engine, one uncontended shard mutex, and
/// a handful of histogram observes. Shards are chosen round-robin by
/// sequence id: concurrent sessions hit different mutexes, and a reader
/// merging all shards still reconstructs global recency order from seq.
///
/// Record() also feeds the process-wide MetricsRegistry:
///   erql.queries / erql.query_errors / erql.slow_queries     (counters)
///   erql.query.latency_ms.mapping.<name>                     (histogram)
///   erql.query.latency_ms.kind.<kind>                        (histogram)
class QueryTelemetry {
 public:
  static constexpr size_t kDefaultCapacity = 512;
  static constexpr size_t kDefaultSlowCapacity = 64;
  static constexpr size_t kMaxTextBytes = 1024;
  static constexpr uint64_t kDefaultSlowThresholdNs = 50'000'000;  // 50 ms

  /// The process-wide log used by QueryEngine. Slow threshold comes from
  /// ERBIUM_SLOW_QUERY_MS (default 50); records feed
  /// MetricsRegistry::Global(). Intentionally leaked, like the registry.
  static QueryTelemetry& Global();

  /// `registry == nullptr` means MetricsRegistry::Global(). Tests pass
  /// their own registry so histogram counts can be asserted in isolation.
  explicit QueryTelemetry(size_t capacity = kDefaultCapacity,
                          size_t slow_capacity = kDefaultSlowCapacity,
                          MetricsRegistry* registry = nullptr);

  QueryTelemetry(const QueryTelemetry&) = delete;
  QueryTelemetry& operator=(const QueryTelemetry&) = delete;

  /// Stores the record (assigning record.seq), updates the metrics, and
  /// — when record.wall_ns >= slow_threshold_ns() — captures it into the
  /// slow ring together with `stats` (may be null: the slow entry then
  /// has an empty span tree). Returns the assigned sequence id.
  uint64_t Record(QueryRecord record, const QueryStats* stats = nullptr);

  /// Back-fills the transport tail of an already-recorded statement:
  /// the reactor only learns the write-stall once the response's last
  /// byte leaves the socket, which is after Record() ran on the worker.
  /// Locates seq in its shard ring (and the slow ring, where it also
  /// appends a "server.write_stall" span) and stamps both durations.
  /// A seq that has already been overwritten is silently ignored.
  void AnnotateWriteStall(uint64_t seq, uint64_t write_stall_ns,
                          uint64_t server_total_ns);

  /// Most recent records, newest first, at most `limit`.
  std::vector<QueryRecord> Recent(
      size_t limit = std::numeric_limits<size_t>::max()) const;
  std::vector<SlowQueryRecord> RecentSlow(
      size_t limit = std::numeric_limits<size_t>::max()) const;

  /// Total records ever passed to Record() (not capped by capacity).
  uint64_t total_recorded() const {
    return seq_.load(std::memory_order_relaxed);
  }

  /// Maximum records retained across all shards.
  size_t capacity() const { return shard_capacity_ * kShards; }
  size_t slow_capacity() const { return slow_capacity_; }

  uint64_t slow_threshold_ns() const {
    return slow_threshold_ns_.load(std::memory_order_relaxed);
  }
  void set_slow_threshold_ns(uint64_t ns) {
    slow_threshold_ns_.store(ns, std::memory_order_relaxed);
  }

  /// Empties both rings (sequence numbering continues).
  void Clear();

 private:
  static constexpr size_t kShards = 8;

  struct Shard {
    mutable std::mutex mu;
    std::vector<QueryRecord> ring;  // grows to shard_capacity_, then wraps
    size_t next = 0;                // overwrite position once full
  };

  MetricsRegistry* registry_;
  size_t shard_capacity_;
  size_t slow_capacity_;
  std::atomic<uint64_t> seq_{0};
  std::atomic<uint64_t> slow_threshold_ns_{kDefaultSlowThresholdNs};
  Shard shards_[kShards];
  mutable std::mutex slow_mu_;
  std::vector<SlowQueryRecord> slow_ring_;
  size_t slow_next_ = 0;
};

/// Carries the server-side lifecycle of one statement from the reactor
/// into QueryTelemetry::Record() without widening every Execute()
/// signature in between. The worker thread opens a scope around the
/// statement (with the queue wait it measured); Record() — called deep
/// inside the engine — stamps that wait into the QueryRecord and leaves
/// the assigned seq behind, which the worker forwards to the reactor so
/// the flush path can AnnotateWriteStall() the same entry. Thread-local
/// and re-entrant (nested scopes shadow, then restore).
class ScopedStatementLifecycle {
 public:
  explicit ScopedStatementLifecycle(uint64_t queue_wait_ns);
  ~ScopedStatementLifecycle();
  ScopedStatementLifecycle(const ScopedStatementLifecycle&) = delete;
  ScopedStatementLifecycle& operator=(const ScopedStatementLifecycle&) = delete;

  /// Seq assigned by the (last) Record() that ran inside this scope;
  /// 0 when the statement never reached the telemetry log.
  uint64_t recorded_seq() const { return recorded_seq_; }

  uint64_t queue_wait_ns() const { return queue_wait_ns_; }

 private:
  friend class QueryTelemetry;
  uint64_t queue_wait_ns_;
  uint64_t recorded_seq_ = 0;
  ScopedStatementLifecycle* prev_;
};

}  // namespace obs
}  // namespace erbium

#endif  // ERBIUM_OBS_TELEMETRY_H_
