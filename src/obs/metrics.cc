#include "obs/metrics.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <sstream>

namespace erbium {
namespace obs {
namespace {

// Single-writer relaxed add: the owning thread is the only writer of a
// shard cell, so a load+store pair is enough; atomic_ref just makes the
// concurrent merged reads well-defined.
inline void RelaxedAdd(uint64_t& cell, uint64_t delta) {
  std::atomic_ref<uint64_t> ref(cell);
  ref.store(ref.load(std::memory_order_relaxed) + delta,
            std::memory_order_relaxed);
}

inline void RelaxedAddDouble(double& cell, double delta) {
  std::atomic_ref<double> ref(cell);
  ref.store(ref.load(std::memory_order_relaxed) + delta,
            std::memory_order_relaxed);
}

inline uint64_t RelaxedLoad(const uint64_t& cell) {
  return std::atomic_ref<uint64_t>(const_cast<uint64_t&>(cell))
      .load(std::memory_order_relaxed);
}

inline double RelaxedLoadDouble(const double& cell) {
  return std::atomic_ref<double>(const_cast<double&>(cell))
      .load(std::memory_order_relaxed);
}

void AppendJsonString(std::ostringstream& out, const std::string& s) {
  out << '"' << JsonEscaped(s) << '"';
}

void AppendJsonDouble(std::ostringstream& out, double v) {
  out << JsonDouble(v);
}

}  // namespace

std::string JsonEscaped(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    unsigned char u = static_cast<unsigned char>(c);
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", u);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonDouble(double v) {
  if (!std::isfinite(v)) return "0";
  // Integral values (the common case for sums of integer observations)
  // print without a mantissa.
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::abs(v) < 1e15) {
    return std::to_string(static_cast<int64_t>(v));
  }
  // Shortest %g that round-trips through strtod.
  char buf[40];
  for (int precision : {15, 16, 17}) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

// ---------------------------------------------------------------------------
// Handles

void Counter::Increment(uint64_t delta) const {
  if (registry_ == nullptr) return;
  MetricsRegistry::Shard& shard = registry_->LocalShard();
  if (shard.counters.size() <= id_) {
    registry_->EnsureCounterSlot(&shard, id_);
  }
  RelaxedAdd(shard.counters[id_], delta);
}

uint64_t Counter::Value() const {
  if (registry_ == nullptr) return 0;
  std::lock_guard<std::mutex> lock(registry_->mu_);
  return registry_->MergedCounterLocked(id_);
}

void Gauge::Set(int64_t value) const {
  if (registry_ == nullptr) return;
  registry_->gauges_[id_].store(value, std::memory_order_relaxed);
}

void Gauge::Add(int64_t delta) const {
  if (registry_ == nullptr) return;
  registry_->gauges_[id_].fetch_add(delta, std::memory_order_relaxed);
}

int64_t Gauge::Value() const {
  if (registry_ == nullptr) return 0;
  return registry_->gauges_[id_].load(std::memory_order_relaxed);
}

void Histogram::Observe(double value) const {
  if (registry_ == nullptr) return;
  MetricsRegistry::Shard& shard = registry_->LocalShard();
  if (shard.hists.size() <= id_ || shard.hists[id_].buckets.empty()) {
    registry_->EnsureHistSlot(&shard, id_);
  }
  MetricsRegistry::HistShard& h = shard.hists[id_];
  const std::vector<double>& bounds = registry_->hist_defs_[id_].bounds;
  // First bucket whose upper edge satisfies value <= bound; past the last
  // bound the observation lands in the trailing overflow bucket.
  size_t b = std::lower_bound(bounds.begin(), bounds.end(), value) -
             bounds.begin();
  RelaxedAdd(h.buckets[b], 1);
  RelaxedAdd(h.count, 1);
  RelaxedAddDouble(h.sum, value);
}

HistogramSnapshot Histogram::Snapshot() const {
  if (registry_ == nullptr) return {};
  std::lock_guard<std::mutex> lock(registry_->mu_);
  return registry_->MergedHistogramLocked(id_);
}

// ---------------------------------------------------------------------------
// Registry

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* global = new MetricsRegistry();
  return *global;
}

MetricsRegistry::~MetricsRegistry() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Shard* shard : shards_) {
    shard->registry = nullptr;
  }
  shards_.clear();
}

MetricsRegistry::Shard::~Shard() {
  MetricsRegistry* r = registry;
  if (r == nullptr) return;
  std::lock_guard<std::mutex> lock(r->mu_);
  if (r->retired_counters_.size() < counters.size()) {
    r->retired_counters_.resize(counters.size(), 0);
  }
  for (size_t i = 0; i < counters.size(); ++i) {
    r->retired_counters_[i] += RelaxedLoad(counters[i]);
  }
  if (r->retired_hists_.size() < hists.size()) {
    r->retired_hists_.resize(hists.size());
  }
  for (size_t i = 0; i < hists.size(); ++i) {
    HistShard& dst = r->retired_hists_[i];
    const HistShard& src = hists[i];
    if (dst.buckets.size() < src.buckets.size()) {
      dst.buckets.resize(src.buckets.size(), 0);
    }
    for (size_t b = 0; b < src.buckets.size(); ++b) {
      dst.buckets[b] += RelaxedLoad(src.buckets[b]);
    }
    dst.count += RelaxedLoad(src.count);
    dst.sum += RelaxedLoadDouble(src.sum);
  }
  r->shards_.erase(std::find(r->shards_.begin(), r->shards_.end(), this));
}

MetricsRegistry::Shard& MetricsRegistry::LocalShard() {
  // One-entry cache for the overwhelmingly common single-registry case:
  // per-row increments must not pay a map lookup. The cached shard is
  // revalidated through its registry back-pointer, which a destroyed
  // registry nulls out.
  thread_local Shard* cached = nullptr;
  if (cached != nullptr && cached->registry == this) return *cached;
  // Keyed by registry so test-local registries coexist with Global().
  // A slot whose registry was destroyed (orphaned, registry == nullptr)
  // is replaced: a new registry may reuse the old one's address.
  thread_local std::map<MetricsRegistry*, std::unique_ptr<Shard>> shards;
  std::unique_ptr<Shard>& slot = shards[this];
  if (slot == nullptr || slot->registry == nullptr) {
    slot = std::make_unique<Shard>(this);
    std::lock_guard<std::mutex> lock(mu_);
    shards_.push_back(slot.get());
  }
  cached = slot.get();
  return *slot;
}

void MetricsRegistry::EnsureCounterSlot(Shard* shard, size_t id) {
  // Growth reallocates the vector, so it must exclude concurrent merges;
  // only the owning thread ever changes the size.
  std::lock_guard<std::mutex> lock(mu_);
  if (shard->counters.size() <= id) {
    shard->counters.resize(counter_ids_.size(), 0);
  }
}

void MetricsRegistry::EnsureHistSlot(Shard* shard, size_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shard->hists.size() <= id) {
    shard->hists.resize(hist_defs_.size());
  }
  for (size_t i = 0; i < shard->hists.size(); ++i) {
    if (shard->hists[i].buckets.empty()) {
      shard->hists[i].buckets.resize(hist_defs_[i].bounds.size() + 1, 0);
    }
  }
}

Counter MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counter_ids_.find(name);
  if (it == counter_ids_.end()) {
    it = counter_ids_.emplace(name, counter_ids_.size()).first;
  }
  return Counter(this, it->second);
}

Gauge MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauge_ids_.find(name);
  if (it == gauge_ids_.end()) {
    it = gauge_ids_.emplace(name, gauge_ids_.size()).first;
    gauges_.emplace_back(0);
  }
  return Gauge(this, it->second);
}

Histogram MetricsRegistry::histogram(const std::string& name,
                                     std::vector<double> bounds) {
  std::sort(bounds.begin(), bounds.end());
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hist_ids_.find(name);
  if (it == hist_ids_.end()) {
    it = hist_ids_.emplace(name, hist_ids_.size()).first;
    hist_defs_.push_back(HistDef{name, std::move(bounds)});
  }
  return Histogram(this, it->second);
}

uint64_t MetricsRegistry::MergedCounterLocked(size_t id) const {
  uint64_t total = id < retired_counters_.size() ? retired_counters_[id] : 0;
  for (Shard* shard : shards_) {
    if (id < shard->counters.size()) {
      total += RelaxedLoad(shard->counters[id]);
    }
  }
  return total;
}

HistogramSnapshot MetricsRegistry::MergedHistogramLocked(size_t id) const {
  HistogramSnapshot snap;
  if (id >= hist_defs_.size()) return snap;
  snap.bounds = hist_defs_[id].bounds;
  snap.buckets.assign(snap.bounds.size() + 1, 0);
  auto fold = [&snap](const HistShard& h) {
    for (size_t b = 0; b < h.buckets.size() && b < snap.buckets.size(); ++b) {
      snap.buckets[b] += RelaxedLoad(h.buckets[b]);
    }
    snap.count += RelaxedLoad(h.count);
    snap.sum += RelaxedLoadDouble(h.sum);
  };
  if (id < retired_hists_.size()) fold(retired_hists_[id]);
  for (Shard* shard : shards_) {
    if (id < shard->hists.size()) fold(shard->hists[id]);
  }
  return snap;
}

uint64_t MetricsRegistry::CounterValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counter_ids_.find(name);
  return it == counter_ids_.end() ? 0 : MergedCounterLocked(it->second);
}

int64_t MetricsRegistry::GaugeValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauge_ids_.find(name);
  return it == gauge_ids_.end()
             ? 0
             : gauges_[it->second].load(std::memory_order_relaxed);
}

HistogramSnapshot MetricsRegistry::HistogramValue(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hist_ids_.find(name);
  return it == hist_ids_.end() ? HistogramSnapshot{}
                               : MergedHistogramLocked(it->second);
}

RegistrySnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  RegistrySnapshot snap;
  for (const auto& [name, id] : counter_ids_) {
    snap.counters.emplace(name, MergedCounterLocked(id));
  }
  for (const auto& [name, id] : gauge_ids_) {
    snap.gauges.emplace(name, gauges_[id].load(std::memory_order_relaxed));
  }
  for (const auto& [name, id] : hist_ids_) {
    snap.histograms.emplace(name, MergedHistogramLocked(id));
  }
  return snap;
}

std::string MetricsRegistry::ToJson() const {
  // std::map iteration gives the sorted, stable key order the dump
  // format promises.
  RegistrySnapshot snapshot = Snapshot();
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out << ',';
    first = false;
    AppendJsonString(out, name);
    out << ':' << value;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out << ',';
    first = false;
    AppendJsonString(out, name);
    out << ':' << value;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, snap] : snapshot.histograms) {
    if (!first) out << ',';
    first = false;
    AppendJsonString(out, name);
    out << ":{\"bounds\":[";
    for (size_t i = 0; i < snap.bounds.size(); ++i) {
      if (i) out << ',';
      AppendJsonDouble(out, snap.bounds[i]);
    }
    out << "],\"buckets\":[";
    for (size_t i = 0; i < snap.buckets.size(); ++i) {
      if (i) out << ',';
      out << snap.buckets[i];
    }
    out << "],\"count\":" << snap.count << ",\"sum\":";
    AppendJsonDouble(out, snap.sum);
    out << '}';
  }
  out << "}}";
  return out.str();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  std::fill(retired_counters_.begin(), retired_counters_.end(), 0);
  for (HistShard& h : retired_hists_) {
    std::fill(h.buckets.begin(), h.buckets.end(), 0);
    h.count = 0;
    h.sum = 0;
  }
  for (auto& g : gauges_) {
    g.store(0, std::memory_order_relaxed);
  }
  for (Shard* shard : shards_) {
    for (uint64_t& cell : shard->counters) {
      std::atomic_ref<uint64_t>(cell).store(0, std::memory_order_relaxed);
    }
    for (HistShard& h : shard->hists) {
      for (uint64_t& cell : h.buckets) {
        std::atomic_ref<uint64_t>(cell).store(0, std::memory_order_relaxed);
      }
      std::atomic_ref<uint64_t>(h.count).store(0, std::memory_order_relaxed);
      std::atomic_ref<double>(h.sum).store(0, std::memory_order_relaxed);
    }
  }
}

}  // namespace obs
}  // namespace erbium
