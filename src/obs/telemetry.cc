#include "obs/telemetry.h"

#include <algorithm>
#include <cstdlib>

#include "obs/session.h"

namespace erbium {
namespace obs {
namespace {

/// Latency bucket edges in milliseconds, shared by the per-mapping and
/// per-kind histograms: sub-ms resolution at the fast end (point lookups)
/// through multi-second analytics at the slow end.
const std::vector<double>& LatencyBoundsMs() {
  static const std::vector<double>* bounds = new std::vector<double>{
      0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500,
      1000, 2500, 5000, 10000};
  return *bounds;
}

/// Active lifecycle scope of the executing thread, nullptr when the
/// statement did not come through the network server.
thread_local ScopedStatementLifecycle* t_lifecycle = nullptr;

uint64_t SlowThresholdFromEnv() {
  const char* ms = std::getenv("ERBIUM_SLOW_QUERY_MS");
  if (ms == nullptr || *ms == '\0') {
    return QueryTelemetry::kDefaultSlowThresholdNs;
  }
  char* end = nullptr;
  double parsed = std::strtod(ms, &end);
  if (end == ms || parsed < 0) return QueryTelemetry::kDefaultSlowThresholdNs;
  return static_cast<uint64_t>(parsed * 1e6);
}

}  // namespace

ScopedStatementLifecycle::ScopedStatementLifecycle(uint64_t queue_wait_ns)
    : queue_wait_ns_(queue_wait_ns), prev_(t_lifecycle) {
  t_lifecycle = this;
}

ScopedStatementLifecycle::~ScopedStatementLifecycle() { t_lifecycle = prev_; }

QueryTelemetry& QueryTelemetry::Global() {
  static QueryTelemetry* global = [] {
    auto* t = new QueryTelemetry();
    t->set_slow_threshold_ns(SlowThresholdFromEnv());
    return t;
  }();
  return *global;
}

QueryTelemetry::QueryTelemetry(size_t capacity, size_t slow_capacity,
                               MetricsRegistry* registry)
    : registry_(registry != nullptr ? registry : &MetricsRegistry::Global()),
      shard_capacity_(std::max<size_t>(1, (capacity + kShards - 1) / kShards)),
      slow_capacity_(std::max<size_t>(1, slow_capacity)) {}

uint64_t QueryTelemetry::Record(QueryRecord record, const QueryStats* stats) {
  uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  record.seq = seq;
  if (t_lifecycle != nullptr) {
    record.queue_wait_ns = t_lifecycle->queue_wait_ns_;
    t_lifecycle->recorded_seq_ = seq;
  }
  if (record.text.size() > kMaxTextBytes) {
    record.text.resize(kMaxTextBytes);
    record.text += "...";
  }
  if (record.mapping.empty()) record.mapping = "none";
  if (record.kind.empty()) record.kind = "unknown";
  if (record.session.empty()) record.session = CurrentSessionTag();
  if (record.session.empty()) record.session = "-";

  double ms = static_cast<double>(record.wall_ns) / 1e6;
  registry_->counter("erql.queries").Increment();
  if (!record.ok) registry_->counter("erql.query_errors").Increment();
  registry_
      ->histogram("erql.query.latency_ms.mapping." + record.mapping,
                  LatencyBoundsMs())
      .Observe(ms);
  registry_
      ->histogram("erql.query.latency_ms.kind." + record.kind,
                  LatencyBoundsMs())
      .Observe(ms);

  bool slow = record.wall_ns >= slow_threshold_ns();
  if (slow) {
    registry_->counter("erql.slow_queries").Increment();
    SlowQueryRecord entry;
    entry.record = record;
    if (stats != nullptr) entry.stats = *stats;
    if (entry.record.queue_wait_ns > 0) {
      // Depth-0 siblings render sequentially in the Chrome-trace
      // exporter, so a leading span turns the slow capture into a
      // queue-wait -> execution timeline.
      SpanRecord wait;
      wait.name = "server.queue_wait";
      wait.detail = "reactor";
      wait.stats.wall_ns = entry.record.queue_wait_ns;
      entry.stats.spans.insert(entry.stats.spans.begin(), wait);
    }
    std::lock_guard<std::mutex> lock(slow_mu_);
    if (slow_ring_.size() < slow_capacity_) {
      slow_ring_.push_back(std::move(entry));
    } else {
      slow_ring_[slow_next_] = std::move(entry);
      slow_next_ = (slow_next_ + 1) % slow_capacity_;
    }
  }

  Shard& shard = shards_[seq % kShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.ring.size() < shard_capacity_) {
    shard.ring.push_back(std::move(record));
  } else {
    shard.ring[shard.next] = std::move(record);
    shard.next = (shard.next + 1) % shard_capacity_;
  }
  return seq;
}

void QueryTelemetry::AnnotateWriteStall(uint64_t seq, uint64_t write_stall_ns,
                                        uint64_t server_total_ns) {
  if (seq == 0) return;
  Shard& shard = shards_[seq % kShards];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (QueryRecord& record : shard.ring) {
      if (record.seq != seq) continue;
      record.write_stall_ns = write_stall_ns;
      record.server_total_ns = server_total_ns;
      break;
    }
  }
  std::lock_guard<std::mutex> lock(slow_mu_);
  for (SlowQueryRecord& entry : slow_ring_) {
    if (entry.record.seq != seq) continue;
    entry.record.write_stall_ns = write_stall_ns;
    entry.record.server_total_ns = server_total_ns;
    SpanRecord stall;
    stall.name = "server.write_stall";
    stall.detail = "reactor";
    stall.stats.wall_ns = write_stall_ns;
    entry.stats.spans.push_back(stall);
    break;
  }
}

std::vector<QueryRecord> QueryTelemetry::Recent(size_t limit) const {
  std::vector<QueryRecord> out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    out.insert(out.end(), shard.ring.begin(), shard.ring.end());
  }
  std::sort(out.begin(), out.end(),
            [](const QueryRecord& a, const QueryRecord& b) {
              return a.seq > b.seq;
            });
  if (out.size() > limit) out.resize(limit);
  return out;
}

std::vector<SlowQueryRecord> QueryTelemetry::RecentSlow(size_t limit) const {
  std::vector<SlowQueryRecord> out;
  {
    std::lock_guard<std::mutex> lock(slow_mu_);
    out = slow_ring_;
  }
  std::sort(out.begin(), out.end(),
            [](const SlowQueryRecord& a, const SlowQueryRecord& b) {
              return a.record.seq > b.record.seq;
            });
  if (out.size() > limit) out.resize(limit);
  return out;
}

void QueryTelemetry::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.ring.clear();
    shard.next = 0;
  }
  std::lock_guard<std::mutex> lock(slow_mu_);
  slow_ring_.clear();
  slow_next_ = 0;
}

}  // namespace obs
}  // namespace erbium
