#include "obs/session.h"

#include <utility>

#include "obs/trace.h"

namespace erbium {
namespace obs {

namespace {
thread_local std::string t_session_tag;
}  // namespace

SessionRegistry& SessionRegistry::Global() {
  static SessionRegistry* registry = new SessionRegistry();
  return *registry;
}

uint64_t SessionRegistry::Register(SessionInfo info) {
  std::lock_guard<std::mutex> lock(mu_);
  info.id = next_id_++;
  info.connected_ns = MonotonicNowNs();
  info.last_active_ns = info.connected_ns;
  uint64_t id = info.id;
  sessions_.emplace(id, std::move(info));
  return id;
}

void SessionRegistry::Deregister(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  sessions_.erase(id);
}

void SessionRegistry::Update(uint64_t id,
                             const std::function<void(SessionInfo*)>& fn) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  if (it != sessions_.end()) fn(&it->second);
}

std::vector<SessionInfo> SessionRegistry::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SessionInfo> out;
  out.reserve(sessions_.size());
  for (const auto& [id, info] : sessions_) out.push_back(info);
  return out;
}

size_t SessionRegistry::ActiveCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

ScopedSessionTag::ScopedSessionTag(std::string tag)
    : prev_(std::exchange(t_session_tag, std::move(tag))) {}

ScopedSessionTag::~ScopedSessionTag() { t_session_tag = std::move(prev_); }

const std::string& CurrentSessionTag() { return t_session_tag; }

}  // namespace obs
}  // namespace erbium
